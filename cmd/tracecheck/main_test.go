package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runWith executes run() with stdout captured to a temp file and
// returns (output, error).
func runWith(t *testing.T, args ...string) (string, error) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	runErr := run(args, nil, out)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

// writeExample writes the example trace to a file and returns its path.
func writeExample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := exampleTrace().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExampleFlag(t *testing.T) {
	out, err := runWith(t, "-example")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"kind"`) {
		t.Errorf("example output = %q", out)
	}
}

func TestCheckExampleHolds(t *testing.T) {
	path := writeExample(t)
	out, err := runWith(t, "-trace", path)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if strings.Contains(out, "VIOLATED") {
		t.Errorf("example trace violated something:\n%s", out)
	}
	for _, want := range []string{"Reliability", "Total Order", "Virtual Synchrony"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestUntrustedFlagTriggersViolation(t *testing.T) {
	path := writeExample(t)
	out, err := runWith(t, "-trace", path, "-untrusted", "1")
	if err == nil {
		t.Fatal("expected a violation error")
	}
	if !strings.Contains(out, "Confidentiality        VIOLATED") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSingleProperty(t *testing.T) {
	path := writeExample(t)
	out, err := runWith(t, "-trace", path, "-property", "No Replay")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "\n") != 1 {
		t.Errorf("expected exactly one verdict line:\n%s", out)
	}
}

func TestUnknownProperty(t *testing.T) {
	path := writeExample(t)
	if _, err := runWith(t, "-trace", path, "-property", "Nonsense"); err == nil {
		t.Error("unknown property accepted")
	}
}

func TestMissingTraceFlag(t *testing.T) {
	if _, err := runWith(t); err == nil {
		t.Error("missing -trace accepted")
	}
}

func TestNonexistentFile(t *testing.T) {
	if _, err := runWith(t, "-trace", "/nonexistent/file.json"); err == nil {
		t.Error("nonexistent file accepted")
	}
}

func TestMalformedTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`[{"kind":"send","msg":{"id":1,"sender":0}},{"kind":"send","msg":{"id":1,"sender":0}}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runWith(t, "-trace", path); err == nil {
		t.Error("duplicate-send trace accepted")
	}
}

func TestBadUntrustedFlag(t *testing.T) {
	path := writeExample(t)
	if _, err := runWith(t, "-trace", path, "-untrusted", "zebra"); err == nil {
		t.Error("garbage -untrusted accepted")
	}
}

func TestMasterFlag(t *testing.T) {
	path := writeExample(t)
	// With master=1 (who never delivers first), Prioritized Delivery
	// must fail: process 0 delivers m1 first.
	out, err := runWith(t, "-trace", path, "-master", "1", "-property", "Prioritized Delivery")
	if err == nil {
		t.Errorf("expected violation with -master 1:\n%s", out)
	}
}

func TestPlural(t *testing.T) {
	if plural(1) != "y" || plural(2) != "ies" {
		t.Error("plural wrong")
	}
}
