// Command tracecheck validates a recorded execution trace (the JSON
// format of internal/trace) against the paper's Table 1 properties:
//
//	tracecheck -trace run.json                    # check every property
//	tracecheck -trace run.json -property "No Replay"
//	tracecheck -trace run.json -untrusted 2,3     # mark untrusted processes
//	tracecheck -example > demo.json               # emit a sample trace
//
// Parameter conventions: the receiver group and initial view are the
// processes appearing in the trace, the master is the lowest process
// id, and every process is trusted unless listed in -untrusted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin *os.File, stdout *os.File) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	var (
		path      = fs.String("trace", "", "path to a JSON trace ('-' for stdin)")
		propName  = fs.String("property", "", "check only this Table 1 property")
		untrusted = fs.String("untrusted", "", "comma-separated untrusted process ids")
		master    = fs.Int("master", -1, "master process for Prioritized Delivery (default: lowest id)")
		example   = fs.Bool("example", false, "write an example trace to stdout and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		return exampleTrace().WriteJSON(stdout)
	}
	if *path == "" {
		return fmt.Errorf("missing -trace (or -example)")
	}
	var tr trace.Trace
	var err error
	if *path == "-" {
		tr, err = trace.ReadJSON(stdin)
	} else {
		f, ferr := os.Open(*path)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		tr, err = trace.ReadJSON(f)
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("malformed trace: %w", err)
	}

	procs := tr.Processes()
	trusted := make(map[ids.ProcID]bool, len(procs))
	for _, p := range procs {
		trusted[p] = true
	}
	if *untrusted != "" {
		for _, field := range strings.Split(*untrusted, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				return fmt.Errorf("bad -untrusted entry %q: %w", field, err)
			}
			delete(trusted, ids.ProcID(v))
		}
	}
	m := ids.ProcID(*master)
	if *master < 0 {
		m = lowest(procs)
	}
	props := []property.Property{
		property.Reliability{Group: procs},
		property.TotalOrder{},
		property.Integrity{Trusted: trusted},
		property.Confidentiality{Trusted: trusted},
		property.NoReplay{},
		property.PrioritizedDelivery{Master: m},
		property.Amoeba{},
		property.VirtualSynchrony{InitialView: procs},
	}

	failures, checked := 0, 0
	for _, p := range props {
		if *propName != "" && p.Name() != *propName {
			continue
		}
		checked++
		verdict := "HOLDS"
		if !p.Holds(tr) {
			verdict = "VIOLATED"
			failures++
		}
		fmt.Fprintf(stdout, "%-22s %s\n", p.Name(), verdict)
	}
	if checked == 0 {
		return fmt.Errorf("unknown property %q", *propName)
	}
	if failures > 0 {
		return fmt.Errorf("%d propert%s violated", failures, plural(failures))
	}
	return nil
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

func lowest(procs []ids.ProcID) ids.ProcID {
	if len(procs) == 0 {
		return 0
	}
	low := procs[0]
	for _, p := range procs[1:] {
		if p < low {
			low = p
		}
	}
	return low
}

// exampleTrace is a small two-process execution that satisfies every
// Table 1 property under the CLI's default parameters.
func exampleTrace() trace.Trace {
	m1 := trace.Message{ID: 1, Sender: 0, Body: "hello"}
	m2 := trace.Message{ID: 2, Sender: 0, Body: "world"}
	return trace.Trace{
		trace.Send(m1),
		trace.Deliver(0, m1),
		trace.Deliver(1, m1),
		trace.Send(m2),
		trace.Deliver(0, m2),
		trace.Deliver(1, m2),
	}
}
