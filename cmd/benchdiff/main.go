// Command benchdiff compares two switchbench BENCH_*.json artifacts and
// prints every changed field, ignoring the wall-clock "timing" section
// (the only non-deterministic part of an artifact).
//
//	benchdiff old.json new.json
//
// The exit status encodes the comparison: 0 when nothing regressed, 1
// on a regression, 2 on usage or decode errors. A regression is a
// delta no perf-tracking run should wave through silently:
//
//   - "failed" counts that rose (invariant violations appeared),
//   - "passed" or "delivered" counts that fell (coverage or throughput
//     lost),
//   - "shed" counts that rose (the overload layer turned away more of
//     the same workload), or
//   - "allocs_per_msg" that rose beyond the noise band (new*1.1+1 —
//     the hot path started allocating; the E18 perf gate).
//
// "msgs_per_sec" drops beyond 20% are marked with "~" as warnings —
// wall-clock throughput is too host-dependent to hard-fail CI on, but
// the drop should be visible in the log (the soft half of the perf
// gate).
//
// Everything else — latency drift, event-count changes, new fields from
// a schema bump — is printed for the record but does not gate, so the
// tool is useful as a non-blocking CI step against a committed
// baseline.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff <old.json> <new.json>")
		os.Exit(2)
	}
	oldDoc, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldFlat := flatten("", oldDoc)
	newFlat := flatten("", newDoc)

	keys := map[string]bool{}
	for k := range oldFlat {
		keys[k] = true
	}
	for k := range newFlat {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	changed, regressions, warnings := 0, 0, 0
	for _, k := range sorted {
		ov, inOld := oldFlat[k]
		nv, inNew := newFlat[k]
		switch {
		case !inOld:
			fmt.Printf("+ %s = %v\n", k, nv)
			changed++
		case !inNew:
			fmt.Printf("- %s (was %v)\n", k, ov)
			changed++
		case ov != nv:
			mark := "  "
			switch {
			case regressed(k, ov, nv):
				mark = "! "
				regressions++
			case slowed(k, ov, nv):
				mark = "~ "
				warnings++
			}
			fmt.Printf("%s%s: %v -> %v\n", mark, k, ov, nv)
			changed++
		}
	}
	if changed == 0 {
		fmt.Println("artifacts identical (timing ignored)")
	}
	if warnings > 0 {
		fmt.Printf("\n%d throughput warning(s) (non-gating)\n", warnings)
	}
	if regressions > 0 {
		fmt.Printf("\n%d regression(s)\n", regressions)
		os.Exit(1)
	}
}

func load(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// flatten turns nested JSON into "a.b[2].c" -> scalar, dropping every
// "timing" object (wall clock, worker count, events/sec).
func flatten(prefix string, v any) map[string]any {
	out := map[string]any{}
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			if k == "timing" {
				continue
			}
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			for fk, fv := range flatten(p, child) {
				out[fk] = fv
			}
		}
	case []any:
		for i, child := range t {
			for fk, fv := range flatten(fmt.Sprintf("%s[%d]", prefix, i), child) {
				out[fk] = fv
			}
		}
	default:
		out[prefix] = v
	}
	return out
}

// regressed reports whether the (old, new) delta at this key is one of
// the gating directions. JSON numbers decode as float64.
func regressed(key string, ov, nv any) bool {
	of, ok1 := ov.(float64)
	nf, ok2 := nv.(float64)
	if !ok1 || !ok2 {
		return false
	}
	leaf := key
	if i := strings.LastIndexAny(key, "."); i >= 0 {
		leaf = key[i+1:]
	}
	switch {
	case leaf == "failed" || strings.HasSuffix(leaf, "_failed"):
		return nf > of
	case leaf == "passed" || leaf == "delivered":
		return nf < of
	case leaf == "shed" || strings.HasSuffix(leaf, "_shed"):
		return nf > of
	case leaf == "allocs_per_msg":
		// Hard perf gate with a noise band: 10% plus one absolute
		// allocation per message. Allocation counts are near-deterministic,
		// so anything past the band means the hot path regressed.
		return nf > of*1.1+1
	}
	return false
}

// slowed reports a warn-only throughput drop: msgs_per_sec fell by more
// than 20%. Wall-clock throughput varies with the host, so this marks
// the log without failing the run.
func slowed(key string, ov, nv any) bool {
	of, ok1 := ov.(float64)
	nf, ok2 := nv.(float64)
	if !ok1 || !ok2 {
		return false
	}
	leaf := key
	if i := strings.LastIndexAny(key, "."); i >= 0 {
		leaf = key[i+1:]
	}
	return leaf == "msgs_per_sec" && nf < of*0.8
}
