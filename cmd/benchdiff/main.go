// Command benchdiff compares two switchbench BENCH_*.json artifacts and
// prints every changed field, ignoring the wall-clock "timing" section
// (the only non-deterministic part of an artifact).
//
//	benchdiff old.json new.json
//
// The exit status encodes the comparison: 0 when nothing regressed, 1
// on a regression, 2 on usage or decode errors. A regression is a
// delta no perf-tracking run should wave through silently:
//
//   - "failed" counts that rose (invariant violations appeared),
//   - "passed" or "delivered" counts that fell (coverage or throughput
//     lost),
//   - "shed" counts that rose (the overload layer turned away more of
//     the same workload),
//   - "switch_aborts", "token_regens", or "violations" that rose (the
//     E20 gray-stability rows: recovery churn under flapping grew, or a
//     cell started breaching an always-on invariant),
//   - "allocs_per_msg" that rose beyond the noise band (new*1.1+1 —
//     the hot path started allocating; the E18 perf gate), or
//   - telemetry coverage that fell: "windows", "rounds", or
//     "rounds_complete" in BENCH_telemetry.json (the sweep sampled or
//     audited less of the same seeded workload — all deterministic
//     fields, so any drop is a real behavior change).
//
// "msgs_per_sec" drops beyond 20% are marked with "~" as warnings,
// printing baseline vs. current and the percent delta — wall-clock
// throughput is too host-dependent to hard-fail CI on, but the drop
// should be visible in the log (the soft half of the perf gate).
//
// Everything else — latency drift, event-count changes, new fields from
// a schema bump — is printed for the record but does not gate, so the
// tool is useful as a non-blocking CI step against a committed
// baseline.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/benchkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff <old.json> <new.json>")
		return 2
	}
	oldDoc, err := benchkit.Load(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	newDoc, err := benchkit.Load(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	changed, regressions, warnings := diff(oldDoc, newDoc, w)
	if changed == 0 {
		fmt.Fprintln(w, "artifacts identical (timing ignored)")
	}
	if warnings > 0 {
		fmt.Fprintf(w, "\n%d throughput warning(s) (non-gating)\n", warnings)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d regression(s)\n", regressions)
		return 1
	}
	return 0
}

// diff prints every changed leaf and returns the change/regression/
// warning counts.
func diff(oldDoc, newDoc any, w io.Writer) (changed, regressions, warnings int) {
	oldFlat := benchkit.Flatten("", oldDoc, true)
	newFlat := benchkit.Flatten("", newDoc, true)

	keys := map[string]bool{}
	for k := range oldFlat {
		keys[k] = true
	}
	for k := range newFlat {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	for _, k := range sorted {
		ov, inOld := oldFlat[k]
		nv, inNew := newFlat[k]
		switch {
		case !inOld:
			fmt.Fprintf(w, "+ %s = %v\n", k, nv)
			changed++
		case !inNew:
			fmt.Fprintf(w, "- %s (was %v)\n", k, ov)
			changed++
		case ov != nv:
			switch {
			case regressed(k, ov, nv):
				regressions++
				fmt.Fprintf(w, "! %s: %v -> %v\n", k, ov, nv)
			case slowed(k, ov, nv):
				warnings++
				of, nf := ov.(float64), nv.(float64)
				fmt.Fprintf(w, "~ %s: baseline %.1f -> current %.1f (%+.1f%%)\n",
					k, of, nf, (nf-of)/of*100)
			default:
				fmt.Fprintf(w, "  %s: %v -> %v\n", k, ov, nv)
			}
			changed++
		}
	}
	return changed, regressions, warnings
}

// regressed reports whether the (old, new) delta at this key is one of
// the gating directions. JSON numbers decode as float64. Every gated
// field except allocs_per_msg is deterministic per seed, so the
// comparisons are exact.
func regressed(key string, ov, nv any) bool {
	of, ok1 := ov.(float64)
	nf, ok2 := nv.(float64)
	if !ok1 || !ok2 {
		return false
	}
	switch leaf := benchkit.Leaf(key); {
	case leaf == "failed" || strings.HasSuffix(leaf,"_failed"):
		return nf > of
	case leaf == "passed" || leaf == "delivered":
		return nf < of
	case leaf == "shed" || strings.HasSuffix(leaf,"_shed"):
		return nf > of
	case leaf == "switch_aborts" || leaf == "token_regens" || leaf == "violations":
		// Gray-failure stability (the E20 rows in BENCH_chaos.json):
		// recovery churn — aborted switch rounds and token
		// regenerations — at a given flap cadence and detector arm must
		// not rise against the committed baseline, and no cell may start
		// violating an always-on invariant. Deterministic per seed.
		return nf > of
	case leaf == "windows" || leaf == "rounds" || leaf == "rounds_complete":
		// Telemetry coverage (BENCH_telemetry.json summary): the sweep
		// must not sample fewer windows or audit fewer (completed)
		// switch rounds for the same seed.
		return nf < of
	case leaf == "allocs_per_msg":
		// Hard perf gate with a noise band: 10% plus one absolute
		// allocation per message. Allocation counts are near-deterministic,
		// so anything past the band means the hot path regressed.
		return nf > of*1.1+1
	}
	return false
}

// slowed reports a warn-only throughput drop: msgs_per_sec fell by more
// than 20%. Wall-clock throughput varies with the host, so this marks
// the log without failing the run.
func slowed(key string, ov, nv any) bool {
	of, ok1 := ov.(float64)
	nf, ok2 := nv.(float64)
	if !ok1 || !ok2 {
		return false
	}
	return benchkit.Leaf(key) == "msgs_per_sec" && nf < of*0.8
}
