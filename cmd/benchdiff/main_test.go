package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func parse(t *testing.T, s string) any {
	t.Helper()
	var doc any
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestDiffGatesTelemetryCoverage(t *testing.T) {
	oldDoc := parse(t, `{"schema":"switchbench/telemetry","windows":189,"rounds":16,"rounds_complete":16,"rounds_aborted":0}`)

	// Fewer windows, fewer rounds, fewer completions: three regressions.
	newDoc := parse(t, `{"schema":"switchbench/telemetry","windows":150,"rounds":12,"rounds_complete":11,"rounds_aborted":1}`)
	var out bytes.Buffer
	_, regressions, _ := diff(oldDoc, newDoc, &out)
	if regressions != 3 {
		t.Errorf("regressions = %d, want 3:\n%s", regressions, out.String())
	}
	for _, want := range []string{"! windows:", "! rounds:", "! rounds_complete:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing gated line %q:\n%s", want, out.String())
		}
	}

	// Growth in any of them does not gate; rounds_aborted never gates.
	grown := parse(t, `{"schema":"switchbench/telemetry","windows":200,"rounds":20,"rounds_complete":18,"rounds_aborted":2}`)
	out.Reset()
	if _, regressions, _ := diff(oldDoc, grown, &out); regressions != 0 {
		t.Errorf("growth gated: %d regressions\n%s", regressions, out.String())
	}
}

func TestDiffWarnsThroughputWithPercentDelta(t *testing.T) {
	oldDoc := parse(t, `{"rows":[{"msgs_per_sec":1000.0,"allocs_per_msg":2.0}]}`)
	newDoc := parse(t, `{"rows":[{"msgs_per_sec":700.0,"allocs_per_msg":2.0}]}`)
	var out bytes.Buffer
	_, regressions, warnings := diff(oldDoc, newDoc, &out)
	if regressions != 0 || warnings != 1 {
		t.Fatalf("regressions=%d warnings=%d:\n%s", regressions, warnings, out.String())
	}
	want := "~ rows[0].msgs_per_sec: baseline 1000.0 -> current 700.0 (-30.0%)"
	if !strings.Contains(out.String(), want) {
		t.Errorf("warning line missing %q:\n%s", want, out.String())
	}

	// A 10% dip stays inside the band: printed, not marked.
	mild := parse(t, `{"rows":[{"msgs_per_sec":900.0,"allocs_per_msg":2.0}]}`)
	out.Reset()
	if _, _, warnings := diff(oldDoc, mild, &out); warnings != 0 {
		t.Errorf("mild dip warned:\n%s", out.String())
	}
}

func TestDiffGatesGrayStability(t *testing.T) {
	oldDoc := parse(t, `{"gray":[{"period_ms":30,"detector":"adaptive","switch_aborts":7,"token_regens":55,"victim_regens":61,"violations":0,"delivered":831}]}`)

	// More churn or a new violation: three regressions (delivered held).
	newDoc := parse(t, `{"gray":[{"period_ms":30,"detector":"adaptive","switch_aborts":9,"token_regens":80,"victim_regens":61,"violations":1,"delivered":831}]}`)
	var out bytes.Buffer
	_, regressions, _ := diff(oldDoc, newDoc, &out)
	if regressions != 3 {
		t.Errorf("regressions = %d, want 3:\n%s", regressions, out.String())
	}
	for _, want := range []string{"! gray[0].switch_aborts:", "! gray[0].token_regens:", "! gray[0].violations:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing gated line %q:\n%s", want, out.String())
		}
	}

	// Less churn does not gate; victim_regens never gates (the excluded
	// member's own backoff-bounded regenerations are not group churn).
	better := parse(t, `{"gray":[{"period_ms":30,"detector":"adaptive","switch_aborts":5,"token_regens":40,"victim_regens":90,"violations":0,"delivered":831}]}`)
	out.Reset()
	if _, regressions, _ := diff(oldDoc, better, &out); regressions != 0 {
		t.Errorf("improvement gated: %d regressions\n%s", regressions, out.String())
	}
}

func TestDiffClassicGatesStillFire(t *testing.T) {
	oldDoc := parse(t, `{"failed":0,"passed":20,"delivered":474,"switching":{"shed":5},"rows":[{"allocs_per_msg":1.0}]}`)
	newDoc := parse(t, `{"failed":1,"passed":19,"delivered":400,"switching":{"shed":9},"rows":[{"allocs_per_msg":3.0}]}`)
	var out bytes.Buffer
	_, regressions, _ := diff(oldDoc, newDoc, &out)
	if regressions != 5 {
		t.Errorf("regressions = %d, want 5:\n%s", regressions, out.String())
	}
}
