// Command sptrend summarizes switchbench BENCH_*.json artifacts across
// runs: it groups the given files by schema, collects every numeric
// leaf (timing included — wall-clock drift across runs is a trend too),
// and prints a mean/std/min/max table per group, the grouped-summary
// half of a paper-style experiment pipeline (run N repeats, then reduce
// to mean ± std).
//
//	sptrend runs/*/BENCH_perf.json
//	sptrend -match msgs_per_sec runs/*/BENCH_perf.json
//	sptrend -all run1/BENCH_telemetry.json run2/BENCH_telemetry.json
//
// By default only leaves that vary across the group are printed —
// deterministic artifacts from the same seed agree on almost every
// field, and the varying remainder (throughput, wall clock, or a real
// behavior change) is exactly what a trend table is for. -all prints
// every numeric leaf; -match filters keys by substring. Exit status is
// 0 on success, 2 on usage or decode errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/benchkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("sptrend", flag.ContinueOnError)
	match := fs.String("match", "", "only print keys containing this substring")
	all := fs.Bool("all", false, "print constant keys too, not just varying ones")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) < 1 {
		fmt.Fprintln(os.Stderr, "usage: sptrend [-match substr] [-all] <BENCH_*.json> ...")
		return 2
	}
	docs := make([]any, 0, len(paths))
	for _, p := range paths {
		doc, err := benchkit.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptrend:", err)
			return 2
		}
		docs = append(docs, doc)
	}
	io.WriteString(w, Render(docs, *match, *all))
	return 0
}

// group is one schema's value series across the loaded artifacts.
type group struct {
	schema string
	runs   int
	series map[string][]float64
}

// Render groups the artifacts by schema and renders one trend table per
// group, schemas and keys sorted.
func Render(docs []any, match string, all bool) string {
	byName := map[string]*group{}
	for _, doc := range docs {
		flat := benchkit.Flatten("", doc, false)
		schema := "(no schema)"
		if s, ok := flat["schema"].(string); ok {
			schema = s
		}
		g := byName[schema]
		if g == nil {
			g = &group{schema: schema, series: map[string][]float64{}}
			byName[schema] = g
		}
		g.runs++
		for k, v := range flat {
			if f, ok := v.(float64); ok {
				g.series[k] = append(g.series[k], f)
			}
		}
	}
	schemas := make([]string, 0, len(byName))
	for s := range byName {
		schemas = append(schemas, s)
	}
	sort.Strings(schemas)

	var b strings.Builder
	for _, s := range schemas {
		g := byName[s]
		fmt.Fprintf(&b, "== %s (%d runs) ==\n", g.schema, g.runs)
		keys := make([]string, 0, len(g.series))
		for k := range g.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		printed := 0
		for _, k := range keys {
			if match != "" && !strings.Contains(k, match) {
				continue
			}
			st := benchkit.Summarize(g.series[k])
			// A key is "varying" when runs disagree on it or some runs
			// lack it entirely.
			if !all && st.Std == 0 && st.N == g.runs {
				continue
			}
			fmt.Fprintf(&b, "%-52s n=%-3d mean=%-14.4f std=%-12.4f min=%-14.4f max=%-.4f\n",
				k, st.N, st.Mean, st.Std, st.Min, st.Max)
			printed++
		}
		if printed == 0 {
			b.WriteString("(no varying numeric keys; rerun with -all to list everything)\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
