package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parse(t *testing.T, s string) any {
	t.Helper()
	var doc any
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestRenderGroupsBySchemaAndSummarizes(t *testing.T) {
	docs := []any{
		parse(t, `{"schema":"switchbench/perf","timing":{"wall_ms":100.0},"rows":[{"msgs_per_sec":1000.0}],"delivered":50}`),
		parse(t, `{"schema":"switchbench/perf","timing":{"wall_ms":120.0},"rows":[{"msgs_per_sec":1200.0}],"delivered":50}`),
		parse(t, `{"schema":"switchbench/telemetry","windows":189.0,"rounds":16.0}`),
	}
	out := Render(docs, "", false)
	if !strings.Contains(out, "== switchbench/perf (2 runs) ==") ||
		!strings.Contains(out, "== switchbench/telemetry (1 runs) ==") {
		t.Fatalf("group headers missing:\n%s", out)
	}
	// Varying keys summarized with mean/std over both runs.
	if !strings.Contains(out, "rows[0].msgs_per_sec") ||
		!strings.Contains(out, "mean=1100.0000") || !strings.Contains(out, "std=100.0000") {
		t.Errorf("msgs_per_sec trend missing:\n%s", out)
	}
	if !strings.Contains(out, "timing.wall_ms") {
		t.Errorf("timing leaves must be kept for trends:\n%s", out)
	}
	// Constant keys are suppressed by default...
	if strings.Contains(out, "delivered") {
		t.Errorf("constant key printed without -all:\n%s", out)
	}
	// ...and shown with all=true.
	if all := Render(docs, "", true); !strings.Contains(all, "delivered") {
		t.Errorf("-all did not print constant keys:\n%s", all)
	}
	// match filters keys.
	if m := Render(docs, "msgs_per_sec", true); strings.Contains(m, "wall_ms") {
		t.Errorf("-match leaked other keys:\n%s", m)
	}
}

func TestRunLoadsFilesAndRejectsUsage(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	os.WriteFile(a, []byte(`{"schema":"switchbench/x","v":1}`), 0o644)
	os.WriteFile(b, []byte(`{"schema":"switchbench/x","v":3}`), 0o644)
	var out strings.Builder
	if code := run([]string{a, b}, &out); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "mean=2.0000") {
		t.Errorf("trend output wrong:\n%s", out.String())
	}
	if code := run(nil, &out); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if code := run([]string{bad}, &out); code != 2 {
		t.Errorf("bad-json exit = %d, want 2", code)
	}
}
