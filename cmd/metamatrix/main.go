// Command metamatrix regenerates Table 2 of the paper: which of the
// eight Table 1 communication properties satisfy which of the six
// meta-properties. A '+' cell survived an adversarial randomized search
// for counterexamples; a '-' cell is witnessed by a concrete
// counterexample (printed with -verbose). The final column marks the
// §6.3 class: properties with all six meta-properties are provably
// preserved by the switching protocol.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metaprop"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metamatrix:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("metamatrix", flag.ContinueOnError)
	var (
		trials     = fs.Int("trials", 400, "randomized trials per cell")
		seed       = fs.Int64("seed", 1, "search seed")
		procs      = fs.Int("procs", 4, "process population for generated traces")
		msgs       = fs.Int("msgs", 8, "messages per generated trace")
		verbose    = fs.Bool("verbose", false, "print the counterexample behind every '-' cell")
		extensions = fs.Bool("extensions", false, "include the repository's extension rows (Causal Order, Every Second Delivered)")
		exhaustive = fs.Bool("exhaustive", false, "bounded-exhaustive enumeration instead of randomized search: every '-' is a minimal counterexample, every '+' a proof up to the per-cell bound")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m *metaprop.Matrix
	var err error
	if *exhaustive {
		m, err = metaprop.ComputeExhaustive(*extensions)
	} else {
		checker := metaprop.Checker{Trials: *trials, Seed: *seed}
		gc := metaprop.GenConfig{Procs: *procs, Messages: *msgs}
		compute := metaprop.Compute
		if *extensions {
			compute = metaprop.ComputeWithExtensions
		}
		m, err = compute(checker, gc)
	}
	if err != nil {
		return err
	}
	fmt.Println("Table 2 — which properties satisfy which meta-properties?")
	if *exhaustive {
		fmt.Println("(bounded-exhaustive: '-' is a minimal counterexample; '+' is a proof up to the per-cell bound)")
		fmt.Println()
	} else {
		fmt.Printf("(+ preserved: no counterexample in %d trials; - witnessed counterexample)\n\n", *trials)
	}
	fmt.Println(m.Render())
	if *verbose {
		fmt.Println("Counterexamples:")
		for _, prop := range m.Order {
			for _, cell := range m.Rows[prop] {
				if cell.Counterexample == nil {
					continue
				}
				source := "randomized search"
				if cell.FromWitness {
					source = "registered witness"
				}
				fmt.Printf("\n--- %s × %s (%s) ---\n%s\n", prop, cell.Meta, source, cell.Counterexample)
			}
		}
	}
	return nil
}
