package main

import "testing"

func TestRunDefaultish(t *testing.T) {
	// Few trials keep the test fast; witnesses still pin the ✗ cells.
	if err := run([]string{"-trials", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerboseWithExtensions(t *testing.T) {
	if err := run([]string{"-trials", "20", "-verbose", "-extensions"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunExhaustive(t *testing.T) {
	if err := run([]string{"-exhaustive", "-extensions"}); err != nil {
		t.Fatal(err)
	}
}
