package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func writeSample(t *testing.T) string {
	t.Helper()
	events := obs.TagRun(0, []obs.Event{
		obs.TokenPass(time.Millisecond, 0, 1, 1, 0, 0),
		obs.SwitchStart(3*time.Millisecond, 0, 0, 0),
		obs.SwitchComplete(34*time.Millisecond, 0, 0, 0, 31*time.Millisecond),
		obs.Heal(40 * time.Millisecond),
	})
	b, err := obs.MarshalJSONL(events)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckValidTrace(t *testing.T) {
	path := writeSample(t)
	var out bytes.Buffer
	if err := run([]string{"-check", path}, nil, &out); err != nil {
		t.Fatalf("check failed on a valid trace: %v", err)
	}
	if !strings.Contains(out.String(), "4 events ok") {
		t.Errorf("check output = %q", out.String())
	}
}

func TestCheckRejectsBadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", path}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("check accepted a corrupt trace")
	}
	if err := run([]string{"-check"}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("check accepted an empty file list")
	}
}

func TestCheckPromValidatesExpositions(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "telemetry.prom")
	if err := os.WriteFile(good, []byte(
		"# TYPE sp_events_total counter\nsp_events_total{member=\"0\",key=\"switching/token_passes\"} 42\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-checkprom", good}, nil, &out); err != nil {
		t.Fatalf("checkprom failed on a valid exposition: %v", err)
	}
	if !strings.Contains(out.String(), "1 samples ok") {
		t.Errorf("checkprom output = %q", out.String())
	}

	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("sp_untyped{a=b} pancake\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-checkprom", bad}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("checkprom accepted a malformed exposition")
	}
	if err := run([]string{"-checkprom"}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("checkprom accepted an empty file list")
	}
}

func TestConvertFileAndStdout(t *testing.T) {
	path := writeSample(t)
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"traceEvents"`, `"switch e0"`, `"heal"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

func TestConvertToOutputFile(t *testing.T) {
	path := writeSample(t)
	dst := filepath.Join(t.TempDir(), "out.trace.json")
	if err := run([]string{"-o", dst, path}, nil, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"traceEvents"`) {
		t.Error("output file is not a chrome trace")
	}
}

func TestConvertFromStdin(t *testing.T) {
	events := []obs.Event{obs.Heal(time.Second)}
	b, err := obs.MarshalJSONL(events)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(b), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"heal"`) {
		t.Error("stdin conversion lost the event")
	}
	if err := run([]string{"a.jsonl", "b.jsonl"}, nil, &out); err == nil {
		t.Error("multiple convert inputs accepted")
	}
}
