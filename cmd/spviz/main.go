// Command spviz works with the structured event traces switchbench
// writes under -trace (TRACE_<experiment>.jsonl, see internal/obs):
//
//	spviz -check trace.jsonl [more.jsonl ...]  # validate traces
//	spviz -checkprom telemetry.prom [...]      # validate Prometheus expositions
//	spviz -o out.trace.json trace.jsonl        # convert to Chrome JSON
//	spviz trace.jsonl > out.trace.json         # same, to stdout
//	spviz < trace.jsonl > out.trace.json       # reads stdin with no args
//
// -checkprom validates the Prometheus text exposition switchbench
// writes under -telemetry (TYPE declarations, label syntax, histogram
// bucket monotonicity — see internal/obs/telemetry.ValidateProm).
//
// The converted file loads in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: one process per sweep run, one thread per member,
// switch rounds and epoch drains as spans, recovery and fault events as
// instants.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("spviz", flag.ContinueOnError)
	var (
		check     = fs.Bool("check", false, "validate the traces instead of converting")
		checkProm = fs.Bool("checkprom", false, "validate Prometheus text expositions instead of converting")
		out       = fs.String("o", "", "output file for the Chrome trace (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *checkProm {
		if fs.NArg() == 0 {
			return fmt.Errorf("-checkprom needs at least one exposition file")
		}
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			n, err := telemetry.ValidateProm(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Fprintf(stdout, "%s: %d samples ok\n", path, n)
		}
		return nil
	}

	if *check {
		if fs.NArg() == 0 {
			return fmt.Errorf("-check needs at least one trace file")
		}
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			n, err := obs.ValidateJSONL(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Fprintf(stdout, "%s: %d events ok\n", path, n)
		}
		return nil
	}

	var events []obs.Event
	switch fs.NArg() {
	case 0:
		var err error
		events, err = obs.ReadJSONL(stdin)
		if err != nil {
			return err
		}
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		events, err = obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(0), err)
		}
	default:
		return fmt.Errorf("convert one trace at a time (got %d files)", fs.NArg())
	}

	b, err := obs.ChromeTrace(events)
	if err != nil {
		return err
	}
	if *out != "" {
		return os.WriteFile(*out, b, 0o644)
	}
	_, err = stdout.Write(b)
	return err
}
