// Command switchbench regenerates the paper's §7 evaluation:
//
//	switchbench -experiment figure2     # Figure 2: latency vs. active senders
//	switchbench -experiment overhead    # switch overhead near the crossover (~31 ms in the paper)
//	switchbench -experiment hysteresis  # oscillation with and without hysteresis
//	switchbench -experiment chaos       # E13: fault-schedule sweep vs. the self-healing SP
//	switchbench -experiment perf        # E18: stack throughput (msgs/sec, allocs/msg) per protocol
//	switchbench -experiment all
//
// All experiments run on the deterministic discrete-event simulator, so
// results are reproducible for a given -seed. Sweeps execute their
// independent DES runs on a worker pool (-parallel N, default
// GOMAXPROCS); tables and artifacts are byte-identical for any worker
// count — only the wall clock changes. The one exception is the E18
// perf table, whose msgs/sec and allocs/msg columns are host-side
// wall-clock measurements by design (the virtual workload underneath
// is still deterministic per seed).
//
// With -json <dir>, each experiment also writes a machine-readable
// BENCH_<experiment>.json artifact (schema "switchbench/<experiment>",
// see internal/harness/benchjson.go): per-point latency statistics,
// crossover, chaos pass/fail counts and recovery bounds, DES event
// counts, and a wall-clock/throughput timing section.
//
// With -trace <dir>, experiments that drive the switching layer
// additionally write TRACE_<experiment>.jsonl — the deterministic
// structured event stream (see internal/obs). Convert a trace for
// Perfetto/chrome://tracing with cmd/spviz, or validate it with
// spviz -check.
//
// With -telemetry <dir>, the chaos sweep additionally runs the live
// telemetry layer (internal/obs/telemetry) and writes two outputs
// there: BENCH_telemetry.json — the windowed time-series and the
// switch-decision audit trail (schema "switchbench/telemetry") — and
// telemetry.prom, the Prometheus text exposition of the sweep's merged
// counters and histograms (validate with spviz -checkprom). Both are
// deterministic per seed; compare artifacts across runs with
// cmd/sptrend.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/harness/engine"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "switchbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("switchbench", flag.ContinueOnError)
	var (
		experiment   = fs.String("experiment", "all", "figure2 | overhead | hysteresis | p2p | chaos | perf | all")
		seed         = fs.Int64("seed", 1, "simulation seed")
		schedules    = fs.Int("schedules", 200, "fault schedules for the chaos sweep")
		chaosSettle  = fs.Duration("chaos-settle", 0, "chaos: settle window after faults heal (0: package default)")
		chaosDrain   = fs.Duration("chaos-drain", 0, "chaos: drain window for liveness probes (0: package default)")
		chaosCorrupt = fs.Bool("chaos-corruption", false, "chaos: add corruption/truncation/garbage faults (E15) and enable the defensive ingress")
		chaosForgery = fs.Bool("chaos-forgery", false, "chaos: add forged-frame/wire-replay faults (E16) and enable the authenticated ingress")
		chaosCrowd   = fs.Bool("chaos-flashcrowd", false, "chaos: add flash-crowd faults and the overload layer, plus the E17 latency/shed study")
		chaosGray    = fs.Bool("chaos-gray", false, "chaos: add gray-failure faults (slow nodes, asymmetric links, flapping) and the adaptive detector, plus the E20 stability study")
		senders      = fs.Int("senders", 10, "maximum active senders for figure2")
		measure      = fs.Duration("measure", 10*time.Second, "virtual measurement window per point")
		warmup       = fs.Duration("warmup", 2*time.Second, "virtual warmup discarded from statistics")
		msgBytes     = fs.Int("msgbytes", 0, "application payload size (default: calibrated 2240)")
		hybrid       = fs.Bool("hybrid", true, "include the switching hybrid in figure2")
		parallel     = fs.Int("parallel", 0, "worker count for sweep runs (<= 0: GOMAXPROCS); results are identical for any value")
		jsonDir      = fs.String("json", "", "directory to write BENCH_<experiment>.json artifacts (empty: no artifacts)")
		traceDir     = fs.String("trace", "", "directory to write TRACE_<experiment>.jsonl event streams (empty: no traces)")
		telemetryDir = fs.String("telemetry", "", "directory to write the chaos sweep's telemetry (BENCH_telemetry.json + telemetry.prom; empty: telemetry off)")
		quiet        = fs.Bool("quiet", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate output directories before running anything: experiments
	// take minutes, and a typo'd path should fail in milliseconds.
	for _, d := range []struct{ flag, dir string }{{"-json", *jsonDir}, {"-trace", *traceDir}, {"-telemetry", *telemetryDir}} {
		if err := ensureWritableDir(d.flag, d.dir); err != nil {
			return err
		}
	}
	rc := harness.DefaultRunConfig()
	rc.Seed = *seed
	rc.Measure = *measure
	rc.Warmup = *warmup
	if *msgBytes > 0 {
		rc.MsgBytes = *msgBytes
	}
	// The resolved worker count (for configs and the timing section).
	workers := engine.New(*parallel).Workers()
	// Sweep jobs report progress from worker goroutines; serialize the
	// writes so lines do not interleave.
	var progressMu sync.Mutex
	progress := func(msg string) {
		if !*quiet {
			progressMu.Lock()
			fmt.Fprintf(os.Stderr, "  ... %s\n", msg)
			progressMu.Unlock()
		}
	}
	// writeBench emits one BENCH_<name>.json artifact under -json.
	writeBench := func(name string, art any) error {
		if *jsonDir == "" {
			return nil
		}
		b, err := harness.EncodeBench(art)
		if err != nil {
			return err
		}
		path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		progress("wrote " + path)
		return nil
	}
	// writeTrace emits one TRACE_<name>.jsonl event stream under -trace.
	// An experiment that recorded nothing still writes the (empty) file,
	// so downstream tooling can rely on the set of outputs.
	writeTrace := func(name string, events []obs.Event) error {
		if *traceDir == "" {
			return nil
		}
		b, err := obs.MarshalJSONL(events)
		if err != nil {
			return err
		}
		path := filepath.Join(*traceDir, "TRACE_"+name+".jsonl")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		progress("wrote " + path)
		return nil
	}
	tracing := *traceDir != ""

	doFigure2 := func() error {
		fmt.Println("=== E3/E4: Figure 2 ===")
		cfg := harness.Figure2Config{
			Run:           rc,
			MaxSenders:    *senders,
			IncludeHybrid: *hybrid,
			Parallel:      workers,
			Trace:         tracing,
			Progress:      progress,
		}
		start := time.Now()
		res, err := harness.RunFigure2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeTrace("figure2", res.Trace); err != nil {
			return err
		}
		art := harness.NewBenchFigure2(res)
		art.SetTiming(time.Since(start), workers)
		return writeBench("figure2", art)
	}
	doOverhead := func() error {
		fmt.Println("=== E5: switching overhead ===")
		cfg := harness.DefaultOverheadConfig()
		cfg.Run.Seed = *seed
		cfg.Parallel = workers
		cfg.Trace = tracing
		start := time.Now()
		res, err := harness.RunOverhead(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		progress("overhead sweep")
		rows, err := harness.RunOverheadSweep(cfg, []int{2, 5, 8})
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverheadSweep(rows))
		if tracing {
			// Run 0 is the single §7 measurement; the sweep rows follow
			// in their deterministic grid order.
			traces := [][]obs.Event{res.Trace}
			for _, r := range rows {
				traces = append(traces, r.Trace)
			}
			if err := writeTrace("overhead", obs.MergeRuns(traces)); err != nil {
				return err
			}
		}
		art := harness.NewBenchOverhead(*seed, res, rows)
		art.SetTiming(time.Since(start), workers)
		return writeBench("overhead", art)
	}
	doHysteresis := func() error {
		fmt.Println("=== E6: oscillation / hysteresis ===")
		cfg := harness.DefaultHysteresisConfig()
		cfg.Run.Seed = *seed
		cfg.Parallel = workers
		cfg.Trace = tracing
		start := time.Now()
		rows, err := harness.RunHysteresisComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderHysteresis(rows))
		if tracing {
			traces := make([][]obs.Event, len(rows))
			for i, r := range rows {
				traces[i] = r.Trace
			}
			if err := writeTrace("hysteresis", obs.MergeRuns(traces)); err != nil {
				return err
			}
		}
		art := harness.NewBenchHysteresis(*seed, rows)
		art.SetTiming(time.Since(start), workers)
		return writeBench("hysteresis", art)
	}
	doChaos := func() error {
		fmt.Println("=== E13: chaos sweep ===")
		cfg := harness.DefaultChaosSweepConfig()
		cfg.Seed = *seed
		cfg.Schedules = *schedules
		cfg.Run.Settle = *chaosSettle
		cfg.Run.Drain = *chaosDrain
		cfg.Gen.Corruption = *chaosCorrupt
		cfg.Gen.Forgery = *chaosForgery
		cfg.FlashCrowd = *chaosCrowd
		cfg.GrayFailure = *chaosGray
		cfg.Parallel = workers
		cfg.Trace = tracing
		cfg.Progress = progress
		if *telemetryDir != "" {
			cfg.Telemetry = &telemetry.Config{}
		}
		start := time.Now()
		res, err := harness.RunChaosSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeTrace("chaos", res.Trace); err != nil {
			return err
		}
		art := harness.NewBenchChaos(*seed, res)
		art.SetTiming(time.Since(start), workers)
		if err := writeBench("chaos", art); err != nil {
			return err
		}
		if *telemetryDir != "" {
			tart := harness.NewBenchTelemetry(*seed, telemetry.DefaultInterval, res)
			tart.SetTiming(time.Since(start), workers)
			b, err := harness.EncodeBench(tart)
			if err != nil {
				return err
			}
			path := filepath.Join(*telemetryDir, "BENCH_telemetry.json")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				return err
			}
			progress("wrote " + path)
			var prom bytes.Buffer
			if err := telemetry.WriteMetricsProm(&prom, res.Metrics); err != nil {
				return err
			}
			path = filepath.Join(*telemetryDir, "telemetry.prom")
			if err := os.WriteFile(path, prom.Bytes(), 0o644); err != nil {
				return err
			}
			progress("wrote " + path)
		}
		// The artifact records failures; the exit code still flags them.
		if len(res.Failures) > 0 {
			return fmt.Errorf("%d of %d schedules violated invariants", len(res.Failures), res.Schedules)
		}
		return nil
	}
	doPerf := func() error {
		fmt.Println("=== E18: stack throughput ===")
		// The perf grid runs strictly serially regardless of -parallel:
		// allocation accounting and wall-clock throughput would otherwise
		// attribute one run's cost to another (see perf.go).
		cfg := harness.PerfConfig{Seed: *seed}
		start := time.Now()
		rows, err := harness.RunPerf(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderPerf(rows))
		art := harness.NewBenchPerf(cfg, rows)
		art.SetTiming(time.Since(start), 1)
		return writeBench("perf", art)
	}
	doP2P := func() error {
		fmt.Println("=== E11: point-to-point specialization ===")
		cfg := harness.DefaultP2PConfig()
		cfg.Seed = *seed
		cfg.Parallel = workers
		start := time.Now()
		rows, err := harness.RunP2PSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderP2PTable(rows))
		art := harness.NewBenchP2P(*seed, rows)
		art.SetTiming(time.Since(start), workers)
		return writeBench("p2p", art)
	}

	switch *experiment {
	case "figure2":
		return doFigure2()
	case "overhead":
		return doOverhead()
	case "hysteresis":
		return doHysteresis()
	case "p2p":
		return doP2P()
	case "chaos":
		return doChaos()
	case "perf":
		return doPerf()
	case "all":
		if err := doFigure2(); err != nil {
			return err
		}
		if err := doOverhead(); err != nil {
			return err
		}
		if err := doHysteresis(); err != nil {
			return err
		}
		if err := doP2P(); err != nil {
			return err
		}
		if err := doPerf(); err != nil {
			return err
		}
		return doChaos()
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

// ensureWritableDir creates the output directory if needed and proves
// it is writable with a throwaway probe file. An empty dir means the
// flag is unset and nothing is checked.
func ensureWritableDir(flagName, dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%s %s: %w", flagName, dir, err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("%s %s: not writable: %w", flagName, dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}
