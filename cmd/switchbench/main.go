// Command switchbench regenerates the paper's §7 evaluation:
//
//	switchbench -experiment figure2     # Figure 2: latency vs. active senders
//	switchbench -experiment overhead    # switch overhead near the crossover (~31 ms in the paper)
//	switchbench -experiment hysteresis  # oscillation with and without hysteresis
//	switchbench -experiment chaos       # E13: fault-schedule sweep vs. the self-healing SP
//	switchbench -experiment all
//
// All experiments run on the deterministic discrete-event simulator, so
// results are reproducible for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "switchbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("switchbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "figure2 | overhead | hysteresis | p2p | chaos | all")
		seed       = fs.Int64("seed", 1, "simulation seed")
		schedules  = fs.Int("schedules", 200, "fault schedules for the chaos sweep")
		senders    = fs.Int("senders", 10, "maximum active senders for figure2")
		measure    = fs.Duration("measure", 10*time.Second, "virtual measurement window per point")
		warmup     = fs.Duration("warmup", 2*time.Second, "virtual warmup discarded from statistics")
		msgBytes   = fs.Int("msgbytes", 0, "application payload size (default: calibrated 2240)")
		hybrid     = fs.Bool("hybrid", true, "include the switching hybrid in figure2")
		quiet      = fs.Bool("quiet", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rc := harness.DefaultRunConfig()
	rc.Seed = *seed
	rc.Measure = *measure
	rc.Warmup = *warmup
	if *msgBytes > 0 {
		rc.MsgBytes = *msgBytes
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  ... %s\n", msg)
		}
	}

	doFigure2 := func() error {
		fmt.Println("=== E3/E4: Figure 2 ===")
		cfg := harness.Figure2Config{
			Run:           rc,
			MaxSenders:    *senders,
			IncludeHybrid: *hybrid,
			Progress:      progress,
		}
		res, err := harness.RunFigure2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}
	doOverhead := func() error {
		fmt.Println("=== E5: switching overhead ===")
		cfg := harness.DefaultOverheadConfig()
		cfg.Run.Seed = *seed
		res, err := harness.RunOverhead(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		progress("overhead sweep")
		rows, err := harness.RunOverheadSweep(cfg, []int{2, 5, 8})
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverheadSweep(rows))
		return nil
	}
	doHysteresis := func() error {
		fmt.Println("=== E6: oscillation / hysteresis ===")
		cfg := harness.DefaultHysteresisConfig()
		cfg.Run.Seed = *seed
		rows, err := harness.RunHysteresisComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderHysteresis(rows))
		return nil
	}
	doChaos := func() error {
		fmt.Println("=== E13: chaos sweep ===")
		cfg := harness.DefaultChaosSweepConfig()
		cfg.Seed = *seed
		cfg.Schedules = *schedules
		cfg.Progress = progress
		res, err := harness.RunChaosSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if len(res.Failures) > 0 {
			return fmt.Errorf("%d of %d schedules violated invariants", len(res.Failures), res.Schedules)
		}
		return nil
	}
	doP2P := func() error {
		fmt.Println("=== E11: point-to-point specialization ===")
		cfg := harness.DefaultP2PConfig()
		cfg.Seed = *seed
		out, err := harness.P2PTable(cfg)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}

	switch *experiment {
	case "figure2":
		return doFigure2()
	case "overhead":
		return doOverhead()
	case "hysteresis":
		return doHysteresis()
	case "p2p":
		return doP2P()
	case "chaos":
		return doChaos()
	case "all":
		if err := doFigure2(); err != nil {
			return err
		}
		if err := doOverhead(); err != nil {
			return err
		}
		if err := doHysteresis(); err != nil {
			return err
		}
		if err := doP2P(); err != nil {
			return err
		}
		return doChaos()
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}
