package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/harness"
)

// tiny returns flags for a fast (but real) run.
func tiny(extra ...string) []string {
	base := []string{
		"-measure", "400ms",
		"-warmup", "200ms",
		"-quiet",
	}
	return append(base, extra...)
}

func TestFigure2Small(t *testing.T) {
	if err := run(tiny("-experiment", "figure2", "-senders", "2", "-hybrid=false")); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2WithHybrid(t *testing.T) {
	if err := run(tiny("-experiment", "figure2", "-senders", "1", "-hybrid")); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadExperiment(t *testing.T) {
	if err := run(tiny("-experiment", "overhead")); err != nil {
		t.Fatal(err)
	}
}

func TestHysteresisExperiment(t *testing.T) {
	if err := run(tiny("-experiment", "hysteresis")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMsgBytesOverride(t *testing.T) {
	if err := run(tiny("-experiment", "figure2", "-senders", "1", "-hybrid=false", "-msgbytes", "512")); err != nil {
		t.Fatal(err)
	}
}

func TestP2PExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "p2p", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "chaos", "-schedules", "8", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosForgeryExperiment(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-experiment", "chaos", "-schedules", "12",
			"-chaos-corruption", "-chaos-forgery", "-quiet"})
	})
	for _, want := range []string{"with forged frames", "forged frames injected", "auth rejections"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("forgery sweep output missing %q:\n%s", want, out)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

// scrubArtifact parses a BENCH_*.json file and drops its timing section
// (the only non-deterministic part), returning re-marshaled bytes for
// comparison.
func scrubArtifact(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if _, ok := m["timing"]; !ok {
		t.Fatalf("%s has no timing section", path)
	}
	delete(m, "timing")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// scrubPerfSection removes the E18 stack-throughput block from
// captured stdout: its msgs/sec, allocs/msg, and speedup columns are
// wall-clock measurements (like an artifact's timing section) and
// legitimately differ between runs. Fails the test if the block is
// missing — "all" must still run the experiment.
func scrubPerfSection(t *testing.T, out []byte) []byte {
	t.Helper()
	header := []byte("=== E18: stack throughput ===")
	start := bytes.Index(out, header)
	if start < 0 {
		t.Fatal("stdout has no E18 section — perf missing from -experiment all")
	}
	rest := out[start+len(header):]
	end := bytes.Index(rest, []byte("=== "))
	if end < 0 {
		return out[:start]
	}
	scrubbed := append([]byte(nil), out[:start]...)
	return append(scrubbed, rest[end:]...)
}

// scrubPerfArtifact is scrubArtifact plus removal of the perf rows'
// host-side fields (wall_ms, msgs_per_sec, allocs_per_msg), which sit
// outside the timing section on purpose so benchdiff can gate on them.
func scrubPerfArtifact(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	delete(m, "timing")
	rows, ok := m["rows"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("%s has no rows", path)
	}
	for _, r := range rows {
		row, ok := r.(map[string]any)
		if !ok {
			t.Fatalf("%s: malformed row %v", path, r)
		}
		delete(row, "wall_ms")
		delete(row, "msgs_per_sec")
		delete(row, "allocs_per_msg")
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJSONArtifactsWritten checks that -json writes one valid
// BENCH_<experiment>.json per experiment with the expected schema tag.
func TestJSONArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	args := tiny("-experiment", "all", "-senders", "2", "-hybrid=false",
		"-schedules", "4", "-parallel", "2", "-json", dir)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure2", "overhead", "hysteresis", "p2p", "chaos", "perf"} {
		path := filepath.Join(dir, "BENCH_"+name+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing artifact: %v", err)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Errorf("%s: invalid JSON: %v", path, err)
			continue
		}
		if got := m["schema"]; got != "switchbench/"+name {
			t.Errorf("%s: schema = %v", path, got)
		}
		if got := m["version"]; got != float64(harness.BenchSchemaVersion) {
			t.Errorf("%s: version = %v", path, got)
		}
		timing, ok := m["timing"].(map[string]any)
		if !ok {
			t.Errorf("%s: no timing section", path)
			continue
		}
		// The perf grid runs serially by design regardless of -parallel.
		wantWorkers := float64(2)
		if name == "perf" {
			wantWorkers = 1
		}
		if timing["parallel"] != wantWorkers {
			t.Errorf("%s: timing.parallel = %v", path, timing["parallel"])
		}
		if timing["wall_ms"] == float64(0) {
			t.Errorf("%s: timing.wall_ms is zero", path)
		}
	}
}

// TestParallelOutputByteIdentical is the CLI-level acceptance check:
// the rendered tables on stdout and the JSON artifacts (minus the
// wall-clock timing section) are byte-identical at -parallel 1 and
// -parallel 4. The E18 perf table reports wall-clock throughput — the
// stdout counterpart of the artifacts' timing section — so it is
// scrubbed the same way (after checking both runs printed it).
func TestParallelOutputByteIdentical(t *testing.T) {
	runAt := func(workers string) (stdout []byte, dir string) {
		dir = t.TempDir()
		args := tiny("-experiment", "all", "-senders", "3",
			"-schedules", "6", "-parallel", workers, "-json", dir, "-trace", dir)
		stdout = captureStdout(t, func() error { return run(args) })
		return stdout, dir
	}
	seqOut, seqDir := runAt("1")
	parOut, parDir := runAt("4")
	seqOut = scrubPerfSection(t, seqOut)
	parOut = scrubPerfSection(t, parOut)
	if !bytes.Equal(seqOut, parOut) {
		t.Errorf("stdout differs between -parallel 1 and 4:\n--- parallel 1 ---\n%s\n--- parallel 4 ---\n%s",
			seqOut, parOut)
	}
	for _, name := range []string{"figure2", "overhead", "hysteresis", "p2p", "chaos"} {
		file := "BENCH_" + name + ".json"
		seq := scrubArtifact(t, filepath.Join(seqDir, file))
		par := scrubArtifact(t, filepath.Join(parDir, file))
		if !bytes.Equal(seq, par) {
			t.Errorf("%s differs between -parallel 1 and 4:\n%s\nvs\n%s", file, seq, par)
		}
	}
	// The perf artifact's rows carry host-side fields (wall_ms,
	// msgs_per_sec, allocs_per_msg) by design — benchdiff gates on them —
	// so those are scrubbed along with timing; the virtual payload
	// (config, delivered, events per row) must still match exactly.
	{
		file := "BENCH_perf.json"
		seq := scrubPerfArtifact(t, filepath.Join(seqDir, file))
		par := scrubPerfArtifact(t, filepath.Join(parDir, file))
		if !bytes.Equal(seq, par) {
			t.Errorf("%s differs between -parallel 1 and 4:\n%s\nvs\n%s", file, seq, par)
		}
	}
	// Traces have no timing section at all: the raw bytes must match.
	for _, name := range []string{"figure2", "overhead", "hysteresis", "chaos"} {
		file := "TRACE_" + name + ".jsonl"
		seq, err := os.ReadFile(filepath.Join(seqDir, file))
		if err != nil {
			t.Errorf("missing trace: %v", err)
			continue
		}
		par, err := os.ReadFile(filepath.Join(parDir, file))
		if err != nil {
			t.Errorf("missing trace: %v", err)
			continue
		}
		if !bytes.Equal(seq, par) {
			t.Errorf("%s differs between -parallel 1 and 4 (%d vs %d bytes)",
				file, len(seq), len(par))
		}
		if len(seq) == 0 && name == "chaos" {
			t.Errorf("%s is empty — chaos runs should always record events", file)
		}
	}
}

// TestChaosFailureStillWritesArtifact: when schedules violate
// invariants, switchbench must both return an error (non-zero exit) and
// still have written the chaos artifact recording the failures.
func TestChaosFailureStillWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	// A 1ns settle/drain window starves the liveness probes (propagation
	// alone takes ~300µs), so schedules fail invariants deterministically.
	err := run([]string{"-experiment", "chaos", "-schedules", "3", "-quiet",
		"-chaos-settle", "1ns", "-chaos-drain", "1ns", "-json", dir})
	path := filepath.Join(dir, "BENCH_chaos.json")
	raw, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatalf("failing sweep left no artifact: %v", readErr)
	}
	var m map[string]any
	if jsonErr := json.Unmarshal(raw, &m); jsonErr != nil {
		t.Fatalf("artifact invalid: %v", jsonErr)
	}
	if failed, _ := m["failed"].(float64); failed > 0 {
		if err == nil {
			t.Error("invariant violations did not propagate as an error")
		}
		failures, ok := m["failures"].([]any)
		if !ok || len(failures) == 0 {
			t.Fatal("artifact omits the failures list")
		}
		// Every failure record must carry the flight recorder's tail of
		// events leading up to the violation.
		first, _ := failures[0].(map[string]any)
		trace, _ := first["trace"].([]any)
		if len(trace) == 0 {
			t.Error("failure record has no flight-recorder trace")
		}
	} else if err != nil {
		t.Errorf("no recorded failures but run returned %v", err)
	}
}

// TestOutputDirValidatedUpFront: a -json or -trace path colliding with
// an existing file must fail before any experiment runs.
func TestOutputDirValidatedUpFront(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := run(tiny("-experiment", "figure2", "-senders", "1", "-json", file)); err == nil {
		t.Error("-json pointing at a file accepted")
	}
	if err := run(tiny("-experiment", "figure2", "-senders", "1", "-trace", file)); err == nil {
		t.Error("-trace pointing at a file accepted")
	}
	// Both must fail fast — before the (hundreds of ms) experiment runs.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("directory validation took %v — ran the experiment first?", elapsed)
	}
}
