package main

import "testing"

// tiny returns flags for a fast (but real) run.
func tiny(extra ...string) []string {
	base := []string{
		"-measure", "400ms",
		"-warmup", "200ms",
		"-quiet",
	}
	return append(base, extra...)
}

func TestFigure2Small(t *testing.T) {
	if err := run(tiny("-experiment", "figure2", "-senders", "2", "-hybrid=false")); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2WithHybrid(t *testing.T) {
	if err := run(tiny("-experiment", "figure2", "-senders", "1", "-hybrid")); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadExperiment(t *testing.T) {
	if err := run(tiny("-experiment", "overhead")); err != nil {
		t.Fatal(err)
	}
}

func TestHysteresisExperiment(t *testing.T) {
	if err := run(tiny("-experiment", "hysteresis")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMsgBytesOverride(t *testing.T) {
	if err := run(tiny("-experiment", "figure2", "-senders", "1", "-hybrid=false", "-msgbytes", "512")); err != nil {
		t.Fatal(err)
	}
}

func TestP2PExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "p2p", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "chaos", "-schedules", "8", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}
