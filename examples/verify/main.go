// Verify: the formal layer applied to a live run. The example drives a
// switched execution (sequencer → token order, mid-traffic), records
// the application-level trace, writes it as JSON (consumable by
// cmd/tracecheck), and evaluates every Table 1 property plus the
// repository's extensions against it — the same machine-checkable
// verdicts the paper's Table 2 predicts.
//
//	go run ./examples/verify [trace.json]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("verify: ", err)
	}
}

func run(args []string) error {
	const members = 4
	cfg := switching.Config{Protocols: harness.Factories(time.Millisecond)}
	cluster, err := swtest.NewSwitched(5, simnet.Ethernet10Mbit(members), members, cfg)
	if err != nil {
		return err
	}

	var sent []ptest.SentMsg
	cast := func(p ids.ProcID, seq uint32, body string) {
		m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: []byte(body)}
		s, err := cluster.CastApp(m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cast:", err)
			return
		}
		sent = append(sent, s)
	}

	fmt.Println("running: 4 members, 24 messages, one protocol switch mid-stream")
	for i := 0; i < 24; i++ {
		at := time.Duration(i+1) * 4 * time.Millisecond
		i := i
		cluster.Sim.At(at, func() {
			cast(ids.ProcID(i%members), uint32(i), fmt.Sprintf("msg-%02d", i))
		})
	}
	cluster.Sim.At(50*time.Millisecond, func() {
		cluster.Members[1].Switch.RequestSwitch()
	})
	// A back-to-back burst: the second send departs before the first
	// loops back, so the Amoeba discipline is structurally violated
	// (the paper's protocols enforce it; plain total order does not).
	cluster.Sim.At(60*time.Millisecond, func() {
		cast(3, 100, "burst-a")
		cast(3, 101, "burst-b")
	})
	cluster.Run(10 * time.Second)
	cluster.Stop()

	tr, err := cluster.TraceTimed(sent)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d events (%d sends, %d deliveries across %d members)\n\n",
		len(tr), len(sent), len(tr)-len(sent), members)

	// Persist for cmd/tracecheck.
	out := "trace.json"
	if len(args) > 0 {
		out = args[0]
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace written to %s (try: go run ./cmd/tracecheck -trace %s)\n\n", out, out)

	// Evaluate the predicates. Both protocols are total-order over
	// reliable FIFO, so everything the SP preserves must hold.
	group := ids.Procs(members)
	trusted := map[ids.ProcID]bool{}
	for _, p := range group {
		trusted[p] = true
	}
	checks := []struct {
		p    property.Property
		want bool
		why  string
	}{
		{property.Reliability{Group: group}, true, "preserved by SP (§6.3 note)"},
		{property.TotalOrder{}, true, "all six meta-properties (Table 2)"},
		{property.Integrity{Trusted: trusted}, true, "all six meta-properties"},
		{property.Confidentiality{Trusted: trusted}, true, "all six meta-properties"},
		{property.NoReplay{}, true, "bodies are unique in this workload"},
		{property.CausalOrder{}, true, "subsumed by the SP's epoch boundary"},
		{property.PrioritizedDelivery{Master: 0}, false, "not asynchronous (§5.2): no protocol here enforces it"},
		{property.Amoeba{}, false, "the burst sent twice without awaiting its own delivery"},
	}
	fmt.Printf("%-22s %-10s %s\n", "property", "verdict", "expectation")
	mismatches := 0
	for _, c := range checks {
		got := c.p.Holds(tr)
		verdict := "HOLDS"
		if !got {
			verdict = "violated"
		}
		marker := " "
		if got != c.want {
			marker = "!"
			mismatches++
		}
		fmt.Printf("%s %-20s %-10s %s\n", marker, c.p.Name(), verdict, c.why)
	}
	if mismatches > 0 {
		return fmt.Errorf("%d properties disagreed with the Table 2 prediction", mismatches)
	}
	fmt.Println("\nevery verdict matches what Table 2 predicts for this workload.")
	return nil
}
