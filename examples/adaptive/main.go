// Adaptive: the "Performance" use case of §1 — a hybrid protocol built
// by switching at the Figure 2 crossover. The offered load ramps from 2
// to 8 active senders and back; a hysteresis oracle switches between
// the sequencer (best at low load) and the token protocol (no
// bottleneck at high load), and the example reports the per-phase
// latency the application observed.
//
// Runs on the deterministic discrete-event simulator (virtual time), so
// it finishes in well under a second of wall time.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core/switching"
	"repro/internal/harness"
	"repro/internal/ids"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("adaptive: ", err)
	}
}

func run() error {
	rc := harness.DefaultRunConfig()
	rc.Warmup = 0
	rc.Measure = 24 * time.Second
	rc.Drain = 4 * time.Second

	run, err := harness.NewSwitchedRun(rc, switching.Config{
		OnSwitchComplete: func(r switching.Record) {
			fmt.Printf("  t=%-6v switch by %v closed epoch %d (took %v)\n",
				r.Started.Round(time.Millisecond), r.Initiator, r.Epoch,
				r.Duration().Round(time.Millisecond))
		},
	})
	if err != nil {
		return err
	}
	sim := run.Cluster.Sim

	// Load profile: each phase lasts 6 virtual seconds.
	phases := []int{2, 8, 2, 8}
	const phaseLen = 6 * time.Second
	level := func() int {
		idx := int(sim.Now() / phaseLen)
		if idx >= len(phases) {
			return 0
		}
		return phases[idx]
	}

	// 50 msgs/s per active sender, like §7.
	interval := 20 * time.Millisecond
	for s := 0; s < rc.Group; s++ {
		p := ids.ProcID(s)
		var tick func()
		tick = func() {
			if sim.Now() >= rc.Measure {
				return
			}
			if int(p) < level() {
				run.Cast(p)
			}
			sim.After(interval, tick)
		}
		sim.After(time.Duration(s)*interval/10, tick)
	}
	// The oracle: hysteresis around the Figure 2 crossover (between 5
	// and 6 active senders), polled twice a second by the manager.
	oracle, err := switching.NewHysteresisOracle(4.5, 6.5)
	if err != nil {
		return err
	}
	ctrl, err := switching.NewController(run.Cluster.Members[0].Switch, oracle,
		func() float64 { return float64(level()) }, 500*time.Millisecond)
	if err != nil {
		return err
	}

	fmt.Println("load profile: 2 -> 8 -> 2 -> 8 active senders, 6s per phase")
	fmt.Println("oracle: hysteresis band [4.5, 6.5) around the crossover")
	fmt.Println()
	res := run.Finish()

	fmt.Printf("\noverall: %d deliveries, mean latency %.1f ms, p99 %.1f ms\n",
		res.Delivered, harness.Millis(res.Stats.Mean), harness.Millis(res.Stats.P99))
	fmt.Printf("controller issued %d switch requests (one per load edge —\n", ctrl.SwitchRequests)
	fmt.Println("an aggressive threshold oracle would oscillate; see")
	fmt.Println("`switchbench -experiment hysteresis`)")

	active := run.Cluster.Members[0].Switch.ActiveProtocol()
	name := []string{"sequencer", "token"}[active]
	fmt.Printf("final active protocol: %s (epoch %d)\n", name, run.Cluster.Members[0].Switch.Epoch())
	return nil
}
