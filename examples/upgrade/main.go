// Upgrade: the "On-line Upgrading" use case of §1 — "protocol switching
// can be used to upgrade networking protocols at run-time without
// having to restart applications. Even minor bug fixes may be done in
// this way."
//
// Here the group migrates its sequencer role from member 0 (being
// drained for maintenance) to member 4 by switching between two
// configurations of the same protocol, mid-traffic, with zero message
// loss and total order intact.
//
//	go run ./examples/upgrade
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("upgrade: ", err)
	}
}

func run() error {
	const members = 5
	cfg := switching.Config{
		Protocols: []switching.ProtocolFactory{
			// v1: sequencer at member 0.
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
			},
			// v2: sequencer at member 4.
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(4), fifo.New(fifo.Config{})}
			},
		},
		OnSwitchComplete: func(r switching.Record) {
			fmt.Printf("  upgrade completed in %v (initiated by %v)\n",
				r.Duration().Round(time.Millisecond), r.Initiator)
		},
	}
	cluster, err := swtest.NewSwitched(7, simnet.Ethernet10Mbit(members), members, cfg)
	if err != nil {
		return err
	}
	sim := cluster.Sim

	const total = 40
	sent := 0
	var tick func()
	tick = func() {
		if sent >= total {
			return
		}
		p := ids.ProcID(sent % members)
		m := proto.AppMsg{
			ID:     proto.MakeMsgID(p, uint32(sent)),
			Sender: p,
			Body:   []byte(fmt.Sprintf("order-%02d", sent)),
		}
		sent++
		if err := cluster.Members[p].Switch.Cast(m.Encode()); err != nil {
			fmt.Fprintln(os.Stderr, "cast:", err)
		}
		sim.After(5*time.Millisecond, tick)
	}
	sim.After(0, tick)

	fmt.Println("streaming 40 orders through sequencer v1 (at member 0)...")
	sim.At(60*time.Millisecond, func() {
		fmt.Println("  t=60ms: operator requests the v1 -> v2 upgrade")
		cluster.Members[0].Switch.RequestSwitch()
	})
	cluster.Run(10 * time.Second)
	cluster.Stop()

	ref, err := cluster.AppBodies(0)
	if err != nil {
		return err
	}
	if len(ref) != total {
		return fmt.Errorf("member 0 delivered %d/%d orders", len(ref), total)
	}
	for p := 1; p < members; p++ {
		got, err := cluster.AppBodies(ids.ProcID(p))
		if err != nil {
			return err
		}
		if len(got) != total {
			return fmt.Errorf("member %d delivered %d/%d orders", p, len(got), total)
		}
		for i := range ref {
			if got[i] != ref[i] {
				return fmt.Errorf("member %d disagrees at %d", p, i)
			}
		}
	}
	for p := 0; p < members; p++ {
		if e := cluster.Members[p].Switch.Epoch(); e != 1 {
			return fmt.Errorf("member %d still on epoch %d", p, e)
		}
	}
	fmt.Printf("\nall %d orders delivered at all %d members, in one total order,\n", total, members)
	fmt.Println("across the upgrade; the application never restarted, senders were")
	fmt.Println("never blocked, and member 0 now carries no sequencing traffic.")
	return nil
}
