// Quickstart: a five-member group switches between two total-order
// protocols at run time, on the goroutine (real-time) runtime, without
// the application noticing anything but a transparent multicast service.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
	"repro/internal/runtime/realtime"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("quickstart: ", err)
	}
}

func run() error {
	const members = 5
	group, err := realtime.NewGroup(realtime.Config{
		Nodes:     members,
		PropDelay: time.Millisecond,
		Jitter:    500 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer group.Stop()

	// The two interchangeable protocols: sequencer-based total order
	// (fast at low load) and token-based total order (no bottleneck).
	protocols := []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{tokenorder.New(tokenorder.Config{HoldDelay: 2 * time.Millisecond}), fifo.New(fifo.Config{})}
		},
	}

	var mu sync.Mutex
	delivered := make(map[ids.ProcID][]string, members)
	switches := make([]*switching.Switch, members)
	for _, node := range group.Nodes() {
		node := node
		self := node.Self()
		app := proto.UpFunc(func(src ids.ProcID, payload []byte) {
			m, err := proto.DecodeApp(payload)
			if err != nil {
				return
			}
			mu.Lock()
			delivered[self] = append(delivered[self], string(m.Body))
			mu.Unlock()
		})
		var sw *switching.Switch
		var buildErr error
		node.Run(func() {
			sw, buildErr = switching.New(node, app, node.Transport(), switching.Config{
				Protocols:     protocols,
				TokenInterval: 5 * time.Millisecond,
				OnSwitchComplete: func(r switching.Record) {
					fmt.Printf("  [switch] initiator=%v closed epoch %d in %v\n",
						r.Initiator, r.Epoch, r.Duration().Round(time.Millisecond))
				},
			})
		})
		if buildErr != nil {
			return buildErr
		}
		switches[self] = sw
		node.Bind(sw.Recv)
	}

	cast := func(p ids.ProcID, seq uint32, body string) {
		group.Node(p).Run(func() {
			m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: []byte(body)}
			if err := switches[p].Cast(m.Encode()); err != nil {
				fmt.Fprintln(os.Stderr, "cast:", err)
			}
		})
	}

	fmt.Println("phase 1: multicasting on the sequencer protocol")
	for i := 0; i < 3; i++ {
		cast(ids.ProcID(i), uint32(i), fmt.Sprintf("seq-era-%d", i))
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("phase 2: member 3 requests a protocol switch")
	group.Node(3).Run(func() { switches[3].RequestSwitch() })

	// Keep sending while the switch is in flight — the SP never blocks
	// senders (§7 of the paper).
	for i := 3; i < 6; i++ {
		cast(ids.ProcID(i%5), uint32(i), fmt.Sprintf("during-%d", i))
		time.Sleep(10 * time.Millisecond)
	}

	// Wait for the switch to land everywhere.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for p := 0; p < members; p++ {
			var e uint64
			group.Node(ids.ProcID(p)).Run(func() { e = switches[p].Epoch() })
			if e != 1 {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Println("phase 3: multicasting on the token protocol")
	for i := 6; i < 9; i++ {
		cast(ids.ProcID(i%5), uint32(i), fmt.Sprintf("token-era-%d", i))
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	ref := delivered[0]
	fmt.Printf("\nmember 0 delivered %d messages, in order:\n", len(ref))
	for _, b := range ref {
		fmt.Println("   ", b)
	}
	for p := 1; p < members; p++ {
		got := delivered[ids.ProcID(p)]
		if len(got) != len(ref) {
			return fmt.Errorf("member %d delivered %d messages, member 0 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				return fmt.Errorf("member %d disagrees with member 0 at position %d", p, i)
			}
		}
	}
	fmt.Println("\nall five members delivered the identical sequence — total order")
	fmt.Println("held across the switch, exactly as Table 2 predicts.")
	return nil
}
