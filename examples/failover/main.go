// Failover: how the paper's switching mechanisms cope with a crash,
// live. The token-ring switching protocol (§2) assumes crash-free
// members — a bare SP's control token silently dies with a crashed
// member. Two mechanisms in this repo survive the crash instead:
//
//  1. The §8 view-change mechanism, paired with a heartbeat failure
//     detector, evicts the crashed member and installs a smaller view.
//  2. The SP's own recovery extension (Config.Recovery): survivors
//     detect the token's silence, regenerate it, route the ring around
//     the dead member, and can still switch protocols.
//
// This example crashes a member mid-traffic under each mechanism and
// shows both groups keep multicasting with no operator intervention.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/core/viewswitch"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fd"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/runtime/simenv"
	"repro/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("failover: ", err)
	}
}

func run() error {
	if err := viewChangeFailover(); err != nil {
		return err
	}
	fmt.Println()
	return selfHealingFailover()
}

// viewChangeFailover is the §8 answer: evict the crashed member.
func viewChangeFailover() error {
	const members = 4
	sim := des.New(42)
	net, err := simnet.New(sim, simnet.Ethernet10Mbit(members))
	if err != nil {
		return err
	}
	group, err := simenv.NewGroup(sim, net, members)
	if err != nil {
		return err
	}

	seqStack := func(proto.Env) []proto.Layer {
		return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
	}
	cfg := viewswitch.Config{
		Protocols: []switching.ProtocolFactory{seqStack, seqStack},
		Detector:  &fd.Config{Interval: 5 * time.Millisecond},
		AutoEvict: true,
	}

	delivered := make(map[ids.ProcID][]string, members)
	managers := make([]*viewswitch.Manager, members)
	for _, node := range group.Nodes() {
		self := node.Self()
		app := proto.UpFunc(func(src ids.ProcID, payload []byte) {
			m, err := proto.DecodeApp(payload)
			if err != nil {
				return
			}
			if m.IsView {
				delivered[self] = append(delivered[self], fmt.Sprintf("<new view %v>", m.View))
				return
			}
			delivered[self] = append(delivered[self], string(m.Body))
		})
		mgr, err := viewswitch.New(node, app, node.Transport(), cfg)
		if err != nil {
			return err
		}
		managers[self] = mgr
		if err := node.BindStack(mgr.Recv); err != nil {
			return err
		}
	}

	seq := uint32(0)
	cast := func(p ids.ProcID, body string) {
		seq++
		m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: []byte(body)}
		if err := managers[p].Cast(m.Encode()); err != nil {
			fmt.Fprintf(os.Stderr, "cast %q: %v\n", body, err)
		}
	}

	fmt.Println("=== view change (§8): evict the crashed member ===")
	fmt.Println("t=0      4-member group multicasting")
	sim.At(5*time.Millisecond, func() { cast(1, "tick-1") })
	sim.At(20*time.Millisecond, func() { cast(2, "tick-2") })
	sim.At(50*time.Millisecond, func() {
		fmt.Println("t=50ms   member 3 crashes (power gone, no goodbye)")
		net.Crash(3)
	})
	// The heartbeat detector suspects p3 ~25ms later; the coordinator
	// evicts it automatically.
	sim.At(300*time.Millisecond, func() {
		fmt.Printf("t=300ms  survivors' view: %v\n", managers[0].View())
		cast(1, "tick-3 (after failover)")
	})
	sim.RunUntil(5 * time.Second)
	for _, m := range managers {
		m.Stop()
	}

	fmt.Println("\nmember 0's delivery log:")
	for _, b := range delivered[0] {
		fmt.Println("   ", b)
	}
	for _, p := range []ids.ProcID{0, 1, 2} {
		if managers[p].InView(3) {
			return fmt.Errorf("member %v still believes p3 is alive", p)
		}
		if len(delivered[p]) != len(delivered[0]) {
			return fmt.Errorf("member %v diverged: %v", p, delivered[p])
		}
	}
	fmt.Println("\nthe failure detector suspected the silent member, the coordinator")
	fmt.Println("flushed and installed a 3-member view, and traffic continued —")
	fmt.Println("no restarts, no operator.")
	return nil
}

// selfHealingFailover is the recovery extension's answer: keep the same
// ring, regenerate the token, and route around the dead member. The
// same crash used to wedge the token-ring SP forever (see
// viewswitch's crash tests); with Config.Recovery it does not.
func selfHealingFailover() error {
	const members = 4
	const ti = 2 * time.Millisecond
	swCfg := switching.Config{
		Protocols: []switching.ProtocolFactory{
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
			},
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(1), fifo.New(fifo.Config{})}
			},
		},
		TokenInterval: ti,
		Recovery: &switching.RecoveryConfig{
			Detector: fd.Config{Interval: 5 * time.Millisecond},
		},
	}
	c, err := swtest.NewSwitched(42, simnet.Config{Nodes: members, PropDelay: 300 * time.Microsecond}, members, swCfg)
	if err != nil {
		return err
	}

	seq := uint32(0)
	cast := func(p ids.ProcID, body string) {
		seq++
		sw := c.Members[p].Switch
		m := proto.AppMsg{
			ID:     proto.MakeMsgID(p, seq),
			Sender: p,
			Body:   []byte(fmt.Sprintf("%s (epoch %d)", body, sw.SendEpoch())),
		}
		if err := sw.Cast(m.Encode()); err != nil {
			fmt.Fprintf(os.Stderr, "cast %q: %v\n", body, err)
		}
	}

	fmt.Println("=== self-healing SP: same crash, same ring, token regenerated ===")
	fmt.Println("t=0      4-member token ring multicasting")
	c.Sim.At(5*time.Millisecond, func() { cast(1, "tick-1") })
	c.Sim.At(20*time.Millisecond, func() { cast(2, "tick-2") })
	c.Sim.At(50*time.Millisecond, func() {
		fmt.Println("t=50ms   member 3 crashes — the control token dies with it")
		c.Net.Crash(3)
	})
	c.Sim.At(200*time.Millisecond, func() {
		fmt.Println("t=200ms  survivors request a protocol switch anyway")
		c.Members[0].Switch.RequestSwitch()
	})
	c.Sim.At(400*time.Millisecond, func() { cast(1, "tick-3 (after recovery)") })
	c.Run(5 * time.Second)
	c.Stop()

	fmt.Println("\nmember 0's delivery log:")
	bodies, err := c.AppBodies(0)
	if err != nil {
		return err
	}
	for _, b := range bodies {
		fmt.Println("   ", b)
	}
	var regen, wedges uint64
	for _, p := range []ids.ProcID{0, 1, 2} {
		sw := c.Members[p].Switch
		if sw.Epoch() != 1 {
			return fmt.Errorf("member %v stuck at epoch %d — switch did not survive the crash", p, sw.Epoch())
		}
		st := sw.Stats()
		regen += st.TokensRegenerated
		wedges += st.WedgeTimeouts
		peer, err := c.AppBodies(p)
		if err != nil {
			return err
		}
		if len(peer) != len(bodies) {
			return fmt.Errorf("member %v diverged: %v", p, peer)
		}
	}
	fmt.Printf("\nwedge timeouts fired: %d, tokens regenerated: %d\n", wedges, regen)
	fmt.Println("the survivors detected the token's silence, regenerated it one")
	fmt.Println("generation up, skipped the suspected member in ring order, and")
	fmt.Println("completed the protocol switch — the ring healed itself without a")
	fmt.Println("view change. (A bare SP without Config.Recovery wedges here.)")
	return nil
}
