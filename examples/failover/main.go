// Failover: the capability boundary between the paper's two switching
// mechanisms, live. The token-ring switching protocol (§2) assumes
// crash-free members — a single crash silently kills its control token.
// The §8 view-change mechanism, paired with a heartbeat failure
// detector, evicts the crashed member and the group keeps multicasting.
//
// This example crashes a member mid-traffic and shows the group
// reconfigure with no operator intervention.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/viewswitch"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fd"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/runtime/simenv"
	"repro/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("failover: ", err)
	}
}

func run() error {
	const members = 4
	sim := des.New(42)
	net, err := simnet.New(sim, simnet.Ethernet10Mbit(members))
	if err != nil {
		return err
	}
	group, err := simenv.NewGroup(sim, net, members)
	if err != nil {
		return err
	}

	seqStack := func(proto.Env) []proto.Layer {
		return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
	}
	cfg := viewswitch.Config{
		Protocols: []switching.ProtocolFactory{seqStack, seqStack},
		Detector:  &fd.Config{Interval: 5 * time.Millisecond},
		AutoEvict: true,
	}

	delivered := make(map[ids.ProcID][]string, members)
	managers := make([]*viewswitch.Manager, members)
	for _, node := range group.Nodes() {
		self := node.Self()
		app := proto.UpFunc(func(src ids.ProcID, payload []byte) {
			m, err := proto.DecodeApp(payload)
			if err != nil {
				return
			}
			if m.IsView {
				delivered[self] = append(delivered[self], fmt.Sprintf("<new view %v>", m.View))
				return
			}
			delivered[self] = append(delivered[self], string(m.Body))
		})
		mgr, err := viewswitch.New(node, app, node.Transport(), cfg)
		if err != nil {
			return err
		}
		managers[self] = mgr
		if err := node.BindStack(mgr.Recv); err != nil {
			return err
		}
	}

	seq := uint32(0)
	cast := func(p ids.ProcID, body string) {
		seq++
		m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: []byte(body)}
		if err := managers[p].Cast(m.Encode()); err != nil {
			fmt.Fprintf(os.Stderr, "cast %q: %v\n", body, err)
		}
	}

	fmt.Println("t=0      4-member group multicasting")
	sim.At(5*time.Millisecond, func() { cast(1, "tick-1") })
	sim.At(20*time.Millisecond, func() { cast(2, "tick-2") })
	sim.At(50*time.Millisecond, func() {
		fmt.Println("t=50ms   member 3 crashes (power gone, no goodbye)")
		net.Crash(3)
	})
	// The heartbeat detector suspects p3 ~25ms later; the coordinator
	// evicts it automatically.
	sim.At(300*time.Millisecond, func() {
		fmt.Printf("t=300ms  survivors' view: %v\n", managers[0].View())
		cast(1, "tick-3 (after failover)")
	})
	sim.RunUntil(5 * time.Second)
	for _, m := range managers {
		m.Stop()
	}

	fmt.Println("\nmember 0's delivery log:")
	for _, b := range delivered[0] {
		fmt.Println("   ", b)
	}
	for _, p := range []ids.ProcID{0, 1, 2} {
		if managers[p].InView(3) {
			return fmt.Errorf("member %v still believes p3 is alive", p)
		}
		if len(delivered[p]) != len(delivered[0]) {
			return fmt.Errorf("member %v diverged: %v", p, delivered[p])
		}
	}
	fmt.Println("\nthe failure detector suspected the silent member, the coordinator")
	fmt.Println("flushed and installed a 3-member view, and traffic continued —")
	fmt.Println("no restarts, no operator. (The token-ring SP cannot do this: its")
	fmt.Println("token dies with the crashed member; see the crash tests.)")
	return nil
}
