// Security: the "Security" use case of §1 — "system managers will be
// able to increase security at run-time, for example when an intrusion
// detection system notices unusual behavior".
//
// The group starts on a plain (fast, unauthenticated) stack; a rogue
// process can inject forged orders. When the intrusion detector fires,
// the manager switches to an HMAC-authenticated, AES-encrypted stack —
// without restarting the application — and the rogue's forgeries stop
// getting through.
//
//	go run ./examples/security
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/conf"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/integrity"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("security: ", err)
	}
}

func run() error {
	const members = 4
	const rogue = ids.ProcID(3)
	macKey := []byte("shared-group-mac-key-00001")
	encKey := []byte("0123456789abcdef") // AES-128

	secured := func(env proto.Env) []proto.Layer {
		mk, ek := macKey, encKey
		if env.Self() == rogue {
			// The rogue was not given the new keys.
			mk = []byte("guessed-wrong-key-guessed!")
			ek = []byte("ffffffffffffffff")
		}
		c, err := conf.New(ek)
		if err != nil {
			panic(err) // static key length; cannot fail
		}
		return []proto.Layer{seqorder.New(0), integrity.New(mk), c, fifo.New(fifo.Config{})}
	}
	cfg := switching.Config{
		Protocols: []switching.ProtocolFactory{
			// Epoch 0: plain stack — no authentication at all.
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
			},
			// Epoch 1: authenticated + encrypted stack.
			secured,
		},
		OnSwitchComplete: func(r switching.Record) {
			fmt.Printf("  security switch completed in %v\n", r.Duration().Round(time.Millisecond))
		},
	}
	cluster, err := swtest.NewSwitched(11, simnet.Ethernet10Mbit(members), members, cfg)
	if err != nil {
		return err
	}
	sim := cluster.Sim

	honestSeq := uint32(0)
	honest := func(p ids.ProcID, body string) {
		honestSeq++
		m := proto.AppMsg{ID: proto.MakeMsgID(p, honestSeq), Sender: p, Body: []byte(body)}
		if err := cluster.Members[p].Switch.Cast(m.Encode()); err != nil {
			fmt.Fprintln(os.Stderr, "cast:", err)
		}
	}
	// The rogue injects below its switch so it cannot wedge the group's
	// send-count vector (see EXPERIMENTS.md E7 on the §2 exactly-once
	// assumption).
	forgeSeq := uint32(100)
	forge := func(body string) {
		forgeSeq++
		sw := cluster.Members[rogue].Switch
		m := proto.AppMsg{ID: proto.MakeMsgID(rogue, forgeSeq), Sender: rogue, Body: []byte(body)}
		payload := sw.FrameForEpoch(sw.SendEpoch(), m.Encode())
		if err := sw.SubStack(sw.ActiveProtocol()).Cast(payload); err != nil {
			fmt.Fprintln(os.Stderr, "forge:", err)
		}
	}

	fmt.Println("phase 1: plain protocol — the rogue's forgery gets delivered")
	sim.At(5*time.Millisecond, func() { honest(0, "transfer $10 to alice") })
	sim.At(15*time.Millisecond, func() { forge("transfer $9999 to rogue") })
	sim.At(40*time.Millisecond, func() {
		fmt.Println("phase 2: intrusion detected — switching to the secured stack")
		cluster.Members[0].Switch.RequestSwitch()
	})
	sim.At(300*time.Millisecond, func() {
		fmt.Println("phase 3: secured protocol — the same forgery is now rejected")
		honest(1, "transfer $20 to bob")
		forge("transfer $9999 to rogue AGAIN")
	})
	cluster.Run(10 * time.Second)
	cluster.Stop()

	for p := 0; p < 3; p++ {
		bodies, err := cluster.AppBodies(ids.ProcID(p))
		if err != nil {
			return err
		}
		if p == 0 {
			fmt.Printf("\nmember 0's ledger:\n")
			for _, b := range bodies {
				fmt.Println("   ", b)
			}
		}
		joined := strings.Join(bodies, "|")
		if !strings.Contains(joined, "$10 to alice") || !strings.Contains(joined, "$20 to bob") {
			return fmt.Errorf("member %d lost honest traffic: %v", p, bodies)
		}
		if !strings.Contains(joined, "$9999 to rogue") {
			return fmt.Errorf("member %d: expected the pre-switch forgery to land (plain stack)", p)
		}
		if strings.Contains(joined, "AGAIN") {
			return fmt.Errorf("member %d delivered a forgery after the security switch", p)
		}
	}
	fmt.Println("\nthe pre-switch forgery landed (plain stack); the post-switch one")
	fmt.Println("was dropped by the HMAC layer. Security was raised at run time,")
	fmt.Println("with no restart — and Integrity/Confidentiality are in the class")
	fmt.Println("of properties the switching protocol provably preserves (§6.3).")
	return nil
}
