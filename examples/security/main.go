// Security: the "Security" use case of §1 — "system managers will be
// able to increase security at run-time, for example when an intrusion
// detection system notices unusual behavior".
//
// The group starts on a plain (fast, unauthenticated) stack; a rogue
// process can inject forged orders. When the intrusion detector fires,
// the manager switches to an HMAC-authenticated, AES-encrypted stack —
// without restarting the application — and the rogue's forgeries stop
// getting through.
//
// Act 2 turns the adversary up from a rogue member to an attacker on
// the wire: with the authenticated session enabled (Defense.Auth), the
// group MACs every frame under a per-epoch key derived from a shared
// session secret. The attacker forges frames under a guessed key and
// replays genuine captured frames after the group switches protocols —
// both are rejected at the trust boundary, before any protocol state
// moves, and the victim's counters show exactly what was turned away.
//
//	go run ./examples/security
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/conf"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/integrity"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("security: ", err)
	}
}

func run() error {
	const members = 4
	const rogue = ids.ProcID(3)
	macKey := []byte("shared-group-mac-key-00001")
	encKey := []byte("0123456789abcdef") // AES-128

	secured := func(env proto.Env) []proto.Layer {
		mk, ek := macKey, encKey
		if env.Self() == rogue {
			// The rogue was not given the new keys.
			mk = []byte("guessed-wrong-key-guessed!")
			ek = []byte("ffffffffffffffff")
		}
		c, err := conf.New(ek)
		if err != nil {
			panic(err) // static key length; cannot fail
		}
		return []proto.Layer{seqorder.New(0), integrity.New(mk), c, fifo.New(fifo.Config{})}
	}
	cfg := switching.Config{
		Protocols: []switching.ProtocolFactory{
			// Epoch 0: plain stack — no authentication at all.
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
			},
			// Epoch 1: authenticated + encrypted stack.
			secured,
		},
		OnSwitchComplete: func(r switching.Record) {
			fmt.Printf("  security switch completed in %v\n", r.Duration().Round(time.Millisecond))
		},
	}
	cluster, err := swtest.NewSwitched(11, simnet.Ethernet10Mbit(members), members, cfg)
	if err != nil {
		return err
	}
	sim := cluster.Sim

	honestSeq := uint32(0)
	honest := func(p ids.ProcID, body string) {
		honestSeq++
		m := proto.AppMsg{ID: proto.MakeMsgID(p, honestSeq), Sender: p, Body: []byte(body)}
		if err := cluster.Members[p].Switch.Cast(m.Encode()); err != nil {
			fmt.Fprintln(os.Stderr, "cast:", err)
		}
	}
	// The rogue injects below its switch so it cannot wedge the group's
	// send-count vector (see EXPERIMENTS.md E7 on the §2 exactly-once
	// assumption).
	forgeSeq := uint32(100)
	forge := func(body string) {
		forgeSeq++
		sw := cluster.Members[rogue].Switch
		m := proto.AppMsg{ID: proto.MakeMsgID(rogue, forgeSeq), Sender: rogue, Body: []byte(body)}
		payload := sw.FrameForEpoch(sw.SendEpoch(), m.Encode())
		if err := sw.SubStack(sw.ActiveProtocol()).Cast(payload); err != nil {
			fmt.Fprintln(os.Stderr, "forge:", err)
		}
	}

	fmt.Println("phase 1: plain protocol — the rogue's forgery gets delivered")
	sim.At(5*time.Millisecond, func() { honest(0, "transfer $10 to alice") })
	sim.At(15*time.Millisecond, func() { forge("transfer $9999 to rogue") })
	sim.At(40*time.Millisecond, func() {
		fmt.Println("phase 2: intrusion detected — switching to the secured stack")
		cluster.Members[0].Switch.RequestSwitch()
	})
	sim.At(300*time.Millisecond, func() {
		fmt.Println("phase 3: secured protocol — the same forgery is now rejected")
		honest(1, "transfer $20 to bob")
		forge("transfer $9999 to rogue AGAIN")
	})
	cluster.Run(10 * time.Second)
	cluster.Stop()

	for p := 0; p < 3; p++ {
		bodies, err := cluster.AppBodies(ids.ProcID(p))
		if err != nil {
			return err
		}
		if p == 0 {
			fmt.Printf("\nmember 0's ledger:\n")
			for _, b := range bodies {
				fmt.Println("   ", b)
			}
		}
		joined := strings.Join(bodies, "|")
		if !strings.Contains(joined, "$10 to alice") || !strings.Contains(joined, "$20 to bob") {
			return fmt.Errorf("member %d lost honest traffic: %v", p, bodies)
		}
		if !strings.Contains(joined, "$9999 to rogue") {
			return fmt.Errorf("member %d: expected the pre-switch forgery to land (plain stack)", p)
		}
		if strings.Contains(joined, "AGAIN") {
			return fmt.Errorf("member %d delivered a forgery after the security switch", p)
		}
	}
	fmt.Println("\nthe pre-switch forgery landed (plain stack); the post-switch one")
	fmt.Println("was dropped by the HMAC layer. Security was raised at run time,")
	fmt.Println("with no restart — and Integrity/Confidentiality are in the class")
	fmt.Println("of properties the switching protocol provably preserves (§6.3).")
	return runWireAdversary()
}

// runWireAdversary is act 2: the adversary is on the wire, not in the
// group. The authenticated session seals every frame under an
// epoch-derived MAC key, so forged frames (wrong key) and cross-epoch
// replays (genuine frames, retired key) both die at the ingress.
func runWireAdversary() error {
	const members = 4
	const victim = ids.ProcID(0)
	sessionKey := []byte("group session secret (mpENC)")

	plain := func(n int) switching.ProtocolFactory {
		return func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(ids.ProcID(n)), fifo.New(fifo.Config{})}
		}
	}
	cfg := switching.Config{
		Protocols:     []switching.ProtocolFactory{plain(0), plain(1)},
		TokenInterval: 2 * time.Millisecond,
		Defense: &switching.DefenseConfig{
			QuarantineThreshold: 50,
			Auth:                &switching.AuthConfig{SessionKey: sessionKey, Grace: 20 * time.Millisecond},
		},
	}
	cluster, err := swtest.NewSwitched(12, simnet.Config{Nodes: members, PropDelay: 300 * time.Microsecond}, members, cfg)
	if err != nil {
		return err
	}
	sim := cluster.Sim
	// The attacker's packet tap: record genuine wire frames to replay.
	cluster.Net.SetReplayCapture(64)

	honest := func(p ids.ProcID, seq uint32, body string) {
		m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: []byte(body)}
		if err := cluster.Members[p].Switch.Cast(m.Encode()); err != nil {
			fmt.Fprintln(os.Stderr, "cast:", err)
		}
	}
	// forgeWire crafts a syntactically perfect frame — mux header, FIFO
	// cast, epoch tag, valid application message — sealed under a key
	// derived from a guessed session secret, and injects it straight
	// onto the victim's wire as if peer 2 had sent it.
	forgeWire := func(epoch uint64, seq uint64, body string) {
		app := proto.AppMsg{ID: proto.MakeMsgID(2, uint32(seq)), Sender: 2, Body: []byte(body)}
		e := wire.NewEncoder(16)
		e.Channel(ids.ProtocolChannel(int(epoch % 2)))
		e.U8(1) // FIFO cast
		e.Uvarint(seq)
		e.Uvarint(epoch)
		inner := e.Prepend(app.Encode())
		pkt := wire.SealAuth(wire.DeriveEpochKey([]byte("attacker guessed secret!"), epoch), epoch, inner)
		if err := cluster.Net.InjectForged(2, victim, pkt); err != nil {
			fmt.Fprintln(os.Stderr, "forge:", err)
		}
	}

	fmt.Println("\nact 2: adversary on the wire vs. the authenticated session")
	fmt.Println("phase 1: honest epoch-0 traffic (the attacker is capturing it)")
	sim.At(5*time.Millisecond, func() { honest(1, 1, "pay alice $5") })
	sim.At(30*time.Millisecond, func() {
		fmt.Println("phase 2: forged frames injected under a guessed key")
		forgeWire(0, 7001, "pay EVE $9999 (forged, epoch 0)")
		forgeWire(1, 7002, "pay EVE $9999 (forged, epoch 1)")
	})
	sim.At(60*time.Millisecond, func() {
		fmt.Println("phase 3: protocol switch — the epoch key rolls with it")
		cluster.Members[1].Switch.RequestSwitch()
	})
	sim.At(200*time.Millisecond, func() {
		// Well past the grace window for epoch 0: every captured epoch-0
		// frame — genuine bytes, correct MAC under the retired key — is
		// now a cross-epoch replay.
		n := cluster.Net.CapturedFrames()
		if n > 8 {
			n = 8
		}
		fmt.Printf("phase 4: replaying %d captured epoch-0 frames after the switch\n", n)
		for i := 0; i < n; i++ {
			if err := cluster.Net.InjectReplay(i); err != nil {
				fmt.Fprintln(os.Stderr, "replay:", err)
			}
		}
		honest(1, 2, "pay bob $7")
	})
	cluster.Run(2 * time.Second)
	cluster.Stop()

	for p := 0; p < members; p++ {
		bodies, err := cluster.AppBodies(ids.ProcID(p))
		if err != nil {
			return err
		}
		seen := map[string]int{}
		for _, b := range bodies {
			seen[b]++
			if strings.Contains(b, "EVE") {
				return fmt.Errorf("member %d delivered a forged payment: %q", p, b)
			}
			if seen[b] > 1 {
				return fmt.Errorf("member %d delivered %q twice — a replay got through", p, b)
			}
		}
		for _, want := range []string{"pay alice $5", "pay bob $7"} {
			if seen[want] != 1 {
				return fmt.Errorf("member %d lost honest traffic %q: %v", p, want, bodies)
			}
		}
	}
	var rejected uint64
	for p := 0; p < members; p++ {
		rejected += cluster.Members[p].Switch.Stats().AuthFailed
	}
	ns := cluster.Net.Stats()
	fmt.Printf("\nevery ledger is clean: %d forged and %d replayed frames hit the\n", ns.Forged, ns.Replayed)
	fmt.Printf("wire; %d arrivals were rejected at the authenticated ingress\n", rejected)
	fmt.Println("(bad MAC or retired epoch) before touching any protocol state.")
	if rejected < ns.Forged+ns.Replayed {
		return fmt.Errorf("only %d of %d adversarial frames were rejected at the auth boundary",
			rejected, ns.Forged+ns.Replayed)
	}
	return nil
}
