// Package des is a deterministic discrete-event simulator. It provides
// the virtual clock under all experiments in this repository: protocol
// layers run as event handlers scheduled on a single priority queue, so a
// whole 10-member group execution is sequential, reproducible from a
// seed, and orders of magnitude faster than wall-clock execution.
//
// The paper's evaluation ran on ten SparcStation-20s on a 10 Mbit
// Ethernet; we substitute this simulator (see DESIGN.md §2) because the
// phenomena behind Figure 2 — queueing at the sequencer, waiting for the
// rotating token — are latency/throughput effects that a discrete-event
// model reproduces faithfully.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator instance. It is not safe for
// concurrent use: all handlers run on the caller's goroutine, one at a
// time, which is precisely what makes executions deterministic.
type Sim struct {
	now    time.Duration
	queue  eventHeap
	nextID uint64
	rng    *rand.Rand
	// executed counts handler invocations, for run-away detection and
	// statistics.
	executed uint64
	// stopped counts Stop()ed timers still sitting in the queue. When
	// they outnumber the live entries the heap is compacted, so
	// stop-heavy workloads (fifo resend, heartbeat, and recovery timers
	// that are almost always cancelled before firing) cannot bloat the
	// queue with dead entries.
	stopped int
}

// New returns a simulator whose random stream is derived from seed.
// Equal seeds give byte-identical executions.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (zero at construction).
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's seeded random stream. Protocol layers and
// network models must draw randomness only from here to stay
// deterministic.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Sim) Executed() uint64 { return s.executed }

// Timer is a handle to a scheduled event; it can be stopped before it
// fires.
type Timer struct {
	when    time.Duration
	id      uint64
	fn      func()
	sim     *Sim
	stopped bool
	fired   bool
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// call prevented the timer from firing. The queue entry is reclaimed
// lazily: either when it surfaces at the top of the heap, or by a bulk
// compaction once stopped entries outnumber live ones.
func (t *Timer) Stop() bool {
	if t == nil || t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.fn = nil
	if t.sim != nil {
		t.sim.stopped++
		t.sim.compact()
	}
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && !t.fired && !t.stopped }

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() time.Duration { return t.when }

// At schedules fn to run at absolute virtual time when. Scheduling in
// the past (or present) runs the event at the current time, after all
// events already queued for that time. Events at equal times fire in
// scheduling order (deterministic FIFO tie-break).
func (s *Sim) At(when time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("des: nil event function")
	}
	if when < s.now {
		when = s.now
	}
	t := &Timer{when: when, id: s.nextID, fn: fn, sim: s}
	s.nextID++
	heap.Push(&s.queue, t)
	return t
}

// compact rebuilds the heap without its stopped entries once they make
// up more than half the queue (and the queue is big enough to matter).
// The rebuild keeps the (when, id) total order, so execution order — and
// thus determinism — is unaffected.
func (s *Sim) compact() {
	if len(s.queue) < 64 || s.stopped*2 <= len(s.queue) {
		return
	}
	live := s.queue[:0]
	for _, t := range s.queue {
		if !t.stopped {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = live
	heap.Init(&s.queue)
	s.stopped = 0
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, if any, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		t, ok := heap.Pop(&s.queue).(*Timer)
		if !ok {
			panic("des: heap corrupted")
		}
		if t.stopped {
			s.stopped--
			continue
		}
		s.now = t.when
		t.fired = true
		fn := t.fn
		t.fn = nil
		s.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. maxEvents bounds the
// number of handler invocations as a run-away guard; it returns an error
// if the bound is hit (0 means no bound).
func (s *Sim) Run(maxEvents uint64) error {
	start := s.executed
	for s.Step() {
		if maxEvents > 0 && s.executed-start >= maxEvents {
			return fmt.Errorf("des: exceeded %d events at t=%v", maxEvents, s.now)
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Sim) RunUntil(deadline time.Duration) {
	for {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of queued (unstopped) events.
func (s *Sim) Pending() int {
	return len(s.queue) - s.stopped
}

// peek returns the timestamp of the next live event.
func (s *Sim) peek() (time.Duration, bool) {
	for s.queue.Len() > 0 {
		t := s.queue[0]
		if t.stopped {
			heap.Pop(&s.queue)
			s.stopped--
			continue
		}
		return t.when, true
	}
	return 0, false
}

// eventHeap orders timers by (when, id) so simultaneous events fire in
// scheduling order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].id < h[j].id
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	t, ok := x.(*Timer)
	if !ok {
		panic("des: pushed non-timer")
	}
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
