package des

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestEqualTimesFIFOTieBreak(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO tie-break violated: order = %v", order)
		}
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New(1)
	fired := time.Duration(-1)
	s.After(10*time.Millisecond, func() {
		s.At(0, func() { fired = s.Now() })
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want 10ms", fired)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	s := New(1)
	ran := false
	s.After(-5*time.Second, func() { ran = true })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Now() != 0 {
		t.Errorf("negative delay: ran=%v now=%v", ran, s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("stopped timer fired")
	}
	if tm.Active() {
		t.Error("stopped timer still active")
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Error("Stop after fire returned true")
	}
	var nilTimer *Timer
	if nilTimer.Stop() || nilTimer.Active() {
		t.Error("nil timer misbehaved")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 25} {
		d := d * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(15 * time.Millisecond)
	if len(fired) != 3 {
		t.Errorf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 15*time.Millisecond {
		t.Errorf("Now = %v, want 15ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// Advancing to an idle deadline moves the clock.
	s.RunUntil(100 * time.Millisecond)
	if s.Now() != 100*time.Millisecond || s.Pending() != 0 {
		t.Errorf("after second RunUntil: now=%v pending=%d", s.Now(), s.Pending())
	}
}

func TestRunEventBound(t *testing.T) {
	s := New(1)
	var tick func()
	tick = func() { s.After(time.Millisecond, tick) }
	s.After(time.Millisecond, tick)
	if err := s.Run(100); err == nil {
		t.Error("Run did not report exceeding the event bound")
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At(nil) did not panic")
		}
	}()
	New(1).At(0, nil)
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var samples []int64
		for i := 0; i < 5; i++ {
			s.After(time.Duration(i)*time.Millisecond, func() {
				samples = append(samples, s.Rand().Int63())
			})
		}
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return samples
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different executions")
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical random streams")
	}
}

func TestExecutedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 7 {
		t.Errorf("Executed = %d, want 7", s.Executed())
	}
}

// Property: events always fire in non-decreasing time order, regardless
// of the order they were scheduled in.
func TestMonotonicFiringProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fired []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			s.At(d, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimerWhen(t *testing.T) {
	s := New(1)
	tm := s.After(42*time.Millisecond, func() {})
	if tm.When() != 42*time.Millisecond {
		t.Errorf("When = %v, want 42ms", tm.When())
	}
}

// TestStoppedTimerCompaction exercises the stop-heavy workload of fifo
// resend/heartbeat/recovery timers: almost every scheduled timer is
// cancelled before firing. The queue must shed stopped entries instead
// of retaining them until they surface at the top of the heap.
func TestStoppedTimerCompaction(t *testing.T) {
	s := New(1)
	// A far-future live event keeps the queue non-empty throughout.
	fired := false
	s.At(time.Hour, func() { fired = true })
	for i := 0; i < 10000; i++ {
		tm := s.After(time.Duration(i+1)*time.Millisecond, func() {})
		if !tm.Stop() {
			t.Fatal("Stop failed")
		}
		if s.Pending() != 1 {
			t.Fatalf("Pending = %d after stop %d, want 1", s.Pending(), i)
		}
		// Compaction must keep the raw queue bounded by ~2× the live
		// count (plus the pre-compaction floor).
		if len(s.queue) > 128 {
			t.Fatalf("queue holds %d entries with 1 live timer", len(s.queue))
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("live event lost by compaction")
	}
}

// TestCompactionPreservesOrder stops a random half of a large schedule
// and checks the survivors still fire in exact (when, id) order.
func TestCompactionPreservesOrder(t *testing.T) {
	s := New(7)
	var got []int
	var want []int
	timers := make([]*Timer, 0, 3000)
	for i := 0; i < 3000; i++ {
		i := i
		d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
		timers = append(timers, s.At(d, func() { got = append(got, i) }))
	}
	rng := s.Rand()
	kept := make([]int, 0, len(timers))
	for i, tm := range timers {
		if rng.Intn(2) == 0 {
			tm.Stop()
		} else {
			kept = append(kept, i)
		}
	}
	// Expected order: by (when, id); id order equals creation order.
	sort.SliceStable(kept, func(a, b int) bool {
		return timers[kept[a]].When() < timers[kept[b]].When()
	})
	want = append(want, kept...)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d = timer %d, want %d", i, got[i], want[i])
		}
	}
}

// BenchmarkStopHeavyTimers measures the resend-timer pattern: schedule
// a timeout, cancel it almost immediately, repeat — with a standing
// population of far-out timers so stopped entries never surface at the
// heap top on their own. Before heap compaction this retained every
// stopped timer for the whole run (O(total timers) heap); with
// compaction the queue stays at O(live timers).
func BenchmarkStopHeavyTimers(b *testing.B) {
	s := New(1)
	// Standing far-future population (heartbeats that never fire).
	for i := 0; i < 64; i++ {
		s.At(time.Duration(1000+i)*time.Hour, func() {})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := s.After(time.Duration(i+1)*time.Microsecond, func() {})
		tm.Stop()
	}
	b.StopTimer()
	if len(s.queue) > 1024 {
		b.Fatalf("queue grew to %d entries; compaction not effective", len(s.queue))
	}
}
