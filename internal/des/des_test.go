package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestEqualTimesFIFOTieBreak(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO tie-break violated: order = %v", order)
		}
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New(1)
	fired := time.Duration(-1)
	s.After(10*time.Millisecond, func() {
		s.At(0, func() { fired = s.Now() })
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want 10ms", fired)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	s := New(1)
	ran := false
	s.After(-5*time.Second, func() { ran = true })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Now() != 0 {
		t.Errorf("negative delay: ran=%v now=%v", ran, s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("stopped timer fired")
	}
	if tm.Active() {
		t.Error("stopped timer still active")
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Error("Stop after fire returned true")
	}
	var nilTimer *Timer
	if nilTimer.Stop() || nilTimer.Active() {
		t.Error("nil timer misbehaved")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 25} {
		d := d * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(15 * time.Millisecond)
	if len(fired) != 3 {
		t.Errorf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 15*time.Millisecond {
		t.Errorf("Now = %v, want 15ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// Advancing to an idle deadline moves the clock.
	s.RunUntil(100 * time.Millisecond)
	if s.Now() != 100*time.Millisecond || s.Pending() != 0 {
		t.Errorf("after second RunUntil: now=%v pending=%d", s.Now(), s.Pending())
	}
}

func TestRunEventBound(t *testing.T) {
	s := New(1)
	var tick func()
	tick = func() { s.After(time.Millisecond, tick) }
	s.After(time.Millisecond, tick)
	if err := s.Run(100); err == nil {
		t.Error("Run did not report exceeding the event bound")
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At(nil) did not panic")
		}
	}()
	New(1).At(0, nil)
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var samples []int64
		for i := 0; i < 5; i++ {
			s.After(time.Duration(i)*time.Millisecond, func() {
				samples = append(samples, s.Rand().Int63())
			})
		}
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return samples
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different executions")
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical random streams")
	}
}

func TestExecutedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 7 {
		t.Errorf("Executed = %d, want 7", s.Executed())
	}
}

// Property: events always fire in non-decreasing time order, regardless
// of the order they were scheduled in.
func TestMonotonicFiringProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fired []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			s.At(d, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimerWhen(t *testing.T) {
	s := New(1)
	tm := s.After(42*time.Millisecond, func() {})
	if tm.When() != 42*time.Millisecond {
		t.Errorf("When = %v, want 42ms", tm.When())
	}
}
