package switching_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fd"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
)

// recPair is a protocol pair whose members both tolerate a dead process
// (sequencer-based total order with live sequencers), so app traffic
// keeps flowing after a crash and the tests can observe post-recovery
// delivery. Token-based sub-protocols would wedge on the crashed member
// for their own reasons, masking what the switching layer recovered.
func recPair() []switching.ProtocolFactory {
	return []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(1), fifo.New(fifo.Config{})}
		},
	}
}

// recConfig returns a switching config with crash recovery enabled and
// detector/timeout settings tuned for fast simulated tests.
func recConfig() switching.Config {
	return switching.Config{
		Protocols:     recPair(),
		TokenInterval: 2 * time.Millisecond,
		Recovery: &switching.RecoveryConfig{
			Detector: fd.Config{Interval: 5 * time.Millisecond},
		},
	}
}

// survivors filters out the given crashed members.
func survivors(c *swtest.SwitchedCluster, crashed ...ids.ProcID) []*swtest.SwitchedMember {
	dead := make(map[ids.ProcID]bool)
	for _, p := range crashed {
		dead[p] = true
	}
	var out []*swtest.SwitchedMember
	for _, m := range c.Members {
		if !dead[m.Node.Self()] {
			out = append(out, m)
		}
	}
	return out
}

// assertSurvivorAgreement checks that all surviving members delivered
// identical body sequences and at least wantMin of them.
func assertSurvivorAgreement(t *testing.T, c *swtest.SwitchedCluster, wantMin int, crashed ...ids.ProcID) {
	t.Helper()
	live := survivors(c, crashed...)
	ref, err := c.AppBodies(live[0].Node.Self())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < wantMin {
		t.Fatalf("survivor %v delivered %d < %d: %v", live[0].Node.Self(), len(ref), wantMin, ref)
	}
	for _, m := range live[1:] {
		got, err := c.AppBodies(m.Node.Self())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("survivor %v delivered %d, %v delivered %d:\n%v\nvs\n%v",
				m.Node.Self(), len(got), live[0].Node.Self(), len(ref), got, ref)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("survivor %v disagrees at %d: %q vs %q", m.Node.Self(), i, got[i], ref[i])
			}
		}
	}
}

// TestTokenRegeneratedAfterIdleCrash: a crash while the ring idles used
// to kill the token forever (E10). With recovery the survivors detect
// the silence, regenerate the token, route around the dead member, and
// can still switch.
func TestTokenRegeneratedAfterIdleCrash(t *testing.T) {
	c, err := swtest.NewSwitched(31, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, recConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.At(50*time.Millisecond, func() { c.Net.Crash(2) })
	c.Sim.At(200*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Sim.At(300*time.Millisecond, func() {
		for _, m := range survivors(c, 2) {
			castTagged(t, c, m.Node.Self(), "after")
		}
	})
	c.Run(2 * time.Second)
	c.Stop()

	var regen, passes uint64
	for _, m := range survivors(c, 2) {
		st := m.Switch.Stats()
		regen += st.TokensRegenerated
		passes += st.TokenPasses
		if got := m.Switch.Epoch(); got != 1 {
			t.Errorf("survivor %v epoch = %d, want 1", m.Node.Self(), got)
		}
		if !m.Switch.Detector().Suspected(2) {
			t.Errorf("survivor %v never suspected the crashed member", m.Node.Self())
		}
	}
	if regen == 0 {
		t.Error("no token was ever regenerated")
	}
	if passes == 0 {
		t.Error("ring stopped rotating")
	}
	assertSurvivorAgreement(t, c, 3, 2)
	assertEpochBoundary(t, c)
}

// TestCrashMidSwitchRecovers is the E10 regression pinned the other way
// round: a crash while a switch round is in flight (the case that
// previously required falling back to viewswitch) no longer wedges the
// ring — the wedge detector fires, the round is re-run over the live
// membership, and traffic resumes on the new protocol.
func TestCrashMidSwitchRecovers(t *testing.T) {
	c, err := swtest.NewSwitched(32, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, recConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Old-protocol traffic in flight so the FLUSH round has to drain.
	for i := 0; i < 8; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%4), fmt.Sprintf("pre%d", i)) })
	}
	c.Sim.At(20*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// Crash member 2 the moment the round has visibly started (member 0
	// redirected its sends), i.e. while PREPARE/SWITCH/FLUSH is in
	// flight and member 2 may hold the token or owe flush messages.
	var crashed bool
	var watch func()
	watch = func() {
		if crashed {
			return
		}
		if c.Members[0].Switch.Switching() {
			crashed = true
			c.Net.Crash(2)
			return
		}
		c.Sim.After(500*time.Microsecond, watch)
	}
	c.Sim.At(20*time.Millisecond, watch)
	// Traffic after recovery must flow on the new protocol.
	c.Sim.At(400*time.Millisecond, func() {
		for _, m := range survivors(c, 2) {
			castTagged(t, c, m.Node.Self(), "post")
		}
	})
	c.Run(3 * time.Second)
	c.Stop()

	if !crashed {
		t.Fatal("test never observed the switch starting")
	}
	var wedges, aborted uint64
	for _, m := range survivors(c, 2) {
		st := m.Switch.Stats()
		wedges += st.WedgeTimeouts
		aborted += st.SwitchesAborted
		if got := m.Switch.Epoch(); got != 1 {
			t.Errorf("survivor %v epoch = %d, want 1 (switch must complete despite crash)", m.Node.Self(), got)
		}
		if m.Switch.Switching() {
			t.Errorf("survivor %v still mid-switch", m.Node.Self())
		}
	}
	if wedges == 0 && aborted == 0 {
		t.Error("recovery machinery never engaged — crash did not land mid-switch")
	}
	assertSurvivorAgreement(t, c, 3, 2)
	assertEpochBoundary(t, c)
}

// TestInitiatorCrashRetriedByAnotherMember: the initiator crashes right
// after starting its round; some members have already redirected their
// sends. A survivor re-runs the round and completes the switch.
func TestInitiatorCrashRetriedByAnotherMember(t *testing.T) {
	c, err := swtest.NewSwitched(33, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, recConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.At(20*time.Millisecond, func() { c.Members[2].Switch.RequestSwitch() })
	// Crash the initiator once its successor has joined the round (has
	// redirected its sends) — the round is then live at a survivor and
	// must be retried to completion, not abandoned.
	var crashed bool
	var watch func()
	watch = func() {
		if crashed {
			return
		}
		if c.Members[3].Switch.Switching() {
			crashed = true
			c.Net.Crash(2)
			return
		}
		c.Sim.After(200*time.Microsecond, watch)
	}
	c.Sim.At(20*time.Millisecond, watch)
	c.Sim.At(400*time.Millisecond, func() {
		for _, m := range survivors(c, 2) {
			castTagged(t, c, m.Node.Self(), "alive")
		}
	})
	c.Run(3 * time.Second)
	c.Stop()

	if !crashed {
		t.Fatal("initiator never started its round")
	}
	var completions []switching.Record
	for _, m := range survivors(c, 2) {
		if got := m.Switch.Epoch(); got != 1 {
			t.Errorf("survivor %v epoch = %d, want 1", m.Node.Self(), got)
		}
		completions = append(completions, m.Switch.Records()...)
	}
	if len(completions) == 0 {
		t.Fatal("no survivor recorded completing the retried switch")
	}
	for _, r := range completions {
		if r.Initiator == 2 {
			t.Errorf("dead member recorded as completing initiator: %+v", r)
		}
		if r.Gen == 0 {
			t.Errorf("retried switch completed at generation 0: %+v", r)
		}
	}
	assertSurvivorAgreement(t, c, 3, 2)
	assertEpochBoundary(t, c)
}

// TestPartitionedMemberRejoins: a member cut off by a partition is
// suspected and routed around; the ring switches without it. When the
// partition heals, the member adopts the ring's epoch (forced advance)
// and delivers traffic again.
func TestPartitionedMemberRejoins(t *testing.T) {
	c, err := swtest.NewSwitched(34, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, recConfig())
	if err != nil {
		t.Fatal(err)
	}
	cut := []ids.ProcID{3}
	rest := []ids.ProcID{0, 1, 2}
	c.Sim.At(30*time.Millisecond, func() { c.Net.Partition(cut, rest) })
	c.Sim.At(120*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Sim.At(250*time.Millisecond, func() { c.Net.Heal() })
	// Post-heal traffic must reach everyone, including the rejoiner.
	c.Sim.At(600*time.Millisecond, func() {
		for p := 0; p < 4; p++ {
			castTagged(t, c, ids.ProcID(p), "postheal")
		}
	})
	c.Run(3 * time.Second)
	c.Stop()

	for _, m := range c.Members {
		if got := m.Switch.Epoch(); got != 1 {
			t.Errorf("member %v epoch = %d, want 1", m.Node.Self(), got)
		}
	}
	if c.Members[3].Switch.Stats().ForcedAdvances == 0 {
		t.Error("rejoining member never force-advanced to the ring's epoch")
	}
	// Everyone (including the rejoiner) must deliver all post-heal
	// bodies, in the same relative order.
	for p := 0; p < 4; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, b := range bodies {
			if len(b) >= 8 && b[len(b)-8:] == "postheal" {
				got++
			}
		}
		if got != 4 {
			t.Errorf("member %d delivered %d post-heal bodies, want 4: %v", p, got, bodies)
		}
	}
	assertEpochBoundary(t, c)
}

// TestRecoveryKeepsTotalOrderWithoutFaults: the control experiment — the
// recovery machinery is inert on a healthy ring: no regenerations, no
// aborts, and the §2 guarantees are untouched.
func TestRecoveryKeepsTotalOrderWithoutFaults(t *testing.T) {
	c, err := swtest.NewSwitched(35, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, recConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		at := time.Duration(i) * 3 * time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%4), fmt.Sprintf("m%02d", i)) })
	}
	c.Sim.At(15*time.Millisecond, func() { c.Members[2].Switch.RequestSwitch() })
	c.Run(2 * time.Second)
	c.Stop()
	for _, m := range c.Members {
		st := m.Switch.Stats()
		if st.TokensRegenerated != 0 || st.SwitchesAborted != 0 || st.ForcedAdvances != 0 {
			t.Errorf("member %v recovery engaged without faults: %+v", m.Node.Self(), st)
		}
		if got := m.Switch.Epoch(); got != 1 {
			t.Errorf("member %v epoch = %d, want 1", m.Node.Self(), got)
		}
	}
	assertSurvivorAgreement(t, c, 12)
	assertEpochBoundary(t, c)
}

func TestConfigValidate(t *testing.T) {
	valid := []struct {
		name string
		cfg  switching.Config
	}{
		{"minimal", switching.Config{Protocols: orderedPair()}},
		{"with recovery", switching.Config{Protocols: orderedPair(),
			Recovery: &switching.RecoveryConfig{}}},
		{"with defense", switching.Config{Protocols: orderedPair(),
			Defense: &switching.DefenseConfig{QuarantineThreshold: 10}}},
	}
	for _, tc := range valid {
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("%s: valid config rejected: %v", tc.name, err)
		}
	}
	invalid := []struct {
		name string
		cfg  switching.Config
	}{
		{"empty", switching.Config{}},
		{"one protocol", switching.Config{Protocols: orderedPair()[:1]}},
		{"negative token interval", switching.Config{Protocols: orderedPair(),
			TokenInterval: -time.Millisecond}},
		{"negative wedge timeout", switching.Config{Protocols: orderedPair(),
			Recovery: &switching.RecoveryConfig{WedgeTimeout: -time.Second}}},
		{"negative backoff shift", switching.Config{Protocols: orderedPair(),
			Recovery: &switching.RecoveryConfig{MaxBackoffShift: -1}}},
		{"zero quarantine threshold", switching.Config{Protocols: orderedPair(),
			Defense: &switching.DefenseConfig{}}},
		{"negative quarantine threshold", switching.Config{Protocols: orderedPair(),
			Defense: &switching.DefenseConfig{QuarantineThreshold: -3}}},
	}
	for _, tc := range invalid {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: bad config accepted", tc.name)
		}
	}
}

func TestTokenGenRoundtrip(t *testing.T) {
	in := switching.Token{
		Mode:      switching.ModePrepare,
		Epoch:     7,
		Initiator: 3,
		Vector:    []uint64{1, 0, 4},
		Gen:       9,
		Origin:    2,
	}
	out, err := switching.DecodeToken(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Gen != 9 || out.Origin != 2 || out.Epoch != 7 || out.Mode != switching.ModePrepare {
		t.Errorf("roundtrip mangled token: %+v", out)
	}
}
