package switching

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/protocols/fd"
)

// detectorChannel is the failure detector's private multiplex channel.
// It reuses the value of ids.AppChannel, which the switching stack never
// multiplexes (sub-protocols use ids.ProtocolChannel).
const detectorChannel = ids.AppChannel

// RecoveryConfig enables the self-healing extensions to the token-ring
// SP: a heartbeat failure detector whose suspects are skipped in ring
// arithmetic, a wedge detector that regenerates a lost token, and
// abort-and-retry of a switch round whose member set changed mid-flight.
//
// The paper's §2 protocol assumes crash-free members — a single
// crash-stop failure silently wedges its token ring (the E10 boundary).
// With recovery enabled the ring repairs itself instead: every member
// arms a timeout whenever it sees the token, and a member whose timeout
// expires regenerates the token one generation higher, seeded with the
// highest epoch it has observed. Stale tokens of older generations are
// absorbed wherever they surface, so the ring converges back to exactly
// one token.
//
// Assumptions and limits (see DESIGN.md E10/E13): suspicion must be
// eventually accurate. A falsely suspected member is routed around; when
// it rejoins it fast-forwards to the ring's epoch, and any of its
// messages still draining in an epoch the ring has already closed are
// dropped as stale at the survivors — the classic non-atomic boundary
// that only a full view-synchronous membership (internal/core/viewswitch)
// removes.
type RecoveryConfig struct {
	// Detector tunes the heartbeat failure detector. The zero value
	// uses fd defaults (20ms interval, 5x timeout).
	Detector fd.Config
	// WedgeTimeout is the base token-silence timeout while the ring is
	// idle (NORMAL rotation). Defaults to 2*n*TokenInterval for an
	// n-member group — one full rotation plus slack.
	WedgeTimeout time.Duration
	// SwitchTimeout is the base token-silence timeout while a switch
	// round (PREPARE/SWITCH/FLUSH) is in flight. Rounds pass the token
	// without holding it, so this can be much tighter than WedgeTimeout.
	// Defaults to 3*TokenInterval.
	SwitchTimeout time.Duration
	// MaxBackoffShift caps the exponential backoff applied to the
	// timeouts after consecutive regenerations that produced no token
	// sighting (timeout << shift). Defaults to 6 (64x). Regardless of
	// the shift, the backed-off timeout saturates at maxRecoveryBackoff
	// rather than overflowing time.Duration.
	MaxBackoffShift int
	// Adaptive enables the gray-failure detector extensions: graded
	// phi-accrual-style suspicion over per-peer heartbeat inter-arrival
	// statistics, and BGP-style flap damping that routes repeatedly
	// flapping peers around in degraded mode. Nil keeps the fixed
	// detector byte-for-byte.
	Adaptive *AdaptiveConfig
}

// Validate checks the recovery configuration.
func (c RecoveryConfig) Validate() error {
	if c.WedgeTimeout < 0 || c.SwitchTimeout < 0 {
		return fmt.Errorf("switching: negative recovery timeout")
	}
	if c.MaxBackoffShift < 0 {
		return fmt.Errorf("switching: negative recovery backoff shift")
	}
	if c.Adaptive != nil {
		if err := c.Adaptive.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// maxRecoveryBackoff is the ceiling of the exponential wedge backoff:
// however large the strike shift or the configured base timeout, the
// backed-off wait never exceeds this (and in particular never
// overflows time.Duration into a negative — that is, instantly firing
// — timer).
const maxRecoveryBackoff = time.Minute

// backoffTimeout returns base << shift saturated at maxRecoveryBackoff.
func backoffTimeout(base time.Duration, shift int) time.Duration {
	if base >= maxRecoveryBackoff {
		return maxRecoveryBackoff
	}
	if shift >= 63 || base > maxRecoveryBackoff>>uint(shift) {
		return maxRecoveryBackoff
	}
	return base << uint(shift)
}

// recovery is one member's wedge detector and ring-repair state.
type recovery struct {
	s   *Switch
	cfg RecoveryConfig
	det *fd.Detector
	// ad is the optional gray-failure layer (nil with the fixed
	// detector).
	ad *adaptive

	// gen/origin are the watermark of the newest token lineage seen.
	// Tokens ordered before the watermark are stale duplicates and are
	// dropped on arrival.
	gen    uint64
	origin ids.ProcID
	// maxEpoch is the highest epoch observed in any token — the seed
	// for regenerated tokens.
	maxEpoch uint64
	// lastMode is the mode of the last token seen or passed; it selects
	// the wedge timeout (rounds rotate much faster than idle NORMAL).
	lastMode Mode
	// strikes counts consecutive wedge firings with no token sighting
	// in between; it drives the exponential backoff.
	strikes int
	timer   proto.Timer
}

// newRecovery wires the failure detector onto the switch's multiplex and
// arms the initial wedge timer.
func newRecovery(s *Switch, cfg RecoveryConfig) (*recovery, error) {
	if cfg.WedgeTimeout <= 0 {
		cfg.WedgeTimeout = 2 * time.Duration(s.env.Ring().Size()) * s.cfg.TokenInterval
	}
	if cfg.SwitchTimeout <= 0 {
		cfg.SwitchTimeout = 3 * s.cfg.TokenInterval
	}
	if cfg.MaxBackoffShift == 0 {
		cfg.MaxBackoffShift = 6
	}
	r := &recovery{s: s, cfg: cfg, lastMode: ModeNormal}
	dcfg := cfg.Detector
	userSuspect := dcfg.OnSuspect
	dcfg.OnSuspect = func(p ids.ProcID) {
		// The suspicion is recorded before any regeneration it triggers,
		// so every EvTokenRegen in a trace is preceded by the
		// EvWedgeTimeout or EvSuspect that caused it.
		s.obs.Record(obs.Suspect(s.env.Now(), s.env.Self(), p))
		r.onSuspect(p)
		if userSuspect != nil {
			userSuspect(p)
		}
	}
	userRestore := dcfg.OnRestore
	dcfg.OnRestore = func(p ids.ProcID) {
		// The falling edge paired with EvSuspect, so suspect gauges can
		// drop when a peer recovers.
		s.obs.Record(obs.SuspectCleared(s.env.Now(), s.env.Self(), p))
		if r.ad != nil {
			r.ad.onRestore(p)
		}
		if userRestore != nil {
			userRestore(p)
		}
	}
	if cfg.Adaptive != nil {
		r.ad = newAdaptive(r, *cfg.Adaptive, dcfg)
		userBeat := dcfg.OnHeartbeat
		dcfg.OnHeartbeat = func(p ids.ProcID) {
			r.ad.onHeartbeat(p)
			if userBeat != nil {
				userBeat(p)
			}
		}
	}
	det := fd.New(dcfg)
	if err := det.Init(s.env, s.mux.Port(detectorChannel)); err != nil {
		return nil, fmt.Errorf("switching: recovery detector: %w", err)
	}
	s.mux.Bind(detectorChannel, proto.UpFunc(det.Recv))
	r.det = det
	r.arm()
	return r, nil
}

func (r *recovery) stop() {
	r.det.Stop()
	if r.timer != nil {
		r.timer.Stop()
	}
}

// Detector exposes the recovery failure detector (nil when recovery is
// disabled) for tests and management tools.
func (s *Switch) Detector() *fd.Detector {
	if s.rec == nil {
		return nil
	}
	return s.rec.det
}

// Damped reports whether p is in flap-damping degraded mode at this
// member — skipped in ring rotation, its suspicion transitions ignored.
// Always false without Recovery.Adaptive.
func (s *Switch) Damped(p ids.ProcID) bool {
	return s.rec != nil && s.rec.ad != nil && s.rec.ad.isDamped(p)
}

// supersedes reports whether token t is ordered at or after the
// watermark: a newer generation always wins; within a generation the
// smaller origin wins, so concurrent regenerations converge to exactly
// one surviving token.
func (r *recovery) supersedes(t Token) bool {
	if t.Gen != r.gen {
		return t.Gen > r.gen
	}
	return t.Origin <= r.origin
}

// admit applies the generation filter to an arriving token. It returns
// false for a stale token (drop it); otherwise it advances the
// watermark, discards state belonging to superseded rounds, notes the
// sighting, and re-arms the wedge timer.
//
// A damped peer's tokens are deliberately NOT refused here. A flapping
// member that has been routed around keeps wedge-timing-out and
// regenerating (its backoff doubles, so the stream is bounded), and an
// early design refused those lineages at ingress — but damping state
// is per-observer and converges gradually, so a lineage admitted by a
// not-yet-damped member died at the next damped hop, losing the token
// inside the healthy group. Accepting the lineage costs one watermark
// bump; refusing it cost a group-wide wedge.
func (r *recovery) admit(t Token) bool {
	if !r.supersedes(t) {
		return false
	}
	s := r.s
	advanced := t.Gen > r.gen || t.Origin < r.origin
	r.gen, r.origin = t.Gen, t.Origin
	if advanced {
		// The watermark advanced: every token of the old lineage is
		// dead. A FLUSH held from a superseded round must not be
		// forwarded when this member completes.
		if s.heldFlush != nil && !r.supersedes(*s.heldFlush) {
			s.heldFlush = nil
		}
		// An initiator whose round was superseded by another member's
		// regeneration relinquishes the round; if it is still draining
		// it will rejoin the retry as an ordinary participant.
		if s.initiating && t.Initiator != s.env.Self() {
			s.initiating = false
			s.stats.SwitchesAborted++
			s.obs.Record(obs.SwitchAbort(s.env.Now(), s.env.Self(), s.deliverEpoch, r.gen))
		}
	}
	if t.Epoch > r.maxEpoch {
		r.maxEpoch = t.Epoch
	}
	r.lastMode = t.Mode
	r.strikes = 0
	r.arm()
	return true
}

// noteEpoch keeps the regeneration seed at the highest epoch this member
// has reached locally.
func (r *recovery) noteEpoch(e uint64) {
	if e > r.maxEpoch {
		r.maxEpoch = e
	}
}

// skipped reports whether p is routed around in ring arithmetic:
// suspected by the failure detector, or damped by the flap-damping
// layer (degraded mode).
func (r *recovery) skipped(p ids.ProcID) bool {
	if r.det.Suspected(p) {
		return true
	}
	return r.ad != nil && r.ad.isDamped(p)
}

// successor returns the next unskipped member after self on the ring,
// or self when every other member is skipped (singleton behaviour).
// Damped members are skipped without a token regeneration — the
// degraded-mode ring repair — and each such bypass is evented.
func (r *recovery) successor(self ids.ProcID) ids.ProcID {
	ring := r.s.env.Ring()
	next := self
	for i := 0; i < ring.Size(); i++ {
		succ, err := ring.Successor(next)
		if err != nil {
			return self
		}
		if succ == self {
			return succ
		}
		if !r.det.Suspected(succ) {
			if r.ad == nil || !r.ad.isDamped(succ) {
				return succ
			}
			r.ad.noteSkip(succ)
		}
		next = succ
	}
	return self
}

// livePosition returns this member's rank among unskipped members in
// ring order — the stagger that makes concurrent regenerations unlikely.
func (r *recovery) livePosition() int {
	pos := 0
	for _, p := range r.s.env.Ring().Members() {
		if p == r.s.env.Self() {
			return pos
		}
		if !r.skipped(p) {
			pos++
		}
	}
	return pos
}

// timeout returns the current wedge timeout: the mode-dependent base,
// doubled per strike (saturating at maxRecoveryBackoff), plus the
// live-position stagger.
func (r *recovery) timeout() time.Duration {
	base := r.cfg.WedgeTimeout
	if r.lastMode != ModeNormal || r.s.Switching() {
		base = r.cfg.SwitchTimeout
	}
	shift := r.strikes
	if shift > r.cfg.MaxBackoffShift {
		shift = r.cfg.MaxBackoffShift
	}
	return backoffTimeout(base, shift) + time.Duration(r.livePosition())*r.s.cfg.TokenInterval
}

// arm (re)starts the wedge timer.
func (r *recovery) arm() {
	if r.timer != nil {
		r.timer.Stop()
	}
	r.timer = r.s.env.After(r.timeout(), r.onWedge)
}

// onSuspect aborts and retries an in-flight switch round when the member
// set changes mid-round. Only the lowest-ranked live member reacts — the
// others' generation filters absorb the superseded round's tokens. A
// damped peer is already routed around, so its suspicion transitions
// (the flapping the damping exists to absorb) must not abort rounds.
func (r *recovery) onSuspect(p ids.ProcID) {
	s := r.s
	if s.stopped {
		return
	}
	if r.ad != nil && r.ad.isDamped(p) {
		return
	}
	if !s.Switching() || r.livePosition() != 0 {
		return
	}
	r.regenerate()
}

// onWedge fires when no token has been sighted for the timeout: the
// token is presumed lost (its holder crashed, or the round it belongs to
// stalled on a dead member's messages). Regenerate it.
func (r *recovery) onWedge() {
	s := r.s
	if s.stopped {
		return
	}
	s.stats.WedgeTimeouts++
	if r.strikes < r.cfg.MaxBackoffShift {
		r.strikes++
	}
	s.obs.Record(obs.WedgeTimeout(s.env.Now(), s.env.Self(), r.strikes))
	r.regenerate()
}

// regenerate creates a replacement token one generation up. An idle
// member emits a NORMAL token seeded with the highest epoch seen; a
// member caught mid-switch re-runs the round from PREPARE so the vector
// is rebuilt over the live membership ("abort and retry").
func (r *recovery) regenerate() {
	s := r.s
	r.gen++
	r.origin = s.env.Self()
	s.stats.TokensRegenerated++
	s.obs.Record(obs.TokenRegen(s.env.Now(), s.env.Self(), s.deliverEpoch, r.gen))
	if s.heldFlush != nil {
		s.heldFlush = nil
	}
	if s.Switching() {
		if s.initiating {
			s.stats.SwitchesAborted++
			s.obs.Record(obs.SwitchAbort(s.env.Now(), s.env.Self(), s.deliverEpoch, r.gen))
		}
		r.retryRound(r.gen, s.env.Self())
		r.arm()
		return
	}
	r.noteEpoch(s.deliverEpoch)
	r.lastMode = ModeNormal
	s.onToken(Token{
		Mode:      ModeNormal,
		Epoch:     r.maxEpoch,
		Initiator: s.env.Self(),
		Gen:       r.gen,
		Origin:    s.env.Self(),
	})
	r.arm()
}

// retryRound restarts the in-flight switch from PREPARE under the given
// token lineage, with this member as the new initiator. Members that
// already redirected their sends report their (now final) counts again;
// slots of members that are gone stay zero, so completion waits only on
// the live membership.
func (r *recovery) retryRound(gen uint64, origin ids.ProcID) {
	s := r.s
	if !s.initiating {
		// A takeover: this member was an ordinary participant and is now
		// the round's initiator. Record the start like the normal path in
		// onToken does, so the audit trail sees every initiator of a
		// round, not just the first.
		s.initiating = true
		s.started = s.env.Now()
		s.obs.Record(obs.SwitchStart(s.started, s.env.Self(), s.deliverEpoch, gen))
	}
	s.expected = nil
	prep := Token{
		Mode:      ModePrepare,
		Epoch:     s.deliverEpoch,
		Initiator: s.env.Self(),
		Vector:    make([]uint64, s.env.Ring().Size()),
		Gen:       gen,
		Origin:    origin,
	}
	s.applyPrepare(&prep)
	r.lastMode = ModePrepare
	s.passToken(prep)
}
