package swtest_test

import (
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// TestRecorderReachesEveryMember wires one collector through
// switching.Config and checks the black-box contract of the trace a
// cluster run produces: every member contributes events, the stream is
// time-ordered, a requested switch shows up as a start/complete span,
// and replaying the trace through a metrics registry reproduces each
// member's own counters.
func TestRecorderReachesEveryMember(t *testing.T) {
	const n = 4
	col := obs.NewCollector()
	c, err := swtest.NewSwitched(1, simnet.Config{Nodes: n, PropDelay: time.Millisecond}, n,
		switching.Config{Protocols: factories(), Recorder: col})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Sim.At(300*time.Millisecond, func() { c.Members[2].Switch.RequestSwitch() })
	c.Run(time.Second)

	events := col.Events()
	if len(events) == 0 {
		t.Fatal("collector saw no events")
	}
	passers := make(map[ids.ProcID]bool)
	var started, completed int
	last := time.Duration(-1)
	for _, e := range events {
		if e.At < last {
			t.Fatalf("trace not time-ordered: %v after %v", e.At, last)
		}
		last = e.At
		switch e.Type {
		case obs.EvTokenPass:
			passers[e.Proc] = true
		case obs.EvSwitchStart:
			started++
		case obs.EvSwitchComplete:
			completed++
		}
	}
	if len(passers) != n {
		t.Errorf("token passes recorded for %d of %d members", len(passers), n)
	}
	if started == 0 || completed == 0 {
		t.Errorf("requested switch left no span: %d starts, %d completions", started, completed)
	}

	// The trace carries enough to rebuild every member's counters.
	m := obs.NewMetrics()
	rec := m.Recorder()
	for _, e := range events {
		rec.Record(e)
	}
	for p := 0; p < n; p++ {
		st := c.Members[p].Switch.Stats()
		pid := ids.ProcID(p)
		if got := m.Counter(pid, obs.KeyTokenPasses); got != st.TokenPasses {
			t.Errorf("member %d: replayed token passes %d != stats %d", p, got, st.TokenPasses)
		}
		if got := m.Counter(pid, obs.KeySwitchesCompleted); got != st.SwitchesCompleted {
			t.Errorf("member %d: replayed switch completions %d != stats %d", p, got, st.SwitchesCompleted)
		}
		if got := m.Counter(pid, obs.KeyBuffered); got != st.Buffered {
			t.Errorf("member %d: replayed buffer count %d != stats %d", p, got, st.Buffered)
		}
	}
}

// TestNopRecorderByDefault: an unset Config.Recorder must behave
// exactly like obs.Nop — the cluster runs and no recorder is consulted
// (guarded by the switching layer's OrNop normalisation, so this is a
// smoke test that the default path still works end to end).
func TestNopRecorderByDefault(t *testing.T) {
	c, err := swtest.NewSwitched(1, simnet.Config{Nodes: 2, PropDelay: time.Millisecond}, 2,
		switching.Config{Protocols: factories()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(200 * time.Millisecond)
	if c.Members[0].Switch.Stats().TokenPasses == 0 {
		t.Error("cluster made no progress without a recorder")
	}
}
