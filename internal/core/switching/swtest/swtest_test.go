package swtest_test

import (
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
)

func factories() []switching.ProtocolFactory {
	mk := func(proto.Env) []proto.Layer {
		return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
	}
	return []switching.ProtocolFactory{mk, mk}
}

func TestNewSwitchedDefaults(t *testing.T) {
	c, err := swtest.NewSwitched(1, simnet.Config{Nodes: 3, PropDelay: time.Millisecond}, 3,
		switching.Config{Protocols: factories()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	m := proto.AppMsg{ID: proto.MakeMsgID(1, 1), Sender: 1, Body: []byte("x")}
	s, err := c.CastApp(m)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	bodies, err := c.AppBodies(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 1 || bodies[0] != "x" {
		t.Fatalf("bodies = %v", bodies)
	}
	tr, err := c.TraceTimed([]ptest.SentMsg{s})
	if err != nil {
		t.Fatal(err)
	}
	// 1 send + 3 deliveries.
	if len(tr) != 4 {
		t.Fatalf("trace has %d events, want 4:\n%v", len(tr), tr)
	}
	if err := tr.ValidateAtMostOnce(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSwitchedWithAppCustomApp(t *testing.T) {
	delivered := 0
	c, err := swtest.NewSwitchedWithApp(1, simnet.Config{Nodes: 2, PropDelay: time.Millisecond}, 2,
		switching.Config{Protocols: factories()},
		func(_ *swtest.SwitchedMember, _ *des.Sim) proto.Up {
			return proto.UpFunc(func(_ ids.ProcID, _ []byte) { delivered++ })
		})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Cast(0, proto.AppMsg{ID: 1, Sender: 0, Body: []byte("y")}.Encode()); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if delivered != 2 {
		t.Fatalf("custom app saw %d deliveries, want 2", delivered)
	}
	// The custom app bypassed the recording buffers.
	if len(c.Members[0].Delivered) != 0 {
		t.Error("recording buffer filled despite custom app")
	}
}

func TestNewSwitchedErrors(t *testing.T) {
	if _, err := swtest.NewSwitched(1, simnet.Config{Nodes: 0}, 2,
		switching.Config{Protocols: factories()}); err == nil {
		t.Error("bad network config accepted")
	}
	if _, err := swtest.NewSwitched(1, simnet.Config{Nodes: 2}, 2,
		switching.Config{}); err == nil {
		t.Error("missing protocols accepted")
	}
}
