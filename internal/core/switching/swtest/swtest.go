// Package swtest builds simulated clusters whose members run the
// switching protocol — shared scaffolding for the switching tests, the
// benchmark harness, and the examples.
package swtest

import (
	"fmt"
	"time"

	"repro/internal/core/switching"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/ptest"
	"repro/internal/runtime/simenv"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// SwitchedMember is one process running the switching protocol.
type SwitchedMember struct {
	Node      *simenv.Node
	Switch    *switching.Switch
	Delivered []ptest.Delivery
}

// SwitchedCluster is a simulated group in which every member runs a
// Switch over the same set of sub-protocols.
type SwitchedCluster struct {
	Sim     *des.Sim
	Net     *simnet.Network
	Group   *simenv.Group
	Members []*SwitchedMember
}

// NewSwitched builds an n-member cluster of Switches. cfg.Protocols must
// be set; the remaining switching config fields are honoured as given.
// Every member's application records deliveries into Member.Delivered.
func NewSwitched(seed int64, netCfg simnet.Config, n int, swCfg switching.Config) (*SwitchedCluster, error) {
	return NewSwitchedWithApp(seed, netCfg, n, swCfg, nil)
}

// AppFactory builds the application endpoint for one member.
type AppFactory func(m *SwitchedMember, sim *des.Sim) proto.Up

// NewSwitchedWithApp is NewSwitched with a custom application per
// member. A nil appFor installs the default recording application.
func NewSwitchedWithApp(seed int64, netCfg simnet.Config, n int, swCfg switching.Config, appFor AppFactory) (*SwitchedCluster, error) {
	sim := des.New(seed)
	net, err := simnet.New(sim, netCfg)
	if err != nil {
		return nil, err
	}
	group, err := simenv.NewGroup(sim, net, n)
	if err != nil {
		return nil, err
	}
	if appFor == nil {
		appFor = func(m *SwitchedMember, sim *des.Sim) proto.Up {
			return proto.UpFunc(func(src ids.ProcID, payload []byte) {
				buf := make([]byte, len(payload))
				copy(buf, payload)
				m.Delivered = append(m.Delivered, ptest.Delivery{At: sim.Now(), Src: src, Payload: buf})
			})
		}
	}
	c := &SwitchedCluster{Sim: sim, Net: net, Group: group}
	for _, node := range group.Nodes() {
		m := &SwitchedMember{Node: node}
		sw, err := switching.New(node, appFor(m, sim), node.Transport(), swCfg)
		if err != nil {
			return nil, fmt.Errorf("ptest: member %v: %w", node.Self(), err)
		}
		m.Switch = sw
		if err := node.BindStack(sw.Recv); err != nil {
			return nil, err
		}
		c.Members = append(c.Members, m)
	}
	return c, nil
}

// Cast multicasts a payload from member p through its switch.
func (c *SwitchedCluster) Cast(p ids.ProcID, payload []byte) error {
	return c.Members[p].Switch.Cast(payload)
}

// CastApp multicasts an app message from its sender, returning the send
// time for trace building.
func (c *SwitchedCluster) CastApp(m proto.AppMsg) (ptest.SentMsg, error) {
	s := ptest.SentMsg{At: c.Sim.Now(), Msg: m}
	return s, c.Members[m.Sender].Switch.Cast(m.Encode())
}

// Run drives the simulation until the deadline.
func (c *SwitchedCluster) Run(d time.Duration) { c.Sim.RunUntil(d) }

// Stop stops all switches.
func (c *SwitchedCluster) Stop() {
	for _, m := range c.Members {
		m.Switch.Stop()
	}
}

// AppBodies decodes member p's deliveries as AppMsgs and returns the
// bodies in order.
func (c *SwitchedCluster) AppBodies(p ids.ProcID) ([]string, error) {
	var out []string
	for _, d := range c.Members[p].Delivered {
		m, err := proto.DecodeApp(d.Payload)
		if err != nil {
			return nil, err
		}
		out = append(out, string(m.Body))
	}
	return out, nil
}

// TraceTimed reconstructs the app-level trace (see Cluster.TraceTimed).
func (c *SwitchedCluster) TraceTimed(sent []ptest.SentMsg) (trace.Trace, error) {
	// Reuse Cluster's implementation through a light adapter.
	adapter := &ptest.Cluster{Sim: c.Sim}
	for _, m := range c.Members {
		adapter.Members = append(adapter.Members, &ptest.Member{Node: m.Node, Delivered: m.Delivered})
	}
	return adapter.TraceTimed(sent)
}
