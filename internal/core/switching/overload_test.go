package switching_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/simnet"
)

// TestOverloadConfigValidate pins the rejection of nonsensical overload
// knobs, and that Config.Validate reaches them through the Overload
// pointer.
func TestOverloadConfigValidate(t *testing.T) {
	valid := switching.OverloadConfig{
		IngressQueueCap: 16, EgressQueueCap: 8,
		LowWatermark: 2, HighWatermark: 6,
		ServiceInterval: time.Millisecond, RetryBackoff: 2 * time.Millisecond,
		MaxRetryShift: 3,
	}
	cases := []struct {
		name    string
		mutate  func(*switching.OverloadConfig)
		wantErr string
	}{
		{"valid", func(*switching.OverloadConfig) {}, ""},
		{"defaults only", func(c *switching.OverloadConfig) {
			*c = switching.OverloadConfig{IngressQueueCap: 4, EgressQueueCap: 4}
		}, ""},
		{"zero ingress cap", func(c *switching.OverloadConfig) { c.IngressQueueCap = 0 }, "ingress queue cap"},
		{"negative ingress cap", func(c *switching.OverloadConfig) { c.IngressQueueCap = -1 }, "ingress queue cap"},
		{"zero egress cap", func(c *switching.OverloadConfig) { c.EgressQueueCap = 0 }, "egress queue cap"},
		{"negative watermark", func(c *switching.OverloadConfig) { c.LowWatermark = -1 }, "negative overload watermark"},
		{"low at high", func(c *switching.OverloadConfig) { c.LowWatermark = c.HighWatermark }, "must be below high"},
		{"low above high", func(c *switching.OverloadConfig) { c.LowWatermark = c.HighWatermark + 1 }, "must be below high"},
		{"high above cap", func(c *switching.OverloadConfig) { c.HighWatermark = c.EgressQueueCap + 1 }, "above egress queue cap"},
		{"negative service interval", func(c *switching.OverloadConfig) { c.ServiceInterval = -time.Millisecond }, "negative overload interval"},
		{"negative retry backoff", func(c *switching.OverloadConfig) { c.RetryBackoff = -time.Millisecond }, "negative overload interval"},
		{"retry shift too large", func(c *switching.OverloadConfig) { c.MaxRetryShift = 17 }, "out of range"},
		{"negative retry shift", func(c *switching.OverloadConfig) { c.MaxRetryShift = -1 }, "out of range"},
	}
	for _, tc := range cases {
		ovl := valid
		tc.mutate(&ovl)
		err := ovl.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}

	// The Config-level hook: a bad overload block fails Config.Validate.
	cfg := switching.Config{
		Protocols:     orderedPair(),
		TokenInterval: 2 * time.Millisecond,
		Overload:      &switching.OverloadConfig{IngressQueueCap: 4, EgressQueueCap: -4},
	}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "egress queue cap") {
		t.Errorf("Config.Validate let a bad overload block through: %v", err)
	}
}

// TestOverloadFlood drives a four-member cluster where every member
// casts far faster than the configured service capacity, and asserts
// the overload layer's contract end to end: queues never exceed their
// caps, backpressure engages, rejected sends retry, the conservation
// ledger balances on every member, and the traffic that was sent is
// still delivered in one common total order (ingress sheds look like
// network loss, which the reliable FIFO repairs).
func TestOverloadFlood(t *testing.T) {
	const n = 4
	onOff := make(map[bool]int)
	cfg := switching.Config{
		TokenInterval: 2 * time.Millisecond,
		Overload: &switching.OverloadConfig{
			IngressQueueCap: 4,
			EgressQueueCap:  4,
			LowWatermark:    1,
			HighWatermark:   3,
			ServiceInterval: 300 * time.Microsecond,
			RetryBackoff:    600 * time.Microsecond,
			MaxRetryShift:   2,
			OnBackpressure:  func(paused bool) { onOff[paused]++ },
		},
	}
	c := newCluster(t, 7, simnet.Config{Nodes: n, PropDelay: 100 * time.Microsecond}, n, cfg)

	// The flood: every member casts 30 messages at a 40µs cadence —
	// nearly 8× the egress service rate, and together almost 10× any
	// single ingress service rate.
	for p := 0; p < n; p++ {
		for i := 0; i < 30; i++ {
			p, i := p, i
			c.Sim.At(time.Duration(i)*40*time.Microsecond, func() {
				m := proto.AppMsg{
					ID:     proto.MakeMsgID(ids.ProcID(p), uint32(i)),
					Sender: ids.ProcID(p),
					Body:   []byte(fmt.Sprintf("e0-f%d.%02d", p, i)),
				}
				_ = c.Members[p].Switch.Cast(m.Encode())
			})
		}
	}
	// Long tail so retries resolve, queues drain, and FIFO repairs the
	// ingress sheds.
	c.Run(500 * time.Millisecond)
	c.Stop()

	var totalShed, totalBP, totalRetried, totalSent uint64
	for p := 0; p < n; p++ {
		sw := c.Members[p].Switch
		st := sw.Stats()
		a := sw.OverloadAccounting()
		if a.IngressMaxDepth > a.IngressCap || a.EgressMaxDepth > a.EgressCap {
			t.Errorf("member %d: queue depth exceeded cap: ingress %d/%d egress %d/%d",
				p, a.IngressMaxDepth, a.IngressCap, a.EgressMaxDepth, a.EgressCap)
		}
		if a.Casts != a.EgressAdmitted+a.EgressRetrying+a.EgressShed {
			t.Errorf("member %d: egress ledger unbalanced: %+v", p, a)
		}
		if a.EgressAdmitted != a.EgressSent+a.EgressQueued {
			t.Errorf("member %d: egress admitted ledger unbalanced: %+v", p, a)
		}
		if a.IngressAdmitted != a.IngressServed+a.IngressQueued {
			t.Errorf("member %d: ingress ledger unbalanced: %+v", p, a)
		}
		if a.Casts != 30 {
			t.Errorf("member %d: layer saw %d casts, want 30", p, a.Casts)
		}
		if a.EgressQueued != 0 || a.EgressRetrying != 0 {
			t.Errorf("member %d: egress not drained after the flood: %+v", p, a)
		}
		totalShed += st.Shed
		totalBP += st.Backpressured
		totalRetried += st.RetriedSends
		totalSent += a.EgressSent
	}
	if totalShed == 0 {
		t.Error("flood never shed a frame — the caps were not exercised")
	}
	if totalBP == 0 {
		t.Error("flood never crossed the high watermark")
	}
	if totalRetried == 0 {
		t.Error("flood never retried a rejected send")
	}
	if onOff[true] == 0 || onOff[false] == 0 {
		t.Errorf("OnBackpressure saw %d pauses and %d resumes, want both > 0", onOff[true], onOff[false])
	}

	// Everything actually sent is delivered everywhere, in one order:
	// shedding degraded throughput, never consistency.
	ref, err := c.AppBodies(0)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(ref)) != totalSent {
		t.Errorf("member 0 delivered %d messages, want the %d egress-sent casts", len(ref), totalSent)
	}
	for p := 1; p < n; p++ {
		got, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("member %d delivered %d, member 0 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %d disagrees with member 0 at %d: %q vs %q", p, i, got[i], ref[i])
			}
		}
	}
}
