package switching

import (
	"fmt"
	"time"
)

// Oracle decides which protocol index should be active for a given load
// metric. The paper deliberately leaves "which protocol is best" as an
// orthogonal problem solved by "some kind of oracle" (§1); these are the
// two policies §7 discusses.
type Oracle interface {
	// Preferred returns the protocol index the oracle wants active
	// given the current metric (e.g. number of active senders).
	Preferred(metric float64) int
}

// ThresholdOracle switches at a single cut-over point: protocol 0 below
// the threshold, protocol 1 at or above it. §7 observes that switching
// this aggressively near the crossover makes the hybrid oscillate.
type ThresholdOracle struct {
	// Threshold is the metric value at which protocol 1 becomes
	// preferred.
	Threshold float64
}

var _ Oracle = ThresholdOracle{}

// Preferred implements Oracle.
func (o ThresholdOracle) Preferred(metric float64) int {
	if metric >= o.Threshold {
		return 1
	}
	return 0
}

// HysteresisOracle is the paper's fix for oscillation (§7): protocol 1
// is preferred only once the metric exceeds High, and protocol 0 only
// once it falls below Low. Between the two bounds the oracle keeps its
// previous answer.
type HysteresisOracle struct {
	Low, High float64
	cur       int
}

var _ Oracle = (*HysteresisOracle)(nil)

// NewHysteresisOracle validates the band and returns an oracle starting
// at protocol 0.
func NewHysteresisOracle(low, high float64) (*HysteresisOracle, error) {
	if low >= high {
		return nil, fmt.Errorf("switching: hysteresis band [%v, %v) is empty", low, high)
	}
	return &HysteresisOracle{Low: low, High: high}, nil
}

// Preferred implements Oracle.
func (o *HysteresisOracle) Preferred(metric float64) int {
	switch {
	case metric >= o.High:
		o.cur = 1
	case metric < o.Low:
		o.cur = 0
	}
	return o.cur
}

// LatencyTracker turns observed delivery latencies into the smoothed
// metric an oracle consumes — the realistic alternative to an
// externally supplied load figure. It keeps an exponentially weighted
// moving average: cheap, window-free, and biased toward recent
// behaviour, which is what a switching decision should react to.
//
// Feed it from the application's delivery path (Observe) and wire
// MetricMillis as the Controller's metric function. Note the feedback
// caveat §7 implies: after switching to the slower protocol, measured
// latency legitimately rises — thresholds must be set against each
// protocol's own expected range (or use hysteresis generously) or the
// controller will flap.
type LatencyTracker struct {
	// Alpha is the EWMA weight of a new sample (0 < Alpha <= 1).
	alpha float64
	ewma  float64
	seen  bool
	count uint64
}

// NewLatencyTracker creates a tracker; alpha outside (0, 1] defaults to
// 0.1.
func NewLatencyTracker(alpha float64) *LatencyTracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	return &LatencyTracker{alpha: alpha}
}

// Observe folds one delivery latency into the average.
func (t *LatencyTracker) Observe(d time.Duration) {
	t.count++
	v := float64(d)
	if !t.seen {
		t.ewma = v
		t.seen = true
		return
	}
	t.ewma = t.alpha*v + (1-t.alpha)*t.ewma
}

// Mean returns the current smoothed latency (0 before any sample).
func (t *LatencyTracker) Mean() time.Duration { return time.Duration(t.ewma) }

// Count returns the number of samples observed.
func (t *LatencyTracker) Count() uint64 { return t.count }

// MetricMillis adapts the tracker to a Controller metric function
// (milliseconds, the unit of the paper's Figure 2 axis).
func (t *LatencyTracker) MetricMillis() float64 {
	return t.ewma / float64(time.Millisecond)
}

// Controller periodically samples a load metric, consults the oracle,
// and requests a switch whenever the preferred protocol differs from
// the one new sends are using. One controller (the "manager") per group
// is typical; the token serializes concurrent requests regardless.
type Controller struct {
	sw       *Switch
	oracle   Oracle
	metric   func() float64
	interval time.Duration
	stopped  bool
	// SwitchRequests counts how many times the controller asked for a
	// switch — the oscillation measure of experiment E6.
	SwitchRequests uint64
}

// NewController starts a controller polling metric every interval.
func NewController(sw *Switch, oracle Oracle, metric func() float64, interval time.Duration) (*Controller, error) {
	if sw == nil || oracle == nil || metric == nil || interval <= 0 {
		return nil, fmt.Errorf("switching: controller needs switch, oracle, metric and interval")
	}
	c := &Controller{sw: sw, oracle: oracle, metric: metric, interval: interval}
	c.arm()
	return c, nil
}

func (c *Controller) arm() {
	c.sw.env.After(c.interval, func() {
		if c.stopped || c.sw.stopped {
			return
		}
		c.poll()
		c.arm()
	})
}

// poll runs one decision step (exposed for deterministic tests).
func (c *Controller) poll() {
	want := c.oracle.Preferred(c.metric())
	k := len(c.sw.protos)
	cur := int(c.sw.sendEpoch) % k
	if want == cur {
		c.sw.CancelSwitch()
		return
	}
	// With two protocols a single switch reaches any target; with more,
	// repeated switches walk the cycle.
	if !c.sw.SwitchPending() && !c.sw.Switching() {
		c.SwitchRequests++
		c.sw.RequestSwitch()
	}
}

// Stop halts polling.
func (c *Controller) Stop() { c.stopped = true }
