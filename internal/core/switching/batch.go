package switching

import (
	"encoding/binary"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/wire"
)

// This file is the egress frame batcher: the "one wire write per peer
// per service tick" half of the zero-alloc hot path. It sits between
// the multiplex and the envelope, so every mux frame generated within
// one event-loop step — the overload layer draining several queued
// casts in one service tick, a sub-protocol emitting data plus acks —
// coalesces into a single sealed transport write per destination. In
// auth mode that is the big win: one MAC per batch instead of one per
// frame.
//
// Batch frame layout: [magic 0xB3][count uvarint][count × (len uvarint,
// mux frame)]. The magic cannot collide with a mux channel header:
// channel ids in this repository are small (control 0, detector 1,
// protocols 2+n), so their uvarint first byte never has the high bit
// 0xB3 carries.
//
// Three rules keep the batcher invisible to everything above it:
//
//   - Control frames (the token channel) and failure-detector
//     heartbeats bypass batching entirely and keep their legacy bytes:
//     the switch state machine and the suspicion timeouts must never
//     be reordered behind a data flush.
//   - A flush never straddles a key roll: setSendEpoch and the
//     maxAuthEpoch advance flush the pending batch first, so all
//     frames in one batch were accumulated under one sealing epoch
//     (the epoch-flush rule).
//   - The receiver unpacks inside the trust boundary (after the
//     envelope verified) and routes every inner frame through the same
//     per-frame overload admission an unbatched arrival takes, so the
//     conservation ledger still counts application frames one by one.
//
// Determinism: accumulation order is event order, per-destination
// groups flush in first-use order, and the flush point is env.After(0)
// — the DES fires equal-time events in scheduling order — so batching
// changes bytes only in the documented way (grouping), never their
// order across runs.

// batchMagic tags a multi-frame transport payload. Reserved: mux
// channel ids must stay below 128 so their header byte can never alias
// it.
const batchMagic = 0xB3

// batcher coalesces mux frames into batch frames per destination. It
// implements proto.Down and wraps the sealing transport (or the raw
// transport when Defense is nil).
type batcher struct {
	s    *Switch
	down proto.Down
	max  int

	// cast accumulates broadcast frames; sends accumulates per-peer
	// frames in first-use order (a slice, not a map: flush order must
	// not depend on map iteration — the PR 2 arq bug class).
	cast  batchAcc
	sends []dstAcc
	armed bool

	// flushFn is the arm callback, bound once so scheduling a flush
	// does not allocate a fresh closure per event-loop step.
	flushFn func()
}

type dstAcc struct {
	dst ids.ProcID
	acc batchAcc
}

// batchAcc holds len-prefixed frames awaiting a flush. The buffer is
// reused across flushes, so steady-state accumulation allocates
// nothing.
type batchAcc struct {
	buf   []byte
	count int
}

func (a *batchAcc) add(frame []byte) {
	a.buf = binary.AppendUvarint(a.buf, uint64(len(frame)))
	a.buf = append(a.buf, frame...)
	a.count++
}

func (a *batchAcc) reset() {
	a.buf = a.buf[:0]
	a.count = 0
}

func newBatcher(s *Switch, down proto.Down, max int) *batcher {
	b := &batcher{s: s, down: down, max: max}
	b.flushFn = func() {
		b.armed = false
		b.flush()
	}
	return b
}

// bypassBatch reports whether a mux frame must skip the batcher: the
// token channel and failure-detector heartbeats keep their direct,
// legacy-format path (frames whose channel header does not decode also
// pass through — the receiving demultiplexer owns malformed
// accounting).
func bypassBatch(payload []byte) bool {
	d := wire.NewDecoder(payload)
	ch := d.Channel()
	return d.Err() != nil || ch == ids.ControlChannel || ch == detectorChannel
}

func (b *batcher) Cast(payload []byte) error {
	if bypassBatch(payload) {
		return b.down.Cast(payload)
	}
	b.cast.add(payload)
	if b.cast.count >= b.max {
		b.flush()
		return nil
	}
	b.arm()
	return nil
}

func (b *batcher) Send(dst ids.ProcID, payload []byte) error {
	if bypassBatch(payload) {
		return b.down.Send(dst, payload)
	}
	acc := b.accFor(dst)
	acc.add(payload)
	if acc.count >= b.max {
		b.flush()
		return nil
	}
	b.arm()
	return nil
}

// accFor returns dst's accumulator, appending a new one on first use.
// Linear scan: the ring is small, and slice order is what makes the
// flush deterministic.
func (b *batcher) accFor(dst ids.ProcID) *batchAcc {
	for i := range b.sends {
		if b.sends[i].dst == dst {
			return &b.sends[i].acc
		}
	}
	b.sends = append(b.sends, dstAcc{dst: dst})
	return &b.sends[len(b.sends)-1].acc
}

// arm schedules the flush at the end of the current virtual instant.
// After(0) fires after the running event completes, at the same
// timestamp, in scheduling order — the deterministic coalescing point.
func (b *batcher) arm() {
	if b.armed {
		return
	}
	b.armed = true
	b.s.env.After(0, b.flushFn)
}

// flush emits every pending batch: the broadcast group first, then the
// per-peer groups in first-use order. Called from the arm timer, from
// a full accumulator, and from the key-roll sites (setSendEpoch,
// maxAuthEpoch advance) so a batch never straddles sealing epochs.
// Flushing with nothing pending is a no-op.
func (b *batcher) flush() {
	if b.s.stopped {
		return
	}
	if b.cast.count > 0 {
		bp := wire.GetBuf()
		pkt := appendBatch(*bp, &b.cast)
		_ = b.down.Cast(pkt)
		*bp = pkt[:0]
		wire.PutBuf(bp)
		b.cast.reset()
	}
	for i := range b.sends {
		acc := &b.sends[i].acc
		if acc.count == 0 {
			continue
		}
		bp := wire.GetBuf()
		pkt := appendBatch(*bp, acc)
		_ = b.down.Send(b.sends[i].dst, pkt)
		*bp = pkt[:0]
		wire.PutBuf(bp)
		acc.reset()
	}
}

// appendBatch appends the batch frame header and accumulated entries
// to dst.
func appendBatch(dst []byte, acc *batchAcc) []byte {
	dst = append(dst, batchMagic)
	dst = binary.AppendUvarint(dst, uint64(acc.count))
	return append(dst, acc.buf...)
}

// isBatchFrame reports whether a verified transport payload is a batch
// frame. Only meaningful when batching is enabled: the magic byte is
// reserved then (see batchMagic).
func isBatchFrame(pkt []byte) bool {
	return len(pkt) > 0 && pkt[0] == batchMagic
}

// recvBatch validates and unpacks a batch frame, routing each inner
// mux frame exactly as an unbatched arrival (per-frame overload
// admission included). The structure is validated in full before any
// frame is routed, so a corrupt batch is all-or-nothing: it is counted
// malformed and dropped without partial delivery.
func (s *Switch) recvBatch(src ids.ProcID, pkt []byte) {
	body := pkt[1:]
	count, off := binary.Uvarint(body)
	// Each entry costs at least one length byte, so count can never
	// exceed the remaining bytes in a well-formed batch.
	if off <= 0 || count == 0 || count > uint64(len(body)-off) {
		s.countMalformed(src, obs.MalformedDecode)
		return
	}
	// First pass: structure only.
	walk := off
	for i := uint64(0); i < count; i++ {
		ln, n := binary.Uvarint(body[walk:])
		if n <= 0 || ln > uint64(len(body)-walk-n) {
			s.countMalformed(src, obs.MalformedDecode)
			return
		}
		walk += n + int(ln)
	}
	if walk != len(body) {
		s.countMalformed(src, obs.MalformedDecode)
		return
	}
	// Second pass: route. With the overload layer active the ingress
	// queue retains frames past this callback, so own the whole batch
	// body with a single copy and admit aliasing sub-slices — one
	// allocation per batch instead of one per inner frame. Without the
	// layer every frame is consumed synchronously and can alias pkt.
	owned := s.ovl != nil
	if owned {
		body = append([]byte(nil), body...)
	}
	for i := uint64(0); i < count; i++ {
		ln, n := binary.Uvarint(body[off:])
		off += n
		s.recvFrame(src, body[off:off+int(ln)], owned)
		off += int(ln)
	}
}
