package switching

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Unit tests for the egress batcher: coalescing, the control/heartbeat
// bypass, the epoch-flush rule (a flush never straddles a key roll),
// and the all-or-nothing receive-side unpack. These drive the batcher
// directly with a minimal environment so the batch boundaries are
// observable frame by frame.

type fakeTimer struct{}

func (fakeTimer) Stop() bool   { return false }
func (fakeTimer) Active() bool { return false }

// fakeEnv queues After callbacks and runs them on demand — the unit
// stand-in for the DES's deterministic same-timestamp FIFO.
type fakeEnv struct {
	self ids.ProcID
	ring *ids.Ring
	q    []func()
}

func newFakeEnv(self ids.ProcID, n int) *fakeEnv {
	members := make([]ids.ProcID, n)
	for i := range members {
		members[i] = ids.ProcID(i)
	}
	ring, err := ids.NewRing(members)
	if err != nil {
		panic(err)
	}
	return &fakeEnv{self: self, ring: ring}
}

func (f *fakeEnv) Self() ids.ProcID      { return f.self }
func (f *fakeEnv) Members() []ids.ProcID { return f.ring.Members() }
func (f *fakeEnv) Ring() *ids.Ring       { return f.ring }
func (f *fakeEnv) Now() time.Duration    { return 0 }
func (f *fakeEnv) Rand() *rand.Rand      { return rand.New(rand.NewSource(1)) }
func (f *fakeEnv) After(d time.Duration, fn func()) proto.Timer {
	f.q = append(f.q, fn)
	return fakeTimer{}
}
func (f *fakeEnv) run() {
	for len(f.q) > 0 {
		fn := f.q[0]
		f.q = f.q[1:]
		fn()
	}
}

// captureDown records every transport write, copying (the batcher hands
// out pooled buffers, exactly like a real transport sees them).
type captureDown struct {
	casts [][]byte
	sends []capturedSend
}

type capturedSend struct {
	dst ids.ProcID
	pkt []byte
}

func (c *captureDown) Cast(p []byte) error {
	c.casts = append(c.casts, append([]byte(nil), p...))
	return nil
}

func (c *captureDown) Send(dst ids.ProcID, p []byte) error {
	c.sends = append(c.sends, capturedSend{dst, append([]byte(nil), p...)})
	return nil
}

// muxFrame builds a mux frame for a channel with the given body.
func muxFrame(ch ids.ChannelID, body string) []byte {
	e := wire.NewEncoder(4 + len(body))
	e.Channel(ch)
	return e.Frame([]byte(body))
}

// unpackBatch decodes a batch frame into its inner mux frames.
func unpackBatch(t *testing.T, pkt []byte) [][]byte {
	t.Helper()
	if !isBatchFrame(pkt) {
		t.Fatalf("not a batch frame: %x", pkt)
	}
	d := wire.NewDecoder(pkt[1:])
	count := d.Uvarint()
	var out [][]byte
	for i := uint64(0); i < count; i++ {
		out = append(out, d.BytesField())
	}
	if d.Err() != nil || len(d.Remaining()) != 0 {
		t.Fatalf("bad batch structure: %x (err %v)", pkt, d.Err())
	}
	return out
}

func newTestBatcher(env *fakeEnv, down proto.Down, max int) (*Switch, *batcher) {
	s := &Switch{env: env, obs: obs.OrNop(nil)}
	b := newBatcher(s, down, max)
	s.batch = b
	return s, b
}

func TestBatcherCoalesce(t *testing.T) {
	env := newFakeEnv(0, 3)
	cap := &captureDown{}
	_, b := newTestBatcher(env, cap, 8)
	ch := ids.ProtocolChannel(0)

	f1, f2 := muxFrame(ch, "one"), muxFrame(ch, "two")
	f3 := muxFrame(ch, "to-1")
	_ = b.Cast(f1)
	_ = b.Cast(f2)
	_ = b.Send(1, f3)
	if len(cap.casts) != 0 || len(cap.sends) != 0 {
		t.Fatal("frames escaped before the flush point")
	}
	env.run()

	if len(cap.casts) != 1 || len(cap.sends) != 1 {
		t.Fatalf("got %d casts and %d sends, want 1 each", len(cap.casts), len(cap.sends))
	}
	got := unpackBatch(t, cap.casts[0])
	if len(got) != 2 || !bytes.Equal(got[0], f1) || !bytes.Equal(got[1], f2) {
		t.Fatalf("cast batch mismatch: %q", got)
	}
	gotS := unpackBatch(t, cap.sends[0].pkt)
	if cap.sends[0].dst != 1 || len(gotS) != 1 || !bytes.Equal(gotS[0], f3) {
		t.Fatalf("send batch mismatch: dst %d frames %q", cap.sends[0].dst, gotS)
	}

	// A second accumulation reuses the same buffers and flushes again.
	_ = b.Cast(f1)
	env.run()
	if len(cap.casts) != 2 {
		t.Fatalf("second flush missing: %d casts", len(cap.casts))
	}
	if got := unpackBatch(t, cap.casts[1]); len(got) != 1 || !bytes.Equal(got[0], f1) {
		t.Fatalf("second batch mismatch: %q", got)
	}
}

func TestBatcherFullAccumulatorFlushesEarly(t *testing.T) {
	env := newFakeEnv(0, 3)
	cap := &captureDown{}
	_, b := newTestBatcher(env, cap, 2)
	ch := ids.ProtocolChannel(0)
	_ = b.Cast(muxFrame(ch, "a"))
	_ = b.Cast(muxFrame(ch, "b")) // hits BatchMax: immediate flush
	if len(cap.casts) != 1 {
		t.Fatalf("full accumulator did not flush: %d casts", len(cap.casts))
	}
	if got := unpackBatch(t, cap.casts[0]); len(got) != 2 {
		t.Fatalf("want 2 frames in the early flush, got %d", len(got))
	}
	env.run() // the armed timer finds nothing pending
	if len(cap.casts) != 1 {
		t.Fatal("empty flush emitted a frame")
	}
}

func TestBatcherBypassesControlAndHeartbeats(t *testing.T) {
	env := newFakeEnv(0, 3)
	cap := &captureDown{}
	_, b := newTestBatcher(env, cap, 8)

	token := muxFrame(ids.ControlChannel, "token")
	hb := muxFrame(detectorChannel, "heartbeat")
	_ = b.Send(1, token)
	_ = b.Cast(hb)

	// Both passed straight through, unbatched, in legacy bytes.
	if len(cap.sends) != 1 || !bytes.Equal(cap.sends[0].pkt, token) {
		t.Fatalf("control frame was not passed through verbatim: %+v", cap.sends)
	}
	if len(cap.casts) != 1 || !bytes.Equal(cap.casts[0], hb) {
		t.Fatalf("heartbeat was not passed through verbatim: %q", cap.casts)
	}
	env.run()
	if len(cap.casts) != 1 || len(cap.sends) != 1 {
		t.Fatal("bypass frames were also batched")
	}
}

// TestBatcherEpochFlushRule pins the rule that a batch never straddles
// a key roll: the flush that setSendEpoch (and the maxAuthEpoch
// advance) performs before mutating the sealing epoch must emit the
// pending frames as their own wire write, so frames accumulated before
// the roll cannot coalesce with frames accumulated after it.
func TestBatcherEpochFlushRule(t *testing.T) {
	env := newFakeEnv(0, 3)
	cap := &captureDown{}
	_, b := newTestBatcher(env, cap, 8)
	ch := ids.ProtocolChannel(0)

	pre1, pre2 := muxFrame(ch, "old-epoch-1"), muxFrame(ch, "old-epoch-2")
	post := muxFrame(ch, "new-epoch")
	_ = b.Cast(pre1)
	_ = b.Cast(pre2)
	b.flush() // what the key-roll sites do before changing the epoch
	_ = b.Cast(post)
	env.run()

	if len(cap.casts) != 2 {
		t.Fatalf("got %d wire writes, want 2 (pre-roll batch, post-roll batch)", len(cap.casts))
	}
	gotPre := unpackBatch(t, cap.casts[0])
	if len(gotPre) != 2 || !bytes.Equal(gotPre[0], pre1) || !bytes.Equal(gotPre[1], pre2) {
		t.Fatalf("pre-roll batch mismatch: %q", gotPre)
	}
	gotPost := unpackBatch(t, cap.casts[1])
	if len(gotPost) != 1 || !bytes.Equal(gotPost[0], post) {
		t.Fatalf("post-roll batch mismatch: %q", gotPost)
	}
}

// recvHarness builds a Switch wired just enough to exercise recvBatch:
// a multiplex with one bound channel recording deliveries.
func recvHarness(t *testing.T) (*Switch, *[][]byte) {
	t.Helper()
	env := newFakeEnv(0, 3)
	mux, err := NewMultiplex(&captureDown{})
	if err != nil {
		t.Fatal(err)
	}
	var delivered [][]byte
	ch := ids.ProtocolChannel(0)
	mux.Bind(ch, proto.UpFunc(func(src ids.ProcID, payload []byte) {
		delivered = append(delivered, append([]byte(nil), payload...))
	}))
	s := &Switch{env: env, obs: obs.OrNop(nil), mux: mux}
	s.batch = newBatcher(s, &captureDown{}, 8)
	return s, &delivered
}

func TestRecvBatchRoundTrip(t *testing.T) {
	s, delivered := recvHarness(t)
	ch := ids.ProtocolChannel(0)

	var acc batchAcc
	acc.add(muxFrame(ch, "alpha"))
	acc.add(muxFrame(ch, "beta"))
	acc.add(muxFrame(ch, "gamma"))
	pkt := appendBatch(nil, &acc)

	s.Recv(1, pkt)
	if len(*delivered) != 3 {
		t.Fatalf("delivered %d inner frames, want 3", len(*delivered))
	}
	for i, want := range []string{"alpha", "beta", "gamma"} {
		if string((*delivered)[i]) != want {
			t.Fatalf("inner frame %d = %q, want %q", i, (*delivered)[i], want)
		}
	}
	if s.stats.MalformedDropped != 0 {
		t.Fatalf("well-formed batch counted %d malformed", s.stats.MalformedDropped)
	}
}

// TestRecvBatchAllOrNothing pins the defensive contract: a batch with a
// corrupt structure delivers none of its frames — even those before the
// corruption — and counts exactly one malformed drop.
func TestRecvBatchAllOrNothing(t *testing.T) {
	ch := ids.ProtocolChannel(0)
	var acc batchAcc
	acc.add(muxFrame(ch, "good"))
	acc.add(muxFrame(ch, "also-good"))
	good := appendBatch(nil, &acc)

	cases := []struct {
		name string
		pkt  []byte
	}{
		{"truncated tail", good[:len(good)-2]},
		{"count overrun", func() []byte {
			p := append([]byte(nil), good...)
			p[1] = 200 // claims 200 entries
			return p
		}()},
		{"zero count", []byte{batchMagic, 0}},
		{"empty body", []byte{batchMagic}},
		{"trailing garbage", append(append([]byte(nil), good...), 0xFF)},
	}
	for _, tc := range cases {
		s, delivered := recvHarness(t)
		s.Recv(1, tc.pkt)
		if len(*delivered) != 0 {
			t.Errorf("%s: delivered %d frames from a corrupt batch, want 0", tc.name, len(*delivered))
		}
		if s.stats.MalformedDropped != 1 {
			t.Errorf("%s: counted %d malformed drops, want 1", tc.name, s.stats.MalformedDropped)
		}
	}
}
