package switching

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/wire"
)

// DefenseConfig enables the adversarial-input hardening of the
// switching stack. The §2 protocol (like the Horus stacks it models)
// assumes a benign network; with Defense set, every transport packet is
// wrapped in wire's integrity envelope on egress and verified on
// ingress, so bit rot, truncation, and cross-version garbage are
// detected at the trust boundary — below every protocol header — and
// dropped before they can reach protocol state. A rejected frame looks
// like a loss to the stack above, which the FIFO layer's retransmission
// already repairs, so corruption degrades into latency rather than
// wedges or garbled deliveries.
//
// Nil Defense preserves the legacy wire format byte-for-byte: no
// envelope, no per-packet overhead, identical experiment artifacts.
type DefenseConfig struct {
	// QuarantineThreshold is how many malformed messages apparently
	// from one peer this member tolerates before raising a suspicion
	// against it instead of wedging on its garbage. Required (> 0).
	QuarantineThreshold int
	// OnQuarantine, if set, is invoked (once per peer) when the
	// threshold is crossed.
	OnQuarantine func(ids.ProcID)
}

// Validate checks the defense configuration.
func (c DefenseConfig) Validate() error {
	if c.QuarantineThreshold <= 0 {
		return fmt.Errorf("switching: quarantine threshold %d must be positive", c.QuarantineThreshold)
	}
	return nil
}

// sealedTransport wraps the real transport, sealing every outgoing
// packet in the integrity envelope. It sits below the multiplex, so one
// envelope covers the mux header and everything above it.
type sealedTransport struct {
	down proto.Down
}

func (t sealedTransport) Cast(payload []byte) error {
	return t.down.Cast(wire.Seal(payload))
}

func (t sealedTransport) Send(dst ids.ProcID, payload []byte) error {
	return t.down.Send(dst, wire.Seal(payload))
}

// countMalformed records a defensively-dropped message apparently from
// src and, with Defense enabled, advances src toward quarantine. It is
// called from every ingress rejection site — envelope failures, token
// decode/range failures, epoch-header failures — so Stats and the
// malformed_drop trace stay mutually consistent.
func (s *Switch) countMalformed(src ids.ProcID, reason int64) {
	s.stats.MalformedDropped++
	s.obs.Record(obs.MalformedDrop(s.env.Now(), s.env.Self(), src, reason))
	d := s.cfg.Defense
	if d == nil {
		return
	}
	if s.malformedBy == nil {
		s.malformedBy = make(map[ids.ProcID]uint64)
	}
	s.malformedBy[src]++
	if s.malformedBy[src] != uint64(d.QuarantineThreshold) {
		return
	}
	// Crossing the threshold raises a suspicion instead of wedging:
	// the ring routes around the peer exactly as it would around a
	// crash, and a later healthy heartbeat restores it.
	s.stats.Quarantines++
	s.obs.Record(obs.Quarantine(s.env.Now(), s.env.Self(), src, d.QuarantineThreshold))
	if s.rec != nil {
		s.rec.det.ForceSuspect(src)
	}
	if d.OnQuarantine != nil {
		d.OnQuarantine(src)
	}
}

// MalformedFrom returns how many malformed messages apparently from p
// this member has dropped (quarantine progress).
func (s *Switch) MalformedFrom(p ids.ProcID) uint64 { return s.malformedBy[p] }
