package switching

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/wire"
)

// DefenseConfig enables the adversarial-input hardening of the
// switching stack. The §2 protocol (like the Horus stacks it models)
// assumes a benign network; with Defense set, every transport packet is
// wrapped in wire's integrity envelope on egress and verified on
// ingress, so bit rot, truncation, and cross-version garbage are
// detected at the trust boundary — below every protocol header — and
// dropped before they can reach protocol state. A rejected frame looks
// like a loss to the stack above, which the FIFO layer's retransmission
// already repairs, so corruption degrades into latency rather than
// wedges or garbled deliveries.
//
// Nil Defense preserves the legacy wire format byte-for-byte: no
// envelope, no per-packet overhead, identical experiment artifacts.
type DefenseConfig struct {
	// QuarantineThreshold is how many malformed messages apparently
	// from one peer this member tolerates before raising a suspicion
	// against it instead of wedging on its garbage. Required (> 0).
	// With Auth enabled, authentication failures advance the same
	// per-peer count.
	QuarantineThreshold int
	// OnQuarantine, if set, is invoked (once per peer) when the
	// threshold is crossed.
	OnQuarantine func(ids.ProcID)
	// Auth, when non-nil, upgrades the integrity envelope to the
	// authenticated envelope: frames are MACed under a per-epoch key
	// derived from the group session key, so forgery — not just
	// corruption — is rejected at the trust boundary. See AuthConfig.
	Auth *AuthConfig
}

// AuthConfig configures the authenticated-session mode of the
// defensive ingress. Every member of a group must share the same
// SessionKey (distribution is out of scope — in a deployment it would
// come from a group key agreement à la mpENC; here the harness hands it
// out). The per-frame MAC key is wire.DeriveEpochKey(SessionKey,
// epoch), rolled atomically with the switch protocol's send-epoch
// advance, which makes the epoch counter part of what a frame
// authenticates: a frame captured in epoch N fails verification once
// the group's grace window for N has closed, so cross-epoch replay is
// rejected even though each individual frame is genuine.
type AuthConfig struct {
	// SessionKey is the group session secret. Required (non-empty).
	SessionKey []byte
	// Grace bounds how long after this member rolls its send epoch it
	// keeps accepting frames sealed under the previous epoch's key —
	// covering legitimately in-flight old-epoch frames during a switch
	// round. Beyond the window, previous-epoch frames are rejected as
	// replays. Defaults to 10× the token interval. Same-epoch and
	// newer-epoch frames are always accepted when their MAC verifies
	// (an attacker without the session key can forge neither).
	Grace time.Duration
}

// Validate checks the defense configuration.
func (c DefenseConfig) Validate() error {
	if c.QuarantineThreshold <= 0 {
		return fmt.Errorf("switching: quarantine threshold %d must be positive", c.QuarantineThreshold)
	}
	if c.Auth != nil {
		if len(c.Auth.SessionKey) == 0 {
			return fmt.Errorf("switching: auth mode requires a non-empty session key")
		}
		if c.Auth.Grace < 0 {
			return fmt.Errorf("switching: negative auth grace window %v", c.Auth.Grace)
		}
	}
	return nil
}

// sealedTransport wraps the real transport, sealing every outgoing
// packet in the integrity envelope. It sits below the multiplex, so one
// envelope covers the mux header and everything above it.
type sealedTransport struct {
	down proto.Down
}

func (t sealedTransport) Cast(payload []byte) error {
	bp := wire.GetBuf()
	pkt := wire.SealTo(*bp, payload)
	err := t.down.Cast(pkt)
	*bp = pkt[:0]
	wire.PutBuf(bp)
	return err
}

func (t sealedTransport) Send(dst ids.ProcID, payload []byte) error {
	bp := wire.GetBuf()
	pkt := wire.SealTo(*bp, payload)
	err := t.down.Send(dst, pkt)
	*bp = pkt[:0]
	wire.PutBuf(bp)
	return err
}

// countMalformed records a defensively-dropped message apparently from
// src and, with Defense enabled, advances src toward quarantine. It is
// called from every ingress rejection site — envelope failures, token
// decode/range failures, epoch-header failures — so Stats and the
// malformed_drop trace stay mutually consistent.
func (s *Switch) countMalformed(src ids.ProcID, reason int64) {
	s.stats.MalformedDropped++
	s.obs.Record(obs.MalformedDrop(s.env.Now(), s.env.Self(), src, reason))
	if s.cfg.Defense == nil {
		return
	}
	if s.malformedBy == nil {
		s.malformedBy = make(map[ids.ProcID]uint64)
	}
	s.malformedBy[src]++
	s.noteDefenseDrop(src)
}

// countAuthFailed records an arrival that failed authentication —
// structurally broken envelope, bad MAC, or retired epoch — dropped
// before any state mutation. Auth failures advance the same per-peer
// quarantine progress as malformed drops: a peer spraying forgeries is
// routed around exactly like one spraying garbage.
func (s *Switch) countAuthFailed(src ids.ProcID, epoch uint64, reason int64) {
	s.stats.AuthFailed++
	s.obs.Record(obs.AuthFail(s.env.Now(), s.env.Self(), src, epoch, reason))
	if s.authFailedBy == nil {
		s.authFailedBy = make(map[ids.ProcID]uint64)
	}
	s.authFailedBy[src]++
	s.noteDefenseDrop(src)
}

// noteDefenseDrop advances src's combined defensive-drop count toward
// quarantine. The combined count (malformed + auth-failed) crosses the
// threshold exactly once, so the suspicion fires exactly once per peer.
func (s *Switch) noteDefenseDrop(src ids.ProcID) {
	d := s.cfg.Defense
	if d == nil {
		return
	}
	if s.malformedBy[src]+s.authFailedBy[src] != uint64(d.QuarantineThreshold) {
		return
	}
	// Crossing the threshold raises a suspicion instead of wedging:
	// the ring routes around the peer exactly as it would around a
	// crash, and a later healthy heartbeat restores it.
	s.stats.Quarantines++
	s.obs.Record(obs.Quarantine(s.env.Now(), s.env.Self(), src, d.QuarantineThreshold))
	if s.rec != nil {
		s.rec.det.ForceSuspect(src)
	}
	if d.OnQuarantine != nil {
		d.OnQuarantine(src)
	}
}

// MalformedFrom returns how many malformed messages apparently from p
// this member has dropped (quarantine progress).
func (s *Switch) MalformedFrom(p ids.ProcID) uint64 { return s.malformedBy[p] }

// AuthFailedFrom returns how many arrivals apparently from p failed
// authentication at this member (quarantine progress).
func (s *Switch) AuthFailedFrom(p ids.ProcID) uint64 { return s.authFailedBy[p] }

// authTransport wraps the real transport, sealing every outgoing packet
// in the authenticated envelope under the owner's current send-epoch
// key. It sits below the multiplex, so one MAC covers the mux header
// and everything above it. Because it consults the Switch at seal time,
// FIFO retransmissions — which re-traverse the transport — are re-
// sealed under the key current at retransmission, keeping repair
// traffic inside the receiver's acceptance window.
type authTransport struct {
	s    *Switch
	down proto.Down
}

func (t authTransport) Cast(payload []byte) error {
	bp := wire.GetBuf()
	pkt := t.s.sealCurrentTo(*bp, payload)
	err := t.down.Cast(pkt)
	*bp = pkt[:0]
	wire.PutBuf(bp)
	return err
}

func (t authTransport) Send(dst ids.ProcID, payload []byte) error {
	bp := wire.GetBuf()
	pkt := t.s.sealCurrentTo(*bp, payload)
	err := t.down.Send(dst, pkt)
	*bp = pkt[:0]
	wire.PutBuf(bp)
	return err
}

// sealCurrentTo appends payload sealed under the current send epoch's
// key — or the newest authenticated epoch this member has witnessed,
// when that is ahead (a lagging member sealing under its retired epoch
// would be rejected by everyone who completed the switch, wedging it
// out of the group; see maxAuthEpoch).
func (s *Switch) sealCurrentTo(dst, payload []byte) []byte {
	epoch := s.sendEpoch
	if s.maxAuthEpoch > epoch {
		epoch = s.maxAuthEpoch
	}
	return s.epochSealer(epoch).SealTo(dst, payload)
}

// epochSealer returns the cached sealer (derived key + keyed HMAC +
// precomputed header) for an epoch, memoized. The schedule is pruned as
// epochs retire (see rollEpochKey); verification of a from-ahead frame
// may derive and cache a future epoch's sealer early, which is
// harmless — derivation is deterministic.
func (s *Switch) epochSealer(epoch uint64) *wire.AuthSealer {
	if a, ok := s.epochSealers[epoch]; ok {
		return a
	}
	if s.epochSealers == nil {
		s.epochSealers = make(map[uint64]*wire.AuthSealer)
	}
	a := wire.NewAuthSealer(wire.DeriveEpochKey(s.cfg.Defense.Auth.SessionKey, epoch), epoch)
	s.epochSealers[epoch] = a
	return a
}

// rollEpochKey records the moment the send epoch advanced — opening the
// grace window for the previous epoch — and prunes retired sealers from
// the schedule. Called from every site that advances sendEpoch, so the
// key schedule rolls atomically with the switch round.
func (s *Switch) rollEpochKey() {
	if s.cfg.Defense == nil || s.cfg.Defense.Auth == nil {
		return
	}
	s.keyRolledAt = s.env.Now()
	for e := range s.epochSealers {
		if e+1 < s.sendEpoch {
			delete(s.epochSealers, e)
		}
	}
}

// epochAcceptable implements the receive-side acceptance window for
// authenticated frames. Frames at or ahead of the local send epoch are
// always acceptable (an attacker without the session key cannot forge
// any epoch, and from-ahead frames are how lagging members catch up);
// the previous epoch is acceptable only while the grace window that
// opened at the local key roll is still running. Everything older is a
// cross-epoch replay.
func (s *Switch) epochAcceptable(epoch uint64) bool {
	if epoch >= s.sendEpoch {
		return true
	}
	if epoch+1 == s.sendEpoch {
		return s.env.Now()-s.keyRolledAt <= s.authGrace
	}
	return false
}

// recvAuth verifies and strips the authenticated envelope, or counts
// and drops. Returns the inner payload and true on acceptance.
func (s *Switch) recvAuth(src ids.ProcID, pkt []byte) ([]byte, bool) {
	epoch, err := wire.AuthEpoch(pkt)
	if err != nil {
		s.countAuthFailed(src, 0, obs.AuthBadFrame)
		return nil, false
	}
	// Reject retired epochs before verifying: the stale check needs no
	// crypto, and skipping verification means a replayed frame's key is
	// never even derived.
	if !s.epochAcceptable(epoch) {
		s.countAuthFailed(src, epoch, obs.AuthStaleEpoch)
		return nil, false
	}
	payload, err := s.epochSealer(epoch).Open(pkt)
	if err != nil {
		s.countAuthFailed(src, epoch, obs.AuthBadMAC)
		return nil, false
	}
	if epoch > s.maxAuthEpoch {
		// The group provably rolled past this member's send epoch: flush
		// any batch accumulated under the old sealing epoch before egress
		// starts sealing under the new one.
		if s.batch != nil {
			s.batch.flush()
		}
		s.maxAuthEpoch = epoch
	}
	return payload, true
}
