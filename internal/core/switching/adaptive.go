package switching

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/protocols/fd"
)

// AdaptiveConfig tunes the gray-failure detector extensions enabled by
// RecoveryConfig.Adaptive. Two mechanisms layer over the fixed
// heartbeat detector:
//
//   - *Graded suspicion* (phi-accrual style, deterministic): each
//     member tracks per-peer heartbeat inter-arrival statistics and
//     raises a suspicion when the current silence, scaled against the
//     peer's observed mean inter-arrival, crosses RaiseLevel. The
//     level is integer-scaled (obs.SuspicionScale) so sweeps stay
//     byte-identical on any worker count.
//
//   - *Flap damping* (BGP style): a peer whose suspicion clears and
//     re-fires repeatedly accrues FlapPenalty per flap. At SuppressAt
//     the peer enters degraded mode — skipped in ring rotation without
//     a token regeneration, and its further suspicion transitions no
//     longer abort switch rounds. The penalty halves every HalfLife;
//     at or below ReuseAt the peer is cleanly re-included.
//
// All fields default sensibly from the detector's heartbeat interval;
// the zero value is a working configuration.
type AdaptiveConfig struct {
	// WindowSize is how many recent inter-arrival samples feed each
	// peer's mean. Defaults to 8.
	WindowSize int
	// MinSamples is how many samples a peer must have before graded
	// suspicion can fire (cold peers fall back to the fixed detector).
	// Defaults to 3.
	MinSamples int
	// RaiseLevel is the integer-scaled suspicion threshold: suspicion
	// fires when elapsed×obs.SuspicionScale/mean ≥ RaiseLevel.
	// Defaults to 5×obs.SuspicionScale — for a steady heartbeat stream
	// this matches the fixed detector's 5×Interval timeout, so true
	// crashes are detected at equal latency.
	RaiseLevel int64
	// FlapPenalty is charged each time a suspicion of the peer clears
	// (one completed flap). Defaults to 1000.
	FlapPenalty int64
	// SuppressAt is the accumulated penalty at which the peer enters
	// degraded mode. Defaults to 2500 (the third flap within a few
	// half-lives).
	SuppressAt int64
	// ReuseAt is the decayed penalty at or below which a degraded peer
	// is re-included (it must be below SuppressAt). Defaults to 1000.
	ReuseAt int64
	// HalfLife is the penalty decay half-life. Defaults to 10× the
	// detector's heartbeat interval.
	HalfLife time.Duration
}

// Validate checks the adaptive configuration.
func (c AdaptiveConfig) Validate() error {
	if c.WindowSize < 0 || c.MinSamples < 0 {
		return fmt.Errorf("switching: negative adaptive sample bound")
	}
	if c.RaiseLevel < 0 || c.FlapPenalty < 0 || c.SuppressAt < 0 || c.ReuseAt < 0 {
		return fmt.Errorf("switching: negative adaptive threshold")
	}
	if c.HalfLife < 0 {
		return fmt.Errorf("switching: negative adaptive half-life")
	}
	if c.SuppressAt > 0 && c.ReuseAt >= c.SuppressAt {
		return fmt.Errorf("switching: adaptive reuse threshold %d must be below suppress threshold %d",
			c.ReuseAt, c.SuppressAt)
	}
	return nil
}

// withDefaults resolves zero fields against the detector's heartbeat
// interval.
func (c AdaptiveConfig) withDefaults(interval time.Duration) AdaptiveConfig {
	if c.WindowSize == 0 {
		c.WindowSize = 8
	}
	if c.MinSamples == 0 {
		c.MinSamples = 3
	}
	if c.RaiseLevel == 0 {
		c.RaiseLevel = 5 * obs.SuspicionScale
	}
	if c.FlapPenalty == 0 {
		c.FlapPenalty = 1000
	}
	if c.SuppressAt == 0 {
		c.SuppressAt = 2500
	}
	if c.ReuseAt == 0 {
		c.ReuseAt = 1000
	}
	if c.HalfLife == 0 {
		c.HalfLife = 10 * interval
	}
	return c
}

// peerStat is one peer's adaptive-detector state at one member.
type peerStat struct {
	// samples is a ring buffer of inter-arrival durations (ns).
	samples []int64
	idx     int
	count   int
	sum     int64
	// lastSeen/seen track the most recent heartbeat.
	lastSeen time.Duration
	seen     bool
	// suspicious is the graded-suspicion edge (1:1 with
	// EvSuspicionRaise / EvSuspicionClear).
	suspicious bool
	// flaps counts completed suspect→restore cycles.
	flaps int
	// penalty is the flap-damping accumulator as of penaltyAt; the
	// current value decays by one half per HalfLife since then.
	penalty   int64
	penaltyAt time.Duration
	// damped marks degraded mode: skipped in ring rotation, suspicion
	// transitions ignored, until the penalty decays to ReuseAt.
	damped bool
}

// adaptive is one member's gray-failure layer: graded suspicion plus
// flap damping, feeding the recovery ring arithmetic.
type adaptive struct {
	r        *recovery
	s        *Switch
	cfg      AdaptiveConfig
	interval time.Duration
	peers    map[ids.ProcID]*peerStat
}

// newAdaptive builds the layer and starts its periodic suspicion check
// (one check per heartbeat interval, like the fixed detector's).
func newAdaptive(r *recovery, cfg AdaptiveConfig, dcfg fd.Config) *adaptive {
	interval := dcfg.Interval
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	a := &adaptive{
		r:        r,
		s:        r.s,
		cfg:      cfg.withDefaults(interval),
		interval: interval,
		peers:    make(map[ids.ProcID]*peerStat),
	}
	a.tick()
	return a
}

func (a *adaptive) stat(p ids.ProcID) *peerStat {
	ps := a.peers[p]
	if ps == nil {
		ps = &peerStat{samples: make([]int64, a.cfg.WindowSize)}
		a.peers[p] = ps
	}
	return ps
}

// onHeartbeat feeds one liveness observation into p's inter-arrival
// window (wired to the detector's OnHeartbeat hook).
func (a *adaptive) onHeartbeat(p ids.ProcID) {
	now := a.s.env.Now()
	ps := a.stat(p)
	if ps.seen {
		d := int64(now - ps.lastSeen)
		if d > 0 {
			a.push(ps, d)
		}
	}
	ps.lastSeen, ps.seen = now, true
}

func (a *adaptive) push(ps *peerStat, d int64) {
	if ps.count == len(ps.samples) {
		ps.sum -= ps.samples[ps.idx]
	} else {
		ps.count++
	}
	ps.samples[ps.idx] = d
	ps.sum += d
	ps.idx = (ps.idx + 1) % len(ps.samples)
}

// mean returns p's mean inter-arrival in ns (0 with no samples).
func (ps *peerStat) mean() int64 {
	if ps.count == 0 {
		return 0
	}
	return ps.sum / int64(ps.count)
}

// tick arms the periodic suspicion check.
func (a *adaptive) tick() {
	a.s.env.After(a.interval, func() {
		if a.s.stopped {
			return
		}
		a.check()
		a.tick()
	})
}

// check raises graded suspicion on peers whose silence has grown
// beyond RaiseLevel× their observed mean inter-arrival. Members are
// visited in ring order, so the check is deterministic.
func (a *adaptive) check() {
	now := a.s.env.Now()
	self := a.s.env.Self()
	for _, p := range a.s.env.Ring().Members() {
		if p == self {
			continue
		}
		ps := a.peers[p]
		if ps == nil || !ps.seen || ps.count < a.cfg.MinSamples || ps.suspicious {
			continue
		}
		if a.r.det.Suspected(p) {
			// The fixed detector got there first (or a quarantine did);
			// nothing graded to add.
			continue
		}
		mean := ps.mean()
		if mean <= 0 {
			continue
		}
		level := int64(now-ps.lastSeen) * obs.SuspicionScale / mean
		if level < a.cfg.RaiseLevel {
			continue
		}
		ps.suspicious = true
		a.s.stats.SuspicionsRaised++
		a.s.obs.Record(obs.SuspicionRaise(now, self, p, level))
		// Escalate into the fixed detector so ring arithmetic, round
		// aborts, and the suspect gauge all see one suspicion state.
		a.r.det.ForceSuspect(p)
	}
}

// onRestore handles a suspicion clearing (wired to the detector's
// OnRestore hook): it closes any graded-suspicion edge and charges the
// flap-damping penalty for the completed flap.
func (a *adaptive) onRestore(p ids.ProcID) {
	now := a.s.env.Now()
	self := a.s.env.Self()
	ps := a.stat(p)
	if ps.suspicious {
		ps.suspicious = false
		a.s.stats.SuspicionsCleared++
		a.s.obs.Record(obs.SuspicionClear(now, self, p))
	}
	ps.flaps++
	ps.penalty = a.decayed(ps, now) + a.cfg.FlapPenalty
	ps.penaltyAt = now
	a.s.stats.FlapPenalties++
	a.s.obs.Record(obs.FlapPenalty(now, self, p, ps.penalty, ps.flaps))
	if !ps.damped && ps.penalty >= a.cfg.SuppressAt {
		ps.damped = true
		a.armReinclude(p)
	}
}

// decayed returns p's penalty at the given time: one halving per
// HalfLife elapsed since the last charge.
func (a *adaptive) decayed(ps *peerStat, now time.Duration) int64 {
	if ps.penalty == 0 {
		return 0
	}
	k := (now - ps.penaltyAt) / a.cfg.HalfLife
	if k >= 63 {
		return 0
	}
	return ps.penalty >> uint(k)
}

// armReinclude polls the penalty decay once per half-life while p is
// damped, re-including p as soon as the penalty reaches ReuseAt and p
// is no longer suspected.
func (a *adaptive) armReinclude(p ids.ProcID) {
	a.s.env.After(a.cfg.HalfLife, func() {
		if a.s.stopped {
			return
		}
		ps := a.peers[p]
		if ps == nil || !ps.damped {
			return
		}
		now := a.s.env.Now()
		if pen := a.decayed(ps, now); pen <= a.cfg.ReuseAt && !a.r.det.Suspected(p) {
			ps.damped = false
			ps.penalty, ps.penaltyAt = pen, now
			a.s.stats.Reincludes++
			a.s.obs.Record(obs.Reinclude(now, a.s.env.Self(), p, pen))
			return
		}
		a.armReinclude(p)
	})
}

// isDamped reports whether p is in degraded mode at this member.
func (a *adaptive) isDamped(p ids.ProcID) bool {
	ps := a.peers[p]
	return ps != nil && ps.damped
}

// noteSkip records one degraded-mode bypass of p in ring rotation.
func (a *adaptive) noteSkip(p ids.ProcID) {
	a.s.stats.DegradedSkips++
	a.s.obs.Record(obs.DegradedSkip(a.s.env.Now(), a.s.env.Self(), p))
}
