package switching_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/simnet"
)

// Integration tests for egress batching (OverloadConfig.BatchMax > 1):
// configuration validation, conservation under a shedding flood,
// run-to-run determinism, and batching composed with the authenticated
// session across a switch round.

// batchedFloodConfig is the TestOverloadFlood configuration with
// batching enabled: up to 4 mux frames per sealed wire write.
func batchedFloodConfig() switching.Config {
	return switching.Config{
		TokenInterval: 2 * time.Millisecond,
		Overload: &switching.OverloadConfig{
			IngressQueueCap: 4,
			EgressQueueCap:  4,
			LowWatermark:    1,
			HighWatermark:   3,
			ServiceInterval: 300 * time.Microsecond,
			RetryBackoff:    600 * time.Microsecond,
			MaxRetryShift:   2,
			BatchMax:        4,
		},
	}
}

func TestBatchMaxValidate(t *testing.T) {
	cases := []struct {
		batchMax int
		wantErr  string
	}{
		{0, ""},   // legacy: batching off
		{1, ""},   // explicit one-per-write: batching off
		{4, ""},
		{256, ""}, // ceiling
		{-1, "batch max"},
		{257, "batch max"},
	}
	for _, tc := range cases {
		cfg := switching.OverloadConfig{IngressQueueCap: 4, EgressQueueCap: 4, BatchMax: tc.batchMax}
		err := cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("BatchMax %d: unexpected error: %v", tc.batchMax, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("BatchMax %d: got %v, want error containing %q", tc.batchMax, err, tc.wantErr)
		}
	}
}

// floodCluster drives the TestOverloadFlood traffic shape (every member
// casting far faster than the service capacity) against the given
// configuration and returns the stopped cluster.
func floodCluster(t *testing.T, seed int64, cfg switching.Config) *clusterResult {
	t.Helper()
	const n = 4
	c := newCluster(t, seed, simnet.Config{Nodes: n, PropDelay: 100 * time.Microsecond}, n, cfg)
	for p := 0; p < n; p++ {
		for i := 0; i < 30; i++ {
			p, i := p, i
			c.Sim.At(time.Duration(i)*40*time.Microsecond, func() {
				m := proto.AppMsg{
					ID:     proto.MakeMsgID(ids.ProcID(p), uint32(i)),
					Sender: ids.ProcID(p),
					Body:   []byte(fmt.Sprintf("e0-f%d.%02d", p, i)),
				}
				_ = c.Members[p].Switch.Cast(m.Encode())
			})
		}
	}
	c.Run(500 * time.Millisecond)
	c.Stop()

	res := &clusterResult{}
	for p := 0; p < n; p++ {
		sw := c.Members[p].Switch
		res.stats = append(res.stats, sw.Stats())
		res.accounting = append(res.accounting, sw.OverloadAccounting())
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		res.bodies = append(res.bodies, bodies)
	}
	return res
}

// clusterResult captures everything observable about one flood run —
// the material both the conservation and the determinism tests check.
type clusterResult struct {
	stats      []switching.Stats
	accounting []switching.OverloadAccounting
	bodies     [][]string
}

// TestBatchedFloodConservation reruns the overload-flood contract with
// batching enabled: queue caps hold, the conservation ledger balances on
// every member (shed-at-source counts every frame of an abandoned cast,
// never silently losing part of a batch), and whatever was sent is
// delivered everywhere in one order.
func TestBatchedFloodConservation(t *testing.T) {
	res := floodCluster(t, 7, batchedFloodConfig())

	var totalShed, totalSent uint64
	for p := range res.stats {
		st, a := res.stats[p], res.accounting[p]
		if a.IngressMaxDepth > a.IngressCap || a.EgressMaxDepth > a.EgressCap {
			t.Errorf("member %d: queue depth exceeded cap: ingress %d/%d egress %d/%d",
				p, a.IngressMaxDepth, a.IngressCap, a.EgressMaxDepth, a.EgressCap)
		}
		if a.Casts != a.EgressAdmitted+a.EgressRetrying+a.EgressShed {
			t.Errorf("member %d: egress ledger unbalanced: %+v", p, a)
		}
		if a.EgressAdmitted != a.EgressSent+a.EgressQueued {
			t.Errorf("member %d: egress admitted ledger unbalanced: %+v", p, a)
		}
		if a.IngressAdmitted != a.IngressServed+a.IngressQueued {
			t.Errorf("member %d: ingress ledger unbalanced: %+v", p, a)
		}
		if a.Casts != 30 {
			t.Errorf("member %d: layer saw %d casts, want 30", p, a.Casts)
		}
		if a.EgressQueued != 0 || a.EgressRetrying != 0 {
			t.Errorf("member %d: egress not drained after the flood: %+v", p, a)
		}
		if st.MalformedDropped != 0 {
			t.Errorf("member %d: %d malformed drops — batch frames misparsed", p, st.MalformedDropped)
		}
		totalShed += st.Shed
		totalSent += a.EgressSent
	}
	if totalShed == 0 {
		t.Error("flood never shed a frame — the caps were not exercised")
	}

	// Everything actually sent is delivered everywhere, in one order.
	ref := res.bodies[0]
	if uint64(len(ref)) != totalSent {
		t.Errorf("member 0 delivered %d messages, want the %d egress-sent casts", len(ref), totalSent)
	}
	for p := 1; p < len(res.bodies); p++ {
		got := res.bodies[p]
		if len(got) != len(ref) {
			t.Fatalf("member %d delivered %d, member 0 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %d disagrees with member 0 at %d: %q vs %q", p, i, got[i], ref[i])
			}
		}
	}
}

// TestBatchedDeterminism runs the identical batched flood twice from the
// same seed and requires bit-identical outcomes: same deliveries on
// every member, same counters, same conservation ledger. Batching
// accumulates per-destination groups in slices flushed in first-use
// order — this test is the regression net for any future map-iteration
// (or other nondeterminism) sneaking into the flush path.
func TestBatchedDeterminism(t *testing.T) {
	a := floodCluster(t, 11, batchedFloodConfig())
	b := floodCluster(t, 11, batchedFloodConfig())
	for p := range a.stats {
		if a.stats[p] != b.stats[p] {
			t.Errorf("member %d: stats diverged across identical runs:\n  %+v\n  %+v", p, a.stats[p], b.stats[p])
		}
		if a.accounting[p] != b.accounting[p] {
			t.Errorf("member %d: accounting diverged across identical runs:\n  %+v\n  %+v", p, a.accounting[p], b.accounting[p])
		}
		if len(a.bodies[p]) != len(b.bodies[p]) {
			t.Fatalf("member %d: delivered %d vs %d across identical runs", p, len(a.bodies[p]), len(b.bodies[p]))
		}
		for i := range a.bodies[p] {
			if a.bodies[p][i] != b.bodies[p][i] {
				t.Fatalf("member %d: delivery %d diverged: %q vs %q", p, i, a.bodies[p][i], b.bodies[p][i])
			}
		}
	}
}

// TestBatchedAcrossSwitch composes batching with the authenticated
// session and a protocol switch under steady traffic. The epoch-flush
// rule is what this exercises end to end: if a batch straddled the key
// roll, frames sealed under the retired epoch would coalesce with
// new-epoch frames and the whole batch would fail its MAC — visible as
// AuthFailed drops and broken agreement. Traffic stays below the service
// capacity so nothing is shed and the delivery count is exact.
func TestBatchedAcrossSwitch(t *testing.T) {
	const n, per = 4, 10
	cfg := switching.Config{
		TokenInterval: 2 * time.Millisecond,
		Defense: &switching.DefenseConfig{
			QuarantineThreshold: 1000,
			Auth:                &switching.AuthConfig{SessionKey: []byte("batched session key")},
		},
		Overload: &switching.OverloadConfig{
			IngressQueueCap: 16,
			EgressQueueCap:  16,
			LowWatermark:    2,
			HighWatermark:   12,
			ServiceInterval: 200 * time.Microsecond,
			RetryBackoff:    600 * time.Microsecond,
			MaxRetryShift:   2,
			BatchMax:        4,
		},
	}
	c := newCluster(t, 13, simnet.Config{Nodes: n, PropDelay: 100 * time.Microsecond}, n, cfg)
	for p := 0; p < n; p++ {
		for i := 0; i < per; i++ {
			p, i := p, i
			c.Sim.At(time.Duration(i)*2*time.Millisecond, func() {
				m := proto.AppMsg{
					ID:     proto.MakeMsgID(ids.ProcID(p), uint32(i)),
					Sender: ids.ProcID(p),
					Body:   []byte(fmt.Sprintf("f%d.%02d", p, i)),
				}
				_ = c.Members[p].Switch.Cast(m.Encode())
			})
		}
	}
	// Switch mid-flood: the key roll lands while batches are in flight
	// and accumulating.
	c.Sim.At(8*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Run(500 * time.Millisecond)
	c.Stop()

	for p := 0; p < n; p++ {
		st := c.Members[p].Switch.Stats()
		if st.AuthFailed != 0 {
			t.Errorf("member %d: %d auth failures — a batch straddled the key roll", p, st.AuthFailed)
		}
		if st.MalformedDropped != 0 {
			t.Errorf("member %d: %d malformed drops", p, st.MalformedDropped)
		}
		if st.Shed != 0 {
			t.Errorf("member %d: %d shed under sub-capacity traffic", p, st.Shed)
		}
		if st.SwitchesCompleted != 1 {
			t.Errorf("member %d: completed %d switches, want 1", p, st.SwitchesCompleted)
		}
	}
	assertAgreement(t, c, n*per)
}
