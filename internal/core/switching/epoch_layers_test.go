package switching_test

import (
	"crypto/hmac"
	"crypto/sha256"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/integrity"
	"repro/internal/protocols/noreplay"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// TestNoReplaySurvivesSwitchWithSharedHistory is the composability fix
// for TestNoReplayViolatedAcrossSwitch: the same scenario, but each
// member's two protocol instances record into one shared History, so
// the replay window persists across the protocol switch and the §6.2
// double delivery disappears.
func TestNoReplaySurvivesSwitchWithSharedHistory(t *testing.T) {
	hists := make(map[ids.ProcID]*noreplay.History)
	histFor := func(env proto.Env) *noreplay.History {
		if hists[env.Self()] == nil {
			hists[env.Self()] = noreplay.NewHistory()
		}
		return hists[env.Self()]
	}
	mk := func(env proto.Env) []proto.Layer {
		return []proto.Layer{noreplay.NewSharedKeyed(histFor(env), appBodyKey),
			seqorder.New(0), fifo.New(fifo.Config{})}
	}
	c := newCluster(t, 34, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3,
		switching.Config{Protocols: []switching.ProtocolFactory{mk, mk}})
	var sent []ptest.SentMsg
	cast := func(seq uint32, body string) {
		s, err := c.CastApp(appMsg(0, seq, body))
		if err != nil {
			t.Error(err)
		}
		sent = append(sent, s)
	}
	// Same schedule (and seed) as the violation demo: once before the
	// switch, once after on the new protocol, once more as a control.
	c.Sim.At(time.Millisecond, func() { cast(1, "pay $100") })
	c.Sim.At(20*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Sim.At(200*time.Millisecond, func() { cast(2, "pay $100") })
	c.Sim.At(300*time.Millisecond, func() { cast(3, "pay $100") })
	c.Run(10 * time.Second)
	c.Stop()
	for p := 0; p < 3; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != 1 {
			t.Fatalf("member %d delivered %v — shared history should deliver exactly 1 copy", p, bodies)
		}
	}
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	if !(property.NoReplay{}).Holds(tr) {
		t.Error("No Replay violated despite the shared history")
	}
}

var epochIntegrityKey = []byte("epoch-integrity session key")

// sealEpochIntegrity reproduces integrity.NewEpoch's wire format from
// outside the package: a frame the attacker recorded at the given
// epoch. (Truncated HMAC-SHA256 over the payload, length-prefixed,
// prepended — see integrity.seal.)
func sealEpochIntegrity(epoch uint64, payload []byte) []byte {
	mac := hmac.New(sha256.New, wire.DeriveEpochKey(epochIntegrityKey, epoch))
	mac.Write(payload)
	e := wire.NewEncoder(18)
	e.BytesField(mac.Sum(nil)[:16])
	return e.Prepend(payload)
}

// TestCrossSwitchReplayRejectedByEpochIntegrity drives the epoch-keyed
// integrity layer through the real switching stack: after the group
// switches away from and back to the same protocol (epoch 0 → 1 → 2,
// stacks are persistent so protocol 0's instance is reused), a frame
// recorded under epoch 0's MAC key is replayed with fresh transport
// framing — past FIFO's duplicate suppression — and is rejected by the
// integrity layer because epoch 0's key left the acceptance window. A
// control frame sealed under the current epoch's key travels the same
// injected path and is delivered, isolating the rejection to the key
// schedule.
func TestCrossSwitchReplayRejectedByEpochIntegrity(t *testing.T) {
	layersByMember := make(map[ids.ProcID][]*integrity.Layer)
	mk := func(env proto.Env) []proto.Layer {
		l := integrity.NewEpoch(epochIntegrityKey)
		layersByMember[env.Self()] = append(layersByMember[env.Self()], l)
		return []proto.Layer{l, fifo.New(fifo.Config{})}
	}
	c := newCluster(t, 36, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3,
		switching.Config{Protocols: []switching.ProtocolFactory{mk, mk}})
	victim := c.Members[1]

	// inject hand-delivers a crafted protocol-0 frame from member 2:
	// [mux channel 0][fifo cast seq][integrity MAC][switch epoch hdr][app].
	inject := func(sealEpoch, hdrEpoch uint64, fifoSeq uint64, seq uint32, body string) {
		inner := wire.NewEncoder(8).Uvarint(hdrEpoch).Prepend(appMsg(2, seq, body).Encode())
		sealed := sealEpochIntegrity(sealEpoch, inner)
		e := wire.NewEncoder(8)
		e.Channel(ids.ProtocolChannel(0))
		e.U8(1) // fifo kindCast
		e.Uvarint(fifoSeq)
		victim.Switch.Recv(2, e.Prepend(sealed))
	}

	c.Sim.At(10*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Sim.At(150*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Sim.At(400*time.Millisecond, func() {
		if e := victim.Switch.Epoch(); e != 2 {
			t.Errorf("victim at epoch %d before injection, want 2", e)
		}
		// The replay: recorded under epoch 0's key, replayed with a
		// fresh FIFO sequence number so transport dedup cannot save us.
		inject(0, 0, 0, 1, "REPLAYED withdraw $500")
		// The control: same path, current key, current epoch header.
		inject(2, 2, 1, 2, "current-epoch control")
	})
	c.Run(2 * time.Second)
	c.Stop()

	bodies, err := c.AppBodies(1)
	if err != nil {
		t.Fatal(err)
	}
	var sawControl bool
	for _, b := range bodies {
		if b == "REPLAYED withdraw $500" {
			t.Errorf("cross-switch replay delivered: %q", bodies)
		}
		if b == "current-epoch control" {
			sawControl = true
		}
	}
	if !sawControl {
		t.Fatalf("control frame not delivered — injection path broken; bodies = %q", bodies)
	}
	var stale uint64
	for _, l := range layersByMember[1] {
		stale += l.StaleRejected()
	}
	if stale != 1 {
		t.Errorf("victim integrity StaleRejected = %d, want 1 (the replay)", stale)
	}
}
