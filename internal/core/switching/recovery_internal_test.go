package switching

import (
	"testing"
	"time"
)

// TestBackoffTimeoutClamp pins the wedge-timeout escalation clamp: the
// doubling backoff saturates at maxRecoveryBackoff instead of
// overflowing time.Duration at large strike counts. (The regression:
// a member wedged behind an unreachable ring doubles its timeout on
// every strike; base<<shift wraps negative past shift ~33 at
// millisecond bases, and a negative timeout re-arms the wedge timer in
// the past — a hot loop of regenerations.)
func TestBackoffTimeoutClamp(t *testing.T) {
	cases := []struct {
		base  time.Duration
		shift int
		want  time.Duration
	}{
		{15 * time.Millisecond, 0, 15 * time.Millisecond},
		{15 * time.Millisecond, 2, 60 * time.Millisecond},
		{15 * time.Millisecond, 11, 30720 * time.Millisecond},
		{15 * time.Millisecond, 12, maxRecoveryBackoff},
		{15 * time.Millisecond, 40, maxRecoveryBackoff},
		{15 * time.Millisecond, 63, maxRecoveryBackoff},
		{15 * time.Millisecond, 1 << 20, maxRecoveryBackoff},
		{time.Minute, 1, maxRecoveryBackoff},
		{2 * time.Minute, 0, maxRecoveryBackoff},
	}
	for _, c := range cases {
		got := backoffTimeout(c.base, c.shift)
		if got != c.want {
			t.Errorf("backoffTimeout(%v, %d) = %v, want %v", c.base, c.shift, got, c.want)
		}
		if got <= 0 {
			t.Errorf("backoffTimeout(%v, %d) = %v — overflowed", c.base, c.shift, got)
		}
	}
}
