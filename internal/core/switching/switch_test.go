package switching_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
	"repro/internal/simnet"
)

// orderedPair returns the canonical two-protocol configuration used by
// the paper's experiment: sequencer-based vs token-based total order,
// each over its own reliable FIFO channel.
func orderedPair() []switching.ProtocolFactory {
	return []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{tokenorder.New(tokenorder.Config{HoldDelay: time.Millisecond}), fifo.New(fifo.Config{})}
		},
	}
}

func newCluster(t *testing.T, seed int64, netCfg simnet.Config, n int, cfg switching.Config) *swtest.SwitchedCluster {
	t.Helper()
	if cfg.Protocols == nil {
		cfg.Protocols = orderedPair()
	}
	if cfg.TokenInterval == 0 {
		cfg.TokenInterval = 2 * time.Millisecond
	}
	c, err := swtest.NewSwitched(seed, netCfg, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// assertAgreement checks that all members delivered identical sequences.
func assertAgreement(t *testing.T, c *swtest.SwitchedCluster, wantCount int) {
	t.Helper()
	ref, err := c.AppBodies(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != wantCount {
		t.Fatalf("member 0 delivered %d, want %d: %v", len(ref), wantCount, ref)
	}
	for p := 1; p < len(c.Members); p++ {
		got, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("member %d delivered %d, member 0 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %d disagrees at %d: %q vs %q", p, i, got[i], ref[i])
			}
		}
	}
}

// assertEpochBoundary checks the SP guarantee of §2: every member
// delivers all old-protocol (epoch-tagged "e0") messages before any new
// ones ("e1", "e2", ...). Bodies must be tagged "e<epoch>-...".
func assertEpochBoundary(t *testing.T, c *swtest.SwitchedCluster) {
	t.Helper()
	for p := range c.Members {
		got, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		maxEpoch := -1
		for i, b := range got {
			var e int
			if _, err := fmt.Sscanf(b, "e%d-", &e); err != nil {
				t.Fatalf("member %d: untagged body %q", p, b)
			}
			if e < maxEpoch {
				t.Fatalf("member %d delivered old-epoch %q at %d after epoch %d traffic: %v",
					p, b, i, maxEpoch, got)
			}
			if e > maxEpoch {
				maxEpoch = e
			}
		}
	}
}

// castTagged sends a body tagged with the sender's current send epoch.
func castTagged(t *testing.T, c *swtest.SwitchedCluster, p ids.ProcID, body string) {
	t.Helper()
	sw := c.Members[p].Switch
	m := proto.AppMsg{
		ID:     proto.MakeMsgID(p, uint32(c.Sim.Executed())),
		Sender: p,
		Body:   []byte(fmt.Sprintf("e%d-%s", sw.SendEpoch(), body)),
	}
	if err := sw.Cast(m.Encode()); err != nil {
		t.Fatal(err)
	}
}

func TestTokenRotatesWhenIdle(t *testing.T) {
	c := newCluster(t, 1, simnet.Config{Nodes: 4, PropDelay: 100 * time.Microsecond}, 4, switching.Config{})
	c.Run(500 * time.Millisecond)
	c.Stop()
	for p, m := range c.Members {
		st := m.Switch.Stats()
		if st.TokenPasses < 10 {
			t.Errorf("member %d passed the token only %d times in 500ms", p, st.TokenPasses)
		}
		if m.Switch.Epoch() != 0 {
			t.Errorf("member %d advanced epoch without a request", p)
		}
	}
}

func TestBasicSwitch(t *testing.T) {
	var rec *switching.Record
	cfg := switching.Config{
		OnSwitchComplete: func(r switching.Record) { rec = &r },
	}
	c := newCluster(t, 2, simnet.Config{Nodes: 5, PropDelay: 200 * time.Microsecond}, 5, cfg)
	// Phase 1: traffic on the initial protocol.
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * 3 * time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%5), fmt.Sprintf("pre%d", i)) })
	}
	// Phase 2: request the switch at member 2 (the "manager").
	c.Sim.At(30*time.Millisecond, func() { c.Members[2].Switch.RequestSwitch() })
	// Phase 3: traffic while and after switching.
	for i := 0; i < 5; i++ {
		at := 35*time.Millisecond + time.Duration(i)*3*time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%5), fmt.Sprintf("post%d", i)) })
	}
	c.Run(2 * time.Second)
	c.Stop()

	for p, m := range c.Members {
		if m.Switch.Epoch() != 1 {
			t.Fatalf("member %d epoch = %d, want 1", p, m.Switch.Epoch())
		}
		if m.Switch.ActiveProtocol() != 1 {
			t.Fatalf("member %d active protocol = %d, want 1 (token order)", p, m.Switch.ActiveProtocol())
		}
	}
	assertAgreement(t, c, 10)
	assertEpochBoundary(t, c)
	if rec == nil {
		t.Fatal("OnSwitchComplete never fired")
	}
	if rec.Initiator != 2 || rec.Epoch != 0 {
		t.Errorf("record = %+v", *rec)
	}
	if rec.Duration() <= 0 || rec.Duration() > time.Second {
		t.Errorf("switch duration = %v", rec.Duration())
	}
}

func TestSendsNeverBlockedDuringSwitch(t *testing.T) {
	c := newCluster(t, 3, simnet.Config{Nodes: 4, PropDelay: 500 * time.Microsecond}, 4, switching.Config{})
	c.Sim.At(10*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// Flood during the switch window; every Cast must succeed.
	for i := 0; i < 30; i++ {
		at := 10*time.Millisecond + time.Duration(i)*time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%4), fmt.Sprintf("m%02d", i)) })
	}
	c.Run(3 * time.Second)
	c.Stop()
	assertAgreement(t, c, 30)
	assertEpochBoundary(t, c)
}

func TestBackToBackSwitches(t *testing.T) {
	c := newCluster(t, 4, simnet.Config{Nodes: 3, PropDelay: 200 * time.Microsecond}, 3, switching.Config{})
	msg := 0
	for round := 0; round < 3; round++ {
		base := time.Duration(round) * 300 * time.Millisecond
		for i := 0; i < 4; i++ {
			at := base + time.Duration(i)*5*time.Millisecond
			m := msg
			c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(m%3), fmt.Sprintf("r%dm%d", m/4, m%4)) })
			msg++
		}
		r := round
		c.Sim.At(base+100*time.Millisecond, func() { c.Members[r].Switch.RequestSwitch() })
	}
	c.Run(3 * time.Second)
	c.Stop()
	for p, m := range c.Members {
		if m.Switch.Epoch() != 3 {
			t.Fatalf("member %d epoch = %d, want 3", p, m.Switch.Epoch())
		}
	}
	assertAgreement(t, c, 12)
	assertEpochBoundary(t, c)
}

func TestSwitchUnderLossAndJitter(t *testing.T) {
	netCfg := simnet.Config{
		Nodes:     4,
		PropDelay: 300 * time.Microsecond,
		DropProb:  0.1,
		Jitter:    time.Millisecond,
	}
	c := newCluster(t, 5, netCfg, 4, switching.Config{})
	for i := 0; i < 20; i++ {
		at := time.Duration(i) * 4 * time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%4), fmt.Sprintf("m%02d", i)) })
	}
	c.Sim.At(40*time.Millisecond, func() { c.Members[1].Switch.RequestSwitch() })
	c.Run(30 * time.Second)
	c.Stop()
	assertAgreement(t, c, 20)
	assertEpochBoundary(t, c)
	for p, m := range c.Members {
		if m.Switch.Epoch() != 1 {
			t.Fatalf("member %d epoch = %d, want 1 (switch must complete under loss)", p, m.Switch.Epoch())
		}
	}
}

func TestConcurrentSwitchRequestsSerialize(t *testing.T) {
	c := newCluster(t, 6, simnet.Config{Nodes: 5, PropDelay: 200 * time.Microsecond}, 5, switching.Config{})
	// Two members request "simultaneously"; the token serializes them.
	c.Sim.At(10*time.Millisecond, func() {
		c.Members[1].Switch.RequestSwitch()
		c.Members[3].Switch.RequestSwitch()
	})
	c.Run(3 * time.Second)
	c.Stop()
	for p, m := range c.Members {
		if m.Switch.Epoch() != 2 {
			t.Fatalf("member %d epoch = %d, want 2 (both requests honoured, in sequence)", p, m.Switch.Epoch())
		}
	}
	// Exactly one initiator per switch.
	var recs []switching.Record
	for _, m := range c.Members {
		recs = append(recs, m.Switch.Records()...)
	}
	if len(recs) != 2 {
		t.Fatalf("recorded %d switches, want 2", len(recs))
	}
	if recs[0].Initiator == recs[1].Initiator {
		t.Errorf("both switches initiated by %v", recs[0].Initiator)
	}
}

func TestNewEpochTrafficIsBuffered(t *testing.T) {
	// Token order (protocol 1 → switching to 0) has high latency, so
	// new-protocol (sequencer, fast) messages sent right after PREPARE
	// overtake draining old traffic and must be buffered.
	protos := []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{tokenorder.New(tokenorder.Config{HoldDelay: 2 * time.Millisecond}), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
	}
	c := newCluster(t, 7, simnet.Config{Nodes: 5, PropDelay: 200 * time.Microsecond}, 5,
		switching.Config{Protocols: protos})
	// Keep old-protocol traffic in flight, then switch and immediately
	// send on the new protocol.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%5), fmt.Sprintf("old%d", i)) })
	}
	c.Sim.At(21*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	for i := 0; i < 10; i++ {
		at := 22*time.Millisecond + time.Duration(i)*time.Millisecond
		i := i
		c.Sim.At(at, func() { castTagged(t, c, ids.ProcID(i%5), fmt.Sprintf("new%d", i)) })
	}
	c.Run(5 * time.Second)
	c.Stop()
	assertAgreement(t, c, 20)
	assertEpochBoundary(t, c)
	var buffered uint64
	for _, m := range c.Members {
		buffered += m.Switch.Stats().Buffered
	}
	if buffered == 0 {
		t.Error("no new-epoch message was ever buffered — the race the SP exists for never happened")
	}
}

func TestSwitchWithNoTrafficCompletes(t *testing.T) {
	c := newCluster(t, 8, simnet.Config{Nodes: 3, PropDelay: 200 * time.Microsecond}, 3, switching.Config{})
	c.Sim.At(5*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Run(time.Second)
	c.Stop()
	for p, m := range c.Members {
		if m.Switch.Epoch() != 1 {
			t.Fatalf("member %d: empty switch did not complete (epoch %d)", p, m.Switch.Epoch())
		}
	}
}

func TestSingletonGroupSwitch(t *testing.T) {
	c := newCluster(t, 9, simnet.Config{Nodes: 1}, 1, switching.Config{})
	castTagged(t, c, 0, "solo0")
	c.Sim.At(5*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Sim.At(100*time.Millisecond, func() { castTagged(t, c, 0, "solo1") })
	c.Run(2 * time.Second)
	c.Stop()
	if got := c.Members[0].Switch.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	bodies, err := c.AppBodies(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 2 || !strings.HasPrefix(bodies[0], "e0-") || !strings.HasPrefix(bodies[1], "e1-") {
		t.Fatalf("bodies = %v", bodies)
	}
}

func TestCancelSwitch(t *testing.T) {
	c := newCluster(t, 10, simnet.Config{Nodes: 3, PropDelay: 200 * time.Microsecond}, 3, switching.Config{})
	sw := c.Members[1].Switch
	sw.RequestSwitch()
	if !sw.SwitchPending() {
		t.Fatal("request not pending")
	}
	sw.CancelSwitch()
	c.Run(500 * time.Millisecond)
	c.Stop()
	if sw.Epoch() != 0 {
		t.Error("cancelled request still switched")
	}
}

func TestConfigValidation(t *testing.T) {
	app := proto.UpFunc(func(ids.ProcID, []byte) {})
	if _, err := swtest.NewSwitched(1, simnet.Config{Nodes: 2}, 2, switching.Config{}); err == nil {
		t.Error("accepted config without protocols")
	}
	onlyOne := switching.Config{Protocols: orderedPair()[:1]}
	if _, err := swtest.NewSwitched(1, simnet.Config{Nodes: 2}, 2, onlyOne); err == nil {
		t.Error("accepted a single protocol")
	}
	if _, err := switching.New(nil, app, nil, switching.Config{Protocols: orderedPair()}); err == nil {
		t.Error("accepted nil env/transport")
	}
}

func TestCastAfterStopFails(t *testing.T) {
	c := newCluster(t, 11, simnet.Config{Nodes: 2}, 2, switching.Config{})
	c.Stop()
	if err := c.Members[0].Switch.Cast([]byte("x")); err == nil {
		t.Error("Cast succeeded after Stop")
	}
}

// TestRandomizedSwitchInvariants is the property-style test of E7: for
// several seeds, run random traffic with a mid-stream switch and check
// the SP's core guarantees — agreement (both protocols are total-order),
// reliability, and the old-before-new epoch boundary.
func TestRandomizedSwitchInvariants(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			netCfg := simnet.Config{
				Nodes:     4,
				PropDelay: 200 * time.Microsecond,
				DropProb:  0.05,
				Jitter:    500 * time.Microsecond,
			}
			c := newCluster(t, seed, netCfg, 4, switching.Config{})
			rng := c.Sim.Rand()
			total := 15 + rng.Intn(10)
			for i := 0; i < total; i++ {
				at := time.Duration(rng.Intn(80)) * time.Millisecond
				i := i
				c.Sim.At(at, func() {
					castTagged(t, c, ids.ProcID(i%4), fmt.Sprintf("m%02d", i))
				})
			}
			switchAt := time.Duration(20+rng.Intn(40)) * time.Millisecond
			c.Sim.At(switchAt, func() { c.Members[rng.Intn(4)].Switch.RequestSwitch() })
			c.Run(30 * time.Second)
			c.Stop()
			assertAgreement(t, c, total)
			assertEpochBoundary(t, c)
			for p, m := range c.Members {
				if m.Switch.Epoch() != 1 {
					t.Fatalf("member %d epoch = %d, want 1", p, m.Switch.Epoch())
				}
			}
		})
	}
}
