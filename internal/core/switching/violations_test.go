// Live demonstrations of §5–§6: which Table 1 properties survive an
// actual run-time protocol switch (E7 of DESIGN.md), and the §8
// observation that a view-change-based switch supports Virtual
// Synchrony (E8). Preserved: Total Order, Reliability, Integrity,
// Confidentiality. Violated: No Replay, Prioritized Delivery, Amoeba,
// Virtual Synchrony — each by a concrete, deterministic scenario.
package switching_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/amoeba"
	"repro/internal/protocols/conf"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/integrity"
	"repro/internal/protocols/noreplay"
	"repro/internal/protocols/priority"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/vsync"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// appMsg builds a test message.
func appMsg(sender ids.ProcID, seq uint32, body string) proto.AppMsg {
	return proto.AppMsg{ID: proto.MakeMsgID(sender, seq), Sender: sender, Body: []byte(body)}
}

// TestTotalOrderAndReliabilityPreserved runs a switch between the two
// total-order protocols under load and checks the recorded app-level
// trace against the Table 1 predicates — the positive half of §6.3.
func TestTotalOrderAndReliabilityPreserved(t *testing.T) {
	c := newCluster(t, 31, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond, Jitter: 500 * time.Microsecond}, 4,
		switching.Config{})
	var sent []ptest.SentMsg
	seq := uint32(0)
	cast := func(p ids.ProcID, body string) {
		seq++
		m := appMsg(p, seq, body)
		s, err := c.CastApp(m)
		if err != nil {
			t.Fatal(err)
		}
		sent = append(sent, s)
	}
	for i := 0; i < 12; i++ {
		at := time.Duration(i) * 3 * time.Millisecond
		i := i
		c.Sim.At(at, func() { cast(ids.ProcID(i%4), fmt.Sprintf("m%02d", i)) })
	}
	c.Sim.At(18*time.Millisecond, func() { c.Members[2].Switch.RequestSwitch() })
	c.Run(10 * time.Second)
	c.Stop()
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ValidateAtMostOnce(); err != nil {
		t.Fatalf("at-most-once violated: %v", err)
	}
	if !(property.TotalOrder{}).Holds(tr) {
		t.Error("Total Order violated across the switch — §6.3 says it must be preserved")
	}
	rel := property.Reliability{Group: ids.Procs(4)}
	if !rel.Holds(tr) {
		t.Error("Reliability violated across the switch — §6.3 notes the SP preserves it")
	}
}

// TestIntegrityPreservedAcrossSwitch puts an HMAC layer inside both
// protocols; a member with the wrong key cannot get anything delivered
// at trusted members, before or after the switch.
func TestIntegrityPreservedAcrossSwitch(t *testing.T) {
	key := []byte("group-integrity-key-123456")
	wrong := []byte("not-the-real-key-000000000")
	keyFor := func(env proto.Env) []byte {
		if env.Self() == 3 {
			return wrong
		}
		return key
	}
	protos := []switching.ProtocolFactory{
		func(env proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), integrity.New(keyFor(env)), fifo.New(fifo.Config{})}
		},
		func(env proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), integrity.New(keyFor(env)), fifo.New(fifo.Config{})}
		},
	}
	c := newCluster(t, 32, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4,
		switching.Config{Protocols: protos})
	// Forged traffic before, during and after the switch. The forger
	// injects straight into its sub-protocol stacks: a forged message
	// that rode the forger's own SP would inflate the send-count vector
	// with traffic no honest member can deliver and wedge the switch —
	// exactly the paper's §2 exactly-once assumption (see
	// EXPERIMENTS.md E7).
	forge := func(i int) {
		sw := c.Members[3].Switch
		payload := sw.FrameForEpoch(sw.SendEpoch(), appMsg(3, uint32(i), "forged").Encode())
		if err := sw.SubStack(sw.ActiveProtocol()).Cast(payload); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 6; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		i := i
		c.Sim.At(at, func() { forge(i) })
	}
	c.Sim.At(15*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// Honest traffic, late enough to ride the new protocol.
	c.Sim.At(200*time.Millisecond, func() {
		if err := c.Cast(1, appMsg(1, 100, "honest").Encode()); err != nil {
			t.Error(err)
		}
	})
	c.Run(10 * time.Second)
	c.Stop()
	for p := 0; p < 3; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bodies {
			if b == "forged" {
				t.Fatalf("trusted member %d delivered a forged message", p)
			}
		}
		if len(bodies) != 1 || bodies[0] != "honest" {
			t.Fatalf("member %d bodies = %v, want [honest]", p, bodies)
		}
	}
}

// TestConfidentialityPreservedAcrossSwitch puts an AES layer inside both
// protocols; a member without the group key never sees plaintext,
// before or after the switch.
func TestConfidentialityPreservedAcrossSwitch(t *testing.T) {
	key := []byte("0123456789abcdef")
	wrong := []byte("ffffffffffffffff")
	mkConf := func(env proto.Env) proto.Layer {
		k := key
		if env.Self() == 3 {
			k = wrong
		}
		l, err := conf.New(k)
		if err != nil {
			panic(err)
		}
		return l
	}
	// Both epochs use the sequencer protocol: a member whose layers
	// reject or garble group traffic (here, the wrong-key eavesdropper)
	// cannot be trusted to keep a token rotating, so the token protocol
	// is not a sensible choice with an insider outside the key group.
	protos := []switching.ProtocolFactory{
		func(env proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), mkConf(env), fifo.New(fifo.Config{})}
		},
		func(env proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), mkConf(env), fifo.New(fifo.Config{})}
		},
	}
	c := newCluster(t, 33, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4,
		switching.Config{Protocols: protos})
	c.Sim.At(time.Millisecond, func() {
		if err := c.Cast(0, appMsg(0, 1, "secret-plan-A").Encode()); err != nil {
			t.Error(err)
		}
	})
	c.Sim.At(10*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Sim.At(100*time.Millisecond, func() {
		if err := c.Cast(1, appMsg(1, 2, "secret-plan-B").Encode()); err != nil {
			t.Error(err)
		}
	})
	c.Run(10 * time.Second)
	c.Stop()
	// Trusted members read both secrets.
	for p := 0; p < 3; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatalf("member %d: %v", p, err)
		}
		if len(bodies) != 2 || bodies[0] != "secret-plan-A" || bodies[1] != "secret-plan-B" {
			t.Fatalf("member %d bodies = %v", p, bodies)
		}
	}
	// The eavesdropper's deliveries never contain the plaintext.
	for _, d := range c.Members[3].Delivered {
		if s := string(d.Payload); s == appMsgBody(t, d.Payload) {
			_ = s // DecodeApp below is the real check
		}
		if m, err := proto.DecodeApp(d.Payload); err == nil {
			if string(m.Body) == "secret-plan-A" || string(m.Body) == "secret-plan-B" {
				t.Fatal("eavesdropper recovered a secret across the switch")
			}
		}
	}
}

func appMsgBody(t *testing.T, payload []byte) string {
	t.Helper()
	m, err := proto.DecodeApp(payload)
	if err != nil {
		return ""
	}
	return string(m.Body)
}

// appBodyKey extracts the application body from a switch-framed payload
// (epoch uvarint + encoded AppMsg) so the no-replay layer suppresses by
// body, as Table 1 defines the property.
func appBodyKey(payload []byte) []byte {
	d := wire.NewDecoder(payload)
	_ = d.Uvarint() // epoch
	m, err := proto.DecodeApp(d.Remaining())
	if err != nil {
		return payload
	}
	return m.Body
}

// TestNoReplayViolatedAcrossSwitch is §6.2 live: each protocol
// suppresses replayed bodies, yet the same body sent once per protocol
// epoch is delivered twice — No Replay is not composable.
func TestNoReplayViolatedAcrossSwitch(t *testing.T) {
	protos := []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{noreplay.NewKeyed(appBodyKey), seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{noreplay.NewKeyed(appBodyKey), seqorder.New(0), fifo.New(fifo.Config{})}
		},
	}
	c := newCluster(t, 34, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3,
		switching.Config{Protocols: protos})
	var sent []ptest.SentMsg
	cast := func(seq uint32, body string) {
		s, err := c.CastApp(appMsg(0, seq, body))
		if err != nil {
			t.Error(err)
		}
		sent = append(sent, s)
	}
	c.Sim.At(time.Millisecond, func() { cast(1, "pay $100") })
	c.Sim.At(20*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// Same body again, now riding the new protocol: its no-replay layer
	// has never seen it.
	c.Sim.At(200*time.Millisecond, func() { cast(2, "pay $100") })
	// Control: replaying within one protocol IS suppressed. (The
	// suppressed message never reaches the switch layer, so its epoch
	// must not be closed by a further switch — see EXPERIMENTS.md E7.)
	c.Sim.At(300*time.Millisecond, func() { cast(3, "pay $100") })
	c.Run(10 * time.Second)
	c.Stop()
	for p := 0; p < 3; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != 2 {
			t.Fatalf("member %d delivered %v — want exactly 2 copies (one per protocol epoch)", p, bodies)
		}
	}
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	if (property.NoReplay{}).Holds(tr) {
		t.Error("No Replay held across the switch — expected the §6.2 violation")
	}
}

// TestPrioritizedDeliveryViolatedAcrossSwitch is §5.2 live: the SWITCH
// token reaches ring members before the master, so a member whose old
// epoch is already drained releases its buffered new-protocol messages
// before the master does — master-first ordering is lost to delay.
func TestPrioritizedDeliveryViolatedAcrossSwitch(t *testing.T) {
	mk := func(proto.Env) []proto.Layer {
		return []proto.Layer{priority.New(0), fifo.New(fifo.Config{})}
	}
	protos := []switching.ProtocolFactory{mk, mk}
	// Master is member 0; the initiator is member 1, so the SWITCH and
	// FLUSH rounds reach members 2 and 3 before the master.
	c := newCluster(t, 35, simnet.Config{Nodes: 4, PropDelay: time.Millisecond}, 4,
		switching.Config{Protocols: protos, TokenInterval: 2 * time.Millisecond})
	var sent []ptest.SentMsg
	c.Sim.At(5*time.Millisecond, func() { c.Members[1].Switch.RequestSwitch() })
	// Cast on the new protocol as soon as member 1 has prepared; the
	// message is buffered at every member until its switch completes.
	var poll func()
	poll = func() {
		if c.Members[1].Switch.Switching() {
			s, err := c.CastApp(appMsg(1, 1, "urgent"))
			if err != nil {
				t.Error(err)
			}
			sent = append(sent, s)
			return
		}
		c.Sim.After(200*time.Microsecond, poll)
	}
	c.Sim.At(6*time.Millisecond, func() { poll() })
	c.Run(10 * time.Second)
	c.Stop()
	// Find each member's delivery time of "urgent".
	at := map[ids.ProcID]time.Duration{}
	for p, m := range c.Members {
		for _, d := range m.Delivered {
			if appMsgBody(t, d.Payload) == "urgent" {
				at[ids.ProcID(p)] = d.At
			}
		}
	}
	if len(at) != 4 {
		t.Fatalf("urgent reached %d members, want 4", len(at))
	}
	early := false
	for p, tm := range at {
		if p != 0 && tm < at[0] {
			early = true
			t.Logf("member %v delivered at %v, master at %v", p, tm, at[0])
		}
	}
	if !early {
		t.Fatal("no member beat the master — expected the §5.2 violation")
	}
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	if (property.PrioritizedDelivery{Master: 0}).Holds(tr) {
		t.Error("Prioritized Delivery held across the switch — expected violation")
	}
}

// TestAmoebaViolatedAcrossSwitch is §5.3–5.4 live: a sender whose
// Amoeba discipline blocks it inside protocol A sends again immediately
// through protocol B after the switch redirects it — the app-level
// trace shows a send while the previous message was still awaited.
func TestAmoebaViolatedAcrossSwitch(t *testing.T) {
	mk := func(proto.Env) []proto.Layer {
		return []proto.Layer{amoeba.New(), fifo.New(fifo.Config{})}
	}
	protos := []switching.ProtocolFactory{mk, mk}
	c := newCluster(t, 36, simnet.Config{Nodes: 3, PropDelay: 500 * time.Microsecond}, 3,
		switching.Config{Protocols: protos, TokenInterval: 2 * time.Millisecond})
	var sent []ptest.SentMsg
	cast := func(seq uint32, body string) {
		s, err := c.CastApp(appMsg(1, seq, body))
		if err != nil {
			t.Error(err)
		}
		sent = append(sent, s)
	}
	// Member 1 cannot hear its own traffic for a while: its first cast
	// stays outstanding inside protocol A.
	c.Net.Block(1, 1)
	c.Sim.At(time.Millisecond, func() { cast(1, "first") })
	c.Sim.At(2*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// Once member 1 has prepared, its next cast rides protocol B, whose
	// Amoeba layer has no outstanding message — it goes out instantly.
	var poll func()
	poll = func() {
		if c.Members[1].Switch.Switching() {
			cast(2, "second")
			// Heal the loopback so the run completes.
			c.Sim.After(5*time.Millisecond, func() { c.Net.Unblock(1, 1) })
			return
		}
		c.Sim.After(200*time.Microsecond, poll)
	}
	c.Sim.At(3*time.Millisecond, func() { poll() })
	c.Run(30 * time.Second)
	c.Stop()
	for p := 0; p < 3; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != 2 {
			t.Fatalf("member %d delivered %v, want both messages", p, bodies)
		}
	}
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	if (property.Amoeba{}).Holds(tr) {
		t.Error("Amoeba held across the switch — expected the §5.3 violation")
	}
}

// vsyncPair builds two vsync-over-total-order protocols and returns the
// per-member vsync layers of each epoch parity for view installation.
func vsyncPair(layersA, layersB map[ids.ProcID]*vsync.Layer) []switching.ProtocolFactory {
	return []switching.ProtocolFactory{
		func(env proto.Env) []proto.Layer {
			l := vsync.New()
			layersA[env.Self()] = l
			return []proto.Layer{l, seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(env proto.Env) []proto.Layer {
			l := vsync.New()
			layersB[env.Self()] = l
			return []proto.Layer{l, seqorder.New(0), fifo.New(fifo.Config{})}
		},
	}
}

// TestVirtualSynchronyViolatedAcrossSwitch is §6.1 live: a view
// installed in protocol A excludes member 2; after a plain SP switch,
// protocol B's fresh view layer knows nothing of it and happily
// delivers member 2's traffic — the app-level trace violates VS.
func TestVirtualSynchronyViolatedAcrossSwitch(t *testing.T) {
	layersA := map[ids.ProcID]*vsync.Layer{}
	layersB := map[ids.ProcID]*vsync.Layer{}
	c := newCluster(t, 37, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3,
		switching.Config{Protocols: vsyncPair(layersA, layersB)})
	var sent []ptest.SentMsg
	// Install view {0,1} inside protocol A (framed for epoch 0 so the
	// switch layer parses it at receivers).
	c.Sim.At(time.Millisecond, func() {
		vm := proto.AppMsg{ID: proto.MakeMsgID(0, 900), Sender: 0, IsView: true, View: []ids.ProcID{0, 1}}
		sent = append(sent, ptest.SentMsg{At: c.Sim.Now(), Msg: vm})
		payload := c.Members[0].Switch.FrameForEpoch(0, vm.Encode())
		if err := layersA[0].InstallView([]ids.ProcID{0, 1}, payload); err != nil {
			t.Error(err)
		}
	})
	// Excluded traffic in epoch 0 is suppressed by vsync-A. The
	// excluded member casts below the SP: a suppressed message that had
	// been counted in the send-count vector would wedge the switch (the
	// §2 exactly-once assumption; see EXPERIMENTS.md E7).
	c.Sim.At(10*time.Millisecond, func() {
		m := appMsg(2, 1, "ghost-A")
		sent = append(sent, ptest.SentMsg{At: c.Sim.Now(), Msg: m})
		sw := c.Members[2].Switch
		payload := sw.FrameForEpoch(sw.SendEpoch(), m.Encode())
		if err := sw.SubStack(sw.ActiveProtocol()).Cast(payload); err != nil {
			t.Error(err)
		}
	})
	c.Sim.At(30*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// After the switch, the same sender's traffic sails through B.
	c.Sim.At(300*time.Millisecond, func() {
		s, err := c.CastApp(appMsg(2, 2, "ghost-B"))
		if err != nil {
			t.Error(err)
		}
		sent = append(sent, s)
	})
	c.Run(10 * time.Second)
	c.Stop()
	for p := 0; p < 2; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		// The view message has an empty body; ghost-A must be absent,
		// ghost-B present.
		var sawA, sawB bool
		for _, b := range bodies {
			if b == "ghost-A" {
				sawA = true
			}
			if b == "ghost-B" {
				sawB = true
			}
		}
		if sawA {
			t.Fatalf("member %d delivered excluded-epoch traffic", p)
		}
		if !sawB {
			t.Fatalf("member %d missed the post-switch message", p)
		}
	}
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	vs := property.VirtualSynchrony{InitialView: ids.Procs(3)}
	if vs.Holds(tr) {
		t.Error("Virtual Synchrony held across the plain switch — expected the §6.1 violation")
	}
}

// TestViewChangeSwitchPreservesVSync is §8 live: carrying the view into
// the new protocol as part of the switch (the virtually synchronous
// view-change mechanism the paper sketches as future work) restores the
// property.
func TestViewChangeSwitchPreservesVSync(t *testing.T) {
	layersA := map[ids.ProcID]*vsync.Layer{}
	layersB := map[ids.ProcID]*vsync.Layer{}
	var done bool
	cfg := switching.Config{
		Protocols:        vsyncPair(layersA, layersB),
		OnSwitchComplete: func(switching.Record) { done = true },
	}
	c := newCluster(t, 38, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3, cfg)
	var sent []ptest.SentMsg
	installView := func(epoch uint64, layers map[ids.ProcID]*vsync.Layer, seq uint32) {
		vm := proto.AppMsg{ID: proto.MakeMsgID(0, seq), Sender: 0, IsView: true, View: []ids.ProcID{0, 1}}
		sent = append(sent, ptest.SentMsg{At: c.Sim.Now(), Msg: vm})
		payload := c.Members[0].Switch.FrameForEpoch(epoch, vm.Encode())
		if err := layers[0].InstallView([]ids.ProcID{0, 1}, payload); err != nil {
			t.Error(err)
		}
	}
	c.Sim.At(time.Millisecond, func() { installView(0, layersA, 900) })
	c.Sim.At(30*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// The view-change-aware switch: once the SP completes, re-install
	// the current view in the new protocol before application traffic
	// resumes.
	var waitDone func()
	waitDone = func() {
		if done {
			installView(1, layersB, 901)
			return
		}
		c.Sim.After(time.Millisecond, waitDone)
	}
	c.Sim.At(31*time.Millisecond, func() { waitDone() })
	// Excluded member's post-switch traffic (after the view has
	// propagated).
	c.Sim.At(400*time.Millisecond, func() {
		s, err := c.CastApp(appMsg(2, 2, "ghost"))
		if err != nil {
			t.Error(err)
		}
		sent = append(sent, s)
	})
	c.Run(10 * time.Second)
	c.Stop()
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	vs := property.VirtualSynchrony{InitialView: ids.Procs(3)}
	if !vs.Holds(tr) {
		t.Errorf("Virtual Synchrony violated despite the view-change switch:\n%v", tr)
	}
	// The ghost really was suppressed at surviving members.
	for p := 0; p < 2; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bodies {
			if b == "ghost" {
				t.Fatalf("member %d delivered excluded traffic after view-change switch", p)
			}
		}
	}
}
