package switching_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/simnet"
	"repro/internal/wire"
)

var authSessionKey = []byte("auth-test group session key")

// authPair is a bare two-protocol configuration (reliable FIFO only, no
// ordering layer) so the tests can hand-craft wire frames byte-for-byte
// identical to what a member would send.
func authPair() []switching.ProtocolFactory {
	mk := func(proto.Env) []proto.Layer {
		return []proto.Layer{fifo.New(fifo.Config{})}
	}
	return []switching.ProtocolFactory{mk, mk}
}

func authConfig(grace time.Duration) switching.Config {
	return switching.Config{
		Protocols:     authPair(),
		TokenInterval: 2 * time.Millisecond,
		Defense: &switching.DefenseConfig{
			QuarantineThreshold: 1000,
			Auth:                &switching.AuthConfig{SessionKey: authSessionKey, Grace: grace},
		},
	}
}

// epochFrame builds the exact transport bytes member sender would emit
// for a cast at the given epoch: [auth envelope [mux channel][fifo
// cast seq][switch epoch][app msg]]. Replaying these bytes is
// indistinguishable from capturing a genuine frame off the wire — the
// session key is shared group state, so a recorded frame IS this.
func epochFrame(epoch uint64, sender ids.ProcID, seq uint64, body string) []byte {
	app := proto.AppMsg{ID: proto.MakeMsgID(sender, uint32(seq)), Sender: sender, Body: []byte(body)}
	e := wire.NewEncoder(16)
	e.Channel(ids.ProtocolChannel(int(epoch % 2)))
	e.U8(1) // fifo kindCast
	e.Uvarint(seq)
	e.Uvarint(epoch)
	inner := e.Prepend(app.Encode())
	return wire.SealAuth(wire.DeriveEpochKey(authSessionKey, epoch), epoch, inner)
}

// TestAuthCrossEpochReplayRejected is the acceptance test for the
// epoch-keyed session: a frame captured in epoch 0 and replayed after
// the group switched to epoch 1 — past the grace window — is rejected
// and counted, while the same kind of old-epoch frame arriving within
// the grace window (in flight during the switch) is still delivered.
func TestAuthCrossEpochReplayRejected(t *testing.T) {
	const grace = 30 * time.Millisecond
	c, err := swtest.NewSwitched(41, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4,
		authConfig(grace))
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Members[1]
	inFlight := epochFrame(0, 3, 0, "in-flight old epoch")
	replay := epochFrame(0, 3, 1, "cross-epoch replay")

	c.Sim.At(10*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// Poll for the victim's key roll (PREPARE arrival), then inject the
	// old-epoch frame immediately — inside the grace window, exactly
	// like a frame that was in flight when the epoch rolled — and the
	// replayed frame well after the window closes.
	var poll func()
	poll = func() {
		if victim.Switch.SendEpoch() == 0 {
			c.Sim.At(c.Sim.Now()+500*time.Microsecond, poll)
			return
		}
		victim.Switch.Recv(3, inFlight)
		c.Sim.At(c.Sim.Now()+grace+10*time.Millisecond, func() {
			victim.Switch.Recv(3, replay)
		})
	}
	c.Sim.At(10*time.Millisecond, poll)
	c.Run(200 * time.Millisecond)

	stats := victim.Switch.Stats()
	if stats.SwitchesCompleted != 1 {
		t.Fatalf("victim completed %d switches, want 1", stats.SwitchesCompleted)
	}
	if got := victim.Switch.Epoch(); got != 1 {
		t.Fatalf("victim at epoch %d, want 1", got)
	}
	bodies, err := c.AppBodies(1)
	if err != nil {
		t.Fatal(err)
	}
	var sawInFlight, sawReplay bool
	for _, b := range bodies {
		switch b {
		case "in-flight old epoch":
			sawInFlight = true
		case "cross-epoch replay":
			sawReplay = true
		}
	}
	if !sawInFlight {
		t.Errorf("in-flight old-epoch frame within grace was not delivered; bodies = %q", bodies)
	}
	if sawReplay {
		t.Errorf("cross-epoch replay was delivered; bodies = %q", bodies)
	}
	if stats.AuthFailed != 1 {
		t.Errorf("AuthFailed = %d, want 1 (the replay)", stats.AuthFailed)
	}
	if got := victim.Switch.AuthFailedFrom(3); got != 1 {
		t.Errorf("AuthFailedFrom(3) = %d, want 1", got)
	}
	c.Stop()
}

// TestAuthForgeryRejectedBeforeStateMutation: frames sealed under a
// wrong key, an absent key (plain CRC envelope), and raw garbage are
// all counted and dropped at the trust boundary; the forged body never
// reaches any application and the ring keeps rotating.
func TestAuthForgeryRejectedBeforeStateMutation(t *testing.T) {
	cfg := authConfig(0)
	cfg.Defense.QuarantineThreshold = 5
	var quarantined []ids.ProcID
	cfg.Defense.OnQuarantine = func(p ids.ProcID) { quarantined = append(quarantined, p) }
	c, err := swtest.NewSwitched(42, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Members[0]

	// The forger crafts syntactically valid inner frames but cannot
	// derive the epoch key.
	forgeInner := func(body string) []byte {
		e := wire.NewEncoder(16)
		e.Channel(ids.ProtocolChannel(0))
		e.U8(1).Uvarint(0).Uvarint(0)
		return e.Prepend(proto.AppMsg{ID: 99, Sender: 2, Body: []byte(body)}.Encode())
	}
	forged := [][]byte{
		wire.SealAuth(wire.DeriveEpochKey([]byte("wrong session"), 0), 0, forgeInner("FORGED wrong key")),
		wire.Seal(forgeInner("FORGED absent key")), // CRC envelope, no MAC at all
		[]byte("raw garbage, not an envelope"),
	}
	for i, pkt := range forged {
		pkt := pkt
		c.Sim.At(time.Duration(5+i)*time.Millisecond, func() { victim.Switch.Recv(2, pkt) })
	}
	// Push two more wrong-key forgeries to cross the threshold of 5.
	for i := 0; i < 2; i++ {
		i := i
		c.Sim.At(time.Duration(10+i)*time.Millisecond, func() {
			victim.Switch.Recv(2, wire.SealAuth([]byte("x"), 0, forgeInner(fmt.Sprintf("FORGED %d", i))))
		})
	}
	c.Run(100 * time.Millisecond)

	stats := victim.Switch.Stats()
	if stats.AuthFailed != 5 {
		t.Errorf("AuthFailed = %d, want 5", stats.AuthFailed)
	}
	if got := victim.Switch.AuthFailedFrom(2); got != 5 {
		t.Errorf("AuthFailedFrom(2) = %d, want 5", got)
	}
	if stats.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", stats.Quarantines)
	}
	if len(quarantined) != 1 || quarantined[0] != 2 {
		t.Errorf("OnQuarantine fired for %v, want [2]", quarantined)
	}
	if stats.TokenPasses == 0 {
		t.Error("ring stopped rotating under forgery")
	}
	for p := range c.Members {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bodies {
			if len(b) >= 6 && b[:6] == "FORGED" {
				t.Errorf("member %d delivered forged body %q", p, b)
			}
		}
	}
	c.Stop()
}

// TestAuthSessionEndToEnd runs real traffic across a switch with auth
// enabled: every body is delivered everywhere with zero auth failures —
// the grace window absorbs the old-epoch frames in flight around the
// key roll. The same scenario with a degenerate 1ns grace shows the
// window is load-bearing (stragglers get rejected) yet degrades to
// latency, not loss: FIFO retransmissions re-seal under the current
// key, so delivery still converges.
func TestAuthSessionEndToEnd(t *testing.T) {
	run := func(grace time.Duration) (*swtest.SwitchedCluster, switching.Stats) {
		cfg := authConfig(grace)
		cfg.Control = fifo.Config{ResendInterval: 5 * time.Millisecond, AckInterval: 10 * time.Millisecond,
			HeartbeatInterval: 5 * time.Millisecond}
		// A long propagation delay keeps data frames in flight across
		// the PREPARE sweep, so old-epoch frames genuinely arrive after
		// their receivers rolled the key — the grace window's case.
		c, err := swtest.NewSwitched(43, simnet.Config{Nodes: 4, PropDelay: 2 * time.Millisecond}, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Continuous traffic from every member while a switch runs.
		for i := 0; i < 20; i++ {
			i := i
			at := time.Duration(i) * time.Millisecond
			c.Sim.At(at, func() {
				m := proto.AppMsg{ID: proto.MakeMsgID(ids.ProcID(i%4), uint32(i)),
					Sender: ids.ProcID(i % 4), Body: []byte(fmt.Sprintf("m%02d", i))}
				if _, err := c.CastApp(m); err != nil {
					t.Errorf("cast %d: %v", i, err)
				}
			})
		}
		c.Sim.At(5*time.Millisecond, func() { c.Members[2].Switch.RequestSwitch() })
		c.Run(500 * time.Millisecond)
		var total switching.Stats
		for _, m := range c.Members {
			total.Add(m.Switch.Stats())
		}
		return c, total
	}

	c, healthy := run(0) // default grace: 10× token interval
	if healthy.AuthFailed != 0 {
		t.Errorf("healthy run rejected %d frames", healthy.AuthFailed)
	}
	if healthy.SwitchesCompleted != 4 {
		t.Errorf("healthy run completed %d member-switches, want 4", healthy.SwitchesCompleted)
	}
	for p := 0; p < 4; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != 20 {
			t.Errorf("member %d delivered %d bodies, want 20", p, len(bodies))
		}
	}
	c.Stop()

	c2, starved := run(time.Nanosecond)
	if starved.AuthFailed == 0 {
		t.Error("1ns grace rejected nothing — the grace path is not being exercised")
	}
	for p := 0; p < 4; p++ {
		bodies, err := c2.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != 20 {
			t.Errorf("starved-grace member %d delivered %d bodies, want 20 (repair should re-seal)", p, len(bodies))
		}
	}
	c2.Stop()
}

// TestAuthConfigValidation covers the new Validate rules.
func TestAuthConfigValidation(t *testing.T) {
	cfg := authConfig(0)
	cfg.Defense.Auth.SessionKey = nil
	if err := cfg.Validate(); err == nil {
		t.Error("empty session key accepted")
	}
	cfg = authConfig(-time.Second)
	if err := cfg.Validate(); err == nil {
		t.Error("negative grace accepted")
	}
	if err := authConfig(0).Validate(); err != nil {
		t.Errorf("valid auth config rejected: %v", err)
	}
}
