package switching

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Mode is the phase of the rotating token (§2 of the paper). The token
// travels the ring three times to execute a switch: once as PREPARE
// (collecting per-member send counts), once as SWITCH (disseminating the
// count vector), and once as FLUSH (confirming every member delivered
// all old-protocol messages).
type Mode uint8

const (
	// ModeNormal circulates between switches; a member that wants to
	// initiate a switch must first hold a NORMAL token.
	ModeNormal Mode = iota + 1
	// ModePrepare collects each member's send count over the protocol
	// being switched away from.
	ModePrepare
	// ModeSwitch disseminates the completed count vector.
	ModeSwitch
	// ModeFlush is forwarded by a member only once it has delivered all
	// messages of the old protocol.
	ModeFlush
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "NORMAL"
	case ModePrepare:
		return "PREPARE"
	case ModeSwitch:
		return "SWITCH"
	case ModeFlush:
		return "FLUSH"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Token is the switching protocol's control message.
type Token struct {
	Mode Mode
	// Epoch is the protocol epoch being closed by this switch (the
	// epoch whose messages must all be delivered before completion).
	// NORMAL tokens carry the current delivery epoch instead, so a
	// member that missed a switch round can catch up (recovery).
	Epoch uint64
	// Initiator is the member that turned the token to PREPARE.
	Initiator ids.ProcID
	// Vector holds, per ring position, the number of messages that
	// member sent over the closing epoch. During PREPARE it fills up as
	// the token travels; from SWITCH on it is complete.
	Vector []uint64
	// Gen is the token's regeneration generation. The original token is
	// generation 0; every wedge-recovery regeneration increments it, so
	// a superseded token is recognized and absorbed anywhere on the
	// ring. Zero unless crash recovery is enabled.
	Gen uint64
	// Origin is the member that created this token lineage (the first
	// ring member for generation 0, the regenerator afterwards). When
	// two members regenerate concurrently with the same generation, the
	// token with the smaller origin wins.
	Origin ids.ProcID
}

// Encode marshals the token.
func (t Token) Encode() []byte {
	e := wire.NewEncoder(32 + 2*len(t.Vector))
	e.U8(uint8(t.Mode)).Uvarint(t.Epoch).Proc(t.Initiator).Counts(t.Vector)
	e.Uvarint(t.Gen).Proc(t.Origin)
	return e.Bytes()
}

// DecodeToken unmarshals a token.
func DecodeToken(b []byte) (Token, error) {
	d := wire.NewDecoder(b)
	t := Token{
		Mode:      Mode(d.U8()),
		Epoch:     d.Uvarint(),
		Initiator: d.Proc(),
		Vector:    d.Counts(),
	}
	t.Gen = d.Uvarint()
	t.Origin = d.Proc()
	if err := d.Err(); err != nil {
		return Token{}, fmt.Errorf("switching: decode token: %w", err)
	}
	if t.Mode < ModeNormal || t.Mode > ModeFlush {
		return Token{}, fmt.Errorf("switching: invalid token mode %d", uint8(t.Mode))
	}
	return t, nil
}
