package switching

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/wire"
)

// ProtocolFactory builds one sub-protocol's stack (layers, top first)
// for a member. Each factory gets its own private multiplex channel.
type ProtocolFactory func(env proto.Env) []proto.Layer

// Record describes one completed switch, observed at its initiator.
type Record struct {
	Initiator ids.ProcID
	// Epoch is the protocol epoch the switch closed.
	Epoch uint64
	// Started is when the initiator turned the token to PREPARE;
	// Finished is when the FLUSH token returned. Their difference is
	// the switch overhead discussed in §7 of the paper (~31 ms near
	// the Figure 2 crossover on the paper's testbed).
	Started, Finished time.Duration
	// Gen is the token generation the switch completed under — nonzero
	// when crash recovery regenerated the token at least once before or
	// during this switch.
	Gen uint64
}

// Duration returns the switch's end-to-end duration.
func (r Record) Duration() time.Duration { return r.Finished - r.Started }

// Config configures a Switch.
type Config struct {
	// Protocols are the interchangeable protocols (at least two).
	// Epoch e runs on Protocols[e % len(Protocols)].
	Protocols []ProtocolFactory
	// TokenInterval is how long a member holds a NORMAL token before
	// passing it on — the idle rotation pace. Defaults to 5ms.
	TokenInterval time.Duration
	// Control tunes the reliable channel carrying the token.
	Control fifo.Config
	// OnSwitchComplete, if set, is invoked at the initiator when its
	// FLUSH token returns.
	OnSwitchComplete func(Record)
	// Recovery, when non-nil, enables the self-healing extensions:
	// failure-detector-driven ring repair, wedge detection and token
	// regeneration, and abort-and-retry of switch rounds disrupted by a
	// crash. Nil preserves the paper's crash-free §2 protocol exactly.
	Recovery *RecoveryConfig
	// Defense, when non-nil, enables the adversarial-input hardening:
	// an integrity envelope around every transport packet, defensive
	// drops of malformed input, and per-peer quarantine. Nil preserves
	// the legacy wire format byte-for-byte.
	Defense *DefenseConfig
	// Overload, when non-nil, enables the overload-protection layer:
	// bounded per-peer ingress and egress queues, watermark
	// backpressure toward local senders, deterministic load shedding at
	// the hard limits, and seeded retry/backoff for rejected sends. Nil
	// preserves the legacy unbounded message path exactly.
	Overload *OverloadConfig
	// Recorder receives the structured observability events (token
	// lifecycle, phase transitions, epoch advances, recovery actions).
	// Every event is emitted at the exact site the matching Stats
	// counter increments, so traces and counters stay mutually
	// consistent. Nil means obs.Nop: the instrumented paths then cost a
	// struct construction and a no-op interface call, nothing more.
	Recorder obs.Recorder
}

// Validate checks the configuration without building anything. New
// validates implicitly; call this to reject a bad configuration early.
func (c Config) Validate() error {
	if len(c.Protocols) < 2 {
		return fmt.Errorf("switching: need at least two protocols, got %d", len(c.Protocols))
	}
	if c.TokenInterval < 0 {
		return fmt.Errorf("switching: negative token interval %v", c.TokenInterval)
	}
	if c.Recovery != nil {
		if err := c.Recovery.Validate(); err != nil {
			return err
		}
	}
	if c.Defense != nil {
		if err := c.Defense.Validate(); err != nil {
			return err
		}
	}
	if c.Overload != nil {
		if err := c.Overload.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats counts switch-layer activity at one member.
type Stats struct {
	// SwitchesCompleted counts switches this member has completed
	// (locally: delivered all old-epoch messages and moved on).
	SwitchesCompleted uint64
	// Buffered counts new-epoch messages buffered during switches.
	Buffered uint64
	// StaleDropped counts data that arrived for an already-closed epoch.
	StaleDropped uint64
	// TokenPasses counts tokens forwarded by this member.
	TokenPasses uint64

	// Recovery counters; all zero unless Config.Recovery is set.

	// WedgeTimeouts counts wedge-detector expiries (token presumed
	// lost) at this member.
	WedgeTimeouts uint64
	// TokensRegenerated counts replacement tokens this member created.
	TokensRegenerated uint64
	// SwitchesAborted counts switch rounds this member abandoned or
	// re-ran because the token was lost or the member set changed
	// mid-round.
	SwitchesAborted uint64
	// ForcedAdvances counts epochs this member adopted from a token
	// after missing the switch round itself (rejoin fast-forward).
	ForcedAdvances uint64

	// Gray-failure counters; all zero unless Recovery.Adaptive is set.

	// SuspicionsRaised counts graded suspicions the adaptive detector
	// raised (heartbeat silence beyond the phi-style threshold).
	SuspicionsRaised uint64
	// SuspicionsCleared counts graded suspicions that cleared when the
	// peer's heartbeats resumed.
	SuspicionsCleared uint64
	// FlapPenalties counts flap-damping penalty charges (one per
	// completed suspect→restore cycle of a peer).
	FlapPenalties uint64
	// DegradedSkips counts ring rotations that bypassed a damped peer
	// without a token regeneration (degraded-mode repair).
	DegradedSkips uint64
	// Reincludes counts damped peers re-included after their penalty
	// decayed.
	Reincludes uint64

	// Defensive-ingress counters; see Config.Defense. MalformedDropped
	// also counts token/header decode failures when Defense is nil.

	// MalformedDropped counts messages the defensive ingress rejected
	// without mutating state (bad envelope, checksum mismatch, decode
	// or range failure).
	MalformedDropped uint64
	// Quarantines counts peers whose malformed count crossed the
	// quarantine threshold and raised a suspicion.
	Quarantines uint64
	// AuthFailed counts arrivals the authenticated ingress rejected:
	// forged frames (bad MAC), structurally broken auth envelopes, and
	// cross-epoch replays (retired epoch). Zero unless Defense.Auth is
	// set.
	AuthFailed uint64

	// Overload counters; all zero unless Config.Overload is set.

	// Shed counts messages dropped at a hard queue limit: ingress
	// frames at a full per-peer queue (drop-newest; per-peer breakdown
	// via ShedFrom) and application casts abandoned after the retry
	// budget.
	Shed uint64
	// Backpressured counts pause transitions: the egress queue crossed
	// its high watermark and local senders were asked to pause.
	Backpressured uint64
	// RetriedSends counts retry attempts scheduled for application
	// casts rejected at the egress cap.
	RetriedSends uint64
}

// Add accumulates another member's (or run's) counters into s — the
// aggregation step of every sweep.
func (s *Stats) Add(o Stats) {
	s.SwitchesCompleted += o.SwitchesCompleted
	s.Buffered += o.Buffered
	s.StaleDropped += o.StaleDropped
	s.TokenPasses += o.TokenPasses
	s.WedgeTimeouts += o.WedgeTimeouts
	s.TokensRegenerated += o.TokensRegenerated
	s.SwitchesAborted += o.SwitchesAborted
	s.ForcedAdvances += o.ForcedAdvances
	s.SuspicionsRaised += o.SuspicionsRaised
	s.SuspicionsCleared += o.SuspicionsCleared
	s.FlapPenalties += o.FlapPenalties
	s.DegradedSkips += o.DegradedSkips
	s.Reincludes += o.Reincludes
	s.MalformedDropped += o.MalformedDropped
	s.Quarantines += o.Quarantines
	s.AuthFailed += o.AuthFailed
	s.Shed += o.Shed
	s.Backpressured += o.Backpressured
	s.RetriedSends += o.RetriedSends
}

// Switch is one member's instance of the switching protocol. The
// application talks only to the Switch (the SP is transparent, §1); the
// Switch talks to its sub-protocols over private multiplex channels.
type Switch struct {
	cfg Config
	env proto.Env
	app proto.Up
	mux *Multiplex

	ctl    *proto.Stack   // control channel (token transport)
	protos []*proto.Stack // sub-protocol stacks, one per factory

	// sendEpoch is the epoch new application sends go to; deliverEpoch
	// is the epoch currently being delivered. After a PREPARE and until
	// the switch completes, sendEpoch == deliverEpoch + 1.
	sendEpoch    uint64
	deliverEpoch uint64

	// sent counts this member's sends per epoch (the OK(count) value).
	sent map[uint64]uint64
	// recv counts delivered+buffered arrivals per epoch per ring
	// position — compared against the SWITCH token's vector.
	recv map[uint64][]uint64
	// expected is the closing epoch's send-count vector, once known.
	expected []uint64
	// buffer holds arrivals for future epochs until the switch
	// completes ("messages received over this protocol will be
	// buffered rather than delivered", §2).
	buffer map[uint64][]bufEntry

	// wantSwitch is set by RequestSwitch and consumed when this member
	// next holds a NORMAL token.
	wantSwitch bool
	// initiating marks this member as the initiator of the in-flight
	// switch.
	initiating bool
	started    time.Duration
	// heldFlush is a FLUSH token waiting for local completion.
	heldFlush *Token

	timer   proto.Timer
	stopped bool
	stats   Stats
	records []Record
	// malformedBy tracks per-peer malformed counts toward quarantine
	// (allocated lazily; nil unless Config.Defense is set and a drop
	// occurred).
	malformedBy map[ids.ProcID]uint64
	// authFailedBy tracks per-peer authentication-failure counts; it
	// advances the same quarantine progress as malformedBy (allocated
	// lazily; nil unless Defense.Auth is set and a failure occurred).
	authFailedBy map[ids.ProcID]uint64
	// epochSealers memoizes the per-epoch authenticated sealer — derived
	// key plus cached keyed HMAC — so steady-state sealing and opening
	// allocate nothing (auth mode).
	epochSealers map[uint64]*wire.AuthSealer
	// keyRolledAt is when sendEpoch last advanced — the start of the
	// grace window during which the previous epoch's key is still
	// accepted on ingress.
	keyRolledAt time.Duration
	// authGrace is Defense.Auth.Grace normalized to its default.
	authGrace time.Duration
	// maxAuthEpoch is the newest epoch this member has verified a MAC
	// under. A member that missed a switch round (partitioned, say)
	// seals its egress under this instead of its own lagging sendEpoch:
	// the verified MAC is unforgeable evidence the group rolled, and
	// sealing under the retired key would get every frame it sends —
	// heartbeats included — rejected by the advanced majority, leaving
	// it permanently suspected and unable to rejoin.
	maxAuthEpoch uint64
	// obs is Config.Recorder normalized to non-nil (obs.Nop default).
	obs obs.Recorder

	// rec is the crash-recovery state; nil unless Config.Recovery is
	// set, in which case the §2 protocol runs unmodified.
	rec *recovery

	// ovl is the overload-protection state; nil unless Config.Overload
	// is set, in which case the message path is unqueued and unpaced.
	ovl *overload

	// batch is the egress frame batcher; nil unless
	// Config.Overload.BatchMax > 1, in which case every frame is its own
	// wire write (the legacy format).
	batch *batcher
}

type bufEntry struct {
	src     ids.ProcID
	payload []byte
}

// New assembles a Switch for one member over the given transport. Wire
// the node's incoming packets to (*Switch).Recv.
func New(env proto.Env, app proto.Up, transport proto.Down, cfg Config) (*Switch, error) {
	if env == nil || app == nil || transport == nil {
		return nil, fmt.Errorf("switching: nil wiring")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TokenInterval == 0 {
		cfg.TokenInterval = 5 * time.Millisecond
	}
	s := &Switch{
		cfg:    cfg,
		env:    env,
		app:    app,
		sent:   make(map[uint64]uint64),
		recv:   make(map[uint64][]uint64),
		buffer: make(map[uint64][]bufEntry),
		obs:    obs.OrNop(cfg.Recorder),
	}
	if cfg.Defense != nil {
		// Seal below the multiplex: one envelope covers the mux header
		// and every protocol header above it.
		if cfg.Defense.Auth != nil {
			s.authGrace = cfg.Defense.Auth.Grace
			if s.authGrace == 0 {
				s.authGrace = 10 * cfg.TokenInterval
			}
			transport = authTransport{s: s, down: transport}
		} else {
			transport = sealedTransport{down: transport}
		}
	}
	if cfg.Overload != nil && cfg.Overload.BatchMax > 1 {
		// Batch between the multiplex and the envelope: one sealed wire
		// write carries up to BatchMax mux frames per destination per
		// event, and in auth mode the whole batch costs one MAC. Must be
		// enabled uniformly across the group (like the session key) — an
		// unbatched receiver sees batch frames as malformed.
		s.batch = newBatcher(s, transport, cfg.Overload.BatchMax)
		transport = s.batch
	}
	mux, err := NewMultiplex(transport)
	if err != nil {
		return nil, err
	}
	s.mux = mux
	mux.onMalformed = func(src ids.ProcID) {
		s.countMalformed(src, obs.MalformedDecode)
	}
	// Control channel: the token rides a private reliable channel.
	ctl, err := proto.Build(env,
		proto.UpFunc(s.onControl),
		mux.Port(ids.ControlChannel),
		fifo.New(cfg.Control))
	if err != nil {
		return nil, fmt.Errorf("switching: control stack: %w", err)
	}
	s.ctl = ctl
	mux.Bind(ids.ControlChannel, proto.UpFunc(ctl.Recv))
	// Sub-protocol stacks, each on its private channel.
	for i, factory := range cfg.Protocols {
		ch := ids.ProtocolChannel(i)
		stack, err := proto.Build(env,
			proto.UpFunc(s.onData),
			mux.Port(ch),
			factory(env)...)
		if err != nil {
			return nil, fmt.Errorf("switching: protocol %d stack: %w", i, err)
		}
		s.protos = append(s.protos, stack)
		mux.Bind(ch, proto.UpFunc(stack.Recv))
	}
	if cfg.Recovery != nil {
		rec, err := newRecovery(s, *cfg.Recovery)
		if err != nil {
			return nil, err
		}
		s.rec = rec
	}
	if cfg.Overload != nil {
		ovl, err := newOverload(s, *cfg.Overload)
		if err != nil {
			return nil, err
		}
		s.ovl = ovl
	}
	// The first ring member injects the NORMAL token.
	if env.Self() == env.Ring().Members()[0] {
		s.timer = env.After(cfg.TokenInterval, func() {
			if s.stopped {
				return
			}
			s.passToken(Token{Mode: ModeNormal, Initiator: env.Self()})
		})
	}
	return s, nil
}

// Recv routes an incoming transport packet; bind the node's network
// handler here. With Defense enabled the envelope is verified and
// stripped first — the authenticated envelope when Defense.Auth is set,
// the integrity envelope otherwise: a packet that fails the check is
// counted and dropped before any protocol layer sees it.
func (s *Switch) Recv(src ids.ProcID, pkt []byte) {
	if d := s.cfg.Defense; d != nil {
		if d.Auth != nil {
			payload, ok := s.recvAuth(src, pkt)
			if !ok {
				return
			}
			pkt = payload
		} else {
			payload, err := wire.Open(pkt)
			if err != nil {
				reason := obs.MalformedFrame
				if err == wire.ErrChecksum {
					reason = obs.MalformedChecksum
				}
				s.countMalformed(src, reason)
				return
			}
			pkt = payload
		}
	}
	// A batch frame (one envelope, many mux frames) is unpacked here —
	// inside the trust boundary, after the envelope verified — and each
	// inner frame takes the same path an unbatched arrival would,
	// including per-frame overload admission, so the conservation ledger
	// counts every application frame individually.
	if s.batch != nil && isBatchFrame(pkt) {
		s.recvBatch(src, pkt)
		return
	}
	s.recvFrame(src, pkt, false)
}

// recvFrame routes one verified, unbatched mux frame. The overload
// layer consumes data frames (queueing or shedding them); token and
// heartbeat frames keep their direct path. owned marks frames whose
// bytes already survive this callback (see admitIngress).
func (s *Switch) recvFrame(src ids.ProcID, pkt []byte, owned bool) {
	if s.ovl != nil && s.ovl.admitIngress(src, pkt, owned) {
		return
	}
	s.mux.Recv(src, pkt)
}

// Stop shuts down the switch and its sub-stacks.
func (s *Switch) Stop() {
	s.stopped = true
	if s.timer != nil {
		s.timer.Stop()
	}
	if s.rec != nil {
		s.rec.stop()
	}
	if s.ovl != nil {
		s.ovl.stop()
	}
	s.ctl.Stop()
	for _, p := range s.protos {
		p.Stop()
	}
}

// Epoch returns the epoch currently being delivered.
func (s *Switch) Epoch() uint64 { return s.deliverEpoch }

// SendEpoch returns the epoch new sends go to (deliverEpoch + 1 while a
// switch is draining).
func (s *Switch) SendEpoch() uint64 { return s.sendEpoch }

// SubStack returns sub-protocol i's stack, giving tests and management
// tools access to layer-specific controls (e.g. vsync view
// installation). Out-of-range indexes return nil.
func (s *Switch) SubStack(i int) *proto.Stack {
	if i < 0 || i >= len(s.protos) {
		return nil
	}
	return s.protos[i]
}

// FrameForEpoch wraps an application payload in the switch's epoch
// header — for control traffic injected directly into a sub-stack (such
// as vsync view messages) that must still parse as switch data at
// receivers. Injected traffic does not count toward the epoch's
// send-count vector; inject only while no switch is closing that epoch,
// or the receivers' completion accounting can run ahead of the vector.
func (s *Switch) FrameForEpoch(epoch uint64, payload []byte) []byte {
	e := wire.NewEncoder(10 + len(payload))
	e.Uvarint(epoch)
	return e.Frame(payload)
}

// ActiveProtocol returns the index of the protocol new sends use.
func (s *Switch) ActiveProtocol() int {
	return int(s.sendEpoch % uint64(len(s.protos)))
}

// Switching reports whether a switch is in progress at this member
// (sends redirected, old epoch still draining).
func (s *Switch) Switching() bool { return s.sendEpoch != s.deliverEpoch }

// Stats returns a copy of the counters.
func (s *Switch) Stats() Stats { return s.stats }

// Records returns the switches this member initiated.
func (s *Switch) Records() []Record {
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// RequestSwitch asks the member to initiate a switch to the next
// protocol when it next holds a NORMAL token ("the oracle requests the
// SP to switch at one of the processes called the manager", §2).
func (s *Switch) RequestSwitch() { s.wantSwitch = true }

// CancelSwitch withdraws a pending request that has not yet begun.
func (s *Switch) CancelSwitch() { s.wantSwitch = false }

// SwitchPending reports whether a request is waiting for the token.
func (s *Switch) SwitchPending() bool { return s.wantSwitch }

// Cast multicasts an application payload over the currently active
// protocol. Sending is never blocked by a switch in progress (§7).
// With Config.Overload set, the cast enters the bounded egress queue
// instead of going straight to the protocol: it drains at the service
// pace, and at the hard cap it is retried with seeded backoff and
// ultimately shed — Cast itself still never blocks or fails.
func (s *Switch) Cast(payload []byte) error {
	if s.stopped {
		return fmt.Errorf("switching: stopped")
	}
	if s.ovl != nil {
		return s.ovl.admitCast(payload)
	}
	epoch := s.sendEpoch
	e := wire.GetEncoder()
	e.Uvarint(epoch)
	s.sent[epoch]++
	// The epoch frame rides a pooled encoder: every sub-protocol consumes
	// its cast payload synchronously (copying anything it retains — the
	// layer ownership contract), so the buffer is free again by the time
	// Cast returns.
	err := s.protos[epoch%uint64(len(s.protos))].Cast(e.Frame(payload))
	wire.PutEncoder(e)
	return err
}

// onData handles a delivery from any sub-protocol stack.
func (s *Switch) onData(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	epoch := d.Uvarint()
	if d.Err() != nil {
		s.countMalformed(src, obs.MalformedDecode)
		return
	}
	payload := d.Remaining()
	switch {
	case epoch == s.deliverEpoch:
		s.countRecv(epoch, src)
		s.app.Deliver(src, payload)
		s.checkComplete()
	case epoch > s.deliverEpoch:
		// New-protocol traffic rides ahead of the switch: buffer it.
		s.countRecv(epoch, src)
		s.stats.Buffered++
		s.obs.Record(obs.Buffered(s.env.Now(), s.env.Self(), src, epoch))
		s.buffer[epoch] = append(s.buffer[epoch], bufEntry{src: src, payload: payload})
	default:
		// The vector guaranteed every old message arrived before we
		// completed; anything else is a late duplicate.
		s.stats.StaleDropped++
		s.obs.Record(obs.StaleDrop(s.env.Now(), s.env.Self(), src, epoch))
	}
}

// countRecv increments the per-epoch arrival count for src.
func (s *Switch) countRecv(epoch uint64, src ids.ProcID) {
	v := s.recv[epoch]
	if v == nil {
		v = make([]uint64, s.env.Ring().Size())
		s.recv[epoch] = v
	}
	pos := s.env.Ring().Position(src)
	if pos >= 0 {
		v[pos]++
	}
}

// onControl handles a token arriving on the control channel.
func (s *Switch) onControl(src ids.ProcID, pkt []byte) {
	if s.stopped {
		return
	}
	t, err := DecodeToken(pkt)
	if err != nil {
		s.countMalformed(src, obs.MalformedDecode)
		return
	}
	// Range-validate before the state machine touches the token: a
	// vector longer than the ring would otherwise index past the
	// per-epoch arrival counts, and a foreign initiator would circulate
	// forever (no member ever absorbs it as its own round).
	if len(t.Vector) > s.env.Ring().Size() || s.env.Ring().Position(t.Initiator) < 0 {
		s.countMalformed(src, obs.MalformedRange)
		return
	}
	if s.rec != nil && !s.rec.admit(t) {
		return // stale lineage: absorb the superseded duplicate token
	}
	s.onToken(t)
}

// onToken is the heart of §2's state machine.
func (s *Switch) onToken(t Token) {
	self := s.env.Self()
	switch t.Mode {
	case ModeNormal:
		if s.rec != nil {
			if t.Epoch > s.deliverEpoch {
				// The ring closed epochs while this member was out of
				// rotation: adopt them.
				s.forceAdvance(t.Epoch)
			}
			if s.Switching() {
				// A regenerated NORMAL token reached a member whose
				// switch round is still half-applied (the original
				// round's token died): re-run the round from PREPARE.
				s.stats.SwitchesAborted++
				s.obs.Record(obs.SwitchAbort(s.env.Now(), self, s.deliverEpoch, t.Gen))
				s.rec.retryRound(t.Gen, t.Origin)
				return
			}
		}
		if s.wantSwitch && !s.Switching() {
			// Become the initiator: this is the only place a switch can
			// start, so concurrent initiators are impossible (§2).
			s.wantSwitch = false
			s.initiating = true
			s.started = s.env.Now()
			s.obs.Record(obs.SwitchStart(s.started, self, s.deliverEpoch, t.Gen))
			prep := Token{
				Mode:      ModePrepare,
				Epoch:     s.deliverEpoch,
				Initiator: self,
				Vector:    make([]uint64, s.env.Ring().Size()),
				Gen:       t.Gen,
				Origin:    t.Origin,
			}
			s.applyPrepare(&prep)
			s.passToken(prep)
			return
		}
		// Idle rotation: hold, then pass, advertising the current epoch
		// so a lagging member can catch up.
		t.Epoch = s.deliverEpoch
		s.holdThenPass(t)

	case ModePrepare:
		if t.Initiator == self {
			if s.rec != nil && !s.initiating {
				return // disowned round: a newer lineage superseded it
			}
			// Vector complete: disseminate it.
			t.Mode = ModeSwitch
			s.learnVector(t.Vector, t.Epoch)
			s.passToken(t)
			return
		}
		if s.rec != nil && t.Epoch > s.deliverEpoch {
			s.forceAdvance(t.Epoch)
		}
		s.applyPrepare(&t)
		s.passToken(t)

	case ModeSwitch:
		if t.Initiator == self {
			if s.rec != nil && !s.initiating {
				return
			}
			// Everyone has the vector; start the flush round.
			t.Mode = ModeFlush
			s.forwardFlushWhenDone(t)
			return
		}
		if s.rec != nil {
			if t.Epoch > s.deliverEpoch {
				s.forceAdvance(t.Epoch)
			}
			if t.Epoch == s.deliverEpoch && !s.Switching() {
				// Late join: the round's PREPARE skipped this member
				// (it was suspected). Redirect now; the vector is
				// already fixed without its counts.
				s.setSendEpoch(t.Epoch + 1)
				s.obs.Record(obs.Phase(s.env.Now(), self, uint8(ModeSwitch), t.Epoch, t.Gen))
			}
		}
		s.learnVector(t.Vector, t.Epoch)
		s.passToken(t)

	case ModeFlush:
		if t.Initiator == self {
			if s.rec != nil && !s.initiating {
				return
			}
			// The flush completed the full circle: every member has
			// delivered all old-protocol messages.
			rec := Record{
				Initiator: self,
				Epoch:     t.Epoch,
				Started:   s.started,
				Finished:  s.env.Now(),
				Gen:       t.Gen,
			}
			s.records = append(s.records, rec)
			s.initiating = false
			s.obs.Record(obs.SwitchComplete(rec.Finished, self, t.Epoch, t.Gen, rec.Duration()))
			if s.cfg.OnSwitchComplete != nil {
				s.cfg.OnSwitchComplete(rec)
			}
			s.holdThenPass(Token{
				Mode:      ModeNormal,
				Epoch:     s.deliverEpoch,
				Initiator: self,
				Gen:       t.Gen,
				Origin:    t.Origin,
			})
			return
		}
		if s.rec != nil && !s.Switching() && s.deliverEpoch <= t.Epoch {
			// This member missed the whole round (it was out of the
			// ring): adopt the flushed epoch and forward.
			s.forceAdvance(t.Epoch + 1)
		}
		s.forwardFlushWhenDone(t)
	}
}

// setSendEpoch advances the epoch new sends go to. This is the atomic
// key-roll point of the authenticated session: outgoing frames seal
// under the new epoch's derived key from this instant, the grace window
// for the previous epoch's key opens (rollEpochKey), and every
// epoch-aware sub-layer is told the new epoch so per-epoch MAC keys and
// replay windows roll with the switch round instead of resetting.
func (s *Switch) setSendEpoch(epoch uint64) {
	// Flush any pending batch first: frames accumulated under the old
	// sealing epoch must go out under it, never coalesce with frames
	// sealed after the roll (the epoch-flush rule, DESIGN §9).
	if s.batch != nil {
		s.batch.flush()
	}
	s.sendEpoch = epoch
	for _, p := range s.protos {
		p.SetEpoch(epoch)
	}
	s.rollEpochKey()
}

// applyPrepare redirects sending to the new epoch (first PREPARE for the
// current epoch) and records this member's send count in the token's
// vector. On a recovery retry the member has already redirected — or
// even completed — and simply reports its retained, now-final count.
func (s *Switch) applyPrepare(t *Token) {
	if t.Epoch == s.deliverEpoch && !s.Switching() {
		s.setSendEpoch(t.Epoch + 1)
		s.obs.Record(obs.Phase(s.env.Now(), s.env.Self(), uint8(ModePrepare), t.Epoch, t.Gen))
	}
	if t.Epoch >= s.sendEpoch {
		return // defensive: an epoch still open for sends; count not final
	}
	pos := s.env.Ring().Position(s.env.Self())
	if pos >= 0 && pos < len(t.Vector) {
		t.Vector[pos] = s.sent[t.Epoch]
	}
}

// forceAdvance abandons epochs this member can no longer close (it
// missed their switch rounds while out of the ring) and adopts the
// ring's epoch, releasing buffered future-epoch messages in epoch order.
// Old-epoch messages still owed to this member are given up — the
// non-atomic crash boundary documented in DESIGN.md E10/E13.
func (s *Switch) forceAdvance(target uint64) {
	for s.deliverEpoch < target {
		old := s.deliverEpoch
		s.deliverEpoch++
		s.expected = nil
		delete(s.recv, old)
		s.stats.ForcedAdvances++
		s.obs.Record(obs.EpochForced(s.env.Now(), s.env.Self(), s.deliverEpoch))
		pend := s.buffer[s.deliverEpoch]
		delete(s.buffer, s.deliverEpoch)
		for _, b := range pend {
			s.app.Deliver(b.src, b.payload)
		}
	}
	for e := range s.sent {
		if e+1 < s.deliverEpoch {
			delete(s.sent, e)
		}
	}
	if s.sendEpoch < s.deliverEpoch {
		s.setSendEpoch(s.deliverEpoch)
	}
	if s.rec != nil {
		s.rec.noteEpoch(s.deliverEpoch)
	}
	if s.heldFlush != nil {
		t := *s.heldFlush
		s.heldFlush = nil
		s.forwardFlushWhenDone(t)
	}
}

// learnVector records the closing epoch's expected counts and checks
// for completion.
func (s *Switch) learnVector(vector []uint64, epoch uint64) {
	if epoch != s.deliverEpoch {
		return // already completed this switch
	}
	s.expected = make([]uint64, len(vector))
	copy(s.expected, vector)
	s.checkComplete()
}

// checkComplete finishes the local switch once every expected
// old-protocol message has been delivered.
func (s *Switch) checkComplete() {
	if s.expected == nil || !s.Switching() {
		return
	}
	have := s.recv[s.deliverEpoch]
	for pos, want := range s.expected {
		var got uint64
		if have != nil {
			got = have[pos]
		}
		if got < want {
			return
		}
	}
	// All old messages delivered: move to the new epoch and release the
	// buffered messages in arrival order. The closed epoch's send count
	// is retained for one round so a recovery retry of the switch can
	// still collect it.
	old := s.deliverEpoch
	s.deliverEpoch = s.sendEpoch
	s.expected = nil
	delete(s.recv, old)
	for e := range s.sent {
		if e+1 < s.deliverEpoch {
			delete(s.sent, e)
		}
	}
	s.stats.SwitchesCompleted++
	s.obs.Record(obs.EpochAdvance(s.env.Now(), s.env.Self(), s.deliverEpoch))
	if s.rec != nil {
		s.rec.noteEpoch(s.deliverEpoch)
	}
	pend := s.buffer[s.deliverEpoch]
	delete(s.buffer, s.deliverEpoch)
	for _, b := range pend {
		s.app.Deliver(b.src, b.payload)
	}
	if s.heldFlush != nil {
		t := *s.heldFlush
		s.heldFlush = nil
		s.forwardFlushWhenDone(t)
	}
}

// forwardFlushWhenDone passes a FLUSH token if this member has completed
// the switch it flushes, otherwise holds it.
func (s *Switch) forwardFlushWhenDone(t Token) {
	if s.deliverEpoch > t.Epoch {
		s.passToken(t)
		return
	}
	s.heldFlush = &t
}

// holdThenPass keeps the token for the configured interval, then passes
// it on (idle rotation pacing).
func (s *Switch) holdThenPass(t Token) {
	s.obs.Record(obs.TokenHold(s.env.Now(), s.env.Self(), uint8(t.Mode), t.Epoch, t.Gen))
	s.timer = s.env.After(s.cfg.TokenInterval, func() {
		if s.stopped {
			return
		}
		// A request may have arrived while holding the NORMAL token.
		if t.Mode == ModeNormal && s.wantSwitch && !s.Switching() {
			s.onToken(t)
			return
		}
		s.passToken(t)
	})
}

// passToken sends the token to the ring successor — skipping suspected
// members when recovery is enabled — or loops it back when this member
// is alone (singleton group, or sole survivor).
func (s *Switch) passToken(t Token) {
	var succ ids.ProcID
	if s.rec != nil {
		succ = s.rec.successor(s.env.Self())
	} else {
		var err error
		succ, err = s.env.Ring().Successor(s.env.Self())
		if err != nil {
			return
		}
	}
	s.stats.TokenPasses++
	s.obs.Record(obs.TokenPass(s.env.Now(), s.env.Self(), succ, uint8(t.Mode), t.Epoch, t.Gen))
	if succ == s.env.Self() {
		s.timer = s.env.After(s.cfg.TokenInterval, func() {
			if s.stopped {
				return
			}
			s.onToken(t)
		})
		return
	}
	_ = s.ctl.Send(succ, t.Encode())
}
