// Live demonstration for the Causal Order extension (see
// property.CausalOrder): like Reliability in §6.3, causal order lacks a
// meta-property (Delayable) and so falls outside the provably-SP-safe
// class — yet the switching protocol preserves it, because its
// old-before-new delivery boundary subsumes every cross-epoch causal
// dependency.
package switching_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/causal"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func causalPair() []switching.ProtocolFactory {
	mk := func(proto.Env) []proto.Layer {
		return []proto.Layer{causal.New(), fifo.New(fifo.Config{})}
	}
	return []switching.ProtocolFactory{mk, mk}
}

// TestCausalOrderPreservedAcrossSwitch drives a conversation (each
// message causally replies to the previous one) across a switch, under
// jitter, and checks the app-level trace satisfies Causal Order.
func TestCausalOrderPreservedAcrossSwitch(t *testing.T) {
	netCfg := simnet.Config{
		Nodes:     4,
		PropDelay: 300 * time.Microsecond,
		Jitter:    2 * time.Millisecond,
	}
	c := newCluster(t, 41, netCfg, 4, switching.Config{Protocols: causalPair()})
	var sent []ptest.SentMsg

	// A causal conversation: member (i mod 4) speaks only after
	// delivering the previous utterance.
	const rounds = 12
	utterance := 0
	var speak func()
	speak = func() {
		if utterance >= rounds {
			return
		}
		p := ids.ProcID(utterance % 4)
		m := appMsg(p, uint32(utterance), fmt.Sprintf("turn-%02d", utterance))
		s, err := c.CastApp(m)
		if err != nil {
			t.Error(err)
			return
		}
		sent = append(sent, s)
		utterance++
		// Next speaker waits until it has delivered this turn.
		next := ids.ProcID(utterance % 4)
		want := utterance
		var poll func()
		poll = func() {
			bodies, err := c.AppBodies(next)
			if err != nil {
				t.Error(err)
				return
			}
			if len(bodies) >= want {
				speak()
				return
			}
			c.Sim.After(500*time.Microsecond, poll)
		}
		c.Sim.After(500*time.Microsecond, poll)
	}
	c.Sim.At(time.Millisecond, func() { speak() })
	// Switch in the middle of the conversation.
	c.Sim.At(25*time.Millisecond, func() { c.Members[2].Switch.RequestSwitch() })
	c.Run(30 * time.Second)
	c.Stop()

	for p := 0; p < 4; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != rounds {
			t.Fatalf("member %d delivered %d/%d turns", p, len(bodies), rounds)
		}
	}
	if c.Members[0].Switch.Epoch() != 1 {
		t.Fatal("switch did not complete")
	}
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	if !(property.CausalOrder{}).Holds(tr) {
		t.Error("Causal Order violated across the switch — the SP's old-before-new boundary should subsume causality")
	}
	// The conversation pattern makes each turn causally follow the
	// previous: every member must deliver turns in sequence.
	for p := 0; p < 4; p++ {
		bodies, _ := c.AppBodies(ids.ProcID(p))
		for i, b := range bodies {
			if b != fmt.Sprintf("turn-%02d", i) {
				t.Fatalf("member %d out of causal sequence: %v", p, bodies)
			}
		}
	}
}

// TestCausalOrderRandomizedAcrossSwitches stresses the same claim with
// random concurrent traffic and two switches.
func TestCausalOrderRandomizedAcrossSwitches(t *testing.T) {
	for seed := int64(50); seed < 54; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			netCfg := simnet.Config{
				Nodes:     4,
				PropDelay: 300 * time.Microsecond,
				Jitter:    time.Millisecond,
				DropProb:  0.05,
			}
			c := newCluster(t, seed, netCfg, 4, switching.Config{Protocols: causalPair()})
			var sent []ptest.SentMsg
			rng := c.Sim.Rand()
			total := 16 + rng.Intn(8)
			for i := 0; i < total; i++ {
				at := time.Duration(rng.Intn(120)) * time.Millisecond
				i := i
				c.Sim.At(at, func() {
					p := ids.ProcID(i % 4)
					s, err := c.CastApp(appMsg(p, uint32(i), fmt.Sprintf("m%02d", i)))
					if err != nil {
						t.Error(err)
						return
					}
					sent = append(sent, s)
				})
			}
			c.Sim.At(30*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
			c.Sim.At(90*time.Millisecond, func() { c.Members[3].Switch.RequestSwitch() })
			c.Run(60 * time.Second)
			c.Stop()
			for p := 0; p < 4; p++ {
				bodies, err := c.AppBodies(ids.ProcID(p))
				if err != nil {
					t.Fatal(err)
				}
				if len(bodies) != total {
					t.Fatalf("member %d delivered %d/%d", p, len(bodies), total)
				}
			}
			tr, err := c.TraceTimed(sent)
			if err != nil {
				t.Fatal(err)
			}
			if !(property.CausalOrder{}).Holds(tr) {
				t.Error("Causal Order violated")
			}
		})
	}
}
