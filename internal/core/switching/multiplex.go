// Package switching implements the paper's contribution: a generic
// switching protocol (SP) layered over interchangeable protocols, which
// guarantees that every process delivers all messages of the old
// protocol before any message of the new one (§2).
//
// The package provides the three components of Figure 1:
//
//   - Multiplex — simulates multiple private connections over the single
//     shared transport, one per sub-protocol plus one for the SP itself;
//   - Switch — the SP proper, driven by a token rotating on a logical
//     ring through NORMAL → PREPARE → SWITCH(vector) → FLUSH;
//   - oracles — pluggable policies deciding *when* to switch (the paper
//     treats "which protocol is best" as an orthogonal problem decided
//     by "some kind of oracle").
package switching

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Multiplex routes one transport's packets to multiple logical channels.
// Each channel behaves as a private connection: Figure 1 of the paper
// requires one for the switching protocol itself and one per underlying
// protocol.
type Multiplex struct {
	down proto.Down
	ups  map[ids.ChannelID]proto.Up
	// dropped counts packets for unbound channels.
	dropped uint64
	// onMalformed, if set, is told about packets whose channel header
	// failed to decode (the Switch routes these into its defensive
	// ingress accounting).
	onMalformed func(src ids.ProcID)
}

// NewMultiplex creates a multiplexer over the given transport.
func NewMultiplex(down proto.Down) (*Multiplex, error) {
	if down == nil {
		return nil, fmt.Errorf("switching: multiplex needs a transport")
	}
	return &Multiplex{down: down, ups: make(map[ids.ChannelID]proto.Up)}, nil
}

// Bind attaches the receiver for one channel. Rebinding replaces it.
func (m *Multiplex) Bind(ch ids.ChannelID, up proto.Up) {
	m.ups[ch] = up
}

// Dropped returns the number of packets discarded for unbound channels.
func (m *Multiplex) Dropped() uint64 { return m.dropped }

// Recv routes an incoming transport packet to its channel's receiver.
// Wire the node's network handler here.
func (m *Multiplex) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	ch := d.Channel()
	if d.Err() != nil {
		m.dropped++
		if m.onMalformed != nil {
			m.onMalformed(src)
		}
		return
	}
	up, ok := m.ups[ch]
	if !ok {
		m.dropped++
		return
	}
	up.Deliver(src, d.Remaining())
}

// Port returns the Down endpoint of one channel: everything pushed into
// it is tagged with the channel id and sent on the shared transport.
func (m *Multiplex) Port(ch ids.ChannelID) proto.Down {
	return muxPort{m: m, ch: ch}
}

type muxPort struct {
	m  *Multiplex
	ch ids.ChannelID
}

var _ proto.Down = muxPort{}

// The channel tag rides a pooled encoder: everything below the mux —
// batcher, envelope, transport — consumes or copies the frame
// synchronously, so the buffer is free again when the call returns.

func (p muxPort) Cast(payload []byte) error {
	e := wire.GetEncoder()
	e.Channel(p.ch)
	err := p.m.down.Cast(e.Frame(payload))
	wire.PutEncoder(e)
	return err
}

func (p muxPort) Send(dst ids.ProcID, payload []byte) error {
	e := wire.GetEncoder()
	e.Channel(p.ch)
	err := p.m.down.Send(dst, e.Frame(payload))
	wire.PutEncoder(e)
	return err
}
