// The paper's §5.1 thought experiment, live: "consider the property
// every second message is eventually delivered. If an application sends
// two messages, and a switch occurs in between, the property may well
// be violated since the underlying protocols have no requirement to
// deliver either message."
package switching_test

import (
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/evenonly"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
)

func everySecondPair() []switching.ProtocolFactory {
	mk := func(proto.Env) []proto.Layer {
		return []proto.Layer{evenonly.New(), seqorder.New(0), fifo.New(fifo.Config{})}
	}
	return []switching.ProtocolFactory{mk, mk}
}

// TestEverySecondViolatedAcrossSwitch: the sender's globally second
// message rides the new protocol as *its* first — odd, obligation-free,
// dropped. Each protocol honoured its contract; the composition did
// not.
//
// A side observation the paper leaves implicit: such a
// not-everything-delivered protocol also breaks the SP's §2 liveness
// assumption — the switch below never *completes* (the dropped message
// stays in the send-count vector), even though the safety-level
// violation is already visible. §5.1 can get away with this because
// the paper explicitly scopes its analysis to safety properties.
func TestEverySecondViolatedAcrossSwitch(t *testing.T) {
	c := newCluster(t, 71, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3,
		switching.Config{Protocols: everySecondPair()})
	var sent []ptest.SentMsg
	cast := func(seq uint32, body string) {
		m := appMsg(0, seq, body)
		s, err := c.CastApp(m)
		if err != nil {
			t.Error(err)
			return
		}
		sent = append(sent, s)
	}
	// Message #1 on protocol A (odd there: dropped, fine).
	c.Sim.At(time.Millisecond, func() { cast(1, "first") })
	// The switch lands between the two sends...
	c.Sim.At(10*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	// ...so message #2 (globally even, owed delivery) is protocol B's
	// local #1 — and B drops it.
	c.Sim.At(300*time.Millisecond, func() { cast(2, "second") })
	c.Run(10 * time.Second)
	c.Stop()

	for p := 0; p < 3; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != 0 {
			t.Fatalf("member %d delivered %v — both messages should have been dropped as locally odd", p, bodies)
		}
	}
	tr, err := c.TraceTimed(sent)
	if err != nil {
		t.Fatal(err)
	}
	es := property.EverySecondDelivered{Group: ids.Procs(3)}
	if es.Holds(tr) {
		t.Error("Every Second Delivered held across the switch — expected the §5.1 violation")
	}

	// Control: without a switch, the same two sends satisfy the
	// property (the second is delivered).
	c2 := newCluster(t, 72, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3,
		switching.Config{Protocols: everySecondPair()})
	var sent2 []ptest.SentMsg
	for i, at := range []time.Duration{time.Millisecond, 10 * time.Millisecond} {
		i := i
		at := at
		c2.Sim.At(at, func() {
			m := appMsg(0, uint32(i+1), []string{"first", "second"}[i])
			s, err := c2.CastApp(m)
			if err != nil {
				t.Error(err)
				return
			}
			sent2 = append(sent2, s)
		})
	}
	c2.Run(10 * time.Second)
	c2.Stop()
	tr2, err := c2.TraceTimed(sent2)
	if err != nil {
		t.Fatal(err)
	}
	if !es.Holds(tr2) {
		t.Error("without a switch, the protocol must honour its own contract")
	}
}
