package switching

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
)

type recDown struct {
	casts [][]byte
	sends []struct {
		dst ids.ProcID
		b   []byte
	}
}

func (d *recDown) Cast(b []byte) error {
	d.casts = append(d.casts, append([]byte(nil), b...))
	return nil
}

func (d *recDown) Send(dst ids.ProcID, b []byte) error {
	d.sends = append(d.sends, struct {
		dst ids.ProcID
		b   []byte
	}{dst, append([]byte(nil), b...)})
	return nil
}

func TestMultiplexRouting(t *testing.T) {
	down := &recDown{}
	m, err := NewMultiplex(down)
	if err != nil {
		t.Fatal(err)
	}
	var gotA, gotB []string
	m.Bind(ids.ChannelID(2), proto.UpFunc(func(_ ids.ProcID, b []byte) { gotA = append(gotA, string(b)) }))
	m.Bind(ids.ChannelID(3), proto.UpFunc(func(_ ids.ProcID, b []byte) { gotB = append(gotB, string(b)) }))
	if err := m.Port(2).Cast([]byte("to-A")); err != nil {
		t.Fatal(err)
	}
	if err := m.Port(3).Send(1, []byte("to-B")); err != nil {
		t.Fatal(err)
	}
	// Loop the framed packets back through Recv.
	m.Recv(0, down.casts[0])
	m.Recv(0, down.sends[0].b)
	if len(gotA) != 1 || gotA[0] != "to-A" {
		t.Errorf("channel 2 got %v", gotA)
	}
	if len(gotB) != 1 || gotB[0] != "to-B" {
		t.Errorf("channel 3 got %v", gotB)
	}
	if down.sends[0].dst != 1 {
		t.Errorf("send dst = %v", down.sends[0].dst)
	}
}

func TestMultiplexUnboundChannelDropped(t *testing.T) {
	m, err := NewMultiplex(&recDown{})
	if err != nil {
		t.Fatal(err)
	}
	down := &recDown{}
	m2, err := NewMultiplex(down)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Port(9).Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	m.Recv(0, down.casts[0])
	if m.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", m.Dropped())
	}
}

func TestMultiplexGarbageDropped(t *testing.T) {
	m, err := NewMultiplex(&recDown{})
	if err != nil {
		t.Fatal(err)
	}
	m.Recv(0, nil)
	if m.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", m.Dropped())
	}
}

func TestMultiplexNilTransport(t *testing.T) {
	if _, err := NewMultiplex(nil); err == nil {
		t.Error("NewMultiplex accepted nil transport")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	in := Token{Mode: ModeSwitch, Epoch: 42, Initiator: 3, Vector: []uint64{1, 0, 7}}
	out, err := DecodeToken(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != in.Mode || out.Epoch != in.Epoch || out.Initiator != in.Initiator {
		t.Errorf("round trip = %+v", out)
	}
	if len(out.Vector) != 3 || out.Vector[2] != 7 {
		t.Errorf("vector = %v", out.Vector)
	}
}

func TestTokenDecodeErrors(t *testing.T) {
	if _, err := DecodeToken(nil); err == nil {
		t.Error("decoded empty token")
	}
	bad := Token{Mode: Mode(99), Initiator: 0}
	if _, err := DecodeToken(bad.Encode()); err == nil {
		t.Error("decoded token with invalid mode")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeNormal:  "NORMAL",
		ModePrepare: "PREPARE",
		ModeSwitch:  "SWITCH",
		ModeFlush:   "FLUSH",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode renders empty")
	}
}

func TestThresholdOracle(t *testing.T) {
	o := ThresholdOracle{Threshold: 5}
	if o.Preferred(4.9) != 0 || o.Preferred(5) != 1 || o.Preferred(100) != 1 {
		t.Error("threshold oracle misclassified")
	}
}

func TestHysteresisOracle(t *testing.T) {
	o, err := NewHysteresisOracle(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if o.Preferred(5) != 0 {
		t.Error("band value should keep initial protocol 0")
	}
	if o.Preferred(7) != 1 {
		t.Error("crossing High should pick protocol 1")
	}
	if o.Preferred(5) != 1 {
		t.Error("band value should keep protocol 1 once there")
	}
	if o.Preferred(3.9) != 0 {
		t.Error("falling below Low should return to protocol 0")
	}
}

func TestHysteresisValidation(t *testing.T) {
	if _, err := NewHysteresisOracle(7, 4); err == nil {
		t.Error("accepted inverted band")
	}
	if _, err := NewHysteresisOracle(4, 4); err == nil {
		t.Error("accepted empty band")
	}
}

func TestRecordDuration(t *testing.T) {
	r := Record{Started: 10, Finished: 25}
	if r.Duration() != 15 {
		t.Errorf("Duration = %v", r.Duration())
	}
}

func TestLatencyTracker(t *testing.T) {
	tr := NewLatencyTracker(0.5)
	if tr.Mean() != 0 || tr.Count() != 0 {
		t.Error("fresh tracker not zero")
	}
	tr.Observe(10 * time.Millisecond)
	if tr.Mean() != 10*time.Millisecond {
		t.Errorf("first sample Mean = %v", tr.Mean())
	}
	tr.Observe(20 * time.Millisecond)
	if tr.Mean() != 15*time.Millisecond { // 0.5*20 + 0.5*10
		t.Errorf("EWMA = %v, want 15ms", tr.Mean())
	}
	if tr.MetricMillis() != 15 {
		t.Errorf("MetricMillis = %v", tr.MetricMillis())
	}
	if tr.Count() != 2 {
		t.Errorf("Count = %d", tr.Count())
	}
	// Recency bias: a burst of slow samples dominates quickly.
	for i := 0; i < 10; i++ {
		tr.Observe(100 * time.Millisecond)
	}
	if tr.Mean() < 90*time.Millisecond {
		t.Errorf("EWMA too sluggish: %v", tr.Mean())
	}
	// Bad alpha defaults sanely.
	def := NewLatencyTracker(7)
	def.Observe(time.Millisecond)
	def.Observe(3 * time.Millisecond)
	if def.Mean() <= time.Millisecond || def.Mean() >= 3*time.Millisecond {
		t.Errorf("default-alpha EWMA = %v", def.Mean())
	}
}
