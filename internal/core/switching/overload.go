package switching

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/wire"
)

// OverloadConfig enables the overload-protection layer: bounded
// per-peer ingress queues with paced service, a bounded egress queue
// with watermark-based backpressure toward local senders, deterministic
// drop-newest load shedding when a hard limit is hit, and a seeded,
// jittered retry/backoff for application sends rejected at the egress
// limit.
//
// Nil Config.Overload preserves the legacy message path exactly: no
// queueing, no pacing, no shedding. With the layer enabled, switch-round
// control frames (the token channel) and failure-detector heartbeats
// always bypass the ingress queue — overload must never stall the
// switch state machine or make the ring suspect healthy members.
//
// An ingress shed is indistinguishable from network loss to the layers
// above, so reliable sub-protocols (fifo) repair it by retransmission;
// an egress shed abandons the send after the retry budget and is
// final. Both are counted (Stats.Shed, obs.EvShed) — shedding is loud,
// never silent.
type OverloadConfig struct {
	// IngressQueueCap bounds each peer's ingress queue of data frames
	// (frames beyond it are shed drop-newest). Required, positive.
	IngressQueueCap int
	// EgressQueueCap bounds the queue of outgoing application casts.
	// Required, positive.
	EgressQueueCap int
	// LowWatermark and HighWatermark drive backpressure on the egress
	// queue depth: crossing High pauses local senders
	// (OnBackpressure(true), Stats.Backpressured), draining back to Low
	// resumes them. Defaults: High = 3/4 of EgressQueueCap, Low =
	// High/3. When both are set, Low must be below High.
	LowWatermark  int
	HighWatermark int
	// ServiceInterval paces both queues: one ingress frame is handed to
	// the demultiplexer and one egress cast is handed to the active
	// protocol per interval — the model of bounded processing capacity
	// that makes overload observable. Defaults to TokenInterval/4.
	ServiceInterval time.Duration
	// RetryBackoff is the base delay before retrying an application
	// send rejected at the egress cap; attempt k waits
	// RetryBackoff << (k-1) plus a seeded jitter of up to half that.
	// Defaults to 2*ServiceInterval.
	RetryBackoff time.Duration
	// MaxRetryShift caps the exponential backoff shift and doubles as
	// the retry budget: after MaxRetryShift failed attempts the send is
	// shed for good. Defaults to 4; must be in [0, 16].
	MaxRetryShift int
	// OnBackpressure, if set, is invoked on every pause (true) / resume
	// (false) transition of the egress watermarks.
	OnBackpressure func(paused bool)
	// BatchMax, when > 1, enables egress frame batching: each egress
	// service tick drains up to BatchMax same-epoch casts instead of
	// one, and every mux frame generated within one event-loop step
	// coalesces into a single sealed wire write per destination (one
	// envelope — and in auth mode one MAC — per batch; see batch.go).
	// 0 or 1 preserves the legacy one-frame-per-write format exactly.
	// Must be set uniformly across the group: an unbatched receiver
	// counts batch frames as malformed. Must be at most 256.
	BatchMax int
}

// Validate checks the overload knobs (Config.Validate calls this).
func (c OverloadConfig) Validate() error {
	if c.IngressQueueCap <= 0 {
		return fmt.Errorf("switching: overload ingress queue cap %d must be positive", c.IngressQueueCap)
	}
	if c.EgressQueueCap <= 0 {
		return fmt.Errorf("switching: overload egress queue cap %d must be positive", c.EgressQueueCap)
	}
	if c.LowWatermark < 0 || c.HighWatermark < 0 {
		return fmt.Errorf("switching: negative overload watermark")
	}
	if c.HighWatermark > 0 && c.LowWatermark >= c.HighWatermark {
		return fmt.Errorf("switching: overload low watermark %d must be below high watermark %d",
			c.LowWatermark, c.HighWatermark)
	}
	if c.HighWatermark > c.EgressQueueCap {
		return fmt.Errorf("switching: overload high watermark %d above egress queue cap %d",
			c.HighWatermark, c.EgressQueueCap)
	}
	if c.ServiceInterval < 0 || c.RetryBackoff < 0 {
		return fmt.Errorf("switching: negative overload interval")
	}
	if c.MaxRetryShift < 0 || c.MaxRetryShift > 16 {
		return fmt.Errorf("switching: overload retry backoff shift %d out of range [0, 16]", c.MaxRetryShift)
	}
	if c.BatchMax < 0 || c.BatchMax > 256 {
		return fmt.Errorf("switching: overload batch max %d out of range [0, 256]", c.BatchMax)
	}
	return nil
}

// OverloadAccounting is the overload layer's conservation ledger,
// snapshot at call time. Every message that crossed the layer is in
// exactly one bucket, so
//
//	IngressAdmitted == IngressServed + IngressQueued
//	Casts           == EgressAdmitted + EgressRetrying + EgressShed
//	EgressAdmitted  == EgressSent + EgressQueued
//
// hold at every virtual instant — the no-silent-loss invariant the
// chaos harness checks after every run. The MaxDepth fields are
// high-water marks proving bounded memory against the caps.
type OverloadAccounting struct {
	// Casts is every application cast that entered the layer.
	Casts uint64
	// IngressAdmitted counts data frames accepted into a per-peer
	// ingress queue; IngressServed those handed on to the
	// demultiplexer; IngressShed those dropped at the cap (shed frames
	// are in no other bucket — they left the system, loudly).
	IngressAdmitted uint64
	IngressServed   uint64
	IngressShed     uint64
	// IngressQueued is the frames currently queued across all peers.
	IngressQueued uint64
	// IngressMaxDepth is the deepest any single per-peer queue ever got.
	IngressMaxDepth int
	// EgressAdmitted counts casts accepted into the egress queue
	// (possibly after retries); EgressSent those handed to the active
	// protocol; EgressShed those abandoned after the retry budget.
	EgressAdmitted uint64
	EgressSent     uint64
	EgressShed     uint64
	// EgressQueued and EgressRetrying are the casts currently queued
	// and currently waiting on a scheduled retry.
	EgressQueued   uint64
	EgressRetrying uint64
	// EgressMaxDepth is the deepest the egress queue ever got.
	EgressMaxDepth int
	// IngressCap and EgressCap echo the configured caps (zero means
	// the layer is disabled and the ledger is empty).
	IngressCap, EgressCap int
}

// ingressQ is one peer's bounded ingress queue. A head index instead
// of re-slicing keeps the backing array reusable: serving a frame
// advances head, and an emptied queue resets to its full capacity, so
// the steady state appends without reallocating.
type ingressQ struct {
	frames [][]byte
	head   int
}

func (q *ingressQ) depth() int { return len(q.frames) - q.head }

func (q *ingressQ) push(pkt []byte) { q.frames = append(q.frames, pkt) }

func (q *ingressQ) pop() []byte {
	pkt := q.frames[q.head]
	q.frames[q.head] = nil // release for GC: the slot may idle in the backing array
	q.head++
	if q.head == len(q.frames) {
		q.frames = q.frames[:0]
		q.head = 0
	}
	return pkt
}

// egressEntry is one queued (or retrying) application cast. The epoch
// is captured when the application called Cast, so the wire frame and
// any caller-side epoch tagging agree even when the send is delayed
// across a switch round.
type egressEntry struct {
	frame []byte
	epoch uint64
}

// overload is one member's overload-protection state.
type overload struct {
	s   *Switch
	cfg OverloadConfig

	// ingress holds per-peer bounded queues of verified mux frames;
	// service is one frame per interval, round-robin in ring order
	// (serveIdx) so draining is deterministic. members caches the ring
	// order (Ring.Members copies on every call — too hot for a per-tick
	// path) and serveFn/drainFn are the timer callbacks, bound once so
	// arming a timer does not allocate a method-value closure.
	ingress      map[ids.ProcID]*ingressQ
	members      []ids.ProcID
	serveFn      func()
	drainFn      func()
	serveIdx     int
	draining     bool
	ingressTimer proto.Timer

	// egress is the bounded queue of outgoing casts; paused is the
	// backpressure state; retrying counts casts waiting on a retry.
	egress      []egressEntry
	sending     bool
	egressTimer proto.Timer
	paused      bool
	retrying    uint64

	// shedBy is the per-peer ingress shed breakdown (lazy).
	shedBy map[ids.ProcID]uint64

	acct OverloadAccounting
}

// newOverload normalizes the defaults and builds the layer.
func newOverload(s *Switch, cfg OverloadConfig) (*overload, error) {
	if cfg.ServiceInterval == 0 {
		cfg.ServiceInterval = s.cfg.TokenInterval / 4
		if cfg.ServiceInterval <= 0 {
			cfg.ServiceInterval = time.Millisecond
		}
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 2 * cfg.ServiceInterval
	}
	if cfg.MaxRetryShift == 0 {
		cfg.MaxRetryShift = 4
	}
	if cfg.HighWatermark == 0 {
		cfg.HighWatermark = cfg.EgressQueueCap * 3 / 4
		if cfg.HighWatermark < 1 {
			cfg.HighWatermark = 1
		}
	}
	if cfg.LowWatermark == 0 {
		cfg.LowWatermark = cfg.HighWatermark / 3
	}
	if cfg.LowWatermark >= cfg.HighWatermark {
		return nil, fmt.Errorf("switching: overload low watermark %d must be below high watermark %d",
			cfg.LowWatermark, cfg.HighWatermark)
	}
	o := &overload{
		s:       s,
		cfg:     cfg,
		ingress: make(map[ids.ProcID]*ingressQ),
	}
	o.serveFn = o.serveIngress
	o.drainFn = o.drainEgress
	o.acct.IngressCap = cfg.IngressQueueCap
	o.acct.EgressCap = cfg.EgressQueueCap
	return o, nil
}

func (o *overload) stop() {
	if o.ingressTimer != nil {
		o.ingressTimer.Stop()
	}
	if o.egressTimer != nil {
		o.egressTimer.Stop()
	}
}

// shed counts one shed message at the exact site its event is recorded.
func (o *overload) shed(peer ids.ProcID, reason int64, depth int) {
	s := o.s
	s.stats.Shed++
	if reason == obs.ShedIngress {
		if o.shedBy == nil {
			o.shedBy = make(map[ids.ProcID]uint64)
		}
		o.shedBy[peer]++
	}
	s.obs.Record(obs.Shed(s.env.Now(), s.env.Self(), peer, reason, depth))
}

// --- ingress ---

// admitIngress classifies one verified transport frame. It returns
// false for frames the overload layer must never touch — the token
// channel and failure-detector heartbeats, which keep their direct
// path — and for frames whose channel header does not decode (the
// demultiplexer owns malformed accounting). Everything else is consumed:
// queued under its sender, or shed drop-newest at the cap. owned tells
// the layer the frame's bytes already outlive the network callback
// (recvBatch copies a whole batch body once and admits aliasing
// sub-slices); otherwise the queue takes its own copy.
func (o *overload) admitIngress(src ids.ProcID, pkt []byte, owned bool) bool {
	d := wire.NewDecoder(pkt)
	ch := d.Channel()
	if d.Err() != nil || ch == ids.ControlChannel || ch == detectorChannel {
		return false
	}
	q := o.ingress[src]
	if q == nil {
		q = &ingressQ{}
		o.ingress[src] = q
	}
	if q.depth() >= o.cfg.IngressQueueCap {
		o.acct.IngressShed++
		o.shed(src, obs.ShedIngress, q.depth())
		return true
	}
	// Own the bytes: the frame outlives the network callback.
	if !owned {
		pkt = append([]byte(nil), pkt...)
	}
	q.push(pkt)
	o.acct.IngressAdmitted++
	if d := q.depth(); d > o.acct.IngressMaxDepth {
		o.acct.IngressMaxDepth = d
	}
	o.armIngress()
	return true
}

func (o *overload) armIngress() {
	if o.draining || o.s.stopped {
		return
	}
	o.draining = true
	o.ingressTimer = o.s.env.After(o.cfg.ServiceInterval, o.serveFn)
}

// serveIngress hands queued frames to the demultiplexer, round-robin
// over the ring order, then re-arms while work remains: one frame per
// service tick in the legacy configuration, up to BatchMax per tick
// with batching enabled — the ingress mirror of drainEgress's
// multi-drain. Serving a batch's worth of frames in one event is what
// lets the responses they trigger (a sequencer's ordered multicasts,
// acks) coalesce in the egress batcher instead of trickling out one
// wire write per served frame.
func (o *overload) serveIngress() {
	o.draining = false
	s := o.s
	if s.stopped {
		return
	}
	max := o.cfg.BatchMax
	if max < 1 {
		max = 1
	}
	if o.members == nil {
		o.members = s.env.Ring().Members()
	}
	members := o.members
	for n := 0; n < max && !s.stopped; n++ {
		served := false
		for range members {
			p := members[o.serveIdx%len(members)]
			o.serveIdx++
			q := o.ingress[p]
			if q == nil || q.depth() == 0 {
				continue
			}
			pkt := q.pop()
			o.acct.IngressServed++
			s.mux.Recv(p, pkt)
			served = true
			break
		}
		if !served {
			break
		}
	}
	if o.ingressQueued() > 0 {
		o.armIngress()
	}
}

func (o *overload) ingressQueued() int {
	n := 0
	for _, q := range o.ingress {
		n += q.depth()
	}
	return n
}

// --- egress ---

// admitCast runs one application cast through the egress queue. The
// epoch is stamped here — Cast time — so callers that tag payloads with
// the send epoch stay consistent even if the frame drains later.
func (o *overload) admitCast(payload []byte) error {
	s := o.s
	o.acct.Casts++
	epoch := s.sendEpoch
	// The queue retains the frame, so it must be independently owned:
	// one right-sized allocation via Frame (Prepend would cost two).
	e := wire.NewEncoder(10 + len(payload))
	e.Uvarint(epoch)
	ent := egressEntry{frame: e.Frame(payload), epoch: epoch}
	if len(o.egress) >= o.cfg.EgressQueueCap {
		o.scheduleRetry(ent, 1)
		return nil
	}
	o.enqueueEgress(ent)
	return nil
}

// enqueueEgress admits one cast: only now does it count toward the
// epoch's send vector, because only queued casts are guaranteed to go
// out (retrying casts may yet be shed, and a phantom count would wedge
// the switch round waiting for a message that never comes).
func (o *overload) enqueueEgress(ent egressEntry) {
	s := o.s
	s.sent[ent.epoch]++
	o.egress = append(o.egress, ent)
	o.acct.EgressAdmitted++
	if d := len(o.egress); d > o.acct.EgressMaxDepth {
		o.acct.EgressMaxDepth = d
	}
	if !o.paused && len(o.egress) >= o.cfg.HighWatermark {
		o.paused = true
		s.stats.Backpressured++
		s.obs.Record(obs.BackpressureOn(s.env.Now(), s.env.Self(), len(o.egress)))
		if o.cfg.OnBackpressure != nil {
			o.cfg.OnBackpressure(true)
		}
	}
	o.armEgress()
}

func (o *overload) armEgress() {
	if o.sending || o.s.stopped || len(o.egress) == 0 {
		return
	}
	o.sending = true
	o.egressTimer = o.s.env.After(o.cfg.ServiceInterval, o.drainFn)
}

// drainEgress hands queued casts to their epoch's protocol: one per
// service tick in the legacy configuration, up to BatchMax per tick
// with batching enabled — but only a same-epoch prefix, so a single
// tick's worth of frames (which the batcher coalesces into one wire
// write) never mixes epochs.
func (o *overload) drainEgress() {
	o.sending = false
	s := o.s
	if s.stopped || len(o.egress) == 0 {
		return
	}
	max := o.cfg.BatchMax
	if max < 1 {
		max = 1
	}
	epoch := o.egress[0].epoch
	for n := 0; n < max && len(o.egress) > 0 && o.egress[0].epoch == epoch; n++ {
		ent := o.egress[0]
		o.egress = o.egress[1:]
		o.acct.EgressSent++
		_ = s.protos[ent.epoch%uint64(len(s.protos))].Cast(ent.frame)
	}
	if o.paused && len(o.egress) <= o.cfg.LowWatermark {
		o.paused = false
		s.obs.Record(obs.BackpressureOff(s.env.Now(), s.env.Self(), len(o.egress)))
		if o.cfg.OnBackpressure != nil {
			o.cfg.OnBackpressure(false)
		}
	}
	o.armEgress()
}

// scheduleRetry backs off a cast rejected at the egress cap. Attempt k
// fires after RetryBackoff << (k-1) plus a jitter drawn from the
// member's seeded stream (deterministic in simulation); attempts past
// MaxRetryShift shed the cast for good.
func (o *overload) scheduleRetry(ent egressEntry, attempt int) {
	s := o.s
	if attempt > o.cfg.MaxRetryShift {
		o.acct.EgressShed++
		o.shed(obs.NoPeer, obs.ShedEgress, len(o.egress))
		return
	}
	backoff := o.cfg.RetryBackoff << (attempt - 1)
	backoff += time.Duration(s.env.Rand().Int63n(int64(backoff/2) + 1))
	s.stats.RetriedSends++
	s.obs.Record(obs.RetrySend(s.env.Now(), s.env.Self(), attempt, backoff))
	o.retrying++
	s.env.After(backoff, func() {
		if s.stopped {
			return // ledger freezes where it was: the cast stays "retrying"
		}
		o.retrying--
		if len(o.egress) < o.cfg.EgressQueueCap {
			o.enqueueEgress(ent)
			return
		}
		o.scheduleRetry(ent, attempt+1)
	})
}

// accounting snapshots the conservation ledger.
func (o *overload) accounting() OverloadAccounting {
	a := o.acct
	a.IngressQueued = uint64(o.ingressQueued())
	a.EgressQueued = uint64(len(o.egress))
	a.EgressRetrying = o.retrying
	return a
}

// OverloadAccounting returns the overload layer's conservation ledger
// (the zero value when Config.Overload is nil).
func (s *Switch) OverloadAccounting() OverloadAccounting {
	if s.ovl == nil {
		return OverloadAccounting{}
	}
	return s.ovl.accounting()
}

// Backpressured reports whether the egress watermarks currently ask
// local senders to pause (always false when Config.Overload is nil).
func (s *Switch) Backpressured() bool {
	return s.ovl != nil && s.ovl.paused
}

// ShedFrom returns how many ingress frames from peer p this member has
// shed at the queue cap.
func (s *Switch) ShedFrom(p ids.ProcID) uint64 {
	if s.ovl == nil {
		return 0
	}
	return s.ovl.shedBy[p]
}
