// Package viewswitch implements §8 of the paper as a first-class
// mechanism: "virtually synchronous view changes can be used to switch
// protocols, and this more complicated mechanism does support the
// Virtual Synchrony property."
//
// Where the token-ring switching protocol (package switching) keeps
// senders unblocked and makes do with six meta-properties, the view
// switch runs a coordinator-driven flush:
//
//  1. the coordinator multicasts FLUSH; every member *stops sending*
//     and reports how many messages it sent in the closing epoch;
//  2. the coordinator gathers all reports and multicasts the VIEW
//     (send-count vector, new membership, application view message);
//  3. each member delivers the remaining old-epoch messages, then
//     installs the view: it delivers the view message to the
//     application, switches to the new protocol, resumes sending.
//
// Every member therefore delivers the view message at the same point of
// its delivery order — after all old-protocol and before all
// new-protocol messages — which is exactly what Virtual Synchrony needs
// and the token-ring SP cannot give (§6.1: VS is not memoryless). The
// price is the blocked-sender window, measured against the SP in
// BenchmarkViewSwitchVsSP.
//
// Membership is part of the view: a process outside the current view
// cannot multicast (Cast returns ErrNotInView), mirroring virtually
// synchronous semantics and keeping the flush accounting exact.
package viewswitch

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fd"
	"repro/internal/protocols/fifo"
	"repro/internal/wire"
)

// detectorChannel is the failure detector's private multiplex channel.
// It reuses the value of ids.AppChannel, which is never multiplexed.
const detectorChannel = ids.AppChannel

// ErrNotInView is returned by Cast when the caller is outside the
// current view.
var ErrNotInView = errors.New("viewswitch: sender is not in the current view")

// ErrChangeInProgress is returned when a view change is already being
// flushed.
var ErrChangeInProgress = errors.New("viewswitch: view change already in progress")

// ErrNotCoordinator is returned when a non-coordinator requests a view
// change.
var ErrNotCoordinator = errors.New("viewswitch: only the coordinator may request view changes")

// Control-channel message kinds.
const (
	kindFlush  uint8 = iota + 1 // coordinator -> all: {epoch}
	kindReport                  // member -> coordinator: {epoch, sent}
	kindView                    // coordinator -> all: {epoch, vector, members, payload}
)

// Config configures a view-switch manager.
type Config struct {
	// Protocols are the interchangeable protocols; epoch e runs on
	// Protocols[e % len(Protocols)]. One protocol is allowed (pure
	// membership changes).
	Protocols []switching.ProtocolFactory
	// Coordinator drives view changes; defaults to the first ring
	// member.
	Coordinator ids.ProcID
	// Control tunes the reliable control channel.
	Control fifo.Config
	// OnViewInstalled, if set, fires at every member when it installs a
	// view.
	OnViewInstalled func(Installed)
	// Detector, if non-nil, runs a heartbeat failure detector on a
	// private channel. With AutoEvict set, the coordinator reacts to a
	// suspicion by evicting the suspect through a view change — the
	// crash tolerance the token-ring SP lacks (its token dies with the
	// member holding it).
	Detector *fd.Config
	// AutoEvict makes the coordinator evict suspected members
	// automatically. Requires Detector.
	AutoEvict bool
	// EvictView builds the application-level view message for an
	// automatic eviction. nil synthesizes a proto.AppMsg with IsView
	// set.
	EvictView func(members []ids.ProcID) []byte
}

// Installed describes one view installation at one member.
type Installed struct {
	// Epoch is the newly opened epoch.
	Epoch uint64
	// Members is the new view.
	Members []ids.ProcID
	// At is the local (virtual) installation time.
	At time.Duration
}

// Stats counts manager activity.
type Stats struct {
	ViewsInstalled uint64
	// BlockedCasts counts casts queued during a flush.
	BlockedCasts uint64
	// Buffered counts new-epoch arrivals held until installation.
	Buffered uint64
	// OutOfView counts casts rejected because the sender left the view.
	OutOfView uint64
	// StaleDropped counts arrivals for closed epochs.
	StaleDropped uint64
}

// Manager is one member's view-switch endpoint.
type Manager struct {
	cfg Config
	env proto.Env
	app proto.Up
	mux *switching.Multiplex

	ctl    *proto.Stack
	protos []*proto.Stack

	epoch uint64
	view  map[ids.ProcID]bool

	// sent counts own casts per epoch; recv counts arrivals per epoch
	// per ring position (the flush vector's currency).
	sent map[uint64]uint64
	recv map[uint64][]uint64

	// Flush state.
	flushing bool
	queued   [][]byte
	expected []uint64
	// pendingView is the VIEW message awaiting old-epoch completion.
	pendingView *viewMsg
	buffer      map[uint64][]bufEntry

	// Coordinator state.
	collecting bool
	reports    map[ids.ProcID]uint64
	// reportRecv holds each live member's per-sender arrival counts for
	// the closing epoch — the basis for a crashed member's vector entry
	// (the minimum every survivor already has).
	reportRecv  map[ids.ProcID][]uint64
	dead        map[ids.ProcID]bool
	viewTarget  []ids.ProcID
	viewPayload []byte
	started     time.Duration
	records     []Record

	detector *fd.Detector
	stopped  bool
	stats    Stats
}

type viewMsg struct {
	epoch   uint64
	vector  []uint64
	members []ids.ProcID
	payload []byte
}

type bufEntry struct {
	src     ids.ProcID
	payload []byte
}

// Record describes one completed view change, observed at the
// coordinator.
type Record struct {
	Epoch             uint64
	Started, Finished time.Duration
}

// Duration returns the flush-to-install duration at the coordinator.
func (r Record) Duration() time.Duration { return r.Finished - r.Started }

// New assembles a manager. Wire the node's incoming packets to
// (*Manager).Recv.
func New(env proto.Env, app proto.Up, transport proto.Down, cfg Config) (*Manager, error) {
	if env == nil || app == nil || transport == nil {
		return nil, fmt.Errorf("viewswitch: nil wiring")
	}
	if len(cfg.Protocols) < 1 {
		return nil, fmt.Errorf("viewswitch: need at least one protocol")
	}
	if !cfg.Coordinator.Valid() {
		cfg.Coordinator = env.Ring().Members()[0]
	}
	if !env.Ring().Contains(cfg.Coordinator) {
		return nil, fmt.Errorf("viewswitch: coordinator %v not in the group", cfg.Coordinator)
	}
	mux, err := switching.NewMultiplex(transport)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:    cfg,
		env:    env,
		app:    app,
		mux:    mux,
		view:   make(map[ids.ProcID]bool),
		sent:   make(map[uint64]uint64),
		recv:   make(map[uint64][]uint64),
		buffer: make(map[uint64][]bufEntry),
	}
	for _, p := range env.Ring().Members() {
		m.view[p] = true
	}
	ctl, err := proto.Build(env, proto.UpFunc(m.onControl), mux.Port(ids.ControlChannel), fifo.New(cfg.Control))
	if err != nil {
		return nil, fmt.Errorf("viewswitch: control stack: %w", err)
	}
	m.ctl = ctl
	mux.Bind(ids.ControlChannel, proto.UpFunc(ctl.Recv))
	for i, factory := range cfg.Protocols {
		ch := ids.ProtocolChannel(i)
		stack, err := proto.Build(env, proto.UpFunc(m.onData), mux.Port(ch), factory(env)...)
		if err != nil {
			return nil, fmt.Errorf("viewswitch: protocol %d stack: %w", i, err)
		}
		m.protos = append(m.protos, stack)
		mux.Bind(ch, proto.UpFunc(stack.Recv))
	}
	if cfg.Detector != nil {
		dcfg := *cfg.Detector
		userSuspect := dcfg.OnSuspect
		dcfg.OnSuspect = func(p ids.ProcID) {
			m.onSuspect(p)
			if userSuspect != nil {
				userSuspect(p)
			}
		}
		det := fd.New(dcfg)
		if err := det.Init(env, mux.Port(detectorChannel)); err != nil {
			return nil, fmt.Errorf("viewswitch: detector: %w", err)
		}
		m.detector = det
		mux.Bind(detectorChannel, proto.UpFunc(det.Recv))
	} else if cfg.AutoEvict {
		return nil, fmt.Errorf("viewswitch: AutoEvict requires a Detector")
	}
	return m, nil
}

// Detector returns the manager's failure detector (nil if not
// configured).
func (m *Manager) Detector() *fd.Detector { return m.detector }

// Recv routes an incoming transport packet.
func (m *Manager) Recv(src ids.ProcID, pkt []byte) { m.mux.Recv(src, pkt) }

// Stop shuts the manager and its sub-stacks down.
func (m *Manager) Stop() {
	m.stopped = true
	m.ctl.Stop()
	for _, p := range m.protos {
		p.Stop()
	}
	if m.detector != nil {
		m.detector.Stop()
	}
}

// Epoch returns the current epoch.
func (m *Manager) Epoch() uint64 { return m.epoch }

// View returns the current membership.
func (m *Manager) View() []ids.ProcID {
	out := make([]ids.ProcID, 0, len(m.view))
	for _, p := range m.env.Ring().Members() {
		if m.view[p] {
			out = append(out, p)
		}
	}
	return out
}

// InView reports whether p is in the current view.
func (m *Manager) InView(p ids.ProcID) bool { return m.view[p] }

// Flushing reports whether a flush is blocking this member's sends.
func (m *Manager) Flushing() bool { return m.flushing }

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Records returns the view changes this member coordinated.
func (m *Manager) Records() []Record {
	out := make([]Record, len(m.records))
	copy(out, m.records)
	return out
}

// Cast multicasts an application payload. During a flush the payload is
// queued and sent in the next epoch — unlike the token-ring SP, the
// view switch blocks the send path (the §8 trade-off).
func (m *Manager) Cast(payload []byte) error {
	if m.stopped {
		return fmt.Errorf("viewswitch: stopped")
	}
	if !m.view[m.env.Self()] {
		m.stats.OutOfView++
		return ErrNotInView
	}
	if m.flushing {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		m.queued = append(m.queued, buf)
		m.stats.BlockedCasts++
		return nil
	}
	return m.castEpoch(m.epoch, payload)
}

func (m *Manager) castEpoch(epoch uint64, payload []byte) error {
	e := wire.NewEncoder(10)
	e.Uvarint(epoch)
	m.sent[epoch]++
	return m.protos[epoch%uint64(len(m.protos))].Cast(e.Prepend(payload))
}

// RequestViewChange starts a view change to the given membership,
// delivering viewPayload (typically an encoded proto.AppMsg with IsView
// set) to every member at the installation point. Coordinator only.
// Every ring member is expected to be alive and to answer the flush;
// use RequestEviction when some have crashed.
func (m *Manager) RequestViewChange(members []ids.ProcID, viewPayload []byte) error {
	return m.startChange(members, nil, viewPayload)
}

// RequestEviction starts a view change that removes the given crashed
// members from the view without waiting for their flush reports. A
// crashed member's slot in the send-count vector is the minimum arrival
// count every survivor reported — messages beyond that minimum may have
// been delivered at only some survivors (the classic virtual-synchrony
// atomicity caveat at a crash boundary; stronger machinery than this
// repository implements — SAFE message stability — would be needed to
// close it).
func (m *Manager) RequestEviction(dead []ids.ProcID, viewPayload []byte) error {
	if len(dead) == 0 {
		return fmt.Errorf("viewswitch: nobody to evict")
	}
	doomed := make(map[ids.ProcID]bool, len(dead))
	for _, p := range dead {
		if p == m.cfg.Coordinator {
			return fmt.Errorf("viewswitch: cannot evict the coordinator")
		}
		doomed[p] = true
	}
	var members []ids.ProcID
	for _, p := range m.View() {
		if !doomed[p] {
			members = append(members, p)
		}
	}
	return m.startChange(members, dead, viewPayload)
}

func (m *Manager) startChange(members, dead []ids.ProcID, viewPayload []byte) error {
	if m.env.Self() != m.cfg.Coordinator {
		return ErrNotCoordinator
	}
	if m.collecting || m.flushing {
		return ErrChangeInProgress
	}
	if len(members) == 0 {
		return fmt.Errorf("viewswitch: empty view")
	}
	for _, p := range members {
		if !m.env.Ring().Contains(p) {
			return fmt.Errorf("viewswitch: %v is not a group member", p)
		}
	}
	m.collecting = true
	m.reports = make(map[ids.ProcID]uint64, m.env.Ring().Size())
	m.reportRecv = make(map[ids.ProcID][]uint64, m.env.Ring().Size())
	m.dead = make(map[ids.ProcID]bool, len(dead))
	for _, p := range dead {
		m.dead[p] = true
	}
	m.viewTarget = append([]ids.ProcID(nil), members...)
	m.viewPayload = append([]byte(nil), viewPayload...)
	m.started = m.env.Now()
	e := wire.NewEncoder(12)
	e.U8(kindFlush).Uvarint(m.epoch)
	return m.ctl.Cast(e.Bytes())
}

// onSuspect reacts to a failure-detector suspicion.
func (m *Manager) onSuspect(p ids.ProcID) {
	if m.stopped || m.env.Self() != m.cfg.Coordinator || p == m.cfg.Coordinator {
		return
	}
	if m.collecting {
		// A member died mid-flush: stop waiting for its report.
		if !m.dead[p] {
			m.dead[p] = true
			target := m.viewTarget[:0:0]
			for _, q := range m.viewTarget {
				if q != p {
					target = append(target, q)
				}
			}
			m.viewTarget = target
			m.maybeAnnounce()
		}
		return
	}
	if !m.cfg.AutoEvict || !m.view[p] {
		return
	}
	var members []ids.ProcID
	for _, q := range m.View() {
		if q != p {
			members = append(members, q)
		}
	}
	payload := m.evictPayload(members)
	if err := m.RequestEviction([]ids.ProcID{p}, payload); err == ErrChangeInProgress {
		// Retry once the current change lands.
		m.env.After(10*time.Millisecond, func() { m.onSuspect(p) })
	}
}

// evictPayload builds the app-level view message for an auto-eviction.
func (m *Manager) evictPayload(members []ids.ProcID) []byte {
	if m.cfg.EvictView != nil {
		return m.cfg.EvictView(members)
	}
	vm := proto.AppMsg{
		ID:     proto.MakeMsgID(m.cfg.Coordinator, uint32(0xfff00000)+uint32(m.epoch)),
		Sender: m.cfg.Coordinator,
		IsView: true,
		View:   members,
	}
	return vm.Encode()
}

// onControl handles control-channel traffic.
func (m *Manager) onControl(src ids.ProcID, pkt []byte) {
	if m.stopped {
		return
	}
	d := wire.NewDecoder(pkt)
	switch d.U8() {
	case kindFlush:
		epoch := d.Uvarint()
		if d.Err() != nil || epoch != m.epoch || m.flushing {
			return
		}
		m.flushing = true
		recv := make([]uint64, m.env.Ring().Size())
		if have := m.recv[epoch]; have != nil {
			copy(recv, have)
		}
		e := wire.NewEncoder(24 + 2*len(recv))
		e.U8(kindReport).Uvarint(epoch).Uvarint(m.sent[epoch]).Counts(recv)
		_ = m.ctl.Send(m.cfg.Coordinator, e.Bytes())
	case kindReport:
		epoch := d.Uvarint()
		count := d.Uvarint()
		recv := d.Counts()
		if d.Err() != nil || m.env.Self() != m.cfg.Coordinator || !m.collecting || epoch != m.epoch {
			return
		}
		m.reports[src] = count
		m.reportRecv[src] = recv
		m.maybeAnnounce()
	case kindView:
		epoch := d.Uvarint()
		vector := d.Counts()
		members := d.Procs()
		payload := d.BytesField()
		if d.Err() != nil || epoch != m.epoch || src != m.cfg.Coordinator {
			return
		}
		m.pendingView = &viewMsg{epoch: epoch, vector: vector, members: members, payload: payload}
		m.expected = vector
		m.tryInstall()
	}
}

// maybeAnnounce sends the VIEW once every live member has reported.
func (m *Manager) maybeAnnounce() {
	if !m.collecting {
		return
	}
	for _, p := range m.env.Ring().Members() {
		if m.dead[p] {
			continue
		}
		if _, ok := m.reports[p]; !ok {
			return
		}
	}
	vector := make([]uint64, m.env.Ring().Size())
	for _, p := range m.env.Ring().Members() {
		pos := m.env.Ring().Position(p)
		if pos < 0 {
			continue
		}
		if !m.dead[p] {
			vector[pos] = m.reports[p]
			continue
		}
		// A crashed member cannot report: settle for the common prefix
		// every survivor already holds.
		min := uint64(0)
		first := true
		for q, recv := range m.reportRecv {
			if m.dead[q] || pos >= len(recv) {
				continue
			}
			if first || recv[pos] < min {
				min = recv[pos]
				first = false
			}
		}
		vector[pos] = min
	}
	e := wire.NewEncoder(64 + len(m.viewPayload))
	e.U8(kindView).Uvarint(m.epoch).Counts(vector).Procs(m.viewTarget).BytesField(m.viewPayload)
	m.collecting = false
	_ = m.ctl.Cast(e.Bytes())
}

// onData handles deliveries from the sub-protocol stacks.
func (m *Manager) onData(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	epoch := d.Uvarint()
	if d.Err() != nil {
		return
	}
	payload := d.Remaining()
	switch {
	case epoch == m.epoch:
		if !m.view[src] {
			m.stats.StaleDropped++
			return
		}
		m.countRecv(epoch, src)
		m.app.Deliver(src, payload)
		m.tryInstall()
	case epoch > m.epoch:
		m.countRecv(epoch, src)
		m.stats.Buffered++
		m.buffer[epoch] = append(m.buffer[epoch], bufEntry{src: src, payload: payload})
	default:
		m.stats.StaleDropped++
	}
}

func (m *Manager) countRecv(epoch uint64, src ids.ProcID) {
	v := m.recv[epoch]
	if v == nil {
		v = make([]uint64, m.env.Ring().Size())
		m.recv[epoch] = v
	}
	if pos := m.env.Ring().Position(src); pos >= 0 {
		v[pos]++
	}
}

// tryInstall installs the pending view once every old-epoch message has
// been delivered.
func (m *Manager) tryInstall() {
	if m.pendingView == nil {
		return
	}
	have := m.recv[m.epoch]
	for pos, want := range m.expected {
		var got uint64
		if have != nil {
			got = have[pos]
		}
		if got < want {
			return
		}
	}
	v := m.pendingView
	m.pendingView = nil
	m.expected = nil
	delete(m.recv, m.epoch)
	delete(m.sent, m.epoch)
	m.epoch++
	// Install the membership.
	next := make(map[ids.ProcID]bool, len(v.members))
	for _, p := range v.members {
		next[p] = true
	}
	m.view = next
	m.stats.ViewsInstalled++
	// The view message lands exactly between the epochs — the Virtual
	// Synchrony install point.
	m.app.Deliver(m.cfg.Coordinator, v.payload)
	if m.cfg.OnViewInstalled != nil {
		m.cfg.OnViewInstalled(Installed{Epoch: m.epoch, Members: append([]ids.ProcID(nil), v.members...), At: m.env.Now()})
	}
	if m.env.Self() == m.cfg.Coordinator {
		m.records = append(m.records, Record{Epoch: v.epoch, Started: m.started, Finished: m.env.Now()})
	}
	// Unblock: drain queued sends into the new epoch (if still in
	// view), then release buffered new-epoch arrivals.
	m.flushing = false
	queued := m.queued
	m.queued = nil
	for _, q := range queued {
		if !m.view[m.env.Self()] {
			m.stats.OutOfView++
			continue
		}
		_ = m.castEpoch(m.epoch, q)
	}
	pend := m.buffer[m.epoch]
	delete(m.buffer, m.epoch)
	for _, b := range pend {
		if !m.view[b.src] {
			m.stats.StaleDropped++
			continue
		}
		m.app.Deliver(b.src, b.payload)
	}
}
