package viewswitch_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/viewswitch"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
	"repro/internal/runtime/simenv"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// member is one process under test.
type member struct {
	node      *simenv.Node
	mgr       *viewswitch.Manager
	delivered []ptest.Delivery
}

// cluster is a simulated group of view-switch managers.
type cluster struct {
	sim     *des.Sim
	net     *simnet.Network
	members []*member
	sent    []ptest.SentMsg
}

func orderedPair() []switching.ProtocolFactory {
	return []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{tokenorder.New(tokenorder.Config{HoldDelay: time.Millisecond}), fifo.New(fifo.Config{})}
		},
	}
}

func newCluster(t *testing.T, seed int64, netCfg simnet.Config, n int, cfg viewswitch.Config) *cluster {
	t.Helper()
	if cfg.Protocols == nil {
		cfg.Protocols = orderedPair()
	}
	sim := des.New(seed)
	net, err := simnet.New(sim, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	group, err := simenv.NewGroup(sim, net, n)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{sim: sim, net: net}
	for _, node := range group.Nodes() {
		m := &member{node: node}
		app := proto.UpFunc(func(src ids.ProcID, payload []byte) {
			buf := make([]byte, len(payload))
			copy(buf, payload)
			m.delivered = append(m.delivered, ptest.Delivery{At: sim.Now(), Src: src, Payload: buf})
		})
		mgr, err := viewswitch.New(node, app, node.Transport(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.mgr = mgr
		if err := node.BindStack(mgr.Recv); err != nil {
			t.Fatal(err)
		}
		c.members = append(c.members, m)
	}
	return c
}

func (c *cluster) cast(t *testing.T, p ids.ProcID, seq uint32, body string) {
	t.Helper()
	m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: []byte(body)}
	c.sent = append(c.sent, ptest.SentMsg{At: c.sim.Now(), Msg: m})
	if err := c.members[p].mgr.Cast(m.Encode()); err != nil {
		t.Errorf("cast %q: %v", body, err)
	}
}

// viewAppMsg builds the application-level view message.
func viewAppMsg(seq uint32, members ...ids.ProcID) proto.AppMsg {
	return proto.AppMsg{
		ID:     proto.MakeMsgID(0, seq),
		Sender: 0,
		IsView: true,
		View:   members,
	}
}

func (c *cluster) requestView(t *testing.T, members []ids.ProcID, seq uint32) {
	t.Helper()
	vm := viewAppMsg(seq, members...)
	c.sent = append(c.sent, ptest.SentMsg{At: c.sim.Now(), Msg: vm})
	if err := c.members[0].mgr.RequestViewChange(members, vm.Encode()); err != nil {
		t.Errorf("request view: %v", err)
	}
}

func (c *cluster) bodies(t *testing.T, p ids.ProcID) []string {
	t.Helper()
	var out []string
	for _, d := range c.members[p].delivered {
		m, err := proto.DecodeApp(d.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if m.IsView {
			out = append(out, fmt.Sprintf("<view %v>", m.View))
			continue
		}
		out = append(out, string(m.Body))
	}
	return out
}

func (c *cluster) trace(t *testing.T) trace.Trace {
	t.Helper()
	adapter := &ptest.Cluster{Sim: c.sim}
	for _, m := range c.members {
		adapter.Members = append(adapter.Members, &ptest.Member{Node: m.node, Delivered: m.delivered})
	}
	tr, err := adapter.TraceTimed(c.sent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func (c *cluster) stop() {
	for _, m := range c.members {
		m.mgr.Stop()
	}
}

func TestBasicViewSwitch(t *testing.T) {
	c := newCluster(t, 1, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, viewswitch.Config{})
	for i := 0; i < 4; i++ {
		at := time.Duration(i+1) * 3 * time.Millisecond
		i := i
		c.sim.At(at, func() { c.cast(t, ids.ProcID(i), uint32(i), fmt.Sprintf("old-%d", i)) })
	}
	c.sim.At(20*time.Millisecond, func() { c.requestView(t, ids.Procs(4), 900) })
	for i := 0; i < 4; i++ {
		at := 100*time.Millisecond + time.Duration(i)*3*time.Millisecond
		i := i
		c.sim.At(at, func() { c.cast(t, ids.ProcID(i), uint32(10+i), fmt.Sprintf("new-%d", i)) })
	}
	c.sim.RunUntil(5 * time.Second)
	c.stop()

	ref := c.bodies(t, 0)
	if len(ref) != 9 { // 4 old + view + 4 new
		t.Fatalf("member 0 delivered %v", ref)
	}
	for p := 1; p < 4; p++ {
		got := c.bodies(t, ids.ProcID(p))
		if len(got) != len(ref) {
			t.Fatalf("member %d delivered %d, member 0 %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %d disagrees at %d: %q vs %q", p, i, got[i], ref[i])
			}
		}
	}
	// The view message must sit exactly between old and new traffic.
	sawView := false
	for _, b := range ref {
		switch {
		case b == "<view [p0 p1 p2 p3]>":
			sawView = true
		case !sawView && len(b) > 3 && b[:3] == "new":
			t.Fatalf("new-epoch message before the view: %v", ref)
		case sawView && len(b) > 3 && b[:3] == "old":
			t.Fatalf("old-epoch message after the view: %v", ref)
		}
	}
	if !sawView {
		t.Fatalf("view message missing: %v", ref)
	}
	for p, m := range c.members {
		if m.mgr.Epoch() != 1 {
			t.Fatalf("member %d epoch %d", p, m.mgr.Epoch())
		}
		if m.mgr.Stats().ViewsInstalled != 1 {
			t.Fatalf("member %d installed %d views", p, m.mgr.Stats().ViewsInstalled)
		}
	}
	// And the trace satisfies Virtual Synchrony — the §8 headline.
	vs := property.VirtualSynchrony{InitialView: ids.Procs(4)}
	if !vs.Holds(c.trace(t)) {
		t.Error("Virtual Synchrony violated by a view switch")
	}
}

func TestSendersBlockDuringFlushThenDrain(t *testing.T) {
	c := newCluster(t, 2, simnet.Config{Nodes: 3, PropDelay: time.Millisecond}, 3, viewswitch.Config{})
	c.sim.At(time.Millisecond, func() { c.requestView(t, ids.Procs(3), 900) })
	// Cast while the flush is in flight: the manager must queue it.
	var queuedAt ids.ProcID = ids.Nobody
	var poll func()
	poll = func() {
		for p, m := range c.members {
			if m.mgr.Flushing() {
				queuedAt = ids.ProcID(p)
				c.cast(t, queuedAt, 1, "queued-during-flush")
				return
			}
		}
		c.sim.After(200*time.Microsecond, poll)
	}
	c.sim.At(1200*time.Microsecond, func() { poll() })
	c.sim.RunUntil(5 * time.Second)
	c.stop()
	if queuedAt == ids.Nobody {
		t.Fatal("never observed a flushing member")
	}
	if c.members[queuedAt].mgr.Stats().BlockedCasts == 0 {
		t.Error("cast during flush was not queued")
	}
	// The queued message must still be delivered, after the view.
	for p := 0; p < 3; p++ {
		got := c.bodies(t, ids.ProcID(p))
		if len(got) != 2 || got[0] != "<view [p0 p1 p2]>" || got[1] != "queued-during-flush" {
			t.Fatalf("member %d delivered %v", p, got)
		}
	}
}

func TestMembershipExclusion(t *testing.T) {
	c := newCluster(t, 3, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3, viewswitch.Config{})
	c.sim.At(time.Millisecond, func() { c.requestView(t, []ids.ProcID{0, 1}, 900) })
	c.sim.RunUntil(2 * time.Second)
	// Member 2 is out of the view: its casts are rejected locally.
	if err := c.members[2].mgr.Cast(viewAppMsg(1).Encode()); err != viewswitch.ErrNotInView {
		t.Errorf("excluded member's cast returned %v, want ErrNotInView", err)
	}
	if c.members[2].mgr.InView(2) {
		t.Error("member 2 believes it is still in the view")
	}
	if got := c.members[0].mgr.View(); len(got) != 2 {
		t.Errorf("view = %v", got)
	}
	// Survivors keep multicasting normally.
	c.cast(t, 0, 2, "survivors-only")
	c.sim.RunUntil(4 * time.Second)
	c.stop()
	for p := 0; p < 2; p++ {
		got := c.bodies(t, ids.ProcID(p))
		if len(got) != 2 || got[1] != "survivors-only" {
			t.Fatalf("member %d delivered %v", p, got)
		}
	}
	vs := property.VirtualSynchrony{InitialView: ids.Procs(3)}
	if !vs.Holds(c.trace(t)) {
		t.Error("Virtual Synchrony violated")
	}
}

func TestSingleProtocolMembershipChange(t *testing.T) {
	single := []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
	}
	c := newCluster(t, 4, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3,
		viewswitch.Config{Protocols: single})
	c.sim.At(time.Millisecond, func() { c.cast(t, 1, 1, "before") })
	c.sim.At(10*time.Millisecond, func() { c.requestView(t, []ids.ProcID{0, 1}, 900) })
	c.sim.At(200*time.Millisecond, func() { c.cast(t, 1, 2, "after") })
	c.sim.RunUntil(5 * time.Second)
	c.stop()
	got := c.bodies(t, 0)
	want := []string{"before", "<view [p0 p1]>", "after"}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestRandomizedVSPreservation(t *testing.T) {
	for seed := int64(60); seed < 64; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			netCfg := simnet.Config{
				Nodes:     4,
				PropDelay: 300 * time.Microsecond,
				Jitter:    time.Millisecond,
				DropProb:  0.05,
			}
			c := newCluster(t, seed, netCfg, 4, viewswitch.Config{})
			rng := c.sim.Rand()
			total := 12 + rng.Intn(8)
			for i := 0; i < total; i++ {
				at := time.Duration(rng.Intn(150)) * time.Millisecond
				i := i
				c.sim.At(at, func() {
					p := ids.ProcID(i % 4)
					if !c.members[p].mgr.InView(p) {
						return
					}
					m := proto.AppMsg{ID: proto.MakeMsgID(p, uint32(i)), Sender: p, Body: []byte(fmt.Sprintf("m%02d", i))}
					c.sent = append(c.sent, ptest.SentMsg{At: c.sim.Now(), Msg: m})
					if err := c.members[p].mgr.Cast(m.Encode()); err != nil && err != viewswitch.ErrNotInView {
						t.Error(err)
					}
				})
			}
			c.sim.At(40*time.Millisecond, func() { c.requestView(t, ids.Procs(4), 900) })
			c.sim.At(100*time.Millisecond, func() { c.requestView(t, []ids.ProcID{0, 1, 2}, 901) })
			c.sim.RunUntil(60 * time.Second)
			c.stop()
			vs := property.VirtualSynchrony{InitialView: ids.Procs(4)}
			tr := c.trace(t)
			if !vs.Holds(tr) {
				t.Errorf("Virtual Synchrony violated:\n%v", tr)
			}
			if !(property.TotalOrder{}).Holds(tr) {
				t.Error("Total Order violated")
			}
		})
	}
}

func TestCallbacksAndRecords(t *testing.T) {
	installs := 0
	cfg := viewswitch.Config{
		OnViewInstalled: func(v viewswitch.Installed) {
			installs++
			if v.Epoch != 1 || len(v.Members) != 3 {
				t.Errorf("Installed = %+v", v)
			}
		},
	}
	c := newCluster(t, 8, simnet.Config{Nodes: 3, PropDelay: 300 * time.Microsecond}, 3, cfg)
	c.sim.At(time.Millisecond, func() { c.requestView(t, ids.Procs(3), 900) })
	c.sim.RunUntil(2 * time.Second)
	c.stop()
	if installs != 3 {
		t.Errorf("OnViewInstalled fired %d times, want 3 (once per member)", installs)
	}
	recs := c.members[0].mgr.Records()
	if len(recs) != 1 || recs[0].Epoch != 0 || recs[0].Duration() <= 0 {
		t.Errorf("coordinator records = %+v", recs)
	}
	if len(c.members[1].mgr.Records()) != 0 {
		t.Error("non-coordinator has records")
	}
	if c.members[0].mgr.Detector() != nil {
		t.Error("detector present without config")
	}
}

func TestRequestValidation(t *testing.T) {
	c := newCluster(t, 5, simnet.Config{Nodes: 3}, 3, viewswitch.Config{})
	defer c.stop()
	if err := c.members[1].mgr.RequestViewChange(ids.Procs(3), nil); err != viewswitch.ErrNotCoordinator {
		t.Errorf("non-coordinator got %v", err)
	}
	if err := c.members[0].mgr.RequestViewChange(nil, nil); err == nil {
		t.Error("empty view accepted")
	}
	if err := c.members[0].mgr.RequestViewChange([]ids.ProcID{9}, nil); err == nil {
		t.Error("non-member view accepted")
	}
	if err := c.members[0].mgr.RequestViewChange(ids.Procs(3), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.members[0].mgr.RequestViewChange(ids.Procs(3), nil); err != viewswitch.ErrChangeInProgress {
		t.Errorf("concurrent request got %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	sim := des.New(1)
	net, err := simnet.New(sim, simnet.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	group, err := simenv.NewGroup(sim, net, 2)
	if err != nil {
		t.Fatal(err)
	}
	node := group.Node(0)
	app := proto.UpFunc(func(ids.ProcID, []byte) {})
	if _, err := viewswitch.New(nil, app, node.Transport(), viewswitch.Config{}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := viewswitch.New(node, app, node.Transport(), viewswitch.Config{}); err == nil {
		t.Error("no protocols accepted")
	}
	bad := viewswitch.Config{Protocols: orderedPair(), Coordinator: 9}
	if _, err := viewswitch.New(node, app, node.Transport(), bad); err == nil {
		t.Error("out-of-group coordinator accepted")
	}
	evictNoDet := viewswitch.Config{Protocols: orderedPair(), AutoEvict: true}
	if _, err := viewswitch.New(node, app, node.Transport(), evictNoDet); err == nil {
		t.Error("AutoEvict without a detector accepted")
	}
}

func TestCastAfterStop(t *testing.T) {
	c := newCluster(t, 6, simnet.Config{Nodes: 2}, 2, viewswitch.Config{})
	c.stop()
	if err := c.members[0].mgr.Cast([]byte("x")); err == nil {
		t.Error("cast after stop accepted")
	}
}

func TestGarbageControlIgnored(t *testing.T) {
	c := newCluster(t, 7, simnet.Config{Nodes: 2}, 2, viewswitch.Config{})
	defer c.stop()
	// Inject junk onto the control path via the public Recv.
	c.members[0].mgr.Recv(1, nil)
	c.members[0].mgr.Recv(1, []byte{0})
	c.sim.RunUntil(100 * time.Millisecond)
	if c.members[0].mgr.Epoch() != 0 {
		t.Error("garbage advanced the epoch")
	}
}
