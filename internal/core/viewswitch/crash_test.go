// Crash tolerance — the capability boundary between the two switching
// mechanisms. The paper's token-ring SP assumes crash-free members (§2:
// exactly-once delivery, a live ring); a single crash kills its token.
// The §8 view-change mechanism, paired with a failure detector, evicts
// the crashed member and the group carries on.
package viewswitch_test

import (
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/core/viewswitch"
	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/fd"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
)

// seqOnly keeps the (never-crashed) coordinator as the sequencer for
// both epochs: recovering a data token lost inside a crashed member is
// the ordering protocol's job, not the switch's.
func seqOnly() []switching.ProtocolFactory {
	mk := func(proto.Env) []proto.Layer {
		return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
	}
	return []switching.ProtocolFactory{mk, mk}
}

func TestManualEvictionAfterCrash(t *testing.T) {
	cfg := viewswitch.Config{Protocols: seqOnly()}
	c := newCluster(t, 20, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, cfg)
	c.sim.At(2*time.Millisecond, func() { c.cast(t, 1, 1, "before-crash") })
	c.sim.At(50*time.Millisecond, func() { c.net.Crash(3) })
	c.sim.At(60*time.Millisecond, func() {
		vm := viewAppMsg(900, 0, 1, 2)
		c.sent = append(c.sent, ptestSent(c, vm))
		if err := c.members[0].mgr.RequestEviction([]ids.ProcID{3}, vm.Encode()); err != nil {
			t.Error(err)
		}
	})
	c.sim.At(300*time.Millisecond, func() { c.cast(t, 2, 2, "after-eviction") })
	c.sim.RunUntil(10 * time.Second)
	c.stop()
	for p := 0; p < 3; p++ {
		got := c.bodies(t, ids.ProcID(p))
		want := []string{"before-crash", "<view [p0 p1 p2]>", "after-eviction"}
		if len(got) != len(want) {
			t.Fatalf("member %d delivered %v, want %v", p, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("member %d delivered %v, want %v", p, got, want)
			}
		}
		if c.members[p].mgr.InView(3) {
			t.Fatalf("member %d still has p3 in view", p)
		}
	}
	vs := property.VirtualSynchrony{InitialView: ids.Procs(4)}
	if !vs.Holds(c.trace(t)) {
		t.Error("Virtual Synchrony violated across the eviction")
	}
}

func TestAutoEvictionViaFailureDetector(t *testing.T) {
	cfg := viewswitch.Config{
		Protocols: seqOnly(),
		Detector:  &fd.Config{Interval: 5 * time.Millisecond},
		AutoEvict: true,
	}
	c := newCluster(t, 21, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, cfg)
	c.sim.At(2*time.Millisecond, func() { c.cast(t, 1, 1, "healthy") })
	c.sim.At(100*time.Millisecond, func() { c.net.Crash(2) })
	// No manual intervention: the detector suspects, the coordinator
	// evicts.
	c.sim.At(time.Second, func() { c.cast(t, 1, 2, "reconfigured") })
	c.sim.RunUntil(30 * time.Second)
	c.stop()
	for _, p := range []int{0, 1, 3} {
		m := c.members[p].mgr
		if m.InView(2) {
			t.Fatalf("member %d still has the crashed p2 in view", p)
		}
		if m.Epoch() == 0 {
			t.Fatalf("member %d never installed the eviction view", p)
		}
		got := c.bodies(t, ids.ProcID(p))
		var sawHealthy, sawReconf bool
		for _, b := range got {
			if b == "healthy" {
				sawHealthy = true
			}
			if b == "reconfigured" {
				sawReconf = true
			}
		}
		if !sawHealthy || !sawReconf {
			t.Fatalf("member %d delivered %v", p, got)
		}
	}
	// The auto-synthesized view message reached the app as IsView.
	got := c.bodies(t, 0)
	foundView := false
	for _, b := range got {
		if b == "<view [p0 p1 p3]>" {
			foundView = true
		}
	}
	if !foundView {
		t.Fatalf("auto-eviction view message missing: %v", got)
	}
}

func TestCrashDuringFlushStillCompletes(t *testing.T) {
	cfg := viewswitch.Config{
		Protocols: seqOnly(),
		Detector:  &fd.Config{Interval: 5 * time.Millisecond},
	}
	c := newCluster(t, 22, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, cfg)
	// Start an ordinary (all-members) view change, then crash a member
	// before it can report.
	c.sim.At(10*time.Millisecond, func() {
		c.net.Crash(3)
		vm := viewAppMsg(900, 0, 1, 2, 3)
		c.sent = append(c.sent, ptestSent(c, vm))
		if err := c.members[0].mgr.RequestViewChange(ids.Procs(4), vm.Encode()); err != nil {
			t.Error(err)
		}
	})
	c.sim.RunUntil(30 * time.Second)
	c.stop()
	// The detector releases the coordinator from waiting for p3: the
	// view installs at the survivors (with p3 formally listed — it was
	// the requested membership — but the flush did not deadlock).
	for _, p := range []int{0, 1, 2} {
		if c.members[p].mgr.Epoch() != 1 {
			t.Fatalf("member %d stuck at epoch %d: crash during flush wedged the change", p, c.members[p].mgr.Epoch())
		}
	}
}

// ptestSent adapts a view message into the cluster's sent log.
func ptestSent(c *cluster, vm proto.AppMsg) ptest.SentMsg {
	return ptest.SentMsg{At: c.sim.Now(), Msg: vm}
}

// TestTokenRingSPWedgesOnCrash documents the §2 assumption from the
// other side: the token-ring switching protocol cannot complete — or
// even start — a switch once a member has crashed, because its token
// dies with the member.
func TestTokenRingSPWedgesOnCrash(t *testing.T) {
	swCfg := switching.Config{Protocols: seqOnly(), TokenInterval: 2 * time.Millisecond}
	c, err := swtest.NewSwitched(23, simnet.Config{Nodes: 4, PropDelay: 300 * time.Microsecond}, 4, swCfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.At(50*time.Millisecond, func() { c.Net.Crash(2) })
	c.Sim.At(60*time.Millisecond, func() { c.Members[0].Switch.RequestSwitch() })
	c.Run(30 * time.Second)
	c.Stop()
	for p, m := range c.Members {
		if p == 2 {
			continue
		}
		if m.Switch.Epoch() != 0 {
			t.Fatalf("member %d switched despite the crash — expected the ring to wedge", p)
		}
	}
}
