package core
