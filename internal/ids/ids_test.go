package ids

import (
	"testing"
	"testing/quick"
)

func TestProcIDString(t *testing.T) {
	cases := []struct {
		p    ProcID
		want string
	}{
		{0, "p0"},
		{7, "p7"},
		{Nobody, "p?"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("ProcID(%d).String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestProcIDValid(t *testing.T) {
	if Nobody.Valid() {
		t.Error("Nobody.Valid() = true, want false")
	}
	if !ProcID(0).Valid() {
		t.Error("ProcID(0).Valid() = false, want true")
	}
}

func TestMsgIDString(t *testing.T) {
	if got := MsgID(42).String(); got != "m42" {
		t.Errorf("MsgID(42).String() = %q, want m42", got)
	}
}

func TestChannelIDString(t *testing.T) {
	if got := ControlChannel.String(); got != "ch0" {
		t.Errorf("ControlChannel.String() = %q, want ch0", got)
	}
}

func TestProtocolChannel(t *testing.T) {
	if ProtocolChannel(0) == ControlChannel || ProtocolChannel(0) == AppChannel {
		t.Error("ProtocolChannel(0) collides with a reserved channel")
	}
	if ProtocolChannel(0) == ProtocolChannel(1) {
		t.Error("consecutive protocol channels collide")
	}
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("NewRing(nil) succeeded, want error")
	}
	if _, err := NewRing([]ProcID{1, 2, 1}); err == nil {
		t.Error("NewRing with duplicate succeeded, want error")
	}
	if _, err := NewRing([]ProcID{0, Nobody}); err == nil {
		t.Error("NewRing with Nobody succeeded, want error")
	}
}

func TestRingCopiesInput(t *testing.T) {
	in := []ProcID{0, 1, 2}
	r, err := NewRing(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if got := r.Members()[0]; got != 0 {
		t.Errorf("ring aliased caller slice: members[0] = %v, want p0", got)
	}
}

func TestRingSuccessorPredecessor(t *testing.T) {
	r, err := NewRing([]ProcID{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	succ := map[ProcID]ProcID{3: 1, 1: 4, 4: 3}
	for p, want := range succ {
		got, err := r.Successor(p)
		if err != nil {
			t.Fatalf("Successor(%v): %v", p, err)
		}
		if got != want {
			t.Errorf("Successor(%v) = %v, want %v", p, got, want)
		}
		back, err := r.Predecessor(got)
		if err != nil {
			t.Fatalf("Predecessor(%v): %v", got, err)
		}
		if back != p {
			t.Errorf("Predecessor(Successor(%v)) = %v, want %v", p, back, p)
		}
	}
	if _, err := r.Successor(9); err == nil {
		t.Error("Successor(non-member) succeeded, want error")
	}
	if _, err := r.Predecessor(9); err == nil {
		t.Error("Predecessor(non-member) succeeded, want error")
	}
}

func TestRingDistance(t *testing.T) {
	r, err := NewRing(Procs(5))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		from, to ProcID
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{4, 0, 1},
		{1, 0, 4},
	}
	for _, c := range cases {
		got, err := r.Distance(c.from, c.to)
		if err != nil {
			t.Fatalf("Distance(%v,%v): %v", c.from, c.to, err)
		}
		if got != c.want {
			t.Errorf("Distance(%v,%v) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
	if _, err := r.Distance(0, 9); err == nil {
		t.Error("Distance to non-member succeeded, want error")
	}
	if _, err := r.Distance(9, 0); err == nil {
		t.Error("Distance from non-member succeeded, want error")
	}
}

func TestRingContainsPosition(t *testing.T) {
	r, err := NewRing(Procs(3))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(2) || r.Contains(3) {
		t.Error("Contains gave wrong membership answer")
	}
	if r.Position(2) != 2 || r.Position(7) != -1 {
		t.Error("Position gave wrong index")
	}
}

func TestProcs(t *testing.T) {
	got := Procs(3)
	want := []ProcID{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Procs(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Procs(3) = %v, want %v", got, want)
		}
	}
}

// Property: walking the ring Size() times from any member returns to it,
// and visits each member exactly once.
func TestRingRotationProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%9) + 2 // group sizes 2..10
		r, err := NewRing(Procs(n))
		if err != nil {
			return false
		}
		start := ProcID(int(seed) % n)
		seen := map[ProcID]bool{}
		cur := start
		for i := 0; i < n; i++ {
			if seen[cur] {
				return false
			}
			seen[cur] = true
			next, err := r.Successor(cur)
			if err != nil {
				return false
			}
			cur = next
		}
		return cur == start && len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distance(from,to) hops along Successor reaches 'to'.
func TestRingDistanceProperty(t *testing.T) {
	f := func(seed uint8, a, b uint8) bool {
		n := int(seed%9) + 2
		r, err := NewRing(Procs(n))
		if err != nil {
			return false
		}
		from, to := ProcID(int(a)%n), ProcID(int(b)%n)
		d, err := r.Distance(from, to)
		if err != nil {
			return false
		}
		cur := from
		for i := 0; i < d; i++ {
			cur, err = r.Successor(cur)
			if err != nil {
				return false
			}
		}
		return cur == to
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
