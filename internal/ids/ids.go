// Package ids defines the identifier types shared by every subsystem:
// process identifiers, message identifiers, and multiplex channel
// identifiers, together with the logical-ring arithmetic that the
// switching protocol's token rotation relies on.
package ids

import (
	"fmt"
	"strconv"
)

// ProcID identifies a process (a group member). Processes in a group of
// size n are numbered 0..n-1; the logical ring used by the switching
// protocol and the token-ordering protocol follows this numbering.
type ProcID int32

// Nobody is the zero-value "no process" sentinel. Valid process
// identifiers are non-negative.
const Nobody ProcID = -1

// String renders the process id as "p<n>" (or "p?" for Nobody).
func (p ProcID) String() string {
	if p == Nobody {
		return "p?"
	}
	return "p" + strconv.Itoa(int(p))
}

// Valid reports whether p denotes an actual process.
func (p ProcID) Valid() bool { return p >= 0 }

// MsgID uniquely identifies a message within an execution. The paper's
// trace model forbids duplicate Send events, so a MsgID is sent at most
// once; message *bodies*, in contrast, may repeat (the No Replay property
// is about bodies, not identities).
type MsgID uint64

// String renders the message id as "m<n>".
func (m MsgID) String() string { return "m" + strconv.FormatUint(uint64(m), 10) }

// ChannelID identifies a multiplexed logical channel over the shared
// transport. Figure 1 of the paper requires a private channel for the
// switching protocol itself plus one per underlying protocol.
type ChannelID uint16

// Reserved channel assignments used by the switching stack. Sub-protocol
// epochs use ProtocolChannel(i).
const (
	// ControlChannel carries the switching protocol's token.
	ControlChannel ChannelID = 0
	// AppChannel is used when a stack runs without a switch (direct).
	AppChannel ChannelID = 1
)

// ProtocolChannel returns the private channel of the i-th sub-protocol
// instance managed by a switching layer (i counts protocol epochs).
func ProtocolChannel(i int) ChannelID {
	return ChannelID(2 + i)
}

// String renders the channel id as "ch<n>".
func (c ChannelID) String() string { return "ch" + strconv.FormatUint(uint64(c), 10) }

// Ring captures a fixed logical ring over the members of a group. The
// switching protocol rotates its token along this ring; the token-based
// total-order protocol reuses it.
type Ring struct {
	members []ProcID
	index   map[ProcID]int
}

// NewRing builds a ring from the given membership. The order of the slice
// is the rotation order. NewRing copies the slice. It returns an error if
// the membership is empty or contains duplicates or invalid ids.
func NewRing(members []ProcID) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: empty membership")
	}
	r := &Ring{
		members: make([]ProcID, len(members)),
		index:   make(map[ProcID]int, len(members)),
	}
	for i, m := range members {
		if !m.Valid() {
			return nil, fmt.Errorf("ring: invalid member %v", m)
		}
		if _, dup := r.index[m]; dup {
			return nil, fmt.Errorf("ring: duplicate member %v", m)
		}
		r.members[i] = m
		r.index[m] = i
	}
	return r, nil
}

// Size returns the number of members on the ring.
func (r *Ring) Size() int { return len(r.members) }

// Members returns a copy of the membership in ring order.
func (r *Ring) Members() []ProcID {
	out := make([]ProcID, len(r.members))
	copy(out, r.members)
	return out
}

// Contains reports whether p is a ring member.
func (r *Ring) Contains(p ProcID) bool {
	_, ok := r.index[p]
	return ok
}

// Successor returns the next member after p in rotation order. It returns
// an error if p is not on the ring.
func (r *Ring) Successor(p ProcID) (ProcID, error) {
	i, ok := r.index[p]
	if !ok {
		return Nobody, fmt.Errorf("ring: %v is not a member", p)
	}
	return r.members[(i+1)%len(r.members)], nil
}

// Predecessor returns the member before p in rotation order. It returns
// an error if p is not on the ring.
func (r *Ring) Predecessor(p ProcID) (ProcID, error) {
	i, ok := r.index[p]
	if !ok {
		return Nobody, fmt.Errorf("ring: %v is not a member", p)
	}
	return r.members[(i-1+len(r.members))%len(r.members)], nil
}

// Position returns p's index in rotation order, or -1 if absent.
func (r *Ring) Position(p ProcID) int {
	i, ok := r.index[p]
	if !ok {
		return -1
	}
	return i
}

// Distance returns the number of hops needed to travel from 'from' to
// 'to' along the ring (0 if equal). It returns an error if either process
// is not a member.
func (r *Ring) Distance(from, to ProcID) (int, error) {
	i, ok := r.index[from]
	if !ok {
		return 0, fmt.Errorf("ring: %v is not a member", from)
	}
	j, ok := r.index[to]
	if !ok {
		return 0, fmt.Errorf("ring: %v is not a member", to)
	}
	return (j - i + len(r.members)) % len(r.members), nil
}

// Procs returns the canonical membership {0, 1, ..., n-1}. It is the
// conventional group layout used throughout tests and experiments.
func Procs(n int) []ProcID {
	out := make([]ProcID, n)
	for i := range out {
		out[i] = ProcID(i)
	}
	return out
}
