package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ids"
)

func msg(id uint64, sender int32, body string) Message {
	return Message{ID: ids.MsgID(id), Sender: ids.ProcID(sender), Body: body}
}

func viewMsg(id uint64, sender int32, members ...int32) Message {
	m := Message{ID: ids.MsgID(id), Sender: ids.ProcID(sender), IsView: true}
	for _, p := range members {
		m.View = append(m.View, ids.ProcID(p))
	}
	return m
}

func TestEventProcOwnership(t *testing.T) {
	m := msg(1, 3, "x")
	if got := Send(m).Proc(); got != 3 {
		t.Errorf("Send owner = %v, want p3", got)
	}
	if got := Deliver(5, m).Proc(); got != 5 {
		t.Errorf("Deliver owner = %v, want p5", got)
	}
}

func TestValidateRejectsDuplicateSend(t *testing.T) {
	tr := Trace{Send(msg(1, 0, "a")), Send(msg(1, 0, "a"))}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted duplicate Send")
	}
}

func TestValidateRejectsBadSendOwner(t *testing.T) {
	e := Send(msg(1, 0, "a"))
	e.Deliverer = 2
	if err := (Trace{e}).Validate(); err == nil {
		t.Error("Validate accepted Send with owner != sender")
	}
}

func TestValidateRejectsInvalidDeliverer(t *testing.T) {
	tr := Trace{Deliver(ids.Nobody, msg(1, 0, "a"))}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted Deliver at invalid process")
	}
}

func TestValidateRejectsBadKind(t *testing.T) {
	tr := Trace{{Kind: Kind(99)}}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted invalid event kind")
	}
}

func TestValidateAcceptsDuplicateDelivery(t *testing.T) {
	m := msg(1, 0, "a")
	tr := Trace{Send(m), Deliver(1, m), Deliver(1, m)}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate rejected duplicate delivery: %v", err)
	}
	if err := tr.ValidateAtMostOnce(); err == nil {
		t.Error("ValidateAtMostOnce accepted duplicate delivery")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := Trace{Send(viewMsg(1, 0, 0, 1))}
	cp := tr.Clone()
	cp[0].Msg.View[0] = 9
	if tr[0].Msg.View[0] == 9 {
		t.Error("Clone shared the View slice")
	}
}

func TestDeliveriesAt(t *testing.T) {
	m1, m2 := msg(1, 0, "a"), msg(2, 1, "b")
	tr := Trace{Send(m1), Deliver(2, m1), Send(m2), Deliver(2, m2), Deliver(1, m1)}
	got := tr.DeliveriesAt(2)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("DeliveriesAt(2) = %v", got)
	}
	if n := len(tr.DeliveriesAt(9)); n != 0 {
		t.Errorf("DeliveriesAt(9) returned %d messages", n)
	}
}

func TestProcessesAndMessageIDs(t *testing.T) {
	m1, m2 := msg(1, 0, "a"), msg(2, 1, "b")
	tr := Trace{Send(m1), Deliver(2, m1), Send(m2)}
	procs := tr.Processes()
	want := []ids.ProcID{0, 2, 1}
	if !reflect.DeepEqual(procs, want) {
		t.Errorf("Processes() = %v, want %v", procs, want)
	}
	mids := tr.MessageIDs()
	if len(mids) != 2 || mids[0] != 1 || mids[1] != 2 {
		t.Errorf("MessageIDs() = %v", mids)
	}
}

func TestSendIndexAndDelivered(t *testing.T) {
	m := msg(7, 0, "a")
	tr := Trace{Deliver(1, m), Send(m)}
	if got := tr.SendIndex(7); got != 1 {
		t.Errorf("SendIndex(7) = %d, want 1", got)
	}
	if got := tr.SendIndex(8); got != -1 {
		t.Errorf("SendIndex(8) = %d, want -1", got)
	}
	if !tr.Delivered(1, 7) || tr.Delivered(2, 7) {
		t.Error("Delivered gave wrong answer")
	}
}

func TestPrefixClamps(t *testing.T) {
	tr := Trace{Send(msg(1, 0, "a")), Deliver(1, msg(1, 0, "a"))}
	if got := len(tr.Prefix(-1)); got != 0 {
		t.Errorf("Prefix(-1) len = %d, want 0", got)
	}
	if got := len(tr.Prefix(99)); got != 2 {
		t.Errorf("Prefix(99) len = %d, want 2", got)
	}
	if got := len(tr.Prefix(1)); got != 1 {
		t.Errorf("Prefix(1) len = %d, want 1", got)
	}
}

func TestCanSwapAsync(t *testing.T) {
	m1, m2 := msg(1, 0, "a"), msg(2, 1, "b")
	tr := Trace{Send(m1), Send(m2), Deliver(1, m1), Deliver(1, m2)}
	if !tr.CanSwapAsync(0) {
		t.Error("events of different processes should be async-swappable")
	}
	if tr.CanSwapAsync(2) {
		t.Error("events of the same process must not be async-swappable")
	}
	if tr.CanSwapAsync(-1) || tr.CanSwapAsync(3) {
		t.Error("out-of-range indexes must not be swappable")
	}
}

func TestCanSwapDelayable(t *testing.T) {
	m1 := msg(1, 0, "a")
	m2 := msg(2, 0, "b")
	m3 := msg(3, 1, "c")
	// Same process, Send + Deliver of different messages: swappable.
	tr := Trace{Send(m2), Deliver(0, m3)}
	if !tr.CanSwapDelayable(0) {
		t.Error("same-process Send/Deliver of different msgs should swap")
	}
	// Same process, two Sends: not swappable (FIFO of sends preserved).
	tr = Trace{Send(m1), Send(m2)}
	if tr.CanSwapDelayable(0) {
		t.Error("two Sends must not be delayable-swappable")
	}
	// Different processes: not delayable.
	tr = Trace{Send(m1), Deliver(1, m1)}
	if tr.CanSwapDelayable(0) {
		t.Error("cross-process events must not be delayable-swappable")
	}
	// Same process, Send and Deliver of the SAME message: excluded.
	tr = Trace{Send(m1), Deliver(0, m1)}
	if tr.CanSwapDelayable(0) {
		t.Error("a message's own Send/Deliver at the sender must not swap")
	}
}

func TestSwapAdjacent(t *testing.T) {
	m1, m2 := msg(1, 0, "a"), msg(2, 1, "b")
	tr := Trace{Send(m1), Send(m2)}
	got, err := tr.SwapAdjacent(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Msg.ID != 2 || got[1].Msg.ID != 1 {
		t.Errorf("SwapAdjacent result = %v", got)
	}
	// Original untouched.
	if tr[0].Msg.ID != 1 {
		t.Error("SwapAdjacent mutated the receiver")
	}
	if _, err := tr.SwapAdjacent(1); err == nil {
		t.Error("SwapAdjacent(1) on len-2 trace should fail")
	}
}

func TestAppendSends(t *testing.T) {
	tr := Trace{Send(msg(1, 0, "a"))}
	got := tr.AppendSends(msg(2, 1, "b"), msg(3, 2, "c"))
	if len(got) != 3 || got[2].Kind != SendKind || got[2].Msg.ID != 3 {
		t.Errorf("AppendSends = %v", got)
	}
	if len(tr) != 1 {
		t.Error("AppendSends mutated the receiver")
	}
}

func TestEraseMessages(t *testing.T) {
	m1, m2 := msg(1, 0, "a"), msg(2, 1, "b")
	tr := Trace{Send(m1), Send(m2), Deliver(1, m1), Deliver(0, m2)}
	got := tr.EraseMessages(map[ids.MsgID]bool{1: true})
	if len(got) != 2 {
		t.Fatalf("EraseMessages kept %d events, want 2", len(got))
	}
	for _, e := range got {
		if e.Msg.ID == 1 {
			t.Error("EraseMessages left an event of the erased message")
		}
	}
}

func TestConcatRejectsSharedMessages(t *testing.T) {
	a := Trace{Send(msg(1, 0, "a"))}
	b := Trace{Send(msg(1, 1, "b"))}
	if _, err := a.Concat(b); err == nil {
		t.Error("Concat accepted traces sharing a message ID")
	}
	c := Trace{Send(msg(2, 1, "b"))}
	got, err := a.Concat(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Msg.ID != 1 || got[1].Msg.ID != 2 {
		t.Errorf("Concat = %v", got)
	}
}

func TestDisjointAndRenumber(t *testing.T) {
	a := Trace{Send(msg(1, 0, "a")), Send(msg(2, 0, "b"))}
	b := Trace{Send(msg(2, 1, "c"))}
	if a.DisjointMessages(b) {
		t.Error("DisjointMessages missed shared id 2")
	}
	shifted := b.RenumberFrom(uint64(a.MaxMsgID()))
	if !a.DisjointMessages(shifted) {
		t.Error("RenumberFrom did not make traces disjoint")
	}
}

func TestMaxMsgIDEmpty(t *testing.T) {
	if got := (Trace{}).MaxMsgID(); got != 0 {
		t.Errorf("empty MaxMsgID = %v, want 0", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m1 := msg(1, 0, "hello")
	v := viewMsg(2, 1, 0, 1, 2)
	tr := Trace{Send(m1), Deliver(1, m1), Send(v), Deliver(0, v)}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\nwant %v\ngot  %v", tr, got)
	}
}

func TestJSONRejectsUnknownKind(t *testing.T) {
	var tr Trace
	err := tr.UnmarshalJSON([]byte(`[{"kind":"explode","msg":{"id":1,"sender":0}}]`))
	if err == nil {
		t.Error("UnmarshalJSON accepted unknown kind")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("ReadJSON accepted malformed JSON")
	}
}

func TestStringRendering(t *testing.T) {
	m := msg(1, 0, "a")
	tr := Trace{Send(m), Deliver(1, m)}
	s := tr.String()
	if s == "" {
		t.Error("empty String rendering")
	}
	if SendKind.String() != "Send" || DeliverKind.String() != "Deliver" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind.String empty")
	}
	if viewMsg(1, 0, 1).String() == "" || m.String() == "" {
		t.Error("Message.String empty")
	}
}
