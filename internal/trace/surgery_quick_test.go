package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// genTrace builds a random well-formed trace from fuzz bytes.
func genTrace(seed int64, n int) Trace {
	rng := rand.New(rand.NewSource(seed))
	if n <= 0 {
		n = 1
	}
	if n > 12 {
		n = 12
	}
	var tr Trace
	var sent []Message
	nextID := uint64(1)
	for i := 0; i < n; i++ {
		if len(sent) == 0 || rng.Float64() < 0.4 {
			m := Message{
				ID:     ids.MsgID(nextID),
				Sender: ids.ProcID(rng.Intn(3)),
				Body:   string(rune('a' + rng.Intn(3))),
			}
			nextID++
			sent = append(sent, m)
			tr = append(tr, Send(m))
			continue
		}
		m := sent[rng.Intn(len(sent))]
		tr = append(tr, Deliver(ids.ProcID(rng.Intn(3)), m))
	}
	return tr
}

// Property: surgery operations never produce an invalid trace from a
// valid one.
func TestSurgeryPreservesValidityProperty(t *testing.T) {
	f := func(seed int64, n uint8, k uint8) bool {
		tr := genTrace(seed, int(n%16))
		if tr.Validate() != nil {
			return false // generator bug
		}
		rng := rand.New(rand.NewSource(seed + 1))
		// Prefix.
		if tr.Prefix(int(k)%(len(tr)+1)).Validate() != nil {
			return false
		}
		// Any legal adjacent swap.
		for i := 0; i+1 < len(tr); i++ {
			if tr.CanSwapAsync(i) || tr.CanSwapDelayable(i) {
				out, err := tr.SwapAdjacent(i)
				if err != nil || out.Validate() != nil {
					return false
				}
			}
		}
		// Erasure of a random subset.
		doomed := map[ids.MsgID]bool{}
		for _, id := range tr.MessageIDs() {
			if rng.Float64() < 0.5 {
				doomed[id] = true
			}
		}
		if tr.EraseMessages(doomed).Validate() != nil {
			return false
		}
		// Appending fresh sends.
		fresh := Message{ID: tr.MaxMsgID() + 1, Sender: 0, Body: "z"}
		return tr.AppendSends(fresh).Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: erasure actually removes every event of the doomed messages
// and nothing else.
func TestEraseExactnessProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr := genTrace(seed, int(n%16))
		idsAll := tr.MessageIDs()
		if len(idsAll) == 0 {
			return true
		}
		doomed := map[ids.MsgID]bool{idsAll[0]: true}
		out := tr.EraseMessages(doomed)
		kept := 0
		for _, e := range tr {
			if !doomed[e.Msg.ID] {
				kept++
			}
		}
		if len(out) != kept {
			return false
		}
		for _, e := range out {
			if doomed[e.Msg.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: renumbered traces concatenate cleanly and the result
// contains exactly the sum of events.
func TestConcatRenumberProperty(t *testing.T) {
	f := func(s1, s2 int64, n1, n2 uint8) bool {
		a := genTrace(s1, int(n1%12))
		b := genTrace(s2, int(n2%12)).RenumberFrom(uint64(a.MaxMsgID()))
		if !a.DisjointMessages(b) {
			return false
		}
		out, err := a.Concat(b)
		if err != nil {
			return false
		}
		return len(out) == len(a)+len(b) && out.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: JSON round-trips arbitrary generated traces.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr := genTrace(seed, int(n%16))
		data, err := tr.MarshalJSON()
		if err != nil {
			return false
		}
		var back Trace
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		if len(back) != len(tr) {
			return false
		}
		for i := range tr {
			if tr[i].String() != back[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
