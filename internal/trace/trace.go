// Package trace implements the system model of §3 of the paper: processes
// multicast messages, executions are ordered sequences of Send and
// Deliver events, and a *property* is a predicate on such traces.
//
// The trace vocabulary is deliberately small — exactly the Send(m) and
// Deliver(p:m) events of the paper — but messages carry enough structure
// (identity, sender, body, optional view payload) for every property in
// Table 1 to be expressible, including No Replay (which distinguishes
// message bodies from message identities) and Virtual Synchrony (whose
// view changes are themselves messages carrying a membership list).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/ids"
)

// Kind discriminates the two event types of the model.
type Kind int

const (
	// SendKind models that Msg.Sender has multicast the message.
	SendKind Kind = iota + 1
	// DeliverKind models that Proc has delivered the message.
	DeliverKind
)

// String renders the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case SendKind:
		return "Send"
	case DeliverKind:
		return "Deliver"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is the unit of communication. ID is the message's identity
// (unique per execution — the model forbids duplicate Send events);
// Body is its content, which may repeat across messages (No Replay is
// about bodies). A message with IsView set is a view-change message whose
// View field carries the new membership (used by Virtual Synchrony).
type Message struct {
	ID     ids.MsgID
	Sender ids.ProcID
	Body   string
	IsView bool
	View   []ids.ProcID
}

// Clone returns a deep copy of the message (the View slice is copied).
func (m Message) Clone() Message {
	out := m
	if m.View != nil {
		out.View = make([]ids.ProcID, len(m.View))
		copy(out.View, m.View)
	}
	return out
}

// String renders the message compactly.
func (m Message) String() string {
	if m.IsView {
		return fmt.Sprintf("%v<view %v from %v>", m.ID, m.View, m.Sender)
	}
	return fmt.Sprintf("%v<%q from %v>", m.ID, m.Body, m.Sender)
}

// Event is a single step of an execution.
type Event struct {
	Kind Kind
	// Deliverer is the delivering process for DeliverKind events and is
	// ignored (conventionally set to Msg.Sender) for SendKind events.
	Deliverer ids.ProcID
	Msg       Message
}

// Send constructs a Send(m) event.
func Send(m Message) Event {
	return Event{Kind: SendKind, Deliverer: m.Sender, Msg: m}
}

// Deliver constructs a Deliver(p : m) event.
func Deliver(p ids.ProcID, m Message) Event {
	return Event{Kind: DeliverKind, Deliverer: p, Msg: m}
}

// Proc returns the process an event "belongs to": the sender of a Send,
// the deliverer of a Deliver. The asynchrony and delayability relations
// of §5 are phrased in terms of this ownership.
func (e Event) Proc() ids.ProcID {
	if e.Kind == SendKind {
		return e.Msg.Sender
	}
	return e.Deliverer
}

// Clone returns a deep copy of the event.
func (e Event) Clone() Event {
	out := e
	out.Msg = e.Msg.Clone()
	return out
}

// String renders the event.
func (e Event) String() string {
	if e.Kind == SendKind {
		return fmt.Sprintf("Send(%v)", e.Msg)
	}
	return fmt.Sprintf("Deliver(%v : %v)", e.Deliverer, e.Msg)
}

// Trace is an ordered sequence of events. Per §3, a well-formed trace
// contains no duplicate Send events (see Validate).
type Trace []Event

// Clone returns a deep copy of the trace.
func (tr Trace) Clone() Trace {
	out := make(Trace, len(tr))
	for i, e := range tr {
		out[i] = e.Clone()
	}
	return out
}

// String renders the trace one event per line.
func (tr Trace) String() string {
	var b strings.Builder
	for i, e := range tr {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%3d %v", i, e)
	}
	return b.String()
}

// Validate checks the well-formedness condition of §3: a trace must not
// contain duplicate Send events (two Sends of the same message ID), and a
// Send event's Deliverer must equal its sender. It does NOT require
// at-most-once delivery — faulty executions are representable; see
// ValidateAtMostOnce for the stronger check assumed by the switching
// protocol.
func (tr Trace) Validate() error {
	sent := make(map[ids.MsgID]bool, len(tr))
	for i, e := range tr {
		switch e.Kind {
		case SendKind:
			if sent[e.Msg.ID] {
				return fmt.Errorf("trace: event %d duplicates Send of %v", i, e.Msg.ID)
			}
			sent[e.Msg.ID] = true
			if e.Deliverer != e.Msg.Sender {
				return fmt.Errorf("trace: event %d Send owner %v != sender %v", i, e.Deliverer, e.Msg.Sender)
			}
		case DeliverKind:
			if !e.Deliverer.Valid() {
				return fmt.Errorf("trace: event %d Deliver with invalid process", i)
			}
		default:
			return fmt.Errorf("trace: event %d has invalid kind %v", i, e.Kind)
		}
	}
	return nil
}

// ValidateAtMostOnce checks Validate plus the at-most-once delivery
// assumption the switching protocol makes of its underlying protocols:
// no process delivers the same message ID twice.
func (tr Trace) ValidateAtMostOnce() error {
	if err := tr.Validate(); err != nil {
		return err
	}
	type key struct {
		p ids.ProcID
		m ids.MsgID
	}
	seen := make(map[key]bool, len(tr))
	for i, e := range tr {
		if e.Kind != DeliverKind {
			continue
		}
		k := key{e.Deliverer, e.Msg.ID}
		if seen[k] {
			return fmt.Errorf("trace: event %d delivers %v twice at %v", i, e.Msg.ID, e.Deliverer)
		}
		seen[k] = true
	}
	return nil
}

// Sends returns the Send events of the trace, in order.
func (tr Trace) Sends() []Event {
	var out []Event
	for _, e := range tr {
		if e.Kind == SendKind {
			out = append(out, e)
		}
	}
	return out
}

// DeliveriesAt returns, in order, the messages delivered at process p.
func (tr Trace) DeliveriesAt(p ids.ProcID) []Message {
	var out []Message
	for _, e := range tr {
		if e.Kind == DeliverKind && e.Deliverer == p {
			out = append(out, e.Msg)
		}
	}
	return out
}

// Processes returns the set of processes appearing in the trace (as
// senders or deliverers), in first-appearance order.
func (tr Trace) Processes() []ids.ProcID {
	seen := map[ids.ProcID]bool{}
	var out []ids.ProcID
	add := func(p ids.ProcID) {
		if p.Valid() && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, e := range tr {
		add(e.Msg.Sender)
		add(e.Deliverer)
	}
	return out
}

// MessageIDs returns the set of message IDs appearing in the trace, in
// first-appearance order.
func (tr Trace) MessageIDs() []ids.MsgID {
	seen := map[ids.MsgID]bool{}
	var out []ids.MsgID
	for _, e := range tr {
		if !seen[e.Msg.ID] {
			seen[e.Msg.ID] = true
			out = append(out, e.Msg.ID)
		}
	}
	return out
}

// SendIndex returns the index of the Send event of message id, or -1.
func (tr Trace) SendIndex(id ids.MsgID) int {
	for i, e := range tr {
		if e.Kind == SendKind && e.Msg.ID == id {
			return i
		}
	}
	return -1
}

// Delivered reports whether process p delivers message id somewhere in
// the trace.
func (tr Trace) Delivered(p ids.ProcID, id ids.MsgID) bool {
	for _, e := range tr {
		if e.Kind == DeliverKind && e.Deliverer == p && e.Msg.ID == id {
			return true
		}
	}
	return false
}
