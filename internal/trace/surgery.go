package trace

import (
	"fmt"

	"repro/internal/ids"
)

// This file implements the trace transformations underlying the
// meta-property relations of §5 and §6 of the paper. Each relation R on
// traces is realized as a family of elementary rewrites; the relation
// itself is the reflexive-transitive closure of the rewrites, so applying
// any sequence of them to tr_below yields a tr_above with
// tr_above R tr_below.

// Prefix returns the first k events of the trace (R_safety: tr_above is a
// prefix of tr_below). k is clamped to [0, len(tr)].
func (tr Trace) Prefix(k int) Trace {
	if k < 0 {
		k = 0
	}
	if k > len(tr) {
		k = len(tr)
	}
	return tr[:k].Clone()
}

// CanSwapAsync reports whether events i and i+1 may be swapped under
// R_asynchrony: the events must be adjacent and belong to *different*
// processes ("events belonging to the same process may not be swapped").
func (tr Trace) CanSwapAsync(i int) bool {
	if i < 0 || i+1 >= len(tr) {
		return false
	}
	return tr[i].Proc() != tr[i+1].Proc()
}

// CanSwapDelayable reports whether events i and i+1 may be swapped under
// R_delayable: the events must be adjacent, belong to the *same* process,
// and be one Send and one Deliver (a layer delays Sends going down and
// Delivers going up, so their local interleaving is not preserved).
// Swapping a Deliver past the Send *of the same message* at the sending
// process is excluded: no layer can deliver a message before the
// application has handed it over.
func (tr Trace) CanSwapDelayable(i int) bool {
	if i < 0 || i+1 >= len(tr) {
		return false
	}
	a, b := tr[i], tr[i+1]
	if a.Proc() != b.Proc() {
		return false
	}
	if a.Kind == b.Kind {
		return false
	}
	if a.Msg.ID == b.Msg.ID {
		// Would reorder a message's Send against its own local Deliver.
		return false
	}
	return true
}

// SwapAdjacent returns a copy of the trace with events i and i+1
// exchanged. It returns an error if i is out of range. Callers enforce
// the relation-specific side conditions via CanSwapAsync /
// CanSwapDelayable.
func (tr Trace) SwapAdjacent(i int) (Trace, error) {
	if i < 0 || i+1 >= len(tr) {
		return nil, fmt.Errorf("trace: swap index %d out of range (len %d)", i, len(tr))
	}
	out := tr.Clone()
	out[i], out[i+1] = out[i+1], out[i]
	return out, nil
}

// AppendSends returns the trace extended with Send events for the given
// messages (R_send_enabled: tr_above adds only Send events at the end).
func (tr Trace) AppendSends(msgs ...Message) Trace {
	out := tr.Clone()
	for _, m := range msgs {
		out = append(out, Send(m.Clone()))
	}
	return out
}

// EraseMessages returns the trace with *all* events pertaining to the
// given message IDs removed (R_memoryless: whether such a message was
// ever sent or delivered is no longer of importance).
func (tr Trace) EraseMessages(doomed map[ids.MsgID]bool) Trace {
	out := make(Trace, 0, len(tr))
	for _, e := range tr {
		if doomed[e.Msg.ID] {
			continue
		}
		out = append(out, e.Clone())
	}
	return out
}

// Concat returns the concatenation tr ++ other (used by the Composable
// meta-property of §6.2). It returns an error if the two traces share a
// message ID — composability is only defined for traces with no messages
// in common.
func (tr Trace) Concat(other Trace) (Trace, error) {
	mine := make(map[ids.MsgID]bool, len(tr))
	for _, e := range tr {
		mine[e.Msg.ID] = true
	}
	for _, e := range other {
		if mine[e.Msg.ID] {
			return nil, fmt.Errorf("trace: concat operands share message %v", e.Msg.ID)
		}
	}
	out := make(Trace, 0, len(tr)+len(other))
	out = append(out, tr.Clone()...)
	out = append(out, other.Clone()...)
	return out, nil
}

// DisjointMessages reports whether the two traces have no message IDs in
// common.
func (tr Trace) DisjointMessages(other Trace) bool {
	mine := make(map[ids.MsgID]bool, len(tr))
	for _, e := range tr {
		mine[e.Msg.ID] = true
	}
	for _, e := range other {
		if mine[e.Msg.ID] {
			return false
		}
	}
	return true
}

// RenumberFrom returns a copy of the trace whose message IDs are shifted
// by delta. It is used to make two generated traces message-disjoint
// before concatenation.
func (tr Trace) RenumberFrom(delta uint64) Trace {
	out := tr.Clone()
	for i := range out {
		out[i].Msg.ID += ids.MsgID(delta)
	}
	return out
}

// MaxMsgID returns the largest message ID in the trace (0 for an empty
// trace).
func (tr Trace) MaxMsgID() ids.MsgID {
	var max ids.MsgID
	for _, e := range tr {
		if e.Msg.ID > max {
			max = e.Msg.ID
		}
	}
	return max
}
