package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ids"
)

// JSON wire format for traces, consumed and produced by cmd/tracecheck.
// Events are encoded as flat records so that traces can be produced by
// external tooling (or by hand) without knowledge of internal types.

type jsonMessage struct {
	ID     uint64  `json:"id"`
	Sender int32   `json:"sender"`
	Body   string  `json:"body,omitempty"`
	IsView bool    `json:"isView,omitempty"`
	View   []int32 `json:"view,omitempty"`
}

type jsonEvent struct {
	Kind string      `json:"kind"` // "send" | "deliver"
	Proc int32       `json:"proc,omitempty"`
	Msg  jsonMessage `json:"msg"`
}

func toJSONEvent(e Event) jsonEvent {
	je := jsonEvent{
		Msg: jsonMessage{
			ID:     uint64(e.Msg.ID),
			Sender: int32(e.Msg.Sender),
			Body:   e.Msg.Body,
			IsView: e.Msg.IsView,
		},
	}
	for _, p := range e.Msg.View {
		je.Msg.View = append(je.Msg.View, int32(p))
	}
	switch e.Kind {
	case SendKind:
		je.Kind = "send"
	case DeliverKind:
		je.Kind = "deliver"
		je.Proc = int32(e.Deliverer)
	}
	return je
}

func fromJSONEvent(je jsonEvent) (Event, error) {
	m := Message{
		ID:     ids.MsgID(je.Msg.ID),
		Sender: ids.ProcID(je.Msg.Sender),
		Body:   je.Msg.Body,
		IsView: je.Msg.IsView,
	}
	for _, p := range je.Msg.View {
		m.View = append(m.View, ids.ProcID(p))
	}
	switch je.Kind {
	case "send":
		return Send(m), nil
	case "deliver":
		return Deliver(ids.ProcID(je.Proc), m), nil
	default:
		return Event{}, fmt.Errorf("trace: unknown event kind %q", je.Kind)
	}
}

// MarshalJSON encodes the trace as a JSON array of event records.
func (tr Trace) MarshalJSON() ([]byte, error) {
	out := make([]jsonEvent, len(tr))
	for i, e := range tr {
		out[i] = toJSONEvent(e)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a JSON array of event records.
func (tr *Trace) UnmarshalJSON(data []byte) error {
	var raw []jsonEvent
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Trace, 0, len(raw))
	for i, je := range raw {
		e, err := fromJSONEvent(je)
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		out = append(out, e)
	}
	*tr = out
	return nil
}

// WriteJSON writes the trace to w as indented JSON.
func (tr Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadJSON reads a trace from r.
func ReadJSON(r io.Reader) (Trace, error) {
	var tr Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return tr, nil
}
