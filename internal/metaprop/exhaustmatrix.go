package metaprop

import (
	"fmt"

	"repro/internal/property"
)

// cellEnumConfig returns the enumeration bound for one cell. ✗ cells
// whose minimal counterexamples need several messages from one sender
// (Amoeba, Every Second Delivered) or the exclude/re-admit view pair
// (Virtual Synchrony × Memoryless) get tailored universes; everything
// else uses a compact default that already covers all other known
// violations.
func cellEnumConfig(prop, meta string) EnumConfig {
	switch {
	case prop == "Amoeba":
		return EnumConfig{Procs: 2, Messages: 5, MaxLen: 4}
	case prop == "Every Second Delivered" && meta == "Memoryless":
		return EnumConfig{Procs: 2, Messages: 5, MaxLen: 5}
	case prop == "Every Second Delivered":
		return EnumConfig{Procs: 2, Messages: 5, MaxLen: 4}
	case prop == "Virtual Synchrony" && meta == "Memoryless":
		return EnumConfig{Procs: 2, Messages: 4, MaxLen: 6}
	case prop == "Virtual Synchrony" && meta == "Composable":
		// The violation needs the excluding view (message 3) on one
		// side and the excluded sender's data on the other.
		return EnumConfig{Procs: 2, Messages: 3, MaxLen: 3}
	default:
		return EnumConfig{Procs: 2, Messages: 2, MaxLen: 5}
	}
}

// ComputeExhaustive regenerates the matrix by bounded-exhaustive
// enumeration instead of randomized search: every cell's verdict is
// either a concrete minimal counterexample or a proof of preservation
// up to the per-cell bound (see cellEnumConfig). With extensions=true
// the extension rows are included.
func ComputeExhaustive(extensions bool) (*Matrix, error) {
	const procs = 2 // cellEnumConfig universes are 2-process
	props := property.Table1(procs)
	if extensions {
		props = append(props, property.Extensions(procs)...)
	}
	rels := Relations(procs)
	m := &Matrix{
		Metas: MetaNames(procs),
		Rows:  make(map[string][]Cell),
	}
	for _, p := range props {
		m.Order = append(m.Order, p.Name())
		var row []Cell
		for _, r := range rels {
			cfg := cellEnumConfig(p.Name(), r.Name())
			cex, err := EnumCheck(p, r, cfg)
			if err != nil {
				return nil, fmt.Errorf("metaprop: %s × %s: %w", p.Name(), r.Name(), err)
			}
			row = append(row, Cell{
				Property:       p.Name(),
				Meta:           r.Name(),
				Preserved:      cex == nil,
				Counterexample: cex,
			})
		}
		cfg := cellEnumConfig(p.Name(), "Composable")
		cex, err := EnumCheckComposable(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("metaprop: %s × Composable: %w", p.Name(), err)
		}
		row = append(row, Cell{
			Property:       p.Name(),
			Meta:           "Composable",
			Preserved:      cex == nil,
			Counterexample: cex,
		})
		m.Rows[p.Name()] = row
	}
	return m, nil
}
