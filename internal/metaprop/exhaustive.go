package metaprop

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/trace"
)

// Exhaustive bounded verification — the closest executable analogue of
// the paper's Nuprl proof [3]. Instead of sampling, EnumCheck walks
// EVERY well-formed trace up to a length bound over a small universe of
// processes and messages, applies every elementary rewrite of the
// relation, and checks Equation 1. For a ✓ cell this *proves*
// preservation up to the bound (any counterexample expressible with
// that many events would have been found); for a ✗ cell it finds a
// minimal counterexample.
//
// The universe is deliberately tiny — the violations in this paper's
// domain are all expressible with two or three processes and messages
// (see the witness registry) — so the search stays in the tens of
// millions of property evaluations even at MaxLen 6.

// EnumConfig bounds the exhaustive search.
type EnumConfig struct {
	// Procs and Messages bound the event universe.
	Procs, Messages int
	// MaxLen bounds the trace length.
	MaxLen int
}

// DefaultEnumConfig is small enough to finish quickly yet large enough
// to exhibit every non-view Table 2 violation: 2 processes, 2 messages,
// traces of up to 6 events. View-sensitive cells (Virtual Synchrony ×
// Memoryless) additionally need the exclude/re-admit view pair, which
// appears from Messages >= 4.
func DefaultEnumConfig() EnumConfig {
	return EnumConfig{Procs: 2, Messages: 2, MaxLen: 6}
}

// universe builds the event alphabet: one Send per message and one
// Deliver per (process, message) pair.
//
//   - message 1: data from the last process, body "b";
//   - message 2: data from process 0, body "b" (colliding bodies give
//     No Replay something to object to);
//   - message 3 (if Messages >= 3): a view excluding the last process;
//   - message 4 (if Messages >= 4): a view re-admitting everyone —
//     erasing it is Virtual Synchrony's Memoryless counterexample;
//   - further messages: data, round-robin senders.
func (c EnumConfig) universe() []trace.Event {
	last := ids.ProcID(c.Procs - 1)
	msgs := make([]trace.Message, c.Messages)
	for i := range msgs {
		m := trace.Message{ID: ids.MsgID(i + 1), Body: "b"}
		switch {
		case i == 0:
			m.Sender = last
		case i == 1:
			m.Sender = 0
		case i == 2:
			m.Sender = 0
			m.IsView = true
			m.Body = ""
			m.View = ids.Procs(c.Procs - 1)
			if c.Procs == 1 {
				m.View = ids.Procs(1)
			}
		case i == 3:
			m.Sender = 0
			m.IsView = true
			m.Body = ""
			m.View = ids.Procs(c.Procs)
		default:
			m.Sender = ids.ProcID(i % c.Procs)
		}
		msgs[i] = m
	}
	var events []trace.Event
	for _, m := range msgs {
		events = append(events, trace.Send(m))
		for p := 0; p < c.Procs; p++ {
			events = append(events, trace.Deliver(ids.ProcID(p), m))
		}
	}
	return events
}

// EnumCheck exhaustively verifies one (property, relation) cell up to
// the bound. It returns the first counterexample found, or nil if the
// relation provably preserves the property for every trace expressible
// within the bound.
func EnumCheck(p property.Property, r Relation, c EnumConfig) (*Counterexample, error) {
	if c.Procs < 1 || c.Messages < 1 || c.MaxLen < 1 {
		return nil, fmt.Errorf("metaprop: degenerate enum config %+v", c)
	}
	alphabet := c.universe()
	var cur trace.Trace
	var cex *Counterexample
	var walk func() bool
	walk = func() bool {
		if len(cur) > 0 {
			if cur.Validate() == nil && p.Holds(cur) {
				if found := applyAll(p, r, cur); found != nil {
					cex = found
					return true
				}
			}
		}
		if len(cur) == c.MaxLen {
			return false
		}
		for _, e := range alphabet {
			cur = append(cur, e)
			if walk() {
				return true
			}
			cur = cur[:len(cur)-1]
		}
		return false
	}
	walk()
	return cex, nil
}

// applyAll applies every single elementary rewrite of r to tr and
// checks the property still holds. Single rewrites suffice: the
// relations are reflexive-transitive closures, so if some chain of
// rewrites breaks the property, the first breaking step is itself a
// single-rewrite counterexample from a still-satisfying trace.
func applyAll(p property.Property, r Relation, tr trace.Trace) *Counterexample {
	check := func(above trace.Trace) *Counterexample {
		if !p.Holds(above) {
			return &Counterexample{
				Property: p.Name(),
				Relation: r.Name(),
				Below:    tr.Clone(),
				Above:    above,
			}
		}
		return nil
	}
	switch rel := r.(type) {
	case Safety:
		for k := 0; k < len(tr); k++ {
			if cex := check(tr.Prefix(k)); cex != nil {
				return cex
			}
		}
	case Asynchrony:
		for i := 0; i+1 < len(tr); i++ {
			if !tr.CanSwapAsync(i) {
				continue
			}
			above, err := tr.SwapAdjacent(i)
			if err != nil {
				continue
			}
			if cex := check(above); cex != nil {
				return cex
			}
		}
	case Delayable:
		for i := 0; i+1 < len(tr); i++ {
			if !tr.CanSwapDelayable(i) {
				continue
			}
			above, err := tr.SwapAdjacent(i)
			if err != nil {
				continue
			}
			if cex := check(above); cex != nil {
				return cex
			}
		}
	case SendEnabled:
		// Appending any single fresh Send, from any process, with a
		// colliding or fresh body.
		next := tr.MaxMsgID() + 1
		n := rel.Procs
		if n <= 0 {
			n = 2
		}
		for s := 0; s < n; s++ {
			for _, body := range []string{"b", "x"} {
				m := trace.Message{ID: next, Sender: ids.ProcID(s), Body: body}
				if cex := check(tr.AppendSends(m)); cex != nil {
					return cex
				}
			}
		}
	case Memoryless:
		for _, id := range tr.MessageIDs() {
			above := tr.EraseMessages(map[ids.MsgID]bool{id: true})
			if cex := check(above); cex != nil {
				return cex
			}
		}
	default:
		return nil
	}
	return nil
}

// EnumCheckComposable exhaustively verifies the Composable cell: every
// ordered pair of satisfying traces (the second renumbered into a
// disjoint id range) whose concatenation violates the property. The
// per-trace length is capped at 3 — pairs grow quadratically, and every
// known composability violation needs only a send and a delivery per
// side.
func EnumCheckComposable(p property.Property, c EnumConfig) (*Counterexample, error) {
	if c.Procs < 1 || c.Messages < 1 || c.MaxLen < 1 {
		return nil, fmt.Errorf("metaprop: degenerate enum config %+v", c)
	}
	if c.MaxLen > 3 {
		c.MaxLen = 3
	}
	// Enumerate satisfying traces once, then try all ordered pairs with
	// the second renumbered into a disjoint id range.
	var satisfying []trace.Trace
	alphabet := c.universe()
	var cur trace.Trace
	var walk func()
	walk = func() {
		if len(cur) > 0 && cur.Validate() == nil && p.Holds(cur) {
			satisfying = append(satisfying, cur.Clone())
		}
		if len(cur) == c.MaxLen {
			return
		}
		for _, e := range alphabet {
			cur = append(cur, e)
			walk()
			cur = cur[:len(cur)-1]
		}
	}
	walk()
	for _, tr1 := range satisfying {
		for _, tr2 := range satisfying {
			shifted := tr2.RenumberFrom(uint64(tr1.MaxMsgID()))
			combined, err := tr1.Concat(shifted)
			if err != nil {
				continue
			}
			if !p.Holds(combined) {
				return &Counterexample{
					Property: p.Name(),
					Relation: "Composable",
					Below:    tr1,
					Extra:    shifted,
					Above:    combined,
				}, nil
			}
		}
	}
	return nil, nil
}
