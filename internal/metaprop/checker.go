package metaprop

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/property"
	"repro/internal/trace"
)

// Counterexample witnesses that a relation does not preserve a
// property: Below satisfies it, Above = R(Below) does not. For
// Composable, Below and Extra are the two concatenated traces and Above
// their concatenation.
type Counterexample struct {
	Property string
	Relation string
	Below    trace.Trace
	Extra    trace.Trace // Composable only
	Above    trace.Trace
}

// String renders the counterexample for humans.
func (c Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s is not %s:\n-- tr_below --\n%v\n", c.Property, c.Relation, c.Below)
	if c.Extra != nil {
		fmt.Fprintf(&b, "-- tr_2 --\n%v\n", c.Extra)
	}
	fmt.Fprintf(&b, "-- tr_above (violates) --\n%v", c.Above)
	return b.String()
}

// Checker runs the preservation falsifier.
type Checker struct {
	// Trials is the number of random (generate, perturb, check) rounds
	// per cell.
	Trials int
	// Seed makes the search deterministic.
	Seed int64
}

// DefaultChecker returns the configuration used to regenerate Table 2.
func DefaultChecker() Checker { return Checker{Trials: 400, Seed: 1} }

// CheckRelation searches for a counterexample to Equation 1 for one
// (property, relation) cell. It returns nil if none was found after the
// configured trials (the cell is ✓ empirically), or the first
// counterexample found. It returns an error if the generator emits a
// trace that does not satisfy the property (a generator bug).
func (c Checker) CheckRelation(p property.Property, r Relation, gen Generator) (*Counterexample, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	for i := 0; i < c.Trials; i++ {
		below := gen(rng)
		if err := below.Validate(); err != nil {
			return nil, fmt.Errorf("metaprop: generator for %s emitted invalid trace: %w", p.Name(), err)
		}
		if !p.Holds(below) {
			return nil, fmt.Errorf("metaprop: generator for %s emitted violating trace", p.Name())
		}
		above := r.Perturb(rng, below)
		if !p.Holds(above) {
			return &Counterexample{
				Property: p.Name(),
				Relation: r.Name(),
				Below:    below,
				Above:    above,
			}, nil
		}
	}
	return nil, nil
}

// CheckComposable searches for a counterexample to §6.2: two disjoint
// traces satisfying the property whose concatenation violates it.
func (c Checker) CheckComposable(p property.Property, gen Generator) (*Counterexample, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	for i := 0; i < c.Trials; i++ {
		tr1 := gen(rng)
		tr2 := gen(rng).RenumberFrom(uint64(tr1.MaxMsgID()))
		if !p.Holds(tr1) || !p.Holds(tr2) {
			return nil, fmt.Errorf("metaprop: generator for %s emitted violating trace", p.Name())
		}
		combined, err := tr1.Concat(tr2)
		if err != nil {
			return nil, fmt.Errorf("metaprop: disjointness bug: %w", err)
		}
		if !p.Holds(combined) {
			return &Counterexample{
				Property: p.Name(),
				Relation: "Composable",
				Below:    tr1,
				Extra:    tr2,
				Above:    combined,
			}, nil
		}
	}
	return nil, nil
}
