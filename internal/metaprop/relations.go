// Package metaprop implements §5–6 of the paper: meta-properties —
// predicates on properties — realized as preservation of a property
// under a relation on traces (Equation 1):
//
//	P(tr_below) ∧ tr_above R tr_below ⇒ P(tr_above)
//
// Five meta-properties are relations applied to a single trace (Safety,
// Asynchrony, Delayable, Send Enabled, Memoryless); the sixth,
// Composable, is a binary condition on concatenation. The paper proved
// in Nuprl that a property with all six is preserved by the switching
// protocol; this package substitutes an executable *falsifier*: every ✗
// cell of Table 2 is witnessed by a machine-checked counterexample, and
// every ✓ cell survives an adversarial randomized search (see
// DESIGN.md §2 for the substitution rationale).
package metaprop

import (
	"math/rand"

	"repro/internal/ids"
	"repro/internal/trace"
)

// Relation is one of the paper's trace relations. Perturb produces a
// random tr_above related to tr_below (the reflexive-transitive closure
// of the relation's elementary rewrites).
type Relation interface {
	// Name returns the meta-property's §5–6 name.
	Name() string
	// Perturb returns some tr_above with tr_above R tr_below.
	Perturb(rng *rand.Rand, below trace.Trace) trace.Trace
}

// Safety (§5.1): tr_above is a prefix of tr_below — "taking events off
// the end of a trace" must not break the property.
type Safety struct{}

var _ Relation = Safety{}

// Name implements Relation.
func (Safety) Name() string { return "Safety" }

// Perturb implements Relation.
func (Safety) Perturb(rng *rand.Rand, below trace.Trace) trace.Trace {
	if len(below) == 0 {
		return below.Clone()
	}
	return below.Prefix(rng.Intn(len(below) + 1))
}

// Asynchrony (§5.2): adjacent events of *different* processes may be
// swapped — global orderings can be lost to delays between processes.
type Asynchrony struct{}

var _ Relation = Asynchrony{}

// Name implements Relation.
func (Asynchrony) Name() string { return "Asynchronous" }

// Perturb implements Relation.
func (Asynchrony) Perturb(rng *rand.Rand, below trace.Trace) trace.Trace {
	return perturbSwaps(rng, below, trace.Trace.CanSwapAsync)
}

// Delayable (§5.3): adjacent Send and Deliver events of the *same*
// process may be swapped — a layer delays Sends going down and Delivers
// going up.
type Delayable struct{}

var _ Relation = Delayable{}

// Name implements Relation.
func (Delayable) Name() string { return "Delayable" }

// Perturb implements Relation.
func (Delayable) Perturb(rng *rand.Rand, below trace.Trace) trace.Trace {
	return perturbSwaps(rng, below, trace.Trace.CanSwapDelayable)
}

// perturbSwaps applies a random number of random legal adjacent swaps.
func perturbSwaps(rng *rand.Rand, below trace.Trace, can func(trace.Trace, int) bool) trace.Trace {
	cur := below.Clone()
	if len(cur) < 2 {
		return cur
	}
	swaps := 1 + rng.Intn(2*len(cur))
	for s := 0; s < swaps; s++ {
		// Collect currently legal swap points; stop if none.
		var legal []int
		for i := 0; i+1 < len(cur); i++ {
			if can(cur, i) {
				legal = append(legal, i)
			}
		}
		if len(legal) == 0 {
			break
		}
		i := legal[rng.Intn(len(legal))]
		next, err := cur.SwapAdjacent(i)
		if err != nil {
			break
		}
		cur = next
	}
	return cur
}

// SendEnabled (§5.4): new Send events may be appended — a protocol
// "typically does not restrict when the layer above sends messages".
type SendEnabled struct {
	// Procs is the process population appended sends may come from.
	Procs int
}

var _ Relation = SendEnabled{}

// Name implements Relation.
func (SendEnabled) Name() string { return "Send Enabled" }

// Perturb implements Relation.
func (r SendEnabled) Perturb(rng *rand.Rand, below trace.Trace) trace.Trace {
	n := r.Procs
	if n <= 0 {
		n = 2
	}
	count := 1 + rng.Intn(3)
	next := ids.MsgID(below.MaxMsgID() + 1)
	msgs := make([]trace.Message, 0, count)
	for i := 0; i < count; i++ {
		msgs = append(msgs, trace.Message{
			ID:     next,
			Sender: ids.ProcID(rng.Intn(n)),
			Body:   randBody(rng),
		})
		next++
	}
	return below.AppendSends(msgs...)
}

// Memoryless (§6.1): all events pertaining to some messages may be
// removed — "whether such a message was ever sent or delivered is no
// longer of importance".
type Memoryless struct{}

var _ Relation = Memoryless{}

// Name implements Relation.
func (Memoryless) Name() string { return "Memoryless" }

// Perturb implements Relation.
func (Memoryless) Perturb(rng *rand.Rand, below trace.Trace) trace.Trace {
	idsSeen := below.MessageIDs()
	if len(idsSeen) == 0 {
		return below.Clone()
	}
	doomed := make(map[ids.MsgID]bool)
	for _, id := range idsSeen {
		if rng.Float64() < 0.4 {
			doomed[id] = true
		}
	}
	if len(doomed) == 0 {
		doomed[idsSeen[rng.Intn(len(idsSeen))]] = true
	}
	return below.EraseMessages(doomed)
}

// randBody draws a short body from a small alphabet so collisions occur
// (needed to probe No Replay).
func randBody(rng *rand.Rand) string {
	return string(rune('a' + rng.Intn(4)))
}

// Relations returns the five unary relations in Table 2 column order
// for a population of n processes.
func Relations(n int) []Relation {
	return []Relation{
		Safety{},
		Asynchrony{},
		SendEnabled{Procs: n},
		Delayable{},
		Memoryless{},
	}
}
