package metaprop

import "testing"

// TestExhaustiveMatrixMatchesFalsifier: both verification strategies
// must agree on every cell, including the extension rows.
func TestExhaustiveMatrixMatchesFalsifier(t *testing.T) {
	exact, err := ComputeExhaustive(true)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := ComputeWithExtensions(Checker{Trials: 150, Seed: 7}, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, prop := range exact.Order {
		for _, meta := range exact.Metas {
			a, err := exact.Preserved(prop, meta)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sampled.Preserved(prop, meta)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("%s × %s: exhaustive=%v falsifier=%v", prop, meta, a, b)
			}
		}
	}
}
