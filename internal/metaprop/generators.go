package metaprop

import (
	"fmt"
	"math/rand"

	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/trace"
)

// Generator produces random traces satisfying one property — the
// P(tr_below) premise of Equation 1. Generators aim to produce traces
// "at risk": shaped so that a relation that does NOT preserve the
// property has a real chance of breaking it.
type Generator func(rng *rand.Rand) trace.Trace

// GenConfig fixes the population and conventional parameters shared
// with property.Table1: n processes, 0..n-2 trusted, master 0, initial
// view = everyone.
type GenConfig struct {
	Procs    int
	Messages int
}

// DefaultGenConfig returns the population used by the Table 2
// computation.
func DefaultGenConfig() GenConfig { return GenConfig{Procs: 4, Messages: 8} }

func (c GenConfig) withDefaults() GenConfig {
	if c.Procs < 2 {
		c.Procs = 4
	}
	if c.Messages <= 0 {
		c.Messages = 8
	}
	return c
}

// randProc draws a process.
func randProc(rng *rand.Rand, n int) ids.ProcID { return ids.ProcID(rng.Intn(n)) }

// GenTotalOrder emits a global message order; every process delivers a
// random subsequence of it, so any two processes agree on common
// messages. Sends are sprinkled in (Total Order ignores them, but the
// Delayable/Send-Enabled relations need material to act on).
func (c GenConfig) GenTotalOrder(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	msgs := make([]trace.Message, c.Messages)
	for i := range msgs {
		msgs[i] = trace.Message{
			ID:     ids.MsgID(i + 1),
			Sender: randProc(rng, c.Procs),
			Body:   fmt.Sprintf("b%d", i),
		}
	}
	var tr trace.Trace
	for _, m := range msgs {
		tr = append(tr, trace.Send(m))
	}
	for p := 0; p < c.Procs; p++ {
		for _, m := range msgs {
			if rng.Float64() < 0.7 {
				tr = append(tr, trace.Deliver(ids.ProcID(p), m))
			}
		}
	}
	// Interleave across processes: shuffle deliveries while preserving
	// each process's internal order (riffle by random take).
	return riffleDeliveries(rng, tr, len(msgs))
}

// riffleDeliveries randomly interleaves the per-process delivery runs
// that follow the first nSends events, preserving each process's order.
func riffleDeliveries(rng *rand.Rand, tr trace.Trace, nSends int) trace.Trace {
	head := tr[:nSends].Clone()
	tail := tr[nSends:]
	perProc := make(map[ids.ProcID][]trace.Event)
	var order []ids.ProcID
	for _, e := range tail {
		p := e.Proc()
		if perProc[p] == nil {
			order = append(order, p)
		}
		perProc[p] = append(perProc[p], e.Clone())
	}
	out := head
	for {
		var nonEmpty []ids.ProcID
		for _, p := range order {
			if len(perProc[p]) > 0 {
				nonEmpty = append(nonEmpty, p)
			}
		}
		if len(nonEmpty) == 0 {
			break
		}
		p := nonEmpty[rng.Intn(len(nonEmpty))]
		out = append(out, perProc[p][0])
		perProc[p] = perProc[p][1:]
	}
	return out
}

// GenReliable emits sends followed by a delivery of every message at
// every process, in per-process random order.
func (c GenConfig) GenReliable(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	var tr trace.Trace
	msgs := make([]trace.Message, c.Messages)
	for i := range msgs {
		msgs[i] = trace.Message{
			ID:     ids.MsgID(i + 1),
			Sender: randProc(rng, c.Procs),
			Body:   fmt.Sprintf("b%d", i),
		}
		tr = append(tr, trace.Send(msgs[i]))
	}
	for p := 0; p < c.Procs; p++ {
		perm := rng.Perm(len(msgs))
		for _, i := range perm {
			tr = append(tr, trace.Deliver(ids.ProcID(p), msgs[i]))
		}
	}
	return riffleDeliveries(rng, tr, len(msgs))
}

// GenIntegrity emits deliveries whose senders are all trusted
// (processes 0..n-2).
func (c GenConfig) GenIntegrity(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	var tr trace.Trace
	for i := 0; i < c.Messages; i++ {
		m := trace.Message{
			ID:     ids.MsgID(i + 1),
			Sender: ids.ProcID(rng.Intn(c.Procs - 1)), // trusted only
			Body:   fmt.Sprintf("b%d", i),
		}
		tr = append(tr, trace.Send(m))
		for p := 0; p < c.Procs; p++ {
			if rng.Float64() < 0.6 {
				tr = append(tr, trace.Deliver(ids.ProcID(p), m))
			}
		}
	}
	return tr
}

// GenConfidential emits trusted traffic delivered only to trusted
// processes, and untrusted traffic anywhere.
func (c GenConfig) GenConfidential(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	untrusted := ids.ProcID(c.Procs - 1)
	var tr trace.Trace
	for i := 0; i < c.Messages; i++ {
		sender := randProc(rng, c.Procs)
		m := trace.Message{ID: ids.MsgID(i + 1), Sender: sender, Body: fmt.Sprintf("b%d", i)}
		tr = append(tr, trace.Send(m))
		for p := 0; p < c.Procs; p++ {
			dst := ids.ProcID(p)
			if sender != untrusted && dst == untrusted {
				continue // trusted traffic never reaches the untrusted
			}
			if rng.Float64() < 0.6 {
				tr = append(tr, trace.Deliver(dst, m))
			}
		}
	}
	return tr
}

// GenNoReplay emits deliveries where each process sees each body at most
// once — but bodies deliberately collide across processes and messages.
func (c GenConfig) GenNoReplay(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	var tr trace.Trace
	seen := make(map[string]map[ids.ProcID]bool)
	for i := 0; i < c.Messages; i++ {
		body := randBody(rng) // tiny alphabet: collisions guaranteed
		m := trace.Message{ID: ids.MsgID(i + 1), Sender: randProc(rng, c.Procs), Body: body}
		tr = append(tr, trace.Send(m))
		if seen[body] == nil {
			seen[body] = make(map[ids.ProcID]bool)
		}
		for p := 0; p < c.Procs; p++ {
			dst := ids.ProcID(p)
			if seen[body][dst] {
				continue
			}
			if rng.Float64() < 0.5 {
				seen[body][dst] = true
				tr = append(tr, trace.Deliver(dst, m))
			}
		}
	}
	return tr
}

// GenPrioritized emits deliveries where the master (process 0) always
// delivers first, with other processes' deliveries often adjacent to the
// master's — the at-risk shape for the Asynchrony relation.
func (c GenConfig) GenPrioritized(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	var tr trace.Trace
	for i := 0; i < c.Messages; i++ {
		m := trace.Message{ID: ids.MsgID(i + 1), Sender: randProc(rng, c.Procs), Body: fmt.Sprintf("b%d", i)}
		tr = append(tr, trace.Send(m))
		tr = append(tr, trace.Deliver(0, m))
		for p := 1; p < c.Procs; p++ {
			if rng.Float64() < 0.7 {
				tr = append(tr, trace.Deliver(ids.ProcID(p), m))
			}
		}
	}
	return tr
}

// GenAmoeba emits per-process disciplined send/deliver chains: a
// process's own delivery is immediately followed by its next send — the
// at-risk adjacency for the Delayable relation.
func (c GenConfig) GenAmoeba(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	var tr trace.Trace
	id := uint64(1)
	for p := 0; p < c.Procs && id <= uint64(c.Messages); p++ {
		chain := 1 + rng.Intn(3)
		for k := 0; k < chain && id <= uint64(c.Messages); k++ {
			m := trace.Message{ID: ids.MsgID(id), Sender: ids.ProcID(p), Body: fmt.Sprintf("b%d", id)}
			id++
			tr = append(tr, trace.Send(m))
			// Other processes may deliver in between.
			for q := 0; q < c.Procs; q++ {
				if q != p && rng.Float64() < 0.4 {
					tr = append(tr, trace.Deliver(ids.ProcID(q), m))
				}
			}
			// The final send of a chain may be left outstanding — still
			// legal ("awaiting" is not a violation), but it makes
			// concatenation hazardous, which is the point of §6.2.
			if k == chain-1 && rng.Float64() < 0.3 {
				break
			}
			tr = append(tr, trace.Deliver(ids.ProcID(p), m)) // own delivery unblocks
		}
	}
	return tr
}

// GenVSync emits a totally-ordered execution with view changes that
// exclude and re-admit the last process; data senders are always in the
// current view. Erasing a re-admitting view message (the Memoryless
// relation) is exactly what breaks it.
func (c GenConfig) GenVSync(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	all := ids.Procs(c.Procs)
	small := all[:c.Procs-1]
	var tr trace.Trace
	id := uint64(1)
	cur := all
	var global []trace.Message
	for i := 0; i < c.Messages; i++ {
		if rng.Float64() < 0.3 {
			// Toggle the view between full and reduced membership.
			var next []ids.ProcID
			if len(cur) == len(all) {
				next = small
			} else {
				next = all
			}
			cur = next
			v := trace.Message{ID: ids.MsgID(id), Sender: cur[0], IsView: true, View: append([]ids.ProcID(nil), next...)}
			id++
			global = append(global, v)
			continue
		}
		sender := cur[rng.Intn(len(cur))]
		global = append(global, trace.Message{ID: ids.MsgID(id), Sender: sender, Body: fmt.Sprintf("b%d", id)})
		id++
	}
	for _, m := range global {
		tr = append(tr, trace.Send(m))
	}
	// Every process delivers the full global sequence in order (views
	// and data alike), so each delivery happens in the view current at
	// that point.
	for p := 0; p < c.Procs; p++ {
		for _, m := range global {
			tr = append(tr, trace.Deliver(ids.ProcID(p), m))
		}
	}
	return riffleDeliveries(rng, tr, len(global))
}

// GenCausal simulates a causally consistent multicast execution: a
// process may deliver a message only once its causal past (the
// sender's history at send time) is in the process's own history.
// Send-then-deliver adjacencies occur naturally — the at-risk shape for
// the Delayable relation, which Causal Order lacks.
func (c GenConfig) GenCausal(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	var tr trace.Trace
	// hist[p] is p's (transitively closed) causal history, used as the
	// past of p's sends — this matches how property.CausalOrder
	// reconstructs causality.
	hist := make([]map[ids.MsgID]bool, c.Procs)
	// delivered[p] is what p actually delivered; forbidden[p] marks
	// messages p skipped past (a dependency of something it delivered)
	// and must now never deliver, or the order would be violated.
	delivered := make([]map[ids.MsgID]bool, c.Procs)
	forbidden := make([]map[ids.MsgID]bool, c.Procs)
	for i := range hist {
		hist[i] = make(map[ids.MsgID]bool)
		delivered[i] = make(map[ids.MsgID]bool)
		forbidden[i] = make(map[ids.MsgID]bool)
	}
	past := make(map[ids.MsgID]map[ids.MsgID]bool)
	sender := make(map[ids.MsgID]ids.ProcID)
	// undelivered[p] holds messages p has not delivered yet.
	undelivered := make([]map[ids.MsgID]bool, c.Procs)
	for i := range undelivered {
		undelivered[i] = make(map[ids.MsgID]bool)
	}
	nextID := uint64(1)
	steps := c.Messages * (c.Procs + 1)
	for s := 0; s < steps; s++ {
		p := rng.Intn(c.Procs)
		if int(nextID) <= c.Messages && rng.Float64() < 0.3 {
			// p multicasts a new message.
			m := trace.Message{ID: ids.MsgID(nextID), Sender: ids.ProcID(p), Body: fmt.Sprintf("b%d", nextID)}
			nextID++
			pp := make(map[ids.MsgID]bool, len(hist[p]))
			for id := range hist[p] {
				pp[id] = true
			}
			past[m.ID] = pp
			sender[m.ID] = m.Sender
			hist[p][m.ID] = true
			tr = append(tr, trace.Send(m))
			for q := 0; q < c.Procs; q++ {
				undelivered[q][m.ID] = true
			}
			continue
		}
		// p delivers a pending message all of whose (not-forbidden)
		// dependencies it has actually delivered.
		var choices []ids.MsgID
		for id := range undelivered[p] {
			if forbidden[p][id] {
				continue
			}
			ok := true
			for dep := range past[id] {
				if !delivered[p][dep] && !forbidden[p][dep] {
					ok = false
					break
				}
			}
			if ok {
				choices = append(choices, id)
			}
		}
		if len(choices) == 0 {
			continue
		}
		min := choices[0]
		for _, id := range choices {
			if id < min {
				min = id
			}
		}
		id := min
		if rng.Float64() < 0.3 {
			id = choices[rng.Intn(len(choices))]
		}
		delete(undelivered[p], id)
		delivered[p][id] = true
		// Any skipped dependency may now never be delivered at p.
		for dep := range past[id] {
			if !delivered[p][dep] {
				forbidden[p][dep] = true
			}
		}
		hist[p][id] = true
		for dep := range past[id] {
			hist[p][dep] = true
		}
		tr = append(tr, trace.Deliver(ids.ProcID(p), trace.Message{
			ID:     id,
			Sender: sender[id],
			Body:   fmt.Sprintf("b%d", id),
		}))
	}
	return tr
}

// GenEverySecond emits executions satisfying §5.1's "every second
// message is eventually delivered": per sender, even-numbered messages
// reach everyone; odd-numbered ones land wherever chance takes them.
func (c GenConfig) GenEverySecond(rng *rand.Rand) trace.Trace {
	c = c.withDefaults()
	var tr trace.Trace
	nth := make(map[ids.ProcID]int)
	for i := 0; i < c.Messages; i++ {
		sender := randProc(rng, c.Procs)
		m := trace.Message{ID: ids.MsgID(i + 1), Sender: sender, Body: fmt.Sprintf("b%d", i)}
		tr = append(tr, trace.Send(m))
		nth[sender]++
		even := nth[sender]%2 == 0
		for p := 0; p < c.Procs; p++ {
			if even || rng.Float64() < 0.4 {
				tr = append(tr, trace.Deliver(ids.ProcID(p), m))
			}
		}
	}
	return tr
}

// ForProperty returns the generator matching a Table 1 or extension
// property (by name). It panics on unknown properties: the registry and
// the property lists are maintained together.
func (c GenConfig) ForProperty(p property.Property) Generator {
	switch p.Name() {
	case "Causal Order":
		return c.GenCausal
	case "Every Second Delivered":
		return c.GenEverySecond
	case "Reliability":
		return c.GenReliable
	case "Total Order":
		return c.GenTotalOrder
	case "Integrity":
		return c.GenIntegrity
	case "Confidentiality":
		return c.GenConfidential
	case "No Replay":
		return c.GenNoReplay
	case "Prioritized Delivery":
		return c.GenPrioritized
	case "Amoeba":
		return c.GenAmoeba
	case "Virtual Synchrony":
		return c.GenVSync
	default:
		panic(fmt.Sprintf("metaprop: no generator for property %q", p.Name()))
	}
}
