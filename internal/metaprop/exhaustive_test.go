package metaprop

import (
	"testing"

	"repro/internal/property"
)

func propByName(t *testing.T, name string) property.Property {
	t.Helper()
	for _, p := range append(property.Table1(2), property.Extensions(2)...) {
		if p.Name() == name {
			return p
		}
	}
	t.Fatalf("no property %q", name)
	return nil
}

func relByName(t *testing.T, name string, procs int) Relation {
	t.Helper()
	for _, r := range Relations(procs) {
		if r.Name() == name {
			return r
		}
	}
	t.Fatalf("no relation %q", name)
	return nil
}

// TestEnumFindsKnownViolations: the bounded-exhaustive search must
// rediscover every relation-based ✗ cell, with small universes.
func TestEnumFindsKnownViolations(t *testing.T) {
	cases := []struct {
		prop, rel string
		cfg       EnumConfig
	}{
		{"Reliability", "Safety", EnumConfig{Procs: 2, Messages: 1, MaxLen: 4}},
		{"Reliability", "Send Enabled", EnumConfig{Procs: 2, Messages: 1, MaxLen: 3}},
		{"Prioritized Delivery", "Asynchronous", EnumConfig{Procs: 2, Messages: 1, MaxLen: 3}},
		// Amoeba and Every-Second need several messages from one sender:
		// in the universe, process 0 sends messages 2, 3, 4 and 5.
		{"Amoeba", "Delayable", EnumConfig{Procs: 2, Messages: 5, MaxLen: 3}},
		{"Amoeba", "Send Enabled", EnumConfig{Procs: 2, Messages: 1, MaxLen: 2}},
		{"Virtual Synchrony", "Memoryless", EnumConfig{Procs: 2, Messages: 4, MaxLen: 5}},
		{"Every Second Delivered", "Safety", EnumConfig{Procs: 2, Messages: 5, MaxLen: 4}},
		{"Every Second Delivered", "Send Enabled", EnumConfig{Procs: 2, Messages: 2, MaxLen: 2}},
		{"Every Second Delivered", "Memoryless", EnumConfig{Procs: 2, Messages: 5, MaxLen: 5}},
		{"Causal Order", "Delayable", EnumConfig{Procs: 2, Messages: 2, MaxLen: 6}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.prop+"×"+tc.rel, func(t *testing.T) {
			p := propByName(t, tc.prop)
			r := relByName(t, tc.rel, tc.cfg.Procs)
			cex, err := EnumCheck(p, r, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if cex == nil {
				t.Fatalf("bounded-exhaustive search missed the known %s × %s violation", tc.prop, tc.rel)
			}
			// The counterexample must be genuine.
			if !p.Holds(cex.Below) || p.Holds(cex.Above) {
				t.Fatalf("bogus counterexample:\n%v", cex)
			}
		})
	}
}

// TestEnumProvesPreservationUpToBound: ✓ cells survive the exhaustive
// sweep — a bounded proof, not a sample.
func TestEnumProvesPreservationUpToBound(t *testing.T) {
	cfg := EnumConfig{Procs: 2, Messages: 2, MaxLen: 5}
	cases := []struct{ prop, rel string }{
		{"Total Order", "Safety"},
		{"Total Order", "Asynchronous"},
		{"Total Order", "Delayable"},
		{"Total Order", "Memoryless"},
		{"Integrity", "Asynchronous"},
		{"Confidentiality", "Memoryless"},
		{"No Replay", "Memoryless"},
		{"Prioritized Delivery", "Safety"},
		{"Amoeba", "Asynchronous"},
		{"Reliability", "Delayable"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.prop+"×"+tc.rel, func(t *testing.T) {
			p := propByName(t, tc.prop)
			r := relByName(t, tc.rel, cfg.Procs)
			cex, err := EnumCheck(p, r, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if cex != nil {
				t.Fatalf("unexpected counterexample for a ✓ cell:\n%v", cex)
			}
		})
	}
}

func TestEnumComposable(t *testing.T) {
	cfg := EnumConfig{Procs: 2, Messages: 2, MaxLen: 3}
	// ✗ cells found…
	for _, name := range []string{"No Replay", "Amoeba", "Every Second Delivered"} {
		p := propByName(t, name)
		cex, err := EnumCheckComposable(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cex == nil {
			t.Errorf("composable violation for %s not found", name)
			continue
		}
		if !p.Holds(cex.Below) || !p.Holds(cex.Extra) || p.Holds(cex.Above) {
			t.Errorf("bogus composable counterexample for %s", name)
		}
	}
	// …and a ✓ cell proven up to the bound.
	p := propByName(t, "Total Order")
	cex, err := EnumCheckComposable(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Errorf("Total Order composability broken by:\n%v", cex)
	}
}

func TestEnumConfigValidation(t *testing.T) {
	p := propByName(t, "Total Order")
	if _, err := EnumCheck(p, Safety{}, EnumConfig{}); err == nil {
		t.Error("degenerate config accepted")
	}
	if _, err := EnumCheckComposable(p, EnumConfig{}); err == nil {
		t.Error("degenerate config accepted")
	}
}
