package metaprop

import (
	"repro/internal/ids"
	"repro/internal/trace"
)

// Hand-constructed counterexamples for every ✗ cell of Table 2. The
// randomized falsifier finds these classes of violation too; keeping
// explicit witnesses makes the matrix deterministic and doubles as
// documentation of *why* each cell fails. Each witness is verified by
// the matrix computation (the Below trace must satisfy the property and
// the Above trace must violate it), so a witness that rots fails loudly.

func wmsg(id uint64, sender int32, body string) trace.Message {
	return trace.Message{ID: ids.MsgID(id), Sender: ids.ProcID(sender), Body: body}
}

func wview(id uint64, sender int32, members ...int32) trace.Message {
	m := trace.Message{ID: ids.MsgID(id), Sender: ids.ProcID(sender), IsView: true}
	for _, p := range members {
		m.View = append(m.View, ids.ProcID(p))
	}
	return m
}

// Witness is a deterministic counterexample for one Table 2 cell. For
// relation cells, Above is the perturbed trace that violates the
// property; for Composable cells, Extra is the second trace and Above
// is left nil (the violation is the concatenation Below ++ Extra).
type Witness struct {
	Property string
	Relation string
	Below    trace.Trace
	Extra    trace.Trace
	Above    trace.Trace
}

// Witnesses returns the registry of counterexamples for the ✗ cells,
// using the conventional Table1 parameters (master 0, full group as
// receivers/initial view).
func Witnesses() []Witness {
	m1 := wmsg(1, 0, "a")
	m2 := wmsg(2, 0, "b")

	var out []Witness

	// Reliability is not Safety (§5.1): chop the trace after the Send
	// and the message is no longer delivered everywhere.
	out = append(out, Witness{
		Property: "Reliability",
		Relation: "Safety",
		Below:    trace.Trace{trace.Send(m1), trace.Deliver(0, m1), trace.Deliver(1, m1), trace.Deliver(2, m1), trace.Deliver(3, m1)},
		Above:    trace.Trace{trace.Send(m1)},
	})
	// Reliability is not Send Enabled: appending a Send leaves it
	// undelivered.
	out = append(out, Witness{
		Property: "Reliability",
		Relation: "Send Enabled",
		Below:    trace.Trace{trace.Send(m1), trace.Deliver(0, m1), trace.Deliver(1, m1), trace.Deliver(2, m1), trace.Deliver(3, m1)},
		Above:    trace.Trace{trace.Send(m1), trace.Deliver(0, m1), trace.Deliver(1, m1), trace.Deliver(2, m1), trace.Deliver(3, m1), trace.Send(m2)},
	})
	// Prioritized Delivery is not Asynchronous (§5.2): swapping the
	// master's delivery with another process's adjacent delivery
	// reverses who delivered first.
	out = append(out, Witness{
		Property: "Prioritized Delivery",
		Relation: "Asynchronous",
		Below:    trace.Trace{trace.Send(m1), trace.Deliver(0, m1), trace.Deliver(1, m1)},
		Above:    trace.Trace{trace.Send(m1), trace.Deliver(1, m1), trace.Deliver(0, m1)},
	})
	// Amoeba is not Delayable (§5.3): delaying the sender's own
	// delivery past its next send breaks the blocking discipline.
	out = append(out, Witness{
		Property: "Amoeba",
		Relation: "Delayable",
		Below:    trace.Trace{trace.Send(m1), trace.Deliver(0, m1), trace.Send(m2), trace.Deliver(0, m2)},
		Above:    trace.Trace{trace.Send(m1), trace.Send(m2), trace.Deliver(0, m1), trace.Deliver(0, m2)},
	})
	// Amoeba is not Send Enabled (§5.4): appending a send while the
	// previous one is outstanding violates it outright.
	out = append(out, Witness{
		Property: "Amoeba",
		Relation: "Send Enabled",
		Below:    trace.Trace{trace.Send(m1)},
		Above:    trace.Trace{trace.Send(m1), trace.Send(m2)},
	})
	// Amoeba is not Composable: each trace may end with an outstanding
	// send; gluing them puts a fresh send inside the wait.
	out = append(out, Witness{
		Property: "Amoeba",
		Relation: "Composable",
		Below:    trace.Trace{trace.Send(m1)},
		Extra:    trace.Trace{trace.Send(wmsg(10, 0, "x")), trace.Deliver(0, wmsg(10, 0, "x"))},
	})
	// Virtual Synchrony is not Memoryless (§6.1): erase the view message
	// that re-admitted process 3 and its subsequent traffic becomes
	// out-of-view. (Initial view = {0,1,2,3}; v1 excludes 3; v2
	// re-admits it.)
	v1 := wview(20, 0, 0, 1, 2)
	v2 := wview(21, 0, 0, 1, 2, 3)
	d3 := wmsg(22, 3, "late")
	out = append(out, Witness{
		Property: "Virtual Synchrony",
		Relation: "Memoryless",
		Below: trace.Trace{
			trace.Send(v1), trace.Deliver(0, v1),
			trace.Send(v2), trace.Deliver(0, v2),
			trace.Send(d3), trace.Deliver(0, d3),
		},
		Above: trace.Trace{
			trace.Send(v1), trace.Deliver(0, v1),
			trace.Send(d3), trace.Deliver(0, d3),
		},
	})
	// Virtual Synchrony is not Composable: the first trace shrinks the
	// view; the second, legal from the initial view, delivers from the
	// now-excluded member.
	out = append(out, Witness{
		Property: "Virtual Synchrony",
		Relation: "Composable",
		Below:    trace.Trace{trace.Send(v1), trace.Deliver(0, v1)},
		Extra:    trace.Trace{trace.Send(wmsg(30, 3, "x")), trace.Deliver(0, wmsg(30, 3, "x"))},
	})
	// No Replay is not Composable (§6.2): "even if a message body is
	// delivered at most once in tr1 and tr2 ... the body may be
	// delivered twice in the concatenation".
	out = append(out, Witness{
		Property: "No Replay",
		Relation: "Composable",
		Below:    trace.Trace{trace.Send(wmsg(1, 0, "pay")), trace.Deliver(1, wmsg(1, 0, "pay"))},
		Extra:    trace.Trace{trace.Send(wmsg(2, 0, "pay")), trace.Deliver(1, wmsg(2, 0, "pay"))},
	})
	// Every Second Delivered (the paper's §5.1 non-safety example,
	// extension row). Not safe: chop the deliveries off.
	es1 := wmsg(50, 0, "first")
	es2 := wmsg(51, 0, "second")
	fullES := trace.Trace{
		trace.Send(es1), trace.Send(es2),
		trace.Deliver(0, es2), trace.Deliver(1, es2), trace.Deliver(2, es2), trace.Deliver(3, es2),
	}
	out = append(out, Witness{
		Property: "Every Second Delivered",
		Relation: "Safety",
		Below:    fullES,
		Above:    fullES.Prefix(2),
	})
	// Not send-enabled: the appended send may itself be a sender's
	// even-numbered message, owed delivery that never happens.
	out = append(out, Witness{
		Property: "Every Second Delivered",
		Relation: "Send Enabled",
		Below:    trace.Trace{trace.Send(es1)},
		Above:    trace.Trace{trace.Send(es1), trace.Send(es2)},
	})
	// Not memoryless: erasing an odd message renumbers its sender's
	// stream, turning a delivered even message into an undelivered one.
	es3 := wmsg(52, 0, "third")
	out = append(out, Witness{
		Property: "Every Second Delivered",
		Relation: "Memoryless",
		Below: trace.Trace{
			trace.Send(es1), trace.Send(es2), trace.Send(es3),
			trace.Deliver(0, es2), trace.Deliver(1, es2), trace.Deliver(2, es2), trace.Deliver(3, es2),
		},
		Above: trace.Trace{
			trace.Send(es2), trace.Send(es3), // es1 erased: es3 is now "second"
			trace.Deliver(0, es2), trace.Deliver(1, es2), trace.Deliver(2, es2), trace.Deliver(3, es2),
		},
	})
	// Not composable — §5.1's switching argument verbatim: two streams
	// of one (odd, obligation-free) message each; glued together the
	// second trace's message becomes even and undelivered.
	out = append(out, Witness{
		Property: "Every Second Delivered",
		Relation: "Composable",
		Below:    trace.Trace{trace.Send(es1)},
		Extra:    trace.Trace{trace.Send(wmsg(60, 0, "renumbered"))},
	})
	// Causal Order (extension) is not Delayable: delaying p0's delivery
	// of m1 past its send of m2 creates the causal edge m1 → m2, which
	// p1's delivery order (m2 before m1) then violates.
	cm1 := wmsg(40, 1, "m1")
	cm2 := wmsg(41, 0, "m2")
	out = append(out, Witness{
		Property: "Causal Order",
		Relation: "Delayable",
		Below: trace.Trace{
			trace.Send(cm1),
			trace.Send(cm2), trace.Deliver(0, cm1), // adjacent, same process, swappable
			trace.Deliver(0, cm2),
			trace.Deliver(1, cm2), trace.Deliver(1, cm1),
		},
		Above: trace.Trace{
			trace.Send(cm1),
			trace.Deliver(0, cm1), trace.Send(cm2), // m1 now in m2's past
			trace.Deliver(0, cm2),
			trace.Deliver(1, cm2), trace.Deliver(1, cm1), // violates at p1
		},
	})
	return out
}
