package metaprop

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/property"
	"repro/internal/trace"
)

// expectedMatrix is the derived Table 2 (see EXPERIMENTS.md). Every cell
// the paper's prose states explicitly is marked; the rest follow from
// the property formalizations. Column order: Safety, Asynchronous,
// Send Enabled, Delayable, Memoryless, Composable.
var expectedMatrix = map[string][6]bool{
	"Reliability":          {false, true, false, true, true, true},
	"Total Order":          {true, true, true, true, true, true},
	"Integrity":            {true, true, true, true, true, true},
	"Confidentiality":      {true, true, true, true, true, true},
	"No Replay":            {true, true, true, true, true, false},
	"Prioritized Delivery": {true, false, true, true, true, true},
	"Amoeba":               {true, true, false, false, true, false},
	"Virtual Synchrony":    {true, true, true, true, false, false},
}

func computeMatrix(t *testing.T) *Matrix {
	t.Helper()
	m, err := Compute(Checker{Trials: 150, Seed: 7}, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixMatchesDerivation(t *testing.T) {
	m := computeMatrix(t)
	metas := m.Metas
	if len(metas) != 6 {
		t.Fatalf("got %d meta-properties, want 6", len(metas))
	}
	for prop, want := range expectedMatrix {
		for i, meta := range metas {
			got, err := m.Preserved(prop, meta)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[i] {
				t.Errorf("%s × %s = %v, want %v", prop, meta, got, want[i])
			}
		}
	}
}

// TestPaperProseCells pins exactly the cells the paper states in prose
// (§5–§6), independent of the full derivation above.
func TestPaperProseCells(t *testing.T) {
	m := computeMatrix(t)
	mustBe := func(prop, meta string, want bool) {
		t.Helper()
		got, err := m.Preserved(prop, meta)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("paper says %s × %s should be %v, computed %v", prop, meta, want, got)
		}
	}
	mustBe("Total Order", "Safety", true)                 // §5.1
	mustBe("Reliability", "Safety", false)                // §5.1
	mustBe("Prioritized Delivery", "Asynchronous", false) // §5.2
	mustBe("Amoeba", "Delayable", false)                  // §5.3
	mustBe("Amoeba", "Send Enabled", false)               // §5.4
	mustBe("Virtual Synchrony", "Memoryless", false)      // §6.1
	mustBe("No Replay", "Memoryless", true)               // §6.1
	mustBe("No Replay", "Composable", false)              // §6.2
}

// TestAllPreservedClass pins §6.3: Total Order, Integrity and
// Confidentiality have all six meta-properties and are therefore in the
// class the SP provably supports; the others are not.
func TestAllPreservedClass(t *testing.T) {
	m := computeMatrix(t)
	inClass := map[string]bool{
		"Total Order":     true,
		"Integrity":       true,
		"Confidentiality": true,
	}
	for _, prop := range m.Order {
		got, err := m.AllPreserved(prop)
		if err != nil {
			t.Fatal(err)
		}
		if got != inClass[prop] {
			t.Errorf("AllPreserved(%s) = %v, want %v", prop, got, inClass[prop])
		}
	}
}

// TestExtensionMatrixCausalOrder pins the extension row: Causal Order
// has every meta-property except Delayable — the same "outside the
// class yet preserved by SP" status the paper gives Reliability.
func TestExtensionMatrixCausalOrder(t *testing.T) {
	m, err := ComputeWithExtensions(Checker{Trials: 150, Seed: 7}, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"Safety":       true,
		"Asynchronous": true,
		"Send Enabled": true,
		"Delayable":    false,
		"Memoryless":   true,
		"Composable":   true,
	}
	for meta, w := range want {
		got, err := m.Preserved("Causal Order", meta)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("Causal Order × %s = %v, want %v", meta, got, w)
		}
	}
	all, err := m.AllPreserved("Causal Order")
	if err != nil {
		t.Fatal(err)
	}
	if all {
		t.Error("Causal Order must be outside the SP-safe class")
	}
	// The §5.1 example: Safety, Send Enabled, Memoryless and Composable
	// all fail; only the two reordering relations leave it intact.
	wantES := map[string]bool{
		"Safety":       false,
		"Asynchronous": true,
		"Send Enabled": false,
		"Delayable":    true,
		"Memoryless":   false,
		"Composable":   false,
	}
	for meta, w := range wantES {
		got, err := m.Preserved("Every Second Delivered", meta)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("Every Second Delivered × %s = %v, want %v", meta, got, w)
		}
	}
	// The random search also finds the Delayable violation unaided.
	props := property.Extensions(4)
	gc := DefaultGenConfig()
	cex, err := Checker{Trials: 2000, Seed: 3}.CheckRelation(props[0], Delayable{}, gc.ForProperty(props[0]))
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Error("random search failed to break Causal Order × Delayable")
	}
}

func TestWitnessesAllVerify(t *testing.T) {
	props := append(property.Table1(4), property.Extensions(4)...)
	byName := map[string]property.Property{}
	for _, p := range props {
		byName[p.Name()] = p
	}
	for _, w := range Witnesses() {
		p, ok := byName[w.Property]
		if !ok {
			t.Fatalf("witness references unknown property %q", w.Property)
		}
		cex, err := verifyWitness(p, &w)
		if err != nil {
			t.Errorf("witness %s/%s does not verify: %v", w.Property, w.Relation, err)
			continue
		}
		if cex.Property != w.Property || cex.Relation != w.Relation {
			t.Errorf("witness %s/%s produced mislabelled counterexample", w.Property, w.Relation)
		}
		if cex.String() == "" {
			t.Error("empty counterexample rendering")
		}
	}
}

func TestGeneratorsSatisfyTheirProperties(t *testing.T) {
	gc := DefaultGenConfig()
	rng := rand.New(rand.NewSource(3))
	for _, p := range append(property.Table1(gc.Procs), property.Extensions(gc.Procs)...) {
		gen := gc.ForProperty(p)
		for i := 0; i < 200; i++ {
			tr := gen(rng)
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s generator emitted invalid trace: %v", p.Name(), err)
			}
			if !p.Holds(tr) {
				t.Fatalf("%s generator emitted violating trace:\n%v", p.Name(), tr)
			}
		}
	}
}

func TestForPropertyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ForProperty(unknown) did not panic")
		}
	}()
	DefaultGenConfig().ForProperty(fakeProp{})
}

type fakeProp struct{}

func (fakeProp) Name() string              { return "Fake" }
func (fakeProp) Holds(tr trace.Trace) bool { return true }

func TestRelationsPerturbStayRelated(t *testing.T) {
	// Structural sanity: each relation's output obeys its defining
	// constraints (prefix / same multiset up to allowed rewrites).
	rng := rand.New(rand.NewSource(5))
	gc := DefaultGenConfig()
	base := gc.GenTotalOrder(rng)

	pre := Safety{}.Perturb(rng, base)
	if len(pre) > len(base) {
		t.Error("Safety produced a longer trace")
	}
	for i := range pre {
		if pre[i].String() != base[i].String() {
			t.Error("Safety did not produce a prefix")
		}
	}

	async := Asynchrony{}.Perturb(rng, base)
	if len(async) != len(base) {
		t.Error("Asynchrony changed the length")
	}
	// Per-process subsequences must be identical.
	perProc := func(tr trace.Trace, p ids.ProcID) string {
		var b strings.Builder
		for _, e := range tr {
			if e.Proc() == p {
				b.WriteString(e.String())
			}
		}
		return b.String()
	}
	for _, p := range base.Processes() {
		if perProc(base, p) != perProc(async, p) {
			t.Errorf("Asynchrony reordered events of %v", p)
		}
	}

	se := SendEnabled{Procs: 4}.Perturb(rng, base)
	if len(se) <= len(base) {
		t.Error("SendEnabled added nothing")
	}
	for _, e := range se[len(base):] {
		if e.Kind != trace.SendKind {
			t.Error("SendEnabled appended a non-Send event")
		}
	}

	mem := Memoryless{}.Perturb(rng, base)
	if len(mem) >= len(base) {
		t.Error("Memoryless removed nothing")
	}
	// Erasure must be whole-message: every surviving id keeps all its
	// events.
	count := func(tr trace.Trace, id ids.MsgID) int {
		n := 0
		for _, e := range tr {
			if e.Msg.ID == id {
				n++
			}
		}
		return n
	}
	for _, id := range mem.MessageIDs() {
		if count(mem, id) != count(base, id) {
			t.Errorf("Memoryless partially erased message %v", id)
		}
	}
}

func TestPerturbEmptyTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range Relations(4) {
		out := r.Perturb(rng, nil)
		if len(out) != 0 && r.Name() != "Send Enabled" {
			t.Errorf("%s invented events from an empty trace", r.Name())
		}
	}
}

func TestCheckerCatchesGeneratorBugs(t *testing.T) {
	bad := func(rng *rand.Rand) trace.Trace {
		m := wmsg(1, 3, "forged") // untrusted sender delivered
		return trace.Trace{trace.Deliver(0, m)}
	}
	props := property.Table1(4)
	var integ property.Property
	for _, p := range props {
		if p.Name() == "Integrity" {
			integ = p
		}
	}
	c := Checker{Trials: 5, Seed: 1}
	if _, err := c.CheckRelation(integ, Safety{}, bad); err == nil {
		t.Error("CheckRelation accepted a violating generator")
	}
	if _, err := c.CheckComposable(integ, bad); err == nil {
		t.Error("CheckComposable accepted a violating generator")
	}
}

func TestMatrixRender(t *testing.T) {
	m := computeMatrix(t)
	out := m.Render()
	if !strings.Contains(out, "Total Order") || !strings.Contains(out, "Amoeba") {
		t.Error("render missing rows")
	}
	if !strings.Contains(out, "SP-safe") {
		t.Error("render missing SP-safe column")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 8 properties
		t.Errorf("render has %d lines, want 9:\n%s", len(lines), out)
	}
}

func TestMatrixUnknownLookups(t *testing.T) {
	m := computeMatrix(t)
	if _, err := m.Preserved("Nope", "Safety"); err == nil {
		t.Error("unknown property accepted")
	}
	if _, err := m.Preserved("Amoeba", "Nope"); err == nil {
		t.Error("unknown meta accepted")
	}
	if _, err := m.AllPreserved("Nope"); err == nil {
		t.Error("unknown property accepted by AllPreserved")
	}
}

// TestRandomSearchFindsViolationsWithoutWitnesses removes the witness
// shortcut and checks the falsifier alone discovers at least the
// classic ✗ cells — evidence the search is genuinely adversarial.
func TestRandomSearchFindsViolationsWithoutWitnesses(t *testing.T) {
	gc := DefaultGenConfig()
	c := Checker{Trials: 2000, Seed: 11}
	props := property.Table1(gc.Procs)
	byName := map[string]property.Property{}
	for _, p := range props {
		byName[p.Name()] = p
	}
	relByName := map[string]Relation{}
	for _, r := range Relations(gc.Procs) {
		relByName[r.Name()] = r
	}
	cases := []struct{ prop, meta string }{
		{"Reliability", "Safety"},
		{"Reliability", "Send Enabled"},
		{"Prioritized Delivery", "Asynchronous"},
		{"Amoeba", "Delayable"},
		{"Amoeba", "Send Enabled"},
		{"Virtual Synchrony", "Memoryless"},
	}
	for _, tc := range cases {
		p := byName[tc.prop]
		gen := gc.ForProperty(p)
		cex, err := c.CheckRelation(p, relByName[tc.meta], gen)
		if err != nil {
			t.Fatal(err)
		}
		if cex == nil {
			t.Errorf("random search failed to break %s × %s", tc.prop, tc.meta)
		}
	}
	// Composable ✗ cells.
	for _, prop := range []string{"No Replay", "Virtual Synchrony", "Amoeba"} {
		p := byName[prop]
		cex, err := c.CheckComposable(p, gc.ForProperty(p))
		if err != nil {
			t.Fatal(err)
		}
		if cex == nil {
			t.Errorf("random search failed to break %s × Composable", prop)
		}
	}
}
