package metaprop

import (
	"fmt"
	"strings"

	"repro/internal/property"
)

// Cell is one entry of Table 2.
type Cell struct {
	Property string
	Meta     string
	// Preserved is the cell's value: true = ✓ (no counterexample
	// exists/was found), false = ✗ (witnessed).
	Preserved bool
	// Counterexample is non-nil exactly when Preserved is false.
	Counterexample *Counterexample
	// FromWitness reports whether the counterexample came from the
	// hand-built registry rather than the randomized search.
	FromWitness bool
}

// Matrix is the computed Table 2.
type Matrix struct {
	// Metas is the column order.
	Metas []string
	// Rows is one slice of cells per property, in Metas order.
	Rows map[string][]Cell
	// Order is the row order (property names).
	Order []string
}

// MetaNames is the Table 2 column order: the four layering
// meta-properties of §5, then the two switching meta-properties of §6.
func MetaNames(n int) []string {
	names := make([]string, 0, 6)
	for _, r := range Relations(n) {
		names = append(names, r.Name())
	}
	return append(names, "Composable")
}

// Compute regenerates Table 2 for the standard population: for every
// Table 1 property and every meta-property, check the hand-built
// witness (if any), then run the randomized falsifier.
func Compute(c Checker, gc GenConfig) (*Matrix, error) {
	return ComputeFor(c, gc, property.Table1(gc.withDefaults().Procs))
}

// ComputeWithExtensions regenerates Table 2 plus the repository's
// extension rows (Causal Order).
func ComputeWithExtensions(c Checker, gc GenConfig) (*Matrix, error) {
	gc = gc.withDefaults()
	props := property.Table1(gc.Procs)
	props = append(props, property.Extensions(gc.Procs)...)
	return ComputeFor(c, gc, props)
}

// ComputeFor runs the matrix over an explicit property list; every
// property must have a registered generator (GenConfig.ForProperty).
func ComputeFor(c Checker, gc GenConfig, props []property.Property) (*Matrix, error) {
	gc = gc.withDefaults()
	rels := Relations(gc.Procs)
	witnesses := Witnesses()

	findWitness := func(prop, meta string) *Witness {
		for i := range witnesses {
			if witnesses[i].Property == prop && witnesses[i].Relation == meta {
				return &witnesses[i]
			}
		}
		return nil
	}

	m := &Matrix{
		Metas: MetaNames(gc.Procs),
		Rows:  make(map[string][]Cell),
	}
	for _, p := range props {
		m.Order = append(m.Order, p.Name())
		gen := gc.ForProperty(p)
		var row []Cell
		check := func(meta string, search func() (*Counterexample, error)) error {
			cell := Cell{Property: p.Name(), Meta: meta, Preserved: true}
			if w := findWitness(p.Name(), meta); w != nil {
				cex, err := verifyWitness(p, w)
				if err != nil {
					return err
				}
				cell.Preserved = false
				cell.Counterexample = cex
				cell.FromWitness = true
			} else {
				cex, err := search()
				if err != nil {
					return err
				}
				if cex != nil {
					cell.Preserved = false
					cell.Counterexample = cex
				}
			}
			row = append(row, cell)
			return nil
		}
		for _, r := range rels {
			r := r
			if err := check(r.Name(), func() (*Counterexample, error) {
				return c.CheckRelation(p, r, gen)
			}); err != nil {
				return nil, err
			}
		}
		if err := check("Composable", func() (*Counterexample, error) {
			return c.CheckComposable(p, gen)
		}); err != nil {
			return nil, err
		}
		m.Rows[p.Name()] = row
	}
	return m, nil
}

// verifyWitness checks that a registered witness really is a
// counterexample: Below (and Extra) satisfy the property, the violating
// trace does not.
func verifyWitness(p property.Property, w *Witness) (*Counterexample, error) {
	if !p.Holds(w.Below) {
		return nil, fmt.Errorf("metaprop: witness %s/%s: tr_below violates the property", w.Property, w.Relation)
	}
	above := w.Above
	if w.Relation == "Composable" {
		if !p.Holds(w.Extra) {
			return nil, fmt.Errorf("metaprop: witness %s/%s: tr_2 violates the property", w.Property, w.Relation)
		}
		var err error
		above, err = w.Below.Concat(w.Extra)
		if err != nil {
			return nil, fmt.Errorf("metaprop: witness %s/%s: %w", w.Property, w.Relation, err)
		}
	}
	if p.Holds(above) {
		return nil, fmt.Errorf("metaprop: witness %s/%s: tr_above does not violate the property", w.Property, w.Relation)
	}
	return &Counterexample{
		Property: w.Property,
		Relation: w.Relation,
		Below:    w.Below,
		Extra:    w.Extra,
		Above:    above,
	}, nil
}

// Preserved reports one cell's value; it returns an error for unknown
// names.
func (m *Matrix) Preserved(prop, meta string) (bool, error) {
	row, ok := m.Rows[prop]
	if !ok {
		return false, fmt.Errorf("metaprop: unknown property %q", prop)
	}
	for _, c := range row {
		if c.Meta == meta {
			return c.Preserved, nil
		}
	}
	return false, fmt.Errorf("metaprop: unknown meta-property %q", meta)
}

// AllPreserved reports whether every cell in a property's row is ✓ —
// §6.3's sufficient condition for the property to be preserved by the
// switching protocol.
func (m *Matrix) AllPreserved(prop string) (bool, error) {
	row, ok := m.Rows[prop]
	if !ok {
		return false, fmt.Errorf("metaprop: unknown property %q", prop)
	}
	for _, c := range row {
		if !c.Preserved {
			return false, nil
		}
	}
	return true, nil
}

// Render prints the matrix in the layout of the paper's Table 2.
func (m *Matrix) Render() string {
	short := map[string]string{
		"Safety":       "Safe",
		"Asynchronous": "Async",
		"Send Enabled": "SendEn",
		"Delayable":    "Delay",
		"Memoryless":   "MemLess",
		"Composable":   "Comp",
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "")
	for _, meta := range m.Metas {
		name := short[meta]
		if name == "" {
			name = meta
		}
		fmt.Fprintf(&b, "%9s", name)
	}
	fmt.Fprintf(&b, "%12s\n", "SP-safe")
	for _, prop := range m.Order {
		fmt.Fprintf(&b, "%-22s", prop)
		all := true
		for _, c := range m.Rows[prop] {
			mark := "+"
			if !c.Preserved {
				mark = "-"
				all = false
			}
			fmt.Fprintf(&b, "%9s", mark)
		}
		mark := "yes"
		if !all {
			mark = "no"
		}
		fmt.Fprintf(&b, "%12s\n", mark)
	}
	return b.String()
}
