package obs

import (
	"testing"
	"time"

	"repro/internal/ids"
)

// Zero-alloc regression tests for the observability fast paths. The
// instrumented hot paths (one Record per message event) must not
// allocate — neither with the Nop recorder (Config.Recorder nil) nor
// with the metrics registry counting events. Events are value structs
// and Recorder.Record takes the concrete type, so there is no interface
// boxing; these tests pin that property.

func TestRecordAllocsNop(t *testing.T) {
	r := OrNop(nil)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(TokenPass(time.Millisecond, 1, 2, 1, 3, 0))
	})
	if allocs != 0 {
		t.Fatalf("Nop Record allocated %.1f times per op, want 0", allocs)
	}
}

func TestRecordAllocsMetricsCounter(t *testing.T) {
	m := NewMetrics()
	r := m.Recorder()
	// Warm the member entry: the first Record allocates the per-member
	// registry slot, steady state must not.
	r.Record(TokenPass(time.Millisecond, 1, 2, 1, 3, 0))
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(TokenPass(time.Millisecond, 1, 2, 1, 3, 0))
	})
	if allocs != 0 {
		t.Fatalf("metrics counter Record allocated %.1f times per op, want 0", allocs)
	}
	if got := m.Counter(1, CounterKey(EvTokenPass)); got != 101*100+1 {
		// AllocsPerRun runs the body runs+1 times (one warm-up round
		// included in its own accounting); just sanity-check it counted.
		if got == 0 {
			t.Fatal("metrics recorder did not count events")
		}
	}
}

var benchEventSink Event

func BenchmarkRecordNop(b *testing.B) {
	r := OrNop(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Shed(time.Millisecond, 1, 2, ShedIngress, 7))
	}
}

func BenchmarkRecordMetricsCounter(b *testing.B) {
	m := NewMetrics()
	r := m.Recorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(Shed(time.Millisecond, 1, 2, ShedIngress, 7))
	}
}

func BenchmarkEventConstruct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchEventSink = TokenPass(time.Duration(i), ids.ProcID(1), ids.ProcID(2), 1, uint64(i), 0)
	}
}
