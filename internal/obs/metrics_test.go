package obs

import (
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},       // 1000 µs -> bits.Len64 = 10
		{31 * time.Millisecond, 15},  // 31000 µs
		{-time.Second, 0},            // clamps to zero
		{time.Duration(1) << 62, 39}, // saturates in the last bucket
	}
	for _, c := range cases {
		before := h.counts[c.bucket]
		h.Observe(c.d)
		if h.counts[c.bucket] != before+1 {
			t.Errorf("Observe(%v) did not land in bucket %d", c.d, c.bucket)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	if got := BucketLow(1); got != time.Microsecond {
		t.Errorf("BucketLow(1) = %v", got)
	}
	if got := BucketLow(11); got != 1024*time.Microsecond {
		t.Errorf("BucketLow(11) = %v", got)
	}
}

func TestHistogramMergeAndTrim(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(3 * time.Microsecond)
	b.Observe(time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 || a.Sum() != time.Microsecond+3*time.Microsecond+time.Millisecond {
		t.Fatalf("merge wrong: n=%d sum=%v", a.Count(), a.Sum())
	}
	counts := a.Counts()
	if len(counts) != 11 { // last populated bucket is 10 (1ms)
		t.Fatalf("trimmed counts len = %d, want 11", len(counts))
	}
	var empty Histogram
	if len(empty.Counts()) != 0 {
		t.Error("empty histogram should trim to no buckets")
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Single observation: every quantile is that observation exactly
	// (single-bucket mass returns the mean).
	var one Histogram
	one.Observe(5 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 5*time.Millisecond {
			t.Errorf("singleton Quantile(%v) = %v, want 5ms", q, got)
		}
	}
	// Several observations in one bucket: still the mean.
	var same Histogram
	same.Observe(600 * time.Microsecond)
	same.Observe(1000 * time.Microsecond) // both in bucket 10: [512µs,1024µs)
	if got := same.Quantile(0.5); got != 800*time.Microsecond {
		t.Errorf("single-bucket Quantile(0.5) = %v, want 800µs", got)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// 10 observations in bucket 10 ([512µs,1024µs)) and 10 in bucket 11
	// ([1024µs,2048µs)): the median falls exactly on the bucket edge and
	// the extremes on the outer bucket bounds.
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(600 * time.Microsecond)
		h.Observe(1500 * time.Microsecond)
	}
	if got := h.Quantile(0.5); got != 1024*time.Microsecond {
		t.Errorf("Quantile(0.5) = %v, want 1024µs", got)
	}
	if got := h.Quantile(0); got != 512*time.Microsecond {
		t.Errorf("Quantile(0) = %v, want 512µs", got)
	}
	if got := h.Quantile(1); got != 2048*time.Microsecond {
		t.Errorf("Quantile(1) = %v, want 2048µs", got)
	}
	// Out-of-range q clamps rather than panicking.
	if got := h.Quantile(-3); got != 512*time.Microsecond {
		t.Errorf("Quantile(-3) = %v, want 512µs", got)
	}
	if got := h.Quantile(7); got != 2048*time.Microsecond {
		t.Errorf("Quantile(7) = %v, want 2048µs", got)
	}
	// Quartile inside a bucket: rank 5 of 10 in [512µs,1024µs).
	if got := h.Quantile(0.25); got != 768*time.Microsecond {
		t.Errorf("Quantile(0.25) = %v, want 768µs", got)
	}
	if lo, hi := BucketHigh(0), BucketHigh(HistogramBuckets-1); lo != time.Microsecond || hi != 2*BucketLow(HistogramBuckets-1) {
		t.Errorf("BucketHigh bounds wrong: %v %v", lo, hi)
	}
}

func TestMetricsRecorderMapsEvents(t *testing.T) {
	m := NewMetrics()
	r := m.Recorder()
	if !r.Enabled() {
		t.Fatal("metrics recorder disabled")
	}
	r.Record(TokenPass(0, 1, 2, 1, 0, 0))
	r.Record(TokenPass(1, 1, 2, 1, 0, 0))
	r.Record(WedgeTimeout(2, 1, 1))
	r.Record(TokenRegen(3, 1, 0, 1))
	r.Record(SwitchComplete(4, 1, 1, 1, 31*time.Millisecond))
	r.Record(TokenHold(5, 1, 1, 0, 0)) // trace-only: no counter
	r.Record(Crash(6, 2))

	if got := m.Counter(1, KeyTokenPasses); got != 2 {
		t.Errorf("token passes = %d", got)
	}
	if got := m.Counter(1, KeyWedgeTimeouts); got != 1 {
		t.Errorf("wedge timeouts = %d", got)
	}
	if got := m.Counter(1, KeyTokensRegenerated); got != 1 {
		t.Errorf("regens = %d", got)
	}
	if got := m.Counter(2, KeyNetCrashes); got != 1 {
		t.Errorf("crashes = %d", got)
	}
	h := m.Hist(1, KeySwitchDuration)
	if h == nil || h.Count() != 1 || h.Sum() != 31*time.Millisecond {
		t.Errorf("switch duration histogram wrong: %+v", h)
	}
	if CounterKey(EvTokenHold) != "" || CounterKey(EvPhase) != "" {
		t.Error("trace-only events must not map to counters")
	}
}

func TestMetricsMergeAndSnapshotOrder(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Add(3, KeyTokenPasses, 2)
	a.Observe(3, KeySwitchDuration, time.Millisecond)
	b.Add(0, KeyTokenPasses, 1)
	b.Add(3, KeyTokenPasses, 5)
	b.Observe(3, KeySwitchDuration, 2*time.Millisecond)
	a.Merge(b)
	a.Merge(nil)
	if got := a.Counter(3, KeyTokenPasses); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if h := a.Hist(3, KeySwitchDuration); h.Count() != 2 {
		t.Errorf("merged histogram count = %d, want 2", h.Count())
	}
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0].Proc != 0 || snap[1].Proc != 3 {
		t.Fatalf("snapshot not sorted by proc: %+v", snap)
	}
	if snap[1].Histograms[KeySwitchDuration].Count != 2 {
		t.Error("snapshot lost histogram")
	}
}
