package telemetry

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSamplerWindowsAndConsistency(t *testing.T) {
	s := NewSampler(Config{Interval: 100 * time.Millisecond})
	// Window 0: two token passes at member 1, one drop at member 2.
	s.Record(obs.TokenPass(ms(10), 1, 2, 1, 0, 0))
	s.Record(obs.TokenPass(ms(20), 1, 2, 1, 0, 0))
	s.Record(obs.Drop(ms(30), 2, 1, obs.DropRandom))
	// Window 2 (window 1 idle): one pass plus a completed switch.
	s.Record(obs.TokenPass(ms(250), 1, 2, 1, 1, 0))
	s.Record(obs.SwitchComplete(ms(260), 1, 0, 0, 31*time.Millisecond))
	s.Finish(ms(400))

	ws := s.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2 (idle windows are not emitted)", len(ws))
	}
	if ws[0].Index != 0 || ws[1].Index != 2 {
		t.Fatalf("window indices = %d,%d want 0,2", ws[0].Index, ws[1].Index)
	}
	if ws[1].StartNS != 200*time.Millisecond {
		t.Errorf("window 2 start = %v", ws[1].StartNS)
	}
	if len(ws[0].Members) != 2 || ws[0].Members[0].Proc != 1 || ws[0].Members[1].Proc != 2 {
		t.Fatalf("window 0 members wrong: %+v", ws[0].Members)
	}
	if got := ws[0].Members[0].Counters[obs.KeyTokenPasses]; got != 2 {
		t.Errorf("window 0 member 1 passes = %d", got)
	}
	if ws[1].Members[0].SwitchDur == nil || ws[1].Members[0].SwitchDur.Count != 1 {
		t.Fatalf("window 2 switch histogram missing: %+v", ws[1].Members[0])
	}
	if got := ws[1].Members[0].P99US; got != 31_000 {
		t.Errorf("window 2 p99 = %dµs, want 31000 (singleton == exact)", got)
	}

	// Consistency: windowed sums reproduce the cumulative registry.
	for _, p := range s.Metrics().Procs() {
		sums := make(map[string]uint64)
		for _, w := range ws {
			for _, mw := range w.Members {
				if mw.Proc == int(p) {
					for k, v := range mw.Counters {
						sums[k] += v
					}
				}
			}
		}
		for k, v := range sums {
			if got := s.Metrics().Counter(p, k); got != v {
				t.Errorf("member %d key %s: cumulative %d != windowed sum %d", p, k, got, v)
			}
		}
	}
}

func TestSamplerGauges(t *testing.T) {
	s := NewSampler(Config{Interval: 100 * time.Millisecond})
	s.Record(obs.QueueDepth(ms(10), 3, 7))
	s.Record(obs.QueueDepth(ms(20), 3, 4)) // last sample in window wins
	s.Record(obs.Suspect(ms(30), 2, 5))
	s.Record(obs.Suspect(ms(40), 2, 5)) // duplicate suspicion: still one peer
	s.Record(obs.Suspect(ms(50), 2, 6))
	s.Finish(ms(100))
	ws := s.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %d", len(ws))
	}
	var m3, m2 *MemberWindow
	for i := range ws[0].Members {
		switch ws[0].Members[i].Proc {
		case 3:
			m3 = &ws[0].Members[i]
		case 2:
			m2 = &ws[0].Members[i]
		}
	}
	if m3 == nil || m3.QueueDepth != 4 {
		t.Errorf("queue depth gauge = %+v, want 4", m3)
	}
	if m2 == nil || m2.Suspects != 2 {
		t.Errorf("suspect gauge = %+v, want 2", m2)
	}
	if s.QueueDepth(3) != 4 || s.SuspectCount(2) != 2 {
		t.Error("live gauge accessors disagree with window")
	}
}

// TestSamplerSuspectGaugeFalls pins the paired-event contract: an
// EvSuspectCleared removes its peer from the suspect set and snapshots
// the gauge in the window the clear landed in — including all the way
// back to zero, which the EvSuspect-only path could never show.
func TestSamplerSuspectGaugeFalls(t *testing.T) {
	s := NewSampler(Config{Interval: 100 * time.Millisecond})
	s.Record(obs.Suspect(ms(10), 2, 5))
	s.Record(obs.Suspect(ms(20), 2, 6))
	s.Record(obs.SuspectCleared(ms(110), 2, 5))
	s.Record(obs.SuspectCleared(ms(210), 2, 6))
	s.Finish(ms(300))
	ws := s.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	want := []int{2, 1, 0}
	for i, w := range ws {
		if len(w.Members) != 1 || w.Members[0].Proc != 2 {
			t.Fatalf("window %d members wrong: %+v", i, w.Members)
		}
		if got := w.Members[0].Suspects; got != want[i] {
			t.Errorf("window %d suspect gauge = %d, want %d", i, got, want[i])
		}
	}
	if s.SuspectCount(2) != 0 {
		t.Errorf("live suspect gauge = %d, want 0", s.SuspectCount(2))
	}
	// The clear counter landed in the cumulative registry like any
	// other mirrored counter.
	if got := s.Metrics().Counter(2, obs.KeySuspectsCleared); got != 2 {
		t.Errorf("suspects_cleared counter = %d, want 2", got)
	}
}

func TestSamplerFinishIdempotentAndTickOnly(t *testing.T) {
	s := NewSampler(Config{}) // default interval
	if s.Interval() != DefaultInterval {
		t.Fatalf("default interval = %v", s.Interval())
	}
	// Tick without events opens nothing and emits nothing.
	s.Tick(ms(500))
	s.Finish(ms(1000))
	s.Finish(ms(1000))
	if len(s.Windows()) != 0 {
		t.Fatalf("idle sampler emitted %d windows", len(s.Windows()))
	}
}

func TestAuditStitchesRounds(t *testing.T) {
	a := NewAudit(Config{Protocols: 2})
	// Round for epoch 0: initiator 1 starts, member 2 buffers a frame
	// for epoch 1, everyone advances, initiator completes.
	a.Record(obs.SwitchStart(ms(10), 1, 0, 3))
	a.Record(obs.Buffered(ms(12), 2, 0, 1))
	a.Record(obs.EpochAdvance(ms(14), 2, 1))
	a.Record(obs.EpochAdvance(ms(15), 1, 1))
	a.Record(obs.SwitchComplete(ms(16), 1, 0, 3, 6*time.Millisecond))
	a.Record(obs.StaleDrop(ms(40), 2, 0, 0))
	// Round for epoch 1: start, regen mid-round, takeover start by 2,
	// abort by the superseded initiator — never completes.
	a.Record(obs.SwitchStart(ms(100), 1, 1, 3))
	a.Record(obs.TokenRegen(ms(120), 2, 1, 4))
	a.Record(obs.SwitchStart(ms(121), 2, 1, 4))
	a.Record(obs.SwitchAbort(ms(125), 1, 1, 4))
	// Stale drop for an epoch no round record exists for: ignored.
	a.Record(obs.StaleDrop(ms(130), 3, 4, 7))

	rounds := a.Finalize()
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	r0, r1 := rounds[0], rounds[1]
	if r0.Epoch != 0 || r0.Initiator != 1 || r0.Outcome != OutcomeComplete {
		t.Fatalf("round 0 wrong: %+v", r0)
	}
	if r0.DurationNS != 6*time.Millisecond || r0.Starts != 1 || r0.Advances != 2 ||
		r0.Buffered != 1 || r0.StaleDropped != 1 {
		t.Errorf("round 0 counts wrong: %+v", r0)
	}
	if r0.ProtoBefore != 0 || r0.ProtoAfter != 1 {
		t.Errorf("round 0 protocols = %d->%d, want 0->1", r0.ProtoBefore, r0.ProtoAfter)
	}
	if r1.Epoch != 1 || r1.Outcome != OutcomeAbort {
		t.Fatalf("round 1 wrong: %+v", r1)
	}
	if r1.Starts != 2 || r1.Initiator != 1 || r1.Aborts != 1 || r1.Regens != 1 || r1.Gen != 4 {
		t.Errorf("round 1 counts wrong: %+v", r1)
	}
	if r1.ProtoBefore != 1 || r1.ProtoAfter != 0 {
		t.Errorf("round 1 protocols = %d->%d, want 1->0", r1.ProtoBefore, r1.ProtoAfter)
	}

	// Unknown protocol cycle: indices are -1.
	b := NewAudit(Config{})
	b.Record(obs.SwitchStart(ms(1), 0, 0, 1))
	if rs := b.Finalize(); rs[0].ProtoBefore != -1 || rs[0].ProtoAfter != -1 {
		t.Errorf("unknown cycle should render -1: %+v", rs[0])
	}
}

func TestMergeTagsRuns(t *testing.T) {
	ws := MergeWindows([][]Window{
		{{Index: 0}, {Index: 1}},
		nil,
		{{Index: 0}},
	})
	if len(ws) != 3 || ws[0].Run != 0 || ws[2].Run != 2 {
		t.Fatalf("MergeWindows wrong: %+v", ws)
	}
	rs := MergeRounds([][]Round{
		{{Epoch: 0}},
		{{Epoch: 0}, {Epoch: 1}},
	})
	if len(rs) != 3 || rs[1].Run != 1 || rs[2].Run != 1 {
		t.Fatalf("MergeRounds wrong: %+v", rs)
	}
}

func TestTelemetryBundle(t *testing.T) {
	tel := New(Config{Interval: 50 * time.Millisecond, Protocols: 2})
	if !tel.Enabled() {
		t.Fatal("telemetry recorder disabled")
	}
	tel.Record(obs.SwitchStart(ms(10), 1, 0, 1))
	tel.Record(obs.SwitchComplete(ms(20), 1, 0, 1, 10*time.Millisecond))
	tel.Finish(ms(100))
	if len(tel.Sampler.Windows()) != 1 {
		t.Errorf("bundle sampler windows = %d", len(tel.Sampler.Windows()))
	}
	rounds := tel.Audit.Finalize()
	if len(rounds) != 1 || rounds[0].Outcome != OutcomeComplete {
		t.Errorf("bundle audit rounds wrong: %+v", rounds)
	}
	if tel.String() == "" {
		t.Error("empty summary")
	}
}
