// Package telemetry is the live view over the structured event stream:
// a deterministic sampling subsystem layered on the obs.Recorder
// fan-out. Where internal/obs accumulates cumulative counters for
// post-hoc analysis, telemetry maintains *rolling windows* — per-member
// counter deltas, a windowed switch-duration histogram with quantile
// accessors, and queue-depth/suspect gauges — snapshotted on a fixed
// tick into an append-only time-series, plus a switch-decision audit
// trail that stitches the round events (SwitchStart/Complete/Abort,
// EpochAdvance, TokenRegen, ...) into one record per switch round.
//
// Determinism contract (DESIGN §10): a Sampler advances its window
// clock only from observed event timestamps and explicit Tick/Finish
// calls, never from the wall clock or the scheduler. Under the DES the
// tick source is virtual time, so the produced series — like the trace
// it derives from — is a pure function of seed and configuration and
// is byte-identical for any sweep worker count. A realtime caller
// drives the same Sampler by calling Tick(time.Since(start))
// periodically; nothing else changes.
//
// Everything here is plumbed as an ordinary Recorder: when telemetry is
// off the switching core keeps its zero-alloc obs.Nop fast path, and
// the alloc regression tests in internal/obs pin that down.
package telemetry

import (
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
)

// DefaultInterval is the window width when Config.Interval is zero:
// wide enough that an idle ring produces sparse series, narrow enough
// to resolve a flash-crowd spike (E17 spikes last one second).
const DefaultInterval = 100 * time.Millisecond

// Config tunes a telemetry instance.
type Config struct {
	// Interval is the sampling window width (DefaultInterval when 0).
	Interval time.Duration
	// Protocols is the length of the protocol cycle, used by the audit
	// trail to resolve an epoch to the protocol before/after the
	// switch. Zero means unknown (records carry -1).
	Protocols int
}

// MemberWindow is one member's aggregate over one window. Counters are
// deltas (this window only), keyed exactly like the cumulative
// obs.Metrics registry, so summing a member's windows reproduces its
// final counters — the consistency invariant the chaos tests check.
type MemberWindow struct {
	Proc int `json:"proc"`
	// Counters holds the event-derived counter deltas for the window
	// (obs.CounterKey mapping; absent keys are zero).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// SwitchDur is the windowed histogram of switch-round durations
	// completed in this window, with bucket-quantile accessors
	// rendered alongside (µs).
	SwitchDur *obs.HistogramJSON `json:"switch_dur,omitempty"`
	P50US     int64              `json:"p50_us,omitempty"`
	P95US     int64              `json:"p95_us,omitempty"`
	P99US     int64              `json:"p99_us,omitempty"`
	// QueueDepth is the last egress queue depth the network sampled
	// for this member within the window (a gauge; 0 when not sampled).
	QueueDepth int64 `json:"queue_depth,omitempty"`
	// Suspects is the member's current count of distinct suspected
	// peers at window close (a gauge, cumulative across windows).
	Suspects int `json:"suspects,omitempty"`
}

// Window is one closed sampling window. Index is the window ordinal
// (window w covers [w*Interval, (w+1)*Interval) of run time); windows
// in which no events fired are not emitted, so gaps in Index are
// idle stretches, visible but free.
type Window struct {
	// Run tags the sweep run (set at merge time, like obs.Event.Run).
	Run     int            `json:"run"`
	Index   int64          `json:"index"`
	StartNS time.Duration  `json:"start_ns"`
	Members []MemberWindow `json:"members"`
}

// memberAccum is the mutable per-member state of the open window.
type memberAccum struct {
	counters map[string]uint64
	hist     obs.Histogram
	depth    int64
	sampled  bool
	suspects int
}

// Sampler consumes events and maintains the rolling window, the
// append-only series of closed windows, and a cumulative metrics
// registry for exposition. It is a single-run recorder: sweeps build
// one per run and merge the outputs in run-index order.
type Sampler struct {
	interval time.Duration
	cur      int64 // open window index (-1 until the first advance)
	open     map[ids.ProcID]*memberAccum
	series   []Window
	total    *obs.Metrics
	suspects map[ids.ProcID]map[ids.ProcID]struct{}
	depth    map[ids.ProcID]int64 // latest sampled queue depth (gauges)
}

// NewSampler returns an empty sampler with the configured window width.
func NewSampler(cfg Config) *Sampler {
	iv := cfg.Interval
	if iv <= 0 {
		iv = DefaultInterval
	}
	return &Sampler{
		interval: iv,
		cur:      -1,
		open:     make(map[ids.ProcID]*memberAccum),
		total:    obs.NewMetrics(),
		suspects: make(map[ids.ProcID]map[ids.ProcID]struct{}),
		depth:    make(map[ids.ProcID]int64),
	}
}

// Interval returns the window width.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Enabled reports true (Recorder contract).
func (s *Sampler) Enabled() bool { return true }

// Record consumes one event: windows strictly before the event's
// timestamp are closed first, then the event lands in the now-open
// window and the cumulative registry.
func (s *Sampler) Record(e obs.Event) {
	s.Tick(e.At)
	acc := s.open[e.Proc]
	if acc == nil {
		acc = &memberAccum{counters: make(map[string]uint64)}
		s.open[e.Proc] = acc
	}
	if key := obs.CounterKey(e.Type); key != "" {
		acc.counters[key]++
		s.total.Add(e.Proc, key, 1)
	}
	switch e.Type {
	case obs.EvSwitchComplete:
		d := time.Duration(e.Args[0])
		acc.hist.Observe(d)
		s.total.Observe(e.Proc, obs.KeySwitchDuration, d)
	case obs.EvQueueDepth:
		acc.depth, acc.sampled = e.Args[0], true
		s.depth[e.Proc] = e.Args[0]
	case obs.EvSuspect:
		set := s.suspects[e.Proc]
		if set == nil {
			set = make(map[ids.ProcID]struct{})
			s.suspects[e.Proc] = set
		}
		set[e.Peer] = struct{}{}
	case obs.EvSuspectCleared:
		delete(s.suspects[e.Proc], e.Peer)
		// Snapshot unconditionally so the gauge can fall to zero within
		// the window the last suspicion cleared in.
		acc.suspects = len(s.suspects[e.Proc])
		return
	}
	if set := s.suspects[e.Proc]; len(set) > 0 {
		acc.suspects = len(set)
	}
}

// Tick advances the window clock to the given run time, closing (and
// snapshotting) every window that ends at or before it. Under the DES
// this happens implicitly on every Record; a realtime caller invokes
// it from a wall-clock ticker.
func (s *Sampler) Tick(at time.Duration) {
	if at < 0 {
		at = 0
	}
	idx := int64(at / s.interval)
	if idx == s.cur {
		return
	}
	s.flush()
	s.cur = idx
}

// Finish closes the window still open at the end of the run. The end
// time only needs to be at or past the last event; the canonical
// choice is the run horizon.
func (s *Sampler) Finish(end time.Duration) {
	s.Tick(end)
	s.flush()
	s.cur = -1
}

// flush snapshots the open window into the series (no-op when the
// window saw no events).
func (s *Sampler) flush() {
	if len(s.open) == 0 || s.cur < 0 {
		return
	}
	w := Window{
		Index:   s.cur,
		StartNS: time.Duration(s.cur) * s.interval,
		Members: make([]MemberWindow, 0, len(s.open)),
	}
	procs := make([]ids.ProcID, 0, len(s.open))
	for p := range s.open {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		acc := s.open[p]
		mw := MemberWindow{Proc: int(p), QueueDepth: acc.depth, Suspects: acc.suspects}
		if len(acc.counters) > 0 {
			mw.Counters = acc.counters
		}
		if acc.hist.Count() > 0 {
			hj := acc.hist.ToJSON()
			mw.SwitchDur = &hj
			mw.P50US = int64(acc.hist.Quantile(0.50) / time.Microsecond)
			mw.P95US = int64(acc.hist.Quantile(0.95) / time.Microsecond)
			mw.P99US = int64(acc.hist.Quantile(0.99) / time.Microsecond)
		}
		w.Members = append(w.Members, mw)
	}
	s.series = append(s.series, w)
	s.open = make(map[ids.ProcID]*memberAccum)
}

// Windows returns the closed-window series recorded so far (the
// sampler's own slice; callers must not mutate while still recording).
func (s *Sampler) Windows() []Window { return s.series }

// Metrics returns the cumulative registry fed alongside the windows —
// the exposition source, and the reference the consistency tests
// compare windowed sums against.
func (s *Sampler) Metrics() *obs.Metrics { return s.total }

// QueueDepth returns the latest sampled queue depth for a member.
func (s *Sampler) QueueDepth(p ids.ProcID) int64 { return s.depth[p] }

// SuspectCount returns the member's current count of distinct
// suspected peers.
func (s *Sampler) SuspectCount(p ids.ProcID) int { return len(s.suspects[p]) }

// gaugeProcs returns every member with a live gauge, sorted.
func (s *Sampler) gaugeProcs() []ids.ProcID {
	seen := make(map[ids.ProcID]struct{}, len(s.depth)+len(s.suspects))
	for p := range s.depth {
		seen[p] = struct{}{}
	}
	for p := range s.suspects {
		seen[p] = struct{}{}
	}
	out := make([]ids.ProcID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MergeWindows concatenates per-run window series in index order,
// tagging each window with its run — the same merge rule as
// obs.MergeRuns, so a sweep's series is identical for any worker
// count.
func MergeWindows(perRun [][]Window) []Window {
	var n int
	for _, ws := range perRun {
		n += len(ws)
	}
	out := make([]Window, 0, n)
	for run, ws := range perRun {
		for _, w := range ws {
			w.Run = run
			out = append(out, w)
		}
	}
	return out
}
