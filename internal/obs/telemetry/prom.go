package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Prometheus text-format exposition (version 0.0.4). Three metric
// families cover the registry:
//
//	sp_events_total{member,key}            counter
//	sp_durations_seconds{member,key}       histogram (log buckets)
//	sp_queue_depth{member}                 gauge
//	sp_suspected_peers{member}             gauge
//
// Counter and histogram names keep the registry's "<layer>/<name>" key
// as a label value rather than mangling it into the metric name: the
// key set is open-ended, label values are not restricted, and one
// family per kind keeps the exposition stable as layers are added.

// WriteMetricsProm writes the cumulative registry in exposition
// format. Output order is canonical — members ascending, keys sorted —
// so two identical registries produce identical bytes.
func WriteMetricsProm(w io.Writer, m *obs.Metrics) error {
	bw := bufio.NewWriter(w)
	snap := m.Snapshot()
	anyCounter := false
	for _, mm := range snap {
		if len(mm.Counters) > 0 {
			anyCounter = true
			break
		}
	}
	if anyCounter {
		fmt.Fprintln(bw, "# HELP sp_events_total Cumulative event-derived counters by member and registry key.")
		fmt.Fprintln(bw, "# TYPE sp_events_total counter")
		for _, mm := range snap {
			for _, key := range sortedKeys(mm.Counters) {
				fmt.Fprintf(bw, "sp_events_total{member=%q,key=%q} %d\n", strconv.Itoa(mm.Proc), key, mm.Counters[key])
			}
		}
	}
	anyHist := false
	for _, mm := range snap {
		if len(mm.Histograms) > 0 {
			anyHist = true
			break
		}
	}
	if anyHist {
		fmt.Fprintln(bw, "# HELP sp_durations_seconds Log-bucketed duration histograms by member and registry key.")
		fmt.Fprintln(bw, "# TYPE sp_durations_seconds histogram")
		for _, mm := range snap {
			keys := make([]string, 0, len(mm.Histograms))
			for k := range mm.Histograms {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, key := range keys {
				writeHist(bw, strconv.Itoa(mm.Proc), key, mm.Histograms[key])
			}
		}
	}
	return bw.Flush()
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeHist(w io.Writer, member, key string, h obs.HistogramJSON) {
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := strconv.FormatFloat(obs.BucketHigh(i).Seconds(), 'g', -1, 64)
		fmt.Fprintf(w, "sp_durations_seconds_bucket{member=%q,key=%q,le=%q} %d\n", member, key, le, cum)
	}
	fmt.Fprintf(w, "sp_durations_seconds_bucket{member=%q,key=%q,le=\"+Inf\"} %d\n", member, key, h.Count)
	sum := strconv.FormatFloat(float64(h.SumUS)/1e6, 'g', -1, 64)
	fmt.Fprintf(w, "sp_durations_seconds_sum{member=%q,key=%q} %s\n", member, key, sum)
	fmt.Fprintf(w, "sp_durations_seconds_count{member=%q,key=%q} %d\n", member, key, h.Count)
}

// WriteProm writes the sampler's full exposition: the cumulative
// counter and histogram families plus the live queue-depth and
// suspected-peer gauges.
func (s *Sampler) WriteProm(w io.Writer) error {
	if err := WriteMetricsProm(w, s.total); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	procs := s.gaugeProcs()
	anyDepth, anySuspect := false, false
	for _, p := range procs {
		if _, ok := s.depth[p]; ok {
			anyDepth = true
		}
		if len(s.suspects[p]) > 0 {
			anySuspect = true
		}
	}
	if anyDepth {
		fmt.Fprintln(bw, "# HELP sp_queue_depth Last sampled egress queue depth by member.")
		fmt.Fprintln(bw, "# TYPE sp_queue_depth gauge")
		for _, p := range procs {
			if d, ok := s.depth[p]; ok {
				fmt.Fprintf(bw, "sp_queue_depth{member=%q} %d\n", strconv.Itoa(int(p)), d)
			}
		}
	}
	if anySuspect {
		fmt.Fprintln(bw, "# HELP sp_suspected_peers Current count of distinct suspected peers by member.")
		fmt.Fprintln(bw, "# TYPE sp_suspected_peers gauge")
		for _, p := range procs {
			if n := len(s.suspects[p]); n > 0 {
				fmt.Fprintf(bw, "sp_suspected_peers{member=%q} %d\n", strconv.Itoa(int(p)), n)
			}
		}
	}
	return bw.Flush()
}

// ValidateProm parses an exposition-format stream and checks its
// structural invariants: every sample's family is TYPE-declared before
// use, label syntax is well formed, values parse as floats, and every
// histogram series has nondecreasing buckets ending in +Inf with a
// matching _count. It returns the number of samples read.
func ValidateProm(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)
	type histSeries struct {
		lastLE   float64
		lastCum  float64
		infCount float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	hists := make(map[string]*histSeries)
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return samples, fmt.Errorf("line %d: malformed TYPE", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := name
		if suffix := histSuffix(name, types); suffix != "" {
			family = strings.TrimSuffix(name, suffix)
		}
		if _, ok := types[family]; !ok {
			return samples, fmt.Errorf("line %d: sample %q before its TYPE declaration", lineNo, name)
		}
		samples++
		if types[family] != "histogram" {
			continue
		}
		key := family + "|" + labelKey(labels, "le")
		hs := hists[key]
		if hs == nil {
			hs = &histSeries{lastLE: math.Inf(-1)}
			hists[key] = hs
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			leStr, ok := labels["le"]
			if !ok {
				return samples, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return samples, fmt.Errorf("line %d: bad le %q", lineNo, leStr)
				}
			}
			if le <= hs.lastLE {
				return samples, fmt.Errorf("line %d: le %q not increasing", lineNo, leStr)
			}
			if value < hs.lastCum {
				return samples, fmt.Errorf("line %d: bucket counts decreasing", lineNo)
			}
			hs.lastLE, hs.lastCum = le, value
			if math.IsInf(le, 1) {
				hs.infCount, hs.hasInf = value, true
			}
		case strings.HasSuffix(name, "_count"):
			hs.count, hs.hasCount = value, true
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	for key, hs := range hists {
		if !hs.hasInf {
			return samples, fmt.Errorf("histogram series %q has no +Inf bucket", key)
		}
		if hs.hasCount && hs.count != hs.infCount {
			return samples, fmt.Errorf("histogram series %q: _count %v != +Inf bucket %v", key, hs.count, hs.infCount)
		}
	}
	return samples, nil
}

// histSuffix reports the histogram sample suffix of name, when
// stripping it yields a TYPE-declared histogram family.
func histSuffix(name string, types map[string]string) string {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) && types[strings.TrimSuffix(name, s)] == "histogram" {
			return s
		}
	}
	return ""
}

// labelKey canonicalizes a label set (minus the named label) for use
// as a series key.
func labelKey(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == drop {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// parseSample parses `name{label="v",...} value` (the timestamp-less
// form this package emits; a trailing timestamp is tolerated).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name = rest[:i]
		if !validMetricName(name) {
			return "", nil, 0, fmt.Errorf("bad metric name %q", name)
		}
		if rest[i] == '{' {
			rest = rest[i+1:]
			for {
				rest = strings.TrimLeft(rest, " ,")
				if strings.HasPrefix(rest, "}") {
					rest = rest[1:]
					break
				}
				eq := strings.Index(rest, "=")
				if eq < 0 {
					return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
				}
				lname := rest[:eq]
				if !validLabelName(lname) {
					return "", nil, 0, fmt.Errorf("bad label name %q", lname)
				}
				rest = rest[eq+1:]
				if !strings.HasPrefix(rest, `"`) {
					return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
				}
				val, n, verr := unquoteLabel(rest)
				if verr != nil {
					return "", nil, 0, verr
				}
				labels[lname] = val
				rest = rest[n:]
			}
		} else {
			rest = rest[i:]
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name, labels, value, nil
}

// unquoteLabel consumes a quoted label value with \" \\ \n escapes,
// returning the value and the bytes consumed.
func unquoteLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
