package telemetry

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Round outcomes. Every round reaches exactly one of these: Finalize
// marks any round without a completion as aborted, including the
// abandoned case where the sole initiator crashed and no survivor was
// mid-switch (observationally the round aborted — nothing advanced).
const (
	OutcomeComplete = "complete"
	OutcomeAbort    = "abort"
)

// Round is one switch-decision record: the full lifecycle of the round
// that closed Epoch, stitched from the trace events of every member.
type Round struct {
	// Run tags the sweep run (set at merge time).
	Run int `json:"run"`
	// Epoch is the delivery epoch the round closed — the round's key.
	Epoch uint64 `json:"epoch"`
	// Initiator is the member that first started the round; a recovery
	// takeover shows up as Starts > 1 (the record keeps the first).
	Initiator int `json:"initiator"`
	// Gen is the newest token lineage observed on the round's events.
	Gen uint64 `json:"gen"`
	// ProtoBefore/ProtoAfter resolve the epoch to protocol indices
	// (epoch e runs protocol e mod N); -1 when the cycle length is
	// unknown to the audit config.
	ProtoBefore int `json:"proto_before"`
	ProtoAfter  int `json:"proto_after"`
	// StartNS is when the first initiator started the round; EndNS the
	// last terminal event seen (completion or abort).
	StartNS time.Duration `json:"start_ns"`
	EndNS   time.Duration `json:"end_ns"`
	// DurationNS is the completing initiator's end-to-end measurement
	// (zero for aborted rounds).
	DurationNS time.Duration `json:"duration_ns"`
	// Lifecycle counts across all members.
	Starts    int `json:"starts"`
	Completes int `json:"completes,omitempty"`
	Aborts    int `json:"aborts,omitempty"`
	Regens    int `json:"regens,omitempty"`
	// Advances counts members that completed the switch locally
	// (EpochAdvance); Forced counts members that adopted the epoch
	// after missing the round (EpochForced).
	Advances int `json:"advances,omitempty"`
	Forced   int `json:"forced,omitempty"`
	// Buffered/StaleDropped count the frames buffered ahead of the
	// round and dropped behind it while it ran.
	Buffered     int `json:"buffered,omitempty"`
	StaleDropped int `json:"stale_dropped,omitempty"`
	// Outcome is OutcomeComplete or OutcomeAbort (set by Finalize).
	Outcome string `json:"outcome"`
}

// Audit stitches switch-round events into per-epoch decision records.
// Like the Sampler it is a single-run recorder; a round record exists
// for every epoch on which a SwitchStart, SwitchComplete, or
// SwitchAbort was observed, and secondary events (advances, buffered
// frames, regens, stale drops) attach to an existing record only — a
// stale drop for an epoch closed before recording started must not
// fabricate a round.
type Audit struct {
	protocols int
	rounds    map[uint64]*Round
}

// NewAudit returns an empty audit trail.
func NewAudit(cfg Config) *Audit {
	return &Audit{protocols: cfg.Protocols, rounds: make(map[uint64]*Round)}
}

// Enabled reports true (Recorder contract).
func (a *Audit) Enabled() bool { return true }

// round returns the record for the round closing epoch, creating it on
// first sight.
func (a *Audit) round(epoch uint64) *Round {
	r := a.rounds[epoch]
	if r == nil {
		r = &Round{Epoch: epoch, Initiator: -1}
		a.rounds[epoch] = r
	}
	return r
}

// attach returns the existing record for epoch, or nil.
func (a *Audit) attach(epoch uint64) *Round {
	return a.rounds[epoch]
}

// Record consumes one event. Only the switch-round vocabulary is
// inspected; everything else is ignored.
func (a *Audit) Record(e obs.Event) {
	switch e.Type {
	case obs.EvSwitchStart:
		r := a.round(e.Epoch)
		if r.Starts == 0 {
			r.Initiator = int(e.Proc)
			r.StartNS = e.At
		}
		r.Starts++
		r.EndNS = e.At
		if e.Gen > r.Gen {
			r.Gen = e.Gen
		}
	case obs.EvSwitchComplete:
		r := a.round(e.Epoch)
		r.Completes++
		r.EndNS = e.At
		if r.DurationNS == 0 {
			r.DurationNS = time.Duration(e.Args[0])
		}
		if e.Gen > r.Gen {
			r.Gen = e.Gen
		}
	case obs.EvSwitchAbort:
		r := a.round(e.Epoch)
		r.Aborts++
		r.EndNS = e.At
		if e.Gen > r.Gen {
			r.Gen = e.Gen
		}
	case obs.EvEpochAdvance:
		// The event carries the epoch *entered*; the round closed the
		// one before it.
		if e.Epoch > 0 {
			if r := a.attach(e.Epoch - 1); r != nil {
				r.Advances++
			}
		}
	case obs.EvEpochForced:
		if e.Epoch > 0 {
			if r := a.attach(e.Epoch - 1); r != nil {
				r.Forced++
			}
		}
	case obs.EvTokenRegen:
		// A regeneration mid-round carries the regenerator's delivery
		// epoch — the epoch the in-flight round is closing.
		if r := a.attach(e.Epoch); r != nil {
			r.Regens++
		}
	case obs.EvBuffered:
		// Buffered frames carry the *future* epoch they belong to; the
		// round in flight is closing the epoch before it.
		if e.Epoch > 0 {
			if r := a.attach(e.Epoch - 1); r != nil {
				r.Buffered++
			}
		}
	case obs.EvStaleDrop:
		// Stale frames carry the closed epoch they missed.
		if r := a.attach(e.Epoch); r != nil {
			r.StaleDropped++
		}
	}
}

// Finalize assigns terminal outcomes and returns the records sorted by
// epoch. It is idempotent; recording after Finalize is allowed and a
// later Finalize reflects the additional events.
func (a *Audit) Finalize() []Round {
	out := make([]Round, 0, len(a.rounds))
	for _, r := range a.rounds {
		rec := *r
		if rec.Completes > 0 {
			rec.Outcome = OutcomeComplete
		} else {
			rec.Outcome = OutcomeAbort
		}
		if a.protocols > 0 {
			rec.ProtoBefore = int(rec.Epoch % uint64(a.protocols))
			rec.ProtoAfter = int((rec.Epoch + 1) % uint64(a.protocols))
		} else {
			rec.ProtoBefore, rec.ProtoAfter = -1, -1
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// MergeRounds concatenates per-run audit records in index order,
// tagging each with its run.
func MergeRounds(perRun [][]Round) []Round {
	var n int
	for _, rs := range perRun {
		n += len(rs)
	}
	out := make([]Round, 0, n)
	for run, rs := range perRun {
		for _, r := range rs {
			r.Run = run
			out = append(out, r)
		}
	}
	return out
}

// Telemetry bundles the two single-run consumers behind one Recorder,
// which is what run harnesses wire into their obs.Multi fan-out.
type Telemetry struct {
	Sampler *Sampler
	Audit   *Audit
}

// New builds a Sampler + Audit pair from one config.
func New(cfg Config) *Telemetry {
	return &Telemetry{Sampler: NewSampler(cfg), Audit: NewAudit(cfg)}
}

// Record feeds both consumers.
func (t *Telemetry) Record(e obs.Event) {
	t.Sampler.Record(e)
	t.Audit.Record(e)
}

// Enabled reports true (Recorder contract).
func (t *Telemetry) Enabled() bool { return true }

// Finish closes the sampler's last window at the run horizon.
func (t *Telemetry) Finish(end time.Duration) { t.Sampler.Finish(end) }

// String renders a one-line summary (progress lines, debugging).
func (t *Telemetry) String() string {
	return fmt.Sprintf("telemetry: %d windows, %d rounds", len(t.Sampler.Windows()), len(t.Audit.rounds))
}
