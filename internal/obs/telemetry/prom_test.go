package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWritePromRoundTripsThroughValidator(t *testing.T) {
	s := NewSampler(Config{Interval: 100 * time.Millisecond})
	s.Record(obs.TokenPass(ms(1), 0, 1, 1, 0, 0))
	s.Record(obs.TokenPass(ms(2), 1, 0, 1, 0, 0))
	s.Record(obs.SwitchComplete(ms(3), 0, 0, 0, 31*time.Millisecond))
	s.Record(obs.SwitchComplete(ms(4), 0, 1, 0, 2*time.Millisecond))
	s.Record(obs.QueueDepth(ms(5), 1, 9))
	s.Record(obs.Suspect(ms(6), 0, 1))
	s.Finish(ms(100))

	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sp_events_total{member="0",key="switching/token_passes"} 1`,
		`sp_durations_seconds_count{member="0",key="switching/switch_duration"} 2`,
		`sp_durations_seconds_bucket{member="0",key="switching/switch_duration",le="+Inf"} 2`,
		`sp_queue_depth{member="1"} 9`,
		`sp_suspected_peers{member="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	n, err := ValidateProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-emitted exposition rejected: %v\n%s", err, out)
	}
	if n == 0 {
		t.Fatal("validator saw no samples")
	}

	// Determinism: a second write produces identical bytes.
	var buf2 bytes.Buffer
	if err := s.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exposition not byte-stable across writes")
	}
}

func TestValidatePromRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"sample before TYPE", `sp_x{a="b"} 1`},
		{"bad type", "# TYPE sp_x flavor\nsp_x 1"},
		{"bad value", "# TYPE sp_x counter\nsp_x{a=\"b\"} pancake"},
		{"unquoted label", "# TYPE sp_x counter\nsp_x{a=b} 1"},
		{"unterminated label", "# TYPE sp_x counter\nsp_x{a=\"b} 1"},
		{"bad metric name", "# TYPE sp_x counter\n9sp{a=\"b\"} 1"},
		{"le decreasing", "# TYPE sp_h histogram\n" +
			`sp_h_bucket{le="0.2"} 1` + "\n" + `sp_h_bucket{le="0.1"} 2` + "\n" +
			`sp_h_bucket{le="+Inf"} 2`},
		{"bucket counts decreasing", "# TYPE sp_h histogram\n" +
			`sp_h_bucket{le="0.1"} 3` + "\n" + `sp_h_bucket{le="0.2"} 1` + "\n" +
			`sp_h_bucket{le="+Inf"} 3`},
		{"missing +Inf", "# TYPE sp_h histogram\n" + `sp_h_bucket{le="0.1"} 1`},
		{"count mismatch", "# TYPE sp_h histogram\n" +
			`sp_h_bucket{le="+Inf"} 3` + "\n" + `sp_h_count 2`},
	}
	for _, c := range cases {
		if _, err := ValidateProm(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted:\n%s", c.name, c.in)
		}
	}
	// A well-formed stream with a timestamp and untyped metric passes.
	ok := "# HELP sp_y help text\n# TYPE sp_y gauge\nsp_y 4.5 1700000000\n"
	if n, err := ValidateProm(strings.NewReader(ok)); err != nil || n != 1 {
		t.Errorf("valid stream rejected: n=%d err=%v", n, err)
	}
}
