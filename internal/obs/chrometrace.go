package obs

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/ids"
)

// This file converts an event trace to the Chrome trace_event JSON
// format (loadable in Perfetto / chrome://tracing). Each sweep run
// becomes a process (pid = run), each member a thread (tid = proc),
// and each switch round a pair of spans per member:
//
//   - "switch e<N>": from the initiator's switch_start to its
//     switch_complete — the round's end-to-end duration;
//   - "drain e<N>": from a member's phase redirection to its
//     epoch_advance — how long that member spent draining the old
//     protocol.
//
// Recovery and fault events (wedge timeouts, regenerations, aborts,
// crashes, partitions, heals) render as instants, so a chaos run reads
// as a timeline of faults and the repairs they triggered. Token passes
// and per-packet events stay in the JSONL trace only — at one pass per
// TokenInterval they would dominate the visualization.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// us renders a virtual time as trace_event microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// chromeTID maps a member to a thread id (NoProc events land on a
// dedicated "net" thread).
func chromeTID(p ids.ProcID) int {
	if p == NoProc {
		return 1000
	}
	return int(p)
}

// ChromeTrace renders a trace in Chrome trace_event JSON. Events must
// be in recorded order (per run); the output is deterministic for a
// deterministic input trace.
func ChromeTrace(events []Event) ([]byte, error) {
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	type key struct {
		run  int
		proc ids.ProcID
	}
	named := map[key]bool{}
	name := func(run int, proc ids.ProcID) {
		k := key{run, proc}
		if named[k] {
			return
		}
		named[k] = true
		label := fmt.Sprintf("member %d", proc)
		if proc == NoProc {
			label = "net"
		}
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", PID: run, TID: chromeTID(proc),
				Args: map[string]any{"name": fmt.Sprintf("run %d", run)}},
			chromeEvent{Name: "thread_name", Ph: "M", PID: run, TID: chromeTID(proc),
				Args: map[string]any{"name": label}})
	}
	span := func(e Event, nm string, from time.Duration, args map[string]any) chromeEvent {
		return chromeEvent{Name: nm, Ph: "X", TS: us(from), Dur: us(e.At - from),
			PID: e.Run, TID: chromeTID(e.Proc), Args: args}
	}
	instant := func(e Event, nm string, args map[string]any) chromeEvent {
		return chromeEvent{Name: nm, Ph: "i", TS: us(e.At),
			PID: e.Run, TID: chromeTID(e.Proc), S: "t", Args: args}
	}

	switchOpen := map[key]Event{} // initiator's switch_start
	drainOpen := map[key]Event{}  // member's phase redirection
	for _, e := range events {
		k := key{e.Run, e.Proc}
		switch e.Type {
		case EvSwitchStart:
			name(e.Run, e.Proc)
			switchOpen[k] = e
		case EvSwitchComplete:
			name(e.Run, e.Proc)
			from := e.At - time.Duration(e.Args[0])
			if open, ok := switchOpen[k]; ok {
				from = open.At
				delete(switchOpen, k)
			}
			out.TraceEvents = append(out.TraceEvents, span(e, fmt.Sprintf("switch e%d", e.Epoch), from,
				map[string]any{"epoch": e.Epoch, "gen": e.Gen}))
		case EvPhase:
			name(e.Run, e.Proc)
			if _, ok := drainOpen[k]; !ok {
				drainOpen[k] = e
			}
		case EvEpochAdvance:
			name(e.Run, e.Proc)
			if open, ok := drainOpen[k]; ok {
				delete(drainOpen, k)
				out.TraceEvents = append(out.TraceEvents, span(e, fmt.Sprintf("drain e%d", open.Epoch), open.At,
					map[string]any{"epoch": open.Epoch}))
			}
		case EvEpochForced:
			name(e.Run, e.Proc)
			delete(drainOpen, k) // the round this member was draining is gone
			out.TraceEvents = append(out.TraceEvents, instant(e, fmt.Sprintf("forced e%d", e.Epoch), nil))
		case EvWedgeTimeout:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "wedge timeout",
				map[string]any{"strikes": e.Args[0]}))
		case EvTokenRegen:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, fmt.Sprintf("regen g%d", e.Gen), nil))
		case EvSwitchAbort:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "switch abort", nil))
		case EvSuspect:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, fmt.Sprintf("suspect %d", e.Peer), nil))
		case EvCrash:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "crash", nil))
		case EvPartition:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "partition",
				map[string]any{"peers": e.Args[0]}))
		case EvHeal:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "heal", nil))
		case EvFaultSet:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "fault set",
				map[string]any{"drop_permille": e.Args[0], "dup_permille": e.Args[1], "jitter_ns": e.Args[2]}))
		case EvCorruptSet:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "corrupt set",
				map[string]any{"corrupt_permille": e.Args[0], "truncate_permille": e.Args[1]}))
		case EvGarbage:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, "garbage",
				map[string]any{"from": e.Peer, "bytes": e.Args[0]}))
		case EvQuarantine:
			name(e.Run, e.Proc)
			out.TraceEvents = append(out.TraceEvents, instant(e, fmt.Sprintf("quarantine %d", e.Peer),
				map[string]any{"threshold": e.Args[0]}))
		}
	}
	return json.MarshalIndent(out, "", " ")
}
