package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/ids"
)

// EventJSON is one trace line of the TRACE_*.jsonl format. Field order
// is fixed (encoding/json emits struct fields in declaration order),
// so for a fixed seed the file bytes are identical for any worker
// count.
type EventJSON struct {
	AtNS  int64   `json:"at_ns"`
	Run   int     `json:"run,omitempty"`
	Type  string  `json:"type"`
	Proc  int     `json:"proc"`
	Peer  *int    `json:"peer,omitempty"`
	Mode  string  `json:"mode,omitempty"`
	Epoch uint64  `json:"epoch,omitempty"`
	Gen   uint64  `json:"gen,omitempty"`
	Args  []int64 `json:"args,omitempty"`
}

// ToJSON converts one event to its trace-line form.
func (e Event) ToJSON() EventJSON {
	j := EventJSON{
		AtNS:  int64(e.At),
		Run:   e.Run,
		Type:  e.Type.String(),
		Proc:  int(e.Proc),
		Mode:  ModeName(e.Mode),
		Epoch: e.Epoch,
		Gen:   e.Gen,
	}
	if e.Peer != NoPeer {
		p := int(e.Peer)
		j.Peer = &p
	}
	// Trim trailing zero args so untouched slots stay off the wire.
	last := -1
	for i, a := range e.Args {
		if a != 0 {
			last = i
		}
	}
	if last >= 0 {
		j.Args = append([]int64(nil), e.Args[:last+1]...)
	}
	return j
}

// EventsToJSON converts a trace for embedding in an artifact.
func EventsToJSON(events []Event) []EventJSON {
	if len(events) == 0 {
		return nil
	}
	out := make([]EventJSON, len(events))
	for i, e := range events {
		out[i] = e.ToJSON()
	}
	return out
}

// fromJSON converts a trace line back to an Event.
func fromJSON(j EventJSON) (Event, error) {
	e := Event{
		At:    time.Duration(j.AtNS),
		Run:   j.Run,
		Proc:  ids.ProcID(j.Proc),
		Peer:  NoPeer,
		Epoch: j.Epoch,
		Gen:   j.Gen,
	}
	var known bool
	for t := EventType(1); t < eventTypeCount; t++ {
		if t.String() == j.Type {
			e.Type = t
			known = true
			break
		}
	}
	if !known {
		return Event{}, fmt.Errorf("unknown event type %q", j.Type)
	}
	mode, ok := modeByName(j.Mode)
	if !ok {
		return Event{}, fmt.Errorf("unknown token mode %q", j.Mode)
	}
	e.Mode = mode
	if j.Peer != nil {
		e.Peer = ids.ProcID(*j.Peer)
	}
	if len(j.Args) > len(e.Args) {
		return Event{}, fmt.Errorf("too many args (%d)", len(j.Args))
	}
	copy(e.Args[:], j.Args)
	return e, nil
}

// MarshalJSONL renders a trace as JSON Lines — one compact object per
// event, in recorded order.
func MarshalJSONL(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	for _, e := range events {
		b, err := json.Marshal(e.ToJSON())
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// ReadJSONL parses a JSONL trace back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := newLineScanner(r)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var j EventJSON
		if err := json.Unmarshal(line, &j); err != nil {
			return nil, fmt.Errorf("line %d: %w", sc.lineNo, err)
		}
		e, err := fromJSON(j)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", sc.lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateJSONL checks a JSONL trace: every line parses, every type
// and mode is known, and the stream is canonical — runs nondecreasing
// and, within a run, timestamps nondecreasing (the order a
// deterministic sweep merge produces). It returns the event count.
func ValidateJSONL(r io.Reader) (int, error) {
	n := 0
	lastRun := 0
	lastAt := time.Duration(-1)
	sc := newLineScanner(r)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var j EventJSON
		if err := json.Unmarshal(line, &j); err != nil {
			return n, fmt.Errorf("line %d: %w", sc.lineNo, err)
		}
		e, err := fromJSON(j)
		if err != nil {
			return n, fmt.Errorf("line %d: %w", sc.lineNo, err)
		}
		if e.At < 0 {
			return n, fmt.Errorf("line %d: negative timestamp %d", sc.lineNo, j.AtNS)
		}
		if e.Run < lastRun {
			return n, fmt.Errorf("line %d: run %d after run %d", sc.lineNo, e.Run, lastRun)
		}
		if e.Run > lastRun {
			lastRun = e.Run
			lastAt = -1
		}
		if e.At < lastAt {
			return n, fmt.Errorf("line %d: time went backwards within run %d (%v after %v)",
				sc.lineNo, e.Run, e.At, lastAt)
		}
		lastAt = e.At
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// lineScanner is a bufio.Scanner with line accounting and a buffer
// large enough for any trace line.
type lineScanner struct {
	*bufio.Scanner
	lineNo int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &lineScanner{Scanner: sc}
}

func (s *lineScanner) Scan() bool {
	ok := s.Scanner.Scan()
	if ok {
		s.lineNo++
	}
	return ok
}
