package obs

import (
	"math/bits"
	"sort"
	"time"

	"repro/internal/ids"
)

// Counter keys are "<layer>/<name>". The switching-layer keys mirror
// switching.Stats field names, so event-derived counters and the
// protocol's own counters can be compared one-to-one.
const (
	KeyTokenPasses       = "switching/token_passes"
	KeySwitchesCompleted = "switching/switches_completed"
	KeyBuffered          = "switching/buffered"
	KeyStaleDropped      = "switching/stale_dropped"
	KeyWedgeTimeouts     = "switching/wedge_timeouts"
	KeyTokensRegenerated = "switching/tokens_regenerated"
	KeySwitchesAborted   = "switching/switches_aborted"
	KeyForcedAdvances    = "switching/forced_advances"
	KeySwitchesStarted   = "switching/switches_started"
	KeySwitchRounds      = "switching/switch_rounds"
	KeySuspects          = "switching/suspects"
	KeySuspectsCleared   = "switching/suspects_cleared"
	KeySuspicionsRaised  = "switching/suspicions_raised"
	KeySuspicionsCleared = "switching/suspicions_cleared"
	KeyFlapPenalties     = "switching/flap_penalties"
	KeyDegradedSkips     = "switching/degraded_skips"
	KeyReincludes        = "switching/reincludes"
	KeyMalformedDropped  = "switching/malformed_dropped"
	KeyQuarantines       = "switching/quarantines"
	KeyAuthFailed        = "switching/auth_failed"
	KeyShed              = "switching/shed"
	KeyBackpressured     = "switching/backpressured"
	KeyRetriedSends      = "switching/retried_sends"

	KeyNetCrashes     = "net/crashes"
	KeyNetPartitions  = "net/partitions"
	KeyNetHeals       = "net/heals"
	KeyNetFaultSets   = "net/fault_sets"
	KeyNetDrops       = "net/drops"
	KeyNetDelays      = "net/delays"
	KeyNetCorruptSets = "net/corrupt_sets"
	KeyNetCorrupts    = "net/corrupts"
	KeyNetTruncates   = "net/truncates"
	KeyNetGarbage     = "net/garbage"
	KeyNetForged      = "net/forged"
	KeyNetReplayed    = "net/replayed"
	KeyNetSpikes      = "net/sender_spikes"
	KeyNetLinkFaults  = "net/link_fault_sets"
	KeyNetSlowNodes   = "net/slow_node_sets"
	KeyNetFlapSets    = "net/flap_sets"

	// KeySwitchDuration is the per-member histogram of initiated switch
	// round durations (EvSwitchComplete).
	KeySwitchDuration = "switching/switch_duration"
)

// counterKey maps event types to the counter they increment; types not
// listed (token holds, phases) are trace-only.
var counterKey = [eventTypeCount]string{
	EvTokenPass:      KeyTokenPasses,
	EvTokenRegen:     KeyTokensRegenerated,
	EvSwitchStart:    KeySwitchesStarted,
	EvSwitchComplete: KeySwitchRounds,
	EvSwitchAbort:    KeySwitchesAborted,
	EvEpochAdvance:   KeySwitchesCompleted,
	EvEpochForced:    KeyForcedAdvances,
	EvBuffered:       KeyBuffered,
	EvStaleDrop:      KeyStaleDropped,
	EvWedgeTimeout:   KeyWedgeTimeouts,
	EvSuspect:        KeySuspects,
	EvCrash:          KeyNetCrashes,
	EvPartition:      KeyNetPartitions,
	EvHeal:           KeyNetHeals,
	EvFaultSet:       KeyNetFaultSets,
	EvDrop:           KeyNetDrops,
	EvDelay:          KeyNetDelays,
	EvCorruptSet:     KeyNetCorruptSets,
	EvCorrupt:        KeyNetCorrupts,
	EvTruncate:       KeyNetTruncates,
	EvGarbage:        KeyNetGarbage,
	EvMalformedDrop:  KeyMalformedDropped,
	EvQuarantine:     KeyQuarantines,
	EvAuthFail:       KeyAuthFailed,
	EvForged:         KeyNetForged,
	EvReplayed:       KeyNetReplayed,
	EvShed:           KeyShed,
	EvBackpressureOn: KeyBackpressured,
	EvRetrySend:      KeyRetriedSends,
	EvSenderSpike:    KeyNetSpikes,
	EvSuspectCleared: KeySuspectsCleared,
	EvSuspicionRaise: KeySuspicionsRaised,
	EvSuspicionClear: KeySuspicionsCleared,
	EvFlapPenalty:    KeyFlapPenalties,
	EvDegradedSkip:   KeyDegradedSkips,
	EvReinclude:      KeyReincludes,
	EvLinkFaultSet:   KeyNetLinkFaults,
	EvSlowNodeSet:    KeyNetSlowNodes,
	EvFlapSet:        KeyNetFlapSets,
}

// CounterKey returns the counter an event type increments ("" for
// trace-only types).
func CounterKey(t EventType) string {
	if int(t) < len(counterKey) {
		return counterKey[t]
	}
	return ""
}

// HistogramBuckets is the fixed bucket count of the deterministic
// log-scaled latency histogram: bucket 0 holds sub-microsecond
// observations, bucket i >= 1 holds [2^(i-1), 2^i) microseconds, and
// the last bucket absorbs everything above ~2^38 µs (~76 hours —
// beyond any simulated horizon).
const HistogramBuckets = 40

// Histogram is a fixed-shape log-scaled latency histogram. It contains
// no pointers, so histograms (and the stats structs embedding them)
// remain comparable with == and mergeable by plain addition — which is
// what keeps sweep aggregation independent of worker count.
type Histogram struct {
	counts [HistogramBuckets]uint64
	n      uint64
	sum    time.Duration
}

// Observe adds one duration (negative values clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d / time.Microsecond))
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	h.counts[b]++
	h.n++
	h.sum += d
}

// Merge adds another histogram's observations into h.
func (h *Histogram) Merge(o Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Counts returns the bucket counts with trailing empty buckets
// trimmed.
func (h *Histogram) Counts() []uint64 {
	last := -1
	for i, c := range h.counts {
		if c != 0 {
			last = i
		}
	}
	out := make([]uint64, last+1)
	copy(out, h.counts[:last+1])
	return out
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(1<<uint(i-1)) * time.Microsecond
}

// BucketHigh returns the exclusive upper bound of bucket i. Bucket 0
// tops out at 1µs; the final bucket is open-ended, so its "bound" is
// one doubling above its lower edge — the same width rule as every
// other bucket.
func BucketHigh(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	if i >= HistogramBuckets-1 {
		return 2 * BucketLow(HistogramBuckets-1)
	}
	return BucketLow(i + 1)
}

// Quantile estimates the q-quantile (q in [0,1]; out-of-range values
// clamp) from the bucketed distribution by linear interpolation inside
// the bucket holding the target rank. Resolution is therefore the
// bucket width — a factor of two — not the exact sample. Two edge
// cases are pinned down by tests: an empty histogram returns 0, and a
// histogram whose mass sits in a single bucket returns the mean
// (Sum/Count), which is exact for a single observation and the best
// available estimate otherwise.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	occupied := 0
	for _, c := range h.counts {
		if c != 0 {
			occupied++
		}
	}
	if occupied == 1 {
		return h.sum / time.Duration(h.n)
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := BucketLow(i), BucketHigh(i)
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	// Unreachable: cum reaches h.n >= target on the last occupied bucket.
	return BucketHigh(HistogramBuckets - 1)
}

// Metrics is the per-member, per-layer registry: counters and latency
// histograms keyed by "<layer>/<name>". It is a plain accumulator —
// callers feed it either directly or through the event adapter
// returned by Recorder.
type Metrics struct {
	members map[ids.ProcID]*memberMetrics
}

type memberMetrics struct {
	counters map[string]uint64
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{members: make(map[ids.ProcID]*memberMetrics)}
}

func (m *Metrics) member(p ids.ProcID) *memberMetrics {
	mm := m.members[p]
	if mm == nil {
		mm = &memberMetrics{counters: make(map[string]uint64), hists: make(map[string]*Histogram)}
		m.members[p] = mm
	}
	return mm
}

// Add increments member p's counter key by delta.
func (m *Metrics) Add(p ids.ProcID, key string, delta uint64) {
	m.member(p).counters[key] += delta
}

// Observe adds one duration to member p's histogram key.
func (m *Metrics) Observe(p ids.ProcID, key string, d time.Duration) {
	mm := m.member(p)
	h := mm.hists[key]
	if h == nil {
		h = &Histogram{}
		mm.hists[key] = h
	}
	h.Observe(d)
}

// Counter returns member p's counter value (zero when absent).
func (m *Metrics) Counter(p ids.ProcID, key string) uint64 {
	if mm := m.members[p]; mm != nil {
		return mm.counters[key]
	}
	return 0
}

// Hist returns member p's histogram (nil when absent).
func (m *Metrics) Hist(p ids.ProcID, key string) *Histogram {
	if mm := m.members[p]; mm != nil {
		return mm.hists[key]
	}
	return nil
}

// Procs returns the members present in the registry, sorted by ProcID.
func (m *Metrics) Procs() []ids.ProcID {
	out := make([]ids.ProcID, 0, len(m.members))
	for p := range m.members {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge folds another registry into m (sweep aggregation).
func (m *Metrics) Merge(o *Metrics) {
	if o == nil {
		return
	}
	for p, om := range o.members {
		mm := m.member(p)
		for k, v := range om.counters {
			mm.counters[k] += v
		}
		for k, h := range om.hists {
			dst := mm.hists[k]
			if dst == nil {
				dst = &Histogram{}
				mm.hists[k] = dst
			}
			dst.Merge(*h)
		}
	}
}

// Recorder returns the event adapter that feeds the registry: every
// event increments its member's mapped counter, and switch completions
// additionally observe the round duration histogram.
func (m *Metrics) Recorder() Recorder { return metricsRecorder{m} }

type metricsRecorder struct{ m *Metrics }

func (r metricsRecorder) Record(e Event) {
	if key := CounterKey(e.Type); key != "" {
		r.m.Add(e.Proc, key, 1)
	}
	if e.Type == EvSwitchComplete {
		r.m.Observe(e.Proc, KeySwitchDuration, time.Duration(e.Args[0]))
	}
}

func (r metricsRecorder) Enabled() bool { return true }

// HistogramJSON is a histogram's artifact form: total count, total
// duration in microseconds, and the trimmed bucket counts (bucket i
// covers [2^(i-1), 2^i) µs; bucket 0 is sub-microsecond).
type HistogramJSON struct {
	Count  uint64   `json:"count"`
	SumUS  int64    `json:"sum_us"`
	Counts []uint64 `json:"counts,omitempty"`
}

// ToJSON converts the histogram for an artifact.
func (h *Histogram) ToJSON() HistogramJSON {
	return HistogramJSON{Count: h.n, SumUS: int64(h.sum / time.Microsecond), Counts: h.Counts()}
}

// MemberMetrics is one member's registry snapshot in artifact form.
type MemberMetrics struct {
	Proc       int                      `json:"proc"`
	Counters   map[string]uint64        `json:"counters,omitempty"`
	Histograms map[string]HistogramJSON `json:"histograms,omitempty"`
}

// Snapshot renders the registry sorted by ProcID — canonical artifact
// order (encoding/json additionally sorts the map keys, so snapshot
// bytes are deterministic).
func (m *Metrics) Snapshot() []MemberMetrics {
	out := make([]MemberMetrics, 0, len(m.members))
	for _, p := range m.Procs() {
		mm := m.members[p]
		s := MemberMetrics{Proc: int(p)}
		if len(mm.counters) > 0 {
			s.Counters = make(map[string]uint64, len(mm.counters))
			for k, v := range mm.counters {
				s.Counters[k] = v
			}
		}
		if len(mm.hists) > 0 {
			s.Histograms = make(map[string]HistogramJSON, len(mm.hists))
			for k, h := range mm.hists {
				s.Histograms[k] = h.ToJSON()
			}
		}
		out = append(out, s)
	}
	return out
}
