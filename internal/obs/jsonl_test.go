package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTrace() []Event {
	return []Event{
		TokenPass(time.Millisecond, 0, 1, 1, 0, 0),
		Phase(2*time.Millisecond, 1, 2, 0, 0),
		SwitchStart(3*time.Millisecond, 0, 0, 0),
		SwitchComplete(34*time.Millisecond, 0, 0, 0, 31*time.Millisecond),
		EpochAdvance(35*time.Millisecond, 1, 1),
		WedgeTimeout(40*time.Millisecond, 2, 3),
		Heal(50 * time.Millisecond),
		FaultSet(60*time.Millisecond, 100, 10, time.Millisecond),
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := sampleTrace()
	b, err := MarshalJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(b, []byte("\n")); got != len(in) {
		t.Fatalf("%d lines for %d events", got, len(in))
	}
	out, err := ReadJSONL(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost events: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("event %d mangled:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	a, err := MarshalJSONL(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalJSONL(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same trace produced different bytes")
	}
	// The heal event carries no peer/mode/epoch: those keys must be
	// absent, not zero-valued, so the format stays compact.
	if strings.Contains(string(a), `"mode":""`) || strings.Contains(string(a), `"peer":null`) {
		t.Errorf("empty fields leaked into the wire format:\n%s", a)
	}
}

func TestValidateJSONL(t *testing.T) {
	good, err := MarshalJSONL(TagRun(0, sampleTrace()))
	if err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSONL(bytes.NewReader(good))
	if err != nil || n != len(sampleTrace()) {
		t.Fatalf("valid trace rejected: n=%d err=%v", n, err)
	}

	bad := []struct {
		name string
		line string
	}{
		{"garbage", "not json"},
		{"unknown type", `{"at_ns":1,"type":"nope","proc":0}`},
		{"unknown mode", `{"at_ns":1,"type":"token_pass","proc":0,"mode":"WAT"}`},
		{"negative time", `{"at_ns":-5,"type":"heal","proc":-1}`},
		{"too many args", `{"at_ns":1,"type":"drop","proc":0,"args":[1,2,3,4]}`},
	}
	for _, c := range bad {
		if _, err := ValidateJSONL(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}

	// Time must be monotone within a run, and runs must not interleave.
	back := `{"at_ns":10,"type":"heal","proc":-1}` + "\n" + `{"at_ns":5,"type":"heal","proc":-1}` + "\n"
	if _, err := ValidateJSONL(strings.NewReader(back)); err == nil {
		t.Error("backwards time accepted")
	}
	interleave := `{"at_ns":1,"run":1,"type":"heal","proc":-1}` + "\n" + `{"at_ns":2,"type":"heal","proc":-1}` + "\n"
	if _, err := ValidateJSONL(strings.NewReader(interleave)); err == nil {
		t.Error("interleaved runs accepted")
	}
	// A new run may rewind the clock.
	reset := `{"at_ns":10,"type":"heal","proc":-1}` + "\n" + `{"at_ns":1,"run":1,"type":"heal","proc":-1}` + "\n"
	if _, err := ValidateJSONL(strings.NewReader(reset)); err != nil {
		t.Errorf("run boundary clock reset rejected: %v", err)
	}
}

func TestChromeTraceSpans(t *testing.T) {
	b, err := ChromeTrace(TagRun(0, sampleTrace()))
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"switch e0"`, `"drain e0"`, `"wedge timeout"`, `"heal"`, `"traceEvents"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, s)
		}
	}
	// The switch span must carry the measured 31 ms duration.
	if !strings.Contains(s, `"dur": 31000`) {
		t.Errorf("switch span duration missing:\n%s", s)
	}
	// Token passes are JSONL-only.
	if strings.Contains(s, "token_pass") {
		t.Error("token passes leaked into the chrome trace")
	}
	a, _ := ChromeTrace(TagRun(0, sampleTrace()))
	if !bytes.Equal(a, b) {
		t.Error("chrome trace bytes not deterministic")
	}
}
