package obs

// DefaultFlightSize is the flight recorder's default capacity. At
// chaos-run event rates it holds roughly the last half second of
// protocol activity — enough history to see the faults and recovery
// steps that led to an invariant violation.
const DefaultFlightSize = 512

// FlightRecorder keeps the last N events in a preallocated ring — the
// chaos harness's black box. When an invariant is violated, Snapshot
// yields the tail of the event history for the failure artifact.
type FlightRecorder struct {
	buf   []Event
	total uint64
}

// NewFlightRecorder returns a recorder retaining the last size events
// (size <= 0 uses DefaultFlightSize).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{buf: make([]Event, size)}
}

// Record stores the event, evicting the oldest once full.
func (f *FlightRecorder) Record(e Event) {
	f.buf[int(f.total%uint64(len(f.buf)))] = e
	f.total++
}

// Enabled reports true.
func (f *FlightRecorder) Enabled() bool { return true }

// Snapshot returns the retained events, oldest first.
func (f *FlightRecorder) Snapshot() []Event {
	n := f.total
	size := uint64(len(f.buf))
	if n > size {
		n = size
	}
	out := make([]Event, 0, n)
	start := f.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, f.buf[int((start+i)%size)])
	}
	return out
}

// Dropped returns how many events were evicted from the ring.
func (f *FlightRecorder) Dropped() uint64 {
	if size := uint64(len(f.buf)); f.total > size {
		return f.total - size
	}
	return 0
}

// Total returns how many events were recorded overall.
func (f *FlightRecorder) Total() uint64 { return f.total }
