// Package obs is the deterministic observability layer: typed
// structured events emitted by the switching core, its recovery
// extensions, and the simulated network, plus the recorders that
// consume them (trace collectors, a bounded flight recorder, and a
// per-member metrics registry).
//
// Everything in this package is driven by the discrete-event
// simulator's virtual clock, so for a fixed seed the event stream is a
// pure function of the configuration: recording an execution twice —
// or running a sweep on any number of workers — produces byte-identical
// traces. Recorders must therefore never consult wall-clock time or
// any other non-deterministic source.
//
// The default recorder is Nop, which is allocation-free: Event is a
// plain value struct with no pointer fields, so constructing one and
// passing it to Nop.Record costs a few register moves and no heap
// traffic. Instrumented hot paths additionally guard per-packet events
// behind Enabled().
package obs

import (
	"fmt"
	"time"

	"repro/internal/ids"
)

// NoProc marks an event that is not attributed to a single member
// (network-wide faults such as a heal).
const NoProc ids.ProcID = -1

// NoPeer marks an event without a peer member.
const NoPeer ids.ProcID = -1

// EventType enumerates the structured event vocabulary.
type EventType uint8

const (
	// EvTokenPass: Proc forwarded the token to Peer (Mode, Epoch, Gen
	// from the token; Peer == Proc for a singleton self-loop).
	EvTokenPass EventType = iota + 1
	// EvTokenHold: Proc started holding a token for the idle interval.
	EvTokenHold
	// EvTokenRegen: Proc regenerated a presumed-lost token; Gen is the
	// new generation, Epoch the member's delivery epoch at that moment.
	EvTokenRegen
	// EvPhase: Proc entered a switch phase — it redirected its sends to
	// Epoch+1 on seeing the round's token (Mode PREPARE on the normal
	// path, SWITCH on a recovery late-join).
	EvPhase
	// EvSwitchStart: Proc became the initiator of a switch closing
	// Epoch.
	EvSwitchStart
	// EvSwitchComplete: the FLUSH token returned to the initiator Proc;
	// Args[0] is the round's end-to-end duration in nanoseconds.
	EvSwitchComplete
	// EvSwitchAbort: Proc abandoned or re-ran a switch round (token
	// lost, or the round was superseded by a newer lineage).
	EvSwitchAbort
	// EvEpochAdvance: Proc completed a switch locally and moved to
	// delivery Epoch.
	EvEpochAdvance
	// EvEpochForced: Proc adopted delivery Epoch from a token after
	// missing the switch round itself (rejoin fast-forward).
	EvEpochForced
	// EvBuffered: Proc buffered a future-epoch message from Peer.
	EvBuffered
	// EvStaleDrop: Proc dropped a message from Peer for an
	// already-closed Epoch.
	EvStaleDrop
	// EvWedgeTimeout: Proc's wedge detector expired (token presumed
	// lost); Args[0] is the consecutive-strike count.
	EvWedgeTimeout
	// EvSuspect: Proc's failure detector suspected Peer.
	EvSuspect
	// EvCrash: the network crash-stopped Proc.
	EvCrash
	// EvPartition: the network cut Proc off from Args[0] peers.
	EvPartition
	// EvHeal: the network removed every partition (Proc == NoProc).
	EvHeal
	// EvFaultSet: the per-receiver fault knobs changed; Args are
	// [drop per-mille, dup per-mille, jitter ns] (Proc == NoProc).
	EvFaultSet
	// EvDrop: the network dropped a packet to Proc from Peer; Args[0]
	// is 0 for a block/crash drop, 1 for random loss.
	EvDrop
	// EvDelay: the network jittered a packet to Proc from Peer by
	// Args[0] nanoseconds.
	EvDelay
	// EvCorruptSet: the per-receiver corruption knobs changed; Args are
	// [corrupt per-mille, truncate per-mille] (Proc == NoProc).
	EvCorruptSet
	// EvCorrupt: the network flipped Args[0] bits in a packet to Proc
	// from Peer.
	EvCorrupt
	// EvTruncate: the network truncated a packet to Proc from Peer,
	// keeping Args[0] of Args[1] bytes.
	EvTruncate
	// EvGarbage: the network injected Args[0] random bytes to Proc,
	// forged to look like they came from Peer.
	EvGarbage
	// EvMalformedDrop: Proc's defensive ingress rejected a message
	// apparently from Peer without mutating state; Args[0] is a
	// MalformedReason code.
	EvMalformedDrop
	// EvQuarantine: Proc's malformed-message count for Peer crossed the
	// quarantine threshold (Args[0]) and raised a suspicion instead of
	// wedging.
	EvQuarantine
	// EvAuthFail: Proc's authenticated ingress rejected a frame
	// apparently from Peer; Args[0] is an AuthFailReason code, Epoch the
	// frame's claimed epoch where one parsed (zero otherwise).
	EvAuthFail
	// EvForged: the network injected a forged frame of Args[0] bytes to
	// Proc, claiming to come from Peer.
	EvForged
	// EvReplayed: the network re-delivered a previously captured frame
	// of Args[0] bytes to Proc, originally from Peer.
	EvReplayed
	// EvShed: Proc's overload layer dropped a message at a hard queue
	// limit; Args[0] is a ShedReason code (ingress frame from Peer, or
	// an egress application send with Peer == NoPeer), Args[1] the queue
	// depth at the drop.
	EvShed
	// EvBackpressureOn: Proc's egress queue depth (Args[0]) crossed the
	// high watermark and local senders were asked to pause.
	EvBackpressureOn
	// EvBackpressureOff: Proc's egress queue depth (Args[0]) fell back
	// to the low watermark and local senders were asked to resume.
	EvBackpressureOff
	// EvRetrySend: Proc's overload layer scheduled retry attempt
	// Args[0] of a rejected application send, Args[1] nanoseconds out.
	EvRetrySend
	// EvQueueDepth: the network sampled Proc's egress queue at depth
	// Args[0] (periodic gauge; trace-only).
	EvQueueDepth
	// EvSenderSpike: the network's flash-crowd knob changed to an
	// Args[0]× sender multiplier (Proc == NoProc).
	EvSenderSpike
	// EvSuspectCleared: Proc's failure detector cleared its suspicion
	// of Peer (a heartbeat arrived from a suspected member) — the
	// falling edge paired with EvSuspect, so suspect gauges can drop.
	EvSuspectCleared
	// EvSuspicionRaise: Proc's adaptive detector crossed its graded
	// suspicion threshold for Peer; Args[0] is the integer-scaled
	// suspicion level (elapsed/mean × SuspicionScale).
	EvSuspicionRaise
	// EvSuspicionClear: Proc's adaptive detector cleared its graded
	// suspicion of Peer (traffic resumed before the peer was written
	// off).
	EvSuspicionClear
	// EvFlapPenalty: Proc charged Peer a flap-damping penalty for a
	// suspicion that cleared and re-fired; Args[0] is the accumulated
	// penalty after the charge, Args[1] the flap count.
	EvFlapPenalty
	// EvDegradedSkip: Proc routed the token around Peer because Peer is
	// damped (degraded mode) — skipped in ring rotation without a
	// token regeneration.
	EvDegradedSkip
	// EvReinclude: Proc's flap-damping penalty for Peer decayed below
	// the reuse threshold and Peer rejoined Proc's ring rotation;
	// Args[0] is the decayed penalty at re-inclusion.
	EvReinclude
	// EvLinkFaultSet: the per-directed-link fault overrides changed for
	// the link Peer→Proc; Args are [drop per-mille, dup per-mille,
	// extra delay ns] (all zero clears the override).
	EvLinkFaultSet
	// EvSlowNodeSet: the network stretched Proc's send/processing CPU
	// charges by an Args[0]× factor (1 restores full speed).
	EvSlowNodeSet
	// EvFlapSet: the network started (or, with Args[0] == 0, stopped)
	// flapping the link Peer→Proc: the link partitions and heals every
	// Args[0] ns until virtual time Args[1].
	EvFlapSet

	eventTypeCount
)

// eventNames are the stable wire names used by the JSONL exporter.
var eventNames = [eventTypeCount]string{
	EvTokenPass:       "token_pass",
	EvTokenHold:       "token_hold",
	EvTokenRegen:      "token_regen",
	EvPhase:           "phase",
	EvSwitchStart:     "switch_start",
	EvSwitchComplete:  "switch_complete",
	EvSwitchAbort:     "switch_abort",
	EvEpochAdvance:    "epoch_advance",
	EvEpochForced:     "epoch_forced",
	EvBuffered:        "buffered",
	EvStaleDrop:       "stale_drop",
	EvWedgeTimeout:    "wedge_timeout",
	EvSuspect:         "suspect",
	EvCrash:           "crash",
	EvPartition:       "partition",
	EvHeal:            "heal",
	EvFaultSet:        "fault_set",
	EvDrop:            "drop",
	EvDelay:           "delay",
	EvCorruptSet:      "corrupt_set",
	EvCorrupt:         "corrupt",
	EvTruncate:        "truncate",
	EvGarbage:         "garbage",
	EvMalformedDrop:   "malformed_drop",
	EvQuarantine:      "quarantine",
	EvAuthFail:        "auth_fail",
	EvForged:          "forged",
	EvReplayed:        "replayed",
	EvShed:            "shed",
	EvBackpressureOn:  "backpressure_on",
	EvBackpressureOff: "backpressure_off",
	EvRetrySend:       "retry_send",
	EvQueueDepth:      "queue_depth",
	EvSenderSpike:     "sender_spike",
	EvSuspectCleared:  "suspect_cleared",
	EvSuspicionRaise:  "suspicion_raise",
	EvSuspicionClear:  "suspicion_clear",
	EvFlapPenalty:     "flap_penalty",
	EvDegradedSkip:    "degraded_skip",
	EvReinclude:       "reinclude",
	EvLinkFaultSet:    "link_fault_set",
	EvSlowNodeSet:     "slow_node_set",
	EvFlapSet:         "flap_set",
}

// String renders the type's stable wire name.
func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// ModeName renders a token mode byte (mirrors switching.Mode without
// importing it — switching imports obs). Zero means "no mode".
func ModeName(m uint8) string {
	switch m {
	case 1:
		return "NORMAL"
	case 2:
		return "PREPARE"
	case 3:
		return "SWITCH"
	case 4:
		return "FLUSH"
	default:
		return ""
	}
}

// modeByName is the inverse of ModeName (JSONL decoding).
func modeByName(s string) (uint8, bool) {
	switch s {
	case "":
		return 0, true
	case "NORMAL":
		return 1, true
	case "PREPARE":
		return 2, true
	case "SWITCH":
		return 3, true
	case "FLUSH":
		return 4, true
	}
	return 0, false
}

// Event is one structured observation. It is a pure value: no pointer
// fields, so events can be recorded, copied, and ring-buffered without
// allocating, and two traces compare with ==.
type Event struct {
	// At is the virtual time of the observation.
	At time.Duration
	// Run tags the sweep run the event belongs to; it is zero at
	// recording time and set when per-run traces are merged.
	Run int
	// Type selects the vocabulary entry; the remaining fields'
	// per-type meaning is documented on the Ev* constants.
	Type EventType
	// Mode is the token mode (1..4 as switching.Mode; 0 when absent).
	Mode uint8
	// Proc is the member the event happened at (NoProc for
	// network-wide events).
	Proc ids.ProcID
	// Peer is the other member involved (NoPeer when absent).
	Peer ids.ProcID
	// Epoch and Gen carry the protocol epoch and token generation
	// where meaningful.
	Epoch, Gen uint64
	// Args holds type-specific numeric payload (durations in ns,
	// counts); unused slots are zero.
	Args [3]int64
}

// Constructors — one per event type, so call sites cannot mix up the
// overloaded fields.

// TokenPass records a token forwarded from proc to peer.
func TokenPass(at time.Duration, proc, peer ids.ProcID, mode uint8, epoch, gen uint64) Event {
	return Event{At: at, Type: EvTokenPass, Proc: proc, Peer: peer, Mode: mode, Epoch: epoch, Gen: gen}
}

// TokenHold records the start of an idle token hold at proc.
func TokenHold(at time.Duration, proc ids.ProcID, mode uint8, epoch, gen uint64) Event {
	return Event{At: at, Type: EvTokenHold, Proc: proc, Peer: NoPeer, Mode: mode, Epoch: epoch, Gen: gen}
}

// TokenRegen records a token regeneration at proc.
func TokenRegen(at time.Duration, proc ids.ProcID, epoch, gen uint64) Event {
	return Event{At: at, Type: EvTokenRegen, Proc: proc, Peer: NoPeer, Epoch: epoch, Gen: gen}
}

// Phase records proc entering a switch phase (send redirection).
func Phase(at time.Duration, proc ids.ProcID, mode uint8, epoch, gen uint64) Event {
	return Event{At: at, Type: EvPhase, Proc: proc, Peer: NoPeer, Mode: mode, Epoch: epoch, Gen: gen}
}

// SwitchStart records proc becoming the initiator of a switch.
func SwitchStart(at time.Duration, proc ids.ProcID, epoch, gen uint64) Event {
	return Event{At: at, Type: EvSwitchStart, Proc: proc, Peer: NoPeer, Epoch: epoch, Gen: gen}
}

// SwitchComplete records the FLUSH token returning to initiator proc.
func SwitchComplete(at time.Duration, proc ids.ProcID, epoch, gen uint64, took time.Duration) Event {
	return Event{At: at, Type: EvSwitchComplete, Proc: proc, Peer: NoPeer, Epoch: epoch, Gen: gen,
		Args: [3]int64{int64(took)}}
}

// SwitchAbort records proc abandoning or re-running a switch round;
// gen is the token lineage that supersedes the aborted round.
func SwitchAbort(at time.Duration, proc ids.ProcID, epoch, gen uint64) Event {
	return Event{At: at, Type: EvSwitchAbort, Proc: proc, Peer: NoPeer, Epoch: epoch, Gen: gen}
}

// EpochAdvance records proc completing a switch into delivery epoch.
func EpochAdvance(at time.Duration, proc ids.ProcID, epoch uint64) Event {
	return Event{At: at, Type: EvEpochAdvance, Proc: proc, Peer: NoPeer, Epoch: epoch}
}

// EpochForced records proc fast-forwarding to epoch after missing the
// switch round.
func EpochForced(at time.Duration, proc ids.ProcID, epoch uint64) Event {
	return Event{At: at, Type: EvEpochForced, Proc: proc, Peer: NoPeer, Epoch: epoch}
}

// Buffered records proc buffering a future-epoch message from peer.
func Buffered(at time.Duration, proc, peer ids.ProcID, epoch uint64) Event {
	return Event{At: at, Type: EvBuffered, Proc: proc, Peer: peer, Epoch: epoch}
}

// StaleDrop records proc dropping a closed-epoch message from peer.
func StaleDrop(at time.Duration, proc, peer ids.ProcID, epoch uint64) Event {
	return Event{At: at, Type: EvStaleDrop, Proc: proc, Peer: peer, Epoch: epoch}
}

// WedgeTimeout records proc's wedge detector expiring at the given
// consecutive-strike count.
func WedgeTimeout(at time.Duration, proc ids.ProcID, strikes int) Event {
	return Event{At: at, Type: EvWedgeTimeout, Proc: proc, Peer: NoPeer, Args: [3]int64{int64(strikes)}}
}

// Suspect records proc's failure detector suspecting peer.
func Suspect(at time.Duration, proc, peer ids.ProcID) Event {
	return Event{At: at, Type: EvSuspect, Proc: proc, Peer: peer}
}

// Crash records the network crash-stopping proc.
func Crash(at time.Duration, proc ids.ProcID) Event {
	return Event{At: at, Type: EvCrash, Proc: proc, Peer: NoPeer}
}

// Partition records proc being cut off from peers other members.
func Partition(at time.Duration, proc ids.ProcID, peers int) Event {
	return Event{At: at, Type: EvPartition, Proc: proc, Peer: NoPeer, Args: [3]int64{int64(peers)}}
}

// Heal records all partitions being removed.
func Heal(at time.Duration) Event {
	return Event{At: at, Type: EvHeal, Proc: NoProc, Peer: NoPeer}
}

// FaultSet records the per-receiver fault knobs changing.
func FaultSet(at time.Duration, dropPermille, dupPermille int64, jitter time.Duration) Event {
	return Event{At: at, Type: EvFaultSet, Proc: NoProc, Peer: NoPeer,
		Args: [3]int64{dropPermille, dupPermille, int64(jitter)}}
}

// Drop reason codes (Args[0] of EvDrop).
const (
	// DropBlocked: the packet crossed a partition cut or involved a
	// crashed node.
	DropBlocked = 0
	// DropRandom: the packet fell to the configured loss probability.
	DropRandom = 1
	// DropMailbox: a realtime node's event-loop mailbox was full and
	// the posted work was discarded (overload at the runtime boundary).
	DropMailbox = 2
)

// Drop records the network dropping a packet to proc from peer.
func Drop(at time.Duration, proc, peer ids.ProcID, reason int64) Event {
	return Event{At: at, Type: EvDrop, Proc: proc, Peer: peer, Args: [3]int64{reason}}
}

// Delay records the network jittering a packet to proc from peer.
func Delay(at time.Duration, proc, peer ids.ProcID, by time.Duration) Event {
	return Event{At: at, Type: EvDelay, Proc: proc, Peer: peer, Args: [3]int64{int64(by)}}
}

// CorruptSet records the per-receiver corruption knobs changing.
func CorruptSet(at time.Duration, corruptPermille, truncatePermille int64) Event {
	return Event{At: at, Type: EvCorruptSet, Proc: NoProc, Peer: NoPeer,
		Args: [3]int64{corruptPermille, truncatePermille}}
}

// Corrupt records the network flipping bits in a packet to proc from
// peer.
func Corrupt(at time.Duration, proc, peer ids.ProcID, bits int) Event {
	return Event{At: at, Type: EvCorrupt, Proc: proc, Peer: peer, Args: [3]int64{int64(bits)}}
}

// Truncate records the network truncating a packet to proc from peer,
// keeping kept of size bytes.
func Truncate(at time.Duration, proc, peer ids.ProcID, kept, size int) Event {
	return Event{At: at, Type: EvTruncate, Proc: proc, Peer: peer,
		Args: [3]int64{int64(kept), int64(size)}}
}

// Garbage records the network injecting size random bytes to proc,
// forged to look like they came from peer.
func Garbage(at time.Duration, proc, peer ids.ProcID, size int) Event {
	return Event{At: at, Type: EvGarbage, Proc: proc, Peer: peer, Args: [3]int64{int64(size)}}
}

// MalformedReason codes (Args[0] of EvMalformedDrop) name the ingress
// check that rejected the message.
const (
	// MalformedFrame: the integrity envelope was too short or carried
	// the wrong magic byte.
	MalformedFrame int64 = 0
	// MalformedChecksum: the envelope checksum did not match the
	// payload.
	MalformedChecksum int64 = 1
	// MalformedDecode: a header or token failed to decode.
	MalformedDecode int64 = 2
	// MalformedRange: a decoded field was outside its valid range
	// (e.g. a token vector longer than the ring).
	MalformedRange int64 = 3
)

// MalformedDrop records proc's defensive ingress rejecting a message
// apparently from peer for the given reason code.
func MalformedDrop(at time.Duration, proc, peer ids.ProcID, reason int64) Event {
	return Event{At: at, Type: EvMalformedDrop, Proc: proc, Peer: peer, Args: [3]int64{reason}}
}

// Quarantine records proc crossing the malformed-message threshold for
// peer and raising a suspicion.
func Quarantine(at time.Duration, proc, peer ids.ProcID, threshold int) Event {
	return Event{At: at, Type: EvQuarantine, Proc: proc, Peer: peer, Args: [3]int64{int64(threshold)}}
}

// AuthFailReason codes (Args[0] of EvAuthFail) name the authenticated
// ingress check that rejected the frame.
const (
	// AuthBadFrame: the frame was not structurally an authenticated
	// envelope (wrong magic, truncated header or MAC).
	AuthBadFrame int64 = 0
	// AuthBadMAC: the envelope parsed but its MAC did not verify under
	// the claimed epoch's key — a forgery or corruption.
	AuthBadMAC int64 = 1
	// AuthStaleEpoch: the frame authenticated to an epoch the receiver
	// has retired (grace window closed) — a cross-epoch replay.
	AuthStaleEpoch int64 = 2
)

// AuthFail records proc's authenticated ingress rejecting a frame
// apparently from peer for the given reason code, claiming the given
// epoch (zero when the epoch header did not parse).
func AuthFail(at time.Duration, proc, peer ids.ProcID, epoch uint64, reason int64) Event {
	return Event{At: at, Type: EvAuthFail, Proc: proc, Peer: peer, Epoch: epoch, Args: [3]int64{reason}}
}

// Forged records the network injecting a forged frame of size bytes to
// proc, claiming to come from peer.
func Forged(at time.Duration, proc, peer ids.ProcID, size int) Event {
	return Event{At: at, Type: EvForged, Proc: proc, Peer: peer, Args: [3]int64{int64(size)}}
}

// Replayed records the network re-delivering a captured frame of size
// bytes to proc, originally from peer.
func Replayed(at time.Duration, proc, peer ids.ProcID, size int) Event {
	return Event{At: at, Type: EvReplayed, Proc: proc, Peer: peer, Args: [3]int64{int64(size)}}
}

// ShedReason codes (Args[0] of EvShed) name the hard limit that shed
// the message.
const (
	// ShedIngress: a data frame from Peer arrived with the per-peer
	// ingress queue at its cap (drop-newest).
	ShedIngress int64 = 0
	// ShedEgress: an application send found the egress queue at its cap
	// and exhausted its retry budget.
	ShedEgress int64 = 1
)

// Shed records proc's overload layer dropping a message at a hard
// queue limit (peer is the frame's sender for ingress sheds, NoPeer
// for egress sheds).
func Shed(at time.Duration, proc, peer ids.ProcID, reason int64, depth int) Event {
	return Event{At: at, Type: EvShed, Proc: proc, Peer: peer, Args: [3]int64{reason, int64(depth)}}
}

// BackpressureOn records proc's egress depth crossing the high
// watermark (senders asked to pause).
func BackpressureOn(at time.Duration, proc ids.ProcID, depth int) Event {
	return Event{At: at, Type: EvBackpressureOn, Proc: proc, Peer: NoPeer, Args: [3]int64{int64(depth)}}
}

// BackpressureOff records proc's egress depth reaching the low
// watermark again (senders asked to resume).
func BackpressureOff(at time.Duration, proc ids.ProcID, depth int) Event {
	return Event{At: at, Type: EvBackpressureOff, Proc: proc, Peer: NoPeer, Args: [3]int64{int64(depth)}}
}

// RetrySend records proc scheduling retry number attempt of a rejected
// application send, firing after the given backoff.
func RetrySend(at time.Duration, proc ids.ProcID, attempt int, backoff time.Duration) Event {
	return Event{At: at, Type: EvRetrySend, Proc: proc, Peer: NoPeer,
		Args: [3]int64{int64(attempt), int64(backoff)}}
}

// QueueDepth records the network sampling proc's egress queue depth.
func QueueDepth(at time.Duration, proc ids.ProcID, depth int) Event {
	return Event{At: at, Type: EvQueueDepth, Proc: proc, Peer: NoPeer, Args: [3]int64{int64(depth)}}
}

// SenderSpike records the network's flash-crowd sender multiplier
// changing (1 restores the baseline sender population).
func SenderSpike(at time.Duration, multiplier int) Event {
	return Event{At: at, Type: EvSenderSpike, Proc: NoProc, Peer: NoPeer,
		Args: [3]int64{int64(multiplier)}}
}

// SuspectCleared records proc's failure detector clearing its
// suspicion of peer.
func SuspectCleared(at time.Duration, proc, peer ids.ProcID) Event {
	return Event{At: at, Type: EvSuspectCleared, Proc: proc, Peer: peer}
}

// SuspicionScale is the fixed-point scale of the adaptive detector's
// graded suspicion level: level = elapsed × SuspicionScale / mean
// inter-arrival, kept in integers so sweeps stay deterministic.
const SuspicionScale int64 = 1000

// SuspicionRaise records proc's adaptive detector crossing its graded
// suspicion threshold for peer at the given integer-scaled level.
func SuspicionRaise(at time.Duration, proc, peer ids.ProcID, level int64) Event {
	return Event{At: at, Type: EvSuspicionRaise, Proc: proc, Peer: peer, Args: [3]int64{level}}
}

// SuspicionClear records proc's adaptive detector clearing its graded
// suspicion of peer.
func SuspicionClear(at time.Duration, proc, peer ids.ProcID) Event {
	return Event{At: at, Type: EvSuspicionClear, Proc: proc, Peer: peer}
}

// FlapPenalty records proc charging peer a flap-damping penalty,
// leaving the accumulated penalty and flap count.
func FlapPenalty(at time.Duration, proc, peer ids.ProcID, penalty int64, flaps int) Event {
	return Event{At: at, Type: EvFlapPenalty, Proc: proc, Peer: peer,
		Args: [3]int64{penalty, int64(flaps)}}
}

// DegradedSkip records proc routing the token around the damped peer.
func DegradedSkip(at time.Duration, proc, peer ids.ProcID) Event {
	return Event{At: at, Type: EvDegradedSkip, Proc: proc, Peer: peer}
}

// Reinclude records proc re-including peer in its ring rotation after
// the flap penalty decayed to the given value.
func Reinclude(at time.Duration, proc, peer ids.ProcID, penalty int64) Event {
	return Event{At: at, Type: EvReinclude, Proc: proc, Peer: peer, Args: [3]int64{penalty}}
}

// LinkFaultSet records the per-directed-link fault overrides changing
// for the link from→to (all-zero knobs clear the override).
func LinkFaultSet(at time.Duration, from, to ids.ProcID, dropPermille, dupPermille int64, extra time.Duration) Event {
	return Event{At: at, Type: EvLinkFaultSet, Proc: to, Peer: from,
		Args: [3]int64{dropPermille, dupPermille, int64(extra)}}
}

// SlowNodeSet records the network stretching proc's CPU charges by the
// given factor (1 restores full speed).
func SlowNodeSet(at time.Duration, proc ids.ProcID, factor int) Event {
	return Event{At: at, Type: EvSlowNodeSet, Proc: proc, Peer: NoPeer,
		Args: [3]int64{int64(factor)}}
}

// FlapSet records the network starting (period > 0) or stopping
// (period == 0) a partition flap on the link from→to.
func FlapSet(at time.Duration, from, to ids.ProcID, period time.Duration, until time.Duration) Event {
	return Event{At: at, Type: EvFlapSet, Proc: to, Peer: from,
		Args: [3]int64{int64(period), int64(until)}}
}

// Recorder consumes events. Implementations must be deterministic
// (virtual time only) and cheap; Record is called from protocol hot
// paths.
type Recorder interface {
	Record(Event)
	// Enabled reports whether events are consumed at all. Hot paths
	// that would emit high-volume per-packet events (drops, delays) may
	// skip constructing them when Enabled is false; low-volume emitters
	// call Record unconditionally.
	Enabled() bool
}

// Nop is the default recorder: it discards events without allocating.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Record(Event)  {}
func (nopRecorder) Enabled() bool { return false }

// OrNop returns r, or Nop when r is nil — the normalization every
// instrumented component applies to its configured recorder.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// Collector retains every recorded event in order — the trace sink
// behind the JSONL exporter.
type Collector struct {
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends the event.
func (c *Collector) Record(e Event) { c.events = append(c.events, e) }

// Enabled reports true.
func (c *Collector) Enabled() bool { return true }

// Events returns the recorded events (the collector's own slice; do
// not mutate while still recording).
func (c *Collector) Events() []Event { return c.events }

// Len returns the number of recorded events.
func (c *Collector) Len() int { return len(c.events) }

// Multi fans events out to several recorders. Nil and Nop entries are
// dropped; zero live recorders collapse to Nop and a single one is
// returned unwrapped.
func Multi(rs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range rs {
		if r == nil || r == Nop {
			continue
		}
		live = append(live, r)
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Recorder

func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

func (m multi) Enabled() bool { return true }

// TagRun returns a copy of events with every Run field set — used when
// merging per-job traces from a sweep into one stream.
func TagRun(run int, events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		e.Run = run
		out[i] = e
	}
	return out
}

// MergeRuns concatenates per-run traces in index order, tagging each
// event with its run. Sweeps collect traces by job index, so the merge
// is identical for any worker count.
func MergeRuns(traces [][]Event) []Event {
	var n int
	for _, t := range traces {
		n += len(t)
	}
	out := make([]Event, 0, n)
	for run, t := range traces {
		for _, e := range t {
			e.Run = run
			out = append(out, e)
		}
	}
	return out
}
