package obs

import (
	"testing"
	"time"
)

func TestNopIsZeroAlloc(t *testing.T) {
	r := OrNop(nil)
	if r != Nop {
		t.Fatal("OrNop(nil) != Nop")
	}
	if r.Enabled() {
		t.Fatal("Nop reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(TokenPass(time.Millisecond, 0, 1, 1, 2, 3))
		r.Record(SwitchComplete(time.Second, 2, 4, 1, 31*time.Millisecond))
	})
	if allocs != 0 {
		t.Errorf("no-op recording allocates %.1f/op, want 0", allocs)
	}
}

func TestCollectorOrder(t *testing.T) {
	c := NewCollector()
	if !c.Enabled() {
		t.Fatal("collector disabled")
	}
	e1 := WedgeTimeout(time.Millisecond, 2, 1)
	e2 := TokenRegen(2*time.Millisecond, 2, 0, 1)
	c.Record(e1)
	c.Record(e2)
	got := c.Events()
	if len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Fatalf("collector mangled events: %+v", got)
	}
}

func TestMultiFansOutAndCollapses(t *testing.T) {
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Error("empty Multi should collapse to Nop")
	}
	c := NewCollector()
	if Multi(nil, c, Nop) != c {
		t.Error("single live recorder should be returned unwrapped")
	}
	c2 := NewCollector()
	m := Multi(c, c2)
	if !m.Enabled() {
		t.Error("multi disabled")
	}
	m.Record(Heal(time.Second))
	m.Record(Heal(2 * time.Second))
	if c.Len() != 2 || c2.Len() != 2 {
		t.Errorf("fan-out wrong: %d, %d", c.Len(), c2.Len())
	}
}

func TestFlightRecorderKeepsTail(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(EpochAdvance(time.Duration(i), 0, uint64(i)))
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		if want := uint64(6 + i); e.Epoch != want {
			t.Errorf("snapshot[%d].Epoch = %d, want %d (oldest first)", i, e.Epoch, want)
		}
	}
	if f.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", f.Dropped())
	}
	if f.Total() != 10 {
		t.Errorf("total = %d, want 10", f.Total())
	}
}

func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(0) // default size
	f.Record(Crash(time.Second, 3))
	snap := f.Snapshot()
	if len(snap) != 1 || snap[0].Type != EvCrash || f.Dropped() != 0 {
		t.Fatalf("partial ring wrong: %+v dropped=%d", snap, f.Dropped())
	}
}

func TestMergeRunsTagsInOrder(t *testing.T) {
	traces := [][]Event{
		{EpochAdvance(1, 0, 1)},
		nil,
		{EpochAdvance(2, 1, 1), EpochAdvance(3, 1, 2)},
	}
	got := MergeRuns(traces)
	if len(got) != 3 {
		t.Fatalf("merged %d events, want 3", len(got))
	}
	wantRuns := []int{0, 2, 2}
	for i, e := range got {
		if e.Run != wantRuns[i] {
			t.Errorf("event %d run = %d, want %d", i, e.Run, wantRuns[i])
		}
	}
	// TagRun must not mutate its input.
	src := []Event{EpochAdvance(1, 0, 1)}
	TagRun(7, src)
	if src[0].Run != 0 {
		t.Error("TagRun mutated its input")
	}
}

func TestEventTypeNames(t *testing.T) {
	seen := map[string]bool{}
	for ty := EventType(1); ty < eventTypeCount; ty++ {
		s := ty.String()
		if s == "" || seen[s] {
			t.Errorf("type %d has empty or duplicate name %q", ty, s)
		}
		seen[s] = true
	}
	for _, m := range []uint8{1, 2, 3, 4} {
		got, ok := modeByName(ModeName(m))
		if !ok || got != m {
			t.Errorf("mode %d does not round-trip (%q)", m, ModeName(m))
		}
	}
}
