package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/harness/engine"
	"repro/internal/ids"
	"repro/internal/simnet"
)

// This file is E17: the flash-crowd study. A steady workload runs with
// the overload layer enabled; mid-run the active sender population is
// multiplied (the flash crowd), held for a window, and released. The
// experiment reports delivery latency in three phases — before, during,
// and after the spike — plus the overload layer's shed/backpressure/
// retry totals, answering the ROADMAP's question: when senders spike
// 10x, does the system degrade gracefully and recover, instead of
// growing queues without bound?

// FlashCrowdConfig parameterizes the study.
type FlashCrowdConfig struct {
	Seed int64
	// Multipliers are the spike sizes to sweep (default 2, 4, 10).
	Multipliers []int
	// Run is the base workload; its zero fields default to a smaller,
	// faster variant of the §7 setup (6 members, 2 senders at 100 msg/s).
	Run RunConfig
	// Overload tunes the switching layer's protection; zero fields get
	// caps tight enough that a 10x crowd visibly sheds.
	Overload switching.OverloadConfig
	// SpikeStart/SpikeDur place the crowd inside the measurement window
	// (offsets from the end of warmup). RecoveryGrace is how long after
	// the spike ends the "after" latency bucket waits, giving the queues
	// their drain time.
	SpikeStart, SpikeDur, RecoveryGrace time.Duration
	// Parallel is the sweep's worker count (<= 0 uses GOMAXPROCS); the
	// rows are identical for any value.
	Parallel int
}

func (c FlashCrowdConfig) withDefaults() FlashCrowdConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = []int{2, 4, 10}
	}
	if c.Run.Group <= 0 {
		c.Run.Group = 6
	}
	if c.Run.ActiveSenders <= 0 {
		c.Run.ActiveSenders = 2
	}
	if c.Run.RatePerSender <= 0 {
		c.Run.RatePerSender = 100
	}
	if c.Run.MsgBytes <= 0 {
		c.Run.MsgBytes = 512
	}
	if c.Run.Warmup <= 0 {
		c.Run.Warmup = time.Second
	}
	if c.Run.Measure <= 0 {
		c.Run.Measure = 7 * time.Second
	}
	if c.Run.Drain <= 0 {
		c.Run.Drain = 2 * time.Second
	}
	// The crowd study runs on a faster NIC than the paper's calibrated
	// early-90s Ethernet: with 600µs-per-packet receive processing the
	// network model's (unbounded) CPU queue would absorb the spike before
	// the switching layer's bounded queues ever saw it. Here protocol
	// processing is cheap and the overload layer is the bottleneck, which
	// is the regime the study is about.
	if c.Run.Net == nil {
		c.Run.Net = &simnet.Config{
			PropDelay:     50 * time.Microsecond,
			BitsPerSecond: 100e6,
			FrameOverhead: 64,
			RecvCPU:       100 * time.Microsecond,
			SendCPU:       50 * time.Microsecond,
		}
	}
	// The operating point encodes a lesson the first tunings learned the
	// hard way: an ingress shed is a FIFO gap the reliable layer repairs
	// by NACK + retransmit, and under sustained overload the repair
	// traffic itself re-saturates the queues (congestion collapse — E17's
	// "after" column never recovers). So the layer sheds at the *source*:
	// ingress service keeps headroom over the 10x crowd's arrival rate,
	// while the tight egress cap turns away burst excess before it ever
	// costs a sequence number — a shed cast needs no repair, so admitted
	// traffic keeps flowing at bounded latency.
	if c.Overload.IngressQueueCap == 0 {
		c.Overload.IngressQueueCap = 64
	}
	if c.Overload.EgressQueueCap == 0 {
		c.Overload.EgressQueueCap = 3
	}
	if c.Overload.HighWatermark == 0 {
		c.Overload.HighWatermark = 2
	}
	if c.Overload.LowWatermark == 0 {
		c.Overload.LowWatermark = 1
	}
	if c.Overload.ServiceInterval == 0 {
		c.Overload.ServiceInterval = 200 * time.Microsecond
	}
	if c.Overload.RetryBackoff == 0 {
		c.Overload.RetryBackoff = 2 * time.Millisecond
	}
	if c.Overload.MaxRetryShift == 0 {
		c.Overload.MaxRetryShift = 2
	}
	if c.SpikeStart <= 0 {
		c.SpikeStart = 2 * time.Second
	}
	if c.SpikeDur <= 0 {
		c.SpikeDur = time.Second
	}
	if c.RecoveryGrace <= 0 {
		c.RecoveryGrace = 2 * time.Second
	}
	return c
}

// FlashCrowdRow is one spike multiplier's outcome.
type FlashCrowdRow struct {
	Multiplier int
	// Before/During/After are delivery-latency stats bucketed by send
	// time relative to the spike window (After starts RecoveryGrace
	// past the spike's end).
	Before, During, After LatencyStats
	// Overload counters summed over the group.
	Shed, Backpressured, RetriedSends uint64
	// BasePaused counts base-sender ticks skipped under backpressure.
	BasePaused uint64
	// ShedRate is Shed over every frame offered to the overload layer.
	ShedRate float64
	// MaxIngressDepth/MaxEgressDepth are the deepest any member's
	// queues got (bounded-memory evidence against the caps).
	MaxIngressDepth, MaxEgressDepth int
	IngressCap, EgressCap           int
	Delivered                       uint64
	Events                          uint64
}

// RunFlashCrowd sweeps the spike multipliers. Each multiplier is one
// seeded deterministic run; the sweep parallelizes over them.
func RunFlashCrowd(cfg FlashCrowdConfig) ([]FlashCrowdRow, error) {
	cfg = cfg.withDefaults()
	pool := engine.New(cfg.Parallel)
	return engine.Map(pool, len(cfg.Multipliers), cfg.Seed,
		func(j engine.Job) (FlashCrowdRow, error) {
			return runFlashCrowd(cfg, j.Seed, cfg.Multipliers[j.Index])
		})
}

// spikeBurst is how many casts a crowd stream issues back-to-back per
// tick (the tick interval stretches by the same factor, preserving the
// stream's average rate while concentrating its arrivals).
const spikeBurst = 6

// runFlashCrowd measures one spike multiplier.
func runFlashCrowd(cfg FlashCrowdConfig, seed int64, mult int) (FlashCrowdRow, error) {
	if mult < 1 {
		return FlashCrowdRow{}, fmt.Errorf("harness: flash-crowd multiplier %d must be >= 1", mult)
	}
	rc := cfg.Run
	rc.Seed = seed
	ovl := cfg.Overload
	run, err := NewSwitchedRun(rc, switching.Config{Overload: &ovl})
	if err != nil {
		return FlashCrowdRow{}, err
	}
	rc = run.rc
	run.Collector.keepTimes = true
	sim := run.Cluster.Sim
	interval := time.Duration(float64(time.Second) / rc.RatePerSender)
	stopAt := rc.Warmup + rc.Measure
	spikeStart := rc.Warmup + cfg.SpikeStart
	spikeEnd := spikeStart + cfg.SpikeDur

	// Base senders: the steady workload, phase-shifted and jittered like
	// senderSchedule, but backpressure-aware — a paused member skips the
	// tick (and the skip is counted) instead of piling onto the queue.
	var basePaused uint64
	for s := 0; s < rc.ActiveSenders; s++ {
		p := ids.ProcID(s)
		phase := time.Duration(s) * interval / time.Duration(rc.ActiveSenders)
		var tick func()
		tick = func() {
			if sim.Now() >= stopAt {
				return
			}
			if run.Cluster.Members[p].Switch.Backpressured() {
				basePaused++
			} else {
				run.Cast(p)
			}
			jitter := time.Duration(sim.Rand().Int63n(int64(interval / 5)))
			sim.After(interval-interval/10+jitter, tick)
		}
		sim.After(phase, tick)
	}

	// The crowd: (mult-1)x extra sender streams riding the base members,
	// alive only inside the spike window. Crowds do not cooperate — the
	// extra streams ignore backpressure, and they arrive in clumps
	// (spikeBurst casts back-to-back per tick, with the tick stretched so
	// the average rate is still one base rate per stream): flash crowds
	// are bursty, and the bursts are what slam the bounded queues.
	sim.At(spikeStart, func() { _ = run.Cluster.Net.SetSenderSpike(mult) })
	sim.At(spikeEnd, func() { _ = run.Cluster.Net.SetSenderSpike(1) })
	extra := (mult - 1) * rc.ActiveSenders
	for j := 0; j < extra; j++ {
		p := ids.ProcID(j % rc.ActiveSenders)
		phase := time.Duration(j+1) * interval / time.Duration(extra+1)
		var tick func()
		tick = func() {
			if sim.Now() >= spikeEnd {
				return
			}
			for b := 0; b < spikeBurst; b++ {
				run.Cast(p)
			}
			burstIvl := spikeBurst * interval
			jitter := time.Duration(sim.Rand().Int63n(int64(burstIvl / 5)))
			sim.After(burstIvl-burstIvl/10+jitter, tick)
		}
		sim.After(spikeStart+phase, tick)
	}

	res := run.Finish()

	var before, during, after []time.Duration
	for _, ts := range run.Collector.timed {
		switch {
		case ts.sentAt < spikeStart:
			before = append(before, ts.lat)
		case ts.sentAt < spikeEnd:
			during = append(during, ts.lat)
		case ts.sentAt >= spikeEnd+cfg.RecoveryGrace:
			after = append(after, ts.lat)
		}
	}
	row := FlashCrowdRow{
		Multiplier: mult,
		Before:     Summarize(before),
		During:     Summarize(during),
		After:      Summarize(after),
		BasePaused: basePaused,
		IngressCap: ovl.IngressQueueCap,
		EgressCap:  ovl.EgressQueueCap,
		Delivered:  res.Delivered,
		Events:     res.Events,
	}
	var offered uint64
	for p := 0; p < rc.Group; p++ {
		sw := run.Cluster.Members[p].Switch
		st := sw.Stats()
		row.Shed += st.Shed
		row.Backpressured += st.Backpressured
		row.RetriedSends += st.RetriedSends
		a := sw.OverloadAccounting()
		offered += a.IngressAdmitted + a.IngressShed + a.Casts
		if a.IngressMaxDepth > row.MaxIngressDepth {
			row.MaxIngressDepth = a.IngressMaxDepth
		}
		if a.EgressMaxDepth > row.MaxEgressDepth {
			row.MaxEgressDepth = a.EgressMaxDepth
		}
	}
	if offered > 0 {
		row.ShedRate = float64(row.Shed) / float64(offered)
	}
	return row, nil
}

// RenderFlashCrowd prints the E17 table.
func RenderFlashCrowd(rows []FlashCrowdRow) string {
	var b strings.Builder
	b.WriteString("Flash crowd (E17): mid-run sender spikes vs. the overload layer\n\n")
	b.WriteString("mult   p50 before   p50 during    p50 after   shed rate   backpressure   retries   paused   maxq in/eg\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3dx   %10s   %10s   %10s   %8.2f%%   %12d   %7d   %6d   %5d/%d\n",
			r.Multiplier,
			FormatMillis(r.Before.P50), FormatMillis(r.During.P50), FormatMillis(r.After.P50),
			100*r.ShedRate, r.Backpressured, r.RetriedSends, r.BasePaused,
			r.MaxIngressDepth, r.MaxEgressDepth)
	}
	b.WriteString("\nlatency buckets by send time: before the spike, inside it, and after\n")
	b.WriteString("a recovery grace past its end; queues are capped, so overload sheds\n")
	b.WriteString("(loudly) instead of growing memory without bound.\n")
	return b.String()
}
