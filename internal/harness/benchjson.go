package harness

import (
	"encoding/json"
	"time"

	"repro/internal/chaos"
	"repro/internal/core/switching"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// This file defines the machine-readable BENCH_*.json artifacts that
// cmd/switchbench emits next to its human-readable tables — the repo's
// perf trajectory. Every artifact carries:
//
//   - a versioned schema tag ("switchbench/<experiment>", version N),
//   - the experiment's deterministic results (per-point LatencyStats in
//     milliseconds, crossover, pass/fail counts, recovery bounds, and
//     per-run DES event counts), and
//   - a "timing" section with the only non-deterministic fields:
//     wall-clock duration, worker count, and events/sec throughput.
//
// For a fixed seed the artifact minus its timing section is
// byte-identical for any worker count; ScrubTiming zeroes the section
// for such comparisons (see the determinism tests).

// BenchSchemaVersion is the current artifact schema version; bump it on
// any incompatible field change.
//
// Version 2: LatencyStats gained stddev_ms/min_ms and an optional
// log-scaled histogram; overhead rows carry the run's delivery-latency
// stats; the chaos artifact adds per-member metrics and flight-recorder
// dumps on failures.
//
// Version 3: the chaos artifact adds the adversarial-input hardening
// counters — schedules with corruption/truncation/garbage faults, and
// malformed-drop/quarantine totals in the switching section (all
// omitted when zero, so corruption-free artifacts carry no new keys).
//
// Version 4: the chaos artifact adds the authenticated-session counters
// (E16) — schedules with forgery/replay faults, forged/replayed frame
// totals, and the auth-rejection total in the switching section (all
// omitted when zero, so forgery-free artifacts keep their v3 shape).
//
// Version 5: the chaos artifact adds the overload counters (E17) —
// schedules with flash-crowd faults, shed/backpressure/retry totals in
// the switching section, and the flash-crowd latency/shed-rate rows
// (all omitted when zero or absent, so crowd-free artifacts keep their
// v4 shape).
//
// Version 6: the perf artifact (E18) — stack-throughput rows per
// protocol × envelope × batching cell, carrying the deterministic
// delivery/event counts plus the two host-side numbers the perf gate
// watches: msgs_per_sec (warn-only) and allocs_per_msg (hard-gated).
// Unlike wall_ms these live at row level, outside the scrubbed
// "timing" section, because the gate must see them.
//
// Version 7: the telemetry artifact (E19) — the windowed time-series
// and switch-decision audit trail of a chaos sweep, emitted as
// BENCH_telemetry.json when the sweep ran with telemetry on. The chaos
// artifact's failure entries gain an optional telemetry_tail (the last
// windows before the violation); telemetry-free sweeps keep their v6
// shape.
//
// Version 8: the gray-failure counters (E20) — schedules with
// slow-node/asymmetric-link/flapping faults, the adaptive-detector
// totals (graded suspicions, flap penalties, degraded-mode skips,
// re-inclusions) in the switching section, and the E20 stability rows
// (switch_aborts/token_regens per flap cadence and detector arm — the
// leaves cmd/benchdiff gates). All omitted when zero or absent, so
// gray-free artifacts keep their v7 shape.
const BenchSchemaVersion = 8

// BenchTiming is the non-deterministic wall-clock section of an
// artifact.
type BenchTiming struct {
	WallMS       float64 `json:"wall_ms"`
	Parallel     int     `json:"parallel"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// BenchMeta is the envelope shared by every artifact.
type BenchMeta struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	// Events is the experiment's total DES event count (deterministic
	// per seed).
	Events uint64      `json:"events"`
	Timing BenchTiming `json:"timing"`
}

func benchMeta(experiment string, seed int64, events uint64) BenchMeta {
	return BenchMeta{Schema: "switchbench/" + experiment, Version: BenchSchemaVersion,
		Seed: seed, Events: events}
}

// SetTiming fills the wall-clock section after the experiment ran.
func (m *BenchMeta) SetTiming(wall time.Duration, parallel int) {
	m.Timing = BenchTiming{WallMS: Millis(wall), Parallel: parallel}
	if wall > 0 {
		m.Timing.EventsPerSec = float64(m.Events) / wall.Seconds()
	}
}

// ScrubTiming zeroes the non-deterministic section so two artifacts can
// be compared byte-for-byte across worker counts.
func (m *BenchMeta) ScrubTiming() { m.Timing = BenchTiming{} }

// BenchStats is LatencyStats in milliseconds.
type BenchStats struct {
	Count    int                `json:"count"`
	MeanMS   float64            `json:"mean_ms"`
	StdDevMS float64            `json:"stddev_ms"`
	MinMS    float64            `json:"min_ms"`
	P50MS    float64            `json:"p50_ms"`
	P95MS    float64            `json:"p95_ms"`
	P99MS    float64            `json:"p99_ms"`
	MaxMS    float64            `json:"max_ms"`
	Hist     *obs.HistogramJSON `json:"hist,omitempty"`
}

func toBenchStats(s LatencyStats) BenchStats {
	out := BenchStats{
		Count:    s.Count,
		MeanMS:   Millis(s.Mean),
		StdDevMS: Millis(s.StdDev),
		MinMS:    Millis(s.Min),
		P50MS:    Millis(s.P50),
		P95MS:    Millis(s.P95),
		P99MS:    Millis(s.P99),
		MaxMS:    Millis(s.Max),
	}
	if s.Hist.Count() > 0 {
		h := s.Hist.ToJSON()
		out.Hist = &h
	}
	return out
}

// EncodeBench marshals one artifact as indented JSON with a trailing
// newline (stable key order, so equal values give equal bytes).
func EncodeBench(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// BenchFigure2 is the BENCH_figure2.json artifact.
type BenchFigure2 struct {
	BenchMeta
	Group           int               `json:"group"`
	RatePerSender   float64           `json:"rate_per_sender"`
	MsgBytes        int               `json:"msg_bytes"`
	MeasureMS       float64           `json:"measure_ms"`
	Rows            []BenchFigure2Row `json:"rows"`
	CrossoverAfter  int               `json:"crossover_after"`
	HybridThreshold float64           `json:"hybrid_threshold,omitempty"`
}

// BenchFigure2Row is one sender-count point.
type BenchFigure2Row struct {
	Senders   int         `json:"senders"`
	Sequencer BenchStats  `json:"sequencer"`
	Token     BenchStats  `json:"token"`
	Hybrid    *BenchStats `json:"hybrid,omitempty"`
	Events    uint64      `json:"events"`
}

// NewBenchFigure2 converts a Figure-2 result into its artifact.
func NewBenchFigure2(res *Figure2Result) *BenchFigure2 {
	rc := res.Run.withDefaults()
	out := &BenchFigure2{
		Group:          rc.Group,
		RatePerSender:  rc.RatePerSender,
		MsgBytes:       rc.MsgBytes,
		MeasureMS:      Millis(rc.Measure),
		CrossoverAfter: res.CrossoverAfter,
	}
	if res.IncludedHybrid {
		out.HybridThreshold = res.HybridThreshold
	}
	var events uint64
	for _, row := range res.Rows {
		events += row.Events
		br := BenchFigure2Row{
			Senders:   row.ActiveSenders,
			Sequencer: toBenchStats(row.Sequencer),
			Token:     toBenchStats(row.Token),
			Events:    row.Events,
		}
		if res.IncludedHybrid {
			h := toBenchStats(row.Hybrid)
			br.Hybrid = &h
		}
		out.Rows = append(out.Rows, br)
	}
	out.BenchMeta = benchMeta("figure2", rc.Seed, events)
	return out
}

// BenchOverhead is the BENCH_overhead.json artifact: the single §7
// measurement plus the direction × sender-count sweep.
type BenchOverhead struct {
	BenchMeta
	Single BenchOverheadRow   `json:"single"`
	Sweep  []BenchOverheadRow `json:"sweep"`
}

// BenchOverheadRow is one switch measurement.
type BenchOverheadRow struct {
	Senders     int        `json:"senders"`
	From        string     `json:"from"`
	SwitchMS    float64    `json:"switch_ms"`
	HiccupMS    float64    `json:"hiccup_ms"`
	SteadyGapMS float64    `json:"steady_gap_ms"`
	Latency     BenchStats `json:"latency"`
	Events      uint64     `json:"events"`
}

func toBenchOverheadRow(r OverheadResult) BenchOverheadRow {
	return BenchOverheadRow{
		Senders:     r.ActiveSenders,
		From:        r.From.String(),
		SwitchMS:    Millis(r.SwitchDuration),
		HiccupMS:    Millis(r.Hiccup),
		SteadyGapMS: Millis(r.SteadyGap),
		Latency:     toBenchStats(r.Latency),
		Events:      r.Events,
	}
}

// NewBenchOverhead converts the overhead measurements into their
// artifact.
func NewBenchOverhead(seed int64, single *OverheadResult, sweep []OverheadResult) *BenchOverhead {
	out := &BenchOverhead{Single: toBenchOverheadRow(*single)}
	events := single.Events
	for _, r := range sweep {
		out.Sweep = append(out.Sweep, toBenchOverheadRow(r))
		events += r.Events
	}
	out.BenchMeta = benchMeta("overhead", seed, events)
	return out
}

// BenchHysteresis is the BENCH_hysteresis.json artifact.
type BenchHysteresis struct {
	BenchMeta
	Rows []BenchHysteresisRow `json:"rows"`
}

// BenchHysteresisRow is one oracle policy's outcome over the load ramp.
type BenchHysteresisRow struct {
	Policy            string  `json:"policy"`
	SwitchRequests    uint64  `json:"switch_requests"`
	SwitchesCompleted uint64  `json:"switches_completed"`
	MeanLatencyMS     float64 `json:"mean_latency_ms"`
	Events            uint64  `json:"events"`
}

// NewBenchHysteresis converts the oscillation study into its artifact.
func NewBenchHysteresis(seed int64, rows []HysteresisResult) *BenchHysteresis {
	out := &BenchHysteresis{}
	var events uint64
	for _, r := range rows {
		out.Rows = append(out.Rows, BenchHysteresisRow{
			Policy:            r.Policy,
			SwitchRequests:    r.SwitchRequests,
			SwitchesCompleted: r.SwitchesCompleted,
			MeanLatencyMS:     Millis(r.MeanLatency),
			Events:            r.Events,
		})
		events += r.Events
	}
	out.BenchMeta = benchMeta("hysteresis", seed, events)
	return out
}

// BenchChaos is the BENCH_chaos.json artifact.
type BenchChaos struct {
	BenchMeta
	Schedules int `json:"schedules"`
	Passed    int `json:"passed"`
	Failed    int `json:"failed"`
	// Kind counts: how many schedules contained each fault class.
	WithCrashes    int `json:"with_crashes"`
	WithPartitions int `json:"with_partitions"`
	WithBursts     int `json:"with_bursts"`
	// Adversarial-input fault classes (E15); zero on corruption-free
	// sweeps, and then omitted so legacy artifacts keep their shape.
	WithCorruption int `json:"with_corruption,omitempty"`
	WithTruncation int `json:"with_truncation,omitempty"`
	WithGarbage    int `json:"with_garbage,omitempty"`
	// Authenticated-session fault classes (E16); zero on forgery-free
	// sweeps, and then omitted so earlier artifacts keep their shape.
	WithForgery int `json:"with_forgery,omitempty"`
	WithReplay  int `json:"with_replay,omitempty"`
	// Overload fault class (E17); zero on crowd-free sweeps.
	WithFlashCrowd int `json:"with_flash_crowd,omitempty"`
	// Gray-failure fault classes (E20); zero on gray-free sweeps.
	WithSlowNodes  int `json:"with_slow_nodes,omitempty"`
	WithLinkFaults int `json:"with_link_faults,omitempty"`
	WithFlaps      int `json:"with_flaps,omitempty"`

	Delivered int `json:"delivered"`
	// Forged/Replayed total the adversary's wire-level injections.
	ForgedFrames   uint64           `json:"forged_frames,omitempty"`
	ReplayedFrames uint64           `json:"replayed_frames,omitempty"`
	Switching      BenchSwitchStats `json:"switching"`

	WorstRecoveryMS float64 `json:"worst_recovery_ms"`
	RecoveryBoundMS float64 `json:"recovery_bound_ms"`

	// Members is the merged per-member registry over every schedule run
	// (sorted by proc; map keys sort inside encoding/json, so the
	// section is byte-deterministic).
	Members []obs.MemberMetrics `json:"members,omitempty"`

	Failures []BenchChaosFailure `json:"failures,omitempty"`

	// FlashCrowd holds the E17 latency/shed-rate rows when the sweep ran
	// the flash-crowd study.
	FlashCrowd []BenchFlashCrowdRow `json:"flash_crowd,omitempty"`

	// Gray holds the E20 stability rows when the sweep ran the
	// gray-failure study.
	Gray []BenchGrayRow `json:"gray,omitempty"`
}

// BenchGrayRow is one E20 (flap period, detector arm) cell. The
// switch_aborts and token_regens leaves are gated by cmd/benchdiff:
// recovery churn at a given cadence and arm must not rise against the
// committed baseline.
type BenchGrayRow struct {
	PeriodMS      int64   `json:"period_ms"`
	Detector      string  `json:"detector"`
	Schedules     int     `json:"schedules"`
	SwitchAborts  uint64  `json:"switch_aborts"`
	TokenRegens   uint64  `json:"token_regens"`
	VictimRegens  uint64  `json:"victim_regens,omitempty"`
	FlapPenalties uint64  `json:"flap_penalties,omitempty"`
	DegradedSkips uint64  `json:"degraded_skips,omitempty"`
	Reincludes    uint64  `json:"reincludes,omitempty"`
	Delivered     int     `json:"delivered"`
	Violations    int     `json:"violations"`
	DetectP50MS   float64 `json:"detect_p50_ms"`
	Events        uint64  `json:"events"`
}

// BenchFlashCrowdRow is one E17 spike multiplier.
type BenchFlashCrowdRow struct {
	Multiplier      int        `json:"multiplier"`
	Before          BenchStats `json:"before"`
	During          BenchStats `json:"during"`
	After           BenchStats `json:"after"`
	Shed            uint64     `json:"shed"`
	Backpressured   uint64     `json:"backpressured"`
	RetriedSends    uint64     `json:"retried_sends"`
	BasePaused      uint64     `json:"base_paused"`
	ShedRate        float64    `json:"shed_rate"`
	MaxIngressDepth int        `json:"max_ingress_depth"`
	MaxEgressDepth  int        `json:"max_egress_depth"`
	IngressCap      int        `json:"ingress_cap"`
	EgressCap       int        `json:"egress_cap"`
	Delivered       uint64     `json:"delivered"`
	Events          uint64     `json:"events"`
}

// BenchSwitchStats mirrors switching.Stats with stable snake_case keys.
type BenchSwitchStats struct {
	SwitchesCompleted uint64 `json:"switches_completed"`
	Buffered          uint64 `json:"buffered"`
	StaleDropped      uint64 `json:"stale_dropped"`
	TokenPasses       uint64 `json:"token_passes"`
	WedgeTimeouts     uint64 `json:"wedge_timeouts"`
	TokensRegenerated uint64 `json:"tokens_regenerated"`
	SwitchesAborted   uint64 `json:"switches_aborted"`
	ForcedAdvances    uint64 `json:"forced_advances"`
	MalformedDropped  uint64 `json:"malformed_dropped,omitempty"`
	Quarantines       uint64 `json:"quarantines,omitempty"`
	AuthFailed        uint64 `json:"auth_failed,omitempty"`
	Shed              uint64 `json:"shed,omitempty"`
	Backpressured     uint64 `json:"backpressured,omitempty"`
	RetriedSends      uint64 `json:"retried_sends,omitempty"`
	SuspicionsRaised  uint64 `json:"suspicions_raised,omitempty"`
	SuspicionsCleared uint64 `json:"suspicions_cleared,omitempty"`
	FlapPenalties     uint64 `json:"flap_penalties,omitempty"`
	DegradedSkips     uint64 `json:"degraded_skips,omitempty"`
	Reincludes        uint64 `json:"reincludes,omitempty"`
}

func toBenchSwitchStats(s switching.Stats) BenchSwitchStats {
	return BenchSwitchStats{
		SwitchesCompleted: s.SwitchesCompleted,
		Buffered:          s.Buffered,
		StaleDropped:      s.StaleDropped,
		TokenPasses:       s.TokenPasses,
		WedgeTimeouts:     s.WedgeTimeouts,
		TokensRegenerated: s.TokensRegenerated,
		SwitchesAborted:   s.SwitchesAborted,
		ForcedAdvances:    s.ForcedAdvances,
		MalformedDropped:  s.MalformedDropped,
		Quarantines:       s.Quarantines,
		AuthFailed:        s.AuthFailed,
		Shed:              s.Shed,
		Backpressured:     s.Backpressured,
		RetriedSends:      s.RetriedSends,
		SuspicionsRaised:  s.SuspicionsRaised,
		SuspicionsCleared: s.SuspicionsCleared,
		FlapPenalties:     s.FlapPenalties,
		DegradedSkips:     s.DegradedSkips,
		Reincludes:        s.Reincludes,
	}
}

// BenchChaosFailure is one schedule that violated invariants, with
// enough detail to replay it (the seed regenerates the schedule) and
// the flight recorder's tail of events leading up to the failure.
type BenchChaosFailure struct {
	Seed       int64    `json:"seed"`
	Kinds      []string `json:"kinds"`
	Violations []string `json:"violations"`
	// Trace is the last events of the failing run (oldest first);
	// TraceDropped counts earlier events the bounded ring discarded.
	Trace        []obs.EventJSON `json:"trace,omitempty"`
	TraceDropped uint64          `json:"trace_dropped,omitempty"`
	// TelemetryTail is the failing run's last sampling windows, present
	// only when the sweep ran with telemetry on.
	TelemetryTail []telemetry.Window `json:"telemetry_tail,omitempty"`
}

// NewBenchChaos converts a chaos sweep into its artifact.
func NewBenchChaos(seed int64, res *ChaosSweepResult) *BenchChaos {
	out := &BenchChaos{
		Schedules:       res.Schedules,
		Passed:          res.Schedules - len(res.Failures),
		Failed:          len(res.Failures),
		WithCrashes:     res.KindCounts[chaos.KindCrash],
		WithPartitions:  res.KindCounts[chaos.KindPartition],
		WithBursts:      res.KindCounts[chaos.KindBurst],
		WithCorruption:  res.KindCounts[chaos.KindCorrupt],
		WithTruncation:  res.KindCounts[chaos.KindTruncate],
		WithGarbage:     res.KindCounts[chaos.KindGarbage],
		WithForgery:     res.KindCounts[chaos.KindForge],
		WithReplay:      res.KindCounts[chaos.KindReplay],
		WithFlashCrowd:  res.KindCounts[chaos.KindFlashCrowd],
		WithSlowNodes:   res.KindCounts[chaos.KindSlowNode],
		WithLinkFaults:  res.KindCounts[chaos.KindLinkFault],
		WithFlaps:       res.KindCounts[chaos.KindFlap],
		Delivered:       res.Delivered,
		ForgedFrames:    res.Forged,
		ReplayedFrames:  res.Replayed,
		Switching:       toBenchSwitchStats(res.Stats),
		WorstRecoveryMS: Millis(res.WorstRecovery),
		RecoveryBoundMS: Millis(res.Bound),
	}
	if res.Metrics != nil {
		out.Members = res.Metrics.Snapshot()
	}
	for _, f := range res.Failures {
		bf := BenchChaosFailure{
			Seed:          f.Seed,
			Violations:    f.Violations,
			Trace:         obs.EventsToJSON(f.FlightRecord),
			TraceDropped:  f.FlightDropped,
			TelemetryTail: f.TelemetryTail,
		}
		for _, k := range f.Kinds {
			bf.Kinds = append(bf.Kinds, k.String())
		}
		out.Failures = append(out.Failures, bf)
	}
	for _, r := range res.FlashCrowd {
		out.FlashCrowd = append(out.FlashCrowd, BenchFlashCrowdRow{
			Multiplier:      r.Multiplier,
			Before:          toBenchStats(r.Before),
			During:          toBenchStats(r.During),
			After:           toBenchStats(r.After),
			Shed:            r.Shed,
			Backpressured:   r.Backpressured,
			RetriedSends:    r.RetriedSends,
			BasePaused:      r.BasePaused,
			ShedRate:        r.ShedRate,
			MaxIngressDepth: r.MaxIngressDepth,
			MaxEgressDepth:  r.MaxEgressDepth,
			IngressCap:      r.IngressCap,
			EgressCap:       r.EgressCap,
			Delivered:       r.Delivered,
			Events:          r.Events,
		})
	}
	for _, r := range res.Gray {
		out.Gray = append(out.Gray, BenchGrayRow{
			PeriodMS:      r.Period.Milliseconds(),
			Detector:      detectorName(r.Fixed),
			Schedules:     r.Schedules,
			SwitchAborts:  r.SwitchAborts,
			TokenRegens:   r.TokenRegens,
			VictimRegens:  r.VictimRegens,
			FlapPenalties: r.FlapPenalties,
			DegradedSkips: r.DegradedSkips,
			Reincludes:    r.Reincludes,
			Delivered:     r.Delivered,
			Violations:    r.Violations,
			DetectP50MS:   Millis(r.DetectLatency),
			Events:        r.Events,
		})
	}
	out.BenchMeta = benchMeta("chaos", seed, res.Events)
	return out
}

// BenchP2P is the BENCH_p2p.json artifact.
type BenchP2P struct {
	BenchMeta
	Rows []BenchP2PRow `json:"rows"`
}

// BenchP2PRow is one (link, protocol) cell of the E11 table.
type BenchP2PRow struct {
	Link        string  `json:"link"`
	Protocol    string  `json:"protocol"`
	Delivered   int     `json:"delivered"`
	PerSec      float64 `json:"delivered_per_sec"`
	Retransmits uint64  `json:"retransmits"`
	AcksSent    uint64  `json:"acks_sent"`
	Events      uint64  `json:"events"`
}

// NewBenchP2P converts the E11 sweep into its artifact.
func NewBenchP2P(seed int64, rows []P2PRow) *BenchP2P {
	out := &BenchP2P{}
	var events uint64
	for _, r := range rows {
		out.Rows = append(out.Rows, BenchP2PRow{
			Link:        r.Link,
			Protocol:    r.Result.Kind.String(),
			Delivered:   r.Result.Delivered,
			PerSec:      r.PerSec,
			Retransmits: r.Result.Retransmits,
			AcksSent:    r.Result.AcksSent,
			Events:      r.Result.Events,
		})
		events += r.Result.Events
	}
	out.BenchMeta = benchMeta("p2p", seed, events)
	return out
}

// BenchPerf is the E18 stack-throughput artifact (see perf.go): one row
// per protocol × envelope × batching cell. delivered and events are
// deterministic per seed; msgs_per_sec and allocs_per_msg are the
// host-side numbers the CI perf gate compares against the committed
// baseline (allocs hard, throughput warn-only — see cmd/benchdiff).
type BenchPerf struct {
	BenchMeta
	Group    int            `json:"group"`
	Senders  int            `json:"senders"`
	Burst    int            `json:"burst"`
	BatchMax int            `json:"batch_max"`
	MsgBytes int            `json:"msg_bytes"`
	Rows     []BenchPerfRow `json:"rows"`
}

// BenchPerfRow is one grid cell. The host-side fields sit at row level
// — not in the scrubbed "timing" section — because the perf gate reads
// them; everything deterministic doubles as a correctness gate
// (delivered must not drop).
type BenchPerfRow struct {
	Protocol     string  `json:"protocol"`
	Variant      string  `json:"variant"`
	Batched      bool    `json:"batched"`
	Delivered    uint64  `json:"delivered"`
	Events       uint64  `json:"events"`
	WallMS       float64 `json:"wall_ms"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	AllocsPerMsg float64 `json:"allocs_per_msg"`
}

// BenchTelemetry is the E19 artifact: the chaos sweep's windowed
// time-series and switch-decision audit trail. The summary counters at
// the top are what cmd/benchdiff gates (windows and audited rounds must
// not fall, aborted rounds must not rise — all deterministic per seed);
// the series and audit sections are the full data cmd/sptrend and
// humans read.
type BenchTelemetry struct {
	BenchMeta
	IntervalMS float64 `json:"interval_ms"`
	// Windows/Rounds summarize the series; RoundsComplete/RoundsAborted
	// split the audited rounds by terminal outcome (every round has
	// exactly one).
	Windows        int `json:"windows"`
	Rounds         int `json:"rounds"`
	RoundsComplete int `json:"rounds_complete"`
	RoundsAborted  int `json:"rounds_aborted"`

	Series []telemetry.Window `json:"series"`
	Audit  []telemetry.Round  `json:"audit"`
}

// NewBenchTelemetry converts a telemetry-enabled chaos sweep into its
// artifact. interval is the sampler's window width.
func NewBenchTelemetry(seed int64, interval time.Duration, res *ChaosSweepResult) *BenchTelemetry {
	out := &BenchTelemetry{
		IntervalMS: Millis(interval),
		Windows:    len(res.Windows),
		Rounds:     len(res.Rounds),
		Series:     res.Windows,
		Audit:      res.Rounds,
	}
	for _, r := range res.Rounds {
		if r.Outcome == telemetry.OutcomeComplete {
			out.RoundsComplete++
		} else {
			out.RoundsAborted++
		}
	}
	out.BenchMeta = benchMeta("telemetry", seed, res.Events)
	return out
}

// NewBenchPerf converts the E18 grid into its artifact.
func NewBenchPerf(cfg PerfConfig, rows []PerfRow) *BenchPerf {
	cfg = cfg.withDefaults()
	out := &BenchPerf{
		Group:    cfg.Run.Group,
		Senders:  cfg.Run.ActiveSenders,
		Burst:    cfg.Burst,
		BatchMax: cfg.BatchMax,
		MsgBytes: cfg.Run.MsgBytes,
	}
	var events uint64
	for _, r := range rows {
		out.Rows = append(out.Rows, BenchPerfRow{
			Protocol:     r.Protocol,
			Variant:      r.Variant,
			Batched:      r.Batched,
			Delivered:    r.Delivered,
			Events:       r.Events,
			WallMS:       Millis(r.Wall),
			MsgsPerSec:   r.MsgsPerSec,
			AllocsPerMsg: r.AllocsPerMsg,
		})
		events += r.Events
	}
	out.BenchMeta = benchMeta("perf", cfg.Seed, events)
	return out
}
