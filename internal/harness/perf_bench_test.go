package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkStackThroughput* are the E18 grid as Go benchmarks: each
// iteration executes one full deterministic DES run of the switching
// stack and reports msgs/sec (app deliveries over wall time) and
// allocs/msg alongside the usual ns/op. CI runs them with -benchtime 1x
// as a smoke signal; the gated numbers live in BENCH_perf.json
// (cmd/switchbench -experiment perf + cmd/benchdiff).

// benchPerfConfig is a shortened E18 cell: same shape as the artifact
// runs, small enough for -benchtime 1x CI runs.
func benchPerfConfig(pt PerfPoint) PerfConfig {
	return PerfConfig{
		Seed: 1,
		Run: RunConfig{
			Warmup:  50 * time.Millisecond,
			Measure: 400 * time.Millisecond,
			Drain:   300 * time.Millisecond,
		},
		Points: []PerfPoint{pt},
	}
}

func benchStackThroughput(b *testing.B, pt PerfPoint) {
	b.ReportAllocs()
	var lastRow PerfRow
	for i := 0; i < b.N; i++ {
		rows, err := RunPerf(benchPerfConfig(pt))
		if err != nil {
			b.Fatal(err)
		}
		lastRow = rows[0]
		if lastRow.Delivered == 0 {
			b.Fatalf("%s: delivered nothing", pt)
		}
	}
	b.ReportMetric(lastRow.MsgsPerSec, "msgs/sec")
	b.ReportMetric(lastRow.AllocsPerMsg, "allocs/msg")
}

func BenchmarkStackThroughputSequencerSealed(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "sequencer", Variant: "sealed"})
}

func BenchmarkStackThroughputSequencerSealedBatched(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "sequencer", Variant: "sealed", Batched: true})
}

func BenchmarkStackThroughputSequencerAuthed(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "sequencer", Variant: "authed"})
}

func BenchmarkStackThroughputSequencerAuthedBatched(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "sequencer", Variant: "authed", Batched: true})
}

func BenchmarkStackThroughputTokenSealed(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "token", Variant: "sealed"})
}

func BenchmarkStackThroughputTokenSealedBatched(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "token", Variant: "sealed", Batched: true})
}

func BenchmarkStackThroughputHybridAuthed(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "hybrid", Variant: "authed"})
}

func BenchmarkStackThroughputHybridAuthedBatched(b *testing.B) {
	benchStackThroughput(b, PerfPoint{Protocol: "hybrid", Variant: "authed", Batched: true})
}

// sealedWirePath is one message's sealed (non-auth) egress+ingress wire
// work with the pooled layers: mux channel framing on a pooled encoder,
// CRC envelope into a pooled buffer, then envelope open and channel
// decode on the receive side. This is the per-message marginal cost of
// the sealed hot path with everything protocol-independent stripped —
// the piece the zero-alloc claim is about. Returns the decoded payload
// length so the work cannot be optimized away.
func sealedWirePath(payload []byte) int {
	// Egress: channel tag + envelope.
	e := wire.GetEncoder()
	e.Channel(2)
	frame := e.Frame(payload)
	bp := wire.GetBuf()
	pkt := wire.SealTo(*bp, frame)
	// Ingress: envelope open + channel route.
	inner, err := wire.Open(pkt)
	if err != nil {
		panic(err)
	}
	d := wire.NewDecoder(inner)
	d.Channel()
	n := len(d.Remaining())
	*bp = pkt[:0]
	wire.PutBuf(bp)
	wire.PutEncoder(e)
	return n
}

// TestSealedWirePathZeroAlloc pins the acceptance claim: the sealed
// non-auth steady-state wire path allocates nothing per message.
func TestSealedWirePathZeroAlloc(t *testing.T) {
	payload := make([]byte, 256)
	if got := sealedWirePath(payload); got != len(payload) {
		t.Fatalf("wire path round-tripped %d bytes, want %d", got, len(payload))
	}
	allocs := testing.AllocsPerRun(200, func() {
		sealedWirePath(payload)
	})
	if allocs != 0 {
		t.Fatalf("sealed wire path allocated %.1f times per message, want 0", allocs)
	}
}

var benchWireSink int

// BenchmarkStackThroughputSealedWirePath is the wire-path-only row: the
// per-message cost of the pooled mux framing + CRC envelope round trip.
// Must report 0 allocs/op (asserted in TestSealedWirePathZeroAlloc).
func BenchmarkStackThroughputSealedWirePath(b *testing.B) {
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchWireSink = sealedWirePath(payload)
	}
}

// TestRunPerfSmoke runs a minimal grid end to end: every variant
// delivers, the batched sibling of each cell delivers the same virtual
// workload, and the renderer covers all rows.
func TestRunPerfSmoke(t *testing.T) {
	cfg := PerfConfig{
		Seed: 3,
		Run: RunConfig{
			Warmup:  50 * time.Millisecond,
			Measure: 300 * time.Millisecond,
			Drain:   300 * time.Millisecond,
		},
		Points: []PerfPoint{
			{Protocol: "sequencer", Variant: "plain"},
			{Protocol: "sequencer", Variant: "sealed", Batched: true},
			{Protocol: "token", Variant: "authed", Batched: true},
			{Protocol: "hybrid", Variant: "authed", Batched: true},
		},
	}
	rows, err := RunPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Points) {
		t.Fatalf("got %d rows, want %d", len(rows), len(cfg.Points))
	}
	for _, r := range rows {
		if r.Delivered == 0 {
			t.Errorf("%s: delivered nothing", r.PerfPoint)
		}
		if r.MsgsPerSec <= 0 || r.AllocsPerMsg <= 0 {
			t.Errorf("%s: missing host-side numbers: %+v", r.PerfPoint, r)
		}
	}
	out := RenderPerf(rows)
	if !strings.Contains(out, "sequencer") || !strings.Contains(out, "hybrid") {
		t.Errorf("render missing rows:\n%s", out)
	}
}
