// Package engine is a deterministic worker pool for independent
// discrete-event simulation runs. Every experiment in this repository
// is a sweep of independent DES executions — each one single-goroutine
// and seeded — so the sweep parallelizes embarrassingly: jobs are
// (index, seed, closure) triples, results are collected into a slice
// indexed by job, and the assembled output is byte-identical for any
// worker count. Only the wall clock changes.
package engine

import (
	"runtime"
	"sync"
)

// Job identifies one unit of a sweep handed to a worker.
type Job struct {
	// Index is the job's position in the sweep, 0-based. Results are
	// collected under this index, which is what makes the assembled
	// output independent of scheduling order.
	Index int
	// Seed is the job's simulation seed, derived from the sweep's base
	// seed and the index (see DeriveSeed) so that adding workers never
	// reshuffles which run gets which randomness.
	Seed int64
}

// DeriveSeed maps (baseSeed, index) to the seed of sweep job index.
// The derivation is the sweep convention used across the harness:
// consecutive indexes get consecutive seeds, so a sweep of n jobs at
// base b covers exactly the seeds b..b+n-1 regardless of worker count
// or completion order.
func DeriveSeed(baseSeed int64, index int) int64 {
	return baseSeed + int64(index)
}

// Pool runs indexed jobs on a fixed number of workers.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; workers <= 0 selects
// GOMAXPROCS. A 1-worker pool executes jobs strictly in index order,
// which is the reference sequential schedule.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(Job{i, DeriveSeed(baseSeed, i)}) for every i in
// [0, n). Jobs are handed out in index order; at most Workers() run at
// once. If any job returns an error, the lowest-index error is
// returned (regardless of which worker hit it first) and jobs not yet
// started are skipped — in-flight jobs still finish, keeping every
// *completed* job's side effects well-defined.
func (p *Pool) Run(n int, baseSeed int64, fn func(Job) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(Job{Index: i, Seed: DeriveSeed(baseSeed, i)}); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var (
		mu     sync.Mutex
		next   int
		failed bool
		wg     sync.WaitGroup
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				if err := fn(Job{Index: i, Seed: DeriveSeed(baseSeed, i)}); err != nil {
					mu.Lock()
					errs[i] = err
					failed = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn for every index in [0, n) on the pool and returns the
// results collected by index. It is the typed convenience wrapper
// around [Pool.Run] for sweeps whose jobs produce one value each.
func Map[T any](p *Pool, n int, baseSeed int64, fn func(Job) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Run(n, baseSeed, func(j Job) error {
		v, err := fn(j)
		if err != nil {
			return err
		}
		out[j.Index] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
