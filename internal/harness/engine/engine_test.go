package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(7, 0) != 7 || DeriveSeed(7, 3) != 10 {
		t.Errorf("DeriveSeed = %d, %d", DeriveSeed(7, 0), DeriveSeed(7, 3))
	}
}

func TestNewDefaultsWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("New(0) has no workers")
	}
	if New(-3).Workers() < 1 {
		t.Error("New(-3) has no workers")
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("Workers = %d, want 5", got)
	}
}

// TestMapDeterministicAcrossWorkerCounts is the engine's core contract:
// the assembled result slice is identical for any worker count, even
// when each job burns a seed-dependent amount of CPU so completion
// order differs between schedules.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(New(workers), 20, 100, func(j Job) (string, error) {
			// Seed-derived busy work so jobs finish out of order.
			r := rand.New(rand.NewSource(j.Seed))
			sum := 0
			for i := 0; i < 1000+r.Intn(5000); i++ {
				sum += r.Intn(10)
			}
			return fmt.Sprintf("job%d:seed%d:sum%d", j.Index, j.Seed, sum%7), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged:\n%v\nwant\n%v", w, got, ref)
		}
	}
}

func TestRunPropagatesLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := New(4).Run(10, 0, func(j Job) error {
		switch j.Index {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want lowest-index error %v", err, errA)
	}
	if _, err := Map(New(2), 4, 0, func(j Job) (int, error) {
		return 0, fmt.Errorf("job %d", j.Index)
	}); err == nil {
		t.Error("Map swallowed the error")
	}
}

func TestRunStopsHandingOutJobsAfterError(t *testing.T) {
	var started atomic.Int64
	_ = New(1).Run(100, 0, func(j Job) error {
		started.Add(1)
		if j.Index == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if started.Load() != 3 {
		t.Errorf("started %d jobs after error at index 2, want 3", started.Load())
	}
}

func TestRunEmptyAndSequentialOrder(t *testing.T) {
	if err := New(4).Run(0, 0, func(Job) error { t.Error("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	var order []int
	if err := New(1).Run(5, 0, func(j Job) error { order = append(order, j.Index); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("1-worker order = %v", order)
	}
}

func TestWorkersCappedToJobs(t *testing.T) {
	// More workers than jobs must not deadlock or panic.
	out, err := Map(New(16), 2, 0, func(j Job) (int, error) { return j.Index * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{0, 2}) {
		t.Errorf("out = %v", out)
	}
}
