package harness

import (
	"reflect"
	"testing"
)

// TestFlashCrowdRecovery is the E17 acceptance check: a 10x mid-run
// sender spike must degrade gracefully — queues stay inside their caps,
// excess load is shed loudly at the source, backpressure engages — and
// the system must recover to its pre-spike latency once the crowd
// leaves, rather than spiraling into retransmission-driven collapse.
func TestFlashCrowdRecovery(t *testing.T) {
	rows, err := RunFlashCrowd(FlashCrowdConfig{Multipliers: []int{10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Before.Count == 0 || r.During.Count == 0 {
		t.Fatalf("latency buckets empty: before %d during %d", r.Before.Count, r.During.Count)
	}
	if r.After.Count == 0 {
		t.Fatal("no deliveries after the recovery grace — the spike never cleared")
	}
	// Recovery: the post-spike median is back in the pre-spike regime.
	// 2x is a generous envelope — a collapsed run is off by 100x+.
	if r.After.P50 > 2*r.Before.P50 {
		t.Errorf("latency did not recover: p50 before %v, after %v", r.Before.P50, r.After.P50)
	}
	// Bounded memory: the caps held.
	if r.MaxIngressDepth > r.IngressCap {
		t.Errorf("ingress queue peaked at %d, cap %d", r.MaxIngressDepth, r.IngressCap)
	}
	if r.MaxEgressDepth > r.EgressCap {
		t.Errorf("egress queue peaked at %d, cap %d", r.MaxEgressDepth, r.EgressCap)
	}
	// The protection mechanisms all actually engaged: a vacuous pass
	// (crowd absorbed without effort) would prove nothing about them.
	if r.Shed == 0 {
		t.Error("a 10x crowd shed nothing — the caps were not exercised")
	}
	if r.Backpressured == 0 {
		t.Error("a 10x crowd never crossed the high watermark")
	}
	if r.RetriedSends == 0 {
		t.Error("a 10x crowd never retried a rejected send")
	}
	if r.BasePaused == 0 {
		t.Error("base senders never paused under backpressure")
	}
	if r.Delivered == 0 {
		t.Error("nothing delivered")
	}
}

// TestFlashCrowdParallelIdentical pins the sweep's determinism: the
// rows are byte-identical whether the multipliers run on one worker or
// four.
func TestFlashCrowdParallelIdentical(t *testing.T) {
	seq, err := RunFlashCrowd(FlashCrowdConfig{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFlashCrowd(FlashCrowdConfig{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("flash-crowd rows differ across parallelism:\nseq %+v\npar %+v", seq, par)
	}
}
