package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
	"repro/internal/simnet"
)

// This file is E18: the stack-throughput study behind the zero-alloc
// hot path. Each grid point runs the full switching stack — protocol ×
// envelope variant × batching on/off — under a bursty saturating
// workload and reports two host-side numbers next to the deterministic
// delivery count:
//
//   - msgs/sec: app-level deliveries over the run's wall-clock time
//     (how fast the host chews through the same virtual workload), and
//   - allocs/msg: runtime.MemStats Mallocs delta over deliveries (the
//     hot path's allocation bill, the hard-gated CI number).
//
// The virtual workload is identical for every variant at a given seed,
// so the host-side numbers compare the *implementation* cost of the
// variants, not different traffic. The rows run strictly serially —
// allocation accounting would otherwise attribute one run's garbage to
// another.

// perfSessionKey is the fixed group secret for the authed variants.
var perfSessionKey = []byte("perf study group session key")

// PerfPoint names one grid cell.
type PerfPoint struct {
	// Protocol is "sequencer", "token", or "hybrid" (one mid-run switch
	// between the two).
	Protocol string
	// Variant is the envelope mode: "plain" (no Defense), "sealed"
	// (integrity envelope), or "authed" (per-epoch MAC).
	Variant string
	// Batched enables the egress batcher (and the overload layer that
	// hosts it) at generous caps; false runs the legacy
	// one-frame-per-write path.
	Batched bool
}

func (p PerfPoint) String() string {
	b := "unbatched"
	if p.Batched {
		b = "batched"
	}
	return p.Protocol + "/" + p.Variant + "/" + b
}

// PerfConfig parameterizes the study.
type PerfConfig struct {
	Seed int64
	// Run is the base workload; zero fields default to a small, fast
	// grid: 6 members, 3 senders, 256-byte payloads on a fast NIC.
	Run RunConfig
	// Burst is how many casts each sender issues back-to-back per tick
	// (the tick stretches by the same factor, preserving the average
	// rate). Bursts are what give the batcher frames to coalesce — and
	// they are how saturating senders behave. Default 8.
	Burst int
	// BatchMax is the batcher depth for the batched rows. Default 8.
	BatchMax int
	// Points is the grid; empty runs DefaultPerfGrid().
	Points []PerfPoint
}

// DefaultPerfGrid is the full protocol × variant × batching cross.
func DefaultPerfGrid() []PerfPoint {
	var out []PerfPoint
	for _, protocol := range []string{"sequencer", "token", "hybrid"} {
		for _, variant := range []string{"plain", "sealed", "authed"} {
			for _, batched := range []bool{false, true} {
				out = append(out, PerfPoint{Protocol: protocol, Variant: variant, Batched: batched})
			}
		}
	}
	return out
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if len(c.Points) == 0 {
		c.Points = DefaultPerfGrid()
	}
	if c.Run.Group <= 0 {
		c.Run.Group = 6
	}
	if c.Run.ActiveSenders <= 0 {
		c.Run.ActiveSenders = 3
	}
	if c.Run.RatePerSender <= 0 {
		c.Run.RatePerSender = 600
	}
	if c.Run.MsgBytes <= 0 {
		c.Run.MsgBytes = 256
	}
	if c.Run.Warmup <= 0 {
		c.Run.Warmup = 200 * time.Millisecond
	}
	if c.Run.Measure <= 0 {
		c.Run.Measure = 2 * time.Second
	}
	if c.Run.Drain <= 0 {
		c.Run.Drain = time.Second
	}
	// Like the flash-crowd study, the perf grid runs on a fast NIC: the
	// question is how fast the host executes the stack, so the network
	// model must not be the bottleneck.
	if c.Run.Net == nil {
		c.Run.Net = &simnet.Config{
			PropDelay:     50 * time.Microsecond,
			BitsPerSecond: 100e6,
			FrameOverhead: 64,
			RecvCPU:       20 * time.Microsecond,
			SendCPU:       10 * time.Microsecond,
		}
	}
	return c
}

// PerfRow is one grid cell's outcome.
type PerfRow struct {
	PerfPoint
	// Delivered and Events are deterministic per seed; Sent counts casts
	// in the measurement window.
	Delivered uint64
	Sent      int
	Events    uint64
	// Wall, MsgsPerSec, AllocsPerMsg are host-side (non-deterministic).
	Wall         time.Duration
	MsgsPerSec   float64
	AllocsPerMsg float64
}

// perfFactories builds the switching protocol slots for one grid cell.
// Non-hybrid cells pin both slots to the same protocol, so the epoch
// never changes what is being measured; the hybrid cell gets the usual
// [sequencer, token] pair and one mid-run switch. Batched token cells
// also enable token-carried batching (tokenorder.Config.BatchFlush) —
// the two batching layers compose.
func perfFactories(protocol string, tokenHold time.Duration, batched bool) ([]switching.ProtocolFactory, error) {
	seq := func(proto.Env) []proto.Layer {
		return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
	}
	tok := func(proto.Env) []proto.Layer {
		return []proto.Layer{
			tokenorder.New(tokenorder.Config{HoldDelay: tokenHold, BatchFlush: batched}),
			fifo.New(fifo.Config{}),
		}
	}
	switch protocol {
	case "sequencer":
		return []switching.ProtocolFactory{seq, seq}, nil
	case "token":
		return []switching.ProtocolFactory{tok, tok}, nil
	case "hybrid":
		return []switching.ProtocolFactory{seq, tok}, nil
	default:
		return nil, fmt.Errorf("harness: unknown perf protocol %q", protocol)
	}
}

// perfOverload is the batched rows' overload configuration: caps far
// above the workload (this is a throughput study, not a shedding one)
// with a service tick fast enough to never throttle. BatchMax is the
// knob under test.
func perfOverload(batchMax int) *switching.OverloadConfig {
	return &switching.OverloadConfig{
		IngressQueueCap: 4096,
		EgressQueueCap:  4096,
		LowWatermark:    64,
		HighWatermark:   2048,
		ServiceInterval: 100 * time.Microsecond,
		RetryBackoff:    time.Millisecond,
		MaxRetryShift:   2,
		BatchMax:        batchMax,
	}
}

// RunPerf measures every grid point, serially.
func RunPerf(cfg PerfConfig) ([]PerfRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]PerfRow, 0, len(cfg.Points))
	for _, pt := range cfg.Points {
		row, err := runPerfPoint(cfg, pt)
		if err != nil {
			return nil, fmt.Errorf("harness: perf %s: %w", pt, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runPerfPoint executes one grid cell and measures its host-side cost.
func runPerfPoint(cfg PerfConfig, pt PerfPoint) (PerfRow, error) {
	rc := cfg.Run
	rc.Seed = cfg.Seed
	factories, err := perfFactories(pt.Protocol, rc.TokenHold, pt.Batched)
	if err != nil {
		return PerfRow{}, err
	}
	swCfg := switching.Config{Protocols: factories}
	switch pt.Variant {
	case "plain":
	case "sealed":
		swCfg.Defense = &switching.DefenseConfig{QuarantineThreshold: 1 << 20}
	case "authed":
		swCfg.Defense = &switching.DefenseConfig{
			QuarantineThreshold: 1 << 20,
			Auth:                &switching.AuthConfig{SessionKey: perfSessionKey},
		}
	default:
		return PerfRow{}, fmt.Errorf("unknown variant %q", pt.Variant)
	}
	if pt.Batched {
		swCfg.Overload = perfOverload(cfg.BatchMax)
	}
	run, err := NewSwitchedRun(rc, swCfg)
	if err != nil {
		return PerfRow{}, err
	}
	rc = run.rc
	if pt.Protocol == "hybrid" {
		run.Cluster.Sim.At(rc.Warmup+rc.Measure/2, func() {
			run.Cluster.Members[0].Switch.RequestSwitch()
		})
	}
	// Bursty senders: Burst casts back-to-back per tick, tick stretched
	// to keep the average rate — the saturating-producer shape that
	// gives the egress queue (and so the batcher) runs of frames.
	sim := run.Cluster.Sim
	interval := time.Duration(float64(cfg.Burst) * float64(time.Second) / rc.RatePerSender)
	stopAt := rc.Warmup + rc.Measure
	for s := 0; s < rc.ActiveSenders; s++ {
		p := ids.ProcID(s)
		phase := time.Duration(s) * interval / time.Duration(rc.ActiveSenders)
		var tick func()
		tick = func() {
			if sim.Now() >= stopAt {
				return
			}
			for b := 0; b < cfg.Burst; b++ {
				run.Cast(p)
			}
			jitter := time.Duration(sim.Rand().Int63n(int64(interval / 5)))
			sim.After(interval-interval/10+jitter, tick)
		}
		sim.After(phase, tick)
	}

	// Settle the heap so the delta measures this run, not the builder's
	// garbage, then clock the whole execution.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := run.Finish()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	row := PerfRow{
		PerfPoint: pt,
		Delivered: res.Delivered,
		Sent:      res.Sent,
		Events:    res.Events,
		Wall:      wall,
	}
	if res.Delivered > 0 {
		if wall > 0 {
			row.MsgsPerSec = float64(res.Delivered) / wall.Seconds()
		}
		row.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / float64(res.Delivered)
	}
	return row, nil
}

// RenderPerf prints the E18 table, pairing each unbatched row with its
// batched sibling to show the speedup.
func RenderPerf(rows []PerfRow) string {
	var b strings.Builder
	b.WriteString("Stack throughput (E18): protocol × envelope × batching\n\n")
	b.WriteString("protocol    variant   batched   delivered     msgs/sec   allocs/msg   speedup\n")
	base := map[string]float64{}
	for _, r := range rows {
		if !r.Batched {
			base[r.Protocol+"/"+r.Variant] = r.MsgsPerSec
		}
	}
	for _, r := range rows {
		speedup := "      -"
		if r.Batched {
			if b0 := base[r.Protocol+"/"+r.Variant]; b0 > 0 {
				speedup = fmt.Sprintf("%6.2fx", r.MsgsPerSec/b0)
			}
		}
		fmt.Fprintf(&b, "%-9s   %-7s   %-7v   %9d   %10.0f   %10.2f   %s\n",
			r.Protocol, r.Variant, r.Batched, r.Delivered, r.MsgsPerSec, r.AllocsPerMsg, speedup)
	}
	b.WriteString("\nmsgs/sec and allocs/msg are host-side (wall clock and Mallocs delta\n")
	b.WriteString("over app deliveries); delivered and the virtual workload are\n")
	b.WriteString("deterministic per seed, so the rows compare implementation cost on\n")
	b.WriteString("identical traffic.\n")
	return b.String()
}
