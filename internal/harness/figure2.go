package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core/switching"
)

// Figure2Row is one x-axis point of the paper's Figure 2: message
// latency vs. number of active senders, for the sequencer-based and
// token-based total-order protocols (and, as our extension, the hybrid
// running under the switching protocol with a threshold oracle).
type Figure2Row struct {
	ActiveSenders int
	Sequencer     LatencyStats
	Token         LatencyStats
	// Hybrid is only filled when the experiment is run with
	// IncludeHybrid.
	Hybrid LatencyStats
}

// Figure2Result is the full reproduced figure.
type Figure2Result struct {
	Rows []Figure2Row
	// CrossoverAfter is the largest sender count at which the sequencer
	// is still faster (the paper finds the crossover between 5 and 6).
	// Zero means the curves never cross.
	CrossoverAfter int
	IncludedHybrid bool
}

// Figure2Config parameterizes the sweep.
type Figure2Config struct {
	Run           RunConfig
	MaxSenders    int
	IncludeHybrid bool
	// Progress, if set, is called before each point (for CLI feedback).
	Progress func(msg string)
}

// DefaultFigure2Config mirrors §7: a 10-member group, 1..10 active
// senders, 50 msgs/s each.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{Run: DefaultRunConfig(), MaxSenders: 10}
}

// RunFigure2 sweeps the active-sender axis and measures each protocol.
func RunFigure2(cfg Figure2Config) (*Figure2Result, error) {
	if cfg.MaxSenders <= 0 {
		cfg.MaxSenders = 10
	}
	if cfg.MaxSenders > cfg.Run.withDefaults().Group {
		return nil, fmt.Errorf("harness: %d senders exceed group size", cfg.MaxSenders)
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	res := &Figure2Result{IncludedHybrid: cfg.IncludeHybrid}
	for n := 1; n <= cfg.MaxSenders; n++ {
		rc := cfg.Run
		rc.ActiveSenders = n
		progress(fmt.Sprintf("senders=%d sequencer", n))
		seq, err := RunDirect(Sequencer, rc)
		if err != nil {
			return nil, err
		}
		progress(fmt.Sprintf("senders=%d token", n))
		tok, err := RunDirect(Token, rc)
		if err != nil {
			return nil, err
		}
		row := Figure2Row{ActiveSenders: n, Sequencer: seq.Stats, Token: tok.Stats}
		if cfg.IncludeHybrid {
			progress(fmt.Sprintf("senders=%d hybrid", n))
			hyb, err := runHybridPoint(rc, res.CrossoverGuess())
			if err != nil {
				return nil, err
			}
			row.Hybrid = hyb.Stats
		}
		res.Rows = append(res.Rows, row)
	}
	res.CrossoverAfter = res.computeCrossover()
	return res, nil
}

// CrossoverGuess returns a working threshold for the hybrid's oracle
// while the sweep is still running (defaults to the paper's 5.5).
func (r *Figure2Result) CrossoverGuess() float64 {
	if c := r.computeCrossover(); c > 0 {
		return float64(c) + 0.5
	}
	return 5.5
}

// computeCrossover finds the last sender count where the sequencer's
// mean latency is below the token's.
func (r *Figure2Result) computeCrossover() int {
	last := 0
	for _, row := range r.Rows {
		if row.Sequencer.Mean < row.Token.Mean {
			last = row.ActiveSenders
		}
	}
	if last == len(r.Rows) {
		return 0 // never crossed
	}
	return last
}

// runHybridPoint measures the switching hybrid at a fixed load with a
// threshold oracle at the crossover.
func runHybridPoint(rc RunConfig, threshold float64) (Result, error) {
	return RunSwitched(rc, switching.ThresholdOracle{Threshold: threshold}, 100*time.Millisecond)
}

// Render prints the figure as the table cmd/switchbench and
// EXPERIMENTS.md use.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 — message latency (ms) vs. number of active senders\n")
	b.WriteString("group=10, 50 msgs/s per sender, 2 KB messages, 10 Mbit/s shared medium\n\n")
	fmt.Fprintf(&b, "%8s %12s %12s", "senders", "sequencer", "token")
	if r.IncludedHybrid {
		fmt.Fprintf(&b, " %12s", "hybrid")
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12s %12s", row.ActiveSenders,
			FormatMillis(row.Sequencer.Mean), FormatMillis(row.Token.Mean))
		if r.IncludedHybrid {
			fmt.Fprintf(&b, " %12s", FormatMillis(row.Hybrid.Mean))
		}
		b.WriteString("\n")
	}
	if r.CrossoverAfter > 0 {
		fmt.Fprintf(&b, "\ncrossover: between %d and %d active senders (paper: between 5 and 6)\n",
			r.CrossoverAfter, r.CrossoverAfter+1)
	} else {
		b.WriteString("\ncrossover: not observed in range\n")
	}
	b.WriteString("\n" + r.Plot())
	return b.String()
}

// Plot renders a rough ASCII plot of the two curves (s = sequencer,
// t = token, * = both).
func (r *Figure2Result) Plot() string {
	if len(r.Rows) == 0 {
		return ""
	}
	const height = 12
	maxMs := 0.0
	for _, row := range r.Rows {
		if v := Millis(row.Sequencer.Mean); v > maxMs {
			maxMs = v
		}
		if v := Millis(row.Token.Mean); v > maxMs {
			maxMs = v
		}
	}
	if maxMs <= 0 {
		return ""
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(r.Rows)*3))
	}
	put := func(col int, ms float64, ch byte) {
		rowIdx := int((ms / maxMs) * float64(height-1))
		if rowIdx > height-1 {
			rowIdx = height - 1
		}
		y := height - 1 - rowIdx
		x := col*3 + 1
		if grid[y][x] != ' ' && grid[y][x] != ch {
			grid[y][x] = '*'
			return
		}
		grid[y][x] = ch
	}
	for i, row := range r.Rows {
		put(i, Millis(row.Sequencer.Mean), 's')
		put(i, Millis(row.Token.Mean), 't')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "latency 0..%.0fms (s=sequencer, t=token, *=both)\n", maxMs)
	for _, line := range grid {
		b.WriteString("| " + string(line) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", len(r.Rows)*3+1) + "\n  ")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-3d", row.ActiveSenders)
	}
	b.WriteString(" active senders\n")
	return b.String()
}
