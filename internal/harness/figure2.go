package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/harness/engine"
	"repro/internal/obs"
)

// Figure2Row is one x-axis point of the paper's Figure 2: message
// latency vs. number of active senders, for the sequencer-based and
// token-based total-order protocols (and, as our extension, the hybrid
// running under the switching protocol with a threshold oracle).
type Figure2Row struct {
	ActiveSenders int
	Sequencer     LatencyStats
	Token         LatencyStats
	// Hybrid is only filled when the experiment is run with
	// IncludeHybrid.
	Hybrid LatencyStats
	// Events is the total number of DES events the point's runs
	// executed (sequencer + token + hybrid); deterministic per seed.
	Events uint64
}

// Figure2Result is the full reproduced figure.
type Figure2Result struct {
	Rows []Figure2Row
	// CrossoverAfter is the largest sender count at which the sequencer
	// is still faster (the paper finds the crossover between 5 and 6).
	// Zero means the curves never cross.
	CrossoverAfter int
	IncludedHybrid bool
	// HybridThreshold is the oracle threshold every hybrid point ran
	// with. It is computed once, from the complete sequencer/token
	// curves, so hybrid results do not depend on sweep execution order.
	HybridThreshold float64
	// Run is the resolved configuration the sweep ran with (rendered in
	// the table header).
	Run RunConfig
	// Trace is the merged hybrid-phase event stream (runs tagged by
	// point index) when Figure2Config.Trace was set.
	Trace []obs.Event
}

// Figure2Config parameterizes the sweep.
type Figure2Config struct {
	Run           RunConfig
	MaxSenders    int
	IncludeHybrid bool
	// Parallel is the worker count for the sweep's independent DES
	// runs; <= 0 uses GOMAXPROCS. Results are identical for any value.
	Parallel int
	// Trace collects each hybrid point's event stream (the direct
	// sequencer/token runs have no switching layer to observe).
	Trace bool
	// Progress, if set, is called before each point (for CLI feedback).
	// It may be called concurrently from worker goroutines.
	Progress func(msg string)
}

// DefaultFigure2Config mirrors §7: a 10-member group, 1..10 active
// senders, 50 msgs/s each.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{Run: DefaultRunConfig(), MaxSenders: 10}
}

// RunFigure2 sweeps the active-sender axis and measures each protocol.
//
// The sweep runs in two phases. Phase 1 measures the raw sequencer and
// token curves at every sender count (in parallel). Phase 2, when
// IncludeHybrid is set, computes the crossover threshold once from the
// complete curves and measures every hybrid point against that single
// fixed threshold (again in parallel). Earlier versions seeded each
// hybrid point's oracle from the crossover of the *partial* rows
// accumulated so far, which made hybrid results depend on sweep
// execution order; the two-phase structure is both the bugfix and what
// makes the sweep safely parallel.
func RunFigure2(cfg Figure2Config) (*Figure2Result, error) {
	if cfg.MaxSenders <= 0 {
		cfg.MaxSenders = 10
	}
	if cfg.MaxSenders > cfg.Run.withDefaults().Group {
		return nil, fmt.Errorf("harness: %d senders exceed group size", cfg.MaxSenders)
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	pool := engine.New(cfg.Parallel)
	res := &Figure2Result{IncludedHybrid: cfg.IncludeHybrid, Run: cfg.Run.withDefaults()}

	// Phase 1: the raw protocol curves. Each point is an independent
	// pair of seeded runs; the pool collects rows by index.
	rows, err := engine.Map(pool, cfg.MaxSenders, cfg.Run.Seed,
		func(j engine.Job) (Figure2Row, error) {
			rc := cfg.Run
			rc.ActiveSenders = j.Index + 1
			progress(fmt.Sprintf("senders=%d sequencer", rc.ActiveSenders))
			seq, err := RunDirect(Sequencer, rc)
			if err != nil {
				return Figure2Row{}, err
			}
			progress(fmt.Sprintf("senders=%d token", rc.ActiveSenders))
			tok, err := RunDirect(Token, rc)
			if err != nil {
				return Figure2Row{}, err
			}
			return Figure2Row{
				ActiveSenders: rc.ActiveSenders,
				Sequencer:     seq.Stats,
				Token:         tok.Stats,
				Events:        seq.Events + tok.Events,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.CrossoverAfter = res.computeCrossover()

	// Phase 2: every hybrid point runs with the one threshold derived
	// from the complete curves above.
	if cfg.IncludeHybrid {
		res.HybridThreshold = res.CrossoverGuess()
		type hybridPoint struct {
			res   Result
			trace []obs.Event
		}
		hybs, err := engine.Map(pool, cfg.MaxSenders, cfg.Run.Seed,
			func(j engine.Job) (hybridPoint, error) {
				rc := cfg.Run
				rc.ActiveSenders = j.Index + 1
				var col *obs.Collector
				if cfg.Trace {
					col = obs.NewCollector()
					rc.Recorder = col
				}
				progress(fmt.Sprintf("senders=%d hybrid", rc.ActiveSenders))
				r, err := runHybridPoint(rc, res.HybridThreshold)
				if err != nil {
					return hybridPoint{}, err
				}
				p := hybridPoint{res: r}
				if col != nil {
					p.trace = col.Events()
				}
				return p, nil
			})
		if err != nil {
			return nil, err
		}
		var traces [][]obs.Event
		for i := range res.Rows {
			res.Rows[i].Hybrid = hybs[i].res.Stats
			res.Rows[i].Events += hybs[i].res.Events
			traces = append(traces, hybs[i].trace)
		}
		if cfg.Trace {
			res.Trace = obs.MergeRuns(traces)
		}
	}
	return res, nil
}

// CrossoverGuess returns the hybrid oracle threshold implied by the
// measured curves: half a sender past the crossover, or the paper's 5.5
// if the curves never cross in range.
func (r *Figure2Result) CrossoverGuess() float64 {
	if c := r.computeCrossover(); c > 0 {
		return float64(c) + 0.5
	}
	return 5.5
}

// computeCrossover finds the last sender count where the sequencer's
// mean latency is below the token's.
func (r *Figure2Result) computeCrossover() int {
	last := 0
	for _, row := range r.Rows {
		if row.Sequencer.Mean < row.Token.Mean {
			last = row.ActiveSenders
		}
	}
	if last == len(r.Rows) {
		return 0 // never crossed
	}
	return last
}

// runHybridPoint measures the switching hybrid at a fixed load with a
// threshold oracle at the crossover.
func runHybridPoint(rc RunConfig, threshold float64) (Result, error) {
	return RunSwitched(rc, switching.ThresholdOracle{Threshold: threshold}, 100*time.Millisecond)
}

// Render prints the figure as the table cmd/switchbench and
// EXPERIMENTS.md use.
func (r *Figure2Result) Render() string {
	rc := r.Run.withDefaults()
	var b strings.Builder
	b.WriteString("Figure 2 — message latency (ms) vs. number of active senders\n")
	fmt.Fprintf(&b, "group=%d, %g msgs/s per sender, %d-byte messages, 10 Mbit/s shared medium\n\n",
		rc.Group, rc.RatePerSender, rc.MsgBytes)
	fmt.Fprintf(&b, "%8s %14s %14s", "senders", "sequencer", "token")
	if r.IncludedHybrid {
		fmt.Fprintf(&b, " %14s", "hybrid")
	}
	b.WriteString("  (mean±σ)\n")
	cell := func(s LatencyStats) string {
		return fmt.Sprintf("%s±%s", FormatMillis(s.Mean), FormatMillis(s.StdDev))
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14s %14s", row.ActiveSenders,
			cell(row.Sequencer), cell(row.Token))
		if r.IncludedHybrid {
			fmt.Fprintf(&b, " %14s", cell(row.Hybrid))
		}
		b.WriteString("\n")
	}
	if r.CrossoverAfter > 0 {
		fmt.Fprintf(&b, "\ncrossover: between %d and %d active senders (paper: between 5 and 6)\n",
			r.CrossoverAfter, r.CrossoverAfter+1)
	} else {
		b.WriteString("\ncrossover: not observed in range\n")
	}
	if r.IncludedHybrid {
		fmt.Fprintf(&b, "hybrid oracle threshold: %.1f active senders\n", r.HybridThreshold)
	}
	b.WriteString("\n" + r.Plot())
	return b.String()
}

// Plot renders a rough ASCII plot of the two curves (s = sequencer,
// t = token, * = both).
func (r *Figure2Result) Plot() string {
	if len(r.Rows) == 0 {
		return ""
	}
	const height = 12
	maxMs := 0.0
	for _, row := range r.Rows {
		if v := Millis(row.Sequencer.Mean); v > maxMs {
			maxMs = v
		}
		if v := Millis(row.Token.Mean); v > maxMs {
			maxMs = v
		}
	}
	if maxMs <= 0 {
		return ""
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(r.Rows)*3))
	}
	put := func(col int, ms float64, ch byte) {
		rowIdx := int((ms / maxMs) * float64(height-1))
		if rowIdx > height-1 {
			rowIdx = height - 1
		}
		y := height - 1 - rowIdx
		x := col*3 + 1
		if grid[y][x] != ' ' && grid[y][x] != ch {
			grid[y][x] = '*'
			return
		}
		grid[y][x] = ch
	}
	for i, row := range r.Rows {
		put(i, Millis(row.Sequencer.Mean), 's')
		put(i, Millis(row.Token.Mean), 't')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "latency 0..%.0fms (s=sequencer, t=token, *=both)\n", maxMs)
	for _, line := range grid {
		b.WriteString("| " + string(line) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", len(r.Rows)*3+1) + "\n  ")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-3d", row.ActiveSenders)
	}
	b.WriteString(" active senders\n")
	return b.String()
}
