package harness

import (
	"fmt"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
	"repro/internal/simnet"
)

// ProtocolKind selects one of the two total-order protocols of §7.
type ProtocolKind int

const (
	// Sequencer is the centralized-sequencer protocol [8].
	Sequencer ProtocolKind = iota + 1
	// Token is the rotating-token protocol [4].
	Token
)

// String renders the kind.
func (k ProtocolKind) String() string {
	switch k {
	case Sequencer:
		return "sequencer"
	case Token:
		return "token"
	default:
		return fmt.Sprintf("ProtocolKind(%d)", int(k))
	}
}

// RunConfig parameterizes one measurement run. The defaults reproduce
// the paper's §7 setup: a 10-member group on a 10 Mbit Ethernet with 50
// messages per second per active sender.
type RunConfig struct {
	Seed          int64
	Group         int
	ActiveSenders int
	// RatePerSender is messages per second per active sender.
	RatePerSender float64
	// MsgBytes is the application payload size.
	MsgBytes int
	// TokenHold is the token protocol's per-hop hold time.
	TokenHold time.Duration
	// Warmup is discarded; Measure is the sampled window; Drain lets
	// in-flight messages land after sending stops.
	Warmup, Measure, Drain time.Duration
	// Recorder, when set, receives the run's structured events: the
	// switching layer's (hybrid runs only) and the simulated network's.
	Recorder obs.Recorder
	// Net overrides the simulated network (nil uses the paper's
	// calibrated 10 Mbit Ethernet). Nodes is forced to Group.
	Net *simnet.Config
}

// DefaultRunConfig returns the §7 parameters.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Seed:          1,
		Group:         10,
		ActiveSenders: 1,
		RatePerSender: 50,
		MsgBytes:      2240,
		TokenHold:     time.Millisecond,
		Warmup:        2 * time.Second,
		Measure:       10 * time.Second,
		Drain:         5 * time.Second,
	}
}

func (rc RunConfig) withDefaults() RunConfig {
	d := DefaultRunConfig()
	if rc.Group <= 0 {
		rc.Group = d.Group
	}
	if rc.ActiveSenders <= 0 {
		rc.ActiveSenders = d.ActiveSenders
	}
	if rc.RatePerSender <= 0 {
		rc.RatePerSender = d.RatePerSender
	}
	if rc.MsgBytes <= 0 {
		rc.MsgBytes = d.MsgBytes
	}
	if rc.TokenHold <= 0 {
		rc.TokenHold = d.TokenHold
	}
	if rc.Warmup <= 0 {
		rc.Warmup = d.Warmup
	}
	if rc.Measure <= 0 {
		rc.Measure = d.Measure
	}
	if rc.Drain <= 0 {
		rc.Drain = d.Drain
	}
	return rc
}

// netConfig resolves the run's simulated network.
func (rc RunConfig) netConfig() simnet.Config {
	if rc.Net == nil {
		return simnet.Ethernet10Mbit(rc.Group)
	}
	cfg := *rc.Net
	cfg.Nodes = rc.Group
	return cfg
}

// Layers builds the stack (top first) for one protocol kind.
func Layers(kind ProtocolKind, tokenHold time.Duration) []proto.Layer {
	switch kind {
	case Sequencer:
		return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
	case Token:
		return []proto.Layer{tokenorder.New(tokenorder.Config{HoldDelay: tokenHold}), fifo.New(fifo.Config{})}
	default:
		panic(fmt.Sprintf("harness: unknown protocol kind %d", kind))
	}
}

// Factories returns switching-protocol factories for [Sequencer, Token].
func Factories(tokenHold time.Duration) []switching.ProtocolFactory {
	return []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer { return Layers(Sequencer, tokenHold) },
		func(proto.Env) []proto.Layer { return Layers(Token, tokenHold) },
	}
}

// sendRecord tracks one in-flight measured message: when it was cast
// and how many group deliveries are still outstanding.
type sendRecord struct {
	at        time.Duration
	remaining int
}

// timedSample pairs one latency sample with the send time that
// produced it, so experiments can bucket latency by workload phase
// (the flash-crowd study's before/during/after split).
type timedSample struct {
	sentAt time.Duration
	lat    time.Duration
}

// collector gathers latency samples from one group execution.
type collector struct {
	rc       RunConfig
	sendTime map[ids.MsgID]sendRecord
	samples  []time.Duration
	// keepTimes additionally retains (sendAt, latency) pairs in timed.
	keepTimes bool
	timed     []timedSample
	// delivered counts all app-level deliveries (for throughput).
	delivered uint64
	// hook, if set, observes every delivery (used by the overhead
	// experiment to find delivery gaps).
	hook func(now time.Duration)
}

func newCollector(rc RunConfig) *collector {
	return &collector{rc: rc, sendTime: make(map[ids.MsgID]sendRecord)}
}

// recordSend notes the cast of one measured message. The entry lives
// until the whole group has delivered it (or until the first delivery
// shows it fell outside the measurement window), so the map tracks only
// in-flight messages instead of every message ever sent — long
// hysteresis/chaos runs would otherwise hold O(total messages) memory.
func (c *collector) recordSend(id ids.MsgID, now time.Duration) {
	c.sendTime[id] = sendRecord{at: now, remaining: c.rc.Group}
}

// onDeliver records a sample for one delivery at virtual time now.
func (c *collector) onDeliver(now time.Duration, id ids.MsgID) {
	c.delivered++
	if c.hook != nil {
		c.hook(now)
	}
	rec, ok := c.sendTime[id]
	if !ok {
		return
	}
	if rec.at < c.rc.Warmup || rec.at >= c.rc.Warmup+c.rc.Measure {
		// Outside the window: no sample will ever be taken, so the
		// entry is dead weight — drop it on first delivery.
		delete(c.sendTime, id)
		return
	}
	c.samples = append(c.samples, now-rec.at)
	if c.keepTimes {
		c.timed = append(c.timed, timedSample{sentAt: rec.at, lat: now - rec.at})
	}
	rec.remaining--
	if rec.remaining <= 0 {
		delete(c.sendTime, id)
		return
	}
	c.sendTime[id] = rec
}

// inFlight returns how many measured messages still await deliveries
// (exported to tests via the harness package).
func (c *collector) inFlight() int { return len(c.sendTime) }

// SetDeliveryHook installs an observer called on every app delivery.
func (r *SwitchedRun) SetDeliveryHook(fn func(now time.Duration)) {
	r.Collector.hook = fn
}

// senderSchedule installs the constant-rate senders on a simulator-side
// cast function. Senders are phase-shifted so they do not fire in
// lockstep, with small per-message jitter.
func senderSchedule(rc RunConfig, now func() time.Duration, after func(time.Duration, func()), rnd func(int64) int64, cast func(p ids.ProcID, seq uint32)) {
	interval := time.Duration(float64(time.Second) / rc.RatePerSender)
	stopAt := rc.Warmup + rc.Measure
	for s := 0; s < rc.ActiveSenders; s++ {
		p := ids.ProcID(s)
		phase := time.Duration(s) * interval / time.Duration(rc.ActiveSenders)
		seq := uint32(0)
		var tick func()
		tick = func() {
			if now() >= stopAt {
				return
			}
			seq++
			cast(p, seq)
			jitter := time.Duration(rnd(int64(interval / 5)))
			after(interval-interval/10+jitter, tick)
		}
		after(phase, tick)
	}
}

// Result is the outcome of one measurement run.
type Result struct {
	Stats LatencyStats
	// Sent is the number of messages cast in the measurement window.
	Sent int
	// Delivered is the number of app-level deliveries over the run.
	Delivered uint64
	// Events is the number of DES handler invocations the run executed
	// (deterministic for a given seed and config).
	Events uint64
}

// measuringApp returns an AppFactory that feeds the collector instead
// of recording payloads.
func measuringApp(col *collector) func(sim *des.Sim) proto.Up {
	return func(sim *des.Sim) proto.Up {
		return proto.UpFunc(func(src ids.ProcID, payload []byte) {
			id, err := proto.DecodeAppID(payload)
			if err != nil {
				return
			}
			col.onDeliver(sim.Now(), id)
		})
	}
}

// RunDirect measures one protocol without the switching layer — the raw
// curves of Figure 2.
func RunDirect(kind ProtocolKind, rc RunConfig) (Result, error) {
	rc = rc.withDefaults()
	col := newCollector(rc)
	app := measuringApp(col)
	cluster, err := ptest.NewWithApp(rc.Seed, rc.netConfig(), rc.Group,
		func(proto.Env) []proto.Layer { return Layers(kind, rc.TokenHold) },
		func(_ *ptest.Member, sim *des.Sim) proto.Up { return app(sim) })
	if err != nil {
		return Result{}, err
	}
	cluster.Net.SetRecorder(rc.Recorder)
	body := make([]byte, rc.MsgBytes)
	sent := 0
	cast := func(p ids.ProcID, seq uint32) {
		m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: body}
		col.recordSend(m.ID, cluster.Sim.Now())
		if cluster.Sim.Now() >= rc.Warmup && cluster.Sim.Now() < rc.Warmup+rc.Measure {
			sent++
		}
		if err := cluster.Members[p].Stack.Cast(m.Encode()); err != nil {
			panic(err) // deterministic sim: a cast error is a bug
		}
	}
	senderSchedule(rc, cluster.Sim.Now,
		func(d time.Duration, fn func()) { cluster.Sim.After(d, fn) },
		cluster.Sim.Rand().Int63n, cast)
	cluster.Run(rc.Warmup + rc.Measure + rc.Drain)
	cluster.Stop()
	return Result{Stats: Summarize(col.samples), Sent: sent, Delivered: col.delivered,
		Events: cluster.Sim.Executed()}, nil
}

// SwitchedRun is a hybrid (switching) execution with measurement hooks.
type SwitchedRun struct {
	Cluster   *swtest.SwitchedCluster
	Collector *collector
	rc        RunConfig
	body      []byte
	seqs      []uint32
	// SentInWindow counts casts inside the measurement window.
	SentInWindow int
}

// NewSwitchedRun assembles a measuring hybrid cluster without starting
// the workload (callers install oracles/controllers first).
func NewSwitchedRun(rc RunConfig, swCfg switching.Config) (*SwitchedRun, error) {
	rc = rc.withDefaults()
	if swCfg.Protocols == nil {
		swCfg.Protocols = Factories(rc.TokenHold)
	}
	if swCfg.Recorder == nil {
		swCfg.Recorder = rc.Recorder
	}
	col := newCollector(rc)
	app := measuringApp(col)
	cluster, err := swtest.NewSwitchedWithApp(rc.Seed, rc.netConfig(), rc.Group, swCfg,
		func(_ *swtest.SwitchedMember, sim *des.Sim) proto.Up { return app(sim) })
	if err != nil {
		return nil, err
	}
	cluster.Net.SetRecorder(rc.Recorder)
	return &SwitchedRun{
		Cluster:   cluster,
		Collector: col,
		rc:        rc,
		body:      make([]byte, rc.MsgBytes),
		seqs:      make([]uint32, rc.Group),
	}, nil
}

// Cast sends one measured message from p.
func (r *SwitchedRun) Cast(p ids.ProcID) {
	r.seqs[p]++
	m := proto.AppMsg{ID: proto.MakeMsgID(p, r.seqs[p]), Sender: p, Body: r.body}
	now := r.Cluster.Sim.Now()
	r.Collector.recordSend(m.ID, now)
	if now >= r.rc.Warmup && now < r.rc.Warmup+r.rc.Measure {
		r.SentInWindow++
	}
	if err := r.Cluster.Members[p].Switch.Cast(m.Encode()); err != nil {
		panic(err) // deterministic sim: a cast error is a bug
	}
}

// StartWorkload installs the §7 constant-rate senders.
func (r *SwitchedRun) StartWorkload() {
	senderSchedule(r.rc, r.Cluster.Sim.Now,
		func(d time.Duration, fn func()) { r.Cluster.Sim.After(d, fn) },
		r.Cluster.Sim.Rand().Int63n,
		func(p ids.ProcID, _ uint32) { r.Cast(p) })
}

// Finish drives the run to completion and summarizes.
func (r *SwitchedRun) Finish() Result {
	r.Cluster.Run(r.rc.Warmup + r.rc.Measure + r.rc.Drain)
	r.Cluster.Stop()
	return Result{Stats: Summarize(r.Collector.samples), Sent: r.SentInWindow,
		Delivered: r.Collector.delivered, Events: r.Cluster.Sim.Executed()}
}

// RunSwitched measures the hybrid: the switching protocol over both
// total-order protocols, a controller polling the active-sender metric
// through the given oracle.
func RunSwitched(rc RunConfig, oracle switching.Oracle, pollEvery time.Duration) (Result, error) {
	rc = rc.withDefaults()
	run, err := NewSwitchedRun(rc, switching.Config{})
	if err != nil {
		return Result{}, err
	}
	metric := func() float64 { return float64(rc.ActiveSenders) }
	if oracle != nil {
		// The manager is member 0.
		if _, err := switching.NewController(run.Cluster.Members[0].Switch, oracle, metric, pollEvery); err != nil {
			return Result{}, err
		}
	}
	run.StartWorkload()
	return run.Finish(), nil
}
