package harness

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core/switching"
	"repro/internal/harness/engine"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// ChaosSweepConfig parameterizes E13: a sweep of seeded fault schedules
// against the recovery-enabled switching protocol, plus the
// bounded-recovery measurement for crash-during-round schedules.
type ChaosSweepConfig struct {
	// Schedules is how many seeded schedules to run (default 200).
	Schedules int
	// Seed offsets the schedule seeds (schedule i uses Seed+i).
	Seed int64
	// Gen tunes the fault-schedule generator.
	Gen chaos.GenConfig
	// FlashCrowd adds the overload tier: the generator draws flash-crowd
	// windows (Gen.FlashCrowd), and the sweep appends the E17 latency/
	// shed-rate study (RunFlashCrowd with its defaults, seeded from
	// Seed) to the result.
	FlashCrowd bool
	// GrayFailure adds the gray tier: the generator draws slow-node,
	// asymmetric-link and flapping windows (Gen.GrayFailure), and the
	// sweep appends the E20 stability study (RunGrayStudy with its
	// defaults, seeded from Seed) to the result.
	GrayFailure bool
	// Run tunes the schedule runner.
	Run chaos.RunConfig
	// RecoverySeeds is how many crash-during-round runs to measure for
	// the recovery-time bound (default 25).
	RecoverySeeds int
	// Parallel is the sweep's worker count (<= 0 uses GOMAXPROCS).
	// Every schedule is an independent seeded simulation, so the
	// aggregated result is identical for any value.
	Parallel int
	// Trace collects the full event stream of every schedule run,
	// tagged by run index, into Result.Trace.
	Trace bool
	// Telemetry, when set, runs the windowed sampler and switch-decision
	// audit trail on every schedule run; the per-run series merge into
	// Result.Windows/Rounds (tagged by run index) and the cumulative
	// telemetry registries into Result.Telemetry.
	Telemetry *telemetry.Config
	// Progress receives per-phase status lines (optional). It may be
	// called concurrently from worker goroutines.
	Progress func(string)
}

// DefaultChaosSweepConfig matches the E13 acceptance run.
func DefaultChaosSweepConfig() ChaosSweepConfig {
	return ChaosSweepConfig{Schedules: 200, Seed: 1, RecoverySeeds: 25}
}

// ChaosSweepResult aggregates a sweep.
type ChaosSweepResult struct {
	Schedules int
	// KindCounts is how many schedules contained each fault class.
	KindCounts map[chaos.Kind]int
	// Failures holds every run with invariant violations (empty on a
	// passing sweep).
	Failures []*chaos.Result
	// Stats sums the live members' switching stats over all runs.
	Stats switching.Stats
	// Delivered is the total application deliveries over all runs.
	Delivered int
	// WorstRecovery is the worst crash-during-round recovery time
	// observed; Bound is the asserted limit (10× the token interval).
	WorstRecovery time.Duration
	Bound         time.Duration
	// Events is the total DES event count over all schedule runs
	// (deterministic per base seed).
	Events uint64
	// Forged and Replayed total the adversary's wire-level injections
	// over all runs (zero on forgery-free sweeps).
	Forged   uint64
	Replayed uint64
	// Metrics merges the per-member registries of every schedule run.
	Metrics *obs.Metrics
	// Trace is the merged event stream (runs in index order) when
	// ChaosSweepConfig.Trace was set.
	Trace []obs.Event
	// Windows and Rounds merge the per-run telemetry series in run-index
	// order when ChaosSweepConfig.Telemetry was set. The Prometheus
	// exposition reads Metrics above — the sampler's cumulative registry
	// is the same event-derived data.
	Windows []telemetry.Window
	Rounds  []telemetry.Round
	// FlashCrowd holds the E17 rows when ChaosSweepConfig.FlashCrowd was
	// set.
	FlashCrowd []FlashCrowdRow
	// Gray holds the E20 rows when ChaosSweepConfig.GrayFailure was set.
	Gray []GrayStudyRow
}

// RunChaosSweep runs the sweep and the recovery-bound family.
func RunChaosSweep(cfg ChaosSweepConfig) (*ChaosSweepResult, error) {
	if cfg.Schedules == 0 {
		cfg.Schedules = 200
	}
	if cfg.RecoverySeeds == 0 {
		cfg.RecoverySeeds = 25
	}
	ti := cfg.Run.TokenInterval
	if ti == 0 {
		ti = 5 * time.Millisecond
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	if cfg.FlashCrowd {
		cfg.Gen.FlashCrowd = true
	}
	if cfg.GrayFailure {
		cfg.Gen.GrayFailure = true
	}

	res := &ChaosSweepResult{
		Schedules:  cfg.Schedules,
		KindCounts: map[chaos.Kind]int{},
		Bound:      10 * ti,
		Metrics:    obs.NewMetrics(),
	}

	// Every schedule replay is one pool job, seeded from (Seed, index).
	// Runs are collected by index and aggregated sequentially below, so
	// KindCounts, Failures order, every summed stat, the merged metrics,
	// and the merged trace are identical for any worker count.
	type chaosRun struct {
		res   *chaos.Result
		trace []obs.Event
	}
	pool := engine.New(cfg.Parallel)
	var done atomic.Int64
	runs, err := engine.Map(pool, cfg.Schedules, cfg.Seed,
		func(j engine.Job) (chaosRun, error) {
			sched, err := chaos.Generate(j.Seed, cfg.Gen)
			if err != nil {
				return chaosRun{}, err
			}
			rc := cfg.Run
			if cfg.Telemetry != nil {
				rc.Telemetry = cfg.Telemetry
			}
			var col *obs.Collector
			if cfg.Trace {
				col = obs.NewCollector()
				rc.Recorder = col
			}
			r, err := chaos.Run(sched, rc)
			if err != nil {
				return chaosRun{}, fmt.Errorf("harness: chaos seed %d: %w", j.Seed, err)
			}
			if n := done.Add(1); n%50 == 0 {
				progress(fmt.Sprintf("chaos sweep %d/%d schedules", n, cfg.Schedules))
			}
			out := chaosRun{res: r}
			if col != nil {
				out.trace = col.Events()
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	var traces [][]obs.Event
	var windows [][]telemetry.Window
	var rounds [][]telemetry.Round
	for _, run := range runs {
		r := run.res
		for _, k := range r.Kinds {
			res.KindCounts[k]++
		}
		if r.Failed() {
			res.Failures = append(res.Failures, r)
		}
		res.Delivered += r.Delivered
		res.Events += r.Events
		res.Forged += r.Forged
		res.Replayed += r.Replayed
		res.Stats.Add(r.Stats)
		res.Metrics.Merge(r.Metrics)
		traces = append(traces, run.trace)
		windows = append(windows, r.Windows)
		rounds = append(rounds, r.Rounds)
	}
	if cfg.Trace {
		res.Trace = obs.MergeRuns(traces)
	}
	if cfg.Telemetry != nil {
		res.Windows = telemetry.MergeWindows(windows)
		res.Rounds = telemetry.MergeRounds(rounds)
	}

	recov, err := engine.Map(pool, cfg.RecoverySeeds, cfg.Seed,
		func(j engine.Job) (time.Duration, error) {
			d, err := chaos.MeasureRecovery(j.Seed, 4, ti)
			if err != nil {
				return 0, fmt.Errorf("harness: recovery bound seed %d: %w", j.Seed, err)
			}
			return d, nil
		})
	if err != nil {
		return nil, err
	}
	for _, d := range recov {
		if d > res.WorstRecovery {
			res.WorstRecovery = d
		}
	}
	progress("recovery bound family done")

	if cfg.FlashCrowd {
		rows, err := RunFlashCrowd(FlashCrowdConfig{Seed: cfg.Seed, Parallel: cfg.Parallel})
		if err != nil {
			return nil, err
		}
		res.FlashCrowd = rows
		progress("flash-crowd study done")
	}

	if cfg.GrayFailure {
		rows, err := RunGrayStudy(GrayStudyConfig{Seed: cfg.Seed, Parallel: cfg.Parallel})
		if err != nil {
			return nil, err
		}
		res.Gray = rows
		progress("gray stability study done")
	}
	return res, nil
}

// Render prints the E13 summary table.
func (r *ChaosSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("Chaos sweep (E13): seeded fault schedules vs. the self-healing SP\n\n")
	fmt.Fprintf(&b, "schedules run            %10d\n", r.Schedules)
	fmt.Fprintf(&b, "  with crashes           %10d\n", r.KindCounts[chaos.KindCrash])
	fmt.Fprintf(&b, "  with partitions        %10d\n", r.KindCounts[chaos.KindPartition])
	fmt.Fprintf(&b, "  with drop/dup bursts   %10d\n", r.KindCounts[chaos.KindBurst])
	if n := r.KindCounts[chaos.KindCorrupt] + r.KindCounts[chaos.KindTruncate] + r.KindCounts[chaos.KindGarbage]; n > 0 {
		fmt.Fprintf(&b, "  with bit corruption    %10d\n", r.KindCounts[chaos.KindCorrupt])
		fmt.Fprintf(&b, "  with truncation        %10d\n", r.KindCounts[chaos.KindTruncate])
		fmt.Fprintf(&b, "  with garbage injection %10d\n", r.KindCounts[chaos.KindGarbage])
	}
	if n := r.KindCounts[chaos.KindForge] + r.KindCounts[chaos.KindReplay]; n > 0 {
		fmt.Fprintf(&b, "  with forged frames     %10d\n", r.KindCounts[chaos.KindForge])
		fmt.Fprintf(&b, "  with wire replays      %10d\n", r.KindCounts[chaos.KindReplay])
	}
	if n := r.KindCounts[chaos.KindFlashCrowd]; n > 0 {
		fmt.Fprintf(&b, "  with flash crowds      %10d\n", n)
	}
	if n := r.KindCounts[chaos.KindSlowNode] + r.KindCounts[chaos.KindLinkFault] + r.KindCounts[chaos.KindFlap]; n > 0 {
		fmt.Fprintf(&b, "  with slow nodes        %10d\n", r.KindCounts[chaos.KindSlowNode])
		fmt.Fprintf(&b, "  with asymmetric links  %10d\n", r.KindCounts[chaos.KindLinkFault])
		fmt.Fprintf(&b, "  with flapping links    %10d\n", r.KindCounts[chaos.KindFlap])
	}
	fmt.Fprintf(&b, "invariant violations     %10d\n", len(r.Failures))
	fmt.Fprintf(&b, "app deliveries           %10d\n", r.Delivered)
	fmt.Fprintf(&b, "switches completed       %10d\n", r.Stats.SwitchesCompleted)
	fmt.Fprintf(&b, "wedge timeouts           %10d\n", r.Stats.WedgeTimeouts)
	fmt.Fprintf(&b, "tokens regenerated       %10d\n", r.Stats.TokensRegenerated)
	fmt.Fprintf(&b, "switch rounds retried    %10d\n", r.Stats.SwitchesAborted)
	fmt.Fprintf(&b, "forced epoch advances    %10d\n", r.Stats.ForcedAdvances)
	if r.Stats.MalformedDropped > 0 || r.Stats.Quarantines > 0 {
		fmt.Fprintf(&b, "malformed pkts dropped   %10d\n", r.Stats.MalformedDropped)
		fmt.Fprintf(&b, "peers quarantined        %10d\n", r.Stats.Quarantines)
	}
	if r.Forged > 0 || r.Replayed > 0 || r.Stats.AuthFailed > 0 {
		fmt.Fprintf(&b, "forged frames injected   %10d\n", r.Forged)
		fmt.Fprintf(&b, "captured frames replayed %10d\n", r.Replayed)
		fmt.Fprintf(&b, "auth rejections          %10d\n", r.Stats.AuthFailed)
	}
	if r.Stats.Shed > 0 || r.Stats.Backpressured > 0 || r.Stats.RetriedSends > 0 {
		fmt.Fprintf(&b, "frames shed              %10d\n", r.Stats.Shed)
		fmt.Fprintf(&b, "backpressure pauses      %10d\n", r.Stats.Backpressured)
		fmt.Fprintf(&b, "sends retried            %10d\n", r.Stats.RetriedSends)
	}
	if r.Stats.SuspicionsRaised > 0 || r.Stats.FlapPenalties > 0 || r.Stats.DegradedSkips > 0 {
		fmt.Fprintf(&b, "graded suspicions        %10d\n", r.Stats.SuspicionsRaised)
		fmt.Fprintf(&b, "graded clears            %10d\n", r.Stats.SuspicionsCleared)
		fmt.Fprintf(&b, "flap penalties           %10d\n", r.Stats.FlapPenalties)
		fmt.Fprintf(&b, "degraded-mode skips      %10d\n", r.Stats.DegradedSkips)
		fmt.Fprintf(&b, "peers re-included        %10d\n", r.Stats.Reincludes)
	}
	fmt.Fprintf(&b, "worst in-round recovery  %10s (bound %s)\n",
		FormatMillis(r.WorstRecovery), FormatMillis(r.Bound))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\nFAIL seed %d (%v):\n", f.Seed, f.Kinds)
		for _, v := range f.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	if len(r.FlashCrowd) > 0 {
		b.WriteString("\n")
		b.WriteString(RenderFlashCrowd(r.FlashCrowd))
	}
	if len(r.Gray) > 0 {
		b.WriteString("\n")
		b.WriteString(RenderGrayStudy(r.Gray))
	}
	return b.String()
}
