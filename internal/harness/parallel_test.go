package harness

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core/switching"
	"repro/internal/proto"
)

// TestFigure2HybridThresholdOrderIndependent is the regression test for
// the order-dependent hybrid threshold: RunFigure2 used to seed each
// hybrid point's oracle with the crossover of the partial rows
// accumulated so far, so hybrid stats depended on sweep execution
// order. With the two-phase sweep, the hybrid stats must be identical
// whether the points run in order 1..N, reversed, or in parallel.
func TestFigure2HybridThresholdOrderIndependent(t *testing.T) {
	cfg := Figure2Config{Run: shortRun(), MaxSenders: 3, IncludeHybrid: true, Parallel: 1}
	forward, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if forward.HybridThreshold != forward.CrossoverGuess() {
		t.Errorf("threshold %v not derived from the complete curves (guess %v)",
			forward.HybridThreshold, forward.CrossoverGuess())
	}

	// Reversed: replay the hybrid points N..1 by hand with the sweep's
	// threshold; every point must reproduce the sweep's stats exactly.
	for i := cfg.MaxSenders - 1; i >= 0; i-- {
		rc := cfg.Run
		rc.ActiveSenders = forward.Rows[i].ActiveSenders
		r, err := runHybridPoint(rc, forward.HybridThreshold)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats != forward.Rows[i].Hybrid {
			t.Errorf("reversed order diverged at %d senders: %+v vs %+v",
				rc.ActiveSenders, r.Stats, forward.Rows[i].Hybrid)
		}
	}

	// Parallel: the whole sweep on 8 workers must be deeply equal.
	cfg.Parallel = 8
	par, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forward, par) {
		t.Errorf("parallel sweep diverged:\n%+v\nvs\n%+v", forward, par)
	}
}

// TestFigure2JSONByteIdenticalAcrossWorkers is the engine-determinism
// acceptance check at test scale: the BENCH_figure2.json bytes (minus
// the wall-clock timing section) are identical at -parallel 1 and
// -parallel 8.
func TestFigure2JSONByteIdenticalAcrossWorkers(t *testing.T) {
	encode := func(parallel int) []byte {
		cfg := Figure2Config{Run: shortRun(), MaxSenders: 3, IncludeHybrid: true, Parallel: parallel}
		res, err := RunFigure2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		art := NewBenchFigure2(res)
		art.SetTiming(123*time.Millisecond, parallel) // differs per run on purpose
		art.ScrubTiming()
		b, err := EncodeBench(art)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq, par := encode(1), encode(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("figure2 JSON differs across worker counts:\n%s\nvs\n%s", seq, par)
	}
}

// TestChaosSweepParallelDeterminismAndFailurePropagation runs the chaos
// sweep through the parallel path twice: once healthy, once with a
// starved settle/drain window that makes every schedule violate the
// liveness invariant. The aggregate must be identical across worker
// counts, and the injected failures must come back through the parallel
// path (cmd/switchbench turns a non-empty Failures into a non-zero
// exit).
func TestChaosSweepParallelDeterminismAndFailurePropagation(t *testing.T) {
	cfg := DefaultChaosSweepConfig()
	cfg.Schedules = 6
	cfg.RecoverySeeds = 3

	cfg.Parallel = 1
	seq, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	par, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Errorf("chaos sweep diverged across worker counts:\n%s\nvs\n%s", seq.Render(), par.Render())
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("chaos aggregates diverged: %+v vs %+v", seq, par)
	}

	// Starve the post-heal window: probes get (effectively) no time to
	// arrive, so liveness must be violated — and those violations must
	// survive the trip through the worker pool.
	bad := cfg
	bad.Run.Settle = time.Nanosecond
	bad.Run.Drain = time.Nanosecond
	bad.Parallel = 4
	res, err := RunChaosSweep(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("starved sweep reported no invariant failures through the parallel path")
	}
	bad.Parallel = 1
	resSeq, err := RunChaosSweep(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(resSeq.Failures) != len(res.Failures) {
		t.Errorf("failure count differs across worker counts: %d vs %d",
			len(resSeq.Failures), len(res.Failures))
	}
}

// TestChaosCorruptionSweepByteIdenticalAcrossWorkers is E15's
// determinism gate: a corruption-enabled sweep — bit flips, truncation,
// garbage floods, defensive ingress and quarantine all active — must
// render the same table and encode a byte-identical artifact (timing
// scrubbed) for 1 and 4 workers, and must actually exercise the
// hardening counters so the comparison is not vacuous.
func TestChaosCorruptionSweepByteIdenticalAcrossWorkers(t *testing.T) {
	sweep := func(parallel int) (*ChaosSweepResult, []byte) {
		cfg := DefaultChaosSweepConfig()
		cfg.Schedules = 20
		cfg.RecoverySeeds = 3
		cfg.Gen.Corruption = true
		cfg.Parallel = parallel
		res, err := RunChaosSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		art := NewBenchChaos(cfg.Seed, res)
		art.SetTiming(time.Duration(parallel)*time.Millisecond, parallel) // differs per run on purpose
		art.ScrubTiming()
		b, err := EncodeBench(art)
		if err != nil {
			t.Fatal(err)
		}
		return res, b
	}
	seq, seqJSON := sweep(1)
	par, parJSON := sweep(4)
	if len(seq.Failures) != 0 {
		for _, f := range seq.Failures {
			t.Errorf("seed %d (%v): %v", f.Seed, f.Kinds, f.Violations)
		}
	}
	if seq.Render() != par.Render() {
		t.Errorf("corruption sweep table diverged across worker counts:\n%s\nvs\n%s", seq.Render(), par.Render())
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("corruption sweep JSON differs across worker counts:\n%s\nvs\n%s", seqJSON, parJSON)
	}
	if seq.Stats.MalformedDropped == 0 {
		t.Error("corruption sweep dropped no malformed packets — hardening not exercised")
	}
	if n := seq.KindCounts[chaos.KindCorrupt] + seq.KindCounts[chaos.KindTruncate] + seq.KindCounts[chaos.KindGarbage]; n == 0 {
		t.Error("corruption sweep generated no corruption faults")
	}
}

// TestChaosFlashCrowdSweepByteIdenticalAcrossWorkers is E17's
// determinism gate: a flash-crowd-enabled sweep — sender spikes against
// the bounded-queue overload layer, plus the E17 latency/shed study —
// must render the same table and encode a byte-identical artifact
// (timing scrubbed) for 1 and 4 workers, and must actually exercise the
// overload counters so the comparison is not vacuous.
func TestChaosFlashCrowdSweepByteIdenticalAcrossWorkers(t *testing.T) {
	sweep := func(parallel int) (*ChaosSweepResult, []byte) {
		cfg := DefaultChaosSweepConfig()
		cfg.Schedules = 20
		cfg.RecoverySeeds = 3
		cfg.FlashCrowd = true
		cfg.Parallel = parallel
		res, err := RunChaosSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		art := NewBenchChaos(cfg.Seed, res)
		art.SetTiming(time.Duration(parallel)*time.Millisecond, parallel) // differs per run on purpose
		art.ScrubTiming()
		b, err := EncodeBench(art)
		if err != nil {
			t.Fatal(err)
		}
		return res, b
	}
	seq, seqJSON := sweep(1)
	par, parJSON := sweep(4)
	if len(seq.Failures) != 0 {
		for _, f := range seq.Failures {
			t.Errorf("seed %d (%v): %v", f.Seed, f.Kinds, f.Violations)
		}
	}
	if seq.Render() != par.Render() {
		t.Errorf("flash-crowd sweep table diverged across worker counts:\n%s\nvs\n%s", seq.Render(), par.Render())
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("flash-crowd sweep JSON differs across worker counts:\n%s\nvs\n%s", seqJSON, parJSON)
	}
	if seq.KindCounts[chaos.KindFlashCrowd] == 0 {
		t.Error("flash-crowd sweep generated no flash-crowd faults")
	}
	if seq.Stats.Shed == 0 {
		t.Error("flash-crowd sweep shed nothing — the overload layer was not exercised")
	}
	if len(seq.FlashCrowd) == 0 {
		t.Error("flash-crowd sweep produced no E17 rows")
	}
}

// TestChaosGraySweepByteIdenticalAcrossWorkers is E20's determinism
// gate: a gray-failure-enabled sweep — slow nodes, asymmetric link
// faults, flapping links, the adaptive detector and the E20 stability
// study all active — must render the same table and encode a
// byte-identical artifact (timing scrubbed) for 1 and 4 workers, and
// must actually exercise the gray counters so the comparison is not
// vacuous.
func TestChaosGraySweepByteIdenticalAcrossWorkers(t *testing.T) {
	sweep := func(parallel int) (*ChaosSweepResult, []byte) {
		cfg := DefaultChaosSweepConfig()
		cfg.Schedules = 20
		cfg.RecoverySeeds = 3
		cfg.GrayFailure = true
		cfg.Parallel = parallel
		res, err := RunChaosSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		art := NewBenchChaos(cfg.Seed, res)
		art.SetTiming(time.Duration(parallel)*time.Millisecond, parallel) // differs per run on purpose
		art.ScrubTiming()
		b, err := EncodeBench(art)
		if err != nil {
			t.Fatal(err)
		}
		return res, b
	}
	seq, seqJSON := sweep(1)
	par, parJSON := sweep(4)
	if len(seq.Failures) != 0 {
		for _, f := range seq.Failures {
			t.Errorf("seed %d (%v): %v", f.Seed, f.Kinds, f.Violations)
		}
	}
	if seq.Render() != par.Render() {
		t.Errorf("gray sweep table diverged across worker counts:\n%s\nvs\n%s", seq.Render(), par.Render())
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("gray sweep JSON differs across worker counts:\n%s\nvs\n%s", seqJSON, parJSON)
	}
	if n := seq.KindCounts[chaos.KindSlowNode] + seq.KindCounts[chaos.KindLinkFault] + seq.KindCounts[chaos.KindFlap]; n == 0 {
		t.Error("gray sweep generated no gray-failure faults")
	}
	if seq.Stats.SuspicionsRaised == 0 {
		t.Error("gray sweep raised no graded suspicions — the adaptive detector was not exercised")
	}
	if len(seq.Gray) == 0 {
		t.Error("gray sweep produced no E20 rows")
	}
}

// TestGrayStudyDampingReducesChurn pins E20's headline result: under
// fast flapping, the adaptive arm (graded suspicion + flap damping)
// must suffer strictly less healthy-member recovery churn than the
// fixed detector, the damping machinery must actually engage
// (penalties, degraded-mode skips, and re-inclusions all non-zero),
// and the adaptive arm's crash-detection latency must not be worse
// than the fixed arm's by more than one heartbeat — the stability is
// not bought with slower detection of genuine crashes.
func TestGrayStudyDampingReducesChurn(t *testing.T) {
	rows, err := RunGrayStudy(GrayStudyConfig{Seed: 1, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	byArm := map[bool]GrayStudyRow{}
	fastest := rows[0].Period
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%v/%s: %d invariant violations", r.Period, detectorName(r.Fixed), r.Violations)
		}
		if r.Period < fastest {
			fastest = r.Period
		}
	}
	for _, r := range rows {
		if r.Period == fastest {
			byArm[r.Fixed] = r
		}
	}
	fixed, adaptive := byArm[true], byArm[false]
	if adaptive.TokenRegens*2 >= fixed.TokenRegens {
		t.Errorf("adaptive arm regenerated %d tokens vs fixed %d at %v flapping — damping bought < 2x",
			adaptive.TokenRegens, fixed.TokenRegens, fastest)
	}
	if adaptive.SwitchAborts > fixed.SwitchAborts {
		t.Errorf("adaptive arm aborted %d switches vs fixed %d at %v flapping",
			adaptive.SwitchAborts, fixed.SwitchAborts, fastest)
	}
	if adaptive.FlapPenalties == 0 || adaptive.DegradedSkips == 0 || adaptive.Reincludes == 0 {
		t.Errorf("damping never engaged: penalties=%d skips=%d reincludes=%d",
			adaptive.FlapPenalties, adaptive.DegradedSkips, adaptive.Reincludes)
	}
	if fixed.FlapPenalties != 0 || fixed.DegradedSkips != 0 {
		t.Errorf("fixed arm ran damping machinery: penalties=%d skips=%d",
			fixed.FlapPenalties, fixed.DegradedSkips)
	}
	if adaptive.DetectLatency > fixed.DetectLatency+5*time.Millisecond {
		t.Errorf("adaptive crash detection p50 %v vs fixed %v — stability bought with slow detection",
			adaptive.DetectLatency, fixed.DetectLatency)
	}
}

// TestOverheadAndP2PSweepsParallelDeterminism covers the remaining
// drivers: rows are identical for 1 and 4 workers.
func TestOverheadAndP2PSweepsParallelDeterminism(t *testing.T) {
	ocfg := DefaultOverheadConfig()
	ocfg.Run.Warmup = 300 * time.Millisecond
	ocfg.Run.Measure = time.Second
	ocfg.Run.Drain = 2 * time.Second
	ocfg.SwitchAt = 600 * time.Millisecond
	ocfg.Parallel = 1
	oseq, err := RunOverheadSweep(ocfg, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	ocfg.Parallel = 4
	opar, err := RunOverheadSweep(ocfg, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oseq, opar) {
		t.Errorf("overhead sweep diverged:\n%+v\nvs\n%+v", oseq, opar)
	}

	pcfg := DefaultP2PConfig()
	pcfg.RunFor = 300 * time.Millisecond
	pcfg.Offered = 50
	pcfg.Parallel = 1
	pseq, err := RunP2PSweep(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg.Parallel = 4
	ppar, err := RunP2PSweep(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pseq, ppar) {
		t.Errorf("p2p sweep diverged:\n%+v\nvs\n%+v", pseq, ppar)
	}

	hcfg := DefaultHysteresisConfig()
	hcfg.Run.Warmup = 300 * time.Millisecond
	hcfg.Run.Measure = 3 * time.Second
	hcfg.Run.Drain = 2 * time.Second
	hcfg.LoadPeriod = time.Second
	hcfg.Parallel = 1
	hseq, err := RunHysteresisComparison(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	hcfg.Parallel = 4
	hpar, err := RunHysteresisComparison(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hseq, hpar) {
		t.Errorf("hysteresis comparison diverged:\n%+v\nvs\n%+v", hseq, hpar)
	}
}

// TestCollectorPrunesSendTimes covers the collector memory fix: entries
// leave the map once the whole group has delivered the message, or on
// the first delivery of a message outside the measurement window.
func TestCollectorPrunesSendTimes(t *testing.T) {
	rc := DefaultRunConfig().withDefaults() // Group=10, Warmup=2s, Measure=10s
	c := newCollector(rc)

	// In-window message: pruned after the full group delivered it.
	id := proto.MakeMsgID(1, 1)
	c.recordSend(id, 3*time.Second)
	for i := 0; i < rc.Group; i++ {
		if c.inFlight() != 1 {
			t.Fatalf("in-flight = %d before delivery %d, want 1", c.inFlight(), i)
		}
		c.onDeliver(3*time.Second+time.Duration(i+1)*time.Millisecond, id)
	}
	if c.inFlight() != 0 {
		t.Errorf("in-flight = %d after %d deliveries, want 0", c.inFlight(), rc.Group)
	}
	if len(c.samples) != rc.Group {
		t.Errorf("samples = %d, want %d", len(c.samples), rc.Group)
	}

	// Warmup message: pruned on first delivery, no sample.
	warm := proto.MakeMsgID(1, 2)
	c.recordSend(warm, time.Second)
	c.onDeliver(1100*time.Millisecond, warm)
	if c.inFlight() != 0 {
		t.Errorf("warmup entry retained: in-flight = %d", c.inFlight())
	}
	// Post-window message: likewise.
	late := proto.MakeMsgID(1, 3)
	c.recordSend(late, rc.Warmup+rc.Measure+time.Second)
	c.onDeliver(rc.Warmup+rc.Measure+1100*time.Millisecond, late)
	if c.inFlight() != 0 {
		t.Errorf("post-window entry retained: in-flight = %d", c.inFlight())
	}
	if len(c.samples) != rc.Group {
		t.Errorf("out-of-window deliveries sampled: %d", len(c.samples))
	}

	// Deliveries of unknown IDs stay a no-op after pruning.
	c.onDeliver(4*time.Second, warm)
	if len(c.samples) != rc.Group || c.inFlight() != 0 {
		t.Error("delivery after pruning changed state")
	}
}

// TestSwitchedRunLeavesNoInFlightEntries is the end-to-end flavor:
// after a full run with drain, every measured message has been
// delivered to the whole group, so the collector map must be empty
// rather than holding every message ever sent.
func TestSwitchedRunLeavesNoInFlightEntries(t *testing.T) {
	rc := shortRun()
	rc.ActiveSenders = 2
	run, err := NewSwitchedRun(rc, switching.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run.StartWorkload()
	res := run.Finish()
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if n := run.Collector.inFlight(); n != 0 {
		t.Errorf("collector retains %d entries after a drained run", n)
	}
}

// TestChaosForgerySweepByteIdenticalAcrossWorkers is E16's determinism
// gate: a forgery-enabled sweep — crafted frames, the wire-replay tap,
// epoch-keyed authenticated ingress, quarantine — must render the same
// table and encode a byte-identical artifact (timing scrubbed) for 1
// and 4 workers, and must actually exercise the authentication counters
// so the comparison is not vacuous.
func TestChaosForgerySweepByteIdenticalAcrossWorkers(t *testing.T) {
	sweep := func(parallel int) (*ChaosSweepResult, []byte) {
		cfg := DefaultChaosSweepConfig()
		cfg.Schedules = 20
		cfg.RecoverySeeds = 3
		cfg.Gen.Corruption = true
		cfg.Gen.Forgery = true
		cfg.Parallel = parallel
		res, err := RunChaosSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		art := NewBenchChaos(cfg.Seed, res)
		art.SetTiming(time.Duration(parallel)*time.Millisecond, parallel) // differs per run on purpose
		art.ScrubTiming()
		b, err := EncodeBench(art)
		if err != nil {
			t.Fatal(err)
		}
		return res, b
	}
	seq, seqJSON := sweep(1)
	par, parJSON := sweep(4)
	if len(seq.Failures) != 0 {
		for _, f := range seq.Failures {
			t.Errorf("seed %d (%v): %v", f.Seed, f.Kinds, f.Violations)
		}
	}
	if seq.Render() != par.Render() {
		t.Errorf("forgery sweep table diverged across worker counts:\n%s\nvs\n%s", seq.Render(), par.Render())
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("forgery sweep JSON differs across worker counts:\n%s\nvs\n%s", seqJSON, parJSON)
	}
	if seq.Forged == 0 || seq.Replayed == 0 {
		t.Errorf("forgery sweep injected %d forged and %d replayed frames — adversary never acted",
			seq.Forged, seq.Replayed)
	}
	if seq.Stats.AuthFailed == 0 {
		t.Error("forgery sweep rejected nothing at the auth boundary — authenticated ingress not exercised")
	}
	if n := seq.KindCounts[chaos.KindForge] + seq.KindCounts[chaos.KindReplay]; n == 0 {
		t.Error("forgery sweep generated no forgery faults")
	}
}
