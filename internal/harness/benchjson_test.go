package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core/switching"
)

func TestBenchStatsMillis(t *testing.T) {
	s := toBenchStats(LatencyStats{Count: 3, Mean: 1500 * time.Microsecond, P50: time.Millisecond,
		P95: 2 * time.Millisecond, P99: 3 * time.Millisecond, Max: 4 * time.Millisecond})
	if s.Count != 3 || s.MeanMS != 1.5 || s.P50MS != 1 || s.MaxMS != 4 {
		t.Errorf("toBenchStats = %+v", s)
	}
}

func TestBenchMetaTimingAndScrub(t *testing.T) {
	m := benchMeta("figure2", 7, 1_000_000)
	if m.Schema != "switchbench/figure2" || m.Version != BenchSchemaVersion || m.Seed != 7 {
		t.Errorf("meta = %+v", m)
	}
	m.SetTiming(2*time.Second, 4)
	if m.Timing.WallMS != 2000 || m.Timing.Parallel != 4 || m.Timing.EventsPerSec != 500_000 {
		t.Errorf("timing = %+v", m.Timing)
	}
	m.ScrubTiming()
	if m.Timing != (BenchTiming{}) {
		t.Errorf("scrubbed timing = %+v", m.Timing)
	}
	// Zero wall must not divide by zero.
	m.SetTiming(0, 1)
	if m.Timing.EventsPerSec != 0 {
		t.Errorf("events/sec at zero wall = %v", m.Timing.EventsPerSec)
	}
}

func TestEncodeBenchShape(t *testing.T) {
	res := &Figure2Result{
		Rows: []Figure2Row{{ActiveSenders: 1,
			Sequencer: LatencyStats{Count: 1, Mean: time.Millisecond},
			Token:     LatencyStats{Count: 1, Mean: 2 * time.Millisecond},
			Hybrid:    LatencyStats{Count: 1, Mean: time.Millisecond},
			Events:    42}},
		CrossoverAfter:  0,
		IncludedHybrid:  true,
		HybridThreshold: 5.5,
		Run:             DefaultRunConfig(),
	}
	art := NewBenchFigure2(res)
	if art.Events != 42 || art.Group != 10 || art.HybridThreshold != 5.5 {
		t.Errorf("artifact = %+v", art)
	}
	b, err := EncodeBench(art)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{`"schema": "switchbench/figure2"`,
		fmt.Sprintf(`"version": %d`, BenchSchemaVersion),
		`"rows"`, `"hybrid"`, `"hybrid_threshold": 5.5`, `"timing"`, `"events": 42`,
		`"stddev_ms"`, `"min_ms"`} {
		if !strings.Contains(out, want) {
			t.Errorf("encoded artifact missing %s:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("artifact missing trailing newline")
	}
	// Round-trips as valid JSON.
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if _, ok := m["timing"]; !ok {
		t.Error("timing section not at top level")
	}
}

func TestNewBenchChaosCounts(t *testing.T) {
	res := &ChaosSweepResult{
		Schedules: 5,
		KindCounts: map[chaos.Kind]int{
			chaos.KindCrash: 2, chaos.KindPartition: 3, chaos.KindBurst: 1,
		},
		Failures: []*chaos.Result{{Seed: 9, Kinds: []chaos.Kind{chaos.KindCrash},
			Violations: []string{"liveness: probe lost"}}},
		Delivered:     100,
		WorstRecovery: 20 * time.Millisecond,
		Bound:         50 * time.Millisecond,
		Events:        1234,
	}
	art := NewBenchChaos(3, res)
	if art.Passed != 4 || art.Failed != 1 || art.WithCrashes != 2 || art.WithPartitions != 3 {
		t.Errorf("chaos artifact = %+v", art)
	}
	if art.WorstRecoveryMS != 20 || art.RecoveryBoundMS != 50 || art.Events != 1234 {
		t.Errorf("chaos artifact bounds = %+v", art)
	}
	if len(art.Failures) != 1 || art.Failures[0].Seed != 9 || art.Failures[0].Kinds[0] != "crash" {
		t.Errorf("chaos failures = %+v", art.Failures)
	}
	b, err := EncodeBench(art)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"failures"`) {
		t.Error("failing sweep artifact omits failures")
	}
	// A passing sweep omits the failures key entirely.
	res.Failures = nil
	b, err = EncodeBench(NewBenchChaos(3, res))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"failures"`) {
		t.Error("passing sweep artifact includes failures key")
	}
}

// TestBenchChaosForgeryShape pins the v4 schema compatibility contract
// both ways: a forgery sweep's artifact carries the new forgery/auth
// keys, while a forgery-free sweep's artifact omits every one of them —
// byte-wise it keeps its v3 shape (modulo the version number), so
// existing artifact diffing across the repo's history still lines up.
func TestBenchChaosForgeryShape(t *testing.T) {
	forgeryRes := &ChaosSweepResult{
		Schedules: 5,
		KindCounts: map[chaos.Kind]int{
			chaos.KindCrash: 2, chaos.KindForge: 3, chaos.KindReplay: 2,
		},
		Delivered: 100,
		Forged:    17,
		Replayed:  4,
		Stats:     switching.Stats{AuthFailed: 29, Quarantines: 1},
	}
	art := NewBenchChaos(3, forgeryRes)
	if art.WithForgery != 3 || art.WithReplay != 2 || art.ForgedFrames != 17 ||
		art.ReplayedFrames != 4 || art.Switching.AuthFailed != 29 {
		t.Errorf("forgery artifact = %+v", art)
	}
	b, err := EncodeBench(art)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"with_forgery": 3`, `"with_replay": 2`,
		`"forged_frames": 17`, `"replayed_frames": 4`, `"auth_failed": 29`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("forgery artifact missing %s:\n%s", want, b)
		}
	}

	// Forgery-free sweep: none of the v4 keys may appear.
	legacyRes := &ChaosSweepResult{
		Schedules: 5,
		KindCounts: map[chaos.Kind]int{
			chaos.KindCrash: 2, chaos.KindPartition: 3,
		},
		Delivered: 100,
		Stats:     switching.Stats{SwitchesCompleted: 7},
	}
	b, err = EncodeBench(NewBenchChaos(3, legacyRes))
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"with_forgery", "with_replay",
		"forged_frames", "replayed_frames", "auth_failed",
		"with_corruption", "malformed_dropped", "quarantines"} {
		if strings.Contains(string(b), banned) {
			t.Errorf("forgery-free artifact leaks key %q:\n%s", banned, b)
		}
	}
}
