package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/harness/engine"
	"repro/internal/ids"
	"repro/internal/obs"
)

// This file is E20: the gray-failure stability study. A flapping link
// — blocked for one half-cycle, open for the next — is driven at a
// swept cadence against two detector arms: the legacy fixed-timeout
// failure detector, and the adaptive layer (graded phi-accrual
// suspicion plus BGP-style flap damping) the chaos runner enables on
// gray schedules. The study reports switch-round aborts and token
// regenerations per arm and cadence, answering the ROADMAP's question:
// does damping actually buy stability under membership flapping — and
// the companion crash-detection-latency measurement shows the price is
// not paid in slower detection of genuine crashes.

// GrayStudyConfig parameterizes the study.
type GrayStudyConfig struct {
	Seed int64
	// Periods are the flap half-cycles to sweep (default 30, 45,
	// 90ms). Every blocked half-cycle outlasts the detector timeout
	// (25ms at the runner's 5ms heartbeat), so each cycle produces a
	// full suspect→restore round trip; shorter periods flap faster,
	// and the damping half-life draws the line — fast cadences
	// accumulate penalty faster than it decays and get suppressed,
	// slow ones decay between flaps and stay undamped (tolerated).
	Periods []time.Duration
	// Schedules is how many seeded schedules each (period, arm) cell
	// runs (default 12). The same schedule seeds are replayed in every
	// cell, so rows differ only by cadence and detector.
	Schedules int
	// DetectSeeds is how many crash-detection-latency runs each arm
	// measures (default 12).
	DetectSeeds int
	// Parallel is the sweep's worker count (<= 0 uses GOMAXPROCS); the
	// rows are identical for any value.
	Parallel int
}

func (c GrayStudyConfig) withDefaults() GrayStudyConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Periods) == 0 {
		c.Periods = []time.Duration{30 * time.Millisecond, 45 * time.Millisecond, 90 * time.Millisecond}
	}
	if c.Schedules == 0 {
		c.Schedules = 12
	}
	if c.DetectSeeds == 0 {
		c.DetectSeeds = 12
	}
	return c
}

// GrayStudyRow is one (flap period, detector arm) cell.
type GrayStudyRow struct {
	// Period is the flap half-cycle; Fixed selects the legacy detector
	// arm (false = adaptive suspicion + flap damping).
	Period time.Duration
	Fixed  bool
	// Schedules is how many seeded runs the cell aggregates.
	Schedules int
	// SwitchAborts and TokenRegens total the recovery churn the
	// *healthy* members (everyone but the flapping victim) suffered
	// over the cell's runs — the stability measure the study compares
	// across arms at each cadence. VictimRegens counts the flapping
	// member's own regenerations separately: once damped it is routed
	// around without being told, so it blindly wedges and regenerates
	// on a doubling backoff; that bounded, self-inflicted churn is not
	// disruption felt by the group.
	SwitchAborts uint64
	TokenRegens  uint64
	VictimRegens uint64
	// FlapPenalties/DegradedSkips/Reincludes are the damping layer's
	// own counters (zero in the fixed arm).
	FlapPenalties uint64
	DegradedSkips uint64
	Reincludes    uint64
	// Delivered totals application deliveries; Violations counts runs
	// that breached any always-on invariant (zero on a passing study).
	Delivered  int
	Violations int
	// DetectLatency is the arm's median crash-detection latency
	// (replicated across the arm's rows; it depends on the detector,
	// not the flap cadence).
	DetectLatency time.Duration
	Events        uint64
}

// grayStudySchedule expands a seed into the cell's schedule: the
// legacy generator's traffic and switch requests (no legacy faults),
// plus a flapping member — every link out of member 2 blocks and
// reopens in lockstep at the requested cadence from 0.1×horizon to
// 0.7×horizon. This is the scenario flap damping exists for: during
// each blocked phase the member looks dead to the whole group (and
// black-holes the token its clean inbound links still deliver to it);
// on each reopen a fixed detector re-admits it into the ring just in
// time for the next blocked phase to lose the token again. Damping
// instead parks the member in degraded mode after a few cycles and
// re-includes it once the link holds still. Every cell sees the same
// seeded workload; only the cadence and the detector arm vary.
// grayVictim is the flapping member of every study schedule — a
// non-sequencer, so the disrupted member never owns a sub-protocol's
// total order.
const grayVictim = ids.ProcID(2)

func grayStudySchedule(seed int64, period time.Duration) (chaos.Schedule, error) {
	sched, err := chaos.Generate(seed, chaos.GenConfig{})
	if err != nil {
		return chaos.Schedule{}, err
	}
	const victim = grayVictim
	// Stretch the run well past the generated 400ms horizon: the flap
	// needs enough cycles for damping to engage *and* then prove it
	// holds (the generated workload simply finishes early). The window
	// closes 300ms before the horizon so penalties decay past reuse and
	// the victim is re-included before the post-heal probes.
	sched.Horizon = 1600 * time.Millisecond
	sched.Events = nil
	for p := 0; p < sched.N; p++ {
		if ids.ProcID(p) == victim {
			continue
		}
		sched.Events = append(sched.Events, chaos.Event{
			At:     60 * time.Millisecond,
			Kind:   chaos.KindFlap,
			From:   victim,
			Target: ids.ProcID(p),
			Until:  sched.Horizon - 300*time.Millisecond,
			Period: period,
		})
	}
	return sched, nil
}

// RunGrayStudy sweeps the (period, arm) grid. Each cell replays the
// same seeded schedules, so the aggregated rows are deterministic and
// identical for any worker count.
func RunGrayStudy(cfg GrayStudyConfig) ([]GrayStudyRow, error) {
	cfg = cfg.withDefaults()
	pool := engine.New(cfg.Parallel)

	// Detection latency per arm first: one seeded family, both
	// detectors measured on the same seeds.
	type detect struct{ fixed, adaptive time.Duration }
	lat, err := engine.Map(pool, cfg.DetectSeeds, cfg.Seed,
		func(j engine.Job) (detect, error) {
			f, err := chaos.MeasureDetection(j.Seed, 4, 5*time.Millisecond, true)
			if err != nil {
				return detect{}, fmt.Errorf("harness: detect (fixed) seed %d: %w", j.Seed, err)
			}
			a, err := chaos.MeasureDetection(j.Seed, 4, 5*time.Millisecond, false)
			if err != nil {
				return detect{}, fmt.Errorf("harness: detect (adaptive) seed %d: %w", j.Seed, err)
			}
			return detect{fixed: f, adaptive: a}, nil
		})
	if err != nil {
		return nil, err
	}
	var fixedLat, adaptiveLat []time.Duration
	for _, d := range lat {
		fixedLat = append(fixedLat, d.fixed)
		adaptiveLat = append(adaptiveLat, d.adaptive)
	}
	detectP50 := map[bool]time.Duration{
		true:  Summarize(fixedLat).P50,
		false: Summarize(adaptiveLat).P50,
	}

	// The grid: one pool job per (period, arm) cell; each cell replays
	// its schedules sequentially inside the job (a cell is a single
	// aggregation, and the grid is small).
	type cell struct {
		period time.Duration
		fixed  bool
	}
	var cells []cell
	for _, p := range cfg.Periods {
		cells = append(cells, cell{p, true}, cell{p, false})
	}
	return engine.Map(pool, len(cells), cfg.Seed,
		func(j engine.Job) (GrayStudyRow, error) {
			cl := cells[j.Index]
			row := GrayStudyRow{
				Period:        cl.period,
				Fixed:         cl.fixed,
				Schedules:     cfg.Schedules,
				DetectLatency: detectP50[cl.fixed],
			}
			for i := 0; i < cfg.Schedules; i++ {
				seed := engine.DeriveSeed(cfg.Seed, i)
				sched, err := grayStudySchedule(seed, cl.period)
				if err != nil {
					return GrayStudyRow{}, fmt.Errorf("harness: gray study seed %d: %w", seed, err)
				}
				res, err := chaos.Run(sched, chaos.RunConfig{FixedDetector: cl.fixed})
				if err != nil {
					return GrayStudyRow{}, fmt.Errorf("harness: gray study seed %d: %w", seed, err)
				}
				if res.Failed() {
					row.Violations++
				}
				for _, p := range res.Live {
					if p == grayVictim {
						row.VictimRegens += res.Metrics.Counter(p, obs.KeyTokensRegenerated)
						continue
					}
					row.SwitchAborts += res.Metrics.Counter(p, obs.KeySwitchesAborted)
					row.TokenRegens += res.Metrics.Counter(p, obs.KeyTokensRegenerated)
				}
				row.FlapPenalties += res.Stats.FlapPenalties
				row.DegradedSkips += res.Stats.DegradedSkips
				row.Reincludes += res.Stats.Reincludes
				row.Delivered += res.Delivered
				row.Events += res.Events
			}
			return row, nil
		})
}

// detectorName renders an arm.
func detectorName(fixed bool) string {
	if fixed {
		return "fixed"
	}
	return "adaptive"
}

// RenderGrayStudy prints the E20 table.
func RenderGrayStudy(rows []GrayStudyRow) string {
	var b strings.Builder
	b.WriteString("Gray-failure stability (E20): flap cadence vs. detector arms\n\n")
	b.WriteString("period   detector   aborts   regens   victim   penalties   skips   reincl   delivered   viol   detect p50\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5dms   %-8s   %6d   %6d   %6d   %9d   %5d   %6d   %9d   %4d   %10s\n",
			r.Period.Milliseconds(), detectorName(r.Fixed),
			r.SwitchAborts, r.TokenRegens, r.VictimRegens,
			r.FlapPenalties, r.DegradedSkips, r.Reincludes,
			r.Delivered, r.Violations,
			FormatMillis(r.DetectLatency))
	}
	b.WriteString("\nthe same seeded schedules run in every cell: every link out of one\n")
	b.WriteString("member flaps at the row's half-cycle, legacy detector vs. adaptive\n")
	b.WriteString("suspicion + flap damping. aborts/regens count the healthy members'\n")
	b.WriteString("churn; victim is the flapping member's own (backoff-bounded) regens\n")
	b.WriteString("while routed around. detect p50 is each arm's median latency to\n")
	b.WriteString("suspect a genuinely crashed member on a clean network.\n")
	return b.String()
}
