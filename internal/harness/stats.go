// Package harness drives the paper's evaluation (§7): workload
// generation, latency measurement, and the experiment loops that
// regenerate Figure 2, the switching-overhead measurement, and the
// oscillation/hysteresis study. See DESIGN.md §4 for the experiment
// index.
package harness

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// LatencyStats summarizes a sample of delivery latencies. It contains
// no pointers (the histogram is a fixed-shape value), so results stay
// comparable with == — the property the worker-count determinism tests
// rely on.
type LatencyStats struct {
	Count         int
	Mean          time.Duration
	StdDev        time.Duration
	Min           time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
	// Hist is the log-scaled distribution of the same sample, exported
	// into the BENCH artifacts.
	Hist obs.Histogram
}

// Summarize computes statistics over a latency sample. It returns the
// zero value for an empty sample.
func Summarize(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	mean := sum / float64(len(sorted))
	var sq float64
	var hist obs.Histogram
	for _, s := range sorted {
		d := float64(s) - mean
		sq += d * d
		hist.Observe(s)
	}
	// Quantiles come from the bucketed histogram — the same estimator
	// the telemetry windows use, so offline tables and live exposition
	// agree — clamped to the observed range (interpolation inside the
	// outermost buckets can otherwise step outside the sample).
	pct := func(q float64) time.Duration {
		v := hist.Quantile(q)
		if v < sorted[0] {
			v = sorted[0]
		}
		if v > sorted[len(sorted)-1] {
			v = sorted[len(sorted)-1]
		}
		return v
	}
	return LatencyStats{
		Count:  len(sorted),
		Mean:   time.Duration(mean),
		StdDev: time.Duration(math.Sqrt(sq / float64(len(sorted)))),
		Min:    sorted[0],
		P50:    pct(0.50),
		P95:    pct(0.95),
		P99:    pct(0.99),
		Max:    sorted[len(sorted)-1],
		Hist:   hist,
	}
}

// Millis renders a duration as fractional milliseconds (the unit of the
// paper's Figure 2 axis).
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// FormatMillis renders a duration as e.g. "12.3".
func FormatMillis(d time.Duration) string {
	return fmt.Sprintf("%.1f", Millis(d))
}
