package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/harness/engine"
	"repro/internal/obs"
)

// OverheadResult reproduces the §7 switching-overhead measurement: near
// the Figure 2 crossover, the paper reports a switch overhead of about
// 31 ms, dominated by waiting for the (high-latency) old protocol's
// in-flight messages — while the *perceived* hiccup is often less,
// because processes are never blocked from sending.
type OverheadResult struct {
	ActiveSenders int
	// SwitchDuration is the initiator's PREPARE→FLUSH-return time.
	SwitchDuration time.Duration
	// Hiccup is the worst app-level delivery gap during the switch,
	// minus the typical (median) steady-state gap.
	Hiccup time.Duration
	// SteadyGap is the median inter-delivery gap before the switch.
	SteadyGap time.Duration
	// From names the protocol being switched away from.
	From ProtocolKind
	// Events is the run's DES event count (deterministic per seed).
	Events uint64
	// Latency summarizes the run's delivery latencies.
	Latency LatencyStats
	// Trace is the run's event stream when OverheadConfig.Trace was set
	// (excluded from the sweep's comparable rows).
	Trace []obs.Event `json:"-"`
}

// OverheadConfig parameterizes the experiment.
type OverheadConfig struct {
	Run RunConfig
	// From selects the old protocol (the one whose latency dominates
	// the overhead). The new protocol is the other one.
	From ProtocolKind
	// SwitchAt is when the switch is requested.
	SwitchAt time.Duration
	// Parallel is the sweep's worker count (<= 0 uses GOMAXPROCS);
	// results are identical for any value.
	Parallel int
	// Trace collects the run's event stream into the result.
	Trace bool
}

// DefaultOverheadConfig switches away from the token protocol (the
// high-latency direction §7 warns about) at the crossover load.
func DefaultOverheadConfig() OverheadConfig {
	rc := DefaultRunConfig()
	rc.ActiveSenders = 5
	rc.Measure = 6 * time.Second
	return OverheadConfig{Run: rc, From: Token, SwitchAt: rc.Warmup + 2*time.Second}
}

// RunOverhead measures one switch under load.
func RunOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	rc := cfg.Run.withDefaults()
	protos := Factories(rc.TokenHold)
	if cfg.From == Token {
		protos[0], protos[1] = protos[1], protos[0]
	}
	var rec *switching.Record
	swCfg := switching.Config{
		Protocols:        protos,
		OnSwitchComplete: func(r switching.Record) { rec = &r },
	}
	var col *obs.Collector
	if cfg.Trace {
		col = obs.NewCollector()
		rc.Recorder = col
	}
	run, err := NewSwitchedRun(rc, swCfg)
	if err != nil {
		return nil, err
	}
	// Record the group-wide app-delivery timeline to find the hiccup.
	var deliveries []time.Duration
	run.SetDeliveryHook(func(now time.Duration) { deliveries = append(deliveries, now) })
	run.Cluster.Sim.At(cfg.SwitchAt, func() {
		run.Cluster.Members[0].Switch.RequestSwitch()
	})
	run.StartWorkload()
	res := run.Finish()
	if rec == nil {
		return nil, fmt.Errorf("harness: the switch never completed")
	}
	steady, hiccup := analyzeGaps(deliveries, cfg.SwitchAt, rec)
	out := &OverheadResult{
		ActiveSenders:  rc.ActiveSenders,
		SwitchDuration: rec.Duration(),
		Hiccup:         hiccup,
		SteadyGap:      steady,
		From:           cfg.From,
		Events:         res.Events,
		Latency:        res.Stats,
	}
	if col != nil {
		out.Trace = col.Events()
	}
	return out, nil
}

// analyzeGaps returns the median steady-state delivery gap before the
// switch and the hiccup (worst gap overlapping the switch window minus
// the steady gap; never negative).
func analyzeGaps(ts []time.Duration, switchAt time.Duration, rec *switching.Record) (steady, hiccup time.Duration) {
	var preGaps []time.Duration
	var worst time.Duration
	windowEnd := rec.Finished + 50*time.Millisecond
	for i := 1; i < len(ts); i++ {
		gap := ts[i] - ts[i-1]
		switch {
		case ts[i] < switchAt:
			preGaps = append(preGaps, gap)
		case ts[i-1] >= rec.Started && ts[i-1] <= windowEnd:
			if gap > worst {
				worst = gap
			}
		}
	}
	if len(preGaps) == 0 {
		return 0, worst
	}
	sort.Slice(preGaps, func(i, j int) bool { return preGaps[i] < preGaps[j] })
	steady = preGaps[len(preGaps)/2]
	hiccup = worst - steady
	if hiccup < 0 {
		hiccup = 0
	}
	return steady, hiccup
}

// Render prints the overhead result.
func (r *OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("Switching overhead near the crossover (§7; paper: ~31 ms)\n\n")
	fmt.Fprintf(&b, "active senders:        %d\n", r.ActiveSenders)
	fmt.Fprintf(&b, "switching away from:   %v\n", r.From)
	fmt.Fprintf(&b, "switch duration:       %s ms\n", FormatMillis(r.SwitchDuration))
	fmt.Fprintf(&b, "steady delivery gap:   %s ms\n", FormatMillis(r.SteadyGap))
	fmt.Fprintf(&b, "perceived hiccup:      %s ms (senders are never blocked)\n", FormatMillis(r.Hiccup))
	if r.Latency.Count > 0 {
		fmt.Fprintf(&b, "delivery latency:      %s±%s ms (min %s, p99 %s, n=%d)\n",
			FormatMillis(r.Latency.Mean), FormatMillis(r.Latency.StdDev),
			FormatMillis(r.Latency.Min), FormatMillis(r.Latency.P99), r.Latency.Count)
	}
	return b.String()
}

// RunOverheadSweep measures the switch duration in both directions and
// across sender counts — the ablation for DESIGN.md §5 ("the overhead
// of switching depends on the latency of the protocol being switched
// away from"). The (senders × direction) grid runs on a worker pool;
// rows come back in deterministic sweep order regardless of
// base.Parallel.
func RunOverheadSweep(base OverheadConfig, senders []int) ([]OverheadResult, error) {
	dirs := []ProtocolKind{Sequencer, Token}
	pool := engine.New(base.Parallel)
	out, err := engine.Map(pool, len(senders)*len(dirs), base.Run.Seed,
		func(j engine.Job) (OverheadResult, error) {
			cfg := base
			cfg.Run.ActiveSenders = senders[j.Index/len(dirs)]
			cfg.From = dirs[j.Index%len(dirs)]
			r, err := RunOverhead(cfg)
			if err != nil {
				return OverheadResult{}, fmt.Errorf("senders=%d from=%v: %w",
					cfg.Run.ActiveSenders, cfg.From, err)
			}
			return *r, nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderOverheadSweep prints the sweep as a table.
func RenderOverheadSweep(rows []OverheadResult) string {
	var b strings.Builder
	b.WriteString("Switch overhead sweep: duration(ms)/hiccup(ms) by old protocol\n\n")
	fmt.Fprintf(&b, "%8s %18s %18s\n", "senders", "from sequencer", "from token")
	bySenders := map[int]map[ProtocolKind]OverheadResult{}
	var order []int
	for _, r := range rows {
		if bySenders[r.ActiveSenders] == nil {
			bySenders[r.ActiveSenders] = map[ProtocolKind]OverheadResult{}
			order = append(order, r.ActiveSenders)
		}
		bySenders[r.ActiveSenders][r.From] = r
	}
	sort.Ints(order)
	for _, n := range order {
		s := bySenders[n][Sequencer]
		t := bySenders[n][Token]
		fmt.Fprintf(&b, "%8d %11s/%-6s %11s/%-6s\n", n,
			FormatMillis(s.SwitchDuration), FormatMillis(s.Hiccup),
			FormatMillis(t.SwitchDuration), FormatMillis(t.Hiccup))
	}
	return b.String()
}
