package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/harness/engine"
	"repro/internal/proto"
	"repro/internal/protocols/arq"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

// E11: the §1 point-to-point specialization. This experiment compares
// the three classic ARQ protocols (stop-and-wait, go-back-N, selective
// repeat) over contrasting links — the p2p analogue of Figure 2's
// trade-off table.

// ARQKind selects a link protocol.
type ARQKind int

const (
	// StopWait is the window-1 protocol.
	StopWait ARQKind = iota + 1
	// GoBackN is the cumulative-ack sliding window.
	GoBackN
	// SelectiveRepeat is the per-frame-ack sliding window.
	SelectiveRepeat
)

// String renders the kind.
func (k ARQKind) String() string {
	switch k {
	case StopWait:
		return "stop-and-wait"
	case GoBackN:
		return "go-back-N"
	case SelectiveRepeat:
		return "selective-repeat"
	default:
		return fmt.Sprintf("ARQKind(%d)", int(k))
	}
}

// arqStats abstracts the two stats-bearing layer families.
type arqStats interface{ Stats() arq.Stats }

// newARQ builds one layer of the given kind.
func newARQ(kind ARQKind, window int, timeout time.Duration) (proto.Layer, arqStats, error) {
	switch kind {
	case StopWait:
		l := arq.NewStopAndWait(timeout)
		return l, l, nil
	case GoBackN:
		l := arq.NewGoBackN(window, timeout)
		return l, l, nil
	case SelectiveRepeat:
		l := arq.NewSelectiveRepeat(window, timeout)
		return l, l, nil
	default:
		return nil, nil, fmt.Errorf("harness: unknown ARQ kind %d", kind)
	}
}

// P2PConfig parameterizes one link measurement.
type P2PConfig struct {
	Seed     int64
	Link     simnet.Config // must have Nodes == 2
	Window   int
	Timeout  time.Duration
	Offered  int // frames offered as fast as the window admits
	MsgBytes int
	RunFor   time.Duration
	// Parallel is the E11 table's worker count (<= 0 uses GOMAXPROCS);
	// the table is identical for any value.
	Parallel int
}

// DefaultP2PConfig returns the E11 parameters.
func DefaultP2PConfig() P2PConfig {
	return P2PConfig{
		Seed:     1,
		Link:     simnet.Config{Nodes: 2, PropDelay: 10 * time.Millisecond},
		Window:   16,
		Timeout:  30 * time.Millisecond,
		Offered:  200,
		MsgBytes: 256,
		RunFor:   time.Second,
	}
}

// P2PResult is one (link, protocol) measurement.
type P2PResult struct {
	Kind        ARQKind
	Delivered   int
	Retransmits uint64
	AcksSent    uint64
	// Events is the run's DES event count (deterministic per seed).
	Events uint64
}

// RunP2P measures one ARQ protocol on one link.
func RunP2P(kind ARQKind, cfg P2PConfig) (*P2PResult, error) {
	if cfg.Link.Nodes != 2 {
		return nil, fmt.Errorf("harness: p2p needs exactly 2 nodes, got %d", cfg.Link.Nodes)
	}
	if _, _, err := newARQ(kind, cfg.Window, cfg.Timeout); err != nil {
		return nil, err // validate the kind before the factory can panic
	}
	var stats arqStats
	cluster, err := ptest.New(cfg.Seed, cfg.Link, 2, func(env proto.Env) []proto.Layer {
		l, s, err := newARQ(kind, cfg.Window, cfg.Timeout)
		if err != nil {
			panic(err) // unreachable: kind validated above
		}
		if env.Self() == 0 {
			stats = s
		}
		return []proto.Layer{l}
	})
	if err != nil {
		return nil, err
	}
	payload := make([]byte, cfg.MsgBytes)
	for i := 0; i < cfg.Offered; i++ {
		if err := cluster.Members[0].Stack.Send(1, payload); err != nil {
			return nil, err
		}
	}
	cluster.Run(cfg.RunFor)
	res := &P2PResult{
		Kind:        kind,
		Delivered:   len(cluster.Members[1].Delivered),
		Retransmits: stats.Stats().Retransmits,
		AcksSent:    stats.Stats().AcksSent,
		Events:      cluster.Sim.Executed(),
	}
	cluster.Stop()
	return res, nil
}

// P2PRow is one (link, protocol) cell of the E11 table.
type P2PRow struct {
	Link   string
	Result P2PResult
	// PerSec is delivered frames per simulated second.
	PerSec float64
}

// p2pLinks is the fixed E11 link matrix.
func p2pLinks() []struct {
	name string
	cfg  simnet.Config
} {
	return []struct {
		name string
		cfg  simnet.Config
	}{
		{"fat-pipe (10ms RTT/2)", simnet.Config{Nodes: 2, PropDelay: 10 * time.Millisecond}},
		{"lossy (15% drop)", simnet.Config{Nodes: 2, PropDelay: 2 * time.Millisecond, DropProb: 0.15}},
	}
}

// RunP2PSweep measures all three ARQ protocols over the fat-pipe and
// lossy links on a worker pool. Rows come back in deterministic
// (link, protocol) order for any base.Parallel.
func RunP2PSweep(base P2PConfig) ([]P2PRow, error) {
	links := p2pLinks()
	kinds := []ARQKind{StopWait, GoBackN, SelectiveRepeat}
	pool := engine.New(base.Parallel)
	return engine.Map(pool, len(links)*len(kinds), base.Seed,
		func(j engine.Job) (P2PRow, error) {
			link := links[j.Index/len(kinds)]
			cfg := base
			cfg.Link = link.cfg
			res, err := RunP2P(kinds[j.Index%len(kinds)], cfg)
			if err != nil {
				return P2PRow{}, err
			}
			return P2PRow{
				Link:   link.name,
				Result: *res,
				PerSec: float64(res.Delivered) / base.RunFor.Seconds(),
			}, nil
		})
}

// RenderP2PTable prints the E11 table.
func RenderP2PTable(rows []P2PRow) string {
	var b strings.Builder
	b.WriteString("E11 — point-to-point specialization (§1): throughput and waste per link\n\n")
	fmt.Fprintf(&b, "%-22s %-18s %12s %12s\n", "link", "protocol", "delivered/s", "retransmits")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s %-18s %12.0f %12d\n",
			row.Link, row.Result.Kind, row.PerSec, row.Result.Retransmits)
	}
	return b.String()
}

// P2PTable runs the sweep and renders the E11 table.
func P2PTable(base P2PConfig) (string, error) {
	rows, err := RunP2PSweep(base)
	if err != nil {
		return "", err
	}
	return RenderP2PTable(rows), nil
}
