package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/harness/engine"
	"repro/internal/ids"
	"repro/internal/obs"
)

// HysteresisResult reproduces §7's oscillation observation: "if
// switching too aggressively, the resulting protocol starts
// oscillating. If we make our protocol less aggressive (by adding a
// hysteresis)" the oscillation disappears. The experiment ramps the
// offered load back and forth across the crossover and counts switches
// under a bare threshold oracle vs. a hysteresis oracle.
type HysteresisResult struct {
	Policy string
	// SwitchRequests is how often the controller asked for a switch.
	SwitchRequests uint64
	// SwitchesCompleted is how many switches actually ran (member 0).
	SwitchesCompleted uint64
	// MeanLatency is the app-level mean latency over the run.
	MeanLatency time.Duration
	// Events is the run's DES event count (deterministic per seed).
	Events uint64
	// Trace is the run's event stream when HysteresisConfig.Trace was
	// set.
	Trace []obs.Event `json:"-"`
}

// HysteresisConfig parameterizes the oscillation experiment.
type HysteresisConfig struct {
	Run RunConfig
	// LoadPeriod is how long the load stays at each level of the ramp.
	LoadPeriod time.Duration
	// Levels is the repeating active-sender ramp. The default hovers
	// around the crossover (paper: between 5 and 6).
	Levels []int
	// Threshold is the aggressive oracle's cut-over; Low/High the
	// hysteresis band.
	Threshold float64
	Low, High float64
	// PollEvery is the controller's metric sampling interval.
	PollEvery time.Duration
	// Parallel is the comparison's worker count (<= 0 uses GOMAXPROCS);
	// both policies are independent runs and results are identical for
	// any value.
	Parallel int
	// Trace collects each policy run's event stream (tagged by row
	// index in the comparison).
	Trace bool
}

// DefaultHysteresisConfig hovers the load around the crossover.
func DefaultHysteresisConfig() HysteresisConfig {
	rc := DefaultRunConfig()
	rc.Measure = 16 * time.Second
	return HysteresisConfig{
		Run:        rc,
		LoadPeriod: 2 * time.Second,
		Levels:     []int{5, 6, 5, 6, 5, 6, 5, 6},
		Threshold:  5.5,
		// Switch up at the crossover, but only switch back once the
		// load has clearly receded: the asymmetric band is what stops
		// a load hovering at the crossover from flapping the protocol.
		Low:       3.5,
		High:      5.5,
		PollEvery: 100 * time.Millisecond,
	}
}

// RunHysteresis runs the ramp under one oracle and reports oscillation
// and latency.
func RunHysteresis(cfg HysteresisConfig, oracle switching.Oracle, policy string) (*HysteresisResult, error) {
	rc := cfg.Run.withDefaults()
	var col *obs.Collector
	if cfg.Trace {
		col = obs.NewCollector()
		rc.Recorder = col
	}
	run, err := NewSwitchedRun(rc, switching.Config{})
	if err != nil {
		return nil, err
	}
	sim := run.Cluster.Sim

	// The time-varying load: level changes every LoadPeriod.
	level := func() int {
		if len(cfg.Levels) == 0 {
			return rc.ActiveSenders
		}
		idx := int(sim.Now()/cfg.LoadPeriod) % len(cfg.Levels)
		return cfg.Levels[idx]
	}
	// Per-sender constant-rate ticks, active only while the ramp level
	// includes the sender.
	interval := time.Duration(float64(time.Second) / rc.RatePerSender)
	stopAt := rc.Warmup + rc.Measure
	for s := 0; s < rc.Group; s++ {
		p := ids.ProcID(s)
		var tick func()
		tick = func() {
			if sim.Now() >= stopAt {
				return
			}
			if int(p) < level() {
				run.Cast(p)
			}
			sim.After(interval, tick)
		}
		sim.After(time.Duration(s)*interval/time.Duration(rc.Group), tick)
	}

	ctrl, err := switching.NewController(run.Cluster.Members[0].Switch, oracle,
		func() float64 { return float64(level()) }, cfg.PollEvery)
	if err != nil {
		return nil, err
	}
	res := run.Finish()
	out := &HysteresisResult{
		Policy:            policy,
		SwitchRequests:    ctrl.SwitchRequests,
		SwitchesCompleted: run.Cluster.Members[0].Switch.Stats().SwitchesCompleted,
		MeanLatency:       res.Stats.Mean,
		Events:            res.Events,
	}
	if col != nil {
		out.Trace = col.Events()
	}
	return out, nil
}

// RunHysteresisComparison runs the ramp under both policies. The two
// runs are independent simulations, so they execute on a worker pool;
// the oracle is constructed inside each job (the hysteresis oracle is
// stateful) and the row order is fixed: aggressive first.
func RunHysteresisComparison(cfg HysteresisConfig) ([]HysteresisResult, error) {
	pool := engine.New(cfg.Parallel)
	rows, err := engine.Map(pool, 2, cfg.Run.Seed,
		func(j engine.Job) (HysteresisResult, error) {
			var (
				oracle switching.Oracle
				policy string
			)
			if j.Index == 0 {
				oracle, policy = switching.ThresholdOracle{Threshold: cfg.Threshold}, "threshold (aggressive)"
			} else {
				h, err := switching.NewHysteresisOracle(cfg.Low, cfg.High)
				if err != nil {
					return HysteresisResult{}, err
				}
				oracle, policy = h, "hysteresis"
			}
			r, err := RunHysteresis(cfg, oracle, policy)
			if err != nil {
				return HysteresisResult{}, err
			}
			return *r, nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderHysteresis prints the comparison.
func RenderHysteresis(rows []HysteresisResult) string {
	var b strings.Builder
	b.WriteString("Oscillation study (§7): load ramping 5↔6 senders across the crossover\n\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %12s\n", "policy", "requests", "switches", "latency(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10d %10d %12s\n",
			r.Policy, r.SwitchRequests, r.SwitchesCompleted, FormatMillis(r.MeanLatency))
	}
	return b.String()
}
