package harness

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs/telemetry"
)

// TestChaosTelemetrySweepByteIdenticalAcrossWorkers is E19's
// determinism gate: a telemetry-enabled chaos sweep must encode a
// byte-identical BENCH_telemetry.json (timing scrubbed) for 1 and 4
// workers — the windowed series and the audit trail, like the trace
// they derive from, are a pure function of the base seed — and must
// actually produce windows and audited rounds so the comparison is not
// vacuous.
func TestChaosTelemetrySweepByteIdenticalAcrossWorkers(t *testing.T) {
	sweep := func(parallel int) (*ChaosSweepResult, []byte) {
		cfg := DefaultChaosSweepConfig()
		cfg.Schedules = 20
		cfg.RecoverySeeds = 3
		cfg.Telemetry = &telemetry.Config{}
		cfg.Parallel = parallel
		res, err := RunChaosSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		art := NewBenchTelemetry(cfg.Seed, telemetry.DefaultInterval, res)
		art.SetTiming(time.Duration(parallel)*time.Millisecond, parallel) // differs per run on purpose
		art.ScrubTiming()
		b, err := EncodeBench(art)
		if err != nil {
			t.Fatal(err)
		}
		return res, b
	}
	seq, seqJSON := sweep(1)
	par, parJSON := sweep(4)
	if len(seq.Failures) != 0 {
		for _, f := range seq.Failures {
			t.Errorf("seed %d (%v): %v", f.Seed, f.Kinds, f.Violations)
		}
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("telemetry JSON differs across worker counts:\n%s\nvs\n%s", seqJSON, parJSON)
	}
	if len(seq.Windows) == 0 || len(seq.Rounds) == 0 {
		t.Fatalf("telemetry sweep produced %d windows and %d rounds — nothing sampled",
			len(seq.Windows), len(seq.Rounds))
	}
	if len(par.Windows) != len(seq.Windows) || len(par.Rounds) != len(seq.Rounds) {
		t.Errorf("series lengths diverged across worker counts: %d/%d vs %d/%d windows/rounds",
			len(seq.Windows), len(seq.Rounds), len(par.Windows), len(par.Rounds))
	}

	// The summary counters the benchdiff gate reads must be non-trivial:
	// a sweep with switch requests audits completed rounds.
	art := NewBenchTelemetry(1, telemetry.DefaultInterval, seq)
	if art.RoundsComplete == 0 {
		t.Error("no completed rounds audited across the sweep")
	}
	if art.RoundsComplete+art.RoundsAborted != art.Rounds {
		t.Errorf("outcomes do not partition the rounds: %d complete + %d aborted != %d",
			art.RoundsComplete, art.RoundsAborted, art.Rounds)
	}
}
