package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core/switching"
)

// shortRun returns a config fast enough for unit tests while keeping
// the qualitative Figure 2 shape.
func shortRun() RunConfig {
	rc := DefaultRunConfig()
	rc.Warmup = 500 * time.Millisecond
	rc.Measure = 2 * time.Second
	rc.Drain = 2 * time.Second
	return rc
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
	one := Summarize([]time.Duration{5 * time.Millisecond})
	if one.Count != 1 || one.Mean != 5*time.Millisecond || one.P99 != 5*time.Millisecond {
		t.Errorf("singleton Summarize = %+v", one)
	}
	// Sub-µs samples share histogram bucket 0, so the bucket-quantile
	// estimator returns the mean for every percentile.
	samples := []time.Duration{4, 1, 3, 2, 5}
	s := Summarize(samples)
	if s.Count != 5 || s.Mean != 3 || s.P50 != 3 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	// Input must not be mutated (sorted copy).
	if samples[0] != 4 {
		t.Error("Summarize mutated its input")
	}
	// Multi-bucket samples: quantiles are obs.Histogram.Quantile
	// bucket-edge interpolations, clamped to the observed range.
	ms := Summarize([]time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond,
		4 * time.Millisecond, 8 * time.Millisecond,
	})
	if ms.P50 != 2048*time.Microsecond {
		t.Errorf("P50 = %v, want 2048µs (bucket edge)", ms.P50)
	}
	if ms.P99 != 8*time.Millisecond {
		t.Errorf("P99 = %v, want clamp to max 8ms", ms.P99)
	}
	if ms.P50 > ms.P95 || ms.P95 > ms.P99 {
		t.Errorf("quantiles not monotone: %v %v %v", ms.P50, ms.P95, ms.P99)
	}
}

func TestMillis(t *testing.T) {
	if Millis(1500*time.Microsecond) != 1.5 {
		t.Errorf("Millis = %v", Millis(1500*time.Microsecond))
	}
	if FormatMillis(1500*time.Microsecond) != "1.5" {
		t.Errorf("FormatMillis = %q", FormatMillis(1500*time.Microsecond))
	}
}

func TestProtocolKindString(t *testing.T) {
	if Sequencer.String() != "sequencer" || Token.String() != "token" {
		t.Error("kind names wrong")
	}
	if ProtocolKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestLayersUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Layers(unknown) did not panic")
		}
	}()
	Layers(ProtocolKind(9), time.Millisecond)
}

func TestRunDirectDeliversEverything(t *testing.T) {
	rc := shortRun()
	rc.ActiveSenders = 2
	res, err := RunDirect(Sequencer, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no messages sent in window")
	}
	// Every windowed message reaches all 10 members.
	if res.Stats.Count != res.Sent*rc.Group {
		t.Errorf("samples = %d, want %d (= sent %d × group %d)",
			res.Stats.Count, res.Sent*rc.Group, res.Sent, rc.Group)
	}
	if res.Stats.Mean <= 0 {
		t.Error("non-positive mean latency")
	}
}

// TestFigure2Shape is E3/E4 at test scale: the sequencer must win at
// low load, the token at high load.
func TestFigure2Shape(t *testing.T) {
	rc := shortRun()
	rc.ActiveSenders = 1
	seqLow, err := RunDirect(Sequencer, rc)
	if err != nil {
		t.Fatal(err)
	}
	tokLow, err := RunDirect(Token, rc)
	if err != nil {
		t.Fatal(err)
	}
	if seqLow.Stats.Mean >= tokLow.Stats.Mean {
		t.Errorf("at 1 sender: sequencer %v should beat token %v",
			seqLow.Stats.Mean, tokLow.Stats.Mean)
	}
	rc.ActiveSenders = 9
	seqHigh, err := RunDirect(Sequencer, rc)
	if err != nil {
		t.Fatal(err)
	}
	tokHigh, err := RunDirect(Token, rc)
	if err != nil {
		t.Fatal(err)
	}
	if tokHigh.Stats.Mean >= seqHigh.Stats.Mean {
		t.Errorf("at 9 senders: token %v should beat sequencer %v",
			tokHigh.Stats.Mean, seqHigh.Stats.Mean)
	}
}

func TestRunFigure2SweepAndRender(t *testing.T) {
	cfg := Figure2Config{Run: shortRun(), MaxSenders: 3}
	res, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "sequencer") || !strings.Contains(out, "token") {
		t.Error("render missing columns")
	}
	if res.Plot() == "" {
		t.Error("empty plot")
	}
	// Sweep larger than the group is rejected.
	bad := Figure2Config{Run: shortRun(), MaxSenders: 99}
	if _, err := RunFigure2(bad); err == nil {
		t.Error("oversized sweep accepted")
	}
}

func TestRunSwitchedHybridTracksBestProtocol(t *testing.T) {
	// At 1 active sender the hybrid (threshold oracle) stays on the
	// sequencer: its latency must be far below the token's.
	rc := shortRun()
	rc.ActiveSenders = 1
	hyb, err := RunSwitched(rc, switching.ThresholdOracle{Threshold: 5.5}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := RunDirect(Token, rc)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Stats.Mean >= tok.Stats.Mean {
		t.Errorf("hybrid %v not better than token %v at low load", hyb.Stats.Mean, tok.Stats.Mean)
	}
	// At 8 senders the oracle must have switched to the token: hybrid
	// beats the raw sequencer.
	rc.ActiveSenders = 8
	hyb8, err := RunSwitched(rc, switching.ThresholdOracle{Threshold: 5.5}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	seq8, err := RunDirect(Sequencer, rc)
	if err != nil {
		t.Fatal(err)
	}
	if hyb8.Stats.Mean >= seq8.Stats.Mean {
		t.Errorf("hybrid %v not better than sequencer %v at high load", hyb8.Stats.Mean, seq8.Stats.Mean)
	}
}

// TestOverheadExperiment is E5 at test scale: the switch completes, its
// duration is positive and larger when leaving the slow protocol, and
// the render mentions the hiccup.
func TestOverheadExperiment(t *testing.T) {
	cfg := DefaultOverheadConfig()
	cfg.Run.Warmup = 500 * time.Millisecond
	cfg.Run.Measure = 2 * time.Second
	cfg.Run.Drain = 2 * time.Second
	cfg.SwitchAt = time.Second
	fromToken, err := RunOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fromToken.SwitchDuration <= 0 {
		t.Error("non-positive switch duration")
	}
	cfg.From = Sequencer
	fromSeq, err := RunOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §7: the overhead depends on the latency of the protocol being
	// switched away from; the token's is higher.
	if fromToken.SwitchDuration <= fromSeq.SwitchDuration {
		t.Errorf("leaving token (%v) should cost more than leaving sequencer (%v)",
			fromToken.SwitchDuration, fromSeq.SwitchDuration)
	}
	if !strings.Contains(fromToken.Render(), "hiccup") {
		t.Error("render missing hiccup")
	}
}

func TestOverheadSweepRender(t *testing.T) {
	cfg := DefaultOverheadConfig()
	cfg.Run.Warmup = 300 * time.Millisecond
	cfg.Run.Measure = time.Second
	cfg.Run.Drain = 2 * time.Second
	cfg.SwitchAt = 600 * time.Millisecond
	rows, err := RunOverheadSweep(cfg, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (both directions)", len(rows))
	}
	out := RenderOverheadSweep(rows)
	if !strings.Contains(out, "from token") {
		t.Error("sweep render missing direction column")
	}
}

// TestHysteresisDampsOscillation is E6 at test scale: the aggressive
// threshold oracle must request strictly more switches than the
// hysteresis oracle over a load ramp that straddles the crossover.
func TestHysteresisDampsOscillation(t *testing.T) {
	cfg := DefaultHysteresisConfig()
	cfg.Run.Warmup = 300 * time.Millisecond
	cfg.Run.Measure = 6 * time.Second
	cfg.Run.Drain = 2 * time.Second
	cfg.LoadPeriod = time.Second
	rows, err := RunHysteresisComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	agg, hys := rows[0], rows[1]
	if agg.SwitchRequests <= hys.SwitchRequests {
		t.Errorf("aggressive requested %d switches, hysteresis %d — expected oscillation without hysteresis",
			agg.SwitchRequests, hys.SwitchRequests)
	}
	if hys.SwitchRequests > 1 {
		t.Errorf("hysteresis oracle oscillated: %d requests", hys.SwitchRequests)
	}
	out := RenderHysteresis(rows)
	if !strings.Contains(out, "hysteresis") {
		t.Error("render missing policy")
	}
}

func TestP2PExperiment(t *testing.T) {
	cfg := DefaultP2PConfig()
	cfg.RunFor = 500 * time.Millisecond
	cfg.Offered = 80
	sw, err := RunP2P(StopWait, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gbn, err := RunP2P(GoBackN, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunP2P(SelectiveRepeat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gbn.Delivered <= sw.Delivered {
		t.Errorf("go-back-N (%d) must out-deliver stop-and-wait (%d) on a fat pipe", gbn.Delivered, sw.Delivered)
	}
	if sr.Delivered < gbn.Delivered {
		t.Errorf("selective repeat (%d) must match go-back-N (%d) on a clean link", sr.Delivered, gbn.Delivered)
	}
	// Validation paths.
	bad := cfg
	bad.Link.Nodes = 3
	if _, err := RunP2P(StopWait, bad); err == nil {
		t.Error("3-node p2p accepted")
	}
	if _, err := RunP2P(ARQKind(99), cfg); err == nil {
		t.Error("unknown kind accepted")
	}
	if ARQKind(99).String() == "" || StopWait.String() != "stop-and-wait" {
		t.Error("kind names wrong")
	}
}

func TestP2PTable(t *testing.T) {
	cfg := DefaultP2PConfig()
	cfg.RunFor = 300 * time.Millisecond
	cfg.Offered = 50
	out, err := P2PTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stop-and-wait", "go-back-N", "selective-repeat", "lossy"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestChaosSweepSmall(t *testing.T) {
	cfg := DefaultChaosSweepConfig()
	cfg.Schedules = 5
	cfg.RecoverySeeds = 3
	res, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("violations in small sweep:\n%s", res.Render())
	}
	if res.WorstRecovery > res.Bound {
		t.Errorf("worst recovery %v exceeds bound %v", res.WorstRecovery, res.Bound)
	}
	out := res.Render()
	for _, want := range []string{"schedules run", "tokens regenerated", "worst in-round recovery"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
