package property

import (
	"repro/internal/ids"
	"repro/internal/trace"
)

// CausalOrder extends Table 1 (repository extension, not in the paper):
// "if the sending of m1 causally precedes the sending of m2, then every
// process that delivers both delivers m1 first" — Lamport's happens-
// before specialized to multicast, as implemented by vector-clock
// protocols (package protocols/causal).
//
// Causal precedence is reconstructed from the trace itself: send(m1)
// precedes send(m2) iff the same process sent m1 before m2, or the
// sender of m2 delivered m1 before sending m2, or transitively so.
//
// Meta-property profile (computed in package metaprop): Causal Order is
// safe, asynchronous, send-enabled, memoryless and composable but NOT
// delayable — delaying a process's delivery of m1 past its send of m2
// retroactively creates the dependency m1 → m2 that other processes
// never knew about. Like Reliability (§6.3), it therefore sits outside
// the provably-SP-safe class yet IS preserved by the switching protocol:
// the SP's old-before-new delivery order subsumes every cross-epoch
// causal dependency (demonstrated live in the switching tests).
type CausalOrder struct{}

var _ Property = CausalOrder{}

// Name implements Property.
func (CausalOrder) Name() string { return "Causal Order" }

// Holds implements Property.
func (CausalOrder) Holds(tr trace.Trace) bool {
	// Assign each message the set of messages in its causal past at
	// send time: everything its sender previously sent or delivered,
	// plus their pasts (transitively, by accumulation).
	past := make(map[ids.MsgID]map[ids.MsgID]bool)      // message -> causal past
	procHist := make(map[ids.ProcID]map[ids.MsgID]bool) // process -> messages in its causal history
	hist := func(p ids.ProcID) map[ids.MsgID]bool {
		h := procHist[p]
		if h == nil {
			h = make(map[ids.MsgID]bool)
			procHist[p] = h
		}
		return h
	}
	for _, e := range tr {
		switch e.Kind {
		case trace.SendKind:
			h := hist(e.Msg.Sender)
			p := make(map[ids.MsgID]bool, len(h))
			for id := range h {
				p[id] = true
			}
			past[e.Msg.ID] = p
			h[e.Msg.ID] = true
		case trace.DeliverKind:
			h := hist(e.Deliverer)
			if !h[e.Msg.ID] {
				h[e.Msg.ID] = true
				for id := range past[e.Msg.ID] {
					h[id] = true
				}
			}
		}
	}
	// Check every process's delivery order against the causal pasts.
	delivered := make(map[ids.ProcID]map[ids.MsgID]int)
	order := make(map[ids.ProcID][]ids.MsgID)
	for _, e := range tr {
		if e.Kind != trace.DeliverKind {
			continue
		}
		p := e.Deliverer
		if delivered[p] == nil {
			delivered[p] = make(map[ids.MsgID]int)
		}
		if _, dup := delivered[p][e.Msg.ID]; dup {
			continue
		}
		delivered[p][e.Msg.ID] = len(order[p])
		order[p] = append(order[p], e.Msg.ID)
	}
	for p, seq := range order {
		pos := delivered[p]
		for _, m2 := range seq {
			for m1 := range past[m2] {
				i1, got1 := pos[m1]
				if !got1 {
					continue // never delivered m1: no ordering obligation
				}
				if i1 > pos[m2] {
					return false
				}
			}
		}
	}
	return true
}
