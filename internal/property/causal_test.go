package property

import (
	"testing"

	"repro/internal/trace"
)

func TestCausalOrderDirectDependency(t *testing.T) {
	p := CausalOrder{}
	m1 := msg(1, 0, "question")
	m2 := msg(2, 1, "answer") // p1 delivers m1 before sending m2
	good := trace.Trace{
		trace.Send(m1),
		trace.Deliver(1, m1),
		trace.Send(m2),
		trace.Deliver(2, m1),
		trace.Deliver(2, m2),
	}
	if !p.Holds(good) {
		t.Error("causally ordered trace rejected")
	}
	bad := trace.Trace{
		trace.Send(m1),
		trace.Deliver(1, m1),
		trace.Send(m2),
		trace.Deliver(2, m2), // answer before question
		trace.Deliver(2, m1),
	}
	if p.Holds(bad) {
		t.Error("causal violation accepted")
	}
}

func TestCausalOrderSameSenderFIFO(t *testing.T) {
	p := CausalOrder{}
	m1, m2 := msg(1, 0, "a"), msg(2, 0, "b")
	bad := trace.Trace{
		trace.Send(m1), trace.Send(m2),
		trace.Deliver(1, m2), trace.Deliver(1, m1),
	}
	if p.Holds(bad) {
		t.Error("per-sender FIFO violation accepted")
	}
}

func TestCausalOrderTransitive(t *testing.T) {
	p := CausalOrder{}
	m1 := msg(1, 0, "a")
	m2 := msg(2, 1, "b") // after delivering m1
	m3 := msg(3, 2, "c") // after delivering m2
	bad := trace.Trace{
		trace.Send(m1),
		trace.Deliver(1, m1), trace.Send(m2),
		trace.Deliver(2, m2), trace.Send(m3),
		// p0 delivers m3 then m1: m1 is in m3's transitive past.
		trace.Deliver(0, m3), trace.Deliver(0, m1),
	}
	if p.Holds(bad) {
		t.Error("transitive causal violation accepted")
	}
}

func TestCausalOrderConcurrentFree(t *testing.T) {
	p := CausalOrder{}
	m1 := msg(1, 0, "a")
	m2 := msg(2, 1, "b") // concurrent with m1
	either := trace.Trace{
		trace.Send(m1), trace.Send(m2),
		trace.Deliver(2, m2), trace.Deliver(2, m1),
		trace.Deliver(0, m1), trace.Deliver(0, m2),
	}
	if !p.Holds(either) {
		t.Error("concurrent messages wrongly constrained")
	}
}

func TestCausalOrderMissingDependencyVacuous(t *testing.T) {
	p := CausalOrder{}
	m1 := msg(1, 0, "a")
	m2 := msg(2, 1, "b")
	// p2 delivers only the dependent message; with m1 undelivered there
	// is no ordering obligation (reliability is a separate property).
	tr := trace.Trace{
		trace.Send(m1),
		trace.Deliver(1, m1), trace.Send(m2),
		trace.Deliver(2, m2),
	}
	if !p.Holds(tr) {
		t.Error("missing dependency treated as violation")
	}
}

func TestCausalOrderEmptyTrace(t *testing.T) {
	if !(CausalOrder{}).Holds(nil) {
		t.Error("empty trace rejected")
	}
}

func TestExtensions(t *testing.T) {
	ext := Extensions(3)
	if len(ext) != 2 || ext[0].Name() != "Causal Order" || ext[1].Name() != "Every Second Delivered" {
		t.Errorf("Extensions = %v", ext)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extensions(1) did not panic")
		}
	}()
	Extensions(1)
}
