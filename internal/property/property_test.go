package property

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/trace"
)

func msg(id uint64, sender int32, body string) trace.Message {
	return trace.Message{ID: ids.MsgID(id), Sender: ids.ProcID(sender), Body: body}
}

func viewMsg(id uint64, sender int32, members ...int32) trace.Message {
	m := trace.Message{ID: ids.MsgID(id), Sender: ids.ProcID(sender), IsView: true}
	for _, p := range members {
		m.View = append(m.View, ids.ProcID(p))
	}
	return m
}

func TestReliability(t *testing.T) {
	p := Reliability{Group: ids.Procs(2)}
	m1 := msg(1, 0, "a")
	good := trace.Trace{trace.Send(m1), trace.Deliver(0, m1), trace.Deliver(1, m1)}
	if !p.Holds(good) {
		t.Error("complete trace rejected")
	}
	missing := trace.Trace{trace.Send(m1), trace.Deliver(0, m1)}
	if p.Holds(missing) {
		t.Error("trace missing a delivery accepted")
	}
	// A delivery without a send does not violate reliability.
	orphan := trace.Trace{trace.Deliver(0, m1)}
	if !p.Holds(orphan) {
		t.Error("orphan delivery rejected")
	}
	if !p.Holds(nil) {
		t.Error("empty trace rejected")
	}
}

func TestTotalOrder(t *testing.T) {
	p := TotalOrder{}
	m1, m2 := msg(1, 0, "a"), msg(2, 1, "b")
	agree := trace.Trace{
		trace.Deliver(0, m1), trace.Deliver(0, m2),
		trace.Deliver(1, m1), trace.Deliver(1, m2),
	}
	if !p.Holds(agree) {
		t.Error("agreeing trace rejected")
	}
	disagree := trace.Trace{
		trace.Deliver(0, m1), trace.Deliver(0, m2),
		trace.Deliver(1, m2), trace.Deliver(1, m1),
	}
	if p.Holds(disagree) {
		t.Error("disagreeing trace accepted")
	}
	// Processes that share only one message cannot disagree.
	partial := trace.Trace{
		trace.Deliver(0, m1), trace.Deliver(0, m2),
		trace.Deliver(1, m2),
	}
	if !p.Holds(partial) {
		t.Error("partial overlap rejected")
	}
	// Three processes, transitively consistent.
	m3 := msg(3, 0, "c")
	tri := trace.Trace{
		trace.Deliver(0, m1), trace.Deliver(0, m2),
		trace.Deliver(1, m2), trace.Deliver(1, m3),
		trace.Deliver(2, m1), trace.Deliver(2, m3),
	}
	if !p.Holds(tri) {
		t.Error("pairwise-consistent trace rejected")
	}
}

func TestIntegrity(t *testing.T) {
	trusted := map[ids.ProcID]bool{0: true, 1: true}
	p := Integrity{Trusted: trusted}
	ok := trace.Trace{trace.Deliver(2, msg(1, 0, "a"))}
	if !p.Holds(ok) {
		t.Error("trusted-sender delivery rejected")
	}
	forged := trace.Trace{trace.Deliver(0, msg(1, 2, "a"))}
	if p.Holds(forged) {
		t.Error("untrusted-sender delivery accepted")
	}
	// Sends alone never violate integrity.
	sends := trace.Trace{trace.Send(msg(1, 2, "a"))}
	if !p.Holds(sends) {
		t.Error("untrusted send (undelivered) rejected")
	}
}

func TestConfidentiality(t *testing.T) {
	trusted := map[ids.ProcID]bool{0: true, 1: true}
	p := Confidentiality{Trusted: trusted}
	ok := trace.Trace{
		trace.Deliver(1, msg(1, 0, "secret")), // trusted -> trusted
		trace.Deliver(0, msg(2, 2, "public")), // untrusted -> trusted
		trace.Deliver(2, msg(3, 2, "public")), // untrusted -> untrusted
	}
	if !p.Holds(ok) {
		t.Error("legal trace rejected")
	}
	leak := trace.Trace{trace.Deliver(2, msg(1, 0, "secret"))}
	if p.Holds(leak) {
		t.Error("trusted->untrusted leak accepted")
	}
}

func TestNoReplay(t *testing.T) {
	p := NoReplay{}
	// Same body, different messages, same process: replay.
	replay := trace.Trace{
		trace.Deliver(0, msg(1, 0, "pay")),
		trace.Deliver(0, msg(2, 1, "pay")),
	}
	if p.Holds(replay) {
		t.Error("body replay accepted")
	}
	// Same body at different processes: fine.
	spread := trace.Trace{
		trace.Deliver(0, msg(1, 0, "pay")),
		trace.Deliver(1, msg(1, 0, "pay")),
	}
	if !p.Holds(spread) {
		t.Error("cross-process same body rejected")
	}
	distinct := trace.Trace{
		trace.Deliver(0, msg(1, 0, "a")),
		trace.Deliver(0, msg(2, 0, "b")),
	}
	if !p.Holds(distinct) {
		t.Error("distinct bodies rejected")
	}
}

func TestPrioritizedDelivery(t *testing.T) {
	p := PrioritizedDelivery{Master: 0}
	m1 := msg(1, 1, "a")
	good := trace.Trace{trace.Deliver(0, m1), trace.Deliver(1, m1), trace.Deliver(2, m1)}
	if !p.Holds(good) {
		t.Error("master-first trace rejected")
	}
	bad := trace.Trace{trace.Deliver(1, m1), trace.Deliver(0, m1)}
	if p.Holds(bad) {
		t.Error("non-master-first accepted")
	}
	never := trace.Trace{trace.Deliver(1, m1)}
	if p.Holds(never) {
		t.Error("delivery the master never made accepted")
	}
	masterOnly := trace.Trace{trace.Deliver(0, m1)}
	if !p.Holds(masterOnly) {
		t.Error("master-only delivery rejected")
	}
}

func TestAmoeba(t *testing.T) {
	p := Amoeba{}
	m1, m2 := msg(1, 0, "a"), msg(2, 0, "b")
	good := trace.Trace{
		trace.Send(m1), trace.Deliver(0, m1),
		trace.Send(m2), trace.Deliver(0, m2),
	}
	if !p.Holds(good) {
		t.Error("disciplined trace rejected")
	}
	bad := trace.Trace{trace.Send(m1), trace.Send(m2)}
	if p.Holds(bad) {
		t.Error("send-while-awaiting accepted")
	}
	// Deliveries of others' messages do not unblock.
	other := msg(3, 1, "x")
	stillBad := trace.Trace{trace.Send(m1), trace.Deliver(0, other), trace.Send(m2)}
	if p.Holds(stillBad) {
		t.Error("unblocked by another process's message")
	}
	// An outstanding send at the end of the trace is not a violation.
	pending := trace.Trace{trace.Send(m1)}
	if !p.Holds(pending) {
		t.Error("trailing outstanding send rejected")
	}
	// Two different senders interleave freely.
	m3 := msg(4, 1, "y")
	interleaved := trace.Trace{trace.Send(m1), trace.Send(m3)}
	if !p.Holds(interleaved) {
		t.Error("independent senders rejected")
	}
}

func TestVirtualSynchrony(t *testing.T) {
	p := VirtualSynchrony{InitialView: ids.Procs(3)}
	v := viewMsg(10, 0, 0, 1) // new view {0,1}, excluding 2
	data2 := msg(1, 2, "from-2")
	// Before the view change, 2's messages are fine.
	before := trace.Trace{trace.Deliver(0, data2)}
	if !p.Holds(before) {
		t.Error("initial-view delivery rejected")
	}
	// After delivering the view, 2 is out.
	after := trace.Trace{trace.Deliver(0, v), trace.Deliver(0, data2)}
	if p.Holds(after) {
		t.Error("out-of-view delivery accepted")
	}
	// Views are per-process: 1 hasn't seen the view yet.
	mixed := trace.Trace{trace.Deliver(0, v), trace.Deliver(1, data2)}
	if !p.Holds(mixed) {
		t.Error("per-process view state not honoured")
	}
	// View messages themselves are always deliverable.
	viewFromOutsider := viewMsg(11, 2, 0, 1, 2)
	vv := trace.Trace{trace.Deliver(0, v), trace.Deliver(0, viewFromOutsider), trace.Deliver(0, data2)}
	if !p.Holds(vv) {
		t.Error("re-admitting view rejected")
	}
}

func TestTable1(t *testing.T) {
	props := Table1(3)
	if len(props) != 8 {
		t.Fatalf("Table1 returned %d properties, want 8", len(props))
	}
	names := map[string]bool{}
	for _, p := range props {
		names[p.Name()] = true
	}
	for _, want := range []string{
		"Reliability", "Total Order", "Integrity", "Confidentiality",
		"No Replay", "Prioritized Delivery", "Amoeba", "Virtual Synchrony",
	} {
		if !names[want] {
			t.Errorf("Table1 missing %q", want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Table1(1) did not panic")
		}
	}()
	Table1(1)
}

// Every Table 1 property must accept the empty trace (properties are
// conditions on what happens, not on that something happens — except
// Reliability, which also accepts it vacuously).
func TestEmptyTraceAccepted(t *testing.T) {
	for _, p := range Table1(3) {
		if !p.Holds(nil) {
			t.Errorf("%s rejects the empty trace", p.Name())
		}
	}
}
