package property

import (
	"repro/internal/ids"
	"repro/internal/trace"
)

// EverySecondDelivered is the paper's own §5.1 example of a non-safety
// property: "consider the property *every second message is eventually
// delivered*. If an application sends two messages, and a switch occurs
// in between, the property may well be violated since the underlying
// protocols have no requirement to deliver either message."
//
// Formalized per sender: each sender's 2nd, 4th, 6th… message (by its
// own send order) must be delivered to every member of Group. The
// property is interesting because it is *not safe* (chopping a suffix
// removes required deliveries) and, more subtly, *not composable*: each
// protocol counts "second" within its own stream, so splitting a
// sender's stream across two protocols renumbers the messages — the
// violation mechanism §5.1 describes, demonstrated live in the
// switching tests.
type EverySecondDelivered struct {
	Group []ids.ProcID
}

var _ Property = EverySecondDelivered{}

// Name implements Property.
func (EverySecondDelivered) Name() string { return "Every Second Delivered" }

// Holds implements Property.
func (p EverySecondDelivered) Holds(tr trace.Trace) bool {
	type pm struct {
		p ids.ProcID
		m ids.MsgID
	}
	delivered := make(map[pm]bool)
	for _, e := range tr {
		if e.Kind == trace.DeliverKind {
			delivered[pm{e.Deliverer, e.Msg.ID}] = true
		}
	}
	nth := make(map[ids.ProcID]int)
	for _, e := range tr {
		if e.Kind != trace.SendKind {
			continue
		}
		nth[e.Msg.Sender]++
		if nth[e.Msg.Sender]%2 != 0 {
			continue // odd-numbered: no obligation
		}
		for _, q := range p.Group {
			if !delivered[pm{q, e.Msg.ID}] {
				return false
			}
		}
	}
	return true
}
