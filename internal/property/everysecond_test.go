package property

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/trace"
)

func TestEverySecondHolds(t *testing.T) {
	p := EverySecondDelivered{Group: ids.Procs(2)}
	m1, m2 := msg(1, 0, "a"), msg(2, 0, "b")
	good := trace.Trace{
		trace.Send(m1), // #1: no obligation
		trace.Send(m2), // #2: owed to everyone
		trace.Deliver(0, m2), trace.Deliver(1, m2),
	}
	if !p.Holds(good) {
		t.Error("satisfying trace rejected")
	}
}

func TestEverySecondViolated(t *testing.T) {
	p := EverySecondDelivered{Group: ids.Procs(2)}
	m1, m2 := msg(1, 0, "a"), msg(2, 0, "b")
	bad := trace.Trace{
		trace.Send(m1), trace.Send(m2),
		trace.Deliver(0, m2), // p1 never gets the even message
	}
	if p.Holds(bad) {
		t.Error("missing even delivery accepted")
	}
}

func TestEverySecondCountsPerSender(t *testing.T) {
	p := EverySecondDelivered{Group: ids.Procs(2)}
	// Two senders, one message each: both are #1 for their sender.
	tr := trace.Trace{
		trace.Send(msg(1, 0, "a")),
		trace.Send(msg(2, 1, "b")),
	}
	if !p.Holds(tr) {
		t.Error("per-sender numbering not honoured")
	}
}

func TestEverySecondOddUndeliveredFine(t *testing.T) {
	p := EverySecondDelivered{Group: ids.Procs(2)}
	if !p.Holds(trace.Trace{trace.Send(msg(1, 0, "a"))}) {
		t.Error("odd undelivered message rejected")
	}
	if !p.Holds(nil) {
		t.Error("empty trace rejected")
	}
}
