// Package property implements Table 1 of the paper: communication
// properties as executable predicates on event traces (§3 — "a property
// is a predicate on traces, dividing all traces into two categories").
//
// Each property may carry parameters (the trusted set, the master
// process, the initial view); the predicates are pure functions of the
// trace, so they can be applied to recorded executions (cmd/tracecheck,
// the switching integration tests) and to the meta-property falsifier
// (package metaprop, Table 2).
package property

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/trace"
)

// Property is a named predicate on traces.
type Property interface {
	// Name returns the property's Table 1 name.
	Name() string
	// Holds reports whether the trace satisfies the property.
	Holds(tr trace.Trace) bool
}

// Reliability: "every message that is sent is delivered to all
// receivers". Group parameterizes who the receivers are.
type Reliability struct {
	Group []ids.ProcID
}

var _ Property = Reliability{}

// Name implements Property.
func (Reliability) Name() string { return "Reliability" }

// Holds implements Property.
func (r Reliability) Holds(tr trace.Trace) bool {
	type pm struct {
		p ids.ProcID
		m ids.MsgID
	}
	delivered := make(map[pm]bool)
	for _, e := range tr {
		if e.Kind == trace.DeliverKind {
			delivered[pm{e.Deliverer, e.Msg.ID}] = true
		}
	}
	for _, e := range tr {
		if e.Kind != trace.SendKind {
			continue
		}
		for _, p := range r.Group {
			if !delivered[pm{p, e.Msg.ID}] {
				return false
			}
		}
	}
	return true
}

// TotalOrder: "processes that deliver the same two messages deliver them
// in the same order".
type TotalOrder struct{}

var _ Property = TotalOrder{}

// Name implements Property.
func (TotalOrder) Name() string { return "Total Order" }

// Holds implements Property.
func (TotalOrder) Holds(tr trace.Trace) bool {
	// position[p][m] is the index of p's first delivery of m in p's
	// local delivery sequence.
	position := make(map[ids.ProcID]map[ids.MsgID]int)
	order := make(map[ids.ProcID][]ids.MsgID)
	for _, e := range tr {
		if e.Kind != trace.DeliverKind {
			continue
		}
		p := e.Deliverer
		if position[p] == nil {
			position[p] = make(map[ids.MsgID]int)
		}
		if _, seen := position[p][e.Msg.ID]; seen {
			continue // at-most-once violations judged by first delivery
		}
		position[p][e.Msg.ID] = len(order[p])
		order[p] = append(order[p], e.Msg.ID)
	}
	procs := make([]ids.ProcID, 0, len(order))
	for p := range order {
		procs = append(procs, p)
	}
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			p, q := procs[i], procs[j]
			// Extract p's order restricted to messages q also delivered
			// and compare with q's.
			var common []ids.MsgID
			for _, m := range order[p] {
				if _, ok := position[q][m]; ok {
					common = append(common, m)
				}
			}
			for k := 1; k < len(common); k++ {
				if position[q][common[k-1]] > position[q][common[k]] {
					return false
				}
			}
		}
	}
	return true
}

// Integrity: "messages cannot be forged; they are sent by trusted
// processes" — every delivered message names a trusted sender.
type Integrity struct {
	Trusted map[ids.ProcID]bool
}

var _ Property = Integrity{}

// Name implements Property.
func (Integrity) Name() string { return "Integrity" }

// Holds implements Property.
func (p Integrity) Holds(tr trace.Trace) bool {
	for _, e := range tr {
		if e.Kind == trace.DeliverKind && !p.Trusted[e.Msg.Sender] {
			return false
		}
	}
	return true
}

// Confidentiality: "non-trusted processes cannot see messages from
// trusted processes".
type Confidentiality struct {
	Trusted map[ids.ProcID]bool
}

var _ Property = Confidentiality{}

// Name implements Property.
func (Confidentiality) Name() string { return "Confidentiality" }

// Holds implements Property.
func (p Confidentiality) Holds(tr trace.Trace) bool {
	for _, e := range tr {
		if e.Kind == trace.DeliverKind && p.Trusted[e.Msg.Sender] && !p.Trusted[e.Deliverer] {
			return false
		}
	}
	return true
}

// NoReplay: "a message body can be delivered at most once to a
// process". Note the property is about bodies, not message identities.
type NoReplay struct{}

var _ Property = NoReplay{}

// Name implements Property.
func (NoReplay) Name() string { return "No Replay" }

// Holds implements Property.
func (NoReplay) Holds(tr trace.Trace) bool {
	type pb struct {
		p    ids.ProcID
		body string
	}
	seen := make(map[pb]bool)
	for _, e := range tr {
		if e.Kind != trace.DeliverKind {
			continue
		}
		k := pb{e.Deliverer, e.Msg.Body}
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// PrioritizedDelivery: "the master process always delivers a message
// before any one else".
type PrioritizedDelivery struct {
	Master ids.ProcID
}

var _ Property = PrioritizedDelivery{}

// Name implements Property.
func (PrioritizedDelivery) Name() string { return "Prioritized Delivery" }

// Holds implements Property.
func (p PrioritizedDelivery) Holds(tr trace.Trace) bool {
	masterHas := make(map[ids.MsgID]bool)
	for _, e := range tr {
		if e.Kind != trace.DeliverKind {
			continue
		}
		if e.Deliverer == p.Master {
			masterHas[e.Msg.ID] = true
			continue
		}
		if !masterHas[e.Msg.ID] {
			return false
		}
	}
	return true
}

// Amoeba: "a process is blocked from sending while it is awaiting its
// own messages" — between a process's Send(m) and its own Deliver(m),
// the process sends nothing else.
type Amoeba struct{}

var _ Property = Amoeba{}

// Name implements Property.
func (Amoeba) Name() string { return "Amoeba" }

// Holds implements Property.
func (Amoeba) Holds(tr trace.Trace) bool {
	outstanding := make(map[ids.ProcID]ids.MsgID)
	waiting := make(map[ids.ProcID]bool)
	for _, e := range tr {
		switch e.Kind {
		case trace.SendKind:
			p := e.Msg.Sender
			if waiting[p] {
				return false
			}
			outstanding[p] = e.Msg.ID
			waiting[p] = true
		case trace.DeliverKind:
			p := e.Deliverer
			if waiting[p] && e.Msg.Sender == p && e.Msg.ID == outstanding[p] {
				waiting[p] = false
			}
		}
	}
	return true
}

// VirtualSynchrony: "a process only delivers messages from processes in
// some common view". View changes are messages whose View field carries
// the new membership; a process's current view is the membership of the
// last view message it delivered (initially InitialView).
type VirtualSynchrony struct {
	InitialView []ids.ProcID
}

var _ Property = VirtualSynchrony{}

// Name implements Property.
func (VirtualSynchrony) Name() string { return "Virtual Synchrony" }

// Holds implements Property.
func (v VirtualSynchrony) Holds(tr trace.Trace) bool {
	views := make(map[ids.ProcID]map[ids.ProcID]bool)
	initial := make(map[ids.ProcID]bool, len(v.InitialView))
	for _, p := range v.InitialView {
		initial[p] = true
	}
	for _, e := range tr {
		if e.Kind != trace.DeliverKind {
			continue
		}
		p := e.Deliverer
		cur := views[p]
		if cur == nil {
			cur = initial
		}
		if e.Msg.IsView {
			next := make(map[ids.ProcID]bool, len(e.Msg.View))
			for _, m := range e.Msg.View {
				next[m] = true
			}
			views[p] = next
			continue
		}
		if !cur[e.Msg.Sender] {
			return false
		}
	}
	return true
}

// Table1 returns the paper's eight properties with conventional
// parameters for a group of n processes: the full group as receivers and
// initial view, processes 0..n-2 trusted (the last process untrusted),
// and process 0 as master. These parameter choices are shared by the
// metaprop generators.
func Table1(n int) []Property {
	if n < 2 {
		panic(fmt.Sprintf("property: Table1 needs n >= 2, got %d", n))
	}
	group := ids.Procs(n)
	trusted := make(map[ids.ProcID]bool, n-1)
	for _, p := range group[:n-1] {
		trusted[p] = true
	}
	return []Property{
		Reliability{Group: group},
		TotalOrder{},
		Integrity{Trusted: trusted},
		Confidentiality{Trusted: trusted},
		NoReplay{},
		PrioritizedDelivery{Master: 0},
		Amoeba{},
		VirtualSynchrony{InitialView: group},
	}
}

// Extensions returns the repository's extension properties beyond
// Table 1 (Causal Order, and the paper's §5.1 every-second example),
// with the same conventions as Table1.
func Extensions(n int) []Property {
	if n < 2 {
		panic(fmt.Sprintf("property: Extensions needs n >= 2, got %d", n))
	}
	return []Property{
		CausalOrder{},
		EverySecondDelivered{Group: ids.Procs(n)},
	}
}
