package chaos

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/obs"
)

// withoutAuthFaults strips forge/replay events from a schedule's event
// list, leaving the legacy + corruption prefix.
func withoutAuthFaults(events []Event) []Event {
	var out []Event
	for _, e := range events {
		switch e.Kind {
		case KindForge, KindReplay:
		default:
			out = append(out, e)
		}
	}
	return out
}

// TestGenerateForgery pins the forgery generator's contracts:
// determinism, well-formed events, and — critically — that enabling
// forgery only appends to the schedules the corruption and legacy
// configs would generate. The forgery draws happen after every other
// draw, so Generate(seed, {Corruption, Forgery}) minus the forge/replay
// events must equal Generate(seed, {Corruption}) exactly, which in turn
// carries the legacy schedule as its own prefix (TestGenerateCorruption).
func TestGenerateForgery(t *testing.T) {
	kinds := map[Kind]int{}
	for seed := int64(0); seed < 50; seed++ {
		corrOnly, err := Generate(seed, GenConfig{Corruption: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Generate(seed, GenConfig{Corruption: true, Forgery: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, GenConfig{Corruption: true, Forgery: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\nvs\n%+v", seed, a, b)
		}
		if !reflect.DeepEqual(withoutAuthFaults(a.Events), corrOnly.Events) {
			t.Errorf("seed %d: forgery config disturbed the corruption-config events", seed)
		}
		if !reflect.DeepEqual(a.Switches, corrOnly.Switches) || !reflect.DeepEqual(a.Traffic, corrOnly.Traffic) {
			t.Errorf("seed %d: forgery config disturbed the switches/traffic", seed)
		}
		// Forgery without corruption still appends after the legacy draws.
		legacy, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fOnly, err := Generate(seed, GenConfig{Forgery: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(withoutAuthFaults(fOnly.Events), legacy.Events) {
			t.Errorf("seed %d: forgery-only config disturbed the legacy fault events", seed)
		}
		for _, ev := range a.Events {
			switch ev.Kind {
			case KindForge:
				if ev.From == ev.Target || ev.At > a.Horizon || ev.Epoch > 2 {
					t.Errorf("seed %d: bad forge event: %+v", seed, ev)
				}
				if int(ev.From) >= a.N || int(ev.Target) >= a.N {
					t.Errorf("seed %d: forge addresses a nonexistent member: %+v", seed, ev)
				}
			case KindReplay:
				if ev.Index < 0 || ev.At > a.Horizon {
					t.Errorf("seed %d: bad replay event: %+v", seed, ev)
				}
			}
			kinds[ev.Kind]++
		}
		if a.HasForgery() != (len(a.Events) > len(corrOnly.Events)) {
			t.Errorf("seed %d: HasForgery()=%v disagrees with event list", seed, a.HasForgery())
		}
		if corrOnly.HasForgery() || legacy.HasForgery() {
			t.Errorf("seed %d: forgery-free schedule claims forgery", seed)
		}
	}
	for _, k := range []Kind{KindForge, KindReplay} {
		if kinds[k] == 0 {
			t.Errorf("50 forgery-enabled seeds never produced kind %v", k)
		}
	}
}

// TestSweepForgery is E16's acceptance gate: ≥200 seeded schedules
// mixing the legacy fault classes, corruption, forged frames, and wire
// replays. Every schedule must pass every invariant — including the two
// new ones (no forged frame reaches an application, no frame is
// accepted twice across any epoch sequence) — and the authenticated
// ingress must demonstrably engage across the sweep.
func TestSweepForgery(t *testing.T) {
	const schedules = 200
	kinds := map[Kind]int{}
	var authFailed, quarantines uint64
	var forged, replayed uint64
	for seed := int64(1); seed <= schedules; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true, Forgery: true})
		if err != nil {
			t.Fatal(err)
		}
		res, c, err := run(sched, RunConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, k := range res.Kinds {
			kinds[k]++
		}
		authFailed += res.Stats.AuthFailed
		quarantines += res.Stats.Quarantines
		ns := c.Net.Stats()
		forged += ns.Forged
		replayed += ns.Replayed
		for _, v := range res.Violations {
			t.Errorf("seed %d (%v): %s", seed, res.Kinds, v)
		}
		if t.Failed() && seed >= 10 {
			t.Fatalf("aborting sweep after seed %d", seed)
		}
	}
	for _, k := range []Kind{KindForge, KindReplay} {
		if kinds[k] < schedules/10 {
			t.Errorf("fault class %v appeared in only %d/%d schedules", k, kinds[k], schedules)
		}
	}
	if forged == 0 || replayed == 0 {
		t.Errorf("sweep injected %d forged and %d replayed frames — the adversary never acted", forged, replayed)
	}
	if authFailed == 0 {
		t.Error("sweep never rejected a frame at the auth boundary — the authenticated ingress was not exercised")
	}
	if quarantines == 0 {
		t.Error("sweep never quarantined a peer — the forgery floods no longer cross the threshold")
	}
	t.Logf("fault mix over %d schedules: %v; forged %d, replayed %d, auth-failed %d, quarantines %d",
		schedules, kinds, forged, replayed, authFailed, quarantines)
}

// TestRunDeterministicForgery replays forgery schedules twice and
// requires identical outcomes, pinning that the authentication faults
// (crafted frames, the replay tap, and the auth ingress they exercise)
// draw only from the seeded simulation stream.
func TestRunDeterministicForgery(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true, Forgery: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Delivered != b.Delivered || !reflect.DeepEqual(a.Stats, b.Stats) ||
			!reflect.DeepEqual(a.Violations, b.Violations) {
			t.Errorf("seed %d (%v): replay diverged:\n  %+v\n  %+v", seed, a.Kinds, a, b)
		}
	}
}

// TestAuthTraceConsistency extends the obs-consistency invariant to the
// authentication counters: across seeded forgery schedules, each live
// member's EvAuthFail trace events must equal that member's own
// Switch.Stats().AuthFailed, the per-peer event attribution must equal
// AuthFailedFrom, and the network-level forgery/replay events must
// equal the simnet Stats counters. The sweep must be non-vacuous.
func TestAuthTraceConsistency(t *testing.T) {
	var sawAuthFail, sawForged, sawReplayed bool
	for seed := int64(1); seed <= 25; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true, Forgery: true})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		col := obs.NewCollector()
		res, c, err := run(sched, RunConfig{Recorder: col})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res.Violations)
		}

		authBy := map[ids.ProcID]uint64{}
		authByPeer := map[ids.ProcID]map[ids.ProcID]uint64{}
		var forged, replayed uint64
		for _, e := range col.Events() {
			switch e.Type {
			case obs.EvAuthFail:
				authBy[e.Proc]++
				if authByPeer[e.Proc] == nil {
					authByPeer[e.Proc] = map[ids.ProcID]uint64{}
				}
				authByPeer[e.Proc][e.Peer]++
			case obs.EvForged:
				forged++
			case obs.EvReplayed:
				replayed++
			}
		}
		for _, p := range res.Live {
			st := c.Members[p].Switch.Stats()
			if authBy[p] != st.AuthFailed {
				t.Errorf("seed %d: member %v: trace shows %d auth failures, Switch.Stats() %d",
					seed, p, authBy[p], st.AuthFailed)
			}
			for peer, n := range authByPeer[p] {
				if got := c.Members[p].Switch.AuthFailedFrom(peer); got != n {
					t.Errorf("seed %d: member %v: trace attributes %d auth failures to peer %v, AuthFailedFrom %d",
						seed, p, n, peer, got)
				}
			}
			sawAuthFail = sawAuthFail || st.AuthFailed > 0
		}
		ns := c.Net.Stats()
		if forged != ns.Forged || replayed != ns.Replayed {
			t.Errorf("seed %d: trace-derived net counters (forged=%d replayed=%d) != simnet stats (%d, %d)",
				seed, forged, replayed, ns.Forged, ns.Replayed)
		}
		sawForged = sawForged || ns.Forged > 0
		sawReplayed = sawReplayed || ns.Replayed > 0
	}
	if !sawAuthFail || !sawForged || !sawReplayed {
		t.Errorf("sweep never exercised the auth path (authfail=%v forged=%v replayed=%v) — widen the seed range",
			sawAuthFail, sawForged, sawReplayed)
	}
}
