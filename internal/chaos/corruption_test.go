package chaos

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/obs"
)

// legacyOnly strips adversarial-input events from a schedule's event
// list, leaving the crash/partition/burst prefix.
func legacyOnly(events []Event) []Event {
	var out []Event
	for _, e := range events {
		switch e.Kind {
		case KindCorrupt, KindTruncate, KindGarbage:
		default:
			out = append(out, e)
		}
	}
	return out
}

// TestGenerateCorruption pins the corruption generator's contracts:
// determinism, well-formed events, and — critically — that enabling
// corruption only appends to the legacy schedule. The corruption draws
// happen after every legacy draw, so the crash/partition/burst events,
// switch requests, and traffic of Generate(seed, {Corruption: true})
// must equal Generate(seed, {}) exactly.
func TestGenerateCorruption(t *testing.T) {
	kinds := map[Kind]int{}
	for seed := int64(0); seed < 50; seed++ {
		legacy, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Generate(seed, GenConfig{Corruption: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, GenConfig{Corruption: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\nvs\n%+v", seed, a, b)
		}
		if !reflect.DeepEqual(legacyOnly(a.Events), legacy.Events) {
			t.Errorf("seed %d: corruption config disturbed the legacy fault events:\n%+v\nvs\n%+v",
				seed, legacyOnly(a.Events), legacy.Events)
		}
		if !reflect.DeepEqual(a.Switches, legacy.Switches) || !reflect.DeepEqual(a.Traffic, legacy.Traffic) {
			t.Errorf("seed %d: corruption config disturbed the legacy switches/traffic", seed)
		}
		for _, ev := range a.Events {
			switch ev.Kind {
			case KindCorrupt:
				if ev.Corrupt <= 0 || ev.Corrupt >= 1 || ev.Until <= ev.At || ev.Until > a.Horizon {
					t.Errorf("seed %d: bad corrupt window: %+v", seed, ev)
				}
			case KindTruncate:
				if ev.Truncate <= 0 || ev.Truncate >= 1 || ev.Until <= ev.At || ev.Until > a.Horizon {
					t.Errorf("seed %d: bad truncate window: %+v", seed, ev)
				}
			case KindGarbage:
				if ev.Size <= 0 || ev.From == ev.Target || ev.At > a.Horizon {
					t.Errorf("seed %d: bad garbage event: %+v", seed, ev)
				}
				if int(ev.From) >= a.N || int(ev.Target) >= a.N {
					t.Errorf("seed %d: garbage addresses a nonexistent member: %+v", seed, ev)
				}
			}
			kinds[ev.Kind]++
		}
		if a.HasCorruption() != (len(a.Events) > len(legacy.Events)) {
			t.Errorf("seed %d: HasCorruption()=%v disagrees with event list", seed, a.HasCorruption())
		}
		if legacy.HasCorruption() {
			t.Errorf("seed %d: legacy schedule claims corruption", seed)
		}
	}
	for _, k := range []Kind{KindCorrupt, KindTruncate, KindGarbage} {
		if kinds[k] == 0 {
			t.Errorf("50 corruption-enabled seeds never produced kind %v", k)
		}
	}
}

// TestSweepCorruption is E15's acceptance gate: ≥200 seeded schedules
// mixing the legacy fault classes with bit-flip corruption, truncation,
// and garbage injection. Every schedule must pass every invariant —
// including the new no-panic invariant — and the defensive ingress must
// demonstrably engage (malformed packets counted) across the sweep.
func TestSweepCorruption(t *testing.T) {
	const schedules = 200
	kinds := map[Kind]int{}
	var malformed, quarantines uint64
	for seed := int64(1); seed <= schedules; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, k := range res.Kinds {
			kinds[k]++
		}
		malformed += res.Stats.MalformedDropped
		quarantines += res.Stats.Quarantines
		for _, v := range res.Violations {
			t.Errorf("seed %d (%v): %s", seed, res.Kinds, v)
		}
		if t.Failed() && seed >= 10 {
			t.Fatalf("aborting sweep after seed %d", seed)
		}
	}
	for _, k := range []Kind{KindCorrupt, KindTruncate, KindGarbage} {
		if kinds[k] < schedules/10 {
			t.Errorf("fault class %v appeared in only %d/%d schedules", k, kinds[k], schedules)
		}
	}
	if malformed == 0 {
		t.Error("sweep never dropped a malformed packet — the defensive ingress was not exercised")
	}
	if quarantines == 0 {
		t.Error("sweep never quarantined a peer — the garbage floods no longer cross the threshold")
	}
	t.Logf("fault mix over %d schedules: %v; malformed dropped %d, quarantines %d",
		schedules, kinds, malformed, quarantines)
}

// TestRunDeterministicCorruption replays corruption schedules twice and
// requires identical outcomes, pinning that the corruption faults (and
// the defensive ingress they exercise) draw only from the seeded
// simulation stream.
func TestRunDeterministicCorruption(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Delivered != b.Delivered || !reflect.DeepEqual(a.Stats, b.Stats) ||
			!reflect.DeepEqual(a.Violations, b.Violations) {
			t.Errorf("seed %d (%v): replay diverged:\n  %+v\n  %+v", seed, a.Kinds, a, b)
		}
	}
}

// TestCapturePanic pins the no-panic invariant's plumbing: a panic in
// the guarded section becomes a violation string instead of crashing.
func TestCapturePanic(t *testing.T) {
	if got := capturePanic(func() {}); got != "" {
		t.Fatalf("clean run produced violation %q", got)
	}
	if got := capturePanic(func() { panic("boom") }); got != "panic: boom" {
		t.Fatalf("panic rendered as %q", got)
	}
}

// TestMalformedTraceConsistency extends the obs-consistency invariant
// to the hardening counters: across seeded corruption schedules, each
// live member's EvMalformedDrop / EvQuarantine trace events must equal
// that member's own Switch.Stats() counters, and the network-level
// corruption events must equal the simnet Stats counters. The sweep
// must be non-vacuous: it has to actually observe malformed drops and
// at least one corruption fault of each network class.
func TestMalformedTraceConsistency(t *testing.T) {
	var sawMalformed, sawCorrupt, sawTruncate, sawGarbage bool
	for seed := int64(1); seed <= 25; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		col := obs.NewCollector()
		res, c, err := run(sched, RunConfig{Recorder: col})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res.Violations)
		}

		malformedBy := map[ids.ProcID]uint64{}
		quarantinesBy := map[ids.ProcID]uint64{}
		var corrupts, truncates, garbage uint64
		for _, e := range col.Events() {
			switch e.Type {
			case obs.EvMalformedDrop:
				malformedBy[e.Proc]++
			case obs.EvQuarantine:
				quarantinesBy[e.Proc]++
			case obs.EvCorrupt:
				corrupts++
			case obs.EvTruncate:
				truncates++
			case obs.EvGarbage:
				garbage++
			}
		}
		for _, p := range res.Live {
			st := c.Members[p].Switch.Stats()
			if malformedBy[p] != st.MalformedDropped {
				t.Errorf("seed %d: member %v: trace shows %d malformed drops, Switch.Stats() %d",
					seed, p, malformedBy[p], st.MalformedDropped)
			}
			if quarantinesBy[p] != st.Quarantines {
				t.Errorf("seed %d: member %v: trace shows %d quarantines, Switch.Stats() %d",
					seed, p, quarantinesBy[p], st.Quarantines)
			}
			sawMalformed = sawMalformed || st.MalformedDropped > 0
		}
		ns := c.Net.Stats()
		if corrupts != ns.Corrupted || truncates != ns.Truncated || garbage != ns.GarbageInjected {
			t.Errorf("seed %d: trace-derived net counters (corrupt=%d truncate=%d garbage=%d) != simnet stats (%d, %d, %d)",
				seed, corrupts, truncates, garbage, ns.Corrupted, ns.Truncated, ns.GarbageInjected)
		}
		sawCorrupt = sawCorrupt || ns.Corrupted > 0
		sawTruncate = sawTruncate || ns.Truncated > 0
		sawGarbage = sawGarbage || ns.GarbageInjected > 0
	}
	if !sawMalformed || !sawCorrupt || !sawTruncate || !sawGarbage {
		t.Errorf("sweep never exercised the hardening path (malformed=%v corrupt=%v truncate=%v garbage=%v) — widen the seed range",
			sawMalformed, sawCorrupt, sawTruncate, sawGarbage)
	}
}
