package chaos

import (
	"reflect"
	"testing"
)

// TestRunDeterministic replays schedules twice and requires identical
// outcomes: the whole point of a seeded chaos harness is that a failing
// seed can be re-run. (This once caught FIFO's resend/ack ticks
// iterating Go maps, which desynchronized the seeded fault stream.)
func TestRunDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		sched, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Delivered != b.Delivered || !reflect.DeepEqual(a.Stats, b.Stats) ||
			!reflect.DeepEqual(a.Violations, b.Violations) {
			t.Errorf("seed %d (%v): replay diverged:\n  %+v\n  %+v", seed, a.Kinds, a, b)
		}
	}
}
