package chaos

import (
	"fmt"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
	"repro/internal/proto"
	"repro/internal/protocols/fd"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// RunConfig tunes the schedule runner.
type RunConfig struct {
	// TokenInterval is the switching layer's idle rotation pace
	// (default 5ms). Recovery timeouts scale from it.
	TokenInterval time.Duration
	// PropDelay is the simulated one-way network delay (default 300µs).
	PropDelay time.Duration
	// Settle is how long after the horizon (all faults healed) the
	// system gets to converge before the liveness probes are sent
	// (default 400ms — dozens of token rotations and several failure
	// detector periods).
	Settle time.Duration
	// Drain is how long the probes get to arrive (default 1s; FIFO
	// retransmission may need several of its resend intervals after a
	// heavy drop burst).
	Drain time.Duration
	// Recorder, when set, additionally receives every protocol and
	// network event of the run (the runner always keeps its own metrics
	// registry and flight recorder regardless).
	Recorder obs.Recorder
	// FlightSize bounds the flight recorder's ring (default
	// obs.DefaultFlightSize events). The tail is dumped into the result
	// when an invariant fails.
	FlightSize int
	// Telemetry, when set, additionally runs the windowed sampler and
	// switch-decision audit trail over the run's event stream and
	// attaches the series to the result. Nil keeps the exact recorder
	// fan-out of telemetry-free runs (and the obs.Nop fast path when
	// nothing else records).
	Telemetry *telemetry.Config
	// FixedDetector keeps the legacy fixed-timeout failure detector
	// even on gray-failure schedules (which otherwise enable adaptive
	// suspicion and flap damping) — the baseline arm of the E20
	// stability study.
	FixedDetector bool
	// DisruptionBudget caps the recovery actions (token regenerations
	// plus switch-round aborts, summed over members) the
	// bounded-disruption invariant tolerates per disruptionWindow of
	// virtual time (default 40).
	DisruptionBudget int
}

func (c *RunConfig) defaults() {
	if c.TokenInterval == 0 {
		c.TokenInterval = 5 * time.Millisecond
	}
	if c.PropDelay == 0 {
		c.PropDelay = 300 * time.Microsecond
	}
	if c.Settle == 0 {
		c.Settle = 400 * time.Millisecond
	}
	if c.Drain == 0 {
		c.Drain = time.Second
	}
	if c.DisruptionBudget == 0 {
		c.DisruptionBudget = 40
	}
}

// disruptionWindow is the virtual-time bucket width of the
// bounded-disruption invariant: recovery actions are counted per
// window, so a run that churns briefly and recovers passes while a run
// that thrashes continuously fails — regardless of total run length.
const disruptionWindow = 100 * time.Millisecond

// disruptionTracker counts the recovery actions (token regenerations
// and switch-round aborts, all members together) falling in each
// disruptionWindow, for the bounded-disruption invariant. It is a
// plain recorder: it draws no RNG and never perturbs the run.
type disruptionTracker struct {
	counts map[int64]int
}

func newDisruptionTracker() *disruptionTracker {
	return &disruptionTracker{counts: make(map[int64]int)}
}

// Enabled reports true (Recorder contract).
func (d *disruptionTracker) Enabled() bool { return true }

// Record tallies recovery actions into their window.
func (d *disruptionTracker) Record(e obs.Event) {
	switch e.Type {
	case obs.EvTokenRegen, obs.EvSwitchAbort:
		d.counts[int64(e.At/disruptionWindow)]++
	}
}

// adaptiveConfig is the gray-failure detector tuning used by the
// runner (and by MeasureDetection, so the E20 latency comparison
// measures exactly the detector the sweep runs). The half-life is
// stretched to 20 heartbeat intervals so the 30–60ms flap cadence the
// generator draws actually accumulates penalty (at the default 10× the
// charge would decay between flaps and damping would never engage),
// while still decaying past reuse well inside the post-heal settle.
// The raise level sits just under the fixed detector's 5×Interval so
// that, against a steady heartbeat stream, the graded path is the one
// that detects true crashes (at effectively the same latency) — while
// a peer whose observed cadence has stretched gets a proportionally
// longer leash instead of a false suspicion. Gray-free schedules leave
// Adaptive nil so their runs stay byte-identical.
func adaptiveConfig(ti time.Duration) *switching.AdaptiveConfig {
	return &switching.AdaptiveConfig{
		RaiseLevel: 4 * obs.SuspicionScale,
		HalfLife:   20 * ti,
	}
}

// Result is the outcome of one schedule replay.
type Result struct {
	Seed    int64
	Kinds   []Kind
	Crashed []ids.ProcID
	Live    []ids.ProcID
	// FinalEpoch is the epoch every live member converged to.
	FinalEpoch uint64
	// Delivered is the total number of application deliveries across
	// live members.
	Delivered int
	// Stats aggregates the switching stats of the live members.
	Stats switching.Stats
	// Events is the number of DES events the run executed
	// (deterministic per seed).
	Events uint64
	// Forged and Replayed count the adversary's wire-level injections
	// (the network's own stats; deterministic per seed, zero on
	// forgery-free schedules).
	Forged   uint64
	Replayed uint64
	// Violations lists every invariant breach; empty means the run
	// passed.
	Violations []string
	// Metrics is the per-member registry built from the run's event
	// stream; Stats above is derived from it for the live members.
	Metrics *obs.Metrics
	// FlightRecord is the tail of the event stream (oldest first) when
	// the run failed an invariant; nil on a clean run. FlightDropped is
	// how many earlier events the bounded ring discarded.
	FlightRecord  []obs.Event
	FlightDropped uint64
	// Windows and Rounds are the telemetry series of the run — the
	// sampler's closed windows and the audit trail's per-epoch switch
	// records — when RunConfig.Telemetry was set; nil otherwise.
	Windows []telemetry.Window
	Rounds  []telemetry.Round
	// TelemetryTail is the last few windows before the failure (a
	// quick-look snapshot next to the flight-recorder trace); nil on
	// clean or telemetry-free runs.
	TelemetryTail []telemetry.Window
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// quarantineThreshold is the defensive ingress's escalation point under
// corruption schedules: a peer delivering this many malformed packets
// is force-suspected. It is set high enough that a victim of a
// corruption window is not quarantined by a handful of damaged frames,
// yet low enough that garbage floods escalate within a schedule.
const quarantineThreshold = 25

// pair returns the two sub-protocols used under chaos: sequencer-based
// total order anchored at members 0 and 1. Both sequencers are exempt
// from generated faults, so post-heal liveness failures implicate the
// switching layer rather than a sub-protocol that lost its coordinator.
func pair() []switching.ProtocolFactory {
	return []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(1), fifo.New(fifo.Config{})}
		},
	}
}

// Run replays one schedule and checks the invariants. The simulation is
// seeded from the schedule, so the whole run is deterministic.
func Run(sched Schedule, cfg RunConfig) (*Result, error) {
	res, _, err := run(sched, cfg)
	return res, err
}

// run is Run with the cluster exposed, so white-box tests can compare
// the event-derived metrics against the protocol's own counters.
func run(sched Schedule, cfg RunConfig) (*Result, *swtest.SwitchedCluster, error) {
	cfg.defaults()
	metrics := obs.NewMetrics()
	flight := obs.NewFlightRecorder(cfg.FlightSize)
	disrupt := newDisruptionTracker()
	recs := []obs.Recorder{metrics.Recorder(), flight, disrupt, cfg.Recorder}
	var tel *telemetry.Telemetry
	if cfg.Telemetry != nil {
		tc := *cfg.Telemetry
		if tc.Protocols == 0 {
			tc.Protocols = len(pair())
		}
		tel = telemetry.New(tc)
		// Appended conditionally: a typed-nil *Telemetry inside the
		// interface would defeat Multi's nil filter.
		recs = append(recs, tel)
	}
	rec := obs.Multi(recs...)
	ti := cfg.TokenInterval
	swCfg := switching.Config{
		Protocols:     pair(),
		TokenInterval: ti,
		Recovery: &switching.RecoveryConfig{
			Detector: fd.Config{Interval: ti},
		},
		Recorder: rec,
	}
	if sched.HasGrayFailure() && !cfg.FixedDetector {
		swCfg.Recovery.Adaptive = adaptiveConfig(ti)
	}
	if sched.HasForgery() {
		// An active adversary on the wire: upgrade the defensive ingress
		// to the authenticated envelope — per-epoch MAC keys derived from
		// the group session key — which also covers corruption.
		swCfg.Defense = &switching.DefenseConfig{
			QuarantineThreshold: quarantineThreshold,
			Auth:                &switching.AuthConfig{SessionKey: chaosSessionKey},
		}
	} else if sched.HasCorruption() {
		// Adversarial input on the wire: turn on the integrity envelope
		// and the quarantine escalation. Legacy schedules leave Defense
		// nil so their wire traffic (and artifacts) stay byte-identical.
		swCfg.Defense = &switching.DefenseConfig{QuarantineThreshold: quarantineThreshold}
	}
	if sched.HasFlashCrowd() {
		// A sender spike is coming: bound every per-member queue. The
		// caps are deliberately tight against the spike cadence (~30µs
		// between spike casts vs a 200µs service interval) so the runs
		// actually exercise shedding, backpressure and retries rather
		// than absorbing the crowd. Spike-free schedules leave Overload
		// nil so their message path stays byte-identical. BatchMax puts
		// the egress batcher (and the batch wire format) under the same
		// chaos coverage: sweeps must stay byte-identical at any
		// -parallel with batching on. The service interval doubles
		// against BatchMax 2 so the frames-per-second capacity is
		// unchanged from the pre-batching tier — the spike still
		// overruns the queues, so shedding, backpressure and retries
		// all stay exercised.
		swCfg.Overload = &switching.OverloadConfig{
			IngressQueueCap: 16,
			EgressQueueCap:  8,
			LowWatermark:    2,
			HighWatermark:   6,
			ServiceInterval: 400 * time.Microsecond,
			RetryBackoff:    800 * time.Microsecond,
			MaxRetryShift:   3,
			BatchMax:        2,
		}
	}
	netCfg := simnet.Config{Nodes: sched.N, PropDelay: cfg.PropDelay}
	if sched.HasGrayFailure() {
		// Gray schedules charge per-packet CPU so KindSlowNode has a
		// resource to stretch; the costs are small against the 5ms
		// heartbeat cadence so an unstretched member is unaffected.
		// Gray-free schedules keep the legacy free-CPU timing byte for
		// byte.
		netCfg.RecvCPU = 50 * time.Microsecond
		netCfg.SendCPU = 30 * time.Microsecond
	}
	c, err := swtest.NewSwitched(sched.Seed, netCfg, sched.N, swCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: build cluster: %w", err)
	}
	c.Net.SetRecorder(rec)
	if sched.HasForgery() {
		// The adversary's packet tap: record genuine wire frames so the
		// KindReplay events have material to re-inject. Capturing draws
		// no RNG, so it never perturbs the schedule.
		c.Net.SetReplayCapture(replayCaptureMax)
	}
	if sched.HasFlashCrowd() {
		// Per-node egress depth samples over the fault window, for the
		// trace. Sampling draws no RNG and emits trace-only events, so it
		// never perturbs the schedule or the event-derived stats.
		_ = c.Net.SampleQueueDepths(time.Millisecond, sched.Horizon)
	}

	res := &Result{Seed: sched.Seed, Kinds: sched.Kinds(), Metrics: metrics}

	// Faults. Corruption and truncation windows may overlap, so their
	// closures keep the current value of each knob and reapply both on
	// every window edge (the simulation executes them in time order).
	var curCorrupt, curTruncate float64
	for _, ev := range sched.Events {
		ev := ev
		switch ev.Kind {
		case KindCrash:
			c.Sim.At(ev.At, func() { c.Net.Crash(ev.Target) })
			res.Crashed = append(res.Crashed, ev.Target)
		case KindPartition:
			rest := othersOf(sched.N, ev.Target)
			c.Sim.At(ev.At, func() { c.Net.Partition([]ids.ProcID{ev.Target}, rest) })
			c.Sim.At(ev.Until, func() { c.Net.Heal() })
		case KindBurst:
			c.Sim.At(ev.At, func() { _ = c.Net.SetFaults(ev.Drop, ev.Dup, ev.Jitter) })
			c.Sim.At(ev.Until, func() { _ = c.Net.SetFaults(0, 0, 0) })
		case KindCorrupt:
			c.Sim.At(ev.At, func() {
				curCorrupt = ev.Corrupt
				_ = c.Net.SetCorruption(curCorrupt, curTruncate)
			})
			c.Sim.At(ev.Until, func() {
				curCorrupt = 0
				_ = c.Net.SetCorruption(curCorrupt, curTruncate)
			})
		case KindTruncate:
			c.Sim.At(ev.At, func() {
				curTruncate = ev.Truncate
				_ = c.Net.SetCorruption(curCorrupt, curTruncate)
			})
			c.Sim.At(ev.Until, func() {
				curTruncate = 0
				_ = c.Net.SetCorruption(curCorrupt, curTruncate)
			})
		case KindGarbage:
			c.Sim.At(ev.At, func() {
				if c.Net.Crashed(ev.From) || c.Net.Crashed(ev.Target) {
					return
				}
				_ = c.Net.InjectGarbage(ev.From, ev.Target, ev.Size)
			})
		case KindForge:
			c.Sim.At(ev.At, func() {
				if c.Net.Crashed(ev.From) || c.Net.Crashed(ev.Target) {
					return
				}
				_ = c.Net.InjectForged(ev.From, ev.Target, forgedFrame(ev))
			})
		case KindReplay:
			c.Sim.At(ev.At, func() {
				n := c.Net.CapturedFrames()
				if n == 0 {
					return
				}
				_ = c.Net.InjectReplay(ev.Index % n)
			})
		case KindSlowNode:
			c.Sim.At(ev.At, func() { _ = c.Net.SetSlowNode(ev.Target, ev.Size) })
			c.Sim.At(ev.Until, func() { _ = c.Net.SetSlowNode(ev.Target, 1) })
		case KindLinkFault:
			c.Sim.At(ev.At, func() { _ = c.Net.SetLinkFaults(ev.From, ev.Target, ev.Drop, ev.Dup, ev.Jitter) })
			c.Sim.At(ev.Until, func() { _ = c.Net.SetLinkFaults(ev.From, ev.Target, 0, 0, 0) })
		case KindFlap:
			// SetFlapping self-heals: the link's final toggle at Until
			// leaves it open.
			c.Sim.At(ev.At, func() { _ = c.Net.SetFlapping(ev.From, ev.Target, ev.Period, ev.Until) })
		case KindFlashCrowd:
			c.Sim.At(ev.At, func() { _ = c.Net.SetSenderSpike(ev.Size) })
			c.Sim.At(ev.Until, func() { _ = c.Net.SetSenderSpike(1) })
			// The crowd itself: Size× the normal sender population, each
			// member casting in a tight rotation far faster than the
			// overload layer's service interval. Bodies are epoch-tagged
			// like all chaos traffic (the overload layer stamps the wire
			// epoch at cast time, so a retried send still carries its
			// original tag and the boundary invariant holds).
			for k := 0; k < ev.Size*spikeCastsPerMult; k++ {
				k := k
				at := ev.At + time.Duration(k)*spikeCastSpacing
				if at > ev.Until {
					break
				}
				from := ids.ProcID(k % sched.N)
				c.Sim.At(at, func() {
					if c.Net.Crashed(from) {
						return
					}
					cast(c, from, uint32(2000+k), fmt.Sprintf("fc%d.m%03d", from, k))
				})
			}
		default:
			return nil, nil, fmt.Errorf("chaos: unknown event kind %v", ev.Kind)
		}
	}

	// Switch requests.
	for _, req := range sched.Switches {
		req := req
		c.Sim.At(req.At, func() { c.Members[req.By].Switch.RequestSwitch() })
	}

	// Background traffic, tagged with the sender's send epoch at fire
	// time so the epoch-boundary invariant can be checked on delivery
	// order. Crashed senders are skipped.
	for i, snd := range sched.Traffic {
		i, snd := i, snd
		c.Sim.At(snd.At, func() {
			if c.Net.Crashed(snd.From) {
				return
			}
			cast(c, snd.From, uint32(i), fmt.Sprintf("s%d.m%03d", snd.From, i))
		})
	}

	// Liveness probes once everything has healed and settled.
	probeAt := sched.Horizon + cfg.Settle
	c.Sim.At(probeAt, func() {
		for p := 0; p < sched.N; p++ {
			if c.Net.Crashed(ids.ProcID(p)) {
				continue
			}
			cast(c, ids.ProcID(p), uint32(1000+p), fmt.Sprintf("probe%d", p))
		}
	})

	// The no-panic invariant: nothing in the stack — decode paths
	// included — may panic on adversarial input. A panic anywhere in the
	// run is converted into an invariant violation with the flight
	// recorder's tail attached, instead of crashing the sweep.
	horizon := probeAt + cfg.Drain
	if msg := capturePanic(func() { c.Run(horizon) }); msg != "" {
		_ = capturePanic(c.Stop)
		res.Events = c.Sim.Executed()
		ns := c.Net.Stats()
		res.Forged, res.Replayed = ns.Forged, ns.Replayed
		res.Violations = append(res.Violations, msg)
		res.FlightRecord = flight.Snapshot()
		res.FlightDropped = flight.Dropped()
		res.attachTelemetry(tel, horizon)
		return res, c, nil
	}
	c.Stop()
	res.Events = c.Sim.Executed()
	ns := c.Net.Stats()
	res.Forged, res.Replayed = ns.Forged, ns.Replayed

	for p := 0; p < sched.N; p++ {
		if !c.Net.Crashed(ids.ProcID(p)) {
			res.Live = append(res.Live, ids.ProcID(p))
		}
	}
	bodies := make(map[ids.ProcID][]string, len(res.Live))
	for _, p := range res.Live {
		b, err := c.AppBodies(p)
		if err != nil {
			return nil, nil, fmt.Errorf("chaos: member %v trace: %w", p, err)
		}
		bodies[p] = b
		res.Delivered += len(b)
	}
	res.Stats = statsFromMetrics(metrics, res.Live)
	res.FinalEpoch = c.Members[res.Live[0]].Switch.Epoch()

	res.Violations = append(res.Violations, checkConverged(c, res.Live)...)
	res.Violations = append(res.Violations, checkLiveness(bodies, res.Live)...)
	res.Violations = append(res.Violations, checkCommonOrder(bodies, res.Live)...)
	res.Violations = append(res.Violations, checkEpochBoundary(bodies)...)
	res.Violations = append(res.Violations, checkNoForgedDelivery(bodies)...)
	res.Violations = append(res.Violations, checkNoDoubleDelivery(bodies)...)
	res.Violations = append(res.Violations, checkBoundedMemory(c, res.Live)...)
	res.Violations = append(res.Violations, checkNoSilentLoss(c, res.Live)...)
	res.Violations = append(res.Violations, checkBoundedDisruption(disrupt, cfg.DisruptionBudget)...)
	res.Violations = append(res.Violations, checkEventualReinclusion(c, res.Live)...)
	if res.Failed() {
		res.FlightRecord = flight.Snapshot()
		res.FlightDropped = flight.Dropped()
	}
	res.attachTelemetry(tel, horizon)
	return res, c, nil
}

// telemetryTailWindows is how many of the run's last windows a failing
// result carries as its quick-look snapshot.
const telemetryTailWindows = 5

// attachTelemetry finalizes the run's telemetry at the run horizon and
// moves the series into the result; failing runs also keep the last few
// windows as a tail next to the flight-recorder trace. No-op when
// telemetry was off.
func (r *Result) attachTelemetry(tel *telemetry.Telemetry, end time.Duration) {
	if tel == nil {
		return
	}
	tel.Finish(end)
	r.Windows = tel.Sampler.Windows()
	r.Rounds = tel.Audit.Finalize()
	if r.Failed() && len(r.Windows) > 0 {
		tail := r.Windows
		if len(tail) > telemetryTailWindows {
			tail = tail[len(tail)-telemetryTailWindows:]
		}
		r.TelemetryTail = tail
	}
}

// statsFromMetrics rebuilds the aggregate switching.Stats of the live
// members from the event-derived registry. Every Stats field has a 1:1
// event emission, so this equals summing the members' own counters —
// the consistency test asserts exactly that.
func statsFromMetrics(m *obs.Metrics, live []ids.ProcID) switching.Stats {
	var s switching.Stats
	for _, p := range live {
		s.TokenPasses += m.Counter(p, obs.KeyTokenPasses)
		s.SwitchesCompleted += m.Counter(p, obs.KeySwitchesCompleted)
		s.Buffered += m.Counter(p, obs.KeyBuffered)
		s.StaleDropped += m.Counter(p, obs.KeyStaleDropped)
		s.WedgeTimeouts += m.Counter(p, obs.KeyWedgeTimeouts)
		s.TokensRegenerated += m.Counter(p, obs.KeyTokensRegenerated)
		s.SwitchesAborted += m.Counter(p, obs.KeySwitchesAborted)
		s.ForcedAdvances += m.Counter(p, obs.KeyForcedAdvances)
		s.MalformedDropped += m.Counter(p, obs.KeyMalformedDropped)
		s.Quarantines += m.Counter(p, obs.KeyQuarantines)
		s.AuthFailed += m.Counter(p, obs.KeyAuthFailed)
		s.Shed += m.Counter(p, obs.KeyShed)
		s.Backpressured += m.Counter(p, obs.KeyBackpressured)
		s.RetriedSends += m.Counter(p, obs.KeyRetriedSends)
		s.SuspicionsRaised += m.Counter(p, obs.KeySuspicionsRaised)
		s.SuspicionsCleared += m.Counter(p, obs.KeySuspicionsCleared)
		s.FlapPenalties += m.Counter(p, obs.KeyFlapPenalties)
		s.DegradedSkips += m.Counter(p, obs.KeyDegradedSkips)
		s.Reincludes += m.Counter(p, obs.KeyReincludes)
	}
	return s
}

// spikeCastsPerMult and spikeCastSpacing shape the flash crowd: Size×8
// extra casts at a fixed 30µs cadence — far below the overload tier's
// 200µs service interval, so the queues genuinely fill.
const (
	spikeCastsPerMult = 8
	spikeCastSpacing  = 30 * time.Microsecond
)

// chaosSessionKey is the fixed group session key of forgery runs: every
// member derives the same epoch keys from it, and the generated forgers
// do not hold it.
var chaosSessionKey = []byte("chaos harness group session key")

// replayCaptureMax bounds the adversary tap's buffer per run.
const replayCaptureMax = 512

// forgedFrame crafts the wire bytes of a KindForge event: a
// syntactically valid protocol frame — mux header, FIFO cast, epoch
// tag, well-formed application message — sealed under a key derived
// from a guessed session secret. Everything about it parses; only the
// MAC cannot verify. The body carries the FORGED marker the
// no-forged-delivery invariant scans for.
func forgedFrame(ev Event) []byte {
	app := proto.AppMsg{
		ID:     proto.MakeMsgID(ev.From, uint32(40000+ev.Size)),
		Sender: ev.From,
		Body:   []byte(fmt.Sprintf("e%d-FORGED.%d", ev.Epoch, ev.Size)),
	}
	e := wire.NewEncoder(16)
	e.Channel(ids.ProtocolChannel(int(ev.Epoch % 2)))
	e.U8(1) // FIFO cast
	e.Uvarint(uint64(40000 + ev.Size))
	e.Uvarint(ev.Epoch)
	inner := e.Prepend(app.Encode())
	return wire.SealAuth(wire.DeriveEpochKey([]byte("attacker guessed key"), ev.Epoch), ev.Epoch, inner)
}

// capturePanic runs fn and renders a recovered panic as an invariant
// violation string ("" when fn returns normally).
func capturePanic(fn func()) (violation string) {
	defer func() {
		if r := recover(); r != nil {
			violation = fmt.Sprintf("panic: %v", r)
		}
	}()
	fn()
	return ""
}

// cast multicasts an epoch-tagged application message from p.
func cast(c *swtest.SwitchedCluster, p ids.ProcID, uniq uint32, body string) {
	sw := c.Members[p].Switch
	m := proto.AppMsg{
		ID:     proto.MakeMsgID(p, uniq),
		Sender: p,
		Body:   []byte(fmt.Sprintf("e%d-%s", sw.SendEpoch(), body)),
	}
	_ = sw.Cast(m.Encode())
}

// othersOf lists every member except cut.
func othersOf(n int, cut ids.ProcID) []ids.ProcID {
	var out []ids.ProcID
	for p := 0; p < n; p++ {
		if ids.ProcID(p) != cut {
			out = append(out, ids.ProcID(p))
		}
	}
	return out
}
