// Package chaos is a seeded fault-injection harness for the switching
// protocol's recovery layer (E13) and its adversarial-input hardening
// (E15). A generator expands a seed into a deterministic schedule of
// faults — crash-stop failures, partitions, drop/duplicate/reorder
// bursts, and (when enabled) bit-flip corruption, truncation, and
// garbage-injection attacks — at random virtual times over an
// internal/simnet run. The runner replays a schedule against a cluster
// of recovery-enabled switches (with the defensive ingress and
// integrity envelope turned on whenever the schedule carries
// corruption), drives background traffic and switch requests through
// it, heals all faults, and then checks the system's invariants: no
// panic anywhere in the stack (a panic is converted into a violation
// with the flight recorder's tail), the ring is not deadlocked
// (post-heal probes reach every live member), the preserved Table 1
// properties hold on the survivors' traces (pairwise common delivery
// order, old-before-new epoch boundary), and every live member
// converged to one epoch.
//
// Everything is deterministic per seed: the same seed generates the
// same schedule and the same simulation, which makes every sweep
// failure replayable.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ids"
)

// Kind labels a fault event.
type Kind uint8

const (
	// KindCrash crash-stops the target member (never repaired).
	KindCrash Kind = iota + 1
	// KindPartition cuts the target member off from the rest of the
	// group from At until Until.
	KindPartition
	// KindBurst subjects the whole medium to message drops, duplicates
	// and reordering jitter from At until Until.
	KindBurst
	// KindCorrupt flips random payload bits on in-flight deliveries
	// from At until Until.
	KindCorrupt
	// KindTruncate cuts in-flight deliveries short at a random length
	// from At until Until.
	KindTruncate
	// KindGarbage injects a burst of random bytes at At, addressed to
	// Target and attributed to From.
	KindGarbage
	// KindForge injects a syntactically valid protocol frame sealed
	// under a key the attacker guessed (not the group session key) at
	// At, addressed to Target and attributed to From.
	KindForge
	// KindReplay re-injects a frame captured earlier off the wire — a
	// verbatim genuine transmission, possibly from a retired epoch.
	KindReplay
	// KindFlashCrowd multiplies the active sender population by Size
	// from At until Until — the ROADMAP's "sender count spikes 10x
	// mid-run" scenario, exercised against the overload layer.
	KindFlashCrowd
	// KindSlowNode stretches the target member's per-packet CPU charges
	// by Size× from At until Until — a gray failure: the member stays
	// up and correct but lags.
	KindSlowNode
	// KindLinkFault overlays drop/duplicate probabilities and a fixed
	// extra delay on the single directed link From→Target from At until
	// Until — an asymmetric gray link: traffic the other way is clean.
	KindLinkFault
	// KindFlap partitions the directed link From→Target every Period
	// (blocked for one period, open for the next) from At until Until —
	// the membership flapping that exercises suspicion damping.
	KindFlap
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindPartition:
		return "partition"
	case KindBurst:
		return "burst"
	case KindCorrupt:
		return "corrupt"
	case KindTruncate:
		return "truncate"
	case KindGarbage:
		return "garbage"
	case KindForge:
		return "forge"
	case KindReplay:
		return "replay"
	case KindFlashCrowd:
		return "flashcrowd"
	case KindSlowNode:
		return "slownode"
	case KindLinkFault:
		return "linkfault"
	case KindFlap:
		return "flap"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one fault in a schedule.
type Event struct {
	At   time.Duration
	Kind Kind
	// Target is the afflicted member (crash, partition).
	Target ids.ProcID
	// Until ends a partition or burst window.
	Until time.Duration
	// Drop/Dup/Jitter parameterize a burst.
	Drop   float64
	Dup    float64
	Jitter time.Duration
	// Corrupt/Truncate are the per-delivery probabilities of a
	// corruption or truncation window.
	Corrupt  float64
	Truncate float64
	// From/Size parameterize a garbage injection: Size random bytes
	// delivered to Target, attributed to From. For forgeries, Size is a
	// per-schedule uniqueness tag instead.
	From ids.ProcID
	Size int
	// Epoch is the switching epoch a forged frame claims.
	Epoch uint64
	// Index selects a captured frame for a replay, taken modulo the
	// number of frames captured by injection time (skipped when none).
	Index int
	// Period is a flap's half-cycle: the From→Target link is blocked
	// for one Period, open for the next, until the window closes.
	Period time.Duration
}

// SwitchReq schedules a protocol-switch request.
type SwitchReq struct {
	At time.Duration
	By ids.ProcID
}

// Send schedules one background application multicast.
type Send struct {
	At   time.Duration
	From ids.ProcID
}

// Schedule is a deterministic fault plan for one run.
type Schedule struct {
	Seed     int64
	N        int
	Horizon  time.Duration
	Events   []Event
	Switches []SwitchReq
	Traffic  []Send
}

// HasCorruption reports whether the schedule contains any adversarial
// input fault (corruption, truncation, or garbage injection). The
// runner enables the switching layer's defensive ingress — integrity
// envelope plus quarantine — exactly when this is true, so legacy
// schedules keep the legacy wire format byte for byte.
func (s Schedule) HasCorruption() bool {
	for _, e := range s.Events {
		switch e.Kind {
		case KindCorrupt, KindTruncate, KindGarbage:
			return true
		}
	}
	return false
}

// HasForgery reports whether the schedule contains any authentication
// fault (forged frames or wire replays). The runner upgrades the
// defensive ingress to the authenticated envelope — epoch-keyed MACs
// plus replay capture — exactly when this is true, so corruption-only
// and legacy schedules keep their wire formats byte for byte.
func (s Schedule) HasForgery() bool {
	for _, e := range s.Events {
		switch e.Kind {
		case KindForge, KindReplay:
			return true
		}
	}
	return false
}

// HasFlashCrowd reports whether the schedule contains a flash-crowd
// sender spike. The runner enables the switching layer's overload
// protection (bounded queues, backpressure, shedding) exactly when
// this is true, so every other schedule keeps the legacy unqueued
// message path.
func (s Schedule) HasFlashCrowd() bool {
	for _, e := range s.Events {
		if e.Kind == KindFlashCrowd {
			return true
		}
	}
	return false
}

// HasGrayFailure reports whether the schedule contains any gray fault
// (slow node, asymmetric link, or flapping link). The runner enables
// the switching layer's adaptive suspicion and flap damping — and gives
// the simulated network nonzero per-packet CPU costs so slow nodes
// actually lag — exactly when this is true, so every other schedule
// keeps the legacy fixed detector and free-CPU timing byte for byte.
func (s Schedule) HasGrayFailure() bool {
	for _, e := range s.Events {
		switch e.Kind {
		case KindSlowNode, KindLinkFault, KindFlap:
			return true
		}
	}
	return false
}

// Kinds returns the distinct fault kinds present, in order.
func (s Schedule) Kinds() []Kind {
	seen := map[Kind]bool{}
	var out []Kind
	for _, e := range s.Events {
		if !seen[e.Kind] {
			seen[e.Kind] = true
			out = append(out, e.Kind)
		}
	}
	return out
}

// GenConfig tunes the schedule generator.
type GenConfig struct {
	// N is the group size (default 4; minimum 4 so that one member can
	// crash and another partition while both sequencer members stay
	// up).
	N int
	// Horizon is the window in which faults, traffic and switch
	// requests are placed (default 400ms). All partitions and bursts
	// heal before the horizon.
	Horizon time.Duration
	// CrashProb / PartitionProb / BurstProb are the independent
	// probabilities of each fault class appearing in a schedule
	// (defaults 0.6 / 0.5 / 0.5). A schedule that rolls none of them is
	// given a crash so every schedule exercises recovery.
	CrashProb     float64
	PartitionProb float64
	BurstProb     float64
	// Messages is how many background multicasts to schedule
	// (default 14).
	Messages int
	// Corruption enables the adversarial-input fault classes with
	// default probabilities (CorruptProb 0.5, TruncateProb 0.4,
	// GarbageProb 0.4). With it false and the probabilities zero, the
	// generator's random draw sequence is identical to the legacy
	// generator, so legacy seeds expand to the same schedules.
	Corruption bool
	// CorruptProb / TruncateProb / GarbageProb are the independent
	// probabilities of each adversarial-input fault class appearing in
	// a schedule. They default to zero unless Corruption is set.
	CorruptProb  float64
	TruncateProb float64
	GarbageProb  float64
	// Forgery enables the authentication fault classes with default
	// probabilities (ForgeProb 0.5, ReplayProb 0.5). Their draws come
	// after every legacy and corruption draw, so enabling forgery only
	// appends to the schedules the other configs would generate.
	Forgery bool
	// ForgeProb / ReplayProb are the independent probabilities of each
	// authentication fault class appearing in a schedule. They default
	// to zero unless Forgery is set.
	ForgeProb  float64
	ReplayProb float64
	// FlashCrowd enables the flash-crowd fault class with its default
	// probability (FlashCrowdProb 0.6). Its draws come after every
	// legacy, corruption and forgery draw, so enabling flash crowds
	// only appends to the schedules the other configs would generate.
	FlashCrowd bool
	// FlashCrowdProb is the probability of a flash-crowd spike
	// appearing in a schedule. It defaults to zero unless FlashCrowd is
	// set.
	FlashCrowdProb float64
	// GrayFailure enables the gray fault classes with default
	// probabilities (SlowNodeProb 0.5, LinkFaultProb 0.5, FlapProb
	// 0.6). Their draws come after every legacy, corruption, forgery
	// and flash-crowd draw, so enabling gray failures only appends to
	// the schedules the other configs would generate.
	GrayFailure bool
	// SlowNodeProb / LinkFaultProb / FlapProb are the independent
	// probabilities of each gray fault class appearing in a schedule.
	// They default to zero unless GrayFailure is set.
	SlowNodeProb  float64
	LinkFaultProb float64
	FlapProb      float64
}

func (c *GenConfig) defaults() {
	if c.N == 0 {
		c.N = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 400 * time.Millisecond
	}
	if c.CrashProb == 0 {
		c.CrashProb = 0.6
	}
	if c.PartitionProb == 0 {
		c.PartitionProb = 0.5
	}
	if c.BurstProb == 0 {
		c.BurstProb = 0.5
	}
	if c.Messages == 0 {
		c.Messages = 14
	}
	if c.Corruption {
		if c.CorruptProb == 0 {
			c.CorruptProb = 0.5
		}
		if c.TruncateProb == 0 {
			c.TruncateProb = 0.4
		}
		if c.GarbageProb == 0 {
			c.GarbageProb = 0.4
		}
	}
	if c.Forgery {
		if c.ForgeProb == 0 {
			c.ForgeProb = 0.5
		}
		if c.ReplayProb == 0 {
			c.ReplayProb = 0.5
		}
	}
	if c.FlashCrowd {
		if c.FlashCrowdProb == 0 {
			c.FlashCrowdProb = 0.6
		}
	}
	if c.GrayFailure {
		if c.SlowNodeProb == 0 {
			c.SlowNodeProb = 0.5
		}
		if c.LinkFaultProb == 0 {
			c.LinkFaultProb = 0.5
		}
		if c.FlapProb == 0 {
			c.FlapProb = 0.6
		}
	}
}

// Generate expands a seed into a deterministic fault schedule. Faults
// only target members ≥ 2: members 0 and 1 act as the sequencers of the
// two sub-protocols, and killing a sub-protocol's own coordinator tests
// that protocol's (absent) fault tolerance, not the switching layer's.
func Generate(seed int64, cfg GenConfig) (Schedule, error) {
	cfg.defaults()
	if cfg.N < 4 {
		return Schedule{}, fmt.Errorf("chaos: need N >= 4, got %d", cfg.N)
	}
	rng := rand.New(rand.NewSource(seed))
	h := cfg.Horizon
	s := Schedule{Seed: seed, N: cfg.N, Horizon: h}

	window := func(lo, hi float64) (time.Duration, time.Duration) {
		a := time.Duration((lo + rng.Float64()*(hi-lo-0.1)) * float64(h))
		b := a + time.Duration((0.1+rng.Float64()*0.3)*float64(h))
		if b > h {
			b = h
		}
		return a, b
	}
	victim := func() ids.ProcID { return ids.ProcID(2 + rng.Intn(cfg.N-2)) }

	if rng.Float64() < cfg.CrashProb {
		at, _ := window(0.2, 0.8)
		s.Events = append(s.Events, Event{At: at, Kind: KindCrash, Target: victim()})
	}
	if rng.Float64() < cfg.PartitionProb {
		at, until := window(0.1, 0.8)
		s.Events = append(s.Events, Event{At: at, Kind: KindPartition, Target: victim(), Until: until})
	}
	if rng.Float64() < cfg.BurstProb {
		at, until := window(0.1, 0.8)
		s.Events = append(s.Events, Event{
			At: at, Kind: KindBurst, Until: until,
			Drop:   0.05 + 0.3*rng.Float64(),
			Dup:    0.2 * rng.Float64(),
			Jitter: time.Duration(rng.Intn(2000)) * time.Microsecond,
		})
	}
	if len(s.Events) == 0 {
		at, _ := window(0.2, 0.8)
		s.Events = append(s.Events, Event{At: at, Kind: KindCrash, Target: victim()})
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })

	// One or two switch requests from the never-faulted members.
	for i := 0; i < 1+rng.Intn(2); i++ {
		s.Switches = append(s.Switches, SwitchReq{
			At: time.Duration((0.1 + 0.7*rng.Float64()) * float64(h)),
			By: ids.ProcID(rng.Intn(2)),
		})
	}
	sort.Slice(s.Switches, func(i, j int) bool { return s.Switches[i].At < s.Switches[j].At })

	for i := 0; i < cfg.Messages; i++ {
		s.Traffic = append(s.Traffic, Send{
			At:   time.Duration(rng.Float64() * float64(h)),
			From: ids.ProcID(rng.Intn(cfg.N)),
		})
	}
	sort.Slice(s.Traffic, func(i, j int) bool { return s.Traffic[i].At < s.Traffic[j].At })

	// Adversarial-input faults. Their draws come after every legacy
	// draw (and are skipped entirely at probability zero), so a legacy
	// config consumes exactly the legacy random stream and expands to a
	// byte-identical schedule.
	var corr []Event
	if cfg.CorruptProb > 0 && rng.Float64() < cfg.CorruptProb {
		at, until := window(0.1, 0.8)
		corr = append(corr, Event{
			At: at, Kind: KindCorrupt, Until: until,
			Corrupt: 0.05 + 0.15*rng.Float64(),
		})
	}
	if cfg.TruncateProb > 0 && rng.Float64() < cfg.TruncateProb {
		at, until := window(0.1, 0.8)
		corr = append(corr, Event{
			At: at, Kind: KindTruncate, Until: until,
			Truncate: 0.03 + 0.1*rng.Float64(),
		})
	}
	if cfg.GarbageProb > 0 && rng.Float64() < cfg.GarbageProb {
		// A small burst of garbage packets, each fully determined here
		// (spoofed source, target, size) so the replay needs no draws.
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			from := rng.Intn(cfg.N)
			corr = append(corr, Event{
				At:     time.Duration((0.1 + 0.8*rng.Float64()) * float64(h)),
				Kind:   KindGarbage,
				From:   ids.ProcID(from),
				Target: ids.ProcID((from + 1 + rng.Intn(cfg.N-1)) % cfg.N),
				Size:   1 + rng.Intn(64),
			})
		}
		if rng.Float64() < 0.25 {
			// Occasionally a dense flood from one spoofed source —
			// enough packets to cross the runner's quarantine threshold,
			// so the sweep exercises the suspect-instead-of-wedge
			// escalation (the falsely accused live peer is restored by
			// its next heartbeat).
			from := rng.Intn(cfg.N)
			target := ids.ProcID((from + 1 + rng.Intn(cfg.N-1)) % cfg.N)
			start := time.Duration((0.1 + 0.6*rng.Float64()) * float64(h))
			for i := 0; i < quarantineThreshold+5; i++ {
				corr = append(corr, Event{
					At:     start + time.Duration(i)*50*time.Microsecond,
					Kind:   KindGarbage,
					From:   ids.ProcID(from),
					Target: target,
					Size:   1 + rng.Intn(64),
				})
			}
		}
	}
	if len(corr) > 0 {
		s.Events = append(s.Events, corr...)
		sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	}

	// Authentication faults. Their draws come after every legacy and
	// corruption draw (and are skipped entirely at probability zero), so
	// corruption-only and legacy configs consume exactly their own
	// random streams and expand to byte-identical schedules.
	var forg []Event
	if cfg.ForgeProb > 0 && rng.Float64() < cfg.ForgeProb {
		// A handful of forged frames, each fully determined here
		// (spoofed source, target, claimed epoch, uniqueness tag) so the
		// replay needs no draws.
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			from := rng.Intn(cfg.N)
			forg = append(forg, Event{
				At:     time.Duration((0.1 + 0.8*rng.Float64()) * float64(h)),
				Kind:   KindForge,
				From:   ids.ProcID(from),
				Target: ids.ProcID((from + 1 + rng.Intn(cfg.N-1)) % cfg.N),
				Epoch:  uint64(rng.Intn(3)),
				Size:   i,
			})
		}
		if rng.Float64() < 0.25 {
			// Occasionally a dense forgery flood from one spoofed source
			// — enough frames to cross the quarantine threshold, so the
			// sweep exercises the suspect-instead-of-wedge escalation on
			// the authentication path too.
			from := rng.Intn(cfg.N)
			target := ids.ProcID((from + 1 + rng.Intn(cfg.N-1)) % cfg.N)
			epoch := uint64(rng.Intn(3))
			start := time.Duration((0.1 + 0.6*rng.Float64()) * float64(h))
			for i := 0; i < quarantineThreshold+5; i++ {
				forg = append(forg, Event{
					At:     start + time.Duration(i)*50*time.Microsecond,
					Kind:   KindForge,
					From:   ids.ProcID(from),
					Target: target,
					Epoch:  epoch,
					Size:   100 + i,
				})
			}
		}
	}
	if cfg.ReplayProb > 0 && rng.Float64() < cfg.ReplayProb {
		// Wire replays land in the later part of the horizon, after
		// traffic has been captured — and often after a switch round has
		// retired the epoch the captured frame was sealed in.
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			_ = i
			forg = append(forg, Event{
				At:    time.Duration((0.3 + 0.65*rng.Float64()) * float64(h)),
				Kind:  KindReplay,
				Index: rng.Intn(1 << 16),
			})
		}
	}
	if len(forg) > 0 {
		s.Events = append(s.Events, forg...)
		sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	}

	// Flash-crowd faults. Their draws come after every legacy,
	// corruption and forgery draw (and are skipped entirely at
	// probability zero), so all earlier tiers consume exactly their own
	// random streams and expand to byte-identical schedules.
	if cfg.FlashCrowdProb > 0 && rng.Float64() < cfg.FlashCrowdProb {
		at, until := window(0.15, 0.6)
		s.Events = append(s.Events, Event{
			At: at, Kind: KindFlashCrowd, Until: until,
			// Size is the sender multiplier: 4x up to the ROADMAP's 10x.
			Size: 4 + rng.Intn(7),
		})
		sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	}

	// Gray faults. Their draws come after every legacy, corruption,
	// forgery and flash-crowd draw (and are skipped entirely at
	// probability zero), so all earlier tiers consume exactly their own
	// random streams and expand to byte-identical schedules. Every gray
	// window ends by 0.85×horizon: the faulted member must resume clean
	// heartbeats — and its flap-damping penalty must decay past reuse —
	// well before the post-heal probes, or the eventual-re-inclusion
	// invariant would be testing the schedule instead of the detector.
	var gray []Event
	if cfg.SlowNodeProb > 0 && rng.Float64() < cfg.SlowNodeProb {
		at, until := window(0.1, 0.6)
		gray = append(gray, Event{
			At: at, Kind: KindSlowNode, Target: victim(), Until: until,
			// Size is the CPU stretch factor: modest, so the member lags
			// without its queue diverging (a diverged queue is a crash in
			// slow motion, not a gray failure).
			Size: 2 + rng.Intn(5),
		})
	}
	if cfg.LinkFaultProb > 0 && rng.Float64() < cfg.LinkFaultProb {
		at, until := window(0.1, 0.6)
		from := victim()
		gray = append(gray, Event{
			At: at, Kind: KindLinkFault, Until: until,
			// The lossy direction is always out of a non-sequencer, so
			// the member that ends up suspected (and possibly damped) is
			// never a sub-protocol coordinator.
			From:   from,
			Target: ids.ProcID((int(from) + 1 + rng.Intn(cfg.N-1)) % cfg.N),
			Drop:   0.1 + 0.4*rng.Float64(),
			Dup:    0.2 * rng.Float64(),
			Jitter: time.Duration(rng.Intn(3000)) * time.Microsecond,
		})
	}
	if cfg.FlapProb > 0 && rng.Float64() < cfg.FlapProb {
		// Flap windows are drawn longer than the generic window helper
		// gives: a flap only produces suspect→restore cycles when each
		// blocked half-cycle outlasts the failure-detector timeout, and
		// damping needs several such cycles to charge up.
		at := time.Duration((0.05 + 0.2*rng.Float64()) * float64(h))
		until := at + time.Duration((0.3+0.3*rng.Float64())*float64(h))
		if max := time.Duration(0.85 * float64(h)); until > max {
			until = max
		}
		from := victim()
		gray = append(gray, Event{
			At: at, Kind: KindFlap, Until: until,
			From:   from,
			Target: ids.ProcID((int(from) + 1 + rng.Intn(cfg.N-1)) % cfg.N),
			// Half-cycle comfortably past the detector timeout (5× the
			// 5ms heartbeat interval the runner configures).
			Period: time.Duration(30+rng.Intn(31)) * time.Millisecond,
		})
	}
	if len(gray) > 0 {
		s.Events = append(s.Events, gray...)
		sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	}
	return s, nil
}
