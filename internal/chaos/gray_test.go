package chaos

import (
	"reflect"
	"testing"
	"time"
)

// withoutGray strips gray-failure events from a schedule's event list,
// leaving the legacy + corruption + forgery + flash-crowd prefix.
func withoutGray(events []Event) []Event {
	var out []Event
	for _, e := range events {
		switch e.Kind {
		case KindSlowNode, KindLinkFault, KindFlap:
		default:
			out = append(out, e)
		}
	}
	return out
}

// TestGenerateGray pins the gray-failure generator's contracts:
// determinism, well-formed events, and — critically — that enabling
// gray failures only appends to the schedules every earlier config
// would generate. The gray draws happen after every legacy, corruption,
// forgery and flash-crowd draw, so Generate(seed, {…, GrayFailure})
// minus the gray events must equal Generate(seed, {…}) exactly.
func TestGenerateGray(t *testing.T) {
	graySeen := map[Kind]int{}
	base := GenConfig{Corruption: true, Forgery: true, FlashCrowd: true}
	withGray := base
	withGray.GrayFailure = true
	for seed := int64(0); seed < 50; seed++ {
		full, err := Generate(seed, base)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Generate(seed, withGray)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, withGray)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\nvs\n%+v", seed, a, b)
		}
		if !reflect.DeepEqual(withoutGray(a.Events), full.Events) {
			t.Errorf("seed %d: gray config disturbed the earlier-tier events", seed)
		}
		if !reflect.DeepEqual(a.Switches, full.Switches) || !reflect.DeepEqual(a.Traffic, full.Traffic) {
			t.Errorf("seed %d: gray config disturbed the switches/traffic", seed)
		}
		// Gray failures without the other tiers still append after the
		// legacy draws only.
		legacy, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		grayOnly, err := Generate(seed, GenConfig{GrayFailure: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(withoutGray(grayOnly.Events), legacy.Events) {
			t.Errorf("seed %d: gray-only config disturbed the legacy fault events", seed)
		}
		for _, ev := range a.Events {
			switch ev.Kind {
			case KindSlowNode:
				graySeen[ev.Kind]++
				if ev.At >= ev.Until || ev.Until > a.Horizon {
					t.Errorf("seed %d: bad slow-node window: %+v", seed, ev)
				}
				if ev.Size < 2 || ev.Size > 6 {
					t.Errorf("seed %d: slow-node factor %d outside [2,6]", seed, ev.Size)
				}
				if ev.Target < 2 {
					t.Errorf("seed %d: slow node targets sequencer %v", seed, ev.Target)
				}
			case KindLinkFault:
				graySeen[ev.Kind]++
				if ev.At >= ev.Until || ev.Until > a.Horizon {
					t.Errorf("seed %d: bad link-fault window: %+v", seed, ev)
				}
				if ev.Drop <= 0 || ev.Drop >= 0.5 || ev.Dup < 0 || ev.Dup >= 0.2 {
					t.Errorf("seed %d: link-fault probabilities out of range: %+v", seed, ev)
				}
				if ev.From < 2 || ev.From == ev.Target {
					t.Errorf("seed %d: bad link-fault endpoints %v→%v", seed, ev.From, ev.Target)
				}
			case KindFlap:
				graySeen[ev.Kind]++
				if ev.At >= ev.Until || ev.Until > a.Horizon {
					t.Errorf("seed %d: bad flap window: %+v", seed, ev)
				}
				if ev.Period < 30*time.Millisecond || ev.Period > 60*time.Millisecond {
					t.Errorf("seed %d: flap period %v outside [30ms,60ms]", seed, ev.Period)
				}
				if ev.From < 2 || ev.From == ev.Target {
					t.Errorf("seed %d: bad flap endpoints %v→%v", seed, ev.From, ev.Target)
				}
			}
		}
		if a.HasGrayFailure() != (len(a.Events) > len(full.Events)) {
			t.Errorf("seed %d: HasGrayFailure()=%v disagrees with event list", seed, a.HasGrayFailure())
		}
		if full.HasGrayFailure() || legacy.HasGrayFailure() {
			t.Errorf("seed %d: gray-free schedule claims a gray failure", seed)
		}
	}
	for _, k := range []Kind{KindSlowNode, KindLinkFault, KindFlap} {
		if graySeen[k] == 0 {
			t.Errorf("50 gray-enabled seeds never produced a %v event", k)
		}
	}
}

// TestSweepGray is E20's acceptance gate: ≥200 seeded schedules mixing
// every fault class with gray failures — slow nodes, asymmetric lossy
// links, and flapping links. Every schedule must pass every invariant —
// including the two always-on gray guarantees, bounded disruption (no
// 100ms window of virtual time exceeds the recovery-action budget) and
// eventual re-inclusion (no live member still routes around another
// live member at end of run) — and the adaptive layer must demonstrably
// engage across the sweep: suspicion raises, flap penalties, degraded
// skips and re-inclusions all non-zero.
func TestSweepGray(t *testing.T) {
	const schedules = 200
	kinds := map[Kind]int{}
	var stats struct{ raised, penalties, skips, reincludes uint64 }
	var slowSets, linkSets, flapSets uint64
	for seed := int64(1); seed <= schedules; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true, Forgery: true, FlashCrowd: true, GrayFailure: true})
		if err != nil {
			t.Fatal(err)
		}
		res, c, err := run(sched, RunConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, k := range res.Kinds {
			kinds[k]++
		}
		stats.raised += res.Stats.SuspicionsRaised
		stats.penalties += res.Stats.FlapPenalties
		stats.skips += res.Stats.DegradedSkips
		stats.reincludes += res.Stats.Reincludes
		ns := c.Net.Stats()
		slowSets += ns.SlowNodeSets
		linkSets += ns.LinkFaultSets
		flapSets += ns.FlapSets
		for _, v := range res.Violations {
			t.Errorf("seed %d (%v): %s", seed, res.Kinds, v)
		}
		if t.Failed() && seed >= 10 {
			t.Fatalf("aborting sweep after seed %d", seed)
		}
	}
	for _, k := range []Kind{KindSlowNode, KindLinkFault, KindFlap} {
		if kinds[k] < schedules/10 {
			t.Errorf("%v appeared in only %d/%d schedules", k, kinds[k], schedules)
		}
	}
	if slowSets == 0 || linkSets == 0 || flapSets == 0 {
		t.Errorf("sweep never armed a gray fault: slow=%d link=%d flap=%d", slowSets, linkSets, flapSets)
	}
	if stats.raised == 0 {
		t.Error("sweep never raised a graded suspicion — the adaptive detector was not exercised")
	}
	if stats.penalties == 0 {
		t.Error("sweep never charged a flap penalty — the damping layer was not exercised")
	}
	if stats.skips == 0 {
		t.Error("sweep never skipped a damped member — degraded-mode ring repair was not exercised")
	}
	if stats.reincludes == 0 {
		t.Error("sweep never re-included a damped member — the decay path was not exercised")
	}
	t.Logf("fault mix over %d schedules: %v; raised %d, penalties %d, skips %d, reincludes %d",
		schedules, kinds, stats.raised, stats.penalties, stats.skips, stats.reincludes)
}

// TestRunDeterministicGray replays gray schedules twice and requires
// identical outcomes, pinning that the gray network faults (per-link
// draws, CPU stretching, flap toggles) and the adaptive detector
// (integer-scaled suspicion, penalty decay) draw only from the seeded
// simulation stream.
func TestRunDeterministicGray(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true, Forgery: true, FlashCrowd: true, GrayFailure: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Delivered != b.Delivered || a.Events != b.Events ||
			!reflect.DeepEqual(a.Stats, b.Stats) ||
			!reflect.DeepEqual(a.Violations, b.Violations) {
			t.Errorf("seed %d (%v): replay diverged:\n  %+v\n  %+v", seed, a.Kinds, a, b)
		}
	}
}

// TestGrayFixedDetectorBaseline pins the E20 baseline arm: the same
// gray schedules replayed with RunConfig.FixedDetector keep the legacy
// detector (no adaptive counters move) and still satisfy the safety
// invariants — the stability study compares the two arms' disruption,
// not their correctness.
func TestGrayFixedDetectorBaseline(t *testing.T) {
	var aborted, adaptiveEvents uint64
	for seed := int64(1); seed <= 30; seed++ {
		sched, err := Generate(seed, GenConfig{GrayFailure: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sched, RunConfig{FixedDetector: true, DisruptionBudget: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		aborted += res.Stats.SwitchesAborted
		adaptiveEvents += res.Stats.SuspicionsRaised + res.Stats.FlapPenalties +
			res.Stats.DegradedSkips + res.Stats.Reincludes
		for _, v := range res.Violations {
			t.Errorf("seed %d (%v): %s", seed, res.Kinds, v)
		}
	}
	if adaptiveEvents != 0 {
		t.Errorf("fixed-detector runs moved adaptive counters %d times", adaptiveEvents)
	}
	_ = aborted
}
