package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestGenerateDeterministic pins the replayability contract: the same
// seed always expands to the same schedule.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\nvs\n%+v", seed, a, b)
		}
		if len(a.Events) == 0 {
			t.Fatalf("seed %d: schedule has no faults", seed)
		}
		for _, ev := range a.Events {
			if ev.At > a.Horizon {
				t.Fatalf("seed %d: event after horizon: %+v", seed, ev)
			}
			if ev.Kind != KindCrash && (ev.Until <= ev.At || ev.Until > a.Horizon) {
				t.Fatalf("seed %d: bad fault window: %+v", seed, ev)
			}
			if ev.Kind != KindBurst && ev.Target < 2 {
				t.Fatalf("seed %d: fault targets a sequencer member: %+v", seed, ev)
			}
		}
		if len(a.Switches) == 0 {
			t.Fatalf("seed %d: no switch requests", seed)
		}
	}
}

func TestGenerateRejectsSmallGroups(t *testing.T) {
	if _, err := Generate(1, GenConfig{N: 3}); err == nil {
		t.Fatal("accepted N=3")
	}
}

// TestSweep is E13's acceptance gate: ≥200 seeded fault schedules —
// crashes, partitions, and drop/duplicate/reorder bursts, all with
// switch rounds in flight — every one of which must run to completion
// with no deadlock and no violation of the preserved properties on the
// survivors' traces.
func TestSweep(t *testing.T) {
	const schedules = 200
	kinds := map[Kind]int{}
	for seed := int64(1); seed <= schedules; seed++ {
		sched, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, k := range res.Kinds {
			kinds[k]++
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d (%v): %s", seed, res.Kinds, v)
		}
		if t.Failed() && seed >= 10 {
			t.Fatalf("aborting sweep after seed %d", seed)
		}
	}
	// The sweep must actually have exercised every fault class.
	for _, k := range []Kind{KindCrash, KindPartition, KindBurst} {
		if kinds[k] < schedules/10 {
			t.Errorf("fault class %v appeared in only %d/%d schedules", k, kinds[k], schedules)
		}
	}
	t.Logf("fault mix over %d schedules: %v", schedules, kinds)
}

// TestRecoveryBound asserts the paper-facing recovery-time bound: on a
// clean network, a crash landing at a random point of a switch round is
// detected and the round re-run within 10×TokenInterval of virtual
// time, for every seed.
func TestRecoveryBound(t *testing.T) {
	const ti = 5 * time.Millisecond
	bound := 10 * ti
	worst := time.Duration(0)
	for seed := int64(1); seed <= 25; seed++ {
		d, err := MeasureRecovery(seed, 4, ti)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d > worst {
			worst = d
		}
		if d > bound {
			t.Errorf("seed %d: recovery took %v > %v", seed, d, bound)
		}
	}
	t.Logf("worst recovery over 25 seeds: %v (bound %v)", worst, bound)
}

// TestRunReportsRecoveryWork sanity-checks the result plumbing: a
// schedule with a crash must show the recovery machinery engaging in
// the aggregated stats.
func TestRunReportsRecoveryWork(t *testing.T) {
	var sched Schedule
	for seed := int64(1); ; seed++ {
		s, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Kinds()) == 1 && s.Kinds()[0] == KindCrash {
			sched = s
			break
		}
	}
	res, err := Run(sched, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(res.Crashed) == 0 || len(res.Live) != sched.N-len(res.Crashed) {
		t.Fatalf("crash bookkeeping wrong: %+v", res)
	}
	if res.Stats.TokenPasses == 0 {
		t.Error("no token passes recorded")
	}
	if res.Delivered == 0 {
		t.Error("no deliveries recorded")
	}
}
