package chaos

import (
	"reflect"
	"testing"
)

// withoutFlashCrowd strips flash-crowd events from a schedule's event
// list, leaving the legacy + corruption + forgery prefix.
func withoutFlashCrowd(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind != KindFlashCrowd {
			out = append(out, e)
		}
	}
	return out
}

// TestGenerateFlashCrowd pins the flash-crowd generator's contracts:
// determinism, well-formed events, and — critically — that enabling
// flash crowds only appends to the schedules every earlier config would
// generate. The flash-crowd draw happens after every legacy, corruption
// and forgery draw, so Generate(seed, {…, FlashCrowd}) minus the
// flash-crowd events must equal Generate(seed, {…}) exactly.
func TestGenerateFlashCrowd(t *testing.T) {
	flashSeen := 0
	for seed := int64(0); seed < 50; seed++ {
		full, err := Generate(seed, GenConfig{Corruption: true, Forgery: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Generate(seed, GenConfig{Corruption: true, Forgery: true, FlashCrowd: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, GenConfig{Corruption: true, Forgery: true, FlashCrowd: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\nvs\n%+v", seed, a, b)
		}
		if !reflect.DeepEqual(withoutFlashCrowd(a.Events), full.Events) {
			t.Errorf("seed %d: flash-crowd config disturbed the earlier-tier events", seed)
		}
		if !reflect.DeepEqual(a.Switches, full.Switches) || !reflect.DeepEqual(a.Traffic, full.Traffic) {
			t.Errorf("seed %d: flash-crowd config disturbed the switches/traffic", seed)
		}
		// Flash crowds without the adversarial tiers still append after
		// the legacy draws only.
		legacy, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fcOnly, err := Generate(seed, GenConfig{FlashCrowd: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(withoutFlashCrowd(fcOnly.Events), legacy.Events) {
			t.Errorf("seed %d: flash-crowd-only config disturbed the legacy fault events", seed)
		}
		for _, ev := range a.Events {
			if ev.Kind != KindFlashCrowd {
				continue
			}
			flashSeen++
			if ev.At >= ev.Until || ev.Until > a.Horizon {
				t.Errorf("seed %d: bad flash-crowd window: %+v", seed, ev)
			}
			if ev.Size < 4 || ev.Size > 10 {
				t.Errorf("seed %d: flash-crowd multiplier %d outside [4,10]", seed, ev.Size)
			}
		}
		if a.HasFlashCrowd() != (len(a.Events) > len(full.Events)) {
			t.Errorf("seed %d: HasFlashCrowd()=%v disagrees with event list", seed, a.HasFlashCrowd())
		}
		if full.HasFlashCrowd() || legacy.HasFlashCrowd() {
			t.Errorf("seed %d: flash-crowd-free schedule claims a flash crowd", seed)
		}
	}
	if flashSeen == 0 {
		t.Error("50 flash-crowd-enabled seeds never produced a flash-crowd event")
	}
}

// TestSweepFlashCrowd is E17's acceptance gate: ≥200 seeded schedules
// mixing every fault class with mid-run sender spikes. Every schedule
// must pass every invariant — including bounded memory (no queue ever
// exceeds its cap) and no silent loss (the overload ledger balances) —
// and the overload layer must demonstrably engage across the sweep:
// sheds, backpressure, and retried sends all non-zero.
func TestSweepFlashCrowd(t *testing.T) {
	const schedules = 200
	kinds := map[Kind]int{}
	var shed, backpressured, retried, spikes uint64
	for seed := int64(1); seed <= schedules; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true, Forgery: true, FlashCrowd: true})
		if err != nil {
			t.Fatal(err)
		}
		res, c, err := run(sched, RunConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, k := range res.Kinds {
			kinds[k]++
		}
		shed += res.Stats.Shed
		backpressured += res.Stats.Backpressured
		retried += res.Stats.RetriedSends
		spikes += c.Net.Stats().SenderSpikes
		for _, v := range res.Violations {
			t.Errorf("seed %d (%v): %s", seed, res.Kinds, v)
		}
		if t.Failed() && seed >= 10 {
			t.Fatalf("aborting sweep after seed %d", seed)
		}
	}
	if kinds[KindFlashCrowd] < schedules/10 {
		t.Errorf("flash crowds appeared in only %d/%d schedules", kinds[KindFlashCrowd], schedules)
	}
	if spikes == 0 {
		t.Error("sweep never spiked the sender population — the fault never fired")
	}
	if shed == 0 {
		t.Error("sweep never shed a frame — the bounded queues were not exercised")
	}
	if backpressured == 0 {
		t.Error("sweep never crossed the high watermark — backpressure was not exercised")
	}
	if retried == 0 {
		t.Error("sweep never retried a shed send — the backoff path was not exercised")
	}
	t.Logf("fault mix over %d schedules: %v; shed %d, backpressured %d, retried %d, spikes %d",
		schedules, kinds, shed, backpressured, retried, spikes)
}

// TestRunDeterministicFlashCrowd replays flash-crowd schedules twice and
// requires identical outcomes, pinning that the overload layer (queue
// service, watermark edges, and the jittered retry backoff) draws only
// from the seeded simulation stream.
func TestRunDeterministicFlashCrowd(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sched, err := Generate(seed, GenConfig{Corruption: true, Forgery: true, FlashCrowd: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sched, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Delivered != b.Delivered || a.Events != b.Events ||
			!reflect.DeepEqual(a.Stats, b.Stats) ||
			!reflect.DeepEqual(a.Violations, b.Violations) {
			t.Errorf("seed %d (%v): replay diverged:\n  %+v\n  %+v", seed, a.Kinds, a, b)
		}
	}
}
