package chaos

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// TestTelemetryWindowsMatchCumulativeMetrics is the sampler-side
// consistency invariant over real chaos runs: summing a member's
// windowed counter deltas over the whole series must reproduce the
// run's cumulative metrics registry exactly — the windows are a
// partition of the event stream, not a resampling of it. Checked for
// every member and every counter key, in both directions (no key
// appears in the windows that the registry lacks).
func TestTelemetryWindowsMatchCumulativeMetrics(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		sched, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		res, err := Run(sched, RunConfig{Telemetry: &telemetry.Config{}})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res.Violations)
		}
		if len(res.Windows) == 0 {
			t.Fatalf("seed %d: telemetry produced no windows", seed)
		}

		sums := make(map[ids.ProcID]map[string]uint64)
		for _, w := range res.Windows {
			for _, mw := range w.Members {
				p := ids.ProcID(mw.Proc)
				if sums[p] == nil {
					sums[p] = make(map[string]uint64)
				}
				for k, v := range mw.Counters {
					sums[p][k] += v
				}
			}
		}
		for _, mm := range res.Metrics.Snapshot() {
			p := ids.ProcID(mm.Proc)
			for k, v := range mm.Counters {
				if got := sums[p][k]; got != v {
					t.Errorf("seed %d: member %d key %s: windowed sum %d != cumulative %d",
						seed, mm.Proc, k, got, v)
				}
				delete(sums[p], k)
			}
			for k, v := range sums[p] {
				if v != 0 {
					t.Errorf("seed %d: member %d key %s: windows carry %d events the registry never saw",
						seed, mm.Proc, k, v)
				}
			}
		}
	}
}

// TestAuditRoundsExactlyOnce is the audit-trail acceptance invariant
// over real chaos runs: every switch round observed on the wire — every
// epoch carrying a SwitchStart, SwitchComplete, or SwitchAbort — yields
// exactly one audit record with a terminal outcome, the record's
// lifecycle counts equal the trace's event counts for that epoch, and
// no record exists for an epoch the round vocabulary never touched. The
// seed range must exercise both terminal outcomes so neither branch
// passes vacuously.
func TestAuditRoundsExactlyOnce(t *testing.T) {
	var sawComplete, sawAbort bool
	for seed := int64(1); seed <= 25; seed++ {
		sched, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		col := obs.NewCollector()
		res, err := Run(sched, RunConfig{Recorder: col, Telemetry: &telemetry.Config{}})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res.Violations)
		}

		type lifecycle struct{ starts, completes, aborts int }
		traced := make(map[uint64]*lifecycle)
		at := func(epoch uint64) *lifecycle {
			lc := traced[epoch]
			if lc == nil {
				lc = &lifecycle{}
				traced[epoch] = lc
			}
			return lc
		}
		for _, e := range col.Events() {
			switch e.Type {
			case obs.EvSwitchStart:
				at(e.Epoch).starts++
			case obs.EvSwitchComplete:
				at(e.Epoch).completes++
			case obs.EvSwitchAbort:
				at(e.Epoch).aborts++
			}
		}

		seen := make(map[uint64]bool)
		for _, r := range res.Rounds {
			if seen[r.Epoch] {
				t.Errorf("seed %d: epoch %d audited twice", seed, r.Epoch)
			}
			seen[r.Epoch] = true
			lc := traced[r.Epoch]
			if lc == nil {
				t.Errorf("seed %d: audit fabricated a round for epoch %d (no round events in trace)",
					seed, r.Epoch)
				continue
			}
			if r.Starts != lc.starts || r.Completes != lc.completes || r.Aborts != lc.aborts {
				t.Errorf("seed %d: epoch %d lifecycle (starts %d completes %d aborts %d) != trace (%d %d %d)",
					seed, r.Epoch, r.Starts, r.Completes, r.Aborts, lc.starts, lc.completes, lc.aborts)
			}
			switch r.Outcome {
			case telemetry.OutcomeComplete:
				if lc.completes == 0 {
					t.Errorf("seed %d: epoch %d marked complete with no completion in trace", seed, r.Epoch)
				}
				sawComplete = true
			case telemetry.OutcomeAbort:
				if lc.completes != 0 {
					t.Errorf("seed %d: epoch %d marked abort despite %d completions", seed, r.Epoch, lc.completes)
				}
				sawAbort = true
			default:
				t.Errorf("seed %d: epoch %d has non-terminal outcome %q", seed, r.Epoch, r.Outcome)
			}
			if r.ProtoBefore < 0 || r.ProtoAfter < 0 {
				t.Errorf("seed %d: epoch %d did not resolve protocols: %d->%d",
					seed, r.Epoch, r.ProtoBefore, r.ProtoAfter)
			}
		}
		for epoch := range traced {
			if !seen[epoch] {
				t.Errorf("seed %d: epoch %d has round events but no audit record", seed, epoch)
			}
		}
	}
	if !sawComplete || !sawAbort {
		t.Errorf("sweep never exercised both outcomes (complete=%v abort=%v) — widen the seed range",
			sawComplete, sawAbort)
	}
}
