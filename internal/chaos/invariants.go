package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/protocols/fd"
	"repro/internal/simnet"
)

// checkConverged asserts the no-deadlock end state: every live member
// finished every switch round it entered and all live members agree on
// the protocol epoch.
func checkConverged(c *swtest.SwitchedCluster, live []ids.ProcID) []string {
	var v []string
	ref := c.Members[live[0]].Switch.Epoch()
	for _, p := range live {
		sw := c.Members[p].Switch
		if sw.Switching() {
			v = append(v, fmt.Sprintf("deadlock: member %v still mid-switch at end of run", p))
		}
		if got := sw.Epoch(); got != ref {
			v = append(v, fmt.Sprintf("epoch divergence: member %v at epoch %d, member %v at %d", p, got, live[0], ref))
		}
	}
	return v
}

// checkLiveness asserts that every live member delivered every live
// member's post-heal probe — the ring and both sub-protocols are still
// moving traffic after the faults.
func checkLiveness(bodies map[ids.ProcID][]string, live []ids.ProcID) []string {
	var v []string
	for _, m := range live {
		for _, p := range live {
			want := fmt.Sprintf("-probe%d", p)
			found := false
			for _, b := range bodies[m] {
				if strings.HasSuffix(b, want) {
					found = true
					break
				}
			}
			if !found {
				v = append(v, fmt.Sprintf("liveness: member %v never delivered member %v's post-heal probe", m, p))
			}
		}
	}
	return v
}

// checkCommonOrder asserts the preserved Table 1 ordering property on
// the survivors' traces: for every pair of live members, the messages
// both delivered appear in the same relative order. (Messages a member
// missed entirely — stale-dropped after a round closed without counting
// a faulty sender — are excluded: total order is only claimed over
// common deliveries, exactly property.TotalOrder's pairwise rule.)
func checkCommonOrder(bodies map[ids.ProcID][]string, live []ids.ProcID) []string {
	var v []string
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			a, b := live[i], live[j]
			if msg, ok := commonOrderAgrees(bodies[a], bodies[b]); !ok {
				v = append(v, fmt.Sprintf("common order: members %v and %v disagree at %q", a, b, msg))
			}
		}
	}
	return v
}

// commonOrderAgrees filters both sequences to their common elements and
// compares. Bodies are unique per message, so set membership is enough.
func commonOrderAgrees(a, b []string) (string, bool) {
	inA := make(map[string]bool, len(a))
	for _, m := range a {
		inA[m] = true
	}
	inB := make(map[string]bool, len(b))
	for _, m := range b {
		inB[m] = true
	}
	var fa, fb []string
	for _, m := range a {
		if inB[m] {
			fa = append(fa, m)
		}
	}
	for _, m := range b {
		if inA[m] {
			fb = append(fb, m)
		}
	}
	for k := range fa {
		if fa[k] != fb[k] {
			return fa[k], false
		}
	}
	return "", true
}

// checkEpochBoundary asserts the SP's §2 guarantee per member: all
// old-protocol messages are delivered before any new-protocol ones, so
// the "e<epoch>" tags are nondecreasing in each member's trace.
func checkEpochBoundary(bodies map[ids.ProcID][]string) []string {
	var v []string
	for p, got := range bodies {
		maxEpoch := -1
		for i, b := range got {
			var e int
			if _, err := fmt.Sscanf(b, "e%d-", &e); err != nil {
				v = append(v, fmt.Sprintf("epoch boundary: member %v delivered untagged body %q", p, b))
				continue
			}
			if e < maxEpoch {
				v = append(v, fmt.Sprintf("epoch boundary: member %v delivered epoch-%d %q at index %d after epoch-%d traffic", p, e, b, i, maxEpoch))
			}
			if e > maxEpoch {
				maxEpoch = e
			}
		}
	}
	return v
}

// checkBoundedMemory asserts the overload layer's first guarantee: no
// bounded queue ever exceeded its configured cap at any virtual time.
// The accounting tracks the high-water mark at every admission, so a
// single overshoot anywhere in the run is visible here. Vacuously true
// (caps zero, depths zero) when Config.Overload is off.
func checkBoundedMemory(c *swtest.SwitchedCluster, live []ids.ProcID) []string {
	var v []string
	for _, p := range live {
		a := c.Members[p].Switch.OverloadAccounting()
		if a.IngressCap > 0 && a.IngressMaxDepth > a.IngressCap {
			v = append(v, fmt.Sprintf("bounded memory: member %v ingress queue peaked at %d, cap %d", p, a.IngressMaxDepth, a.IngressCap))
		}
		if a.EgressCap > 0 && a.EgressMaxDepth > a.EgressCap {
			v = append(v, fmt.Sprintf("bounded memory: member %v egress queue peaked at %d, cap %d", p, a.EgressMaxDepth, a.EgressCap))
		}
	}
	return v
}

// checkNoSilentLoss asserts the overload layer's second guarantee: every
// message it admitted and did not deliver onward is accounted for in a
// shed, queued or retrying bucket — the conservation ledger balances.
// An unbalanced ledger means a frame vanished without a counter
// incrementing, i.e. a silent drop. Vacuously true when Config.Overload
// is off (every bucket zero).
func checkNoSilentLoss(c *swtest.SwitchedCluster, live []ids.ProcID) []string {
	var v []string
	for _, p := range live {
		a := c.Members[p].Switch.OverloadAccounting()
		if a.Casts != a.EgressAdmitted+a.EgressRetrying+a.EgressShed {
			v = append(v, fmt.Sprintf("silent loss: member %v casts=%d != admitted=%d + retrying=%d + shed=%d", p, a.Casts, a.EgressAdmitted, a.EgressRetrying, a.EgressShed))
		}
		if a.EgressAdmitted != a.EgressSent+a.EgressQueued {
			v = append(v, fmt.Sprintf("silent loss: member %v egress admitted=%d != sent=%d + queued=%d", p, a.EgressAdmitted, a.EgressSent, a.EgressQueued))
		}
		if a.IngressAdmitted != a.IngressServed+a.IngressQueued {
			v = append(v, fmt.Sprintf("silent loss: member %v ingress admitted=%d != served=%d + queued=%d", p, a.IngressAdmitted, a.IngressServed, a.IngressQueued))
		}
	}
	return v
}

// checkNoForgedDelivery asserts the authenticated session's first
// guarantee: no frame fabricated without the group session key ever
// reaches an application layer. Every forged frame the generator
// injects carries the FORGED marker in its body, so a marked body in
// any member's trace means the trust boundary leaked.
func checkNoForgedDelivery(bodies map[ids.ProcID][]string) []string {
	var v []string
	for p, got := range bodies {
		for i, b := range got {
			if strings.Contains(b, "FORGED") {
				v = append(v, fmt.Sprintf("forged delivery: member %v delivered forged body %q at index %d", p, b, i))
			}
		}
	}
	return v
}

// checkNoDoubleDelivery asserts the authenticated session's second
// guarantee: no frame is accepted twice across any epoch sequence.
// Chaos traffic bodies are unique per cast (sender, sequence, and epoch
// tag all baked in), so the same body twice in one member's trace means
// a replay — wire-level, cross-epoch, or duplicate-induced — got past
// both the transport dedup and the epoch key schedule.
func checkNoDoubleDelivery(bodies map[ids.ProcID][]string) []string {
	var v []string
	for p, got := range bodies {
		seen := make(map[string]int, len(got))
		for i, b := range got {
			if j, dup := seen[b]; dup {
				v = append(v, fmt.Sprintf("double delivery: member %v accepted body %q at indices %d and %d", p, b, j, i))
				continue
			}
			seen[b] = i
		}
	}
	return v
}

// checkBoundedDisruption asserts the damping layer's first always-on
// guarantee: the recovery actions a run takes — token regenerations
// plus switch-round aborts, all members together — never exceed the
// budget within any single disruptionWindow of virtual time. A healthy
// run churns briefly around each fault and settles; a detector driven
// into continuous thrash by a flapping link fails here even if the run
// eventually converges. Vacuously true on quiet runs.
func checkBoundedDisruption(d *disruptionTracker, budget int) []string {
	var v []string
	idxs := make([]int64, 0, len(d.counts))
	for i := range d.counts {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		if n := d.counts[i]; n > budget {
			at := time.Duration(i) * disruptionWindow
			v = append(v, fmt.Sprintf("bounded disruption: %d recovery actions (regens+aborts) in window [%v,%v), budget %d",
				n, at, at+disruptionWindow, budget))
		}
	}
	return v
}

// checkEventualReinclusion asserts the damping layer's second always-on
// guarantee: once every fault heals and the run settles, no live member
// still routes around another live member — neither a residual
// failure-detector suspicion nor a residual flap-damping suppression.
// The damping half is vacuously true on fixed-detector runs (nothing is
// ever damped); the suspicion half bites on every recovery-enabled run.
func checkEventualReinclusion(c *swtest.SwitchedCluster, live []ids.ProcID) []string {
	var v []string
	for _, m := range live {
		sw := c.Members[m].Switch
		det := sw.Detector()
		for _, p := range live {
			if p == m {
				continue
			}
			if det != nil && det.Suspected(p) {
				v = append(v, fmt.Sprintf("re-inclusion: member %v still suspects live member %v at end of run", m, p))
			}
			if sw.Damped(p) {
				v = append(v, fmt.Sprintf("re-inclusion: member %v still damps live member %v at end of run", m, p))
			}
		}
	}
	return v
}

// MeasureRecovery runs the bounded-recovery experiment: a clean network
// (no drops), a switch round started at a random time, and a crash of a
// non-initiator member at a random point while the round is in flight.
// It returns the virtual time from the crash until every survivor has
// completed the switch (epoch advanced, not mid-round). The recovery
// layer's worst-case detection is SwitchTimeout (3×TokenInterval) plus
// the ring-position stagger, and the retried round completes in a few
// propagation delays, so the paper-facing bound asserted by the tests
// is 10×TokenInterval.
func MeasureRecovery(seed int64, n int, ti time.Duration) (time.Duration, error) {
	swCfg := switching.Config{
		Protocols:     pair(),
		TokenInterval: ti,
		Recovery: &switching.RecoveryConfig{
			Detector: fd.Config{Interval: ti / 2, Timeout: 2 * ti},
		},
	}
	c, err := swtest.NewSwitched(seed, simnet.Config{Nodes: n, PropDelay: 200 * time.Microsecond}, n, swCfg)
	if err != nil {
		return 0, fmt.Errorf("chaos: build cluster: %w", err)
	}
	victim := ids.ProcID(n - 1)
	rng := c.Sim.Rand()
	reqAt := 4*ti + time.Duration(rng.Int63n(int64(2*ti)))
	c.Sim.At(reqAt, func() { c.Members[0].Switch.RequestSwitch() })
	// Old-protocol traffic in flight around the request so the FLUSH
	// round has to drain.
	for i := 0; i < 6; i++ {
		i := i
		c.Sim.At(reqAt+time.Duration(i)*300*time.Microsecond, func() {
			cast(c, ids.ProcID(i%(n-1)), uint32(i), fmt.Sprintf("pre%d", i))
		})
	}

	// Crash the victim at a random delay after the initiator starts the
	// round. The window is sized to the round's own span (three ring
	// traversals), so across seeds the crash lands in every phase:
	// PREPARE in flight, SWITCH, holding FLUSH, or round already done.
	crashWindow := time.Duration(3*n+3) * 200 * time.Microsecond
	delay := time.Duration(rng.Int63n(int64(crashWindow)))
	var crashedAt time.Duration
	var watch func()
	watch = func() {
		if crashedAt != 0 {
			return
		}
		if c.Members[0].Switch.Switching() {
			c.Sim.After(delay, func() {
				crashedAt = c.Sim.Now()
				c.Net.Crash(victim)
			})
			return
		}
		c.Sim.After(ti/20, watch)
	}
	c.Sim.At(reqAt, watch)

	// Poll for the recovered state: every survivor at epoch 1 and out
	// of the round.
	var recoveredAt time.Duration
	var poll func()
	poll = func() {
		if recoveredAt != 0 {
			return
		}
		if crashedAt == 0 {
			c.Sim.After(ti/10, poll)
			return
		}
		for p := 0; p < n-1; p++ {
			sw := c.Members[p].Switch
			if sw.Epoch() != 1 || sw.Switching() {
				c.Sim.After(ti/10, poll)
				return
			}
		}
		recoveredAt = c.Sim.Now()
	}
	c.Sim.At(reqAt, poll)

	c.Run(reqAt + 200*ti)
	c.Stop()
	if crashedAt == 0 {
		return 0, fmt.Errorf("chaos: seed %d: switch round never started", seed)
	}
	if recoveredAt == 0 {
		return 0, fmt.Errorf("chaos: seed %d: survivors never recovered (wedged)", seed)
	}
	if recoveredAt < crashedAt {
		return 0, nil // round finished before the crash landed — nothing to recover
	}
	return recoveredAt - crashedAt, nil
}

// MeasureDetection runs the crash-detection-latency experiment behind
// the E20 stability study's equal-latency claim: a clean network, a
// long warmup of steady heartbeats (so the adaptive detector's
// inter-arrival window is full), then a crash-stop of a non-sequencer
// member at a seeded random time. It returns the virtual time from the
// crash to the first suspicion of the victim at any live member —
// under the legacy fixed-timeout detector when fixed is true, or the
// same adaptive layering the chaos runner enables on gray schedules
// (adaptiveConfig) when false. Both arms emit EvSuspect at the moment
// the victim is suspected (the graded path funnels through
// ForceSuspect), so one scan measures both.
func MeasureDetection(seed int64, n int, ti time.Duration, fixed bool) (time.Duration, error) {
	col := obs.NewCollector()
	rc := &switching.RecoveryConfig{Detector: fd.Config{Interval: ti}}
	if !fixed {
		rc.Adaptive = adaptiveConfig(ti)
	}
	swCfg := switching.Config{
		Protocols:     pair(),
		TokenInterval: ti,
		Recovery:      rc,
		Recorder:      col,
	}
	c, err := swtest.NewSwitched(seed, simnet.Config{Nodes: n, PropDelay: 200 * time.Microsecond}, n, swCfg)
	if err != nil {
		return 0, fmt.Errorf("chaos: build cluster: %w", err)
	}
	victim := ids.ProcID(n - 1)
	crashAt := 30*ti + time.Duration(c.Sim.Rand().Int63n(int64(4*ti)))
	c.Sim.At(crashAt, func() { c.Net.Crash(victim) })
	c.Run(crashAt + 40*ti)
	c.Stop()
	for _, e := range col.Events() {
		if e.Type == obs.EvSuspect && e.Peer == victim && e.At >= crashAt {
			return e.At - crashAt, nil
		}
	}
	return 0, fmt.Errorf("chaos: seed %d: crashed member never suspected", seed)
}
