package chaos

import (
	"testing"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/obs"
)

// memberCounts tallies the switching-layer events one member emitted.
type memberCounts struct {
	passes, completed, buffered, stale uint64
	wedges, regens, aborts, forced     uint64
	suspects                           uint64
}

// TestStatsTraceConsistency replays seeded chaos schedules with a
// collector attached and cross-checks three views of the same run:
//
//  1. each live member's own switching.Stats() against the event
//     counts that member emitted into the trace,
//  2. Result.Stats (derived from the metrics registry) against the
//     manual sum of the live members' Stats(), and
//  3. the causal ordering invariant: at every prefix of a member's
//     event stream, token regenerations never outnumber the wedge
//     timeouts and suspicions that justify them — every replacement
//     token has a recorded cause.
//
// The seed range is chosen so the sweep provably exercises wedge
// timeouts, regenerations, and aborted switch rounds; if generator
// tuning ever makes those unreachable the test fails loudly rather
// than passing vacuously.
func TestStatsTraceConsistency(t *testing.T) {
	var sawWedge, sawRegen, sawAbort bool
	for seed := int64(1); seed <= 25; seed++ {
		sched, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		col := obs.NewCollector()
		res, c, err := run(sched, RunConfig{Recorder: col})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res.Violations)
		}

		// Tally per-member switching events, checking the causal prefix
		// invariant as the stream replays in emission order.
		counts := make(map[ids.ProcID]*memberCounts)
		at := func(p ids.ProcID) *memberCounts {
			mc := counts[p]
			if mc == nil {
				mc = &memberCounts{}
				counts[p] = mc
			}
			return mc
		}
		for _, e := range col.Events() {
			mc := at(e.Proc)
			switch e.Type {
			case obs.EvTokenPass:
				mc.passes++
			case obs.EvEpochAdvance:
				mc.completed++
			case obs.EvBuffered:
				mc.buffered++
			case obs.EvStaleDrop:
				mc.stale++
			case obs.EvWedgeTimeout:
				mc.wedges++
			case obs.EvSuspect:
				mc.suspects++
			case obs.EvTokenRegen:
				mc.regens++
				if mc.regens > mc.wedges+mc.suspects {
					t.Errorf("seed %d: member %v regenerated a token at t=%v with no preceding wedge timeout or suspicion",
						seed, e.Proc, e.At)
				}
			case obs.EvSwitchAbort:
				mc.aborts++
			case obs.EvEpochForced:
				mc.forced++
			}
		}

		// View 1: every live member's own counters equal its trace.
		var manual switching.Stats
		for _, p := range res.Live {
			st := c.Members[p].Switch.Stats()
			manual.Add(st)
			mc := at(p)
			got := switching.Stats{
				SwitchesCompleted: mc.completed,
				Buffered:          mc.buffered,
				StaleDropped:      mc.stale,
				TokenPasses:       mc.passes,
				WedgeTimeouts:     mc.wedges,
				TokensRegenerated: mc.regens,
				SwitchesAborted:   mc.aborts,
				ForcedAdvances:    mc.forced,
			}
			if got != st {
				t.Errorf("seed %d: member %v: trace-derived stats %+v != Switch.Stats() %+v",
					seed, p, got, st)
			}
		}

		// View 2: the metrics-derived aggregate equals the manual sum.
		if res.Stats != manual {
			t.Errorf("seed %d: Result.Stats %+v != summed member stats %+v",
				seed, res.Stats, manual)
		}

		sawWedge = sawWedge || res.Stats.WedgeTimeouts > 0
		sawRegen = sawRegen || res.Stats.TokensRegenerated > 0
		sawAbort = sawAbort || res.Stats.SwitchesAborted > 0
	}
	if !sawWedge || !sawRegen || !sawAbort {
		t.Errorf("sweep never exercised the recovery path (wedge=%v regen=%v abort=%v) — widen the seed range",
			sawWedge, sawRegen, sawAbort)
	}
}

// TestOverloadTraceConsistency extends the obs-consistency invariant to
// the overload counters: across seeded flash-crowd schedules, each live
// member's EvShed / EvBackpressureOn / EvRetrySend trace events must
// equal that member's own Stats().Shed / Backpressured / RetriedSends,
// the per-peer ingress-shed attribution must equal ShedFrom, the
// metrics-derived Result.Stats must equal the manual sum, and the
// watermark edges must pair up (never more resumes than pauses at any
// prefix). The sweep must be non-vacuous on all three counters.
func TestOverloadTraceConsistency(t *testing.T) {
	var sawShed, sawPause, sawRetry bool
	for seed := int64(1); seed <= 30; seed++ {
		sched, err := Generate(seed, GenConfig{FlashCrowd: true})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		col := obs.NewCollector()
		res, c, err := run(sched, RunConfig{Recorder: col})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res.Violations)
		}

		shedBy := map[ids.ProcID]uint64{}
		shedByPeer := map[ids.ProcID]map[ids.ProcID]uint64{}
		pauses := map[ids.ProcID]uint64{}
		resumes := map[ids.ProcID]uint64{}
		retries := map[ids.ProcID]uint64{}
		for _, e := range col.Events() {
			switch e.Type {
			case obs.EvShed:
				shedBy[e.Proc]++
				if e.Args[0] == obs.ShedIngress {
					if shedByPeer[e.Proc] == nil {
						shedByPeer[e.Proc] = map[ids.ProcID]uint64{}
					}
					shedByPeer[e.Proc][e.Peer]++
				}
			case obs.EvBackpressureOn:
				pauses[e.Proc]++
			case obs.EvBackpressureOff:
				resumes[e.Proc]++
				if resumes[e.Proc] > pauses[e.Proc] {
					t.Errorf("seed %d: member %v resumed at t=%v with no preceding pause",
						seed, e.Proc, e.At)
				}
			case obs.EvRetrySend:
				retries[e.Proc]++
			}
		}
		var manual switching.Stats
		for _, p := range res.Live {
			st := c.Members[p].Switch.Stats()
			manual.Add(st)
			if shedBy[p] != st.Shed {
				t.Errorf("seed %d: member %v: trace shows %d sheds, Switch.Stats() %d",
					seed, p, shedBy[p], st.Shed)
			}
			if pauses[p] != st.Backpressured {
				t.Errorf("seed %d: member %v: trace shows %d pauses, Switch.Stats() %d",
					seed, p, pauses[p], st.Backpressured)
			}
			if retries[p] != st.RetriedSends {
				t.Errorf("seed %d: member %v: trace shows %d retries, Switch.Stats() %d",
					seed, p, retries[p], st.RetriedSends)
			}
			for peer, n := range shedByPeer[p] {
				if got := c.Members[p].Switch.ShedFrom(peer); got != n {
					t.Errorf("seed %d: member %v: trace attributes %d ingress sheds to peer %v, ShedFrom %d",
						seed, p, n, peer, got)
				}
			}
			sawShed = sawShed || st.Shed > 0
			sawPause = sawPause || st.Backpressured > 0
			sawRetry = sawRetry || st.RetriedSends > 0
		}
		if res.Stats != manual {
			t.Errorf("seed %d: Result.Stats %+v != summed member stats %+v",
				seed, res.Stats, manual)
		}
	}
	if !sawShed || !sawPause || !sawRetry {
		t.Errorf("sweep never exercised the overload path (shed=%v pause=%v retry=%v) — widen the seed range",
			sawShed, sawPause, sawRetry)
	}
}

// TestGrayTraceConsistency extends the obs-consistency invariant to the
// adaptive-detector counters: across seeded gray schedules, each live
// member's EvSuspicionRaise / EvSuspicionClear / EvFlapPenalty /
// EvDegradedSkip / EvReinclude trace events must equal that member's
// own Stats() gray counters, the metrics-derived Result.Stats must
// equal the manual sum, and two causal prefix invariants must hold at
// every point of a member's stream: a graded suspicion never clears
// without a preceding raise, and a peer is never re-included without a
// preceding flap penalty. The sweep must be non-vacuous on raises,
// penalties and skips.
func TestGrayTraceConsistency(t *testing.T) {
	var sawRaise, sawPenalty, sawSkip bool
	for seed := int64(1); seed <= 40; seed++ {
		sched, err := Generate(seed, GenConfig{GrayFailure: true})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		col := obs.NewCollector()
		res, c, err := run(sched, RunConfig{Recorder: col})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res.Violations)
		}

		raises := map[ids.ProcID]uint64{}
		clears := map[ids.ProcID]uint64{}
		penalties := map[ids.ProcID]uint64{}
		skips := map[ids.ProcID]uint64{}
		reincludes := map[ids.ProcID]uint64{}
		for _, e := range col.Events() {
			switch e.Type {
			case obs.EvSuspicionRaise:
				raises[e.Proc]++
			case obs.EvSuspicionClear:
				clears[e.Proc]++
				if clears[e.Proc] > raises[e.Proc] {
					t.Errorf("seed %d: member %v cleared a graded suspicion at t=%v with no preceding raise",
						seed, e.Proc, e.At)
				}
			case obs.EvFlapPenalty:
				penalties[e.Proc]++
			case obs.EvDegradedSkip:
				skips[e.Proc]++
			case obs.EvReinclude:
				reincludes[e.Proc]++
				if reincludes[e.Proc] > penalties[e.Proc] {
					t.Errorf("seed %d: member %v re-included a peer at t=%v with no preceding flap penalty",
						seed, e.Proc, e.At)
				}
			}
		}
		var manual switching.Stats
		for _, p := range res.Live {
			st := c.Members[p].Switch.Stats()
			manual.Add(st)
			if raises[p] != st.SuspicionsRaised || clears[p] != st.SuspicionsCleared ||
				penalties[p] != st.FlapPenalties || skips[p] != st.DegradedSkips ||
				reincludes[p] != st.Reincludes {
				t.Errorf("seed %d: member %v: trace shows raise=%d clear=%d penalty=%d skip=%d reinclude=%d, Switch.Stats() %+v",
					seed, p, raises[p], clears[p], penalties[p], skips[p], reincludes[p], st)
			}
			sawRaise = sawRaise || st.SuspicionsRaised > 0
			sawPenalty = sawPenalty || st.FlapPenalties > 0
			sawSkip = sawSkip || st.DegradedSkips > 0
		}
		if res.Stats != manual {
			t.Errorf("seed %d: Result.Stats %+v != summed member stats %+v",
				seed, res.Stats, manual)
		}
	}
	if !sawRaise || !sawPenalty || !sawSkip {
		t.Errorf("sweep never exercised the adaptive path (raise=%v penalty=%v skip=%v) — widen the seed range",
			sawRaise, sawPenalty, sawSkip)
	}
}
