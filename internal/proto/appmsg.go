package proto

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/trace"
	"repro/internal/wire"
)

// AppMsg is the application-level message exchanged at the top of a
// stack. It mirrors the trace model's Message (identity, sender, body,
// optional view payload) so executions can be recorded as traces and
// checked against Table 1 properties.
type AppMsg struct {
	ID     ids.MsgID
	Sender ids.ProcID
	Body   []byte
	IsView bool
	View   []ids.ProcID
}

// Encode marshals the message for transport through a stack.
func (m AppMsg) Encode() []byte {
	e := wire.NewEncoder(16 + len(m.Body))
	e.Msg(m.ID).Proc(m.Sender).Bool(m.IsView).Procs(m.View).BytesField(m.Body)
	return e.Bytes()
}

// DecodeApp unmarshals an application message.
func DecodeApp(b []byte) (AppMsg, error) {
	d := wire.NewDecoder(b)
	m := AppMsg{
		ID:     d.Msg(),
		Sender: d.Proc(),
		IsView: d.Bool(),
		View:   d.Procs(),
		Body:   d.BytesField(),
	}
	if err := d.Err(); err != nil {
		return AppMsg{}, fmt.Errorf("proto: decode app message: %w", err)
	}
	return m, nil
}

// DecodeAppID unmarshals just the message id — the first encoded field
// — without copying the body. Per-delivery consumers that only need
// the identity (the throughput collector) use this to stay off the
// allocator; DecodeApp would copy the body per message just to drop it.
func DecodeAppID(b []byte) (ids.MsgID, error) {
	d := wire.NewDecoder(b)
	id := d.Msg()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("proto: decode app message id: %w", err)
	}
	return id, nil
}

// TraceMessage converts the app message to the trace model's Message.
func (m AppMsg) TraceMessage() trace.Message {
	out := trace.Message{
		ID:     m.ID,
		Sender: m.Sender,
		Body:   string(m.Body),
		IsView: m.IsView,
	}
	if m.View != nil {
		out.View = make([]ids.ProcID, len(m.View))
		copy(out.View, m.View)
	}
	return out
}

// MakeMsgID builds a globally unique message id from the sender and a
// sender-local sequence number — the conventional id layout used by the
// harness and examples.
func MakeMsgID(sender ids.ProcID, seq uint32) ids.MsgID {
	return ids.MsgID(uint64(uint32(sender))<<32 | uint64(seq))
}
