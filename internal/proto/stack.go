package proto

import (
	"fmt"

	"repro/internal/ids"
)

// Stack composes layers top-to-bottom at one process, wiring each
// layer's Down to the layer beneath and each layer's Up to the layer
// above. The composition is itself Layer-shaped — the paper's "a stack
// of protocols is another protocol".
type Stack struct {
	layers []Layer // layers[0] is the top
	// passApp/passTransport carry the endpoints for the degenerate
	// zero-layer stack, which is a pure passthrough.
	passApp       Up
	passTransport Down
}

// layerDown adapts the layer beneath into the Down interface.
type layerDown struct{ l Layer }

func (d layerDown) Cast(payload []byte) error                 { return d.l.Cast(payload) }
func (d layerDown) Send(dst ids.ProcID, payload []byte) error { return d.l.Send(dst, payload) }

var _ Down = layerDown{}

// layerUp adapts the layer above into the Up interface.
type layerUp struct{ l Layer }

func (u layerUp) Deliver(src ids.ProcID, payload []byte) { u.l.Recv(src, payload) }

var _ Up = layerUp{}

// Build initializes layers (given top-first) between the application
// (app, receiving final deliveries) and the transport (the Down at the
// very bottom). An empty layer list yields a passthrough stack that
// casts straight to the transport and delivers straight to the app —
// useful as a degenerate case in tests.
func Build(env Env, app Up, transport Down, layers ...Layer) (*Stack, error) {
	if env == nil || app == nil || transport == nil {
		return nil, fmt.Errorf("proto: Build requires env, app and transport")
	}
	s := &Stack{layers: layers}
	for i, l := range layers {
		var down Down
		if i == len(layers)-1 {
			down = transport
		} else {
			down = layerDown{layers[i+1]}
		}
		var up Up
		if i == 0 {
			up = app
		} else {
			up = layerUp{layers[i-1]}
		}
		if err := l.Init(env, down, up); err != nil {
			return nil, fmt.Errorf("proto: init layer %d: %w", i, err)
		}
	}
	if len(layers) == 0 {
		s.passApp, s.passTransport = app, transport
	}
	return s, nil
}

func (s *Stack) top() Layer {
	if len(s.layers) == 0 {
		return nil
	}
	return s.layers[0]
}

func (s *Stack) bottom() Layer {
	if len(s.layers) == 0 {
		return nil
	}
	return s.layers[len(s.layers)-1]
}

// Cast multicasts an application payload through the stack.
func (s *Stack) Cast(payload []byte) error {
	if t := s.top(); t != nil {
		return t.Cast(payload)
	}
	return s.passTransport.Cast(payload)
}

// Send sends point-to-point through the stack.
func (s *Stack) Send(dst ids.ProcID, payload []byte) error {
	if t := s.top(); t != nil {
		return t.Send(dst, payload)
	}
	return s.passTransport.Send(dst, payload)
}

// Recv injects a payload arriving from the transport; runtimes bind the
// network handler to this method.
func (s *Stack) Recv(src ids.ProcID, payload []byte) {
	if b := s.bottom(); b != nil {
		b.Recv(src, payload)
		return
	}
	s.passApp.Deliver(src, payload)
}

// Stop stops every layer, top first.
func (s *Stack) Stop() {
	for _, l := range s.layers {
		l.Stop()
	}
}

// SetEpoch informs every EpochAware layer of the current switching
// epoch (a no-op for layers that are not epoch-keyed).
func (s *Stack) SetEpoch(epoch uint64) {
	for _, l := range s.layers {
		if ea, ok := l.(EpochAware); ok {
			ea.SetEpoch(epoch)
		}
	}
}

// Len returns the number of layers.
func (s *Stack) Len() int { return len(s.layers) }
