package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ids"
)

// fakeEnv is a minimal Env for unit tests.
type fakeEnv struct {
	self ids.ProcID
	ring *ids.Ring
	rng  *rand.Rand
}

func newFakeEnv(t *testing.T, self ids.ProcID, n int) *fakeEnv {
	t.Helper()
	ring, err := ids.NewRing(ids.Procs(n))
	if err != nil {
		t.Fatal(err)
	}
	return &fakeEnv{self: self, ring: ring, rng: rand.New(rand.NewSource(1))}
}

func (e *fakeEnv) Self() ids.ProcID      { return e.self }
func (e *fakeEnv) Members() []ids.ProcID { return e.ring.Members() }
func (e *fakeEnv) Ring() *ids.Ring       { return e.ring }
func (e *fakeEnv) Now() time.Duration    { return 0 }
func (e *fakeEnv) Rand() *rand.Rand      { return e.rng }

type fakeTimer struct{}

func (fakeTimer) Stop() bool   { return false }
func (fakeTimer) Active() bool { return false }

func (e *fakeEnv) After(time.Duration, func()) Timer { return fakeTimer{} }

// tagLayer prepends a tag byte going down and verifies/strips it going
// up — composition order becomes observable in the payload.
type tagLayer struct {
	tag     byte
	down    Down
	up      Up
	stopped bool
}

func (l *tagLayer) Init(_ Env, down Down, up Up) error {
	l.down, l.up = down, up
	return nil
}

func (l *tagLayer) Cast(payload []byte) error {
	return l.down.Cast(append([]byte{l.tag}, payload...))
}

func (l *tagLayer) Send(dst ids.ProcID, payload []byte) error {
	return l.down.Send(dst, append([]byte{l.tag}, payload...))
}

func (l *tagLayer) Recv(src ids.ProcID, payload []byte) {
	if len(payload) == 0 || payload[0] != l.tag {
		return // drop: header mismatch
	}
	l.up.Deliver(src, payload[1:])
}

func (l *tagLayer) Stop() { l.stopped = true }

// loopTransport echoes every Cast/Send back into a handler, emulating a
// single-process network.
type loopTransport struct {
	onPacket func(payload []byte)
	sends    []ids.ProcID
}

func (t *loopTransport) Cast(payload []byte) error {
	t.onPacket(payload)
	return nil
}

func (t *loopTransport) Send(dst ids.ProcID, payload []byte) error {
	t.sends = append(t.sends, dst)
	t.onPacket(payload)
	return nil
}

func TestBuildValidatesArgs(t *testing.T) {
	env := newFakeEnv(t, 0, 1)
	app := UpFunc(func(ids.ProcID, []byte) {})
	tr := &loopTransport{onPacket: func([]byte) {}}
	if _, err := Build(nil, app, tr); err == nil {
		t.Error("Build accepted nil env")
	}
	if _, err := Build(env, nil, tr); err == nil {
		t.Error("Build accepted nil app")
	}
	if _, err := Build(env, app, nil); err == nil {
		t.Error("Build accepted nil transport")
	}
}

func TestStackCompositionOrder(t *testing.T) {
	env := newFakeEnv(t, 0, 1)
	var wirePayload []byte
	tr := &loopTransport{}
	var delivered []byte
	app := UpFunc(func(_ ids.ProcID, b []byte) { delivered = b })
	a := &tagLayer{tag: 'A'}
	b := &tagLayer{tag: 'B'}
	s, err := Build(env, app, tr, a, b) // A on top of B
	if err != nil {
		t.Fatal(err)
	}
	tr.onPacket = func(p []byte) {
		wirePayload = append([]byte(nil), p...)
		s.Recv(0, p)
	}
	if err := s.Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// Headers must nest bottom-layer-outermost: B then A then payload.
	if !bytes.Equal(wirePayload, []byte("BAx")) {
		t.Errorf("wire payload = %q, want \"BAx\"", wirePayload)
	}
	if !bytes.Equal(delivered, []byte("x")) {
		t.Errorf("delivered = %q, want \"x\"", delivered)
	}
}

func TestStackSendPath(t *testing.T) {
	env := newFakeEnv(t, 0, 3)
	tr := &loopTransport{}
	var delivered []byte
	app := UpFunc(func(_ ids.ProcID, b []byte) { delivered = b })
	s, err := Build(env, app, tr, &tagLayer{tag: 'A'})
	if err != nil {
		t.Fatal(err)
	}
	tr.onPacket = func(p []byte) { s.Recv(0, p) }
	if err := s.Send(2, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if len(tr.sends) != 1 || tr.sends[0] != 2 {
		t.Errorf("transport sends = %v, want [p2]", tr.sends)
	}
	if !bytes.Equal(delivered, []byte("y")) {
		t.Errorf("delivered = %q", delivered)
	}
}

func TestEmptyStackPassthrough(t *testing.T) {
	env := newFakeEnv(t, 0, 1)
	tr := &loopTransport{}
	var delivered []byte
	app := UpFunc(func(_ ids.ProcID, b []byte) { delivered = b })
	s, err := Build(env, app, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.onPacket = func(p []byte) { s.Recv(0, p) }
	if err := s.Cast([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(delivered, []byte("z")) {
		t.Errorf("delivered = %q", delivered)
	}
	if err := s.Send(0, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Stop() // no-op, must not panic
}

type failingLayer struct{ tagLayer }

func (l *failingLayer) Init(Env, Down, Up) error { return errors.New("boom") }

func TestBuildPropagatesInitError(t *testing.T) {
	env := newFakeEnv(t, 0, 1)
	app := UpFunc(func(ids.ProcID, []byte) {})
	tr := &loopTransport{onPacket: func([]byte) {}}
	if _, err := Build(env, app, tr, &failingLayer{}); err == nil {
		t.Error("Build swallowed layer init error")
	}
}

func TestStopReachesAllLayers(t *testing.T) {
	env := newFakeEnv(t, 0, 1)
	app := UpFunc(func(ids.ProcID, []byte) {})
	tr := &loopTransport{onPacket: func([]byte) {}}
	a, b := &tagLayer{tag: 'A'}, &tagLayer{tag: 'B'}
	s, err := Build(env, app, tr, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if !a.stopped || !b.stopped {
		t.Error("Stop did not reach every layer")
	}
}

func TestAppMsgRoundTrip(t *testing.T) {
	m := AppMsg{
		ID:     MakeMsgID(3, 17),
		Sender: 3,
		Body:   []byte("hello"),
		IsView: true,
		View:   []ids.ProcID{0, 1, 2},
	}
	got, err := DecodeApp(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip: got %+v want %+v", got, m)
	}
}

func TestAppMsgDecodeGarbage(t *testing.T) {
	if _, err := DecodeApp([]byte{0xff}); err == nil {
		t.Error("DecodeApp accepted garbage")
	}
}

func TestAppMsgTraceMessage(t *testing.T) {
	m := AppMsg{ID: 5, Sender: 1, Body: []byte("b"), IsView: true, View: []ids.ProcID{0}}
	tm := m.TraceMessage()
	if tm.ID != 5 || tm.Sender != 1 || tm.Body != "b" || !tm.IsView || len(tm.View) != 1 {
		t.Errorf("TraceMessage = %+v", tm)
	}
	// Deep copy of view.
	tm.View[0] = 9
	if m.View[0] == 9 {
		t.Error("TraceMessage aliased the View slice")
	}
}

func TestMakeMsgIDUniqueness(t *testing.T) {
	f := func(s1, s2 uint8, q1, q2 uint32) bool {
		a := MakeMsgID(ids.ProcID(s1), q1)
		b := MakeMsgID(ids.ProcID(s2), q2)
		if s1 == s2 && q1 == q2 {
			return a == b
		}
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: app messages with arbitrary bodies round-trip.
func TestAppMsgRoundTripProperty(t *testing.T) {
	f := func(id uint64, sender int16, body []byte) bool {
		m := AppMsg{ID: ids.MsgID(id), Sender: ids.ProcID(sender), Body: body}
		got, err := DecodeApp(m.Encode())
		if err != nil {
			return false
		}
		if len(body) == 0 {
			return len(got.Body) == 0 && got.ID == m.ID && got.Sender == m.Sender
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
