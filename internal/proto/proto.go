// Package proto defines the protocol-composition framework of §3 of the
// paper: a protocol is a module with a top and a bottom side; applications
// submit Send events at the top, the network delivers at the bottom, and
// the symmetry makes protocols "closed under composition — a stack of
// protocols is another protocol", composable like Lego blocks.
//
// A Layer exchanges raw byte payloads with its neighbours: going down it
// prepends its own header (package wire), going up it strips it. Every
// process in a group runs the same stack.
package proto

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/ids"
)

// ErrUnsupported is returned by layers asked for an operation they do not
// provide (e.g. point-to-point send through a multicast-only layer).
var ErrUnsupported = errors.New("proto: operation not supported by this layer")

// Timer is a cancellable scheduled callback, satisfied by both the
// discrete-event and the real-time runtimes.
type Timer interface {
	// Stop cancels the timer; it reports whether the call prevented the
	// timer from firing.
	Stop() bool
	// Active reports whether the timer is still pending.
	Active() bool
}

// Env provides the runtime services available to a layer at one process.
// Implementations exist for the discrete-event simulator (deterministic)
// and for a goroutine-based real-time runtime; protocol code cannot tell
// which it runs on.
type Env interface {
	// Self returns this process's identity.
	Self() ids.ProcID
	// Members returns the group membership (stable for an execution).
	Members() []ids.ProcID
	// Ring returns the logical ring over the membership.
	Ring() *ids.Ring
	// Now returns the current time (virtual or wall-clock) since start.
	Now() time.Duration
	// After schedules fn to run once after d.
	After(d time.Duration, fn func()) Timer
	// Rand returns the process's random stream (seeded in simulation).
	Rand() *rand.Rand
}

// Down is a layer's handle to the layer beneath it (ultimately the
// network).
type Down interface {
	// Cast multicasts payload to the whole group, including the caller's
	// own process (protocols rely on hearing their own multicasts).
	Cast(payload []byte) error
	// Send sends payload point-to-point to dst.
	Send(dst ids.ProcID, payload []byte) error
}

// Up is a layer's handle to the layer above it (ultimately the
// application).
type Up interface {
	// Deliver passes a payload up. src is the message's original sender
	// as reconstructed by the delivering layer.
	Deliver(src ids.ProcID, payload []byte)
}

// UpFunc adapts a function to the Up interface.
type UpFunc func(src ids.ProcID, payload []byte)

// Deliver implements Up.
func (f UpFunc) Deliver(src ids.ProcID, payload []byte) { f(src, payload) }

var _ Up = UpFunc(nil)

// Layer is one protocol in a stack. Lifecycle: construct, Init exactly
// once, then any number of Cast/Send (from above) and Recv (from below)
// calls, then Stop.
type Layer interface {
	// Init wires the layer between its neighbours.
	Init(env Env, down Down, up Up) error
	// Cast handles a multicast request from the layer above.
	Cast(payload []byte) error
	// Send handles a point-to-point request from the layer above.
	// Layers without point-to-point semantics return ErrUnsupported.
	Send(dst ids.ProcID, payload []byte) error
	// Recv handles a payload arriving from the layer below; src is the
	// sender as reported by that layer.
	Recv(src ids.ProcID, payload []byte)
	// Stop cancels timers and releases resources. Idempotent.
	Stop()
}

// EpochAware is implemented by layers whose state is keyed to the
// switching protocol's epoch counter (per-epoch MAC keys, replay
// windows that must survive a protocol switch). The switching layer
// calls SetEpoch on every sub-stack each time its delivery epoch
// advances; epochs are monotonically non-decreasing. Layers that do not
// implement the interface are unaffected.
type EpochAware interface {
	SetEpoch(epoch uint64)
}
