package wire

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash"
)

// This file is the authenticated envelope: the keyed sibling of the CRC
// envelope in seal.go. The CRC envelope detects accidental damage; this
// one rejects deliberate forgery. The MAC key is not used directly —
// each switching epoch derives its own subkey from the group session
// key (DeriveEpochKey), so a frame authenticates both its bytes AND the
// epoch it was sealed in. That per-epoch binding is what lets the
// switching layer reject a frame captured in epoch N and replayed after
// the group has moved to epoch N+1: the recorded MAC only verifies
// under epoch N's key, and the receiver stopped accepting that key when
// the grace window closed. The design follows the mpENC pattern of
// rolling authentication state forward with group membership/protocol
// changes instead of resetting it.
//
// Envelope layout: [magic 0xA7][epoch uvarint][mac 16][payload], where
// mac = HMAC-SHA256(epochKey, epochHeader || payload) truncated to 16
// bytes. The epoch header bytes are inside the MAC so an attacker
// cannot splice a valid epoch-N frame into an epoch-M envelope.

// authMagic distinguishes authenticated frames from CRC-sealed frames
// (0xD5) and stray bytes before any crypto runs.
const authMagic = 0xA7

// authMACSize is the truncated HMAC-SHA256 length. 128 bits keeps the
// per-frame overhead comparable to a UUID while leaving forgery
// probability negligible for a session's lifetime.
const authMACSize = 16

// MaxAuthOverhead bounds the envelope size: magic + max uvarint epoch
// (10 bytes) + MAC.
const MaxAuthOverhead = 1 + binary.MaxVarintLen64 + authMACSize

// ErrAuthFrame is returned by OpenAuth and AuthEpoch for input that is
// not structurally an authenticated envelope (too short, wrong magic,
// malformed epoch varint).
var ErrAuthFrame = errors.New("wire: bad auth envelope")

// ErrAuth is returned by OpenAuth when the envelope is well-formed but
// the MAC does not verify under the given key: a forgery, a replay
// sealed under a retired epoch key, or corruption.
var ErrAuth = errors.New("wire: authentication failed")

// DeriveEpochKey derives the per-epoch MAC key from the group session
// key: HMAC-SHA256(sessionKey, "switch-epoch" || epoch LE64). Epoch
// keys are independent — compromise or exposure of one epoch's key
// reveals nothing about any other epoch's.
func DeriveEpochKey(sessionKey []byte, epoch uint64) []byte {
	mac := hmac.New(sha256.New, sessionKey)
	var label [20]byte
	copy(label[:], "switch-epoch")
	binary.LittleEndian.PutUint64(label[12:], epoch)
	mac.Write(label[:])
	return mac.Sum(nil)
}

// authMAC computes the truncated envelope MAC over the epoch header
// bytes followed by the payload.
func authMAC(key, epochHeader, payload []byte) [authMACSize]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(epochHeader)
	mac.Write(payload)
	var sum [sha256.Size]byte
	mac.Sum(sum[:0])
	var out [authMACSize]byte
	copy(out[:], sum[:authMACSize])
	return out
}

// SealAuth wraps payload in the authenticated envelope under the given
// per-epoch key (see DeriveEpochKey), returning a fresh slice.
func SealAuth(key []byte, epoch uint64, payload []byte) []byte {
	return SealAuthTo(make([]byte, 0, MaxAuthOverhead+len(payload)), key, epoch, payload)
}

// SealAuthTo appends the authenticated envelope and payload to dst and
// returns the extended slice — the append-style variant of SealAuth for
// callers that reuse a scratch buffer. It still constructs an HMAC
// instance per call; the steady-state path should hold an AuthSealer,
// which caches the keyed HMAC for its epoch.
func SealAuthTo(dst []byte, key []byte, epoch uint64, payload []byte) []byte {
	base := len(dst)
	dst = append(dst, authMagic)
	dst = binary.AppendUvarint(dst, epoch)
	mac := authMAC(key, dst[base+1:], payload)
	dst = append(dst, mac[:]...)
	return append(dst, payload...)
}

// AuthSealer seals and opens authenticated envelopes for one (key,
// epoch) pair with a cached HMAC instance, precomputed header bytes,
// and an internal digest scratch — the zero-allocation sibling of
// SealAuth/OpenAuth. The switching layer keeps one per live epoch in
// its key schedule, rolled with the epoch keys themselves, so sealing a
// frame in steady state costs two SHA-256 compressions and no heap.
//
// An AuthSealer is not safe for concurrent use; each member's event
// loop owns its own (the same discipline as every protocol layer).
type AuthSealer struct {
	epoch  uint64
	mac    hash.Hash
	hdr    [1 + binary.MaxVarintLen64]byte
	hdrLen int
	sum    [sha256.Size]byte
}

// NewAuthSealer returns a sealer for the given per-epoch key (see
// DeriveEpochKey) and epoch.
func NewAuthSealer(key []byte, epoch uint64) *AuthSealer {
	a := &AuthSealer{epoch: epoch, mac: hmac.New(sha256.New, key)}
	a.hdr[0] = authMagic
	a.hdrLen = 1 + binary.PutUvarint(a.hdr[1:], epoch)
	return a
}

// Epoch returns the epoch this sealer's key was derived for.
func (a *AuthSealer) Epoch() uint64 { return a.epoch }

// computeMAC runs the cached HMAC over epochHeader || payload. The
// returned slice aliases the sealer's scratch and is valid until the
// next computeMAC.
func (a *AuthSealer) computeMAC(epochHeader, payload []byte) []byte {
	a.mac.Reset()
	a.mac.Write(epochHeader)
	a.mac.Write(payload)
	return a.mac.Sum(a.sum[:0])
}

// SealTo appends the authenticated envelope and payload to dst and
// returns the extended slice. Equivalent bytes to SealAuth under the
// same key and epoch.
func (a *AuthSealer) SealTo(dst, payload []byte) []byte {
	sum := a.computeMAC(a.hdr[1:a.hdrLen], payload)
	dst = append(dst, a.hdr[:a.hdrLen]...)
	dst = append(dst, sum[:authMACSize]...)
	return append(dst, payload...)
}

// Open verifies and strips an envelope sealed under this sealer's epoch
// and key. A well-formed envelope carrying a different epoch fails with
// ErrAuth (its MAC cannot verify under this key); pick the sealer with
// AuthEpoch first. The returned payload aliases pkt.
func (a *AuthSealer) Open(pkt []byte) ([]byte, error) {
	if len(pkt) < 1 || pkt[0] != authMagic {
		return nil, ErrAuthFrame
	}
	epoch, n := binary.Uvarint(pkt[1:])
	if n <= 0 || len(pkt) < 1+n+authMACSize {
		return nil, ErrAuthFrame
	}
	if epoch != a.epoch {
		return nil, ErrAuth
	}
	payload := pkt[1+n+authMACSize:]
	want := a.computeMAC(pkt[1:1+n], payload)
	if !hmac.Equal(want[:authMACSize], pkt[1+n:1+n+authMACSize]) {
		return nil, ErrAuth
	}
	return payload, nil
}

// AuthEpoch peeks the epoch counter from an authenticated envelope
// without verifying it. The switching layer uses this to pick which
// epoch key to verify under; the value is UNTRUSTED until OpenAuth
// succeeds with that epoch's key (the epoch bytes are inside the MAC,
// so a lying header cannot verify).
func AuthEpoch(pkt []byte) (uint64, error) {
	if len(pkt) < 1 || pkt[0] != authMagic {
		return 0, ErrAuthFrame
	}
	epoch, n := binary.Uvarint(pkt[1:])
	if n <= 0 || len(pkt) < 1+n+authMACSize {
		return 0, ErrAuthFrame
	}
	return epoch, nil
}

// OpenAuth verifies and strips the authenticated envelope under the
// given per-epoch key. The returned payload aliases pkt; callers that
// retain it must copy. The MAC comparison is constant-time. OpenAuth
// never panics: any input that is not a well-formed envelope yields
// ErrAuthFrame, and any MAC mismatch yields ErrAuth.
func OpenAuth(key []byte, pkt []byte) ([]byte, error) {
	if len(pkt) < 1 || pkt[0] != authMagic {
		return nil, ErrAuthFrame
	}
	_, n := binary.Uvarint(pkt[1:])
	if n <= 0 || len(pkt) < 1+n+authMACSize {
		return nil, ErrAuthFrame
	}
	epochHeader := pkt[1 : 1+n]
	payload := pkt[1+n+authMACSize:]
	want := authMAC(key, epochHeader, payload)
	if !hmac.Equal(want[:], pkt[1+n:1+n+authMACSize]) {
		return nil, ErrAuth
	}
	return payload, nil
}
