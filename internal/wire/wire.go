// Package wire provides the binary header encoding used between protocol
// layers. Layers exchange raw bytes (exactly as the Horus/Ensemble stacks
// the paper builds on did): on the way down each layer prepends its own
// header, on the way up it strips it. Working on real bytes is what lets
// the integrity layer MAC, and the confidentiality layer encrypt, the
// entire stack beneath them.
//
// The Encoder appends fields; the Decoder consumes them with a sticky
// error, so call sites read a whole header and check Err() once.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ids"
)

// ErrTruncated is returned (via Decoder.Err) when a read runs past the
// end of the buffer.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTooLong is returned when a length prefix exceeds the remaining
// input (corruption guard).
var ErrTooLong = errors.New("wire: length prefix exceeds input")

// ErrOverflow is returned when a varint encodes more than 64 bits —
// only corrupted or adversarial input produces one.
var ErrOverflow = errors.New("wire: varint overflow")

// Encoder accumulates an encoded header. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the encoder's
// buffer; callers must not retain it across further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) *Encoder {
	e.buf = append(e.buf, v)
	return e
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) *Encoder {
	e.buf = binary.AppendUvarint(e.buf, v)
	return e
}

// Varint appends a signed varint (zig-zag).
func (e *Encoder) Varint(v int64) *Encoder {
	e.buf = binary.AppendVarint(e.buf, v)
	return e
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) BytesField(b []byte) *Encoder {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) *Encoder {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Proc appends a process id.
func (e *Encoder) Proc(p ids.ProcID) *Encoder { return e.Varint(int64(p)) }

// Msg appends a message id.
func (e *Encoder) Msg(m ids.MsgID) *Encoder { return e.Uvarint(uint64(m)) }

// Channel appends a channel id.
func (e *Encoder) Channel(c ids.ChannelID) *Encoder { return e.Uvarint(uint64(c)) }

// Procs appends a length-prefixed list of process ids.
func (e *Encoder) Procs(ps []ids.ProcID) *Encoder {
	e.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		e.Proc(p)
	}
	return e
}

// Counts appends a length-prefixed list of counters (the switching
// protocol's send-count vector).
func (e *Encoder) Counts(cs []uint64) *Encoder {
	e.Uvarint(uint64(len(cs)))
	for _, c := range cs {
		e.Uvarint(c)
	}
	return e
}

// Prepend returns header ++ payload as a fresh slice: the canonical
// "push my header" operation on the way down a stack. The result is
// independently owned, so it is safe to retain (retransmission
// buffers); hot paths that hand the frame straight to a transport
// should use Frame instead, which skips the extra copy.
func (e *Encoder) Prepend(payload []byte) []byte {
	out := make([]byte, 0, len(e.buf)+len(payload))
	out = append(out, e.buf...)
	out = append(out, payload...)
	return out
}

// Frame appends payload after the encoded header in the encoder's own
// buffer and returns the combined frame — the zero-copy sibling of
// Prepend. The result aliases the encoder's buffer: it is valid until
// the encoder's next write, Reset, or release back to the pool, so use
// it when the frame is consumed synchronously (every transport in this
// repository copies on send) and Prepend when the frame is retained.
// With a NewEncoder sized for header+payload this costs one allocation;
// with a pooled encoder (GetEncoder) it costs none in steady state.
func (e *Encoder) Frame(payload []byte) []byte {
	e.buf = append(e.buf, payload...)
	return e.buf
}

// Reset truncates the encoder for reuse, keeping its buffer capacity.
func (e *Encoder) Reset() *Encoder {
	e.buf = e.buf[:0]
	return e
}

// Decoder consumes an encoded header with a sticky error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b for decoding. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unconsumed tail of the buffer: the payload left
// for the layer above after this layer's header has been stripped.
func (d *Decoder) Remaining() []byte {
	if d.err != nil {
		return nil
	}
	return d.buf[d.off:]
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// U8 consumes a byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Uvarint consumes an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n == 0 {
		d.fail(ErrTruncated)
		return 0
	}
	if n < 0 {
		d.fail(ErrOverflow)
		return 0
	}
	d.off += n
	return v
}

// Varint consumes a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n == 0 {
		d.fail(ErrTruncated)
		return 0
	}
	if n < 0 {
		d.fail(ErrOverflow)
		return 0
	}
	d.off += n
	return v
}

// Bool consumes a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// BytesField consumes a length-prefixed byte string. The result is a
// copy, safe to retain.
func (d *Decoder) BytesField() []byte {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(ErrTooLong)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

// String consumes a length-prefixed string.
func (d *Decoder) String() string {
	return string(d.BytesField())
}

// Proc consumes a process id.
func (d *Decoder) Proc() ids.ProcID { return ids.ProcID(d.Varint()) }

// Msg consumes a message id.
func (d *Decoder) Msg() ids.MsgID { return ids.MsgID(d.Uvarint()) }

// Channel consumes a channel id.
func (d *Decoder) Channel() ids.ChannelID {
	v := d.Uvarint()
	if v > 0xFFFF {
		d.fail(fmt.Errorf("wire: channel id %d out of range", v))
		return 0
	}
	return ids.ChannelID(v)
}

// Procs consumes a length-prefixed list of process ids.
func (d *Decoder) Procs() []ids.ProcID {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) { // each proc takes >= 1 byte
		d.fail(ErrTooLong)
		return nil
	}
	out := make([]ids.ProcID, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.Proc())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Counts consumes a length-prefixed list of counters.
func (d *Decoder) Counts() []uint64 {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) { // each count takes >= 1 byte
		d.fail(ErrTooLong)
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.Uvarint())
	}
	if d.err != nil {
		return nil
	}
	return out
}
