package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(64)
	e.U8(7).Uvarint(1 << 40).Varint(-12345).Bool(true).Bool(false)
	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -12345 {
		t.Errorf("Varint = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
	if len(d.Remaining()) != 0 {
		t.Errorf("Remaining = %d bytes", len(d.Remaining()))
	}
}

func TestRoundTripComposites(t *testing.T) {
	procs := []ids.ProcID{0, 3, 7}
	counts := []uint64{0, 10, 1 << 50}
	e := NewEncoder(0)
	e.BytesField([]byte("payload")).String("str").
		Proc(5).Msg(99).Channel(3).Procs(procs).Counts(counts)
	d := NewDecoder(e.Bytes())
	if got := d.BytesField(); string(got) != "payload" {
		t.Errorf("BytesField = %q", got)
	}
	if got := d.String(); got != "str" {
		t.Errorf("String = %q", got)
	}
	if got := d.Proc(); got != 5 {
		t.Errorf("Proc = %v", got)
	}
	if got := d.Msg(); got != 99 {
		t.Errorf("Msg = %v", got)
	}
	if got := d.Channel(); got != 3 {
		t.Errorf("Channel = %v", got)
	}
	if got := d.Procs(); !reflect.DeepEqual(got, procs) {
		t.Errorf("Procs = %v", got)
	}
	if got := d.Counts(); !reflect.DeepEqual(got, counts) {
		t.Errorf("Counts = %v", got)
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
}

func TestEmptyCollections(t *testing.T) {
	e := NewEncoder(0)
	e.Procs(nil).Counts(nil).BytesField(nil)
	d := NewDecoder(e.Bytes())
	if got := d.Procs(); len(got) != 0 {
		t.Errorf("empty Procs = %v", got)
	}
	if got := d.Counts(); len(got) != 0 {
		t.Errorf("empty Counts = %v", got)
	}
	if got := d.BytesField(); len(got) != 0 {
		t.Errorf("empty BytesField = %v", got)
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
}

func TestPrepend(t *testing.T) {
	e := NewEncoder(0)
	e.U8(1).U8(2)
	payload := []byte{9, 9}
	out := e.Prepend(payload)
	if !bytes.Equal(out, []byte{1, 2, 9, 9}) {
		t.Errorf("Prepend = %v", out)
	}
	// The result must not alias the payload.
	out[2] = 0
	if payload[0] != 9 {
		t.Error("Prepend aliased the payload")
	}
}

func TestRemainingAfterHeader(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(42)
	full := e.Prepend([]byte("rest"))
	d := NewDecoder(full)
	if got := d.Uvarint(); got != 42 {
		t.Fatalf("header = %d", got)
	}
	if string(d.Remaining()) != "rest" {
		t.Errorf("Remaining = %q", d.Remaining())
	}
}

func TestTruncationSticky(t *testing.T) {
	d := NewDecoder([]byte{})
	_ = d.U8()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", d.Err())
	}
	// Error is sticky: subsequent reads return zero values and keep err.
	if d.Uvarint() != 0 || d.Varint() != 0 || d.Bool() || d.BytesField() != nil {
		t.Error("reads after error returned non-zero values")
	}
	if d.Remaining() != nil {
		t.Error("Remaining after error should be nil")
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Error("error not sticky")
	}
}

func TestLengthPrefixGuards(t *testing.T) {
	// BytesField whose prefix claims more than available.
	e := NewEncoder(0)
	e.Uvarint(1000)
	d := NewDecoder(e.Bytes())
	if d.BytesField() != nil || !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("oversized BytesField: got err %v", d.Err())
	}
	// Procs with an absurd count.
	e = NewEncoder(0)
	e.Uvarint(1 << 50)
	d = NewDecoder(e.Bytes())
	if d.Procs() != nil || !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("oversized Procs: got err %v", d.Err())
	}
	// Counts with an absurd count.
	d = NewDecoder(e.Bytes())
	if d.Counts() != nil || !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("oversized Counts: got err %v", d.Err())
	}
}

func TestTruncatedCollections(t *testing.T) {
	e := NewEncoder(0)
	e.Procs([]ids.ProcID{1, 2, 3})
	b := e.Bytes()
	d := NewDecoder(b[:len(b)-1])
	if d.Procs() != nil || d.Err() == nil {
		t.Error("truncated Procs decoded without error")
	}
	e = NewEncoder(0)
	e.Counts([]uint64{300, 300, 300})
	b = e.Bytes()
	d = NewDecoder(b[:len(b)-1])
	if d.Counts() != nil || d.Err() == nil {
		t.Error("truncated Counts decoded without error")
	}
}

func TestChannelRangeGuard(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(1 << 20)
	d := NewDecoder(e.Bytes())
	_ = d.Channel()
	if d.Err() == nil {
		t.Error("out-of-range channel decoded without error")
	}
}

func TestNegativeProcRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.Proc(ids.Nobody)
	d := NewDecoder(e.Bytes())
	if got := d.Proc(); got != ids.Nobody {
		t.Errorf("Proc(Nobody) round trip = %v", got)
	}
}

func TestBytesFieldCopies(t *testing.T) {
	e := NewEncoder(0)
	e.BytesField([]byte("abc"))
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.BytesField()
	buf[len(buf)-1] = 'X'
	if string(got) != "abc" {
		t.Error("BytesField result aliases the input buffer")
	}
}

// Property: any sequence of uvarints round-trips.
func TestUvarintRoundTripProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		e := NewEncoder(0)
		for _, v := range vals {
			e.Uvarint(v)
		}
		d := NewDecoder(e.Bytes())
		for _, v := range vals {
			if d.Uvarint() != v {
				return false
			}
		}
		return d.Err() == nil && len(d.Remaining()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary byte strings survive length-prefixed round trips.
func TestBytesRoundTripProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		e := NewEncoder(0)
		for _, c := range chunks {
			e.BytesField(c)
		}
		d := NewDecoder(e.Bytes())
		for _, c := range chunks {
			if !bytes.Equal(d.BytesField(), c) {
				return false
			}
		}
		return d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding random garbage never panics; it either succeeds or
// sets a sticky error.
func TestDecoderRobustnessProperty(t *testing.T) {
	f := func(garbage []byte) bool {
		d := NewDecoder(garbage)
		_ = d.Uvarint()
		_ = d.Procs()
		_ = d.BytesField()
		_ = d.Counts()
		_ = d.Remaining()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncoderLen(t *testing.T) {
	e := NewEncoder(0)
	if e.Len() != 0 {
		t.Error("fresh encoder non-empty")
	}
	e.U8(1)
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}
}
