package wire

import "testing"

// Micro-benchmarks comparing the CRC envelope with the authenticated
// envelope: the baseline for the zero-alloc envelope roadmap item. Run
// with `go test -bench Envelope -benchmem ./internal/wire`.

var benchPayload = func() []byte {
	b := make([]byte, 256)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}()

var benchSink []byte

func BenchmarkEnvelopeSeal(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	for i := 0; i < b.N; i++ {
		benchSink = Seal(benchPayload)
	}
}

func BenchmarkEnvelopeOpen(b *testing.B) {
	pkt := Seal(benchPayload)
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Open(pkt)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = p
	}
}

func BenchmarkEnvelopeSealAuth(b *testing.B) {
	key := DeriveEpochKey([]byte("bench session"), 1)
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = SealAuth(key, 1, benchPayload)
	}
}

func BenchmarkEnvelopeOpenAuth(b *testing.B) {
	key := DeriveEpochKey([]byte("bench session"), 1)
	pkt := SealAuth(key, 1, benchPayload)
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := OpenAuth(key, pkt)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = p
	}
}

func BenchmarkEnvelopeSealTo(b *testing.B) {
	dst := make([]byte, 0, SealOverhead+len(benchPayload))
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = SealTo(dst, benchPayload)
	}
}

// BenchmarkEnvelopeSealAuthCached is the steady-state authed seal: the
// cached-HMAC AuthSealer the switching key schedule holds per epoch.
// It must report 0 allocs/op (asserted in TestAuthSealerAllocs).
func BenchmarkEnvelopeSealAuthCached(b *testing.B) {
	sealer := NewAuthSealer(DeriveEpochKey([]byte("bench session"), 1), 1)
	dst := make([]byte, 0, MaxAuthOverhead+len(benchPayload))
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = sealer.SealTo(dst, benchPayload)
	}
}

func BenchmarkEnvelopeOpenAuthCached(b *testing.B) {
	sealer := NewAuthSealer(DeriveEpochKey([]byte("bench session"), 1), 1)
	pkt := sealer.SealTo(nil, benchPayload)
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := sealer.Open(pkt)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = p
	}
}

func BenchmarkDeriveEpochKey(b *testing.B) {
	session := []byte("bench session")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = DeriveEpochKey(session, uint64(i))
	}
}
