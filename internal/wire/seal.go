package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// This file is the integrity envelope the switching layer's defensive
// ingress uses to detect wire corruption. It is deliberately not a MAC:
// the fault model is non-Byzantine (bit rot, truncation, cross-version
// garbage), so a checksum that catches random damage is sufficient, and
// keeping it here — below every protocol header — means one check at
// the trust boundary covers the entire stack above it.
//
// Envelope layout: [magic 0xD5][crc32c(payload) LE][payload].

// SealOverhead is the envelope size in bytes: magic plus checksum.
const SealOverhead = 5

// sealMagic distinguishes sealed frames from stray bytes cheaply,
// before the checksum is even computed.
const sealMagic = 0xD5

// ErrFrame is returned by Open for an envelope that is too short or
// carries the wrong magic byte.
var ErrFrame = errors.New("wire: bad integrity envelope")

// ErrChecksum is returned by Open when the envelope checksum does not
// match the payload (corruption in transit).
var ErrChecksum = errors.New("wire: envelope checksum mismatch")

// castagnoli is the CRC-32C polynomial table (the iSCSI/ext4 choice —
// better burst-error detection than IEEE for short frames).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps payload in the integrity envelope, returning a fresh
// slice.
func Seal(payload []byte) []byte {
	return SealTo(make([]byte, 0, SealOverhead+len(payload)), payload)
}

// SealTo appends the integrity envelope and payload to dst and returns
// the extended slice — the allocation-free variant of Seal for callers
// that reuse a scratch buffer (see GetBuf). dst is typically an empty
// pooled slice; sealing into the tail of a partially built frame also
// works.
func SealTo(dst, payload []byte) []byte {
	var hdr [SealOverhead]byte
	hdr[0] = sealMagic
	binary.LittleEndian.PutUint32(hdr[1:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Open verifies and strips the integrity envelope. The returned payload
// aliases pkt; callers that retain it must copy. Open never panics: any
// input that is not a well-formed envelope yields ErrFrame or
// ErrChecksum.
func Open(pkt []byte) ([]byte, error) {
	if len(pkt) < SealOverhead || pkt[0] != sealMagic {
		return nil, ErrFrame
	}
	payload := pkt[SealOverhead:]
	if binary.LittleEndian.Uint32(pkt[1:]) != crc32.Checksum(payload, castagnoli) {
		return nil, ErrChecksum
	}
	return payload, nil
}
