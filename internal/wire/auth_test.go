package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealAuthRoundTrip(t *testing.T) {
	session := []byte("group session key")
	for _, epoch := range []uint64{0, 1, 127, 128, 1 << 20, 1<<64 - 1} {
		key := DeriveEpochKey(session, epoch)
		for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 100)} {
			pkt := SealAuth(key, epoch, payload)
			got, err := OpenAuth(key, pkt)
			if err != nil {
				t.Fatalf("OpenAuth(epoch=%d, len=%d): %v", epoch, len(payload), err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload mangled: %q vs %q", got, payload)
			}
			peeked, err := AuthEpoch(pkt)
			if err != nil || peeked != epoch {
				t.Fatalf("AuthEpoch = %d, %v; want %d", peeked, err, epoch)
			}
		}
	}
}

func TestOpenAuthRejectsWrongKey(t *testing.T) {
	session := []byte("group session key")
	key := DeriveEpochKey(session, 3)
	pkt := SealAuth(key, 3, []byte("hello"))

	// Wrong epoch's key: same session, different derivation.
	if _, err := OpenAuth(DeriveEpochKey(session, 4), pkt); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong-epoch key: err = %v, want ErrAuth", err)
	}
	// Completely foreign key.
	if _, err := OpenAuth([]byte("attacker key"), pkt); !errors.Is(err, ErrAuth) {
		t.Errorf("foreign key: err = %v, want ErrAuth", err)
	}
	// Right key still works after the failed attempts.
	if _, err := OpenAuth(key, pkt); err != nil {
		t.Errorf("correct key after failures: %v", err)
	}
}

func TestOpenAuthRejectsSplicedEpoch(t *testing.T) {
	// An attacker must not be able to take a valid epoch-3 frame and
	// rewrite its header to claim another epoch: the epoch bytes are
	// inside the MAC.
	session := []byte("group session key")
	key := DeriveEpochKey(session, 3)
	pkt := SealAuth(key, 3, []byte("hello"))
	pkt[1] = 4 // single-byte uvarint: 3 -> 4
	if e, err := AuthEpoch(pkt); err != nil || e != 4 {
		t.Fatalf("AuthEpoch after splice = %d, %v", e, err)
	}
	if _, err := OpenAuth(DeriveEpochKey(session, 4), pkt); !errors.Is(err, ErrAuth) {
		t.Errorf("spliced epoch verified under epoch-4 key: err = %v", err)
	}
	if _, err := OpenAuth(key, pkt); !errors.Is(err, ErrAuth) {
		t.Errorf("spliced epoch verified under epoch-3 key: err = %v", err)
	}
}

func TestOpenAuthRejectsDamage(t *testing.T) {
	key := DeriveEpochKey([]byte("k"), 9)
	pkt := SealAuth(key, 9, []byte("the payload under test"))
	for bit := 0; bit < len(pkt)*8; bit++ {
		dam := append([]byte(nil), pkt...)
		dam[bit/8] ^= 1 << uint(bit%8)
		if _, err := OpenAuth(key, dam); err == nil {
			t.Fatalf("OpenAuth accepted a 1-bit-damaged envelope (bit %d)", bit)
		}
	}
}

func TestOpenAuthRejectsMalformed(t *testing.T) {
	key := DeriveEpochKey([]byte("k"), 0)
	cases := [][]byte{
		nil,
		{},
		{authMagic},
		{sealMagic, 0, 0, 0, 0, 0}, // CRC envelope magic, not auth
		{authMagic, 0x80},          // truncated uvarint
		append([]byte{authMagic, 0}, make([]byte, authMACSize-1)...), // short MAC
		bytes.Repeat([]byte{0x80}, 32),                               // unterminated varint
	}
	for i, pkt := range cases {
		if _, err := OpenAuth(key, pkt); !errors.Is(err, ErrAuthFrame) {
			t.Errorf("case %d: err = %v, want ErrAuthFrame", i, err)
		}
		if _, err := AuthEpoch(pkt); err == nil && len(pkt) > 0 && pkt[0] == authMagic {
			// AuthEpoch may succeed only on structurally complete envelopes.
			if len(pkt) < 1+1+authMACSize {
				t.Errorf("case %d: AuthEpoch accepted a short envelope", i)
			}
		}
	}
	// Shortest well-formed envelope: empty payload.
	min := SealAuth(key, 0, nil)
	if _, err := OpenAuth(key, min); err != nil {
		t.Errorf("minimal envelope rejected: %v", err)
	}
}

func TestDeriveEpochKeyIndependence(t *testing.T) {
	session := []byte("group session key")
	k0 := DeriveEpochKey(session, 0)
	k1 := DeriveEpochKey(session, 1)
	if bytes.Equal(k0, k1) {
		t.Error("epoch keys 0 and 1 are identical")
	}
	if len(k0) != 32 {
		t.Errorf("epoch key length = %d, want 32", len(k0))
	}
	// Deterministic: same inputs, same key.
	if !bytes.Equal(k0, DeriveEpochKey(session, 0)) {
		t.Error("DeriveEpochKey is not deterministic")
	}
	// Different sessions disagree at the same epoch.
	if bytes.Equal(k0, DeriveEpochKey([]byte("other session"), 0)) {
		t.Error("distinct sessions derived the same epoch key")
	}
}

func TestAuthAndCRCEnvelopesAreDisjoint(t *testing.T) {
	// A CRC-sealed frame must never open as an auth frame and vice
	// versa: the switching layer dispatches on the leading magic.
	key := DeriveEpochKey([]byte("k"), 1)
	crc := Seal([]byte("plain"))
	if _, err := OpenAuth(key, crc); !errors.Is(err, ErrAuthFrame) {
		t.Errorf("OpenAuth(crc frame) = %v, want ErrAuthFrame", err)
	}
	auth := SealAuth(key, 1, []byte("authed"))
	if _, err := Open(auth); !errors.Is(err, ErrFrame) {
		t.Errorf("Open(auth frame) = %v, want ErrFrame", err)
	}
}
