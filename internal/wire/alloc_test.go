package wire

import (
	"bytes"
	"testing"
)

// Allocation regression tests for the zero-alloc hot path. These pin
// the per-frame costs the throughput benchmarks depend on: Frame at
// most one allocation (the encoder's own buffer growing once), the
// pooled/append-style variants at zero. testing.AllocsPerRun does one
// warm-up call, which absorbs the first-use growth and the HMAC's
// internal state marshaling.

func TestFrameAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	// Fresh encoder sized for header+payload: the single allocation is
	// NewEncoder's buffer; Frame itself must not add another.
	allocs := testing.AllocsPerRun(100, func() {
		e := NewEncoder(8 + len(payload))
		e.U8(1).Uvarint(42)
		benchSink = e.Frame(payload)
	})
	if allocs > 1 {
		t.Fatalf("NewEncoder+Frame allocated %.1f times per op, want <= 1", allocs)
	}
	// Pooled encoder: steady state must be allocation-free.
	allocs = testing.AllocsPerRun(100, func() {
		e := GetEncoder()
		e.U8(1).Uvarint(42)
		benchSink = e.Frame(payload)
		PutEncoder(e)
	})
	if allocs != 0 {
		t.Fatalf("pooled encoder Frame allocated %.1f times per op, want 0", allocs)
	}
}

func TestFrameBytesMatchPrepend(t *testing.T) {
	payload := []byte("the payload under the header")
	a := NewEncoder(8)
	a.U8(7).Uvarint(99)
	want := a.Prepend(payload)
	b := NewEncoder(8)
	b.U8(7).Uvarint(99)
	got := b.Frame(payload)
	if !bytes.Equal(got, want) {
		t.Fatalf("Frame bytes differ from Prepend: got %x want %x", got, want)
	}
	// Reset reuses the buffer for a second frame.
	got2 := b.Reset().U8(7).Uvarint(99).Frame(payload)
	if !bytes.Equal(got2, want) {
		t.Fatalf("Frame after Reset differs: got %x want %x", got2, want)
	}
}

func TestSealToAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xCD}, 256)
	dst := make([]byte, 0, SealOverhead+len(payload))
	allocs := testing.AllocsPerRun(100, func() {
		benchSink = SealTo(dst, payload)
	})
	if allocs != 0 {
		t.Fatalf("SealTo into preallocated dst allocated %.1f times per op, want 0", allocs)
	}
	if want := Seal(payload); !bytes.Equal(SealTo(nil, payload), want) {
		t.Fatal("SealTo bytes differ from Seal")
	}
	// Pooled round trip: seal into a pooled buffer, open, return it.
	allocs = testing.AllocsPerRun(100, func() {
		bp := GetBuf()
		pkt := SealTo(*bp, payload)
		p, err := Open(pkt)
		if err != nil || len(p) != len(payload) {
			t.Fatal("round trip failed")
		}
		*bp = pkt[:0]
		PutBuf(bp)
	})
	if allocs != 0 {
		t.Fatalf("pooled SealTo/Open round trip allocated %.1f times per op, want 0", allocs)
	}
}

func TestSealAuthToBytesMatchSealAuth(t *testing.T) {
	key := DeriveEpochKey([]byte("alloc test session"), 3)
	payload := []byte("authenticated payload")
	want := SealAuth(key, 3, payload)
	if got := SealAuthTo(nil, key, 3, payload); !bytes.Equal(got, want) {
		t.Fatalf("SealAuthTo bytes differ: got %x want %x", got, want)
	}
	sealer := NewAuthSealer(key, 3)
	if got := sealer.SealTo(nil, payload); !bytes.Equal(got, want) {
		t.Fatalf("AuthSealer.SealTo bytes differ: got %x want %x", got, want)
	}
	// Cross-verify: sealer output opens with OpenAuth and vice versa.
	if _, err := OpenAuth(key, sealer.SealTo(nil, payload)); err != nil {
		t.Fatalf("OpenAuth rejected AuthSealer frame: %v", err)
	}
	if _, err := sealer.Open(want); err != nil {
		t.Fatalf("AuthSealer.Open rejected SealAuth frame: %v", err)
	}
}

func TestAuthSealerAllocs(t *testing.T) {
	key := DeriveEpochKey([]byte("alloc test session"), 5)
	sealer := NewAuthSealer(key, 5)
	payload := bytes.Repeat([]byte{0xEF}, 256)
	dst := make([]byte, 0, MaxAuthOverhead+len(payload))
	allocs := testing.AllocsPerRun(100, func() {
		benchSink = sealer.SealTo(dst, payload)
	})
	if allocs != 0 {
		t.Fatalf("AuthSealer.SealTo allocated %.1f times per op, want 0", allocs)
	}
	pkt := sealer.SealTo(nil, payload)
	allocs = testing.AllocsPerRun(100, func() {
		p, err := sealer.Open(pkt)
		if err != nil || len(p) != len(payload) {
			t.Fatal("open failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("AuthSealer.Open allocated %.1f times per op, want 0", allocs)
	}
}

func TestAuthSealerRejects(t *testing.T) {
	key := DeriveEpochKey([]byte("alloc test session"), 7)
	sealer := NewAuthSealer(key, 7)
	payload := []byte("frame")
	if sealer.Epoch() != 7 {
		t.Fatalf("Epoch() = %d, want 7", sealer.Epoch())
	}
	// Wrong epoch: well-formed envelope, different epoch counter.
	other := SealAuth(DeriveEpochKey([]byte("alloc test session"), 8), 8, payload)
	if _, err := sealer.Open(other); err != ErrAuth {
		t.Fatalf("wrong-epoch open: got %v, want ErrAuth", err)
	}
	// Wrong key, same epoch counter.
	forged := SealAuth(DeriveEpochKey([]byte("other session"), 7), 7, payload)
	if _, err := sealer.Open(forged); err != ErrAuth {
		t.Fatalf("wrong-key open: got %v, want ErrAuth", err)
	}
	// Structural garbage.
	if _, err := sealer.Open([]byte{0x00, 0x01}); err != ErrAuthFrame {
		t.Fatalf("garbage open: got %v, want ErrAuthFrame", err)
	}
	if _, err := sealer.Open(nil); err != ErrAuthFrame {
		t.Fatalf("nil open: got %v, want ErrAuthFrame", err)
	}
	// Truncated just below the MAC boundary.
	good := sealer.SealTo(nil, payload)
	if _, err := sealer.Open(good[:3]); err != ErrAuthFrame {
		t.Fatalf("truncated open: got %v, want ErrAuthFrame", err)
	}
	// Flipped payload bit.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 1
	if _, err := sealer.Open(bad); err != ErrAuth {
		t.Fatalf("corrupted open: got %v, want ErrAuth", err)
	}
}
