package wire

import (
	"bytes"
	"testing"

	"repro/internal/ids"
)

// FuzzDecode drives every decoder primitive over arbitrary bytes. The
// decoder contract under fuzzing is: never panic, fail sticky (one
// error, then inert), and never hand out data past the first error.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	// A well-formed header covering every field type.
	e := NewEncoder(64)
	e.U8(3).Uvarint(1 << 40).Varint(-77).Bool(true).
		BytesField([]byte("payload")).String("name").
		Proc(ids.ProcID(5)).Msg(ids.MsgID(9)).Channel(ids.ChannelID(2)).
		Procs([]ids.ProcID{0, 1, 2}).Counts([]uint64{4, 5, 6})
	f.Add(append([]byte(nil), e.Bytes()...))
	// A sealed frame, so Open sees realistic envelopes too.
	f.Add(Seal([]byte("sealed payload")))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		// Walk the primitives in a fixed rotation until the input is
		// exhausted or an error sticks. The op mix is arbitrary; what
		// matters is that every primitive sees adversarial offsets.
		for i := 0; d.Err() == nil && len(d.Remaining()) > 0 && i < 1024; i++ {
			switch i % 9 {
			case 0:
				d.U8()
			case 1:
				d.Uvarint()
			case 2:
				d.Varint()
			case 3:
				d.Bool()
			case 4:
				d.BytesField()
			case 5:
				_ = d.String()
			case 6:
				d.Channel()
			case 7:
				d.Procs()
			case 8:
				d.Counts()
			}
		}
		if d.Err() != nil {
			// Sticky-error contract: after a failure the decoder is
			// inert and yields no data.
			if d.Remaining() != nil {
				t.Fatal("Remaining() non-nil after decode error")
			}
			first := d.Err()
			if d.U8() != 0 || d.Uvarint() != 0 || d.BytesField() != nil {
				t.Fatal("decoder handed out data after error")
			}
			if d.Err() != first {
				t.Fatalf("error not sticky: %v replaced %v", d.Err(), first)
			}
		}

		// Open must never panic, and an accepted envelope must be
		// canonical: re-sealing the payload reproduces the input.
		if payload, err := Open(data); err == nil {
			if !bytes.Equal(Seal(payload), data) {
				t.Fatal("Open accepted a non-canonical envelope")
			}
		}
	})
}

// FuzzRoundTrip encodes fuzzer-chosen values through every encoder
// field type, decodes them back, and requires exact equality — then
// checks the integrity envelope detects a single flipped bit.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(0), int64(0), false, []byte(nil), "", int64(0), uint16(0))
	f.Add(uint8(255), uint64(1)<<63, int64(-1)<<62, true, []byte("abc"), "xyz", int64(-1), uint16(0xFFFF))
	f.Add(uint8(7), uint64(1<<40), int64(-12345), true, []byte("payload"), "name", int64(5), uint16(2))

	f.Fuzz(func(t *testing.T, u8 uint8, uv uint64, v int64, b bool, bs []byte, s string, proc int64, ch uint16) {
		e := NewEncoder(64)
		e.U8(u8).Uvarint(uv).Varint(v).Bool(b).BytesField(bs).String(s).
			Proc(ids.ProcID(proc)).Channel(ids.ChannelID(ch))
		d := NewDecoder(e.Bytes())
		if got := d.U8(); got != u8 {
			t.Fatalf("U8 = %d, want %d", got, u8)
		}
		if got := d.Uvarint(); got != uv {
			t.Fatalf("Uvarint = %d, want %d", got, uv)
		}
		if got := d.Varint(); got != v {
			t.Fatalf("Varint = %d, want %d", got, v)
		}
		if got := d.Bool(); got != b {
			t.Fatalf("Bool = %v, want %v", got, b)
		}
		if got := d.BytesField(); !bytes.Equal(got, bs) {
			t.Fatalf("BytesField = %q, want %q", got, bs)
		}
		if got := d.String(); got != s {
			t.Fatalf("String = %q, want %q", got, s)
		}
		if got := d.Proc(); got != ids.ProcID(proc) {
			t.Fatalf("Proc = %d, want %d", got, proc)
		}
		if got := d.Channel(); got != ids.ChannelID(ch) {
			t.Fatalf("Channel = %d, want %d", got, ch)
		}
		if d.Err() != nil {
			t.Fatalf("round trip erred: %v", d.Err())
		}
		if len(d.Remaining()) != 0 {
			t.Fatalf("%d bytes left after round trip", len(d.Remaining()))
		}

		// Envelope round trip, then single-bit damage: CRC-32C detects
		// every 1-bit error, so Open must reject the mutation.
		sealed := Seal(bs)
		payload, err := Open(sealed)
		if err != nil || !bytes.Equal(payload, bs) {
			t.Fatalf("Open(Seal(%q)) = %q, %v", bs, payload, err)
		}
		bit := int(uv % uint64(len(sealed)*8))
		sealed[bit/8] ^= 1 << uint(bit%8)
		if _, err := Open(sealed); err == nil {
			t.Fatalf("Open accepted a 1-bit-damaged envelope (bit %d)", bit)
		}
	})
}
