package wire

import "sync"

// This file is the pooled buffer layer under the per-message hot path.
// Every frame a stack sends used to allocate at each layer boundary
// (header encode, envelope seal); since every transport in this
// repository copies payloads on send, those buffers die microseconds
// after they are built — exactly the lifetime sync.Pool is for. The
// contract at every call site is the same: anything obtained from a
// pooled encoder (Bytes, Frame) or a pooled buffer must be handed
// downstream *before* the Put, and never retained.

// maxPooled bounds the capacity of buffers kept by the pools. Anything
// larger (a one-off giant frame) is dropped for the GC instead of
// pinning its memory in the pool forever.
const maxPooled = 64 << 10

var encoderPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 512)} },
}

// GetEncoder returns a pooled encoder, empty and ready to append.
// Return it with PutEncoder once the frame it built has been handed
// downstream.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// PutEncoder returns an encoder to the pool. The caller must not touch
// the encoder — or any slice obtained from it — afterwards.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > maxPooled {
		return
	}
	encoderPool.Put(e)
}

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a pooled zero-length byte slice (behind a pointer, to
// keep the Put path allocation-free) for append-style builders such as
// SealTo and SealAuthTo. Typical use:
//
//	bp := wire.GetBuf()
//	pkt := wire.SealTo(*bp, payload)
//	... hand pkt downstream ...
//	*bp = pkt[:0] // keep any growth
//	wire.PutBuf(bp)
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a buffer to the pool, truncated for the next user.
func PutBuf(b *[]byte) {
	if cap(*b) > maxPooled {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
