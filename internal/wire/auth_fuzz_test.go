package wire

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzAuthKey is the fixed verification key for FuzzOpenAuth: the
// fuzzer explores the envelope space, not the key space (a random key
// never verifies, which would leave the accept path dark).
var fuzzAuthKey = DeriveEpochKey([]byte("fuzz session key"), 0)

// FuzzOpenAuth drives OpenAuth and AuthEpoch over arbitrary bytes. The
// contract: never panic, classify every input as ErrAuthFrame /
// ErrAuth / accept, and only accept canonical envelopes sealed under
// the verification key.
func FuzzOpenAuth(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{authMagic})
	f.Add([]byte{authMagic, 0x80, 0x80, 0x80})
	f.Add(Seal([]byte("crc framed")))
	f.Add(SealAuth(fuzzAuthKey, 0, nil))
	f.Add(SealAuth(fuzzAuthKey, 7, []byte("authenticated payload")))
	f.Add(SealAuth(DeriveEpochKey([]byte("fuzz session key"), 1), 1, []byte("other epoch")))
	f.Add(SealAuth([]byte("wrong key"), 3, []byte("forged")))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := OpenAuth(fuzzAuthKey, data)
		switch {
		case err == nil:
			// Accepted envelopes are canonical: re-sealing the payload
			// at the peeked epoch reproduces the input byte-for-byte.
			epoch, eerr := AuthEpoch(data)
			if eerr != nil {
				t.Fatalf("OpenAuth accepted but AuthEpoch failed: %v", eerr)
			}
			if !bytes.Equal(SealAuth(fuzzAuthKey, epoch, payload), data) {
				t.Fatal("OpenAuth accepted a non-canonical envelope")
			}
		case errors.Is(err, ErrAuthFrame):
			// Structurally bad: AuthEpoch must agree.
			if _, eerr := AuthEpoch(data); eerr == nil {
				t.Fatal("OpenAuth says ErrAuthFrame but AuthEpoch parsed it")
			}
		case errors.Is(err, ErrAuth):
			// Well-formed but unverifiable: the structure must parse.
			if _, eerr := AuthEpoch(data); eerr != nil {
				t.Fatalf("OpenAuth says ErrAuth but AuthEpoch failed: %v", eerr)
			}
		default:
			t.Fatalf("OpenAuth returned unexpected error: %v", err)
		}
	})
}

// FuzzAuthRoundTrip seals fuzzer-chosen payloads under fuzzer-chosen
// session keys and epochs, requires exact round trips, cross-epoch and
// cross-key rejection, and single-bit damage detection.
func FuzzAuthRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint64(0), []byte(nil))
	f.Add([]byte("session"), uint64(1), []byte("payload"))
	f.Add([]byte("s"), uint64(1)<<62, bytes.Repeat([]byte{0xAA}, 64))

	f.Fuzz(func(t *testing.T, session []byte, epoch uint64, payload []byte) {
		key := DeriveEpochKey(session, epoch)
		pkt := SealAuth(key, epoch, payload)
		got, err := OpenAuth(key, pkt)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("round trip: %q, %v", got, err)
		}
		if e, err := AuthEpoch(pkt); err != nil || e != epoch {
			t.Fatalf("AuthEpoch = %d, %v; want %d", e, err, epoch)
		}
		// The adjacent epoch's key must reject the frame: this is the
		// property the switching layer's replay rejection rests on.
		if _, err := OpenAuth(DeriveEpochKey(session, epoch+1), pkt); !errors.Is(err, ErrAuth) {
			t.Fatalf("next epoch's key verified the frame: %v", err)
		}
		// Single-bit damage anywhere in the envelope must be rejected.
		bit := int(epoch % uint64(len(pkt)*8))
		dam := append([]byte(nil), pkt...)
		dam[bit/8] ^= 1 << uint(bit%8)
		if _, err := OpenAuth(key, dam); err == nil {
			t.Fatalf("OpenAuth accepted a 1-bit-damaged envelope (bit %d)", bit)
		}
	})
}
