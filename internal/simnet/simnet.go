// Package simnet models the paper's experimental network — a group of
// workstations on a shared 10 Mbit Ethernet — on top of the discrete
// event simulator. It is the substrate substitution documented in
// DESIGN.md §2: per-message transmission time on a shared medium,
// per-hop propagation delay, per-node CPU service time, and fault
// injection (loss, duplication, jitter/reordering, replay) so that
// protocol correctness can be exercised under adversity.
//
// The model is intentionally simple but captures the two effects that
// produce Figure 2 of the paper:
//
//   - a *shared medium*: transmissions serialize on the wire, so total
//     offered load degrades everybody;
//   - *per-node CPU queues*: a centralized sequencer saturates as the
//     number of active senders grows, while a rotating token spreads
//     work evenly.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/obs"
)

// Config describes the simulated network.
type Config struct {
	// Nodes is the number of attached processes (group size).
	Nodes int
	// PropDelay is the one-way propagation delay of the medium.
	PropDelay time.Duration
	// BitsPerSecond is the medium bandwidth; transmissions occupy the
	// shared wire for size*8/BitsPerSecond. Zero disables the
	// transmission-time/shared-medium model entirely.
	BitsPerSecond float64
	// FrameOverhead is added to every packet's size on the wire
	// (headers, preamble).
	FrameOverhead int
	// RecvCPU is the per-packet processing time charged to the
	// receiving node's CPU queue before its handler runs.
	RecvCPU time.Duration
	// SendCPU is the per-packet processing time charged to the sending
	// node's CPU queue before the packet reaches the wire.
	SendCPU time.Duration
	// Jitter adds a uniform [0, Jitter) extra delay per receiver,
	// allowing reordering between packets from different transmissions.
	Jitter time.Duration
	// DropProb is the per-receiver probability that a packet is lost.
	DropProb float64
	// DupProb is the per-receiver probability that a packet is
	// delivered twice.
	DupProb float64
	// CorruptProb is the per-receiver probability that a delivered
	// packet has 1-3 of its bits flipped (bit rot / line noise).
	CorruptProb float64
	// TruncateProb is the per-receiver probability that a delivered
	// packet loses a random-length tail (a short datagram).
	TruncateProb float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("simnet: need at least one node, got %d", c.Nodes)
	}
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("simnet: drop probability %v out of [0,1)", c.DropProb)
	}
	if c.DupProb < 0 || c.DupProb >= 1 {
		return fmt.Errorf("simnet: dup probability %v out of [0,1)", c.DupProb)
	}
	if c.CorruptProb < 0 || c.CorruptProb >= 1 {
		return fmt.Errorf("simnet: corrupt probability %v out of [0,1)", c.CorruptProb)
	}
	if c.TruncateProb < 0 || c.TruncateProb >= 1 {
		return fmt.Errorf("simnet: truncate probability %v out of [0,1)", c.TruncateProb)
	}
	if c.PropDelay < 0 || c.RecvCPU < 0 || c.SendCPU < 0 || c.Jitter < 0 {
		return fmt.Errorf("simnet: negative delay in config")
	}
	if c.BitsPerSecond < 0 || c.FrameOverhead < 0 {
		return fmt.Errorf("simnet: negative bandwidth or frame overhead")
	}
	return nil
}

// Ethernet10Mbit returns the calibrated configuration used for the
// paper-reproduction experiments: a 10 Mbit/s shared medium with early
// 1990s-workstation protocol-processing costs. The CPU costs are the
// knob that locates the Figure 2 crossover; see EXPERIMENTS.md.
func Ethernet10Mbit(nodes int) Config {
	return Config{
		Nodes:         nodes,
		PropDelay:     50 * time.Microsecond,
		BitsPerSecond: 10e6,
		FrameOverhead: 64,
		RecvCPU:       600 * time.Microsecond,
		SendCPU:       400 * time.Microsecond,
	}
}

// Handler receives packets addressed to a node. src is the sending node.
type Handler func(src ids.ProcID, payload []byte)

// Stats aggregates network-level counters.
type Stats struct {
	Unicasts        uint64
	Multicasts      uint64
	Delivered       uint64
	Dropped         uint64
	Duplicated      uint64
	WireBytes       uint64
	Corrupted       uint64
	Truncated       uint64
	GarbageInjected uint64
	Forged          uint64
	Replayed        uint64
	SenderSpikes    uint64
	LinkFaultSets   uint64
	SlowNodeSets    uint64
	FlapSets        uint64
}

// linkKey identifies a directed link for per-link fault overrides.
type linkKey struct {
	from, to ids.ProcID
}

// linkFault holds the per-directed-link fault overrides layered over
// the global knobs (the gray-failure model's asymmetric links).
type linkFault struct {
	drop, dup float64
	extra     time.Duration
}

// frame is one queued transmission.
type frame struct {
	src       ids.ProcID
	dst       ids.ProcID // unicast destination (ignored for multicast)
	multicast bool
	payload   []byte
	tx        time.Duration
}

// Network is the simulated medium plus the per-node CPU model.
//
// Medium arbitration: each node has its own egress queue and the shared
// wire serves the queues round-robin, one frame at a time. This
// approximates CSMA fairness on a real Ethernet: a node with a deep
// backlog (a saturated sequencer) delays *its own* frames unboundedly,
// but other hosts still get the medium within roughly one frame time
// per contender — which is what keeps the switching protocol's control
// token live even when the protocol being switched away from is
// overloaded (§7).
type Network struct {
	sim      *des.Sim
	cfg      Config
	handlers []Handler
	// egress[i] is node i's queued frames; the wire serves queues
	// round-robin starting after lastServed.
	egress     [][]frame
	wireBusy   bool
	lastServed int
	// cpuFree[i] is when node i's CPU becomes idle.
	cpuFree []time.Duration
	// blocked[src][dst] suppresses delivery (partition injection).
	blocked map[ids.ProcID]map[ids.ProcID]bool
	// crashed nodes neither send nor receive (crash-stop injection).
	crashed map[ids.ProcID]bool
	stats   Stats
	rec     obs.Recorder
	// captured holds wire frames recorded for later replay injection
	// (SetReplayCapture); capMax bounds the buffer.
	captured []capturedFrame
	capMax   int
	// spikeMult is the flash-crowd sender multiplier (1 = baseline);
	// workload generators consult it via SpikeMultiplier.
	spikeMult int
	// linkFaults holds per-directed-link overrides layered over the
	// global fault knobs (gray asymmetric links); absent links use the
	// zero value and draw nothing.
	linkFaults map[linkKey]linkFault
	// slowFactor stretches a node's CPU charges (gray slow node);
	// absent or 1 means full speed.
	slowFactor map[ids.ProcID]int
	// flapEpoch invalidates a link's scheduled flap toggles when a
	// newer SetFlapping call supersedes them.
	flapEpoch map[linkKey]int
}

// capturedFrame is one recorded wire delivery, replayable verbatim.
type capturedFrame struct {
	src, dst ids.ProcID
	payload  []byte
}

// New creates a network over the given simulator.
func New(sim *des.Sim, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		sim:        sim,
		cfg:        cfg,
		handlers:   make([]Handler, cfg.Nodes),
		egress:     make([][]frame, cfg.Nodes),
		cpuFree:    make([]time.Duration, cfg.Nodes),
		blocked:    make(map[ids.ProcID]map[ids.ProcID]bool),
		crashed:    make(map[ids.ProcID]bool),
		rec:        obs.Nop,
		linkFaults: make(map[linkKey]linkFault),
		slowFactor: make(map[ids.ProcID]int),
		flapEpoch:  make(map[linkKey]int),
	}, nil
}

// SetRecorder installs an event recorder for fault injections and
// per-packet drops/delays. Passing nil restores the no-op default.
func (n *Network) SetRecorder(r obs.Recorder) { n.rec = obs.OrNop(r) }

// Crash fails node p crash-stop: everything it sends from now on is
// discarded (including frames already queued on its egress), and
// nothing is delivered to it. There is no recovery in this model.
func (n *Network) Crash(p ids.ProcID) {
	if !n.valid(p) || n.crashed[p] {
		return
	}
	n.crashed[p] = true
	n.egress[p] = nil
	n.rec.Record(obs.Crash(n.sim.Now(), p))
}

// Crashed reports whether p has been crash-stopped.
func (n *Network) Crashed(p ids.ProcID) bool { return n.crashed[p] }

// Bind installs the packet handler for node p. It returns an error for
// an unknown node; rebinding replaces the handler.
func (n *Network) Bind(p ids.ProcID, h Handler) error {
	if !n.valid(p) {
		return fmt.Errorf("simnet: bind to unknown node %v", p)
	}
	n.handlers[p] = h
	return nil
}

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Nodes returns the group size.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Block suppresses packets from src to dst (partition injection).
func (n *Network) Block(src, dst ids.ProcID) {
	m := n.blocked[src]
	if m == nil {
		m = make(map[ids.ProcID]bool)
		n.blocked[src] = m
	}
	m[dst] = true
}

// Unblock re-enables packets from src to dst.
func (n *Network) Unblock(src, dst ids.ProcID) {
	delete(n.blocked[src], dst)
}

// Partition splits the group: every pair crossing the cut between side a
// and side b is blocked in both directions. Nodes named on neither side
// keep talking to everyone. Partition composes with earlier Block calls;
// Heal removes all of them.
func (n *Network) Partition(a, b []ids.ProcID) {
	for _, p := range a {
		for _, q := range b {
			n.Block(p, q)
			n.Block(q, p)
		}
		n.rec.Record(obs.Partition(n.sim.Now(), p, len(b)))
	}
}

// Heal removes every pairwise block, ending all partitions at once.
func (n *Network) Heal() {
	n.blocked = make(map[ids.ProcID]map[ids.ProcID]bool)
	n.rec.Record(obs.Heal(n.sim.Now()))
}

// Partitioned reports whether any pairwise block is currently in place.
func (n *Network) Partitioned() bool {
	for _, m := range n.blocked {
		if len(m) > 0 {
			return true
		}
	}
	return false
}

// SetFaults replaces the per-receiver fault knobs at run time — the hook
// the chaos harness uses to inject drop/duplicate/reorder bursts at
// virtual times. It returns an error (changing nothing) for values the
// static Config would reject.
func (n *Network) SetFaults(dropProb, dupProb float64, jitter time.Duration) error {
	probe := n.cfg
	probe.DropProb, probe.DupProb, probe.Jitter = dropProb, dupProb, jitter
	if err := probe.Validate(); err != nil {
		return err
	}
	n.cfg = probe
	n.rec.Record(obs.FaultSet(n.sim.Now(),
		int64(dropProb*1000), int64(dupProb*1000), jitter))
	return nil
}

// SetCorruption replaces the per-receiver corruption knobs at run time
// — the hook the chaos harness uses to inject bit-flip and truncation
// bursts at virtual times. It returns an error (changing nothing) for
// values the static Config would reject.
func (n *Network) SetCorruption(corruptProb, truncateProb float64) error {
	probe := n.cfg
	probe.CorruptProb, probe.TruncateProb = corruptProb, truncateProb
	if err := probe.Validate(); err != nil {
		return err
	}
	n.cfg = probe
	n.rec.Record(obs.CorruptSet(n.sim.Now(),
		int64(corruptProb*1000), int64(truncateProb*1000)))
	return nil
}

// SetLinkFaults installs per-directed-link fault overrides for the
// link from→to, layered over the global SetFaults knobs: an extra drop
// probability, an extra duplication probability, and a fixed extra
// delay — the gray-failure model's asymmetric link. Passing all-zero
// knobs clears the override. Overridden links draw their extra
// randomness after the global draws and only when their own
// probability is non-zero, so schedules without link faults consume
// exactly the legacy RNG stream. It returns an error (changing
// nothing) for values the static Config would reject for the global
// knobs.
func (n *Network) SetLinkFaults(from, to ids.ProcID, drop, dup float64, extra time.Duration) error {
	if !n.valid(from) || !n.valid(to) {
		return fmt.Errorf("simnet: link fault %v -> %v out of range", from, to)
	}
	if drop < 0 || drop >= 1 {
		return fmt.Errorf("simnet: link drop probability %v out of [0,1)", drop)
	}
	if dup < 0 || dup >= 1 {
		return fmt.Errorf("simnet: link dup probability %v out of [0,1)", dup)
	}
	if extra < 0 {
		return fmt.Errorf("simnet: negative link extra delay %v", extra)
	}
	key := linkKey{from, to}
	if drop == 0 && dup == 0 && extra == 0 {
		delete(n.linkFaults, key)
	} else {
		n.linkFaults[key] = linkFault{drop: drop, dup: dup, extra: extra}
	}
	n.stats.LinkFaultSets++
	n.rec.Record(obs.LinkFaultSet(n.sim.Now(), from, to,
		int64(drop*1000), int64(dup*1000), extra))
	return nil
}

// SetSlowNode stretches node p's send and receive CPU charges by the
// given factor — the gray-failure model's slow node: p still works,
// just several times slower. A factor of 1 restores full speed. The
// stretch consumes no randomness. It returns an error (changing
// nothing) for a non-positive factor.
func (n *Network) SetSlowNode(p ids.ProcID, factor int) error {
	if !n.valid(p) {
		return fmt.Errorf("simnet: slow node %v out of range", p)
	}
	if factor < 1 {
		return fmt.Errorf("simnet: slow-node factor %d must be at least 1", factor)
	}
	if factor == 1 {
		delete(n.slowFactor, p)
	} else {
		n.slowFactor[p] = factor
	}
	n.stats.SlowNodeSets++
	n.rec.Record(obs.SlowNodeSet(n.sim.Now(), p, factor))
	return nil
}

// SetFlapping starts partitioning and healing the directed link
// from→to on a fixed period: the link blocks now, heals after period,
// blocks again after another period, and so on until the given virtual
// time, when it is left healed. The toggling is driven entirely by the
// schedule's seeded parameters and consumes no randomness. A period of
// zero cancels any active flap on the link (healing it); a newer call
// supersedes an older one. It returns an error (changing nothing) for
// a negative period or a horizon not in the future.
func (n *Network) SetFlapping(from, to ids.ProcID, period, until time.Duration) error {
	if !n.valid(from) || !n.valid(to) {
		return fmt.Errorf("simnet: flapping %v -> %v out of range", from, to)
	}
	if period < 0 {
		return fmt.Errorf("simnet: negative flap period %v", period)
	}
	if period > 0 && until <= n.sim.Now() {
		return fmt.Errorf("simnet: flap horizon %v not in the future", until)
	}
	key := linkKey{from, to}
	n.flapEpoch[key]++
	epoch := n.flapEpoch[key]
	n.stats.FlapSets++
	n.rec.Record(obs.FlapSet(n.sim.Now(), from, to, period, until))
	if period == 0 {
		n.Unblock(from, to)
		return nil
	}
	blocked := false
	var toggle func()
	toggle = func() {
		if n.flapEpoch[key] != epoch {
			return // superseded by a newer SetFlapping call
		}
		if n.sim.Now() >= until {
			n.Unblock(from, to) // leave the link healed
			return
		}
		if blocked {
			n.Unblock(from, to)
		} else {
			n.Block(from, to)
		}
		blocked = !blocked
		n.sim.After(period, toggle)
	}
	toggle()
	return nil
}

// SetSenderSpike replaces the flash-crowd sender multiplier at run
// time — the hook the chaos harness uses to multiply the active sender
// population mid-run. The network cannot originate application traffic
// itself; workload generators consult SpikeMultiplier and scale their
// send rate by it, so the spike stays seeded and deterministic. A
// multiplier of 1 restores the baseline. It returns an error (changing
// nothing) for a non-positive multiplier.
func (n *Network) SetSenderSpike(mult int) error {
	if mult < 1 {
		return fmt.Errorf("simnet: sender spike multiplier %d must be at least 1", mult)
	}
	n.spikeMult = mult
	n.stats.SenderSpikes++
	n.rec.Record(obs.SenderSpike(n.sim.Now(), mult))
	return nil
}

// SpikeMultiplier returns the current flash-crowd sender multiplier
// (1 when no spike is in effect).
func (n *Network) SpikeMultiplier() int {
	if n.spikeMult < 1 {
		return 1
	}
	return n.spikeMult
}

// SampleQueueDepths emits a per-node egress queue-depth gauge event
// every interval until the given virtual time — the live overload
// signal for a policy layer watching the trace. Sampling draws no
// randomness and schedules nothing when no recorder is installed, so
// it never perturbs an execution's fault schedule.
func (n *Network) SampleQueueDepths(every, until time.Duration) error {
	if every <= 0 {
		return fmt.Errorf("simnet: non-positive sample interval %v", every)
	}
	if !n.rec.Enabled() {
		return nil
	}
	var tick func()
	tick = func() {
		now := n.sim.Now()
		if now > until {
			return
		}
		for i := range n.egress {
			n.rec.Record(obs.QueueDepth(now, ids.ProcID(i), len(n.egress[i])))
		}
		n.sim.After(every, tick)
	}
	n.sim.After(every, tick)
	return nil
}

// InjectGarbage delivers size seeded-random bytes to dst, forged to
// look like they came from src — the cross-version/garbage slice of the
// adversarial fault model. The bytes bypass the sender-side model (like
// Inject) but still traverse the receiver-side fault pipeline.
func (n *Network) InjectGarbage(src, dst ids.ProcID, size int) error {
	if !n.valid(src) || !n.valid(dst) {
		return fmt.Errorf("simnet: garbage %v -> %v out of range", src, dst)
	}
	if size <= 0 {
		return fmt.Errorf("simnet: garbage size %d must be positive", size)
	}
	rng := n.sim.Rand()
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	n.stats.GarbageInjected++
	n.rec.Record(obs.Garbage(n.sim.Now(), dst, src, size))
	n.scheduleDelivery(src, dst, buf, n.sim.Now()+n.cfg.PropDelay)
	return nil
}

// InjectForged delivers an attacker-crafted wire frame to dst, forged
// to appear from src — the forgery slice of the adversarial fault
// model. Unlike InjectGarbage's random bytes, the caller supplies the
// exact frame (a syntactically valid protocol message sealed under the
// wrong — or no — key, say), modeling an adversary who knows the wire
// format but not the group secret. The bytes bypass the sender-side
// model but still traverse the receiver-side fault pipeline. Consumes
// no RNG beyond what delivery itself draws, so forgery-free schedules
// keep the legacy random stream.
func (n *Network) InjectForged(src, dst ids.ProcID, payload []byte) error {
	if !n.valid(src) || !n.valid(dst) {
		return fmt.Errorf("simnet: forged %v -> %v out of range", src, dst)
	}
	if len(payload) == 0 {
		return fmt.Errorf("simnet: forged frame must be non-empty")
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	n.stats.Forged++
	n.rec.Record(obs.Forged(n.sim.Now(), dst, src, len(buf)))
	n.scheduleDelivery(src, dst, buf, n.sim.Now()+n.cfg.PropDelay)
	return nil
}

// SetReplayCapture starts recording delivered wire frames — up to max
// of them — for later replay via InjectReplay, modeling an adversary
// with a packet capture. Frames are recorded at delivery scheduling,
// before the receiver-side fault pipeline, so a replayed frame is the
// genuine bytes the sender emitted. Capturing consumes no RNG. max <= 0
// stops capturing (and discards the buffer).
func (n *Network) SetReplayCapture(max int) {
	n.capMax = max
	if max <= 0 {
		n.captured = nil
	}
}

// CapturedFrames reports how many frames the replay capture holds.
func (n *Network) CapturedFrames() int { return len(n.captured) }

// InjectReplay re-delivers captured frame i (0-based, in capture order)
// to its original destination with its original apparent source — a
// verbatim replay of a genuine transmission, possibly from a retired
// epoch. The frame re-traverses the receiver-side fault pipeline.
func (n *Network) InjectReplay(i int) error {
	if i < 0 || i >= len(n.captured) {
		return fmt.Errorf("simnet: replay index %d out of range [0,%d)", i, len(n.captured))
	}
	f := n.captured[i]
	buf := make([]byte, len(f.payload))
	copy(buf, f.payload)
	n.stats.Replayed++
	n.rec.Record(obs.Replayed(n.sim.Now(), f.dst, f.src, len(buf)))
	n.scheduleDelivery(f.src, f.dst, buf, n.sim.Now()+n.cfg.PropDelay)
	return nil
}

func (n *Network) isBlocked(src, dst ids.ProcID) bool {
	return n.blocked[src][dst]
}

func (n *Network) valid(p ids.ProcID) bool {
	return p >= 0 && int(p) < n.cfg.Nodes
}

// txTime returns how long a payload of the given size occupies the wire.
func (n *Network) txTime(size int) time.Duration {
	if n.cfg.BitsPerSecond <= 0 {
		return 0
	}
	bits := float64(size+n.cfg.FrameOverhead) * 8
	return time.Duration(bits / n.cfg.BitsPerSecond * float64(time.Second))
}

// acquireCPU charges d of CPU time on node p starting no earlier than t,
// returning the completion time. A slow node (SetSlowNode) pays a
// stretched charge.
func (n *Network) acquireCPU(p ids.ProcID, t time.Duration, d time.Duration) time.Duration {
	if f := n.slowFactor[p]; f > 1 {
		d *= time.Duration(f)
	}
	start := t
	if n.cpuFree[p] > start {
		start = n.cpuFree[p]
	}
	done := start + d
	n.cpuFree[p] = done
	return done
}

// enqueueFrame places a frame on src's egress queue at virtual time t
// (after the sender's CPU cost) and kicks the medium if idle.
func (n *Network) enqueueFrame(src ids.ProcID, f frame, t time.Duration) {
	n.sim.At(t, func() {
		n.egress[src] = append(n.egress[src], f)
		if !n.wireBusy {
			n.serveNext()
		}
	})
}

// serveNext grants the medium to the next node, round-robin, with a
// non-empty egress queue.
func (n *Network) serveNext() {
	for i := 1; i <= n.cfg.Nodes; i++ {
		idx := (n.lastServed + i) % n.cfg.Nodes
		if len(n.egress[idx]) == 0 {
			continue
		}
		f := n.egress[idx][0]
		n.egress[idx] = n.egress[idx][1:]
		n.lastServed = idx
		n.wireBusy = true
		n.stats.WireBytes += uint64(len(f.payload) + n.cfg.FrameOverhead)
		n.sim.After(f.tx, func() {
			n.wireBusy = false
			n.completeFrame(f)
			n.serveNext()
		})
		return
	}
}

// completeFrame fans a finished transmission out to its receivers.
func (n *Network) completeFrame(f frame) {
	now := n.sim.Now()
	if !f.multicast {
		n.scheduleDelivery(f.src, f.dst, f.payload, now+n.cfg.PropDelay)
		return
	}
	for i := 0; i < n.cfg.Nodes; i++ {
		dst := ids.ProcID(i)
		if dst == f.src {
			// Sender loops its own multicast back without re-crossing
			// the wire (but after the transmission completes, as a real
			// interface would).
			n.scheduleDelivery(f.src, dst, f.payload, now)
			continue
		}
		n.scheduleDelivery(f.src, dst, f.payload, now+n.cfg.PropDelay)
	}
}

// Unicast sends payload from src to dst. Passing an unknown node is a
// programming error and returns an error. Delivery is asynchronous,
// subject to the fault model; self-sends are delivered locally without
// touching the wire.
func (n *Network) Unicast(src, dst ids.ProcID, payload []byte) error {
	if !n.valid(src) || !n.valid(dst) {
		return fmt.Errorf("simnet: unicast %v -> %v out of range", src, dst)
	}
	if n.crashed[src] {
		n.stats.Dropped++
		if n.rec.Enabled() {
			n.rec.Record(obs.Drop(n.sim.Now(), dst, src, obs.DropBlocked))
		}
		return nil // a dead process's residual timers send into the void
	}
	n.stats.Unicasts++
	buf := make([]byte, len(payload))
	copy(buf, payload)
	sent := n.acquireCPU(src, n.sim.Now(), n.cfg.SendCPU)
	if src == dst {
		// Local loopback: costs send CPU only.
		n.scheduleDelivery(src, dst, buf, sent)
		return nil
	}
	f := frame{src: src, dst: dst, payload: buf, tx: n.txTime(len(payload))}
	n.enqueueFrame(src, f, sent)
	return nil
}

// Multicast sends payload from src to every node, including src itself
// (local loopback). On the simulated Ethernet a multicast is a single
// transmission heard by all receivers — this asymmetry versus n unicasts
// is essential to the sequencer protocol's economics.
func (n *Network) Multicast(src ids.ProcID, payload []byte) error {
	if !n.valid(src) {
		return fmt.Errorf("simnet: multicast from unknown node %v", src)
	}
	if n.crashed[src] {
		n.stats.Dropped++
		if n.rec.Enabled() {
			n.rec.Record(obs.Drop(n.sim.Now(), obs.NoProc, src, obs.DropBlocked))
		}
		return nil
	}
	n.stats.Multicasts++
	buf := make([]byte, len(payload))
	copy(buf, payload)
	sent := n.acquireCPU(src, n.sim.Now(), n.cfg.SendCPU)
	f := frame{src: src, multicast: true, payload: buf, tx: n.txTime(len(payload))}
	n.enqueueFrame(src, f, sent)
	return nil
}

// Inject delivers a raw packet to dst appearing to come from src,
// bypassing the sender-side model. It exists for adversarial tests
// (replay attacks against the No Replay property).
func (n *Network) Inject(src, dst ids.ProcID, payload []byte) error {
	if !n.valid(src) || !n.valid(dst) {
		return fmt.Errorf("simnet: inject %v -> %v out of range", src, dst)
	}
	n.scheduleDelivery(src, dst, payload, n.sim.Now()+n.cfg.PropDelay)
	return nil
}

// scheduleDelivery applies the per-receiver fault model and queues the
// handler invocation behind dst's CPU.
func (n *Network) scheduleDelivery(src, dst ids.ProcID, payload []byte, arrival time.Duration) {
	// Replay capture records the frame before the fault model touches it
	// — the adversary's tap sees what the sender put on the wire. No RNG
	// is consumed here, so enabling capture never perturbs a schedule.
	if n.capMax > 0 && len(n.captured) < n.capMax {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		n.captured = append(n.captured, capturedFrame{src: src, dst: dst, payload: buf})
	}
	if n.isBlocked(src, dst) || n.crashed[src] || n.crashed[dst] {
		n.stats.Dropped++
		if n.rec.Enabled() {
			n.rec.Record(obs.Drop(n.sim.Now(), dst, src, obs.DropBlocked))
		}
		return
	}
	rng := n.sim.Rand()
	if n.cfg.DropProb > 0 && rng.Float64() < n.cfg.DropProb {
		n.stats.Dropped++
		if n.rec.Enabled() {
			n.rec.Record(obs.Drop(n.sim.Now(), dst, src, obs.DropRandom))
		}
		return
	}
	// Per-link overrides (SetLinkFaults) layer over the global knobs.
	// Their draws come after the global draws and each is guarded by the
	// link's own probability, so schedules without link faults consume
	// exactly the legacy RNG stream. An unset link reads the zero value.
	lf := n.linkFaults[linkKey{from: src, to: dst}]
	if lf.drop > 0 && rng.Float64() < lf.drop {
		n.stats.Dropped++
		if n.rec.Enabled() {
			n.rec.Record(obs.Drop(n.sim.Now(), dst, src, obs.DropRandom))
		}
		return
	}
	copies := 1
	if n.cfg.DupProb > 0 && rng.Float64() < n.cfg.DupProb {
		copies = 2
		n.stats.Duplicated++
	}
	if lf.dup > 0 && rng.Float64() < lf.dup && copies == 1 {
		copies = 2
		n.stats.Duplicated++
	}
	// A link's fixed extra delay shifts every copy deterministically
	// (the asymmetric-latency half of the gray model — no draw).
	arrival += lf.extra
	for c := 0; c < copies; c++ {
		at := arrival
		if n.cfg.Jitter > 0 {
			j := time.Duration(rng.Int63n(int64(n.cfg.Jitter)))
			at += j
			if n.rec.Enabled() {
				n.rec.Record(obs.Delay(n.sim.Now(), dst, src, j))
			}
		}
		// Copy the payload per delivery: receivers own their bytes.
		buf := make([]byte, len(payload))
		copy(buf, payload)
		// Corruption faults mutate this delivery's copy only, and every
		// draw is guarded by its probability so that configurations
		// without corruption consume exactly the legacy RNG stream.
		if n.cfg.CorruptProb > 0 && len(buf) > 0 && rng.Float64() < n.cfg.CorruptProb {
			flips := 1 + rng.Intn(3)
			for i := 0; i < flips; i++ {
				bit := rng.Intn(len(buf) * 8)
				buf[bit/8] ^= 1 << uint(bit%8)
			}
			n.stats.Corrupted++
			if n.rec.Enabled() {
				n.rec.Record(obs.Corrupt(n.sim.Now(), dst, src, flips))
			}
		}
		if n.cfg.TruncateProb > 0 && len(buf) > 0 && rng.Float64() < n.cfg.TruncateProb {
			keep := rng.Intn(len(buf))
			buf = buf[:keep]
			n.stats.Truncated++
			if n.rec.Enabled() {
				n.rec.Record(obs.Truncate(n.sim.Now(), dst, src, keep, len(payload)))
			}
		}
		n.sim.At(at, func() {
			h := n.handlers[dst]
			if h == nil || n.crashed[dst] {
				return
			}
			// Charge receive processing to dst's CPU queue; the handler
			// logically runs when processing completes.
			doneAt := n.acquireCPU(dst, n.sim.Now(), n.cfg.RecvCPU)
			n.stats.Delivered++
			if doneAt == n.sim.Now() {
				h(src, buf)
				return
			}
			n.sim.At(doneAt, func() { h(src, buf) })
		})
	}
}
