package simnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestInjectForgedDeliversCrafted(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	frame := []byte("crafted-but-unkeyed frame")
	if err := net.InjectForged(0, 1, frame); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || !bytes.Equal((*got)[0].b, frame) || (*got)[0].src != 0 {
		t.Fatalf("got %v", *got)
	}
	if (*got)[0].at != time.Millisecond {
		t.Errorf("forged frame arrived at %v, want prop delay %v", (*got)[0].at, time.Millisecond)
	}
	if s := net.Stats(); s.Forged != 1 {
		t.Errorf("Stats.Forged = %d, want 1", s.Forged)
	}
}

func TestInjectForgedValidation(t *testing.T) {
	_, net := newNet(t, Config{Nodes: 2})
	if err := net.InjectForged(0, 5, []byte("x")); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if err := net.InjectForged(0, 1, nil); err == nil {
		t.Error("empty forged frame accepted")
	}
}

func TestReplayCaptureAndInject(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	net.SetReplayCapture(8)
	if err := net.Unicast(0, 1, []byte("genuine")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if net.CapturedFrames() != 1 {
		t.Fatalf("captured %d frames, want 1", net.CapturedFrames())
	}
	if err := net.InjectReplay(0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 || !bytes.Equal((*got)[1].b, []byte("genuine")) || (*got)[1].src != 0 {
		t.Fatalf("replay delivery wrong: %v", *got)
	}
	if s := net.Stats(); s.Replayed != 1 {
		t.Errorf("Stats.Replayed = %d, want 1", s.Replayed)
	}
	if err := net.InjectReplay(5); err == nil {
		t.Error("out-of-range replay index accepted")
	}
}

func TestReplayCaptureBounded(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 2})
	collect(t, sim, net, 1)
	net.SetReplayCapture(2)
	for i := 0; i < 5; i++ {
		if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if net.CapturedFrames() != 2 {
		t.Errorf("captured %d frames, want cap of 2", net.CapturedFrames())
	}
	net.SetReplayCapture(0)
	if net.CapturedFrames() != 0 {
		t.Error("disabling capture did not discard the buffer")
	}
}

// TestReplayCaptureRecordsPreFault: the tap sees the sender's bytes
// even when the receiver-side fault model corrupts the delivery.
func TestReplayCaptureRecordsPreFault(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 2, CorruptProb: 0.999999})
	collect(t, sim, net, 1)
	net.SetReplayCapture(1)
	orig := []byte("pristine payload bytes")
	if err := net.Unicast(0, 1, orig); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if net.CapturedFrames() != 1 {
		t.Fatalf("captured %d frames, want 1", net.CapturedFrames())
	}
	if !bytes.Equal(net.captured[0].payload, orig) {
		t.Error("capture recorded post-corruption bytes")
	}
}

// TestCaptureConsumesNoRNG: two identical runs, one with capture on,
// must produce identical delivery schedules — the tap is invisible.
func TestCaptureConsumesNoRNG(t *testing.T) {
	run := func(capture bool) []rcvd {
		cfg := Config{Nodes: 2, PropDelay: time.Millisecond,
			Jitter: 500 * time.Microsecond, DropProb: 0.2, DupProb: 0.2}
		sim, net := newNet(t, cfg)
		got := collect(t, sim, net, 1)
		if capture {
			net.SetReplayCapture(64)
		}
		for i := 0; i < 32; i++ {
			if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		return *got
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("capture changed delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at || !bytes.Equal(a[i].b, b[i].b) {
			t.Fatalf("delivery %d diverged with capture on: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForgeryObsEvents(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 2})
	collect(t, sim, net, 1)
	rec := obs.NewFlightRecorder(16)
	net.SetRecorder(rec)
	net.SetReplayCapture(1)
	if err := net.Unicast(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := net.InjectForged(0, 1, []byte("f")); err != nil {
		t.Fatal(err)
	}
	if err := net.InjectReplay(0); err != nil {
		t.Fatal(err)
	}
	var sawForged, sawReplayed bool
	for _, e := range rec.Snapshot() {
		switch e.Type {
		case obs.EvForged:
			sawForged = true
		case obs.EvReplayed:
			sawReplayed = true
		}
	}
	if !sawForged || !sawReplayed {
		t.Errorf("missing obs events: forged=%v replayed=%v", sawForged, sawReplayed)
	}
}
