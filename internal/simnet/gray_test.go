package simnet

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
)

// TestLinkFaultsAreAsymmetric pins the directed-link override: a 100%
// drop (well, 0.999…) on 0→1 kills that direction while 1→0 and 0→2
// stay clean, and clearing the override restores delivery.
func TestLinkFaultsAreAsymmetric(t *testing.T) {
	cfg := Config{Nodes: 3, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	at1 := collect(t, sim, net, 1)
	at0 := collect(t, sim, net, 0)
	at2 := collect(t, sim, net, 2)
	if err := net.SetLinkFaults(0, 1, 0.999999, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := net.Unicast(1, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := net.Unicast(0, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*at1) > 2 {
		t.Errorf("faulted direction delivered %d of 50", len(*at1))
	}
	if len(*at0) != 50 || len(*at2) != 50 {
		t.Errorf("clean directions lost traffic: 1→0 %d, 0→2 %d", len(*at0), len(*at2))
	}
	// All-zero clears the override.
	if err := net.SetLinkFaults(0, 1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	before := len(*at1)
	for i := 0; i < 20; i++ {
		if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*at1)-before != 20 {
		t.Errorf("cleared link still lossy: %d of 20 delivered", len(*at1)-before)
	}
	if net.Stats().LinkFaultSets != 2 {
		t.Errorf("LinkFaultSets = %d, want 2", net.Stats().LinkFaultSets)
	}
	if err := net.SetLinkFaults(0, 1, 1.5, 0, 0); err == nil {
		t.Error("SetLinkFaults accepted drop probability 1.5")
	}
	if err := net.SetLinkFaults(0, 1, 0, 0, -time.Second); err == nil {
		t.Error("SetLinkFaults accepted negative extra delay")
	}
}

// TestLinkExtraDelayShiftsArrival pins the deterministic half of the
// asymmetric link: the fixed extra delay moves arrivals without any
// RNG draw, so delivery stays exact.
func TestLinkExtraDelayShiftsArrival(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	log := collect(t, sim, net, 1)
	if err := net.SetLinkFaults(0, 1, 0, 0, 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := net.Unicast(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 1 || (*log)[0].at != 4*time.Millisecond {
		t.Errorf("delivery = %+v, want one arrival at 4ms", *log)
	}
}

// TestSlowNodeStretchesCPU pins KindSlowNode's substrate: a factor-4
// slow node pays 4× its per-packet CPU charges, and factor 1 restores
// full speed.
func TestSlowNodeStretchesCPU(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Millisecond, RecvCPU: 2 * time.Millisecond}
	sim, net := newNet(t, cfg)
	log := collect(t, sim, net, 1)
	if err := net.SetSlowNode(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := net.Unicast(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	// prop 1ms + 4×2ms recv CPU.
	if len(*log) != 1 || (*log)[0].at != 9*time.Millisecond {
		t.Errorf("slow delivery = %+v, want one arrival at 9ms", *log)
	}
	if err := net.SetSlowNode(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Unicast(0, 1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	// prop 1ms + 2ms recv CPU after the earlier completion.
	if len(*log) != 2 {
		t.Fatalf("restored node did not deliver")
	}
	if got := (*log)[1].at - (*log)[0].at; got != 3*time.Millisecond {
		t.Errorf("restored delivery lag = %v, want 3ms", got)
	}
	if net.Stats().SlowNodeSets != 2 {
		t.Errorf("SlowNodeSets = %d, want 2", net.Stats().SlowNodeSets)
	}
	if err := net.SetSlowNode(1, 0); err == nil {
		t.Error("SetSlowNode accepted factor 0")
	}
}

// TestFlappingTogglesAndHeals pins KindFlap's substrate: the directed
// link blocks immediately, alternates every period, and the final
// toggle at the window edge leaves the link open; a superseding call
// cancels the earlier cadence.
func TestFlappingTogglesAndHeals(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Microsecond}
	sim := des.New(1)
	net, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []time.Duration
	if err := net.Bind(1, func(_ ids.ProcID, _ []byte) {
		got = append(got, sim.Now())
	}); err != nil {
		t.Fatal(err)
	}
	period := 10 * time.Millisecond
	start := 5 * time.Millisecond
	sim.At(start, func() {
		if err := net.SetFlapping(0, 1, period, start+35*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	// One probe per millisecond across the whole window and past it,
	// offset half a millisecond so no probe lands exactly on a toggle
	// edge (same-instant DES ordering would make the phase ambiguous).
	for i := 0; i < 60; i++ {
		at := time.Duration(i)*time.Millisecond + 500*time.Microsecond
		sim.At(at, func() { _ = net.Unicast(0, 1, []byte{1}) })
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	inWindow := func(at, lo, hi time.Duration) bool { return at >= lo && at < hi }
	var blockedPhase, openPhase, afterHeal int
	for _, at := range got {
		switch {
		case inWindow(at, start, start+period), inWindow(at, start+2*period, start+3*period):
			blockedPhase++
		case inWindow(at, start+period, start+2*period), inWindow(at, start+3*period, start+35*time.Millisecond):
			openPhase++
		case at >= start+35*time.Millisecond:
			afterHeal++
		}
	}
	if blockedPhase != 0 {
		t.Errorf("%d deliveries during blocked phases", blockedPhase)
	}
	if openPhase == 0 {
		t.Error("no deliveries during open phases — the flap never reopened")
	}
	if afterHeal == 0 {
		t.Error("no deliveries after the window — the final toggle did not heal the link")
	}
	if net.Stats().FlapSets == 0 {
		t.Error("FlapSets never counted")
	}
	if err := net.SetFlapping(0, 1, -time.Second, time.Second); err == nil {
		t.Error("SetFlapping accepted a negative period")
	}
}

// TestFlappingSuperseded pins the epoch guard: a second SetFlapping on
// the same link cancels the first cadence's pending toggles, and a
// zero period cancels flapping outright (leaving the link open).
func TestFlappingSuperseded(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Microsecond}
	sim := des.New(1)
	net, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []time.Duration
	if err := net.Bind(1, func(_ ids.ProcID, _ []byte) {
		got = append(got, sim.Now())
	}); err != nil {
		t.Fatal(err)
	}
	sim.At(time.Millisecond, func() {
		if err := net.SetFlapping(0, 1, 5*time.Millisecond, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	// Cancel at 2ms — inside the first blocked phase.
	sim.At(2*time.Millisecond, func() {
		if err := net.SetFlapping(0, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < 20; i++ {
		at := time.Duration(i) * time.Millisecond
		sim.At(at, func() { _ = net.Unicast(0, 1, []byte{1}) })
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	var afterCancel int
	for _, at := range got {
		if at > 2500*time.Microsecond {
			afterCancel++
		}
	}
	if afterCancel != 17 {
		t.Errorf("cancelled flap still losing traffic: %d of 17 delivered after cancel", afterCancel)
	}
}
